/// \file trace.cpp
/// Collector internals for the request-lifecycle tracer: lazy
/// generation-keyed thread->ring binding, single-writer ring stores, and
/// the Chrome trace-event JSON renderer.

#include "service/trace.hpp"

#include <chrono>

#include "service/metrics.hpp"

namespace anyseq::service::trace {

const char* to_string(span s) noexcept {
  switch (s) {
    case span::submit: return "submit";
    case span::cache_probe: return "cache_probe";
    case span::ring_wait: return "ring_wait";
    case span::batch_collect: return "batch_collect";
    case span::workspace_wait: return "workspace_wait";
    case span::kernel_execute: return "kernel_execute";
    case span::exec_batch: return "exec_batch";
    case span::exec_solo: return "exec_solo";
    case span::complete: return "complete";
  }
  return "unknown";
}

const char* to_string(instant i) noexcept {
  switch (i) {
    case instant::watchdog_restart: return "watchdog_restart";
    case instant::brownout: return "brownout";
    case instant::linger_adapt: return "linger_adapt";
    case instant::deadline_shed: return "deadline_shed";
    case instant::shed: return "shed";
    case instant::quarantine: return "quarantine";
  }
  return "unknown";
}

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace {

/// Monotonic collector-construction counter: each collector gets a
/// distinct generation, and every thread's cached ring binding carries
/// the generation it was made under, so a thread that outlives one
/// collector re-binds cleanly on its first record into the next.
std::atomic<std::uint64_t> g_generation{0};

/// Per-thread binding cache.  Constant-initialized POD: first touch
/// from a fresh thread performs no allocation and runs no dynamic
/// initializer — required by the zero-steady-state-allocation contract.
struct binding {
  std::uint64_t generation = 0;
  void* ring = nullptr;
};
thread_local constinit binding t_binding{};

}  // namespace

collector::collector(const config& cfg) : cfg_(cfg) {
  if (cfg_.events_per_thread < 16) cfg_.events_per_thread = 16;
  if (cfg_.max_threads < 1) cfg_.max_threads = 1;
  rings_ = std::vector<ring>(cfg_.max_threads);
  for (ring& r : rings_) r.buf.resize(cfg_.events_per_thread);
  epoch_ns_ = now_ns();
  generation_ = g_generation.fetch_add(1, std::memory_order_relaxed) + 1;
}

collector::ring* collector::ring_for_thread() noexcept {
  binding& b = t_binding;
  if (b.generation != generation_) {
    b.generation = generation_;
    const std::size_t i = next_ring_.fetch_add(1, std::memory_order_relaxed);
    b.ring = i < rings_.size() ? static_cast<void*>(&rings_[i]) : nullptr;
  }
  return static_cast<ring*>(b.ring);
}

void collector::record_span(span k, std::uint32_t id, std::int64_t t0_ns,
                            std::int64_t t1_ns, std::int64_t arg) noexcept {
  ring* r = ring_for_thread();
  if (r == nullptr) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t n = r->seen.load(std::memory_order_relaxed);
  event& e = r->buf[n % cfg_.events_per_thread];
  e.t_ns = t0_ns;
  e.dur_ns = t1_ns > t0_ns ? t1_ns - t0_ns : 0;
  e.arg = arg;
  e.id = id;
  e.kind = static_cast<std::uint8_t>(k);
  e.is_instant = 0;
  r->seen.store(n + 1, std::memory_order_release);
}

void collector::record_instant(instant k, std::uint32_t id, std::int64_t t_ns,
                               std::int64_t arg) noexcept {
  ring* r = ring_for_thread();
  if (r == nullptr) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t n = r->seen.load(std::memory_order_relaxed);
  event& e = r->buf[n % cfg_.events_per_thread];
  e.t_ns = t_ns;
  e.dur_ns = 0;
  e.arg = arg;
  e.id = id;
  e.kind = static_cast<std::uint8_t>(k);
  e.is_instant = 1;
  r->seen.store(n + 1, std::memory_order_release);
}

std::uint64_t collector::size() const noexcept {
  std::uint64_t total = 0;
  for (const ring& r : rings_) {
    const std::uint64_t seen = r.seen.load(std::memory_order_acquire);
    total += seen < cfg_.events_per_thread ? seen : cfg_.events_per_thread;
  }
  return total;
}

std::uint64_t collector::dropped() const noexcept {
  std::uint64_t total = dropped_.load(std::memory_order_relaxed);
  for (const ring& r : rings_) {
    const std::uint64_t seen = r.seen.load(std::memory_order_acquire);
    if (seen > cfg_.events_per_thread) total += seen - cfg_.events_per_thread;
  }
  return total;
}

std::size_t collector::dump_chrome_json(char* buf, std::size_t cap) const {
  text_buffer out(buf, cap);
  out.printf(
      "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":%llu,"
      "\"enabled\":%d},\"traceEvents\":[",
      static_cast<unsigned long long>(dropped()),
      static_cast<int>(ANYSEQ_TRACING != 0));
  bool first = true;
  for (std::size_t tid = 0; tid < rings_.size(); ++tid) {
    const ring& r = rings_[tid];
    const std::uint64_t seen = r.seen.load(std::memory_order_acquire);
    const std::uint64_t capacity = cfg_.events_per_thread;
    const std::uint64_t n = seen < capacity ? seen : capacity;
    const std::uint64_t oldest = seen - n;
    for (std::uint64_t j = 0; j < n; ++j) {
      const event e = r.buf[(oldest + j) % capacity];
      const double ts_us =
          static_cast<double>(e.t_ns - epoch_ns_) / 1e3;
      if (e.is_instant != 0) {
        out.printf(
            "%s{\"name\":\"%s\",\"cat\":\"service\",\"ph\":\"i\",\"s\":\"p\","
            "\"ts\":%.3f,\"pid\":1,\"tid\":%zu,"
            "\"args\":{\"id\":%u,\"arg\":%lld}}",
            first ? "" : ",", to_string(static_cast<instant>(e.kind)), ts_us,
            tid, e.id, static_cast<long long>(e.arg));
      } else {
        out.printf(
            "%s{\"name\":\"%s\",\"cat\":\"service\",\"ph\":\"X\","
            "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%zu,"
            "\"args\":{\"id\":%u,\"arg\":%lld}}",
            first ? "" : ",", to_string(static_cast<span>(e.kind)), ts_us,
            static_cast<double>(e.dur_ns) / 1e3, tid, e.id,
            static_cast<long long>(e.arg));
      }
      first = false;
    }
  }
  out.printf("]}\n");
  return out.needed();
}

}  // namespace anyseq::service::trace
