#include "service/telemetry.hpp"

#include <algorithm>

namespace anyseq::service {
namespace {

/// xorshift64* — tiny, fast, good enough for reservoir admission.
std::uint64_t next_random(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545F4914F6CDD1Dull;
}

/// Nearest-rank quantile of a sorted, non-empty range:
/// index ceil(num/den * n) - 1.  Quantiles are passed as exact
/// rationals (999/1000 for p99.9) so no floating-point rounding can
/// move a rank.
[[nodiscard]] std::uint64_t rank_of(const std::vector<std::uint64_t>& sorted,
                                    std::size_t num, std::size_t den) {
  const std::size_t n = sorted.size();
  const std::size_t r = (num * n + den - 1) / den;
  return sorted[std::max<std::size_t>(1, r) - 1];
}

/// Fill all four tracked quantiles from one sorted sample.
void fill_ranks(const std::vector<std::uint64_t>& sorted,
                latency_reservoir::percentiles& out) {
  out.p50 = rank_of(sorted, 50, 100);
  out.p90 = rank_of(sorted, 90, 100);
  out.p99 = rank_of(sorted, 99, 100);
  out.p999 = rank_of(sorted, 999, 1000);
}

}  // namespace

const char* to_string(request_class c) noexcept {
  switch (c) {
    case request_class::interactive: return "interactive";
    case request_class::bulk: return "bulk";
  }
  return "?";
}

latency_reservoir::latency_reservoir(std::size_t capacity)
    : buffer_(std::max<std::size_t>(1, capacity), 0),
      rng_state_(0x9E3779B97F4A7C15ull) {
  scratch_.reserve(buffer_.size());
}

void latency_reservoir::record(std::uint64_t ns) {
  std::lock_guard lock(mutex_);
  ++seen_;
  if (filled_ < buffer_.size()) {
    buffer_[filled_++] = ns;
    return;
  }
  // Algorithm R: keep the new sample with probability capacity/seen.
  const std::uint64_t j = next_random(rng_state_) % seen_;
  if (j < buffer_.size()) buffer_[static_cast<std::size_t>(j)] = ns;
}

latency_reservoir::percentiles latency_reservoir::snapshot() const {
  percentiles out;
  std::lock_guard lock(mutex_);
  out.samples = filled_;
  if (filled_ == 0) return out;
  scratch_.assign(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(filled_));
  std::sort(scratch_.begin(), scratch_.end());
  fill_ranks(scratch_, out);
  return out;
}

void latency_reservoir::collect(std::vector<std::uint64_t>& out) const {
  std::lock_guard lock(mutex_);
  out.insert(out.end(), buffer_.begin(),
             buffer_.begin() + static_cast<std::ptrdiff_t>(filled_));
}

latency_reservoir::percentiles nearest_rank_percentiles(
    std::vector<std::uint64_t>& samples) {
  latency_reservoir::percentiles out;
  out.samples = samples.size();
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  fill_ranks(samples, out);
  return out;
}

}  // namespace anyseq::service
