#include "service/telemetry.hpp"

#include <algorithm>

namespace anyseq::service {
namespace {

/// xorshift64* — tiny, fast, good enough for reservoir admission.
std::uint64_t next_random(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545F4914F6CDD1Dull;
}

/// Nearest-rank percentile of a sorted, non-empty range:
/// index ceil(p/100 * n) - 1.
[[nodiscard]] std::uint64_t rank_of(const std::vector<std::uint64_t>& sorted,
                                    std::uint64_t p) {
  const std::size_t n = sorted.size();
  const std::size_t r = (static_cast<std::size_t>(p) * n + 99) / 100;
  return sorted[std::max<std::size_t>(1, r) - 1];
}

}  // namespace

const char* to_string(request_class c) noexcept {
  switch (c) {
    case request_class::interactive: return "interactive";
    case request_class::bulk: return "bulk";
  }
  return "?";
}

latency_reservoir::latency_reservoir(std::size_t capacity)
    : buffer_(std::max<std::size_t>(1, capacity), 0),
      rng_state_(0x9E3779B97F4A7C15ull) {
  scratch_.reserve(buffer_.size());
}

void latency_reservoir::record(std::uint64_t ns) {
  std::lock_guard lock(mutex_);
  ++seen_;
  if (filled_ < buffer_.size()) {
    buffer_[filled_++] = ns;
    return;
  }
  // Algorithm R: keep the new sample with probability capacity/seen.
  const std::uint64_t j = next_random(rng_state_) % seen_;
  if (j < buffer_.size()) buffer_[static_cast<std::size_t>(j)] = ns;
}

latency_reservoir::percentiles latency_reservoir::snapshot() const {
  percentiles out;
  std::lock_guard lock(mutex_);
  out.samples = filled_;
  if (filled_ == 0) return out;
  scratch_.assign(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(filled_));
  std::sort(scratch_.begin(), scratch_.end());
  out.p50 = rank_of(scratch_, 50);
  out.p99 = rank_of(scratch_, 99);
  return out;
}

void latency_reservoir::collect(std::vector<std::uint64_t>& out) const {
  std::lock_guard lock(mutex_);
  out.insert(out.end(), buffer_.begin(),
             buffer_.begin() + static_cast<std::ptrdiff_t>(filled_));
}

latency_reservoir::percentiles nearest_rank_percentiles(
    std::vector<std::uint64_t>& samples) {
  latency_reservoir::percentiles out;
  out.samples = samples.size();
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  out.p50 = rank_of(samples, 50);
  out.p99 = rank_of(samples, 99);
  return out;
}

}  // namespace anyseq::service
