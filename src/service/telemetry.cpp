#include "service/telemetry.hpp"

#include <algorithm>

namespace anyseq::service {
namespace {

/// xorshift64* — tiny, fast, good enough for reservoir admission.
std::uint64_t next_random(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545F4914F6CDD1Dull;
}

}  // namespace

latency_reservoir::latency_reservoir(std::size_t capacity)
    : buffer_(std::max<std::size_t>(1, capacity), 0),
      rng_state_(0x9E3779B97F4A7C15ull) {}

void latency_reservoir::record(std::uint64_t ns) {
  std::lock_guard lock(mutex_);
  ++seen_;
  if (filled_ < buffer_.size()) {
    buffer_[filled_++] = ns;
    return;
  }
  // Algorithm R: keep the new sample with probability capacity/seen.
  const std::uint64_t j = next_random(rng_state_) % seen_;
  if (j < buffer_.size()) buffer_[static_cast<std::size_t>(j)] = ns;
}

latency_reservoir::percentiles latency_reservoir::snapshot() const {
  std::vector<std::uint64_t> copy;
  {
    std::lock_guard lock(mutex_);
    copy.assign(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(filled_));
  }
  percentiles out;
  out.samples = copy.size();
  if (copy.empty()) return out;
  std::sort(copy.begin(), copy.end());
  // Nearest-rank: index ceil(p/100 * n) - 1.
  const auto rank = [&](std::uint64_t p) {
    const std::size_t n = copy.size();
    const std::size_t r = (static_cast<std::size_t>(p) * n + 99) / 100;
    return copy[std::max<std::size_t>(1, r) - 1];
  };
  out.p50 = rank(50);
  out.p99 = rank(99);
  return out;
}

}  // namespace anyseq::service
