/// \file service.cpp
/// The asynchronous alignment service: slot lifecycle, classed admission
/// with backpressure and tenant quotas, the cache-fronted submit path,
/// the batcher thread with its adaptive-linger controller, and batch
/// execution on the global thread pool.
///
/// Locking discipline (the whole file follows it):
///   * `mu_` guards the admission rings, the slot/workspace freelists,
///     the tenant token buckets, the accepting/stopping flags, and slot
///     field initialization during submit (a free slot is owned by the
///     submitting thread).
///   * `slot::m` guards one request's completion state (st, result,
///     error, abandoned) from enqueue to retirement.
///   * The only place both are held is mu_ -> slot::m (submit and
///     fail_dequeued_locked); nothing acquires mu_ while holding a
///     slot mutex, so the order is acyclic.
///   * Batcher and executor read slot inputs (q, s, opt, rt, cls)
///     without slot::m: those fields are written before the index is
///     published under mu_ and are immutable until retirement, and every
///     handoff (submit -> batcher via mu_, batcher -> executor via the
///     pool's job queue) is a release/acquire edge.
///   * The response cache has its own shard locks and is never touched
///     while mu_ or a slot mutex is held.

#include "service/service.hpp"

#include <algorithm>

#include "core/alphabet.hpp"

namespace anyseq::service {

namespace {

using clock = std::chrono::steady_clock;

[[nodiscard]] std::uint64_t ns_between(clock::time_point a,
                                       clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

[[nodiscard]] std::int64_t to_ns(std::chrono::microseconds us) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(us).count();
}

}  // namespace

const char* to_string(backpressure p) noexcept {
  switch (p) {
    case backpressure::block: return "block";
    case backpressure::reject: return "reject";
    case backpressure::shed_oldest: return "shed_oldest";
  }
  return "?";
}

// ---------------------------------------------------------------------
// ticket
// ---------------------------------------------------------------------

ticket::ticket(ticket&& other) noexcept
    : svc_(other.svc_), slot_(other.slot_), gen_(other.gen_) {
  other.svc_ = nullptr;
}

ticket& ticket::operator=(ticket&& other) noexcept {
  if (this != &other) {
    retire();
    svc_ = other.svc_;
    slot_ = other.slot_;
    gen_ = other.gen_;
    other.svc_ = nullptr;
  }
  return *this;
}

ticket::~ticket() { retire(); }

void ticket::retire() noexcept {
  if (svc_ == nullptr) return;
  aligner::slot& sl = svc_->slots_[slot_];
  aligner* svc = svc_;
  svc_ = nullptr;
  std::unique_lock lock(sl.m);
  if (sl.gen != gen_) return;  // defensive; cannot happen for live tickets
  if (sl.st == aligner::slot_state::done ||
      sl.st == aligner::slot_state::failed) {
    sl.st = aligner::slot_state::free_slot;
    sl.result = {};
    sl.error = nullptr;
    lock.unlock();
    svc->release_slot(slot_);
    return;
  }
  // Still in flight (queued, forming, or executing): the completer
  // recycles the slot when the result lands.
  sl.abandoned = true;
}

bool ticket::ready() const {
  if (svc_ == nullptr)
    throw invalid_argument_error("ticket::ready on an empty ticket");
  aligner::slot& sl = svc_->slots_[slot_];
  std::lock_guard lock(sl.m);
  return sl.gen == gen_ && (sl.st == aligner::slot_state::done ||
                            sl.st == aligner::slot_state::failed);
}

alignment_result ticket::get() {
  if (svc_ == nullptr)
    throw invalid_argument_error("ticket::get on an empty ticket");
  aligner::slot& sl = svc_->slots_[slot_];
  aligner* svc = svc_;
  alignment_result out;
  std::exception_ptr err;
  {
    std::unique_lock lock(sl.m);
    if (sl.gen != gen_)
      throw invalid_argument_error("ticket::get on a stale ticket");
    sl.cv.wait(lock, [&] {
      return sl.st == aligner::slot_state::done ||
             sl.st == aligner::slot_state::failed;
    });
    if (sl.st == aligner::slot_state::failed)
      err = sl.error;
    else
      out = std::move(sl.result);
    sl.st = aligner::slot_state::free_slot;
    sl.result = {};
    sl.error = nullptr;
  }
  svc_ = nullptr;
  svc->release_slot(slot_);
  if (err) std::rethrow_exception(err);
  return out;
}

// ---------------------------------------------------------------------
// aligner: construction / configuration
// ---------------------------------------------------------------------

static_assert(n_request_classes == 2,
              "aligner's reservoir array init assumes two request classes");

aligner::aligner(config cfg)
    : cfg_(cfg),
      pool_(&parallel::thread_pool::global()),
      latency_{latency_reservoir(
                   std::max<std::size_t>(1, cfg.latency_reservoir)),
               latency_reservoir(
                   std::max<std::size_t>(1, cfg.latency_reservoir))} {
  if (cfg_.max_batch < 1)
    throw invalid_argument_error("service: max_batch must be >= 1");
  if (cfg_.queue_capacity < 1)
    throw invalid_argument_error("service: queue_capacity must be >= 1");
  if (cfg_.max_linger.count() < 0)
    throw invalid_argument_error("service: max_linger must be >= 0");
  if (cfg_.adaptive_linger) {
    if (cfg_.min_linger.count() < 0)
      throw invalid_argument_error("service: min_linger must be >= 0");
    if (cfg_.min_linger > cfg_.max_linger)
      throw invalid_argument_error(
          "service: min_linger must be <= max_linger");
    if (cfg_.interactive_p99_target.count() <= 0)
      throw invalid_argument_error(
          "service: interactive_p99_target must be > 0");
  }
  if (cfg_.tenant_rate < 0.0 || cfg_.tenant_burst < 0.0)
    throw invalid_argument_error(
        "service: tenant_rate/tenant_burst must be >= 0");
  if (cfg_.tenant_rate > 0.0 && cfg_.max_tenants < 1)
    throw invalid_argument_error(
        "service: max_tenants must be >= 1 when quotas are enabled");
  if (cfg_.max_outstanding == 0)
    cfg_.max_outstanding = 4 * cfg_.queue_capacity;
  if (cfg_.max_outstanding < cfg_.queue_capacity)
    throw invalid_argument_error(
        "service: max_outstanding must be >= queue_capacity");
  if (cfg_.max_inflight_batches == 0)
    cfg_.max_inflight_batches =
        static_cast<std::size_t>(std::max(1, pool_->size()));
  if (cfg_.latency_reservoir == 0) cfg_.latency_reservoir = 1;

  slots_ = std::vector<slot>(cfg_.max_outstanding);
  free_.reserve(cfg_.max_outstanding);
  // Lowest index on top of the stack: small deployments touch few slots.
  for (std::size_t i = cfg_.max_outstanding; i > 0; --i)
    free_.push_back(static_cast<std::uint32_t>(i - 1));
  // Each ring sized to max_outstanding, not queue_capacity: the
  // admission check and the publish happen under separate mu_ holds (the
  // slot fill in between is lock-free), so the instantaneous depth can
  // briefly exceed the soft queue_capacity bound by the number of
  // in-flight submissions — but never the number of slots.
  for (auto& r : rings_) r.buf.assign(cfg_.max_outstanding, 0);
  exec_units_ = std::vector<exec_unit>(cfg_.max_inflight_batches);
  free_ws_.reserve(cfg_.max_inflight_batches);
  for (std::size_t w = cfg_.max_inflight_batches; w > 0; --w)
    free_ws_.push_back(static_cast<std::uint32_t>(w - 1));
  for (auto& ws : exec_units_) {
    ws.items.reserve(cfg_.max_batch);
    ws.pairs.reserve(cfg_.max_batch);
    ws.results.reserve(cfg_.max_batch);
  }
  if (cfg_.tenant_rate > 0.0)
    buckets_ = std::vector<token_bucket>(cfg_.max_tenants);

  if (cfg_.shared_cache != nullptr) {
    cache_ = cfg_.shared_cache;
  } else if (cfg_.cache_capacity > 0) {
    owned_cache_ = std::make_unique<response_cache>(
        response_cache::config{cfg_.cache_capacity, cfg_.cache_shards});
    cache_ = owned_cache_.get();
  }

  linger_ns_.store(to_ns(cfg_.max_linger), std::memory_order_relaxed);

  batcher_ = std::thread([this] { batcher_loop(); });
}

aligner::~aligner() { shutdown(true); }

// ---------------------------------------------------------------------
// Admission
// ---------------------------------------------------------------------

std::uint32_t aligner::ring_pop(admission_ring& r) noexcept {
  const std::uint32_t idx = r.buf[r.head];
  r.head = (r.head + 1) % r.buf.size();
  --r.count;
  depth_.fetch_sub(1, std::memory_order_relaxed);
  return idx;
}

void aligner::ring_push(admission_ring& r, std::uint32_t idx) noexcept {
  r.buf[(r.head + r.count) % r.buf.size()] = idx;
  ++r.count;
  depth_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t aligner::ring_extract_compatible(admission_ring& r,
                                             const slot& lead,
                                             std::vector<std::uint32_t>& batch,
                                             std::size_t max_take) noexcept {
  // Walk the whole ring: extract requests batchable with `lead`, compact
  // the incompatible ones in place so their FIFO order is untouched.
  // This keeps occupancy high when several option classes interleave
  // (concurrent heterogeneous producers) — a compatible-prefix-only
  // batcher degrades to one request per batch on round-robin traffic.
  std::size_t taken = 0, kept = 0;
  const std::size_t count = r.count;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t idx = r.buf[(r.head + i) % r.buf.size()];
    const slot& sl = slots_[idx];
    if (taken < max_take && sl.rt == lead.rt &&
        options_compatible(sl.opt, lead.opt)) {
      batch.push_back(idx);
      ++taken;
    } else {
      r.buf[(r.head + kept) % r.buf.size()] = idx;
      ++kept;
    }
  }
  r.count = kept;
  if (taken > 0) depth_.fetch_sub(taken, std::memory_order_relaxed);
  return taken;
}

void aligner::fail_dequeued_locked(std::uint32_t idx, std::exception_ptr e) {
  slot& sl = slots_[idx];
  failed_[static_cast<std::size_t>(sl.cls)].fetch_add(
      1, std::memory_order_relaxed);
  std::unique_lock lock(sl.m);
  sl.error = std::move(e);
  sl.st = slot_state::failed;
  if (sl.abandoned) {
    sl.st = slot_state::free_slot;
    sl.error = nullptr;
    lock.unlock();
    free_.push_back(idx);  // mu_ is held by contract
    space_cv_.notify_one();
    return;
  }
  lock.unlock();
  sl.cv.notify_all();
}

void aligner::release_slot(std::uint32_t idx) {
  {
    std::lock_guard lock(mu_);
    free_.push_back(idx);
  }
  space_cv_.notify_one();
}

bool aligner::take_token(std::uint32_t tenant, clock::time_point now) {
  token_bucket& b = buckets_[tenant];
  const double burst = cfg_.tenant_burst > 0.0
                           ? cfg_.tenant_burst
                           : std::max(1.0, cfg_.tenant_rate);
  if (!b.init) {
    b.tokens = burst;  // a fresh tenant starts with a full bucket
    b.last = now;
    b.init = true;
  }
  const double dt = std::chrono::duration<double>(now - b.last).count();
  b.last = now;
  b.tokens = std::min(burst, b.tokens + dt * cfg_.tenant_rate);
  if (b.tokens >= 1.0) {
    b.tokens -= 1.0;
    return true;
  }
  return false;
}

ticket aligner::submit(stage::seq_view q, stage::seq_view s,
                       const align_options& opt, const submit_options& so) {
  return submit_impl(q, s, {}, {}, /*copy_strings=*/false, opt, so);
}

ticket aligner::submit_strings(std::string_view q, std::string_view s,
                               const align_options& opt,
                               const submit_options& so) {
  return submit_impl({}, {}, q, s, /*copy_strings=*/true, opt, so);
}

ticket aligner::submit_impl(stage::seq_view q, stage::seq_view s,
                            std::string_view q_chars,
                            std::string_view s_chars, bool copy_strings,
                            const align_options& opt,
                            const submit_options& so) {
  validate(opt);  // same synchronous contract as anyseq::align
  const auto ci = static_cast<std::size_t>(so.cls);
  if (ci >= n_cls)
    throw invalid_argument_error("service: invalid request_class");
  if (cfg_.tenant_rate > 0.0 && so.tenant >= cfg_.max_tenants)
    throw invalid_argument_error(
        "service: tenant id must be < config::max_tenants");

  std::uint32_t idx;
  {
    std::unique_lock lock(mu_);
    for (;;) {
      if (!accepting_)
        throw shutdown_error("service: submit after shutdown");
      if (!free_.empty()) break;
      // Slot exhaustion means tickets are not being retrieved; shedding
      // a queued request cannot free a slot, so only block can wait.
      if (cfg_.policy != backpressure::block) {
        rejected_[ci].fetch_add(1, std::memory_order_relaxed);
        throw queue_full_error(
            "service: all max_outstanding tickets are unretrieved");
      }
      space_cv_.wait(lock, [&] { return !free_.empty() || !accepting_; });
    }
    idx = free_.back();
    free_.pop_back();
  }

  // A popped free slot is owned by this thread alone, so it is filled
  // (including the possibly large string encode) without holding mu_ —
  // producers must not serialize each other or stall the batcher on a
  // memcpy-scale loop.  The ring_push below under mu_ is the release
  // point that publishes these writes to the batcher.
  slot& sl = slots_[idx];
  const auto return_slot = [&] {
    sl.st = slot_state::free_slot;
    std::lock_guard lock(mu_);
    free_.push_back(idx);
    space_cv_.notify_one();
  };
  ++sl.gen;
  sl.abandoned = false;
  sl.st = slot_state::queued;
  if (copy_strings) {
    try {
      sl.q_store.resize(q_chars.size());
      sl.s_store.resize(s_chars.size());
    } catch (...) {
      return_slot();
      throw;
    }
    for (std::size_t i = 0; i < q_chars.size(); ++i)
      sl.q_store[i] = dna_encode(q_chars[i]);
    for (std::size_t i = 0; i < s_chars.size(); ++i)
      sl.s_store[i] = dna_encode(s_chars[i]);
    sl.q = stage::seq_view(sl.q_store.data(),
                           static_cast<index_t>(sl.q_store.size()));
    sl.s = stage::seq_view(sl.s_store.data(),
                           static_cast<index_t>(sl.s_store.size()));
  } else {
    sl.q = q;
    sl.s = s;
  }
  sl.opt = opt;
  sl.cls = so.cls;
  sl.tenant = so.tenant;
  sl.result = {};
  sl.error = nullptr;
  sl.t_submit = clock::now();
  const std::uint64_t gen = sl.gen;

  // Cache front: a hit completes the ticket on the spot — it never
  // enters the admission ring, never wakes the batcher, and is not
  // charged against the tenant's quota (quotas meter *work*).
  if (cache_ != nullptr && cache_->lookup(sl.q, sl.s, sl.opt, sl.result)) {
    {
      std::lock_guard slock(sl.m);
      sl.st = slot_state::done;
    }
    cache_hits_[ci].fetch_add(1, std::memory_order_relaxed);
    accepted_[ci].fetch_add(1, std::memory_order_relaxed);
    completed_[ci].fetch_add(1, std::memory_order_relaxed);
    latency_[ci].record(ns_between(sl.t_submit, clock::now()));
    return ticket(this, idx, gen);
  }
  if (cache_ != nullptr)
    cache_misses_.fetch_add(1, std::memory_order_relaxed);

  sl.rt = classify(sl.q, sl.s, opt);

  {
    std::unique_lock lock(mu_);
    admission_ring& ring = ring_of(so.cls);
    for (;;) {
      if (!accepting_) {  // shutdown raced the fill: never publish
        sl.st = slot_state::free_slot;
        free_.push_back(idx);
        space_cv_.notify_one();
        throw shutdown_error("service: submit after shutdown");
      }
      if (ring.count < cfg_.queue_capacity) break;  // room to enqueue
      switch (cfg_.policy) {
        case backpressure::reject:
          rejected_[ci].fetch_add(1, std::memory_order_relaxed);
          sl.st = slot_state::free_slot;
          free_.push_back(idx);
          space_cv_.notify_one();
          throw queue_full_error("service: admission queue is full");
        case backpressure::shed_oldest: {
          // Shed within the same class: dropping a bulk request cannot
          // make interactive room and vice versa.
          const std::uint32_t victim = ring_pop(ring);
          shed_[ci].fetch_add(1, std::memory_order_relaxed);
          fail_dequeued_locked(
              victim, std::make_exception_ptr(shed_error(
                          "service: request shed by shed_oldest to admit "
                          "newer traffic")));
          continue;
        }
        case backpressure::block:
          space_cv_.wait(lock, [&] {
            return ring.count < cfg_.queue_capacity || !accepting_;
          });
          continue;
      }
    }
    // Quota is drawn once, after a queue position is certain — a tenant
    // blocked on backpressure keeps accruing refill, and a drained
    // bucket always *rejects* (typed), never blocks.
    if (!buckets_.empty() && !take_token(sl.tenant, clock::now())) {
      quota_rejected_[ci].fetch_add(1, std::memory_order_relaxed);
      sl.st = slot_state::free_slot;
      free_.push_back(idx);
      space_cv_.notify_one();
      throw quota_error("service: tenant quota exhausted");
    }
    // Count before publishing: a scrape racing the batcher must never
    // see completed > accepted.
    accepted_[ci].fetch_add(1, std::memory_order_relaxed);
    ring_push(ring, idx);
  }

  batcher_cv_.notify_one();
  return ticket(this, idx, gen);
}

// ---------------------------------------------------------------------
// Batching and execution
// ---------------------------------------------------------------------

void aligner::batcher_loop() {
  std::vector<std::uint32_t> batch;
  batch.reserve(cfg_.max_batch);
  next_adapt_ = clock::now();
  for (;;) {
    std::unique_lock lock(mu_);
    batcher_cv_.wait(lock, [&] { return stopping_ || queued_total() > 0; });
    if (queued_total() == 0) {
      if (stopping_) return;
      continue;
    }

    // Strict priority: interactive is served whenever anything is
    // waiting there; bulk fills the machine otherwise.
    const request_class cls = ring_of(request_class::interactive).count > 0
                                  ? request_class::interactive
                                  : request_class::bulk;
    admission_ring& ring = ring_of(cls);
    const bool serving_bulk = cls == request_class::bulk;

    batch.clear();
    const std::uint32_t first = ring_pop(ring);
    batch.push_back(first);
    const slot& lead = slots_[first];
    const auto deadline =
        clock::now() + std::chrono::nanoseconds(
                           linger_ns_.load(std::memory_order_relaxed));
    space_cv_.notify_all();  // the pop freed admission room
    for (;;) {
      const std::size_t taken = ring_extract_compatible(
          ring, lead, batch, cfg_.max_batch - batch.size());
      // Wake blocked submitters *before* lingering — the batcher may now
      // park for a full linger, and the room just freed must be usable
      // immediately.
      if (taken > 0) space_cv_.notify_all();
      if (batch.size() >= cfg_.max_batch) break;  // flush: batch full
      // Option-compatibility boundary: only incompatible requests remain
      // queued in this class — dispatch now so the next option class is
      // not held up.
      if (ring.count > 0) break;
      // An interactive arrival cuts a lingering bulk batch short: flush
      // what we have so the priority queue is served next iteration.
      if (serving_bulk && ring_of(request_class::interactive).count > 0)
        break;
      if (stopping_) break;  // flush: shutting down
      if (batcher_cv_.wait_until(lock, deadline) == std::cv_status::timeout)
        break;  // flush: linger reached
    }

    inflight_cv_.wait(lock, [&] { return !free_ws_.empty(); });
    const std::uint32_t w = free_ws_.back();
    free_ws_.pop_back();
    ++inflight_;
    exec_unit& ws = exec_units_[w];
    ws.items.assign(batch.begin(), batch.end());
    lock.unlock();

    pool_->run([this, w] { execute(w); });

    if (cfg_.adaptive_linger) adapt_linger(clock::now());
  }
}

void aligner::adapt_linger(clock::time_point now) {
  if (now < next_adapt_) return;
  next_adapt_ = now + std::chrono::milliseconds(5);

  const auto p = latency_[static_cast<std::size_t>(
                              request_class::interactive)]
                     .snapshot();  // allocation-free (member scratch)
  const auto target =
      static_cast<std::uint64_t>(to_ns(cfg_.interactive_p99_target));
  const std::int64_t lo = to_ns(cfg_.min_linger);
  const std::int64_t hi = to_ns(cfg_.max_linger);
  std::int64_t cur = linger_ns_.load(std::memory_order_relaxed);

  // Batch occupancy over the window since the last adaptation tick.
  const std::uint64_t b = batches_.load(std::memory_order_relaxed);
  const std::uint64_t br = batched_requests_.load(std::memory_order_relaxed);
  const std::uint64_t db = b - adapt_last_batches_;
  const std::uint64_t dbr = br - adapt_last_batched_requests_;
  adapt_last_batches_ = b;
  adapt_last_batched_requests_ = br;
  const double occupancy =
      db > 0 ? static_cast<double>(dbr) / static_cast<double>(db)
             : static_cast<double>(cfg_.max_batch);

  if (p.samples > 0 && p.p99 > target) {
    // Tail above target: shrink multiplicatively so the controller
    // converges in a handful of ticks even from max_linger.
    cur = std::max(lo, cur - std::max<std::int64_t>(cur / 4, 1000));
  } else if (occupancy < 0.5 * static_cast<double>(cfg_.max_batch) &&
             (p.samples == 0 || p.p99 * 2 <= target)) {
    // Comfortable tail but under-full batches: more linger buys
    // occupancy.  The target/2 band leaves hysteresis so the linger
    // does not oscillate around the threshold.
    cur = std::min(hi, cur + std::max<std::int64_t>(cur / 4, 1000));
  }
  linger_ns_.store(cur, std::memory_order_relaxed);
}

void aligner::complete(std::uint32_t idx, alignment_result&& r,
                       std::exception_ptr e) {
  slot& sl = slots_[idx];
  const auto ci = static_cast<std::size_t>(sl.cls);
  // Successful results feed the cache before delivery; the insert copies
  // into entry-owned recycled buffers, so moving `r` below is safe.  No
  // service lock is held here — the cache's shard locks are leaves.
  if (e == nullptr && cache_ != nullptr)
    cache_->insert(sl.q, sl.s, sl.opt, r);
  const std::uint64_t lat = ns_between(sl.t_submit, clock::now());
  bool recycle = false;
  {
    std::lock_guard lock(sl.m);
    if (e) {
      sl.error = std::move(e);
      sl.st = slot_state::failed;
      failed_[ci].fetch_add(1, std::memory_order_relaxed);
    } else {
      sl.result = std::move(r);
      sl.st = slot_state::done;
      completed_[ci].fetch_add(1, std::memory_order_relaxed);
      latency_[ci].record(lat);
    }
    if (sl.abandoned) {
      sl.st = slot_state::free_slot;
      sl.result = {};
      sl.error = nullptr;
      recycle = true;
    }
  }
  if (recycle)
    release_slot(idx);
  else
    sl.cv.notify_all();
}

void aligner::execute(std::uint32_t ws_index) {
  exec_unit& ws = exec_units_[ws_index];

  // Group similar sizes so the inter-sequence SIMD kernel sees
  // uniform-length chunks; per-slot delivery makes order irrelevant.
  std::sort(ws.items.begin(), ws.items.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const slot& x = slots_[a];
              const slot& y = slots_[b];
              return lane_order_less(x.q.size(), x.s.size(), a, y.q.size(),
                                     y.s.size(), b);
            });

  // Execution goes through this unit's reusable aligner: same route
  // selection as the synchronous API (so results stay byte-identical),
  // but every DP buffer comes from the unit's warm workspace arena.
  const slot& lead = slots_[ws.items.front()];
  if (ws.items.size() == 1 || lead.rt == route::solo) {
    for (const std::uint32_t idx : ws.items) {
      slot& sl = slots_[idx];
      try {
        ws.eng.set_options(sl.opt);
        ws.eng.align_into(sl.q, sl.s, ws.scratch);
        complete(idx, std::move(ws.scratch), nullptr);
      } catch (...) {
        complete(idx, {}, std::current_exception());
      }
    }
  } else {
    ws.pairs.clear();
    for (const std::uint32_t idx : ws.items)
      ws.pairs.push_back({slots_[idx].q, slots_[idx].s});
    try {
      ws.eng.set_options(lead.opt);
      ws.eng.align_batch_into(ws.pairs, ws.results);
      for (std::size_t k = 0; k < ws.items.size(); ++k)
        complete(ws.items[k], std::move(ws.results[k]), nullptr);
    } catch (...) {
      const auto e = std::current_exception();
      for (const std::uint32_t idx : ws.items) complete(idx, {}, e);
    }
  }

  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(ws.items.size(), std::memory_order_relaxed);

  {
    std::lock_guard lock(mu_);
    --inflight_;
    free_ws_.push_back(ws_index);
    // Notify under the lock: this broadcast is the last thing the pool
    // worker does with service state, and shutdown destroys the service
    // as soon as it observes inflight_ == 0 — an unlocked notify could
    // still be touching the condvar when the destructor frees it.
    inflight_cv_.notify_all();
  }
}

// ---------------------------------------------------------------------
// Shutdown and stats
// ---------------------------------------------------------------------

void aligner::shutdown(bool drain) {
  std::lock_guard shut_lock(shutdown_mu_);
  if (shut_down_) return;

  {
    std::lock_guard lock(mu_);
    accepting_ = false;
    stopping_ = true;
    if (!drain) {
      const auto e = std::make_exception_ptr(
          shutdown_error("service: request failed by no-drain shutdown"));
      for (auto& r : rings_)
        while (r.count > 0) fail_dequeued_locked(ring_pop(r), e);
    }
  }
  batcher_cv_.notify_all();
  space_cv_.notify_all();  // blocked submitters observe the shutdown
  if (batcher_.joinable()) batcher_.join();

  std::unique_lock lock(mu_);
  inflight_cv_.wait(lock, [&] { return inflight_ == 0; });
  shut_down_ = true;
}

void aligner::collect_latency(request_class c,
                              std::vector<std::uint64_t>& out) const {
  latency_[static_cast<std::size_t>(c)].collect(out);
}

service_stats aligner::stats() const {
  service_stats out;
  for (std::size_t c = 0; c < n_cls; ++c) {
    class_stats& cs = out.per_class[c];
    cs.accepted = accepted_[c].load(std::memory_order_relaxed);
    cs.rejected = rejected_[c].load(std::memory_order_relaxed);
    cs.shed = shed_[c].load(std::memory_order_relaxed);
    cs.quota_rejected = quota_rejected_[c].load(std::memory_order_relaxed);
    cs.completed = completed_[c].load(std::memory_order_relaxed);
    cs.failed = failed_[c].load(std::memory_order_relaxed);
    cs.cache_hits = cache_hits_[c].load(std::memory_order_relaxed);
    const auto p = latency_[c].snapshot();
    cs.p50_latency_ns = p.p50;
    cs.p99_latency_ns = p.p99;
    cs.latency_samples = p.samples;
    out.accepted += cs.accepted;
    out.rejected += cs.rejected;
    out.shed += cs.shed;
    out.quota_rejected += cs.quota_rejected;
    out.completed += cs.completed;
    out.failed += cs.failed;
    out.cache_hits += cs.cache_hits;
  }
  out.batches = batches_.load(std::memory_order_relaxed);
  out.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  out.mean_batch_occupancy =
      out.batches > 0 ? static_cast<double>(out.batched_requests) /
                            static_cast<double>(out.batches)
                      : 0.0;
  // Aggregate percentiles rank the union of both class reservoirs —
  // never a combination of per-class ranks (see telemetry.hpp).
  std::vector<std::uint64_t> merged;
  for (const auto& res : latency_) res.collect(merged);
  const auto p = nearest_rank_percentiles(merged);
  out.p50_latency_ns = p.p50;
  out.p99_latency_ns = p.p99;
  out.latency_samples = p.samples;
  out.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  // Evictions are a cache-global number: report them only for an owned
  // cache.  With a shared cache the router owns that figure — per-shard
  // copies would multi-count it in any merge.
  if (owned_cache_) out.cache_evictions = owned_cache_->stats().evictions;
  out.effective_linger_us = static_cast<std::uint64_t>(
      linger_ns_.load(std::memory_order_relaxed) / 1000);
  {
    std::lock_guard lock(mu_);
    out.queue_depth = queued_total();
    out.in_flight_batches = inflight_;
    out.outstanding_tickets = slots_.size() - free_.size();
  }
  return out;
}

// ---------------------------------------------------------------------
// Process-wide default service
// ---------------------------------------------------------------------

aligner& global() {
  // aligner's constructor touches thread_pool::global() first, so the
  // pool's function-local static completes construction earlier and is
  // destroyed later than this one.
  static aligner svc{config{}};
  return svc;
}

ticket submit(stage::seq_view q, stage::seq_view s,
              const align_options& opt) {
  return global().submit(q, s, opt);
}

ticket submit_strings(std::string_view q, std::string_view s,
                      const align_options& opt) {
  return global().submit_strings(q, s, opt);
}

service_stats stats() { return global().stats(); }

}  // namespace anyseq::service
