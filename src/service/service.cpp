/// \file service.cpp
/// The asynchronous alignment service: slot lifecycle, admission with
/// backpressure, the batcher thread, and batch execution on the global
/// thread pool.
///
/// Locking discipline (the whole file follows it):
///   * `mu_` guards the admission ring, the slot/workspace freelists,
///     the accepting/stopping flags, and slot-field initialization
///     during submit (a free slot is owned by the submitting thread).
///   * `slot::m` guards one request's completion state (st, result,
///     error, abandoned) from enqueue to retirement.
///   * The only place both are held is mu_ -> slot::m (submit and
///     fail_dequeued_locked); nothing acquires mu_ while holding a
///     slot mutex, so the order is acyclic.
///   * Batcher and executor read slot inputs (q, s, opt, rt) without
///     slot::m: those fields are written before the index is published
///     under mu_ and are immutable until retirement, and every handoff
///     (submit -> batcher via mu_, batcher -> executor via the pool's
///     job queue) is a release/acquire edge.

#include "service/service.hpp"

#include <algorithm>

#include "core/alphabet.hpp"

namespace anyseq::service {

namespace {

using clock = std::chrono::steady_clock;

[[nodiscard]] std::uint64_t ns_between(clock::time_point a,
                                       clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

}  // namespace

const char* to_string(backpressure p) noexcept {
  switch (p) {
    case backpressure::block: return "block";
    case backpressure::reject: return "reject";
    case backpressure::shed_oldest: return "shed_oldest";
  }
  return "?";
}

// ---------------------------------------------------------------------
// ticket
// ---------------------------------------------------------------------

ticket::ticket(ticket&& other) noexcept
    : svc_(other.svc_), slot_(other.slot_), gen_(other.gen_) {
  other.svc_ = nullptr;
}

ticket& ticket::operator=(ticket&& other) noexcept {
  if (this != &other) {
    retire();
    svc_ = other.svc_;
    slot_ = other.slot_;
    gen_ = other.gen_;
    other.svc_ = nullptr;
  }
  return *this;
}

ticket::~ticket() { retire(); }

void ticket::retire() noexcept {
  if (svc_ == nullptr) return;
  aligner::slot& sl = svc_->slots_[slot_];
  aligner* svc = svc_;
  svc_ = nullptr;
  std::unique_lock lock(sl.m);
  if (sl.gen != gen_) return;  // defensive; cannot happen for live tickets
  if (sl.st == aligner::slot_state::done ||
      sl.st == aligner::slot_state::failed) {
    sl.st = aligner::slot_state::free_slot;
    sl.result = {};
    sl.error = nullptr;
    lock.unlock();
    svc->release_slot(slot_);
    return;
  }
  // Still in flight (queued, forming, or executing): the completer
  // recycles the slot when the result lands.
  sl.abandoned = true;
}

bool ticket::ready() const {
  if (svc_ == nullptr)
    throw invalid_argument_error("ticket::ready on an empty ticket");
  aligner::slot& sl = svc_->slots_[slot_];
  std::lock_guard lock(sl.m);
  return sl.gen == gen_ && (sl.st == aligner::slot_state::done ||
                            sl.st == aligner::slot_state::failed);
}

alignment_result ticket::get() {
  if (svc_ == nullptr)
    throw invalid_argument_error("ticket::get on an empty ticket");
  aligner::slot& sl = svc_->slots_[slot_];
  aligner* svc = svc_;
  alignment_result out;
  std::exception_ptr err;
  {
    std::unique_lock lock(sl.m);
    if (sl.gen != gen_)
      throw invalid_argument_error("ticket::get on a stale ticket");
    sl.cv.wait(lock, [&] {
      return sl.st == aligner::slot_state::done ||
             sl.st == aligner::slot_state::failed;
    });
    if (sl.st == aligner::slot_state::failed)
      err = sl.error;
    else
      out = std::move(sl.result);
    sl.st = aligner::slot_state::free_slot;
    sl.result = {};
    sl.error = nullptr;
  }
  svc_ = nullptr;
  svc->release_slot(slot_);
  if (err) std::rethrow_exception(err);
  return out;
}

// ---------------------------------------------------------------------
// aligner: construction / configuration
// ---------------------------------------------------------------------

aligner::aligner(config cfg)
    : cfg_(cfg),
      pool_(&parallel::thread_pool::global()),
      latency_(std::max<std::size_t>(1, cfg.latency_reservoir)) {
  if (cfg_.max_batch < 1)
    throw invalid_argument_error("service: max_batch must be >= 1");
  if (cfg_.queue_capacity < 1)
    throw invalid_argument_error("service: queue_capacity must be >= 1");
  if (cfg_.max_linger.count() < 0)
    throw invalid_argument_error("service: max_linger must be >= 0");
  if (cfg_.max_outstanding == 0)
    cfg_.max_outstanding = 4 * cfg_.queue_capacity;
  if (cfg_.max_outstanding < cfg_.queue_capacity)
    throw invalid_argument_error(
        "service: max_outstanding must be >= queue_capacity");
  if (cfg_.max_inflight_batches == 0)
    cfg_.max_inflight_batches =
        static_cast<std::size_t>(std::max(1, pool_->size()));
  if (cfg_.latency_reservoir == 0) cfg_.latency_reservoir = 1;

  slots_ = std::vector<slot>(cfg_.max_outstanding);
  free_.reserve(cfg_.max_outstanding);
  // Lowest index on top of the stack: small deployments touch few slots.
  for (std::size_t i = cfg_.max_outstanding; i > 0; --i)
    free_.push_back(static_cast<std::uint32_t>(i - 1));
  // Sized to max_outstanding, not queue_capacity: the admission check
  // and the publish happen under separate mu_ holds (the slot fill in
  // between is lock-free), so the instantaneous depth can briefly
  // exceed the soft queue_capacity bound by the number of in-flight
  // submissions — but never the number of slots.
  ring_.assign(cfg_.max_outstanding, 0);
  exec_units_ = std::vector<exec_unit>(cfg_.max_inflight_batches);
  free_ws_.reserve(cfg_.max_inflight_batches);
  for (std::size_t w = cfg_.max_inflight_batches; w > 0; --w)
    free_ws_.push_back(static_cast<std::uint32_t>(w - 1));
  for (auto& ws : exec_units_) {
    ws.items.reserve(cfg_.max_batch);
    ws.pairs.reserve(cfg_.max_batch);
    ws.results.reserve(cfg_.max_batch);
  }

  batcher_ = std::thread([this] { batcher_loop(); });
}

aligner::~aligner() { shutdown(true); }

// ---------------------------------------------------------------------
// Admission
// ---------------------------------------------------------------------


std::uint32_t aligner::ring_pop() noexcept {
  const std::uint32_t idx = ring_[ring_head_];
  ring_head_ = (ring_head_ + 1) % ring_.size();
  --ring_count_;
  return idx;
}

void aligner::ring_push(std::uint32_t idx) noexcept {
  ring_[(ring_head_ + ring_count_) % ring_.size()] = idx;
  ++ring_count_;
}

std::size_t aligner::ring_extract_compatible(const slot& lead,
                                             std::vector<std::uint32_t>& batch,
                                             std::size_t max_take) noexcept {
  // Walk the whole ring: extract requests batchable with `lead`, compact
  // the incompatible ones in place so their FIFO order is untouched.
  // This keeps occupancy high when several option classes interleave
  // (concurrent heterogeneous producers) — a compatible-prefix-only
  // batcher degrades to one request per batch on round-robin traffic.
  std::size_t taken = 0, kept = 0;
  const std::size_t count = ring_count_;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t idx = ring_[(ring_head_ + i) % ring_.size()];
    const slot& sl = slots_[idx];
    if (taken < max_take && sl.rt == lead.rt &&
        options_compatible(sl.opt, lead.opt)) {
      batch.push_back(idx);
      ++taken;
    } else {
      ring_[(ring_head_ + kept) % ring_.size()] = idx;
      ++kept;
    }
  }
  ring_count_ = kept;
  return taken;
}

void aligner::fail_dequeued_locked(std::uint32_t idx, std::exception_ptr e) {
  slot& sl = slots_[idx];
  failed_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock lock(sl.m);
  sl.error = std::move(e);
  sl.st = slot_state::failed;
  if (sl.abandoned) {
    sl.st = slot_state::free_slot;
    sl.error = nullptr;
    lock.unlock();
    free_.push_back(idx);  // mu_ is held by contract
    space_cv_.notify_one();
    return;
  }
  lock.unlock();
  sl.cv.notify_all();
}

void aligner::release_slot(std::uint32_t idx) {
  {
    std::lock_guard lock(mu_);
    free_.push_back(idx);
  }
  space_cv_.notify_one();
}

ticket aligner::submit(stage::seq_view q, stage::seq_view s,
                       const align_options& opt) {
  return submit_impl(q, s, {}, {}, /*copy_strings=*/false, opt);
}

ticket aligner::submit_strings(std::string_view q, std::string_view s,
                               const align_options& opt) {
  return submit_impl({}, {}, q, s, /*copy_strings=*/true, opt);
}

ticket aligner::submit_impl(stage::seq_view q, stage::seq_view s,
                            std::string_view q_chars,
                            std::string_view s_chars, bool copy_strings,
                            const align_options& opt) {
  validate(opt);  // same synchronous contract as anyseq::align

  std::uint32_t idx;
  {
    std::unique_lock lock(mu_);
    for (;;) {
      if (!accepting_)
        throw shutdown_error("service: submit after shutdown");
      if (free_.empty()) {
        // Slot exhaustion means tickets are not being retrieved;
        // shedding a queued request cannot free a slot, so only block
        // can wait.
        if (cfg_.policy != backpressure::block) {
          rejected_.fetch_add(1, std::memory_order_relaxed);
          throw queue_full_error(
              "service: all max_outstanding tickets are unretrieved");
        }
        space_cv_.wait(lock, [&] { return !free_.empty() || !accepting_; });
        continue;
      }
      if (ring_count_ < cfg_.queue_capacity) break;  // room to enqueue
      switch (cfg_.policy) {
        case backpressure::reject:
          rejected_.fetch_add(1, std::memory_order_relaxed);
          throw queue_full_error("service: admission queue is full");
        case backpressure::shed_oldest: {
          const std::uint32_t victim = ring_pop();
          shed_.fetch_add(1, std::memory_order_relaxed);
          fail_dequeued_locked(
              victim, std::make_exception_ptr(shed_error(
                          "service: request shed by shed_oldest to admit "
                          "newer traffic")));
          continue;
        }
        case backpressure::block:
          space_cv_.wait(lock, [&] {
            return ring_count_ < cfg_.queue_capacity || !accepting_;
          });
          continue;
      }
    }
    idx = free_.back();
    free_.pop_back();
  }

  // A popped free slot is owned by this thread alone, so it is filled
  // (including the possibly large string encode) without holding mu_ —
  // producers must not serialize each other or stall the batcher on a
  // memcpy-scale loop.  The ring_push below under mu_ is the release
  // point that publishes these writes to the batcher.
  slot& sl = slots_[idx];
  const auto return_slot = [&] {
    sl.st = slot_state::free_slot;
    std::lock_guard lock(mu_);
    free_.push_back(idx);
    space_cv_.notify_one();
  };
  ++sl.gen;
  sl.abandoned = false;
  sl.st = slot_state::queued;
  if (copy_strings) {
    try {
      sl.q_store.resize(q_chars.size());
      sl.s_store.resize(s_chars.size());
    } catch (...) {
      return_slot();
      throw;
    }
    for (std::size_t i = 0; i < q_chars.size(); ++i)
      sl.q_store[i] = dna_encode(q_chars[i]);
    for (std::size_t i = 0; i < s_chars.size(); ++i)
      sl.s_store[i] = dna_encode(s_chars[i]);
    sl.q = stage::seq_view(sl.q_store.data(),
                           static_cast<index_t>(sl.q_store.size()));
    sl.s = stage::seq_view(sl.s_store.data(),
                           static_cast<index_t>(sl.s_store.size()));
  } else {
    sl.q = q;
    sl.s = s;
  }
  sl.opt = opt;
  sl.rt = classify(sl.q, sl.s, opt);
  sl.result = {};
  sl.error = nullptr;
  sl.t_submit = clock::now();
  const std::uint64_t gen = sl.gen;

  {
    std::lock_guard lock(mu_);
    if (!accepting_) {  // shutdown raced the fill: never publish
      sl.st = slot_state::free_slot;
      free_.push_back(idx);
      space_cv_.notify_one();
      throw shutdown_error("service: submit after shutdown");
    }
    // Count before publishing: a scrape racing the batcher must never
    // see completed > accepted.
    accepted_.fetch_add(1, std::memory_order_relaxed);
    ring_push(idx);
  }

  batcher_cv_.notify_one();
  return ticket(this, idx, gen);
}

// ---------------------------------------------------------------------
// Batching and execution
// ---------------------------------------------------------------------

void aligner::batcher_loop() {
  std::vector<std::uint32_t> batch;
  batch.reserve(cfg_.max_batch);
  for (;;) {
    std::unique_lock lock(mu_);
    batcher_cv_.wait(lock, [&] { return stopping_ || ring_count_ > 0; });
    if (ring_count_ == 0) {
      if (stopping_) return;
      continue;
    }

    batch.clear();
    const std::uint32_t first = ring_pop();
    batch.push_back(first);
    const slot& lead = slots_[first];
    const auto deadline = clock::now() + cfg_.max_linger;
    space_cv_.notify_all();  // the pop freed admission room
    for (;;) {
      const std::size_t taken = ring_extract_compatible(
          lead, batch, cfg_.max_batch - batch.size());
      // Wake blocked submitters *before* lingering — the batcher may now
      // park for a full max_linger, and the room just freed must be
      // usable immediately.
      if (taken > 0) space_cv_.notify_all();
      if (batch.size() >= cfg_.max_batch) break;  // flush: batch full
      // Option-compatibility boundary: only incompatible requests remain
      // queued — dispatch now so the next option class is not held up.
      if (ring_count_ > 0) break;
      if (stopping_) break;  // flush: shutting down
      if (batcher_cv_.wait_until(lock, deadline) == std::cv_status::timeout)
        break;  // flush: max linger reached
    }

    inflight_cv_.wait(lock, [&] { return !free_ws_.empty(); });
    const std::uint32_t w = free_ws_.back();
    free_ws_.pop_back();
    ++inflight_;
    exec_unit& ws = exec_units_[w];
    ws.items.assign(batch.begin(), batch.end());
    lock.unlock();

    pool_->run([this, w] { execute(w); });
  }
}

void aligner::complete(std::uint32_t idx, alignment_result&& r,
                       std::exception_ptr e) {
  slot& sl = slots_[idx];
  const std::uint64_t lat = ns_between(sl.t_submit, clock::now());
  bool recycle = false;
  {
    std::lock_guard lock(sl.m);
    if (e) {
      sl.error = std::move(e);
      sl.st = slot_state::failed;
      failed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      sl.result = std::move(r);
      sl.st = slot_state::done;
      completed_.fetch_add(1, std::memory_order_relaxed);
      latency_.record(lat);
    }
    if (sl.abandoned) {
      sl.st = slot_state::free_slot;
      sl.result = {};
      sl.error = nullptr;
      recycle = true;
    }
  }
  if (recycle)
    release_slot(idx);
  else
    sl.cv.notify_all();
}

void aligner::execute(std::uint32_t ws_index) {
  exec_unit& ws = exec_units_[ws_index];

  // Group similar sizes so the inter-sequence SIMD kernel sees
  // uniform-length chunks; per-slot delivery makes order irrelevant.
  std::sort(ws.items.begin(), ws.items.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const slot& x = slots_[a];
              const slot& y = slots_[b];
              return lane_order_less(x.q.size(), x.s.size(), a, y.q.size(),
                                     y.s.size(), b);
            });

  // Execution goes through this unit's reusable aligner: same route
  // selection as the synchronous API (so results stay byte-identical),
  // but every DP buffer comes from the unit's warm workspace arena.
  const slot& lead = slots_[ws.items.front()];
  if (ws.items.size() == 1 || lead.rt == route::solo) {
    for (const std::uint32_t idx : ws.items) {
      slot& sl = slots_[idx];
      try {
        ws.eng.set_options(sl.opt);
        ws.eng.align_into(sl.q, sl.s, ws.scratch);
        complete(idx, std::move(ws.scratch), nullptr);
      } catch (...) {
        complete(idx, {}, std::current_exception());
      }
    }
  } else {
    ws.pairs.clear();
    for (const std::uint32_t idx : ws.items)
      ws.pairs.push_back({slots_[idx].q, slots_[idx].s});
    try {
      ws.eng.set_options(lead.opt);
      ws.eng.align_batch_into(ws.pairs, ws.results);
      for (std::size_t k = 0; k < ws.items.size(); ++k)
        complete(ws.items[k], std::move(ws.results[k]), nullptr);
    } catch (...) {
      const auto e = std::current_exception();
      for (const std::uint32_t idx : ws.items) complete(idx, {}, e);
    }
  }

  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(ws.items.size(), std::memory_order_relaxed);

  {
    std::lock_guard lock(mu_);
    --inflight_;
    free_ws_.push_back(ws_index);
    // Notify under the lock: this broadcast is the last thing the pool
    // worker does with service state, and shutdown destroys the service
    // as soon as it observes inflight_ == 0 — an unlocked notify could
    // still be touching the condvar when the destructor frees it.
    inflight_cv_.notify_all();
  }
}

// ---------------------------------------------------------------------
// Shutdown and stats
// ---------------------------------------------------------------------

void aligner::shutdown(bool drain) {
  std::lock_guard shut_lock(shutdown_mu_);
  if (shut_down_) return;

  {
    std::lock_guard lock(mu_);
    accepting_ = false;
    stopping_ = true;
    if (!drain) {
      const auto e = std::make_exception_ptr(
          shutdown_error("service: request failed by no-drain shutdown"));
      while (ring_count_ > 0) fail_dequeued_locked(ring_pop(), e);
    }
  }
  batcher_cv_.notify_all();
  space_cv_.notify_all();  // blocked submitters observe the shutdown
  if (batcher_.joinable()) batcher_.join();

  std::unique_lock lock(mu_);
  inflight_cv_.wait(lock, [&] { return inflight_ == 0; });
  shut_down_ = true;
}

service_stats aligner::stats() const {
  service_stats out;
  out.accepted = accepted_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.shed = shed_.load(std::memory_order_relaxed);
  out.completed = completed_.load(std::memory_order_relaxed);
  out.failed = failed_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  out.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  out.mean_batch_occupancy =
      out.batches > 0 ? static_cast<double>(out.batched_requests) /
                            static_cast<double>(out.batches)
                      : 0.0;
  const auto pct = latency_.snapshot();
  out.p50_latency_ns = pct.p50;
  out.p99_latency_ns = pct.p99;
  out.latency_samples = pct.samples;
  {
    std::lock_guard lock(mu_);
    out.queue_depth = ring_count_;
    out.in_flight_batches = inflight_;
    out.outstanding_tickets = slots_.size() - free_.size();
  }
  return out;
}

// ---------------------------------------------------------------------
// Process-wide default service
// ---------------------------------------------------------------------

aligner& global() {
  // aligner's constructor touches thread_pool::global() first, so the
  // pool's function-local static completes construction earlier and is
  // destroyed later than this one.
  static aligner svc{config{}};
  return svc;
}

ticket submit(stage::seq_view q, stage::seq_view s,
              const align_options& opt) {
  return global().submit(q, s, opt);
}

ticket submit_strings(std::string_view q, std::string_view s,
                      const align_options& opt) {
  return global().submit_strings(q, s, opt);
}

service_stats stats() { return global().stats(); }

}  // namespace anyseq::service
