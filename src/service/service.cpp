/// \file service.cpp
/// The asynchronous alignment service: slot lifecycle, classed admission
/// with backpressure and tenant quotas, the cache-fronted submit path,
/// the batcher thread with its adaptive-linger controller, and batch
/// execution on the global thread pool.
///
/// Locking discipline (the whole file follows it):
///   * `mu_` guards the admission rings, the slot/workspace freelists,
///     the tenant token buckets, the accepting/stopping flags, and slot
///     field initialization during submit (a free slot is owned by the
///     submitting thread).
///   * `slot::m` guards one request's completion state (st, result,
///     error, abandoned) from enqueue to retirement.
///   * The only place both are held is mu_ -> slot::m (submit and
///     fail_dequeued_locked); nothing acquires mu_ while holding a
///     slot mutex, so the order is acyclic.
///   * Batcher and executor read slot inputs (q, s, opt, rt, cls)
///     without slot::m: those fields are written before the index is
///     published under mu_ and are immutable until retirement, and every
///     handoff (submit -> batcher via mu_, batcher -> executor via the
///     pool's job queue) is a release/acquire edge.
///   * The response cache has its own shard locks and is never touched
///     while mu_ or a slot mutex is held.
///   * `q_mu_` (quarantine table) is a leaf: taken from submit and the
///     executor, never while holding mu_ or a slot mutex and never
///     around anything that locks.
///   * The watchdog thread shares mu_ with everything else; batcher
///     liveness flows through the lock-free `heartbeat_ns_` beacon plus
///     the mu_-guarded `batcher_waiting_` / `batcher_crashed_` flags.
///     Batcher incarnations are named by `batcher_gen_`: a loop that
///     observes a newer generation steps aside, so a stalled-but-alive
///     thread can never race its replacement for ring state.

#include "service/service.hpp"

#include <algorithm>
#include <new>

#include "core/alphabet.hpp"
#include "service/faultinject.hpp"
#include "service/trace.hpp"

namespace anyseq::service {

namespace {

using clock = std::chrono::steady_clock;

[[nodiscard]] std::uint64_t ns_between(clock::time_point a,
                                       clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

[[nodiscard]] std::int64_t to_ns(std::chrono::microseconds us) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(us).count();
}

[[nodiscard]] std::int64_t epoch_ns(clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             tp.time_since_epoch())
      .count();
}

}  // namespace

const char* to_string(backpressure p) noexcept {
  switch (p) {
    case backpressure::block: return "block";
    case backpressure::reject: return "reject";
    case backpressure::shed_oldest: return "shed_oldest";
  }
  return "?";
}

// ---------------------------------------------------------------------
// ticket
// ---------------------------------------------------------------------

ticket::ticket(ticket&& other) noexcept
    : svc_(other.svc_), slot_(other.slot_), gen_(other.gen_) {
  other.svc_ = nullptr;
}

ticket& ticket::operator=(ticket&& other) noexcept {
  if (this != &other) {
    retire();
    svc_ = other.svc_;
    slot_ = other.slot_;
    gen_ = other.gen_;
    other.svc_ = nullptr;
  }
  return *this;
}

ticket::~ticket() { retire(); }

void ticket::retire() noexcept {
  if (svc_ == nullptr) return;
  aligner::slot& sl = svc_->slots_[slot_];
  aligner* svc = svc_;
  svc_ = nullptr;
  std::unique_lock lock(sl.m);
  if (sl.gen != gen_) return;  // defensive; cannot happen for live tickets
  if (sl.st == aligner::slot_state::done ||
      sl.st == aligner::slot_state::failed) {
    sl.st = aligner::slot_state::free_slot;
    sl.result = {};
    sl.error = nullptr;
    lock.unlock();
    svc->release_slot(slot_);
    return;
  }
  // Still in flight (queued, forming, or executing): the completer
  // recycles the slot when the result lands.
  sl.abandoned = true;
}

bool ticket::wait_until(std::chrono::steady_clock::time_point tp) const {
  if (svc_ == nullptr)
    throw invalid_argument_error("ticket::wait_until on an empty ticket");
  aligner::slot& sl = svc_->slots_[slot_];
  std::unique_lock lock(sl.m);
  if (sl.gen != gen_)
    throw invalid_argument_error("ticket::wait_until on a stale ticket");
  return sl.cv.wait_until(lock, tp, [&] {
    return sl.st == aligner::slot_state::done ||
           sl.st == aligner::slot_state::failed;
  });
}

bool ticket::wait_for(std::chrono::microseconds timeout) const {
  return wait_until(std::chrono::steady_clock::now() + timeout);
}

bool ticket::ready() const {
  if (svc_ == nullptr)
    throw invalid_argument_error("ticket::ready on an empty ticket");
  aligner::slot& sl = svc_->slots_[slot_];
  std::lock_guard lock(sl.m);
  return sl.gen == gen_ && (sl.st == aligner::slot_state::done ||
                            sl.st == aligner::slot_state::failed);
}

alignment_result ticket::get() {
  if (svc_ == nullptr)
    throw invalid_argument_error("ticket::get on an empty ticket");
  aligner::slot& sl = svc_->slots_[slot_];
  aligner* svc = svc_;
  alignment_result out;
  std::exception_ptr err;
  {
    std::unique_lock lock(sl.m);
    if (sl.gen != gen_)
      throw invalid_argument_error("ticket::get on a stale ticket");
    sl.cv.wait(lock, [&] {
      return sl.st == aligner::slot_state::done ||
             sl.st == aligner::slot_state::failed;
    });
    if (sl.st == aligner::slot_state::failed)
      err = sl.error;
    else
      out = std::move(sl.result);
    sl.st = aligner::slot_state::free_slot;
    sl.result = {};
    sl.error = nullptr;
  }
  svc_ = nullptr;
  svc->release_slot(slot_);
  if (err) std::rethrow_exception(err);
  return out;
}

// ---------------------------------------------------------------------
// aligner: construction / configuration
// ---------------------------------------------------------------------

static_assert(n_request_classes == 2,
              "aligner's reservoir array init assumes two request classes");

aligner::aligner(config cfg)
    : cfg_(cfg),
      pool_(&parallel::thread_pool::global()),
      latency_{latency_reservoir(
                   std::max<std::size_t>(1, cfg.latency_reservoir)),
               latency_reservoir(
                   std::max<std::size_t>(1, cfg.latency_reservoir))} {
  if (cfg_.max_batch < 1)
    throw invalid_argument_error("service: max_batch must be >= 1");
  if (cfg_.queue_capacity < 1)
    throw invalid_argument_error("service: queue_capacity must be >= 1");
  if (cfg_.max_linger.count() < 0)
    throw invalid_argument_error("service: max_linger must be >= 0");
  if (cfg_.adaptive_linger) {
    if (cfg_.min_linger.count() < 0)
      throw invalid_argument_error("service: min_linger must be >= 0");
    if (cfg_.min_linger > cfg_.max_linger)
      throw invalid_argument_error(
          "service: min_linger must be <= max_linger");
    if (cfg_.interactive_p99_target.count() <= 0)
      throw invalid_argument_error(
          "service: interactive_p99_target must be > 0");
  }
  if (cfg_.tenant_rate < 0.0 || cfg_.tenant_burst < 0.0)
    throw invalid_argument_error(
        "service: tenant_rate/tenant_burst must be >= 0");
  if (cfg_.tenant_rate > 0.0 && cfg_.max_tenants < 1)
    throw invalid_argument_error(
        "service: max_tenants must be >= 1 when quotas are enabled");
  if (cfg_.deadline_headroom.count() < 0)
    throw invalid_argument_error("service: deadline_headroom must be >= 0");
  if (cfg_.quarantine_threshold < 1) cfg_.quarantine_threshold = 1;
  if (cfg_.watchdog && (cfg_.watchdog_interval.count() <= 0 ||
                        cfg_.stall_threshold.count() <= 0))
    throw invalid_argument_error(
        "service: watchdog_interval/stall_threshold must be > 0");
  if (cfg_.max_outstanding == 0)
    cfg_.max_outstanding = 4 * cfg_.queue_capacity;
  if (cfg_.max_outstanding < cfg_.queue_capacity)
    throw invalid_argument_error(
        "service: max_outstanding must be >= queue_capacity");
  if (cfg_.max_inflight_batches == 0)
    cfg_.max_inflight_batches =
        static_cast<std::size_t>(std::max(1, pool_->size()));
  if (cfg_.latency_reservoir == 0) cfg_.latency_reservoir = 1;

  slots_ = std::vector<slot>(cfg_.max_outstanding);
  free_.reserve(cfg_.max_outstanding);
  // Lowest index on top of the stack: small deployments touch few slots.
  for (std::size_t i = cfg_.max_outstanding; i > 0; --i)
    free_.push_back(static_cast<std::uint32_t>(i - 1));
  // Each ring sized to max_outstanding, not queue_capacity: the
  // admission check and the publish happen under separate mu_ holds (the
  // slot fill in between is lock-free), so the instantaneous depth can
  // briefly exceed the soft queue_capacity bound by the number of
  // in-flight submissions — but never the number of slots.
  for (auto& r : rings_) r.buf.assign(cfg_.max_outstanding, 0);
  exec_units_ = std::vector<exec_unit>(cfg_.max_inflight_batches);
  free_ws_.reserve(cfg_.max_inflight_batches);
  for (std::size_t w = cfg_.max_inflight_batches; w > 0; --w)
    free_ws_.push_back(static_cast<std::uint32_t>(w - 1));
  for (auto& ws : exec_units_) {
    ws.items.reserve(cfg_.max_batch);
    ws.pairs.reserve(cfg_.max_batch);
    ws.results.reserve(cfg_.max_batch);
  }
  if (cfg_.tenant_rate > 0.0)
    buckets_ = std::vector<token_bucket>(cfg_.max_tenants);

  if (cfg_.shared_cache != nullptr) {
    cache_ = cfg_.shared_cache;
  } else if (cfg_.cache_capacity > 0) {
    owned_cache_ = std::make_unique<response_cache>(
        response_cache::config{cfg_.cache_capacity, cfg_.cache_shards});
    cache_ = owned_cache_.get();
  }

  if (cfg_.quarantine_capacity > 0)
    q_entries_.assign(cfg_.quarantine_capacity, q_entry{});
  retired_batchers_.reserve(2);  // at most: first death + restarted death

  linger_ns_.store(to_ns(cfg_.max_linger), std::memory_order_relaxed);
  heartbeat_ns_.store(epoch_ns(clock::now()), std::memory_order_relaxed);

  batcher_ = std::thread([this] { batcher_main(0); });
  if (cfg_.watchdog) watchdog_ = std::thread([this] { watchdog_loop(); });
}

aligner::~aligner() { shutdown(true); }

// ---------------------------------------------------------------------
// Admission
// ---------------------------------------------------------------------

std::uint32_t aligner::ring_pop(admission_ring& r) noexcept {
  const std::uint32_t idx = r.buf[r.head];
  r.head = (r.head + 1) % r.buf.size();
  --r.count;
  depth_.fetch_sub(1, std::memory_order_relaxed);
  return idx;
}

void aligner::ring_push(admission_ring& r, std::uint32_t idx) noexcept {
  r.buf[(r.head + r.count) % r.buf.size()] = idx;
  ++r.count;
  depth_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t aligner::ring_extract_compatible(
    admission_ring& r, const slot& lead, std::vector<std::uint32_t>& batch,
    std::size_t max_take, clock::time_point now,
    clock::time_point& earliest_deadline) {
  // Walk the whole ring: extract requests batchable with `lead`, compact
  // the incompatible ones in place so their FIFO order is untouched.
  // This keeps occupancy high when several option classes interleave
  // (concurrent heterogeneous producers) — a compatible-prefix-only
  // batcher degrades to one request per batch on round-robin traffic.
  // The walk is also a deadline shed point: an expired entry is failed
  // here, whether or not it would have been batchable.
  std::size_t taken = 0, kept = 0, expired = 0;
  const std::size_t count = r.count;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t idx = r.buf[(r.head + i) % r.buf.size()];
    const slot& sl = slots_[idx];
    if (sl.deadline != clock::time_point::max() && now >= sl.deadline) {
      // Counted out of the ring below; fail after compaction so the
      // ring is never observed mid-walk with a failed member.
      batch.push_back(idx);  // tail scratch, removed before return
      ++expired;
      continue;
    }
    if (taken < max_take && sl.rt == lead.rt &&
        options_compatible(sl.opt, lead.opt)) {
      batch.insert(batch.end() - expired, idx);
      ++taken;
    } else {
      r.buf[(r.head + kept) % r.buf.size()] = idx;
      ++kept;
    }
  }
  r.count = kept;
  if (taken + expired > 0)
    depth_.fetch_sub(taken + expired, std::memory_order_relaxed);
  for (std::size_t i = 0; i < expired; ++i) {
    fail_expired_locked(batch.back());
    batch.pop_back();
  }
  for (std::size_t i = batch.size() - taken; i < batch.size(); ++i) {
    const clock::time_point d = slots_[batch[i]].deadline;
    if (d < earliest_deadline) earliest_deadline = d;
  }
  return taken;
}

void aligner::fail_dequeued_locked(std::uint32_t idx, std::exception_ptr e) {
  slot& sl = slots_[idx];
  failed_[static_cast<std::size_t>(sl.cls)].fetch_add(
      1, std::memory_order_relaxed);
  std::unique_lock lock(sl.m);
  sl.error = std::move(e);
  sl.st = slot_state::failed;
  if (sl.abandoned) {
    sl.st = slot_state::free_slot;
    sl.error = nullptr;
    lock.unlock();
    free_.push_back(idx);  // mu_ is held by contract
    space_cv_.notify_one();
    return;
  }
  lock.unlock();
  sl.cv.notify_all();
}

void aligner::fail_expired_locked(std::uint32_t idx) {
  slot& sl = slots_[idx];
  deadline_expired_[static_cast<std::size_t>(sl.cls)].fetch_add(
      1, std::memory_order_relaxed);
  ANYSEQ_TRACE_MARK(deadline_shed, idx, 0);
  fail_dequeued_locked(
      idx, std::make_exception_ptr(deadline_error(
               "service: deadline expired before execution started")));
}

void aligner::release_slot(std::uint32_t idx) {
  {
    std::lock_guard lock(mu_);
    free_.push_back(idx);
  }
  space_cv_.notify_one();
}

bool aligner::take_token(std::uint32_t tenant, clock::time_point now) {
  token_bucket& b = buckets_[tenant];
  const double burst = cfg_.tenant_burst > 0.0
                           ? cfg_.tenant_burst
                           : std::max(1.0, cfg_.tenant_rate);
  if (!b.init) {
    b.tokens = burst;  // a fresh tenant starts with a full bucket
    b.last = now;
    b.init = true;
  }
  const double dt = std::chrono::duration<double>(now - b.last).count();
  b.last = now;
  b.tokens = std::min(burst, b.tokens + dt * cfg_.tenant_rate);
  if (b.tokens >= 1.0) {
    b.tokens -= 1.0;
    return true;
  }
  return false;
}

clock::time_point aligner::skewed_now() {
  // Deadline arithmetic goes through here so the clock_skew fault can
  // lie to it; disarmed this is clock::now() plus one predicted branch.
  return clock::now() + std::chrono::nanoseconds(ANYSEQ_FAULT_CLOCK_SKEW_NS());
}

void aligner::note_exec(route rt, const char* variant, std::uint64_t requests,
                        std::uint64_t cells, std::uint64_t ns) noexcept {
  const auto r = static_cast<std::size_t>(rt);
  if (r >= n_exec_routes) return;  // defensive; route has three values
  const std::size_t v = exec_variant_index(variant);
  exec_requests_[r][v].fetch_add(requests, std::memory_order_relaxed);
  exec_cells_[r][v].fetch_add(cells, std::memory_order_relaxed);
  exec_ns_[r][v].fetch_add(ns, std::memory_order_relaxed);
}

void aligner::record_offender(const slot& sl) noexcept {
  if (cfg_.quarantine_capacity == 0) return;
  const std::uint64_t fp = cache_key_hash(sl.q, sl.s, sl.opt);
  const std::uint32_t thr = cfg_.quarantine_threshold;
  std::lock_guard lock(q_mu_);
  for (q_entry& e : q_entries_) {
    if (e.offenses > 0 && e.fp == fp) {
      if (e.offenses < thr && ++e.offenses >= thr)
        q_active_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  // New offender: round-robin over non-quarantined entries.  When every
  // entry is a confirmed offender the record is dropped — forgetting a
  // first offense is safer than evicting a known repeat offender.
  for (std::size_t tries = 0; tries < q_entries_.size(); ++tries) {
    q_entry& e = q_entries_[q_clock_];
    q_clock_ = (q_clock_ + 1) % q_entries_.size();
    if (e.offenses < thr) {
      e.fp = fp;
      e.offenses = 1;
      if (e.offenses >= thr)
        q_active_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

bool aligner::is_quarantined(std::uint64_t fp) const noexcept {
  std::lock_guard lock(q_mu_);
  for (const q_entry& e : q_entries_)
    if (e.offenses >= cfg_.quarantine_threshold && e.fp == fp) return true;
  return false;
}

ticket aligner::submit(stage::seq_view q, stage::seq_view s,
                       const align_options& opt, const submit_options& so) {
  return submit_impl(q, s, {}, {}, /*copy_strings=*/false, opt, so);
}

ticket aligner::submit_strings(std::string_view q, std::string_view s,
                               const align_options& opt,
                               const submit_options& so) {
  return submit_impl({}, {}, q, s, /*copy_strings=*/true, opt, so);
}

ticket aligner::submit_impl(stage::seq_view q, stage::seq_view s,
                            std::string_view q_chars,
                            std::string_view s_chars, bool copy_strings,
                            const align_options& opt,
                            const submit_options& so) {
  // Span open: one relaxed load when tracing is disarmed (t0 stays 0 and
  // every matching emit below is then a no-op).
  const std::int64_t tr_submit = ANYSEQ_TRACE_NOW();
  validate(opt);  // same synchronous contract as anyseq::align
  const auto ci = static_cast<std::size_t>(so.cls);
  if (ci >= n_cls)
    throw invalid_argument_error("service: invalid request_class");
  if (cfg_.tenant_rate > 0.0 && so.tenant >= cfg_.max_tenants)
    throw invalid_argument_error(
        "service: tenant id must be < config::max_tenants");
  // Brownout fast path: refuse bulk before it costs a slot.  The
  // authoritative check happens again under mu_ before publishing, so a
  // brownout that flips mid-submit can never strand a request in a ring
  // no batcher will drain.
  if (so.cls == request_class::bulk &&
      brownout_.load(std::memory_order_acquire)) {
    rejected_[ci].fetch_add(1, std::memory_order_relaxed);
    throw service_down_error(
        "service: browned out — bulk traffic refused");
  }

  std::uint32_t idx;
  {
    std::unique_lock lock(mu_);
    for (;;) {
      if (!accepting_)
        throw shutdown_error("service: submit after shutdown");
      if (!free_.empty()) break;
      // Slot exhaustion means tickets are not being retrieved; shedding
      // a queued request cannot free a slot, so only block can wait.
      if (cfg_.policy != backpressure::block) {
        rejected_[ci].fetch_add(1, std::memory_order_relaxed);
        throw queue_full_error(
            "service: all max_outstanding tickets are unretrieved");
      }
      space_cv_.wait(lock, [&] { return !free_.empty() || !accepting_; });
    }
    idx = free_.back();
    free_.pop_back();
  }

  // A popped free slot is owned by this thread alone, so it is filled
  // (including the possibly large string encode) without holding mu_ —
  // producers must not serialize each other or stall the batcher on a
  // memcpy-scale loop.  The ring_push below under mu_ is the release
  // point that publishes these writes to the batcher.
  slot& sl = slots_[idx];
  const auto return_slot = [&] {
    sl.st = slot_state::free_slot;
    std::lock_guard lock(mu_);
    free_.push_back(idx);
    space_cv_.notify_one();
  };
  ++sl.gen;
  sl.abandoned = false;
  sl.st = slot_state::queued;
  if (copy_strings) {
    try {
      sl.q_store.resize(q_chars.size());
      sl.s_store.resize(s_chars.size());
    } catch (...) {
      return_slot();
      throw;
    }
    for (std::size_t i = 0; i < q_chars.size(); ++i)
      sl.q_store[i] = dna_encode(q_chars[i]);
    for (std::size_t i = 0; i < s_chars.size(); ++i)
      sl.s_store[i] = dna_encode(s_chars[i]);
    sl.q = stage::seq_view(sl.q_store.data(),
                           static_cast<index_t>(sl.q_store.size()));
    sl.s = stage::seq_view(sl.s_store.data(),
                           static_cast<index_t>(sl.s_store.size()));
  } else {
    sl.q = q;
    sl.s = s;
  }
  sl.opt = opt;
  sl.cls = so.cls;
  sl.tenant = so.tenant;
  sl.result = {};
  sl.error = nullptr;
  sl.t_submit = clock::now();
  sl.deadline = so.deadline;
  const std::uint64_t gen = sl.gen;

  // Repeat-offender quarantine: one relaxed load on the happy path; the
  // fingerprint is only computed once an offender actually exists.
  // (Checked after the fill because submit_strings' views exist only
  // now; the slot returns to the freelist, so nothing was consumed.)
  if (cfg_.quarantine_capacity > 0 &&
      q_active_.load(std::memory_order_relaxed) > 0 &&
      is_quarantined(cache_key_hash(sl.q, sl.s, sl.opt))) {
    quarantined_[ci].fetch_add(1, std::memory_order_relaxed);
    ANYSEQ_TRACE_MARK(quarantine, idx, 0);
    return_slot();
    throw quarantine_error(
        "service: request quarantined after repeated isolated failures");
  }

  // Deadline shed point #1: already expired at submit.  The ticket is
  // still returned — it fails with deadline_error on get() — but the
  // request never enters the admission ring.
  if (sl.deadline != clock::time_point::max() &&
      skewed_now() >= sl.deadline) {
    accepted_[ci].fetch_add(1, std::memory_order_relaxed);
    deadline_expired_[ci].fetch_add(1, std::memory_order_relaxed);
    complete(idx, {},
             std::make_exception_ptr(deadline_error(
                 "service: deadline already expired at submit")));
    ANYSEQ_TRACE_EMIT(submit, idx, tr_submit, 0);
    return ticket(this, idx, gen);
  }

  // Cache front: a hit completes the ticket on the spot — it never
  // enters the admission ring, never wakes the batcher, and is not
  // charged against the tenant's quota (quotas meter *work*).
  if (cache_ != nullptr) {
    const std::int64_t tr_probe = ANYSEQ_TRACE_NOW();
    const bool hit = cache_->lookup(sl.q, sl.s, sl.opt, sl.result);
    ANYSEQ_TRACE_EMIT(cache_probe, idx, tr_probe, hit ? 1 : 0);
    if (hit) {
      {
        std::lock_guard slock(sl.m);
        sl.st = slot_state::done;
      }
      cache_hits_[ci].fetch_add(1, std::memory_order_relaxed);
      accepted_[ci].fetch_add(1, std::memory_order_relaxed);
      completed_[ci].fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t lat = ns_between(sl.t_submit, clock::now());
      latency_[ci].record(lat);
      hist_[ci].record(lat);
      ANYSEQ_TRACE_EMIT(submit, idx, tr_submit, 1);
      return ticket(this, idx, gen);
    }
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }

  sl.rt = classify(sl.q, sl.s, opt);

  {
    std::unique_lock lock(mu_);
    admission_ring& ring = ring_of(so.cls);
    for (;;) {
      if (!accepting_) {  // shutdown raced the fill: never publish
        sl.st = slot_state::free_slot;
        free_.push_back(idx);
        space_cv_.notify_one();
        throw shutdown_error("service: submit after shutdown");
      }
      // Authoritative brownout check: brownout is set under mu_, so once
      // observed false here the batcher generation serving this ring is
      // live.  Bulk is refused; interactive degrades to solo execution
      // on the submitting thread — no batcher required.
      if (brownout_.load(std::memory_order_relaxed)) {
        if (so.cls == request_class::bulk) {
          rejected_[ci].fetch_add(1, std::memory_order_relaxed);
          sl.st = slot_state::free_slot;
          free_.push_back(idx);
          space_cv_.notify_one();
          throw service_down_error(
              "service: browned out — bulk traffic refused");
        }
        accepted_[ci].fetch_add(1, std::memory_order_relaxed);
        lock.unlock();
        solo_execute_now(idx);
        ANYSEQ_TRACE_EMIT(submit, idx, tr_submit, 0);
        return ticket(this, idx, gen);
      }
      if (ring.count < cfg_.queue_capacity) break;  // room to enqueue
      switch (cfg_.policy) {
        case backpressure::reject:
          rejected_[ci].fetch_add(1, std::memory_order_relaxed);
          sl.st = slot_state::free_slot;
          free_.push_back(idx);
          space_cv_.notify_one();
          throw queue_full_error("service: admission queue is full");
        case backpressure::shed_oldest: {
          // Shed within the same class: dropping a bulk request cannot
          // make interactive room and vice versa.
          const std::uint32_t victim = ring_pop(ring);
          shed_[ci].fetch_add(1, std::memory_order_relaxed);
          ANYSEQ_TRACE_MARK(shed, victim, 0);
          fail_dequeued_locked(
              victim, std::make_exception_ptr(shed_error(
                          "service: request shed by shed_oldest to admit "
                          "newer traffic")));
          continue;
        }
        case backpressure::block:
          space_cv_.wait(lock, [&] {
            return ring.count < cfg_.queue_capacity || !accepting_;
          });
          continue;
      }
    }
    // Quota is drawn once, after a queue position is certain — a tenant
    // blocked on backpressure keeps accruing refill, and a drained
    // bucket always *rejects* (typed), never blocks.
    if (!buckets_.empty() && !take_token(sl.tenant, clock::now())) {
      quota_rejected_[ci].fetch_add(1, std::memory_order_relaxed);
      sl.st = slot_state::free_slot;
      free_.push_back(idx);
      space_cv_.notify_one();
      throw quota_error("service: tenant quota exhausted");
    }
    // Count before publishing: a scrape racing the batcher must never
    // see completed > accepted.
    accepted_[ci].fetch_add(1, std::memory_order_relaxed);
    sl.t_queued_ns = ANYSEQ_TRACE_NOW();  // ring_wait span opens here
    ring_push(ring, idx);
  }

  batcher_cv_.notify_one();
  ANYSEQ_TRACE_EMIT(submit, idx, tr_submit, 0);
  return ticket(this, idx, gen);
}

// ---------------------------------------------------------------------
// Batching and execution
// ---------------------------------------------------------------------

void aligner::batcher_main(std::uint64_t gen) {
  try {
    batcher_loop(gen);
  } catch (...) {
    // The batcher died (injected or real).  Swallow the exception and
    // flag the crash for the watchdog — containment, not propagation:
    // an escaping exception from a detached-in-spirit worker would
    // terminate the process.
    std::lock_guard lock(mu_);
    if (batcher_gen_ == gen) {
      batcher_crashed_ = true;
      watchdog_cv_.notify_all();
    }
  }
}

void aligner::batcher_loop(std::uint64_t gen) {
  std::vector<std::uint32_t> batch;
  batch.reserve(cfg_.max_batch);
  next_adapt_ = clock::now();
  for (;;) {
    try {
      if (!batcher_iteration(gen, batch)) return;
    } catch (...) {
      // Dying with collected-but-undispatched requests would strand
      // their tickets forever: fail them before the exception leaves
      // the loop (batcher_main then flags the crash).
      {
        std::lock_guard lock(mu_);
        const auto e = std::make_exception_ptr(service_down_error(
            "service: batcher thread died during batch collection"));
        for (const std::uint32_t idx : batch) fail_dequeued_locked(idx, e);
        batch.clear();
      }
      space_cv_.notify_all();
      throw;
    }
  }
}

bool aligner::batcher_iteration(std::uint64_t gen,
                                std::vector<std::uint32_t>& batch) {
  const auto beat = [this] {
    heartbeat_ns_.store(epoch_ns(clock::now()), std::memory_order_relaxed);
  };
  std::unique_lock lock(mu_);
  beat();
  batcher_waiting_ = true;
  batcher_cv_.wait(lock, [&] {
    return stopping_ || queued_total() > 0 || batcher_gen_ != gen;
  });
  batcher_waiting_ = false;
  beat();
  if (batcher_gen_ != gen) return false;  // superseded by the watchdog
  if (queued_total() == 0) return !stopping_;
  const std::int64_t tr_collect = ANYSEQ_TRACE_NOW();

  // Injected batcher death fires before anything is popped, so the
  // crash never strands collected requests (real crashes later in the
  // iteration are contained by batcher_loop's catch).
  if (ANYSEQ_FAULT_POINT(batcher_stall))
    throw fault::injected_fault("service: injected batcher death");

  // Strict priority: interactive is served whenever anything is
  // waiting there; bulk fills the machine otherwise.
  const request_class cls = ring_of(request_class::interactive).count > 0
                                ? request_class::interactive
                                : request_class::bulk;
  admission_ring& ring = ring_of(cls);
  const bool serving_bulk = cls == request_class::bulk;

  batch.clear();
  // Deadline shed point #2: expired requests are dropped as the ring
  // drains — an expired lead must not anchor (and thus delay) a batch.
  std::uint32_t first;
  for (;;) {
    if (ring.count == 0) {
      space_cv_.notify_all();
      return true;  // everything queued here had expired
    }
    first = ring_pop(ring);
    const slot& fs = slots_[first];
    if (fs.deadline != clock::time_point::max() &&
        skewed_now() >= fs.deadline) {
      fail_expired_locked(first);
      continue;
    }
    break;
  }
  batch.push_back(first);
  const slot& lead = slots_[first];
  auto earliest_deadline = lead.deadline;
  const auto linger_deadline =
      clock::now() + std::chrono::nanoseconds(
                         linger_ns_.load(std::memory_order_relaxed));
  space_cv_.notify_all();  // the pop freed admission room
  for (;;) {
    const std::size_t taken = ring_extract_compatible(
        ring, lead, batch, cfg_.max_batch - batch.size(), skewed_now(),
        earliest_deadline);
    // Wake blocked submitters *before* lingering — the batcher may now
    // park for a full linger, and the room just freed must be usable
    // immediately.
    if (taken > 0) space_cv_.notify_all();
    if (batch.size() >= cfg_.max_batch) break;  // flush: batch full
    // Option-compatibility boundary: only incompatible requests remain
    // queued in this class — dispatch now so the next option class is
    // not held up.
    if (ring.count > 0) break;
    // An interactive arrival cuts a lingering bulk batch short: flush
    // what we have so the priority queue is served next iteration.
    if (serving_bulk && ring_of(request_class::interactive).count > 0)
      break;
    if (stopping_) break;  // flush: shutting down
    // Linger is bounded by the earliest member deadline minus headroom:
    // a batch that lingered *to* the deadline could only be shed at
    // collection, so it flushes early enough to still execute in time.
    auto wake = linger_deadline;
    if (earliest_deadline != clock::time_point::max()) {
      const auto cutoff = earliest_deadline - cfg_.deadline_headroom;
      if (cutoff < wake) wake = cutoff;
    }
    if (clock::now() >= wake) break;
    batcher_waiting_ = true;
    const auto ws_status = batcher_cv_.wait_until(lock, wake);
    batcher_waiting_ = false;
    beat();
    if (batcher_gen_ != gen) break;  // superseded: dispatch what we hold
    if (ws_status == std::cv_status::timeout) break;  // flush: linger over
  }

  const std::int64_t tr_ws = ANYSEQ_TRACE_NOW();
  batcher_waiting_ = true;
  inflight_cv_.wait(
      lock, [&] { return !free_ws_.empty() || batcher_gen_ != gen; });
  batcher_waiting_ = false;
  beat();
  ANYSEQ_TRACE_EMIT(workspace_wait, 0, tr_ws, 0);
  if (batcher_gen_ != gen) {
    // Superseded while holding a collected batch: the watchdog already
    // failed the rings; these members are ours to fail.
    const auto e = std::make_exception_ptr(service_down_error(
        "service: batcher superseded during batch collection"));
    for (const std::uint32_t idx : batch) fail_dequeued_locked(idx, e);
    batch.clear();
    space_cv_.notify_all();
    return false;
  }
  // Deadline shed point #3: batch dispatch.  Deadlines that passed while
  // the batch formed or while it was parked waiting for a workspace (or
  // that a skewed clock now reports passed) are shed; execution is
  // reserved for requests that can still win.  This runs after the
  // workspace wait on purpose — a batch parked behind a slow neighbour
  // is exactly where deadlines die.
  {
    const auto now = skewed_now();
    std::size_t kept = 0;
    const std::size_t had = batch.size();
    for (std::size_t i = 0; i < had; ++i) {
      const slot& sl = slots_[batch[i]];
      if (sl.deadline != clock::time_point::max() && now >= sl.deadline)
        fail_expired_locked(batch[i]);
      else
        batch[kept++] = batch[i];
    }
    if (kept < had) {
      batch.resize(kept);
      space_cv_.notify_all();
    }
    if (batch.empty()) return true;
  }

  const std::uint32_t w = free_ws_.back();
  free_ws_.pop_back();
  ++inflight_;
  exec_unit& ws = exec_units_[w];
  // Close each member's ring_wait span (opened at its ring_push) and
  // the batcher's collect span; both are no-ops while disarmed.
  for (const std::uint32_t idx : batch)
    ANYSEQ_TRACE_EMIT(ring_wait, idx, slots_[idx].t_queued_ns, 0);
  ANYSEQ_TRACE_EMIT(batch_collect, w, tr_collect,
                    static_cast<std::int64_t>(batch.size()));
  ws.items.assign(batch.begin(), batch.end());
  batch.clear();  // dispatched: no longer the loop's to fail
  // Adapt under mu_ (reservoir locks are leaves): a superseded
  // predecessor can then never race its replacement on controller state.
  if (cfg_.adaptive_linger) adapt_linger(clock::now());
  lock.unlock();

  pool_->run([this, w] { execute(w); });
  return true;
}

void aligner::adapt_linger(clock::time_point now) {
  if (now < next_adapt_) return;
  next_adapt_ = now + std::chrono::milliseconds(5);

  const auto p = latency_[static_cast<std::size_t>(
                              request_class::interactive)]
                     .snapshot();  // allocation-free (member scratch)
  const auto target =
      static_cast<std::uint64_t>(to_ns(cfg_.interactive_p99_target));
  const std::int64_t lo = to_ns(cfg_.min_linger);
  const std::int64_t hi = to_ns(cfg_.max_linger);
  std::int64_t cur = linger_ns_.load(std::memory_order_relaxed);
  const std::int64_t prev = cur;

  // Batch occupancy over the window since the last adaptation tick.
  const std::uint64_t b = batches_.load(std::memory_order_relaxed);
  const std::uint64_t br = batched_requests_.load(std::memory_order_relaxed);
  const std::uint64_t db = b - adapt_last_batches_;
  const std::uint64_t dbr = br - adapt_last_batched_requests_;
  adapt_last_batches_ = b;
  adapt_last_batched_requests_ = br;
  const double occupancy =
      db > 0 ? static_cast<double>(dbr) / static_cast<double>(db)
             : static_cast<double>(cfg_.max_batch);

  if (p.samples > 0 && p.p99 > target) {
    // Tail above target: shrink multiplicatively so the controller
    // converges in a handful of ticks even from max_linger.
    cur = std::max(lo, cur - std::max<std::int64_t>(cur / 4, 1000));
  } else if (occupancy < 0.5 * static_cast<double>(cfg_.max_batch) &&
             (p.samples == 0 || p.p99 * 2 <= target)) {
    // Comfortable tail but under-full batches: more linger buys
    // occupancy.  The target/2 band leaves hysteresis so the linger
    // does not oscillate around the threshold.
    cur = std::min(hi, cur + std::max<std::int64_t>(cur / 4, 1000));
  }
  linger_ns_.store(cur, std::memory_order_relaxed);
  if (cur != prev) ANYSEQ_TRACE_MARK(linger_adapt, 0, cur);
}

void aligner::complete(std::uint32_t idx, alignment_result&& r,
                       std::exception_ptr e) {
  const std::int64_t tr_complete = ANYSEQ_TRACE_NOW();
  const bool with_error = e != nullptr;  // e is moved into the slot below
  slot& sl = slots_[idx];
  const auto ci = static_cast<std::size_t>(sl.cls);
  // Successful results feed the cache before delivery; the insert copies
  // into entry-owned recycled buffers, so moving `r` below is safe.  No
  // service lock is held here — the cache's shard locks are leaves.
  if (e == nullptr && cache_ != nullptr)
    cache_->insert(sl.q, sl.s, sl.opt, r);
  const std::uint64_t lat = ns_between(sl.t_submit, clock::now());
  bool recycle = false;
  {
    std::lock_guard lock(sl.m);
    if (e) {
      sl.error = std::move(e);
      sl.st = slot_state::failed;
      failed_[ci].fetch_add(1, std::memory_order_relaxed);
    } else {
      sl.result = std::move(r);
      sl.st = slot_state::done;
      completed_[ci].fetch_add(1, std::memory_order_relaxed);
      latency_[ci].record(lat);
      hist_[ci].record(lat);
    }
    if (sl.abandoned) {
      sl.st = slot_state::free_slot;
      sl.result = {};
      sl.error = nullptr;
      recycle = true;
    }
  }
  if (recycle)
    release_slot(idx);
  else
    sl.cv.notify_all();
  ANYSEQ_TRACE_EMIT(complete, idx, tr_complete, with_error ? 1 : 0);
}

void aligner::execute(std::uint32_t ws_index) {
  exec_unit& ws = exec_units_[ws_index];

  // Group similar sizes so the inter-sequence SIMD kernel sees
  // uniform-length chunks; per-slot delivery makes order irrelevant.
  std::sort(ws.items.begin(), ws.items.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const slot& x = slots_[a];
              const slot& y = slots_[b];
              return lane_order_less(x.q.size(), x.s.size(), a, y.q.size(),
                                     y.s.size(), b);
            });

  // Execution goes through this unit's reusable aligner: same route
  // selection as the synchronous API (so results stay byte-identical),
  // but every DP buffer comes from the unit's warm workspace arena.
  // run_span contains failures by bisection, so one poisoned request
  // can never fail its whole batch.
  const std::int64_t tr_exec = ANYSEQ_TRACE_NOW();
  run_span(ws, 0, ws.items.size());
  ANYSEQ_TRACE_EMIT(kernel_execute, ws_index, tr_exec,
                    static_cast<std::int64_t>(ws.items.size()));

  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(ws.items.size(), std::memory_order_relaxed);

  {
    std::lock_guard lock(mu_);
    --inflight_;
    free_ws_.push_back(ws_index);
    // Notify under the lock: this broadcast is the last thing the pool
    // worker does with service state, and shutdown destroys the service
    // as soon as it observes inflight_ == 0 — an unlocked notify could
    // still be touching the condvar when the destructor frees it.
    inflight_cv_.notify_all();
  }
}

void aligner::run_span(exec_unit& ws, std::size_t lo, std::size_t hi) {
  if (hi - lo == 1 || slots_[ws.items[lo]].rt == route::solo) {
    // Solo routes execute one-by-one by design; a lone batch-route
    // request degenerates to the same thing.  Either way each failure
    // is already isolated to its own ticket.
    for (std::size_t i = lo; i < hi; ++i) run_solo(ws, ws.items[i]);
    return;
  }
  try {
    // Fault hooks: a span-level allocation failure (transient — the
    // halves retry and succeed) and per-request kernel poison (sticky —
    // bisection walks it down to the solo culprit).  Fingerprints are
    // only computed while a schedule is armed.
    if (ANYSEQ_FAULT_POINT(alloc_failure)) throw std::bad_alloc();
    if (ANYSEQ_FAULT_HOOKS && fault::armed() != nullptr) {
      for (std::size_t i = lo; i < hi; ++i) {
        const slot& sl = slots_[ws.items[i]];
        if (fault::armed()->poisoned(cache_key_hash(sl.q, sl.s, sl.opt)))
          throw fault::injected_fault(
              "service: injected kernel exception (batched)");
      }
    }
    ws.pairs.clear();
    for (std::size_t i = lo; i < hi; ++i)
      ws.pairs.push_back({slots_[ws.items[i]].q, slots_[ws.items[i]].s});
    const slot& lead = slots_[ws.items[lo]];
    ws.eng.set_options(lead.opt);
    const auto eng_t0 = clock::now();
    ws.eng.align_batch_into(ws.pairs, ws.results);
    const std::uint64_t eng_ns = ns_between(eng_t0, clock::now());
    std::uint64_t cells = 0;
    for (std::size_t k = 0; k < hi - lo; ++k) cells += ws.results[k].cells;
    // One batch call = one option set = one dispatched variant; the
    // lead result's stamp names it for the whole span.
    note_exec(lead.rt, ws.results.empty() ? nullptr : ws.results[0].variant,
              hi - lo, cells, eng_ns);
    if (lead.rt == route::batch_score) {
      const batch_stats bst = ws.eng.last_batch_stats();
      batch_simd_pairs_.fetch_add(bst.simd_pairs, std::memory_order_relaxed);
      batch_scalar_pairs_.fetch_add(bst.scalar_pairs,
                                    std::memory_order_relaxed);
      batch_ragged_pairs_.fetch_add(bst.ragged_pairs,
                                    std::memory_order_relaxed);
      batch_padded_cells_.fetch_add(bst.padded_cells,
                                    std::memory_order_relaxed);
    }
    ANYSEQ_TRACE_EMIT(exec_batch, ws.items[lo], epoch_ns(eng_t0),
                      static_cast<std::int64_t>(hi - lo));
    for (std::size_t k = 0; k < hi - lo; ++k)
      complete(ws.items[lo + k], std::move(ws.results[k]), nullptr);
  } catch (...) {
    // Containment by bisection: something in [lo, hi) threw before any
    // member completed.  Split and retry each half — innocents
    // re-execute and succeed byte-identically (batch-route results are
    // independent of batch composition), the culprit is isolated solo
    // within log2(max_batch) rounds and only its ticket fails.
    const std::size_t mid = lo + (hi - lo) / 2;
    run_span(ws, lo, mid);
    run_span(ws, mid, hi);
  }
}

void aligner::run_solo(exec_unit& ws, std::uint32_t idx) {
  slot& sl = slots_[idx];
  // The failure is published only after the catch handler has exited:
  // completing from *inside* the handler would share the still-in-
  // flight exception object with the getter thread, and the handler's
  // exit could then run the final destructor concurrently with the
  // getter reading what() (libstdc++'s refcount is atomic but opaque
  // to TSan).  Capturing into a local exception_ptr first keeps every
  // release of the getter-visible reference on lock-ordered paths.
  std::exception_ptr err;
  try {
    if (ANYSEQ_FAULT_HOOKS && fault::armed() != nullptr &&
        fault::armed()->poisoned(cache_key_hash(sl.q, sl.s, sl.opt)))
      throw fault::injected_fault("service: injected kernel exception");
    ws.eng.set_options(sl.opt);
    const auto eng_t0 = clock::now();
    ws.eng.align_into(sl.q, sl.s, ws.scratch);
    const std::uint64_t eng_ns = ns_between(eng_t0, clock::now());
    // Accounted under the route that *executed* — a batch-route request
    // isolated by bisection lands in the solo column, which is the
    // truth a GCUPS dashboard wants.
    note_exec(route::solo, ws.scratch.variant, 1, ws.scratch.cells, eng_ns);
    ANYSEQ_TRACE_EMIT(exec_solo, idx, epoch_ns(eng_t0), 1);
    complete(idx, std::move(ws.scratch), nullptr);
    return;
  } catch (...) {
    err = std::current_exception();
  }
  // The request failed *in isolation*: it is the culprit, not a
  // bystander — record the offense for the quarantine.
  record_offender(sl);
  complete(idx, {}, std::move(err));
}

void aligner::solo_execute_now(std::uint32_t idx) {
  slot& sl = slots_[idx];
  const auto ci = static_cast<std::size_t>(sl.cls);
  if (sl.deadline != clock::time_point::max() &&
      skewed_now() >= sl.deadline) {
    deadline_expired_[ci].fetch_add(1, std::memory_order_relaxed);
    complete(idx, {},
             std::make_exception_ptr(deadline_error(
                 "service: deadline expired before execution started")));
    return;
  }
  std::exception_ptr err;  // published after the handler exits (above)
  try {
    if (ANYSEQ_FAULT_HOOKS && fault::armed() != nullptr &&
        fault::armed()->poisoned(cache_key_hash(sl.q, sl.s, sl.opt)))
      throw fault::injected_fault("service: injected kernel exception");
    // One-shot sync path: same dispatcher as anyseq::align, so the
    // result stays byte-identical.  This path allocates a workspace —
    // acceptable, it only runs in brownout or dead-batcher drain.
    const auto eng_t0 = clock::now();
    alignment_result r = anyseq::align(sl.q, sl.s, sl.opt);
    const std::uint64_t eng_ns = ns_between(eng_t0, clock::now());
    note_exec(route::solo, r.variant, 1, r.cells, eng_ns);
    ANYSEQ_TRACE_EMIT(exec_solo, idx, epoch_ns(eng_t0), 1);
    complete(idx, std::move(r), nullptr);
    return;
  } catch (...) {
    err = std::current_exception();
  }
  record_offender(sl);
  complete(idx, {}, std::move(err));
}

// ---------------------------------------------------------------------
// Watchdog and degradation
// ---------------------------------------------------------------------

void aligner::watchdog_loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    watchdog_cv_.wait_for(lock, cfg_.watchdog_interval,
                          [&] { return stopping_ || batcher_crashed_; });
    if (stopping_) return;
    bool dead = batcher_crashed_;
    if (!dead && queued_total() > 0 && !batcher_waiting_) {
      // Work is queued and the batcher claims to be actively running
      // (not parked in a wait) — a stale heartbeat then means it is
      // wedged.  Legitimate long waits (linger, a slow batch holding
      // all exec units) set batcher_waiting_ and never trip this.
      const std::int64_t hb = heartbeat_ns_.load(std::memory_order_relaxed);
      dead = epoch_ns(clock::now()) - hb > to_ns(cfg_.stall_threshold);
    }
    if (dead) handle_batcher_failure_locked();
  }
}

void aligner::handle_batcher_failure_locked() {
  batcher_crashed_ = false;
  ++batcher_gen_;  // a stalled-but-alive predecessor exits on next wake
  retired_batchers_.push_back(std::move(batcher_));
  // Queued requests would wait forever on a dead batcher: fail them
  // now, typed, instead of hanging their tickets.
  const auto e = std::make_exception_ptr(service_down_error(
      "service: batcher thread died; queued request failed"));
  for (auto& r : rings_)
    while (r.count > 0) fail_dequeued_locked(ring_pop(r), e);
  space_cv_.notify_all();
  if (watchdog_restarts_.load(std::memory_order_relaxed) == 0 &&
      !stopping_) {
    // First death: restart once.
    watchdog_restarts_.fetch_add(1, std::memory_order_relaxed);
    ANYSEQ_TRACE_MARK(watchdog_restart, 0,
                      static_cast<std::int64_t>(batcher_gen_));
    const std::uint64_t gen = batcher_gen_;
    batcher_ = std::thread([this, gen] { batcher_main(gen); });
  } else {
    // Restart budget spent: degrade rather than flap.  Bulk is refused
    // at submit, interactive executes solo there — degraded but live.
    brownout_.store(true, std::memory_order_release);
    ANYSEQ_TRACE_MARK(brownout, 0, static_cast<std::int64_t>(batcher_gen_));
  }
  batcher_cv_.notify_all();
}

// ---------------------------------------------------------------------
// Shutdown and stats
// ---------------------------------------------------------------------

void aligner::shutdown(bool drain) {
  std::lock_guard shut_lock(shutdown_mu_);
  if (shut_down_) return;

  {
    std::lock_guard lock(mu_);
    accepting_ = false;
    stopping_ = true;
    if (!drain) {
      const auto e = std::make_exception_ptr(
          shutdown_error("service: request failed by no-drain shutdown"));
      for (auto& r : rings_)
        while (r.count > 0) fail_dequeued_locked(ring_pop(r), e);
    }
  }
  batcher_cv_.notify_all();
  space_cv_.notify_all();  // blocked submitters observe the shutdown
  watchdog_cv_.notify_all();
  // Watchdog first: once it has exited, no one else moves batcher_ into
  // retired_batchers_ and the joins below race nothing.
  if (watchdog_.joinable()) watchdog_.join();
  if (batcher_.joinable()) batcher_.join();
  for (auto& t : retired_batchers_)
    if (t.joinable()) t.join();

  std::unique_lock lock(mu_);
  // A batcher that died undetected (or a browned-out service) can leave
  // drained requests queued with no thread to serve them.  The drain
  // promise — every queued request completes — is kept here instead:
  // execute them solo on this thread.  (With drain=false the rings were
  // already failed above; a live batcher drains them itself.)
  for (auto& r : rings_) {
    while (r.count > 0) {
      const std::uint32_t idx = ring_pop(r);
      lock.unlock();
      solo_execute_now(idx);
      lock.lock();
    }
  }
  inflight_cv_.wait(lock, [&] { return inflight_ == 0; });
  shut_down_ = true;
}

void aligner::collect_latency(request_class c,
                              std::vector<std::uint64_t>& out) const {
  latency_[static_cast<std::size_t>(c)].collect(out);
}

service_stats aligner::stats() const {
  service_stats out;
  for (std::size_t c = 0; c < n_cls; ++c) {
    class_stats& cs = out.per_class[c];
    cs.accepted = accepted_[c].load(std::memory_order_relaxed);
    cs.rejected = rejected_[c].load(std::memory_order_relaxed);
    cs.shed = shed_[c].load(std::memory_order_relaxed);
    cs.quota_rejected = quota_rejected_[c].load(std::memory_order_relaxed);
    cs.completed = completed_[c].load(std::memory_order_relaxed);
    cs.failed = failed_[c].load(std::memory_order_relaxed);
    cs.cache_hits = cache_hits_[c].load(std::memory_order_relaxed);
    cs.deadline_expired =
        deadline_expired_[c].load(std::memory_order_relaxed);
    cs.quarantined = quarantined_[c].load(std::memory_order_relaxed);
    const auto p = latency_[c].snapshot();
    cs.p50_latency_ns = p.p50;
    cs.p90_latency_ns = p.p90;
    cs.p99_latency_ns = p.p99;
    cs.p999_latency_ns = p.p999;
    cs.latency_samples = p.samples;
    cs.latency_hist = hist_[c].snapshot();
    out.accepted += cs.accepted;
    out.rejected += cs.rejected;
    out.shed += cs.shed;
    out.quota_rejected += cs.quota_rejected;
    out.completed += cs.completed;
    out.failed += cs.failed;
    out.cache_hits += cs.cache_hits;
    out.deadline_expired += cs.deadline_expired;
    out.quarantined += cs.quarantined;
  }
  out.watchdog_restarts = watchdog_restarts_.load(std::memory_order_relaxed);
  out.brownout = brownout_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  out.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  out.batch_simd_pairs = batch_simd_pairs_.load(std::memory_order_relaxed);
  out.batch_scalar_pairs =
      batch_scalar_pairs_.load(std::memory_order_relaxed);
  out.batch_ragged_pairs =
      batch_ragged_pairs_.load(std::memory_order_relaxed);
  out.batch_padded_cells =
      batch_padded_cells_.load(std::memory_order_relaxed);
  out.mean_batch_occupancy =
      out.batches > 0 ? static_cast<double>(out.batched_requests) /
                            static_cast<double>(out.batches)
                      : 0.0;
  // Aggregate percentiles rank the union of both class reservoirs —
  // never a combination of per-class ranks (see telemetry.hpp).
  std::vector<std::uint64_t> merged;
  for (const auto& res : latency_) res.collect(merged);
  const auto p = nearest_rank_percentiles(merged);
  out.p50_latency_ns = p.p50;
  out.p90_latency_ns = p.p90;
  out.p99_latency_ns = p.p99;
  out.p999_latency_ns = p.p999;
  out.latency_samples = p.samples;
  for (std::size_t r = 0; r < n_exec_routes; ++r)
    for (std::size_t v = 0; v < n_exec_variants; ++v) {
      exec_cell& e = out.exec.at[r][v];
      e.requests = exec_requests_[r][v].load(std::memory_order_relaxed);
      e.cells = exec_cells_[r][v].load(std::memory_order_relaxed);
      e.ns = exec_ns_[r][v].load(std::memory_order_relaxed);
    }
  out.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  // Evictions are a cache-global number: report them only for an owned
  // cache.  With a shared cache the router owns that figure — per-shard
  // copies would multi-count it in any merge.
  if (owned_cache_) out.cache_evictions = owned_cache_->stats().evictions;
  out.effective_linger_us = static_cast<std::uint64_t>(
      linger_ns_.load(std::memory_order_relaxed) / 1000);
  {
    std::lock_guard lock(mu_);
    out.queue_depth = queued_total();
    out.in_flight_batches = inflight_;
    out.outstanding_tickets = slots_.size() - free_.size();
  }
  return out;
}

std::size_t aligner::dump_metrics(char* buf, std::size_t cap) const {
  text_buffer out(buf, cap);
  render_prometheus(stats(), out);
  return out.needed();
}

// ---------------------------------------------------------------------
// Process-wide default service
// ---------------------------------------------------------------------

aligner& global() {
  // aligner's constructor touches thread_pool::global() first, so the
  // pool's function-local static completes construction earlier and is
  // destroyed later than this one.
  static aligner svc{config{}};
  return svc;
}

ticket submit(stage::seq_view q, stage::seq_view s,
              const align_options& opt) {
  return global().submit(q, s, opt);
}

ticket submit_strings(std::string_view q, std::string_view s,
                      const align_options& opt) {
  return global().submit_strings(q, s, opt);
}

service_stats stats() { return global().stats(); }

}  // namespace anyseq::service
