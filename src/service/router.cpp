/// \file router.cpp
/// service_group internals: shard construction with a shared cache,
/// affinity + spill routing, and merged telemetry.

#include "service/router.hpp"

#include <algorithm>

namespace anyseq::service {

service_group::service_group(config cfg) : cfg_(cfg) {
  cfg_.shards = std::max<std::size_t>(1, cfg_.shards);

  if (cfg_.cache_capacity > 0)
    cache_ = std::make_unique<response_cache>(
        response_cache::config{cfg_.cache_capacity, cfg_.cache_shards});

  service::config shard_cfg = cfg_.shard;
  shard_cfg.cache_capacity = 0;  // the group owns the one cache
  shard_cfg.shared_cache = cache_.get();

  shards_.reserve(cfg_.shards);
  for (std::size_t i = 0; i < cfg_.shards; ++i)
    shards_.push_back(std::make_unique<aligner>(shard_cfg));
}

service_group::~service_group() { shutdown(true); }

std::size_t service_group::pick_shard(std::uint64_t affinity) const {
  const std::size_t n = shards_.size();
  if (n == 1) return 0;
  const std::size_t home = static_cast<std::size_t>(affinity % n);

  // Spill decision on relaxed-atomic depth mirrors: find the
  // least-loaded shard and leave home only when the imbalance exceeds
  // the margin.  The reads race with admission, so the decision can be
  // a few requests stale — acceptable for load balancing, and the only
  // alternative is a cross-shard lock on every submit.
  const std::size_t home_depth = shards_[home]->approx_queue_depth();
  if (home_depth <= cfg_.spill_margin) return home;  // cheap fast path
  std::size_t best = home, best_depth = home_depth;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t d = shards_[i]->approx_queue_depth();
    if (d < best_depth) {
      best = i;
      best_depth = d;
    }
  }
  return home_depth > best_depth + cfg_.spill_margin ? best : home;
}

ticket service_group::submit(stage::seq_view q, stage::seq_view s,
                             const align_options& opt,
                             const submit_options& so) {
  return shards_[pick_shard(sequence_hash(q))]->submit(q, s, opt, so);
}

ticket service_group::submit_strings(std::string_view q, std::string_view s,
                                     const align_options& opt,
                                     const submit_options& so) {
  // Affinity over the raw query characters: the shard's encode of the
  // same string always produces the same bytes, so raw-char affinity
  // groups repeats exactly like encoded-view affinity does.
  const auto affinity = sequence_hash(stage::seq_view(
      reinterpret_cast<const char_t*>(q.data()),
      static_cast<index_t>(q.size())));
  return shards_[pick_shard(affinity)]->submit_strings(q, s, opt, so);
}

void service_group::shutdown(bool drain) {
  for (auto& sh : shards_) sh->shutdown(drain);
}

service_stats service_group::stats() const {
  service_stats out;

  // Sum counters shard-wise; percentile fields of the per-shard
  // snapshots are ignored on purpose — they are re-ranked below from
  // the raw samples.
  for (const auto& sh : shards_) {
    const service_stats s = sh->stats();
    out.accepted += s.accepted;
    out.rejected += s.rejected;
    out.shed += s.shed;
    out.quota_rejected += s.quota_rejected;
    out.completed += s.completed;
    out.failed += s.failed;
    out.batches += s.batches;
    out.batched_requests += s.batched_requests;
    out.batch_simd_pairs += s.batch_simd_pairs;
    out.batch_scalar_pairs += s.batch_scalar_pairs;
    out.batch_ragged_pairs += s.batch_ragged_pairs;
    out.batch_padded_cells += s.batch_padded_cells;
    out.cache_hits += s.cache_hits;
    out.cache_misses += s.cache_misses;
    out.deadline_expired += s.deadline_expired;
    out.quarantined += s.quarantined;
    out.watchdog_restarts += s.watchdog_restarts;
    // One browned-out shard degrades the group: surface it.
    out.brownout = out.brownout || s.brownout;
    out.queue_depth += s.queue_depth;
    out.in_flight_batches += s.in_flight_batches;
    out.outstanding_tickets += s.outstanding_tickets;
    out.effective_linger_us =
        std::max(out.effective_linger_us, s.effective_linger_us);
    // Histograms and execution tables merge exactly: bucket-wise /
    // cell-wise sums (unlike the sampled percentiles below).
    out.exec.merge(s.exec);
    for (std::size_t c = 0; c < n_request_classes; ++c) {
      class_stats& dst = out.per_class[c];
      const class_stats& src = s.per_class[c];
      dst.accepted += src.accepted;
      dst.rejected += src.rejected;
      dst.shed += src.shed;
      dst.quota_rejected += src.quota_rejected;
      dst.completed += src.completed;
      dst.failed += src.failed;
      dst.cache_hits += src.cache_hits;
      dst.deadline_expired += src.deadline_expired;
      dst.quarantined += src.quarantined;
      dst.latency_hist.merge(src.latency_hist);
    }
  }
  out.mean_batch_occupancy =
      out.batches > 0 ? static_cast<double>(out.batched_requests) /
                            static_cast<double>(out.batches)
                      : 0.0;

  // Percentiles over the union of every shard's reservoir, per class
  // and aggregate.  A merged p99 is a rank of the pooled samples; it is
  // NOT derivable from per-shard p99s (one hot shard's tail would
  // vanish into any mean, and a sum is meaningless).
  std::vector<std::uint64_t> merged, all;
  for (std::size_t c = 0; c < n_request_classes; ++c) {
    merged.clear();
    for (const auto& sh : shards_)
      sh->collect_latency(static_cast<request_class>(c), merged);
    all.insert(all.end(), merged.begin(), merged.end());
    const auto p = nearest_rank_percentiles(merged);
    out.per_class[c].p50_latency_ns = p.p50;
    out.per_class[c].p90_latency_ns = p.p90;
    out.per_class[c].p99_latency_ns = p.p99;
    out.per_class[c].p999_latency_ns = p.p999;
    out.per_class[c].latency_samples = p.samples;
  }
  const auto p = nearest_rank_percentiles(all);
  out.p50_latency_ns = p.p50;
  out.p90_latency_ns = p.p90;
  out.p99_latency_ns = p.p99;
  out.p999_latency_ns = p.p999;
  out.latency_samples = p.samples;

  // Cache hit/miss counters above are the shards' local views (summed);
  // evictions live only in the shared cache itself.
  if (cache_) out.cache_evictions = cache_->stats().evictions;
  return out;
}

std::size_t service_group::dump_metrics(char* buf, std::size_t cap) const {
  text_buffer out(buf, cap);
  render_prometheus(stats(), out);

  // Per-shard breakdown: the shard label survives the merge, so a
  // dashboard can still see one hot or browned-out shard inside the
  // group-wide series above.
  using u64 = unsigned long long;
  out.printf(
      "# HELP anyseq_shard_accepted_total Requests admitted, per shard.\n"
      "# TYPE anyseq_shard_accepted_total counter\n");
  std::vector<service_stats> per_shard;
  per_shard.reserve(shards_.size());
  for (const auto& sh : shards_) per_shard.push_back(sh->stats());
  for (std::size_t i = 0; i < per_shard.size(); ++i)
    out.printf("anyseq_shard_accepted_total{shard=\"%zu\"} %llu\n", i,
               static_cast<u64>(per_shard[i].accepted));
  out.printf(
      "# HELP anyseq_shard_completed_total Requests completed, per shard.\n"
      "# TYPE anyseq_shard_completed_total counter\n");
  for (std::size_t i = 0; i < per_shard.size(); ++i)
    out.printf("anyseq_shard_completed_total{shard=\"%zu\"} %llu\n", i,
               static_cast<u64>(per_shard[i].completed));
  out.printf(
      "# HELP anyseq_shard_queue_depth Admission depth, per shard.\n"
      "# TYPE anyseq_shard_queue_depth gauge\n");
  for (std::size_t i = 0; i < per_shard.size(); ++i)
    out.printf("anyseq_shard_queue_depth{shard=\"%zu\"} %llu\n", i,
               static_cast<u64>(per_shard[i].queue_depth));
  out.printf(
      "# HELP anyseq_shard_effective_linger_seconds Current linger, per "
      "shard.\n"
      "# TYPE anyseq_shard_effective_linger_seconds gauge\n");
  for (std::size_t i = 0; i < per_shard.size(); ++i)
    out.printf(
        "anyseq_shard_effective_linger_seconds{shard=\"%zu\"} %.6f\n", i,
        static_cast<double>(per_shard[i].effective_linger_us) * 1e-6);
  return out.needed();
}

}  // namespace anyseq::service
