#pragma once
/// \file trace.hpp
/// Request-lifecycle tracing for the serving tier: per-thread
/// fixed-capacity ring buffers of typed span events, exportable as
/// Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).
///
/// Design rules (mirroring faultinject.hpp):
///
///   * **One relaxed load when disarmed.**  Every emission site guards
///     on a process-global atomic collector pointer; with no collector
///     armed a hook is one atomic load and a predictable branch — no
///     clock read, no allocation, no lock — so the service's
///     zero-steady-state-allocation contract holds with tracing
///     compiled in (the default).  Building with `-DANYSEQ_TRACING=0`
///     removes even the branch: the `ANYSEQ_TRACE_*` macros fold to
///     nothing (the collector class itself stays compiled so the
///     export surface keeps linking; it just never receives events).
///   * **Allocation-free to record.**  A collector pre-allocates all
///     ring memory at construction.  Recording writes one 32-byte POD
///     into a single-writer ring: the first event from a thread binds
///     that thread to a ring (one fetch_add on a round-robin cursor),
///     then every subsequent record is an indexed store plus a release
///     counter bump.  Rings wrap — the newest `events_per_thread`
///     events per thread survive; everything that could not get a ring
///     is counted in `dropped()`.
///   * **Dump at quiescence.**  `dump_chrome_json` reads the rings
///     without stopping writers (acquire on each ring's counter), so a
///     dump taken mid-traffic is a best-effort snapshot; a dump taken
///     after traffic drains (the intended use — see
///     examples/alignment_server.cpp) is exact.
///
/// Span taxonomy (see docs/OBSERVABILITY.md for the full map):
///
///   submit          — validate + admit, submit() entry to ticket return
///   cache_probe     — response-cache lookup inside submit()
///   ring_wait       — admission-ring residency (enqueue to batch pick)
///   batch_collect   — batcher pass that assembled one batch
///   workspace_wait  — batcher blocked on the in-flight batch limit
///   kernel_execute  — one execution span inside the pool (whole job)
///   exec_batch      — one engine `align_batch_into` call (per span)
///   exec_solo       — one engine `align_into` call (solo request)
///   complete        — completion: result move + ticket wake
///
/// Instants: watchdog_restart, brownout, linger_adapt, deadline_shed,
/// shed, quarantine — point happenings worth seeing on the timeline.
///
/// Arming is process-global and caller-owned: `arm()` publishes a
/// collector to every emission site in the process, `disarm()` retracts
/// it.  Disarm before the collector goes out of scope and before any
/// thread could still be emitting against a dangling pointer (in
/// practice: disarm after draining the services under observation).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace anyseq::service::trace {

/// Duration events ("ph":"X" in the Chrome trace format).
enum class span : std::uint8_t {
  submit,
  cache_probe,
  ring_wait,
  batch_collect,
  workspace_wait,
  kernel_execute,
  exec_batch,
  exec_solo,
  complete,
};
inline constexpr std::size_t n_spans = 9;

/// Instant events ("ph":"i").
enum class instant : std::uint8_t {
  watchdog_restart,
  brownout,
  linger_adapt,
  deadline_shed,
  shed,
  quarantine,
};
inline constexpr std::size_t n_instants = 6;

[[nodiscard]] const char* to_string(span s) noexcept;
[[nodiscard]] const char* to_string(instant i) noexcept;

/// One recorded event.  32 bytes, trivially copyable — a ring slot is
/// overwritten wholesale, never constructed.
struct event {
  std::int64_t t_ns = 0;    ///< start time, steady-clock ns
  std::int64_t dur_ns = 0;  ///< span duration (0 for instants)
  std::int64_t arg = 0;     ///< kind-specific payload (batch size, ns, ...)
  std::uint32_t id = 0;     ///< correlator: slot index, batch seq, shard
  std::uint8_t kind = 0;    ///< span or instant enumerator
  std::uint8_t is_instant = 0;
};
static_assert(sizeof(event) == 32);

/// Owner of the per-thread rings.  Construction allocates everything;
/// recording allocates nothing.  Threads bind to rings lazily on first
/// record and keep their ring for the collector's lifetime (bindings are
/// generation-keyed, so a new collector re-binds every thread cleanly).
class collector {
 public:
  struct config {
    std::size_t events_per_thread = 8192;  ///< ring capacity (clamped >= 16)
    std::size_t max_threads = 32;          ///< rings available (clamped >= 1)
  };

  collector() : collector(config{}) {}
  explicit collector(const config& cfg);
  collector(const collector&) = delete;
  collector& operator=(const collector&) = delete;

  /// Record a completed span [t0_ns, t1_ns].  Allocation-free;
  /// lock-free (single-writer ring per thread).
  void record_span(span k, std::uint32_t id, std::int64_t t0_ns,
                   std::int64_t t1_ns, std::int64_t arg) noexcept;

  /// Record a point event at now.  Same cost contract as record_span.
  void record_instant(instant k, std::uint32_t id, std::int64_t t_ns,
                      std::int64_t arg) noexcept;

  /// Events currently retrievable (sum over rings, capped per ring).
  [[nodiscard]] std::uint64_t size() const noexcept;

  /// Events lost: ring wrap-overwrites plus records from threads that
  /// arrived after every ring was claimed.
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  /// Render the Chrome trace-event JSON document into `buf` with the
  /// snprintf contract: writes up to `cap - 1` bytes plus a NUL and
  /// returns the byte count the full document needs (excluding the
  /// NUL), so `dump_chrome_json(nullptr, 0)` sizes the buffer.
  /// Timestamps are microseconds relative to the collector's epoch;
  /// `tid` is the ring index, `pid` is 1.
  std::size_t dump_chrome_json(char* buf, std::size_t cap) const;

 private:
  struct ring {
    std::atomic<std::uint64_t> seen{0};  ///< events ever written
    std::vector<event> buf;              ///< capacity cfg_.events_per_thread
  };

  /// The calling thread's ring, binding it on first use (nullptr when
  /// every ring is claimed — the event is then counted as dropped).
  [[nodiscard]] ring* ring_for_thread() noexcept;

  config cfg_;
  std::vector<ring> rings_;
  std::atomic<std::size_t> next_ring_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::int64_t epoch_ns_;
  std::uint64_t generation_;  ///< key for the thread-local binding cache
};

namespace detail {
/// The armed collector (nullptr = disarmed).  Release/acquire so an
/// emission evaluated after arm() sees fully constructed rings.
inline std::atomic<collector*> g_collector{nullptr};
}  // namespace detail

/// Publish `c` to every emission site in the process.
inline void arm(collector& c) noexcept {
  detail::g_collector.store(&c, std::memory_order_release);
}

/// Retract the armed collector (see file comment for lifetime rules).
inline void disarm() noexcept {
  detail::g_collector.store(nullptr, std::memory_order_release);
}

/// The armed collector, or nullptr.  One atomic load — the entire
/// happy-path cost of an emission site.
[[nodiscard]] inline collector* armed() noexcept {
  return detail::g_collector.load(std::memory_order_acquire);
}

/// Current steady-clock time in ns (the trace time base).
[[nodiscard]] std::int64_t now_ns() noexcept;

/// Span-open helper: the current time when armed, 0 when disarmed — so
/// a disarmed span open costs one load and no clock read, and the
/// matching emit recognises the 0 and stays silent.
[[nodiscard]] inline std::int64_t now_if_armed() noexcept {
  return armed() != nullptr ? now_ns() : std::int64_t{0};
}

/// Close and record a span opened with `now_if_armed()`.  Safe across
/// an arm/disarm transition: t0 == 0 (opened disarmed) never records.
inline void emit(span k, std::uint32_t id, std::int64_t t0,
                 std::int64_t arg = 0) noexcept {
  collector* c = armed();
  if (c != nullptr && t0 != 0) c->record_span(k, id, t0, now_ns(), arg);
}

/// Record an instant at now.
inline void mark(instant k, std::uint32_t id, std::int64_t arg = 0) noexcept {
  collector* c = armed();
  if (c != nullptr) c->record_instant(k, id, now_ns(), arg);
}

}  // namespace anyseq::service::trace

/// Emission-site macros.  With tracing compiled in (default) a site is
/// one relaxed-ish atomic load plus a branch when disarmed; with
/// ANYSEQ_TRACING=0 the sites vanish (operands kept as void casts so
/// expressions with side effects still evaluate and variables stay
/// used).
#ifndef ANYSEQ_TRACING
#define ANYSEQ_TRACING 1
#endif

#if ANYSEQ_TRACING
#define ANYSEQ_TRACE_NOW() (::anyseq::service::trace::now_if_armed())
#define ANYSEQ_TRACE_EMIT(k, id, t0, arg)                                   \
  (::anyseq::service::trace::emit(::anyseq::service::trace::span::k,        \
                                  static_cast<std::uint32_t>(id), (t0),     \
                                  static_cast<std::int64_t>(arg)))
#define ANYSEQ_TRACE_MARK(k, id, arg)                                       \
  (::anyseq::service::trace::mark(::anyseq::service::trace::instant::k,     \
                                  static_cast<std::uint32_t>(id),           \
                                  static_cast<std::int64_t>(arg)))
#else
#define ANYSEQ_TRACE_NOW() (std::int64_t{0})
#define ANYSEQ_TRACE_EMIT(k, id, t0, arg) \
  ((void)(id), (void)(t0), (void)(arg))
#define ANYSEQ_TRACE_MARK(k, id, arg) ((void)(id), (void)(arg))
#endif
