#pragma once
/// \file cache.hpp
/// Response cache for the serving tier: a fixed-capacity sharded hash
/// table in front of the admission ring, keyed on
/// (query bytes, subject bytes, options fingerprint).
///
/// Real alignment traffic is heavily repetitive — the same read against
/// the same reference region, the same probe pair from many clients — and
/// a cache hit costs a hash + byte-compare + copy-out instead of an
/// entire DP pass.  The design goals mirror the rest of the service
/// layer:
///
///   * **Bounded memory, zero steady-state heap.**  Every entry's key
///     buffers (encoded query/subject copies) and its stored
///     `alignment_result` are recycled in place when the entry is
///     overwritten or evicted: once the table has warmed to the working
///     set's shapes, hits, inserts, and evictions perform no heap
///     allocations (results that carry traceback strings larger than any
///     previously seen are the usual exception).
///   * **Sharded locking.**  The table is split into power-of-two shards,
///     each with its own mutex, so concurrent producers probing different
///     shards never serialize.  One shard's critical section is a probe
///     walk plus a copy — no alignment work ever runs under a cache lock.
///   * **LRU-clock eviction.**  Each entry carries a reference bit set on
///     hit.  Inserting into a full probe window walks it clock-wise from
///     a roving hand, granting one second chance (ref 1 -> 0) before
///     evicting — LRU-approximate without any list maintenance on hits.
///
/// Correctness: a hit requires byte equality of both sequences AND
/// dispatch-equivalent options (`options_compatible`, the same predicate
/// the batcher uses), so two requests that could produce different bytes
/// can never share an entry.  Only successful results are inserted; the
/// cached bytes are exactly what the engine produced, so a hit is
/// byte-identical to a fresh `align()` by construction.
///
/// The cache is a standalone component: `service::aligner` consults one
/// at `submit()` (hits complete immediately and never enter the admission
/// ring) and `service_group` shares a single cache across all shards so
/// a result computed by one shard serves hits on every other.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "anyseq/anyseq.hpp"

namespace anyseq::service {

/// Lifetime counters of a response cache (monotonic; relaxed reads).
struct cache_stats {
  std::uint64_t hits = 0;        ///< lookups served from the table
  std::uint64_t misses = 0;      ///< lookups that found no entry
  std::uint64_t insertions = 0;  ///< results stored (incl. overwrites)
  std::uint64_t evictions = 0;   ///< live entries displaced by the clock
  std::size_t entries = 0;       ///< live entries right now
  std::size_t capacity = 0;      ///< fixed entry capacity
};

/// Fixed-capacity sharded response cache (see file comment).
/// Thread-safe; all methods may be called concurrently.
class response_cache {
 public:
  struct config {
    /// Total entry capacity across all shards.  Rounded up so every
    /// shard holds the same power-of-two slot count; clamped to >= 1.
    std::size_t capacity = 4096;
    /// Lock shards; rounded down to a power of two, clamped to [1, 256].
    std::size_t shards = 8;
  };

  /// Allocates the whole table up front; entry payload buffers grow
  /// lazily to the working set and are recycled thereafter.
  response_cache() : response_cache(config{}) {}
  explicit response_cache(config cfg);

  /// Probe for (q, s, opt).  On a hit, copy the stored result into `out`
  /// (recycling `out`'s string capacity) and return true.
  [[nodiscard]] bool lookup(stage::seq_view q, stage::seq_view s,
                            const align_options& opt, alignment_result& out);

  /// Store a successful result under (q, s, opt), overwriting a matching
  /// entry or clock-evicting within the key's probe window.  Key bytes
  /// and result are copied into entry-owned recycled storage — the caller
  /// keeps ownership of its buffers.
  void insert(stage::seq_view q, stage::seq_view s, const align_options& opt,
              const alignment_result& r);

  /// Drop every entry (capacity and warmed buffers are kept).
  void clear();

  [[nodiscard]] cache_stats stats() const;
  [[nodiscard]] std::size_t capacity() const noexcept;

 private:
  /// Entries whose slot a key may occupy: the probe window walked by
  /// both lookup and the eviction clock.
  static constexpr std::size_t probe_window = 8;

  struct entry {
    bool used = false;
    std::uint8_t ref = 0;  ///< clock reference bit, set on hit
    std::uint64_t hash = 0;
    std::vector<char_t> q, s;  ///< key bytes, recycled on overwrite
    align_options opt{};
    alignment_result result;  ///< payload, recycled on overwrite
  };

  struct shard {
    mutable std::mutex m;
    std::vector<entry> slots;
    std::size_t hand = 0;  ///< roving clock start within a window
    std::size_t live = 0;
  };

  [[nodiscard]] shard& shard_for(std::uint64_t hash) noexcept;
  [[nodiscard]] std::size_t slot_base(const shard& sh,
                                      std::uint64_t hash) const noexcept;

  std::vector<shard> shards_;
  std::size_t slots_per_shard_ = 0;  ///< power of two
  std::size_t shard_mask_ = 0;

  std::atomic<std::uint64_t> hits_{0}, misses_{0};
  std::atomic<std::uint64_t> insertions_{0}, evictions_{0};
};

/// 64-bit FNV-1a over the cache key: query bytes, subject bytes, and the
/// dispatch-relevant option fields (exactly the set `options_compatible`
/// compares, so hash equality is consistent with key equality).  Exposed
/// for the router's shard-affinity hashing and for tests.
[[nodiscard]] std::uint64_t cache_key_hash(stage::seq_view q,
                                           stage::seq_view s,
                                           const align_options& opt) noexcept;

/// Hash of one sequence's bytes alone — the router's affinity key (all
/// options and the subject excluded, so one query pins to one shard).
[[nodiscard]] std::uint64_t sequence_hash(stage::seq_view q) noexcept;

}  // namespace anyseq::service
