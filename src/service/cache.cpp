/// \file cache.cpp
/// Response-cache internals: FNV-1a key hashing, probe-window lookup,
/// and clock eviction with recycled entry storage.

#include "service/cache.hpp"

#include <algorithm>
#include <type_traits>

#include "service/batcher.hpp"

namespace anyseq::service {

namespace {

constexpr std::uint64_t fnv_offset = 0xCBF29CE484222325ull;
constexpr std::uint64_t fnv_prime = 0x00000100000001B3ull;

[[nodiscard]] std::uint64_t fnv1a_bytes(std::uint64_t h, const void* data,
                                        std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= fnv_prime;
  }
  return h;
}

template <class T>
[[nodiscard]] std::uint64_t fnv1a_value(std::uint64_t h, const T& v) noexcept {
  static_assert(std::is_trivially_copyable_v<T>);
  return fnv1a_bytes(h, &v, sizeof v);
}

/// Fold the dispatch-relevant option fields into the hash — the exact
/// field set options_compatible() compares, nothing more, so equal keys
/// always hash equally and unequal option sets almost never collide
/// (collisions are resolved by the field-wise compare anyway).
[[nodiscard]] std::uint64_t fold_options(std::uint64_t h,
                                         const align_options& o) noexcept {
  h = fnv1a_value(h, o.kind);
  h = fnv1a_value(h, o.want_alignment);
  h = fnv1a_value(h, o.match);
  h = fnv1a_value(h, o.mismatch);
  const bool has_matrix = o.matrix.has_value();
  h = fnv1a_value(h, has_matrix);
  if (has_matrix)
    h = fnv1a_bytes(h, o.matrix->table.data(),
                    o.matrix->table.size() * sizeof(score_t));
  h = fnv1a_value(h, o.gap_open);
  h = fnv1a_value(h, o.gap_extend);
  h = fnv1a_value(h, o.exec);
  h = fnv1a_value(h, o.threads);
  h = fnv1a_value(h, o.tile);
  h = fnv1a_value(h, o.dynamic_schedule);
  h = fnv1a_value(h, o.precision);
  h = fnv1a_value(h, o.pad_waste_cap_pct);
  h = fnv1a_value(h, o.full_matrix_cells);
  return h;
}

[[nodiscard]] bool bytes_equal(const std::vector<char_t>& stored,
                               stage::seq_view v) noexcept {
  if (static_cast<index_t>(stored.size()) != v.size()) return false;
  return v.size() == 0 ||
         std::equal(stored.begin(), stored.end(), v.data());
}

/// Copy `src` into `dst` reusing dst's heap buffers (assign keeps
/// capacity) — the zero-steady-state-allocation half of the contract.
void copy_result(const alignment_result& src, alignment_result& dst) {
  dst.score = src.score;
  dst.q_begin = src.q_begin;
  dst.q_end = src.q_end;
  dst.s_begin = src.s_begin;
  dst.s_end = src.s_end;
  dst.q_aligned.assign(src.q_aligned);
  dst.s_aligned.assign(src.s_aligned);
  dst.cigar.assign(src.cigar);
  dst.has_alignment = src.has_alignment;
  dst.cells = src.cells;
  dst.variant = src.variant;
}

void copy_key(stage::seq_view v, std::vector<char_t>& dst) {
  dst.assign(v.data(), v.data() + v.size());
}

[[nodiscard]] std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

[[nodiscard]] std::size_t round_down_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p * 2 <= n) p <<= 1;
  return p;
}

}  // namespace

std::uint64_t cache_key_hash(stage::seq_view q, stage::seq_view s,
                             const align_options& opt) noexcept {
  std::uint64_t h = fnv_offset;
  const std::uint64_t qn = static_cast<std::uint64_t>(q.size());
  h = fnv1a_value(h, qn);  // length delimiter: (AB, C) != (A, BC)
  h = fnv1a_bytes(h, q.data(), static_cast<std::size_t>(q.size()));
  h = fnv1a_bytes(h, s.data(), static_cast<std::size_t>(s.size()));
  return fold_options(h, opt);
}

std::uint64_t sequence_hash(stage::seq_view q) noexcept {
  return fnv1a_bytes(fnv_offset, q.data(),
                     static_cast<std::size_t>(q.size()));
}

response_cache::response_cache(config cfg) {
  const std::size_t capacity = std::max<std::size_t>(1, cfg.capacity);
  const std::size_t want_shards =
      std::clamp<std::size_t>(cfg.shards, 1, 256);
  // Never more shards than would leave a shard with less than one probe
  // window of slots.
  std::size_t n_shards = round_down_pow2(want_shards);
  while (n_shards > 1 && capacity / n_shards < probe_window) n_shards /= 2;
  slots_per_shard_ = round_up_pow2(std::max<std::size_t>(
      probe_window, (capacity + n_shards - 1) / n_shards));
  shard_mask_ = n_shards - 1;
  shards_ = std::vector<shard>(n_shards);
  for (auto& sh : shards_) sh.slots = std::vector<entry>(slots_per_shard_);
}

response_cache::shard& response_cache::shard_for(
    std::uint64_t hash) noexcept {
  // Shard selection uses high bits, slot selection low bits — the two
  // indices must not be correlated or every shard would probe the same
  // few slots.
  return shards_[(hash >> 48) & shard_mask_];
}

std::size_t response_cache::slot_base(const shard& sh,
                                      std::uint64_t hash) const noexcept {
  (void)sh;
  return static_cast<std::size_t>(hash) & (slots_per_shard_ - 1);
}

bool response_cache::lookup(stage::seq_view q, stage::seq_view s,
                            const align_options& opt,
                            alignment_result& out) {
  const std::uint64_t h = cache_key_hash(q, s, opt);
  shard& sh = shard_for(h);
  {
    std::lock_guard lock(sh.m);
    const std::size_t base = slot_base(sh, h);
    for (std::size_t i = 0; i < probe_window; ++i) {
      entry& e = sh.slots[(base + i) & (slots_per_shard_ - 1)];
      if (!e.used || e.hash != h) continue;
      if (!bytes_equal(e.q, q) || !bytes_equal(e.s, s)) continue;
      if (!options_compatible(e.opt, opt)) continue;
      e.ref = 1;
      copy_result(e.result, out);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void response_cache::insert(stage::seq_view q, stage::seq_view s,
                            const align_options& opt,
                            const alignment_result& r) {
  const std::uint64_t h = cache_key_hash(q, s, opt);
  shard& sh = shard_for(h);
  std::lock_guard lock(sh.m);
  const std::size_t base = slot_base(sh, h);
  const std::size_t mask = slots_per_shard_ - 1;

  // Overwrite a matching entry (racing misses on the same key) or take
  // the first free slot in the window.
  entry* victim = nullptr;
  for (std::size_t i = 0; i < probe_window; ++i) {
    entry& e = sh.slots[(base + i) & mask];
    if (e.used && e.hash == h && bytes_equal(e.q, q) &&
        bytes_equal(e.s, s) && options_compatible(e.opt, opt)) {
      victim = &e;
      break;
    }
    if (!e.used && victim == nullptr) victim = &e;
  }

  if (victim == nullptr) {
    // Window full: clock walk from the roving hand — one second chance
    // (ref 1 -> 0), then evict.  Two passes bound the walk; after the
    // first pass every ref bit is clear, so the second always selects.
    for (std::size_t pass = 0; pass < 2 && victim == nullptr; ++pass) {
      for (std::size_t i = 0; i < probe_window; ++i) {
        entry& e = sh.slots[(base + ((sh.hand + i) % probe_window)) & mask];
        if (e.ref != 0) {
          e.ref = 0;
          continue;
        }
        victim = &e;
        sh.hand = (sh.hand + i + 1) % probe_window;
        break;
      }
    }
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }

  if (!victim->used) ++sh.live;
  victim->used = true;
  victim->ref = 0;  // newly inserted entries earn their reference on hit
  victim->hash = h;
  copy_key(q, victim->q);
  copy_key(s, victim->s);
  victim->opt = opt;
  copy_result(r, victim->result);
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

void response_cache::clear() {
  for (auto& sh : shards_) {
    std::lock_guard lock(sh.m);
    for (auto& e : sh.slots) {
      e.used = false;
      e.ref = 0;
    }
    sh.live = 0;
    sh.hand = 0;
  }
}

cache_stats response_cache::stats() const {
  cache_stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.insertions = insertions_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.capacity = capacity();
  for (const auto& sh : shards_) {
    std::lock_guard lock(sh.m);
    out.entries += sh.live;
  }
  return out;
}

std::size_t response_cache::capacity() const noexcept {
  return shards_.size() * slots_per_shard_;
}

}  // namespace anyseq::service
