/// \file metrics.cpp
/// Execution-table axis names and the Prometheus text-exposition
/// renderer.  Metric names emitted here are the stable scrape contract
/// documented in docs/OBSERVABILITY.md — changing one is a breaking
/// change for any dashboard built on it.

#include "service/metrics.hpp"

#include <cstring>

#include "service/telemetry.hpp"

namespace anyseq::service {

const char* exec_route_name(std::size_t i) noexcept {
  switch (i) {
    case 0: return "batch_score";
    case 1: return "batch_traceback";
    case 2: return "solo";
  }
  return "?";
}

const char* exec_variant_name(std::size_t i) noexcept {
  switch (i) {
    case 0: return "scalar";
    case 1: return "avx2";
    case 2: return "avx512";
    case 3: return "other";
  }
  return "?";
}

std::size_t exec_variant_index(const char* variant) noexcept {
  if (variant == nullptr) return 3;
  if (std::strcmp(variant, "scalar") == 0) return 0;
  if (std::strcmp(variant, "avx2") == 0) return 1;
  if (std::strcmp(variant, "avx512") == 0) return 2;
  return 3;
}

namespace {

using u64 = unsigned long long;

void render_class_histogram(text_buffer& out, const char* cls,
                            const histogram_snapshot& h) {
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < n_latency_buckets; ++i) {
    cumulative += h.buckets[i];
    out.printf(
        "anyseq_request_latency_seconds_bucket{class=\"%s\",le=\"%.16g\"} "
        "%llu\n",
        cls,
        static_cast<double>(latency_histogram::bucket_upper_ns(i)) * 1e-9,
        static_cast<u64>(cumulative));
  }
  out.printf(
      "anyseq_request_latency_seconds_bucket{class=\"%s\",le=\"+Inf\"} %llu\n",
      cls, static_cast<u64>(h.count));
  out.printf("anyseq_request_latency_seconds_sum{class=\"%s\"} %.9f\n", cls,
             static_cast<double>(h.sum_ns) * 1e-9);
  out.printf("anyseq_request_latency_seconds_count{class=\"%s\"} %llu\n", cls,
             static_cast<u64>(h.count));
}

void render_quantiles(text_buffer& out, const char* cls, std::uint64_t p50,
                      std::uint64_t p90, std::uint64_t p99,
                      std::uint64_t p999) {
  const struct {
    const char* q;
    std::uint64_t ns;
  } rows[] = {{"0.5", p50}, {"0.9", p90}, {"0.99", p99}, {"0.999", p999}};
  for (const auto& r : rows)
    out.printf(
        "anyseq_request_latency_quantile_seconds{class=\"%s\","
        "quantile=\"%s\"} %.9f\n",
        cls, r.q, static_cast<double>(r.ns) * 1e-9);
}

}  // namespace

void render_prometheus(const service_stats& s, text_buffer& out) {
  // -- Request outcomes, class-resolved.  The top-level aggregates in
  // service_stats are sums of these series, so they are not re-emitted.
  out.printf(
      "# HELP anyseq_requests_total Requests by class and final outcome.\n"
      "# TYPE anyseq_requests_total counter\n");
  for (std::size_t c = 0; c < n_request_classes; ++c) {
    const class_stats& cs = s.per_class[c];
    const char* cls = to_string(static_cast<request_class>(c));
    const struct {
      const char* outcome;
      std::uint64_t v;
    } rows[] = {
        {"accepted", cs.accepted},
        {"rejected", cs.rejected},
        {"shed", cs.shed},
        {"quota_rejected", cs.quota_rejected},
        {"completed", cs.completed},
        {"failed", cs.failed},
        {"cache_hit", cs.cache_hits},
        {"deadline_expired", cs.deadline_expired},
        {"quarantined", cs.quarantined},
    };
    for (const auto& r : rows)
      out.printf("anyseq_requests_total{class=\"%s\",outcome=\"%s\"} %llu\n",
                 cls, r.outcome, static_cast<u64>(r.v));
  }

  // -- Batching.
  out.printf(
      "# HELP anyseq_batches_total Engine invocations (coalesced groups).\n"
      "# TYPE anyseq_batches_total counter\n"
      "anyseq_batches_total %llu\n",
      static_cast<u64>(s.batches));
  out.printf(
      "# HELP anyseq_batched_requests_total Requests summed over batches.\n"
      "# TYPE anyseq_batched_requests_total counter\n"
      "anyseq_batched_requests_total %llu\n",
      static_cast<u64>(s.batched_requests));
  out.printf(
      "# HELP anyseq_mean_batch_occupancy Mean requests per batch.\n"
      "# TYPE anyseq_mean_batch_occupancy gauge\n"
      "anyseq_mean_batch_occupancy %.6f\n",
      s.mean_batch_occupancy);

  // -- Response cache.
  out.printf(
      "# HELP anyseq_cache_events_total Response-cache events.\n"
      "# TYPE anyseq_cache_events_total counter\n"
      "anyseq_cache_events_total{event=\"hit\"} %llu\n"
      "anyseq_cache_events_total{event=\"miss\"} %llu\n"
      "anyseq_cache_events_total{event=\"eviction\"} %llu\n",
      static_cast<u64>(s.cache_hits), static_cast<u64>(s.cache_misses),
      static_cast<u64>(s.cache_evictions));

  // -- Execution accounting (GCUPS numerator/denominator per route x
  // variant).  Cells that never executed are omitted — absent series
  // read as zero.
  out.printf(
      "# HELP anyseq_exec_requests_total Requests executed, by route and "
      "engine variant.\n"
      "# TYPE anyseq_exec_requests_total counter\n");
  for (std::size_t r = 0; r < n_exec_routes; ++r)
    for (std::size_t v = 0; v < n_exec_variants; ++v) {
      const exec_cell& e = s.exec.at[r][v];
      if (e.requests == 0) continue;
      out.printf(
          "anyseq_exec_requests_total{route=\"%s\",variant=\"%s\"} %llu\n",
          exec_route_name(r), exec_variant_name(v),
          static_cast<u64>(e.requests));
    }
  out.printf(
      "# HELP anyseq_exec_cells_total DP cells relaxed, by route and engine "
      "variant.\n"
      "# TYPE anyseq_exec_cells_total counter\n");
  for (std::size_t r = 0; r < n_exec_routes; ++r)
    for (std::size_t v = 0; v < n_exec_variants; ++v) {
      const exec_cell& e = s.exec.at[r][v];
      if (e.requests == 0) continue;
      out.printf("anyseq_exec_cells_total{route=\"%s\",variant=\"%s\"} %llu\n",
                 exec_route_name(r), exec_variant_name(v),
                 static_cast<u64>(e.cells));
    }
  out.printf(
      "# HELP anyseq_exec_seconds_total Engine wall time, by route and "
      "engine variant.\n"
      "# TYPE anyseq_exec_seconds_total counter\n");
  for (std::size_t r = 0; r < n_exec_routes; ++r)
    for (std::size_t v = 0; v < n_exec_variants; ++v) {
      const exec_cell& e = s.exec.at[r][v];
      if (e.requests == 0) continue;
      out.printf(
          "anyseq_exec_seconds_total{route=\"%s\",variant=\"%s\"} %.9f\n",
          exec_route_name(r), exec_variant_name(v),
          static_cast<double>(e.ns) * 1e-9);
    }
  out.printf(
      "# HELP anyseq_exec_gcups Aggregate engine throughput in giga-cell "
      "updates per second.\n"
      "# TYPE anyseq_exec_gcups gauge\n"
      "anyseq_exec_gcups %.6f\n",
      s.exec.total_gcups());

  // -- Latency: exact histogram per class (shard-mergeable) ...
  out.printf(
      "# HELP anyseq_request_latency_seconds Submit-to-complete latency.\n"
      "# TYPE anyseq_request_latency_seconds histogram\n");
  for (std::size_t c = 0; c < n_request_classes; ++c)
    render_class_histogram(out, to_string(static_cast<request_class>(c)),
                           s.per_class[c].latency_hist);

  // ... plus the sampled reservoir quantiles ("all" = union-rank over
  // every class's reservoir, never a combination of per-class ranks).
  out.printf(
      "# HELP anyseq_request_latency_quantile_seconds Sampled latency "
      "quantiles from the reservoirs.\n"
      "# TYPE anyseq_request_latency_quantile_seconds gauge\n");
  for (std::size_t c = 0; c < n_request_classes; ++c) {
    const class_stats& cs = s.per_class[c];
    render_quantiles(out, to_string(static_cast<request_class>(c)),
                     cs.p50_latency_ns, cs.p90_latency_ns, cs.p99_latency_ns,
                     cs.p999_latency_ns);
  }
  render_quantiles(out, "all", s.p50_latency_ns, s.p90_latency_ns,
                   s.p99_latency_ns, s.p999_latency_ns);

  // -- Instantaneous state.
  out.printf(
      "# HELP anyseq_queue_depth Requests waiting in admission rings.\n"
      "# TYPE anyseq_queue_depth gauge\n"
      "anyseq_queue_depth %llu\n",
      static_cast<u64>(s.queue_depth));
  out.printf(
      "# HELP anyseq_in_flight_batches Batches executing right now.\n"
      "# TYPE anyseq_in_flight_batches gauge\n"
      "anyseq_in_flight_batches %llu\n",
      static_cast<u64>(s.in_flight_batches));
  out.printf(
      "# HELP anyseq_outstanding_tickets Tickets not yet retrieved.\n"
      "# TYPE anyseq_outstanding_tickets gauge\n"
      "anyseq_outstanding_tickets %llu\n",
      static_cast<u64>(s.outstanding_tickets));
  out.printf(
      "# HELP anyseq_effective_linger_seconds Linger the batcher currently "
      "applies.\n"
      "# TYPE anyseq_effective_linger_seconds gauge\n"
      "anyseq_effective_linger_seconds %.6f\n",
      static_cast<double>(s.effective_linger_us) * 1e-6);
  out.printf(
      "# HELP anyseq_watchdog_restarts_total Batcher threads replaced by "
      "the watchdog.\n"
      "# TYPE anyseq_watchdog_restarts_total counter\n"
      "anyseq_watchdog_restarts_total %llu\n",
      static_cast<u64>(s.watchdog_restarts));
  out.printf(
      "# HELP anyseq_brownout 1 while the service is degraded to "
      "solo-interactive brownout mode.\n"
      "# TYPE anyseq_brownout gauge\n"
      "anyseq_brownout %d\n",
      s.brownout ? 1 : 0);
}

}  // namespace anyseq::service
