#pragma once
/// \file faultinject.hpp
/// Deterministic fault injection for the serving tier.
///
/// Robustness code that only runs when production breaks is robustness
/// code that has never run.  This header plants named *hook points* in
/// the service internals — places where an allocation can fail, an
/// engine can throw, the batcher thread can die, or the clock can skew
/// — and drives them from a seeded `schedule`, so a chaos test can make
/// every failure path fire on demand and replay the exact same failure
/// pattern from the same seed.
///
/// Design rules:
///
///   * **Branch-only when disarmed.**  A hook point compiles to one
///     relaxed atomic load and a predictable branch; with no schedule
///     armed it performs no allocation, takes no lock, and reads no
///     clock, so the service's zero-steady-state-allocation contract
///     holds with hooks compiled in (the default).  Building with
///     `-DANYSEQ_FAULT_HOOKS=0` removes even the branch: every hook
///     macro folds to a compile-time `false`.
///   * **Deterministic given the seed.**  Per-visit faults
///     (`alloc_failure`, `batcher_stall`) fire on a pure function of
///     (seed, point, visit index): the i-th visit of a point always
///     makes the same decision.  Per-request faults
///     (`kernel_exception`) are keyed on the request *fingerprint*
///     instead — `poisoned(fp)` is a pure function of (seed, fp) — so a
///     poisoned request fails every time it executes regardless of how
///     batches happen to form, which is exactly what the bisection
///     retry and the quarantine need to behave deterministically.
///   * **Typed.**  Injected engine faults throw `injected_fault`
///     (derived from `anyseq::error`), so tests can tell an injected
///     failure from a real one while every production catch site treats
///     them identically.
///
/// Hook points:
///
///   * `alloc_failure`    — executor, multi-request spans only: the
///     batch execution throws `std::bad_alloc` before reaching the
///     engine.  Transient: the bisection retry re-executes the halves,
///     so every request still completes (solo spans never fire this
///     hook — an isolated request always reaches the engine).
///   * `kernel_exception` — executor, per request: a poisoned
///     fingerprint throws `injected_fault` whenever it reaches the
///     engine, batched or solo.  Drives bisection isolation and the
///     repeat-offender quarantine.
///   * `batcher_stall`    — batcher thread, top of its loop: throws
///     `injected_fault` out of the loop, simulating a dead batcher for
///     the watchdog to detect, restart, and — on a second death —
///     escalate to brownout.
///   * `clock_skew`       — deadline arithmetic: `skewed_now` offsets
///     the observed time by a bounded, seeded amount, so deadline
///     shedding is exercised against a lying clock (requests may be
///     shed early or late; liveness and survivor byte-identity must
///     hold either way).
///
/// Arming is process-global and test-only: `arm()` publishes a schedule
/// to every service in the process, `disarm()` retracts it.  Callers
/// must disarm before the schedule goes out of scope and must not arm
/// concurrently with service traffic they do not own.

#include <atomic>
#include <cstdint>

#include "core/errors.hpp"

namespace anyseq::service::fault {

/// A fault thrown by an armed schedule (never by production code).
class injected_fault : public error {
 public:
  explicit injected_fault(const std::string& what) : error(what) {}
};

/// Named hook points (see file comment for placement and semantics).
enum class point : std::uint8_t {
  alloc_failure,
  kernel_exception,
  batcher_stall,
  clock_skew,
};
inline constexpr std::size_t n_fault_points = 4;

/// Seeded, deterministic fault schedule.  Thread-safe: hook points are
/// evaluated from producer, batcher, and pool threads concurrently.
class schedule {
 public:
  struct config {
    std::uint64_t seed = 1;
    /// Probability that one visit of `alloc_failure` fires (multi-item
    /// execution spans only).
    double alloc_failure_rate = 0.0;
    /// Probability that a given request fingerprint is poisoned — a
    /// sticky, per-request property, not a per-visit roll.
    double poison_rate = 0.0;
    /// Probability that one batcher-loop iteration throws the thread
    /// dead.
    double batcher_stall_rate = 0.0;
    /// Deadline clock skew is drawn uniformly from ±this bound (0 =
    /// honest clock).
    std::int64_t max_clock_skew_ns = 0;
  };

  explicit schedule(const config& cfg) noexcept : cfg_(cfg) {}

  /// Per-visit decision for `alloc_failure` / `batcher_stall`: visit
  /// indices are assigned in arrival order per point, and the decision
  /// is a pure function of (seed, point, index).
  [[nodiscard]] bool fire(point p) noexcept {
    const auto pi = static_cast<std::size_t>(p);
    const std::uint64_t visit =
        visits_[pi].fetch_add(1, std::memory_order_relaxed);
    const double rate = p == point::alloc_failure ? cfg_.alloc_failure_rate
                        : p == point::batcher_stall ? cfg_.batcher_stall_rate
                                                    : 0.0;
    return roll(mix(cfg_.seed, pi + 1, visit), rate);
  }

  /// Sticky per-request decision for `kernel_exception`: pure in
  /// (seed, fingerprint), so a poisoned request fails on every
  /// execution attempt — batched, bisected, or solo.
  [[nodiscard]] bool poisoned(std::uint64_t fingerprint) const noexcept {
    return roll(mix(cfg_.seed, 97, fingerprint), cfg_.poison_rate);
  }

  /// Seeded clock skew for this visit of `clock_skew`, in
  /// [-max_clock_skew_ns, +max_clock_skew_ns].
  [[nodiscard]] std::int64_t skew_ns() noexcept {
    if (cfg_.max_clock_skew_ns == 0) return 0;
    const auto pi = static_cast<std::size_t>(point::clock_skew);
    const std::uint64_t visit =
        visits_[pi].fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t h = mix(cfg_.seed, pi + 1, visit);
    const auto span = static_cast<std::uint64_t>(cfg_.max_clock_skew_ns);
    return static_cast<std::int64_t>(h % (2 * span + 1)) -
           cfg_.max_clock_skew_ns;
  }

  [[nodiscard]] const config& settings() const noexcept { return cfg_; }

 private:
  /// splitmix64-style avalanche over the (seed, stream, index) triple.
  [[nodiscard]] static std::uint64_t mix(std::uint64_t seed,
                                         std::uint64_t stream,
                                         std::uint64_t index) noexcept {
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (stream + 1) + index;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  [[nodiscard]] static bool roll(std::uint64_t h, double rate) noexcept {
    if (rate <= 0.0) return false;
    if (rate >= 1.0) return true;
    // Compare in 53-bit space: h's low bits vs. rate scaled to them.
    const auto bound =
        static_cast<std::uint64_t>(rate * 9007199254740992.0);  // 2^53
    return (h & ((1ull << 53) - 1)) < bound;
  }

  config cfg_;
  std::atomic<std::uint64_t> visits_[n_fault_points] = {};
};

namespace detail {
/// The armed schedule (nullptr = disarmed).  Release/acquire so a hook
/// evaluated after arm() sees a fully constructed schedule.
inline std::atomic<schedule*> g_schedule{nullptr};
}  // namespace detail

/// Publish `s` to every hook point in the process.  Test-only.
inline void arm(schedule& s) noexcept {
  detail::g_schedule.store(&s, std::memory_order_release);
}

/// Retract the armed schedule.  Must happen-before its destruction and
/// before any thread that could still evaluate hooks is left running
/// against a dangling pointer (in practice: disarm after shutting down
/// the services under test).
inline void disarm() noexcept {
  detail::g_schedule.store(nullptr, std::memory_order_release);
}

/// The armed schedule, or nullptr.  One atomic load — this is the
/// entire happy-path cost of a hook point.
[[nodiscard]] inline schedule* armed() noexcept {
  return detail::g_schedule.load(std::memory_order_acquire);
}

/// True when the armed schedule fires this visit of per-visit point `p`.
[[nodiscard]] inline bool fires(point p) noexcept {
  schedule* s = armed();
  return s != nullptr && s->fire(p);
}

/// True when request fingerprint `fp` is poisoned by the armed schedule.
[[nodiscard]] inline bool is_poisoned(std::uint64_t fp) noexcept {
  schedule* s = armed();
  return s != nullptr && s->poisoned(fp);
}

/// Signed ns offset the armed schedule applies to deadline clock reads.
[[nodiscard]] inline std::int64_t clock_skew_ns() noexcept {
  schedule* s = armed();
  return s != nullptr ? s->skew_ns() : std::int64_t{0};
}

}  // namespace anyseq::service::fault

/// Hook-point predicates.  With hooks compiled in (default) each is one
/// atomic load plus a branch when disarmed; with ANYSEQ_FAULT_HOOKS=0
/// they fold to constants and the fault paths become dead code.
#ifndef ANYSEQ_FAULT_HOOKS
#define ANYSEQ_FAULT_HOOKS 1
#endif

#if ANYSEQ_FAULT_HOOKS
#define ANYSEQ_FAULT_POINT(p) \
  (::anyseq::service::fault::fires(::anyseq::service::fault::point::p))
#define ANYSEQ_FAULT_POISONED(fp) (::anyseq::service::fault::is_poisoned(fp))
#define ANYSEQ_FAULT_CLOCK_SKEW_NS() \
  (::anyseq::service::fault::clock_skew_ns())
#else
#define ANYSEQ_FAULT_POINT(p) (false)
#define ANYSEQ_FAULT_POISONED(fp) (false)
#define ANYSEQ_FAULT_CLOCK_SKEW_NS() (std::int64_t{0})
#endif
