#pragma once
/// \file service.hpp
/// Asynchronous request-batching front-end over the AnySeq dispatcher.
///
/// A server handling millions of independent alignment requests cannot
/// profit from `align_batch` unless something coalesces its traffic.
/// `service::aligner` is that layer: callers `submit()` one pair at a
/// time and get a future-like `ticket` back; a batcher thread coalesces
/// compatible requests (flushing on max batch size, max linger time, or
/// an option-compatibility boundary), orders them so SIMD lanes stay
/// full, and executes each batch on `parallel::thread_pool::global()`
/// through the public `align`/`align_batch` dispatcher.  Every result is
/// byte-identical to what a synchronous `anyseq::align` call on the same
/// inputs would return (route selection in service/batcher.hpp is what
/// makes that guarantee hold).
///
/// On top of the batching core sits the serving tier:
///
///   * **Response cache** (service/cache.hpp).  With `cache_capacity > 0`
///     (or a router-shared cache), `submit()` first probes the cache;
///     a hit copies the stored result into the ticket's slot and
///     completes immediately — it never enters the admission ring, never
///     wakes the batcher, and costs no quota token.  Misses execute
///     normally and are inserted on completion.
///   * **Priority classes** (telemetry.hpp `request_class`).  Each class
///     has its own admission ring; the batcher serves `interactive`
///     strictly before `bulk`, and an interactive arrival cuts a forming
///     bulk batch's linger short — a bulk flood cannot push interactive
///     p99 past roughly one batch execution.
///   * **Tenant quotas.**  With `tenant_rate > 0`, each tenant id draws
///     from a token bucket (refill `tenant_rate`/s, depth
///     `tenant_burst`); a drained bucket rejects with `quota_error`
///     regardless of backpressure policy, so one tenant's flood cannot
///     monopolize the queues.  Cache hits are not charged.
///   * **Adaptive linger.**  With `adaptive_linger`, the batcher drives
///     the effective linger from the interactive latency reservoir:
///     shrink while interactive p99 exceeds `interactive_p99_target`,
///     grow back toward `max_linger` while the tail is comfortable and
///     batches run under-full.
///
/// Admission is bounded: at most `config::queue_capacity` requests wait
/// in each class queue and at most `config::max_outstanding` tickets can
/// be unretrieved at once.  When a bound is hit the configured
/// backpressure policy applies — block the submitter, reject with a
/// typed error, or shed the oldest queued request of the same class.
/// All request bookkeeping lives in rings and slot arrays sized once at
/// construction: steady-state submission and completion never allocate,
/// on the cache-hit path and the miss path alike (results that carry
/// traceback strings are the one necessary exception).
///
/// Quickstart:
/// ```
///   anyseq::service::aligner svc;                // or service::submit(...)
///   auto t = svc.submit(q_view, s_view, opt);    // non-blocking-ish
///   anyseq::alignment_result r = t.get();        // blocks until done
///   auto snap = svc.stats();                     // occupancy, p50/p99, ...
/// ```
///
/// Lifetime rules: sequence views passed to `submit` must stay valid
/// until the request has *completed* — normally until `ticket::get()`
/// returns.  Abandoning a ticket does NOT release that obligation: the
/// service still executes the request (it may already be mid-batch), so
/// an abandoner must keep the buffers alive until the service is shut
/// down or destroyed — or use `submit_strings`, which copies.  The
/// aligner must outlive its tickets; `shutdown(true)` (also run by the
/// destructor) drains every queued request, so pending tickets always
/// complete.  Results inserted into the cache are entry-owned copies —
/// no lifetime coupling to the submitting caller.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "anyseq/anyseq.hpp"
#include "parallel/thread_pool.hpp"
#include "service/batcher.hpp"
#include "service/cache.hpp"
#include "service/telemetry.hpp"

namespace anyseq::service {

/// Submission refused because a capacity bound was hit under the
/// `reject` policy (or a policy that could not make room).
class queue_full_error : public error {
 public:
  explicit queue_full_error(const std::string& what) : error(what) {}
};

/// Submission refused because the service is shutting down, or a queued
/// request failed by a no-drain shutdown.
class shutdown_error : public error {
 public:
  explicit shutdown_error(const std::string& what) : error(what) {}
};

/// A queued request was dropped by the `shed_oldest` policy to make room
/// for newer traffic; delivered through the victim's `ticket::get()`.
class shed_error : public error {
 public:
  explicit shed_error(const std::string& what) : error(what) {}
};

/// Submission refused because the tenant's token bucket is empty.
/// Thrown regardless of the backpressure policy: quotas meter a tenant's
/// *work*, they are not a capacity bound the service should block on.
class quota_error : public error {
 public:
  explicit quota_error(const std::string& what) : error(what) {}
};

/// What `submit` does when a capacity bound is hit.
enum class backpressure : std::uint8_t {
  block,       ///< wait until room frees up (default)
  reject,      ///< throw queue_full_error immediately
  shed_oldest  ///< drop the oldest *queued* request of the same class
               ///< (its ticket fails with shed_error); falls back to
               ///< reject when nothing is queued to shed
};

[[nodiscard]] const char* to_string(backpressure p) noexcept;

/// Per-request admission attributes; defaults reproduce the
/// pre-serving-tier behaviour (interactive, tenant 0).
struct submit_options {
  request_class cls = request_class::interactive;
  /// Tenant id for quota accounting; must be < config::max_tenants when
  /// quotas are enabled.
  std::uint32_t tenant = 0;
};

/// Service tuning.  Everything is fixed at construction; the slot array,
/// admission rings, batch workspaces, tenant buckets, and the optional
/// cache are allocated once from these numbers.
struct config {
  /// Flush a forming batch at this many requests.
  std::size_t max_batch = 64;
  /// Flush a forming batch this long after its first request, even if
  /// not full — the latency cost of waiting for stragglers.  With
  /// `adaptive_linger` this is the controller's *upper* bound.
  std::chrono::microseconds max_linger{200};
  /// Bound on requests waiting in each class's admission queue.  Checked
  /// at admission time; under heavy producer concurrency the
  /// instantaneous depth can exceed it by at most the number of
  /// submissions that are mid-flight (filling their already-admitted
  /// slot).
  std::size_t queue_capacity = 1024;
  /// Bound on unretrieved tickets (0 = 4 * queue_capacity).  This is
  /// also the slot-array size: a ticket holds its slot until `get()`.
  std::size_t max_outstanding = 0;
  backpressure policy = backpressure::block;
  /// Batches executing concurrently on the pool (0 = pool size).
  std::size_t max_inflight_batches = 0;
  /// Latency reservoir size for the p50/p99 estimates (per class).
  std::size_t latency_reservoir = 512;

  /// Response-cache entries owned by this service (0 = no cache).
  /// Ignored when `shared_cache` is set.
  std::size_t cache_capacity = 0;
  /// Lock shards of the owned cache (see response_cache::config).
  std::size_t cache_shards = 8;
  /// Externally owned cache, shared across services (a `service_group`
  /// fronts all its shards with one).  Must outlive the service.
  response_cache* shared_cache = nullptr;

  /// Let the batcher steer the effective linger inside
  /// [min_linger, max_linger] from the interactive latency reservoir.
  bool adaptive_linger = false;
  std::chrono::microseconds min_linger{20};
  /// Interactive p99 the adaptive controller tries to stay under.
  std::chrono::microseconds interactive_p99_target{2000};

  /// Tenant token buckets: refill rate in requests/second (0 = quotas
  /// off) and bucket depth (0 = max(1, tenant_rate)).  Cache hits are
  /// not charged.
  double tenant_rate = 0.0;
  double tenant_burst = 0.0;
  /// Size of the tenant table; submit with `tenant >= max_tenants`
  /// throws invalid_argument_error when quotas are enabled.
  std::size_t max_tenants = 64;
};

class aligner;

/// Future-like handle to one submitted request.  Move-only; `get()`
/// blocks until the result is ready, returns it, and releases the
/// underlying slot.  A ticket destroyed without `get()` abandons the
/// request: the service still executes it and recycles its slot as soon
/// as the result lands (so view-based submissions must keep their
/// buffers alive — see the lifetime rules above).
class ticket {
 public:
  ticket() noexcept = default;
  ticket(ticket&& other) noexcept;
  ticket& operator=(ticket&& other) noexcept;
  ~ticket();
  ticket(const ticket&) = delete;
  ticket& operator=(const ticket&) = delete;

  /// False for default-constructed, moved-from, or consumed tickets.
  [[nodiscard]] bool valid() const noexcept { return svc_ != nullptr; }

  /// True once the result (or error) is available; `get()` won't block.
  [[nodiscard]] bool ready() const;

  /// Block until the request completes; return the result or rethrow
  /// the request's error (shed_error, shutdown_error, or whatever the
  /// dispatcher threw).  Consumes the ticket.
  [[nodiscard]] alignment_result get();

 private:
  friend class aligner;
  ticket(aligner* svc, std::uint32_t slot, std::uint64_t gen) noexcept
      : svc_(svc), slot_(slot), gen_(gen) {}

  /// Release or abandon the held request (dtor / move-assign).
  void retire() noexcept;

  aligner* svc_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t gen_ = 0;
};

/// The asynchronous alignment service.  Thread-safe: any number of
/// producer threads may submit concurrently.
class aligner {
 public:
  /// Starts the batcher thread.  Throws invalid_argument_error on
  /// nonsensical configuration (zero batch size, negative linger, ...).
  explicit aligner(config cfg = {});

  /// Equivalent to shutdown(true).  Destroy only after every ticket has
  /// been retrieved or abandoned.
  ~aligner();

  aligner(const aligner&) = delete;
  aligner& operator=(const aligner&) = delete;

  /// Submit one alignment request.  The views must stay valid until the
  /// request completes (see the lifetime rules in the file comment).
  /// Throws invalid_argument_error for bad options (same checks as
  /// `anyseq::align`), queue_full_error / shutdown_error per the
  /// backpressure policy and service state, quota_error when the
  /// tenant's bucket is empty.
  [[nodiscard]] ticket submit(stage::seq_view q, stage::seq_view s,
                              const align_options& opt = {},
                              const submit_options& so = {});

  /// Like submit(), but DNA-encodes and copies the strings into
  /// slot-owned storage — no lifetime obligation on the caller.  The
  /// copy reuses each slot's buffers, so steady state stays
  /// allocation-free once buffers have grown to the working set.
  [[nodiscard]] ticket submit_strings(std::string_view q, std::string_view s,
                                      const align_options& opt = {},
                                      const submit_options& so = {});

  /// Counter + latency snapshot; cheap enough for a metrics scrape loop.
  [[nodiscard]] service_stats stats() const;

  /// Stop accepting work.  With drain=true (default) every queued
  /// request still executes; with drain=false queued requests fail with
  /// shutdown_error (batches already forming or executing complete
  /// either way).  Blocks until the batcher thread has exited and no
  /// batch is in flight; idempotent and safe to call concurrently.
  /// Tickets remain retrievable after shutdown.
  void shutdown(bool drain = true);

  [[nodiscard]] const config& settings() const noexcept { return cfg_; }

  /// The attached response cache (owned or shared); nullptr when
  /// caching is disabled.
  [[nodiscard]] response_cache* cache() const noexcept { return cache_; }

  /// Instantaneous total admission depth across both class rings —
  /// a relaxed-atomic mirror for the router's load-spill decision (no
  /// lock taken; may lag by a few requests).
  [[nodiscard]] std::size_t approx_queue_depth() const noexcept {
    return depth_.load(std::memory_order_relaxed);
  }

  /// Linger the batcher currently applies (== max_linger unless the
  /// adaptive controller moved it).
  [[nodiscard]] std::chrono::nanoseconds effective_linger() const noexcept {
    return std::chrono::nanoseconds(
        linger_ns_.load(std::memory_order_relaxed));
  }

  /// Append this service's raw latency samples for `c` to `out` — the
  /// router merges shards' reservoirs and takes nearest-rank over the
  /// union (see telemetry.hpp).
  void collect_latency(request_class c,
                       std::vector<std::uint64_t>& out) const;

 private:
  friend class ticket;

  static constexpr std::size_t n_cls = n_request_classes;

  enum class slot_state : std::uint8_t {
    free_slot,  ///< on the freelist
    queued,     ///< admitted: in the ring, forming, or executing
    done,       ///< result ready
    failed      ///< error ready
  };

  /// One request's storage, reused across generations.  `gen` guards
  /// against stale tickets; `m`/`cv` hand the completion to `get()`.
  struct slot {
    std::mutex m;
    std::condition_variable cv;
    slot_state st = slot_state::free_slot;
    bool abandoned = false;
    std::uint64_t gen = 0;
    stage::seq_view q, s;
    align_options opt;
    route rt = route::solo;
    request_class cls = request_class::interactive;
    std::uint32_t tenant = 0;
    std::vector<char_t> q_store, s_store;  ///< submit_strings copies
    alignment_result result;
    std::exception_ptr error;
    std::chrono::steady_clock::time_point t_submit;
  };

  /// One class's admission queue (FIFO ring over slot indices).
  struct admission_ring {
    std::vector<std::uint32_t> buf;
    std::size_t head = 0, count = 0;
  };

  /// Reusable per-batch execution unit; one per concurrently executing
  /// batch.  Each unit owns a full `anyseq::aligner` — the same
  /// plan/execute workspace arena the synchronous API uses — plus
  /// recycled result storage, so steady-state batch execution carves
  /// every DP buffer from a warm arena instead of allocating (results
  /// that carry traceback strings are the one necessary exception: their
  /// buffers leave with the client).
  struct exec_unit {
    std::vector<std::uint32_t> items;
    std::vector<seq_pair> pairs;
    std::vector<alignment_result> results;  ///< batch output, reused
    alignment_result scratch;               ///< solo output, reused
    anyseq::aligner eng;                    ///< reusable engine workspace
  };

  /// Per-tenant token bucket (guarded by mu_).
  struct token_bucket {
    double tokens = 0.0;
    std::chrono::steady_clock::time_point last{};
    bool init = false;
  };

  ticket submit_impl(stage::seq_view q, stage::seq_view s,
                     std::string_view q_chars, std::string_view s_chars,
                     bool copy_strings, const align_options& opt,
                     const submit_options& so);
  void batcher_loop();
  void adapt_linger(std::chrono::steady_clock::time_point now);
  void execute(std::uint32_t ws_index);
  void complete(std::uint32_t idx, alignment_result&& r,
                std::exception_ptr e);
  /// Requires mu_ held: fail a request popped from the admission ring.
  void fail_dequeued_locked(std::uint32_t idx, std::exception_ptr e);
  void release_slot(std::uint32_t idx);
  /// Requires mu_ held: refill + draw one token; false when drained.
  [[nodiscard]] bool take_token(std::uint32_t tenant,
                                std::chrono::steady_clock::time_point now);

  // Admission ring helpers; call with mu_ held.
  [[nodiscard]] std::uint32_t ring_pop(admission_ring& r) noexcept;
  void ring_push(admission_ring& r, std::uint32_t idx) noexcept;
  /// Extract up to `max_take` requests batchable with `lead` from
  /// anywhere in ring `r`, compacting the rest in FIFO order.
  std::size_t ring_extract_compatible(admission_ring& r, const slot& lead,
                                      std::vector<std::uint32_t>& batch,
                                      std::size_t max_take) noexcept;
  [[nodiscard]] admission_ring& ring_of(request_class c) noexcept {
    return rings_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::size_t queued_total() const noexcept {
    return rings_[0].count + rings_[1].count;
  }

  config cfg_;
  parallel::thread_pool* pool_;

  mutable std::mutex mu_;
  std::condition_variable batcher_cv_;   ///< work arrived / stopping
  std::condition_variable space_cv_;     ///< admission room freed
  std::condition_variable inflight_cv_;  ///< batch finished / ws freed
  std::vector<slot> slots_;
  std::vector<std::uint32_t> free_;  ///< free slot indices (stack)
  admission_ring rings_[n_cls];      ///< per-class admission queues
  std::vector<exec_unit> exec_units_;
  std::vector<std::uint32_t> free_ws_;
  std::vector<token_bucket> buckets_;  ///< per-tenant quota state
  std::size_t inflight_ = 0;
  bool accepting_ = true;
  bool stopping_ = false;

  std::mutex shutdown_mu_;  ///< serializes shutdown(); taken before mu_
  bool shut_down_ = false;

  std::unique_ptr<response_cache> owned_cache_;
  response_cache* cache_ = nullptr;  ///< owned_cache_ or cfg_.shared_cache

  std::atomic<std::uint64_t> accepted_[n_cls] = {};
  std::atomic<std::uint64_t> rejected_[n_cls] = {};
  std::atomic<std::uint64_t> shed_[n_cls] = {};
  std::atomic<std::uint64_t> quota_rejected_[n_cls] = {};
  std::atomic<std::uint64_t> completed_[n_cls] = {};
  std::atomic<std::uint64_t> failed_[n_cls] = {};
  std::atomic<std::uint64_t> cache_hits_[n_cls] = {};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> batches_{0}, batched_requests_{0};
  std::atomic<std::size_t> depth_{0};  ///< mirror of queued_total()
  std::atomic<std::int64_t> linger_ns_{0};  ///< effective linger
  latency_reservoir latency_[n_cls];

  // Adaptive-linger controller state (batcher thread only).
  std::chrono::steady_clock::time_point next_adapt_{};
  std::uint64_t adapt_last_batches_ = 0;
  std::uint64_t adapt_last_batched_requests_ = 0;

  std::thread batcher_;  ///< last member: starts after state is ready
};

/// Process-wide default service (default config, created on first use).
/// Drains at process exit; `parallel::thread_pool::global()` is
/// guaranteed to outlive it.
[[nodiscard]] aligner& global();

/// Submit to the process-wide service.
[[nodiscard]] ticket submit(stage::seq_view q, stage::seq_view s,
                            const align_options& opt = {});
[[nodiscard]] ticket submit_strings(std::string_view q, std::string_view s,
                                    const align_options& opt = {});

/// Stats of the process-wide service.
[[nodiscard]] service_stats stats();

}  // namespace anyseq::service
