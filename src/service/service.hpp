#pragma once
/// \file service.hpp
/// Asynchronous request-batching front-end over the AnySeq dispatcher.
///
/// A server handling millions of independent alignment requests cannot
/// profit from `align_batch` unless something coalesces its traffic.
/// `service::aligner` is that layer: callers `submit()` one pair at a
/// time and get a future-like `ticket` back; a batcher thread coalesces
/// compatible requests (flushing on max batch size, max linger time, or
/// an option-compatibility boundary), orders them so SIMD lanes stay
/// full, and executes each batch on `parallel::thread_pool::global()`
/// through the public `align`/`align_batch` dispatcher.  Every result is
/// byte-identical to what a synchronous `anyseq::align` call on the same
/// inputs would return (route selection in service/batcher.hpp is what
/// makes that guarantee hold).
///
/// On top of the batching core sits the serving tier:
///
///   * **Response cache** (service/cache.hpp).  With `cache_capacity > 0`
///     (or a router-shared cache), `submit()` first probes the cache;
///     a hit copies the stored result into the ticket's slot and
///     completes immediately — it never enters the admission ring, never
///     wakes the batcher, and costs no quota token.  Misses execute
///     normally and are inserted on completion.
///   * **Priority classes** (telemetry.hpp `request_class`).  Each class
///     has its own admission ring; the batcher serves `interactive`
///     strictly before `bulk`, and an interactive arrival cuts a forming
///     bulk batch's linger short — a bulk flood cannot push interactive
///     p99 past roughly one batch execution.
///   * **Tenant quotas.**  With `tenant_rate > 0`, each tenant id draws
///     from a token bucket (refill `tenant_rate`/s, depth
///     `tenant_burst`); a drained bucket rejects with `quota_error`
///     regardless of backpressure policy, so one tenant's flood cannot
///     monopolize the queues.  Cache hits are not charged.
///   * **Adaptive linger.**  With `adaptive_linger`, the batcher drives
///     the effective linger from the interactive latency reservoir:
///     shrink while interactive p99 exceeds `interactive_p99_target`,
///     grow back toward `max_linger` while the tail is comfortable and
///     batches run under-full.
///
/// And the robustness layer (see ARCHITECTURE.md, "Failure domains &
/// degradation"):
///
///   * **Deadlines.**  `submit_options::deadline` is an absolute
///     steady-clock deadline; a request whose deadline passes before
///     execution starts is shed with `deadline_error` (at submit when
///     already expired, at ring drain, and at batch collection) and the
///     per-class `deadline_expired` counter ticks.  The batcher never
///     lingers past the earliest deadline in a forming batch.  `ticket`
///     gains `wait_for`/`wait_until` for deadline-aware consumers.
///   * **Fault containment.**  A batch whose execution throws is retried
///     by bisection until the poisoned request is isolated solo: the
///     culprit's ticket completes with the captured exception, innocent
///     neighbors still succeed byte-identically.  Fingerprints that fail
///     solo more than `quarantine_threshold` times are refused at
///     submit with `quarantine_error` before consuming any capacity.
///   * **Watchdog / brownout.**  A watchdog thread detects a dead or
///     stalled batcher, fails everything queued with
///     `service_down_error`, and restarts the batcher once; if the
///     replacement also dies the service browns out: bulk submissions
///     are refused with `service_down_error` while interactive ones
///     execute solo inside `submit()` — degraded but live.
///   * **Deterministic fault injection** (service/faultinject.hpp).
///     Hook points for allocation failure, kernel exceptions, batcher
///     death, and clock skew, driven by a seeded schedule; branch-only
///     when disarmed, so they ride in production builds for free.
///
/// Admission is bounded: at most `config::queue_capacity` requests wait
/// in each class queue and at most `config::max_outstanding` tickets can
/// be unretrieved at once.  When a bound is hit the configured
/// backpressure policy applies — block the submitter, reject with a
/// typed error, or shed the oldest queued request of the same class.
/// All request bookkeeping lives in rings and slot arrays sized once at
/// construction: steady-state submission and completion never allocate,
/// on the cache-hit path and the miss path alike (results that carry
/// traceback strings are the one necessary exception).
///
/// Quickstart:
/// ```
///   anyseq::service::aligner svc;                // or service::submit(...)
///   auto t = svc.submit(q_view, s_view, opt);    // non-blocking-ish
///   anyseq::alignment_result r = t.get();        // blocks until done
///   auto snap = svc.stats();                     // occupancy, p50/p99, ...
/// ```
///
/// Lifetime rules: sequence views passed to `submit` must stay valid
/// until the request has *completed* — normally until `ticket::get()`
/// returns.  Abandoning a ticket does NOT release that obligation: the
/// service still executes the request (it may already be mid-batch), so
/// an abandoner must keep the buffers alive until the service is shut
/// down or destroyed — or use `submit_strings`, which copies.  The
/// aligner must outlive its tickets; `shutdown(true)` (also run by the
/// destructor) drains every queued request, so pending tickets always
/// complete.  Results inserted into the cache are entry-owned copies —
/// no lifetime coupling to the submitting caller.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "anyseq/anyseq.hpp"
#include "parallel/thread_pool.hpp"
#include "service/batcher.hpp"
#include "service/cache.hpp"
#include "service/telemetry.hpp"

namespace anyseq::service {

/// Submission refused because a capacity bound was hit under the
/// `reject` policy (or a policy that could not make room).
class queue_full_error : public error {
 public:
  explicit queue_full_error(const std::string& what) : error(what) {}
};

/// Submission refused because the service is shutting down, or a queued
/// request failed by a no-drain shutdown.
class shutdown_error : public error {
 public:
  explicit shutdown_error(const std::string& what) : error(what) {}
};

/// A queued request was dropped by the `shed_oldest` policy to make room
/// for newer traffic; delivered through the victim's `ticket::get()`.
class shed_error : public error {
 public:
  explicit shed_error(const std::string& what) : error(what) {}
};

/// Submission refused because the tenant's token bucket is empty.
/// Thrown regardless of the backpressure policy: quotas meter a tenant's
/// *work*, they are not a capacity bound the service should block on.
class quota_error : public error {
 public:
  explicit quota_error(const std::string& what) : error(what) {}
};

/// The request's deadline passed before execution started; delivered
/// through `ticket::get()` of the shed request.
class deadline_error : public error {
 public:
  explicit deadline_error(const std::string& what) : error(what) {}
};

/// Submission refused because this exact request (query, subject,
/// options fingerprint) has repeatedly failed in isolation and is
/// quarantined as a known repeat offender.
class quarantine_error : public error {
 public:
  explicit quarantine_error(const std::string& what) : error(what) {}
};

/// The batcher thread died (or the service is browned out): queued
/// requests fail with this, and bulk submissions are refused with it
/// while brownout lasts.
class service_down_error : public error {
 public:
  explicit service_down_error(const std::string& what) : error(what) {}
};

/// What `submit` does when a capacity bound is hit.
enum class backpressure : std::uint8_t {
  block,       ///< wait until room frees up (default)
  reject,      ///< throw queue_full_error immediately
  shed_oldest  ///< drop the oldest *queued* request of the same class
               ///< (its ticket fails with shed_error); falls back to
               ///< reject when nothing is queued to shed
};

[[nodiscard]] const char* to_string(backpressure p) noexcept;

/// Per-request admission attributes; defaults reproduce the
/// pre-serving-tier behaviour (interactive, tenant 0).
struct submit_options {
  request_class cls = request_class::interactive;
  /// Tenant id for quota accounting; must be < config::max_tenants when
  /// quotas are enabled.
  std::uint32_t tenant = 0;
  /// Absolute completion deadline (steady clock); `time_point::max()`
  /// means none.  An expired request is shed with `deadline_error`
  /// instead of executed: already-expired submissions fail their ticket
  /// immediately, queued ones are shed when the batcher drains or
  /// collects them.  A request already executing is always delivered.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
};

/// Service tuning.  Everything is fixed at construction; the slot array,
/// admission rings, batch workspaces, tenant buckets, and the optional
/// cache are allocated once from these numbers.
struct config {
  /// Flush a forming batch at this many requests.
  std::size_t max_batch = 64;
  /// Flush a forming batch this long after its first request, even if
  /// not full — the latency cost of waiting for stragglers.  With
  /// `adaptive_linger` this is the controller's *upper* bound.
  std::chrono::microseconds max_linger{200};
  /// Bound on requests waiting in each class's admission queue.  Checked
  /// at admission time; under heavy producer concurrency the
  /// instantaneous depth can exceed it by at most the number of
  /// submissions that are mid-flight (filling their already-admitted
  /// slot).
  std::size_t queue_capacity = 1024;
  /// Bound on unretrieved tickets (0 = 4 * queue_capacity).  This is
  /// also the slot-array size: a ticket holds its slot until `get()`.
  std::size_t max_outstanding = 0;
  backpressure policy = backpressure::block;
  /// Batches executing concurrently on the pool (0 = pool size).
  std::size_t max_inflight_batches = 0;
  /// Latency reservoir size for the p50/p99 estimates (per class).
  std::size_t latency_reservoir = 512;

  /// Response-cache entries owned by this service (0 = no cache).
  /// Ignored when `shared_cache` is set.
  std::size_t cache_capacity = 0;
  /// Lock shards of the owned cache (see response_cache::config).
  std::size_t cache_shards = 8;
  /// Externally owned cache, shared across services (a `service_group`
  /// fronts all its shards with one).  Must outlive the service.
  response_cache* shared_cache = nullptr;

  /// Let the batcher steer the effective linger inside
  /// [min_linger, max_linger] from the interactive latency reservoir.
  bool adaptive_linger = false;
  std::chrono::microseconds min_linger{20};
  /// Interactive p99 the adaptive controller tries to stay under.
  std::chrono::microseconds interactive_p99_target{2000};

  /// Tenant token buckets: refill rate in requests/second (0 = quotas
  /// off) and bucket depth (0 = max(1, tenant_rate)).  Cache hits are
  /// not charged.
  double tenant_rate = 0.0;
  double tenant_burst = 0.0;
  /// Size of the tenant table; submit with `tenant >= max_tenants`
  /// throws invalid_argument_error when quotas are enabled.
  std::size_t max_tenants = 64;

  /// A forming batch with deadline-carrying members flushes this long
  /// before the earliest member deadline, so execution still has a
  /// chance to beat it (a batch flushed *at* the deadline would only be
  /// shed at collection).
  std::chrono::microseconds deadline_headroom{500};

  /// Repeat-offender quarantine table size (0 = quarantine off).
  std::size_t quarantine_capacity = 32;
  /// Solo-isolated execution failures of one request fingerprint before
  /// submissions of it are refused with quarantine_error.
  std::uint32_t quarantine_threshold = 2;

  /// Run the batcher watchdog: detect a dead or stalled batcher thread,
  /// fail queued requests with service_down_error, restart the thread
  /// once, brown out if the replacement dies too.
  bool watchdog = true;
  /// How often the watchdog wakes to check the batcher heartbeat.
  std::chrono::microseconds watchdog_interval{100000};
  /// Heartbeat staleness that counts as a stall — only while work is
  /// queued and the batcher is not parked in a legitimate wait, so slow
  /// batches never trip it.  Keep well above one batch's collection
  /// cost under sanitizers.
  std::chrono::microseconds stall_threshold{1000000};
};

class aligner;

/// Future-like handle to one submitted request.  Move-only; `get()`
/// blocks until the result is ready, returns it, and releases the
/// underlying slot.  A ticket destroyed without `get()` abandons the
/// request: the service still executes it and recycles its slot as soon
/// as the result lands (so view-based submissions must keep their
/// buffers alive — see the lifetime rules above).
class ticket {
 public:
  ticket() noexcept = default;
  ticket(ticket&& other) noexcept;
  ticket& operator=(ticket&& other) noexcept;
  ~ticket();
  ticket(const ticket&) = delete;
  ticket& operator=(const ticket&) = delete;

  /// False for default-constructed, moved-from, or consumed tickets.
  [[nodiscard]] bool valid() const noexcept { return svc_ != nullptr; }

  /// True once the result (or error) is available; `get()` won't block.
  [[nodiscard]] bool ready() const;

  /// Block until the request completes or `timeout` elapses; true when
  /// the result (or error) is ready.  Does NOT consume the ticket —
  /// follow up with `get()`.
  [[nodiscard]] bool wait_for(std::chrono::microseconds timeout) const;

  /// Deadline flavour of `wait_for`: wait until `tp` at the latest.
  [[nodiscard]] bool wait_until(
      std::chrono::steady_clock::time_point tp) const;

  /// Block until the request completes; return the result or rethrow
  /// the request's error (shed_error, shutdown_error, or whatever the
  /// dispatcher threw).  Consumes the ticket.
  [[nodiscard]] alignment_result get();

 private:
  friend class aligner;
  ticket(aligner* svc, std::uint32_t slot, std::uint64_t gen) noexcept
      : svc_(svc), slot_(slot), gen_(gen) {}

  /// Release or abandon the held request (dtor / move-assign).
  void retire() noexcept;

  aligner* svc_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t gen_ = 0;
};

/// The asynchronous alignment service.  Thread-safe: any number of
/// producer threads may submit concurrently.
class aligner {
 public:
  /// Starts the batcher thread.  Throws invalid_argument_error on
  /// nonsensical configuration (zero batch size, negative linger, ...).
  explicit aligner(config cfg = {});

  /// Equivalent to shutdown(true).  Destroy only after every ticket has
  /// been retrieved or abandoned.
  ~aligner();

  aligner(const aligner&) = delete;
  aligner& operator=(const aligner&) = delete;

  /// Submit one alignment request.  The views must stay valid until the
  /// request completes (see the lifetime rules in the file comment).
  /// Throws validation_error for bad options (same checks as
  /// `anyseq::align`, applied before any capacity is consumed),
  /// queue_full_error / shutdown_error per the backpressure policy and
  /// service state, quota_error when the tenant's bucket is empty,
  /// quarantine_error for a known repeat-offender request, and
  /// service_down_error for bulk requests while browned out.
  [[nodiscard]] ticket submit(stage::seq_view q, stage::seq_view s,
                              const align_options& opt = {},
                              const submit_options& so = {});

  /// Like submit(), but DNA-encodes and copies the strings into
  /// slot-owned storage — no lifetime obligation on the caller.  The
  /// copy reuses each slot's buffers, so steady state stays
  /// allocation-free once buffers have grown to the working set.
  [[nodiscard]] ticket submit_strings(std::string_view q, std::string_view s,
                                      const align_options& opt = {},
                                      const submit_options& so = {});

  /// Counter + latency snapshot; cheap enough for a metrics scrape loop.
  [[nodiscard]] service_stats stats() const;

  /// Render this service's metrics as Prometheus text exposition into
  /// `buf` with the snprintf contract: writes up to `cap - 1` bytes plus
  /// a NUL and returns the byte count the full exposition needs
  /// (excluding the NUL), so `dump_metrics(nullptr, 0)` sizes a buffer.
  std::size_t dump_metrics(char* buf, std::size_t cap) const;

  /// Stop accepting work.  With drain=true (default) every queued
  /// request still executes; with drain=false queued requests fail with
  /// shutdown_error (batches already forming or executing complete
  /// either way).  Blocks until the batcher thread has exited and no
  /// batch is in flight; idempotent and safe to call concurrently.
  /// Tickets remain retrievable after shutdown.
  void shutdown(bool drain = true);

  [[nodiscard]] const config& settings() const noexcept { return cfg_; }

  /// The attached response cache (owned or shared); nullptr when
  /// caching is disabled.
  [[nodiscard]] response_cache* cache() const noexcept { return cache_; }

  /// Instantaneous total admission depth across both class rings —
  /// a relaxed-atomic mirror for the router's load-spill decision (no
  /// lock taken; may lag by a few requests).
  [[nodiscard]] std::size_t approx_queue_depth() const noexcept {
    return depth_.load(std::memory_order_relaxed);
  }

  /// Linger the batcher currently applies (== max_linger unless the
  /// adaptive controller moved it).
  [[nodiscard]] std::chrono::nanoseconds effective_linger() const noexcept {
    return std::chrono::nanoseconds(
        linger_ns_.load(std::memory_order_relaxed));
  }

  /// Append this service's raw latency samples for `c` to `out` — the
  /// router merges shards' reservoirs and takes nearest-rank over the
  /// union (see telemetry.hpp).
  void collect_latency(request_class c,
                       std::vector<std::uint64_t>& out) const;

 private:
  friend class ticket;

  static constexpr std::size_t n_cls = n_request_classes;

  enum class slot_state : std::uint8_t {
    free_slot,  ///< on the freelist
    queued,     ///< admitted: in the ring, forming, or executing
    done,       ///< result ready
    failed      ///< error ready
  };

  /// One request's storage, reused across generations.  `gen` guards
  /// against stale tickets; `m`/`cv` hand the completion to `get()`.
  struct slot {
    std::mutex m;
    std::condition_variable cv;
    slot_state st = slot_state::free_slot;
    bool abandoned = false;
    std::uint64_t gen = 0;
    stage::seq_view q, s;
    align_options opt;
    route rt = route::solo;
    request_class cls = request_class::interactive;
    std::uint32_t tenant = 0;
    std::vector<char_t> q_store, s_store;  ///< submit_strings copies
    alignment_result result;
    std::exception_ptr error;
    std::chrono::steady_clock::time_point t_submit;
    /// Trace-clock time this request entered its admission ring (0 when
    /// tracing was disarmed at enqueue) — start of the ring_wait span.
    std::int64_t t_queued_ns = 0;
    /// Absolute deadline; time_point::max() = none (the common case —
    /// deadline checks are a branch against a cached constant).
    std::chrono::steady_clock::time_point deadline;
  };

  /// One class's admission queue (FIFO ring over slot indices).
  struct admission_ring {
    std::vector<std::uint32_t> buf;
    std::size_t head = 0, count = 0;
  };

  /// Reusable per-batch execution unit; one per concurrently executing
  /// batch.  Each unit owns a full `anyseq::aligner` — the same
  /// plan/execute workspace arena the synchronous API uses — plus
  /// recycled result storage, so steady-state batch execution carves
  /// every DP buffer from a warm arena instead of allocating (results
  /// that carry traceback strings are the one necessary exception: their
  /// buffers leave with the client).
  struct exec_unit {
    std::vector<std::uint32_t> items;
    std::vector<seq_pair> pairs;
    std::vector<alignment_result> results;  ///< batch output, reused
    alignment_result scratch;               ///< solo output, reused
    anyseq::aligner eng;                    ///< reusable engine workspace
  };

  /// Per-tenant token bucket (guarded by mu_).
  struct token_bucket {
    double tokens = 0.0;
    std::chrono::steady_clock::time_point last{};
    bool init = false;
  };

  ticket submit_impl(stage::seq_view q, stage::seq_view s,
                     std::string_view q_chars, std::string_view s_chars,
                     bool copy_strings, const align_options& opt,
                     const submit_options& so);
  /// Batcher thread body for generation `gen`: runs batcher_loop, and on
  /// an escaping exception marks the batcher crashed for the watchdog.
  void batcher_main(std::uint64_t gen);
  void batcher_loop(std::uint64_t gen);
  /// One collect+dispatch round; false = exit the loop (stopped or
  /// superseded by a watchdog restart).  `batch` is the loop's reusable
  /// scratch; on an escaping exception its members are failed by the
  /// caller before the exception leaves the thread.
  bool batcher_iteration(std::uint64_t gen, std::vector<std::uint32_t>& batch);
  void adapt_linger(std::chrono::steady_clock::time_point now);
  void execute(std::uint32_t ws_index);
  /// Execute items [lo, hi) of `ws`, containing failures by bisection:
  /// a span whose batch execution throws is split and each half retried,
  /// until the poisoned request is isolated solo and only its ticket
  /// fails.  Single-item spans and solo routes go through run_solo.
  void run_span(exec_unit& ws, std::size_t lo, std::size_t hi);
  /// Execute one request in isolation; a failure is captured into its
  /// ticket and recorded against its fingerprint for the quarantine.
  void run_solo(exec_unit& ws, std::uint32_t idx);
  void complete(std::uint32_t idx, alignment_result&& r,
                std::exception_ptr e);
  /// Requires mu_ held: fail a request popped from the admission ring.
  void fail_dequeued_locked(std::uint32_t idx, std::exception_ptr e);
  /// Requires mu_ held: shed an expired dequeued request with
  /// deadline_error and count it.
  void fail_expired_locked(std::uint32_t idx);
  void release_slot(std::uint32_t idx);
  /// Requires mu_ held: refill + draw one token; false when drained.
  [[nodiscard]] bool take_token(std::uint32_t tenant,
                                std::chrono::steady_clock::time_point now);

  /// Watchdog thread: wakes every watchdog_interval, checks the batcher
  /// heartbeat and crash flag, restarts once, then browns out.
  void watchdog_loop();
  /// Requires mu_ held: the batcher died or stalled — fail everything
  /// queued with service_down_error, then restart or brown out.
  void handle_batcher_failure_locked();
  /// Execute one filled slot synchronously on the submitting/shutdown
  /// thread (brownout path and dead-batcher drain); completes the slot.
  void solo_execute_now(std::uint32_t idx);

  /// Record one engine call in the (route, variant) execution table:
  /// `requests` items, `cells` DP cells relaxed, `ns` engine wall time.
  void note_exec(route rt, const char* variant, std::uint64_t requests,
                 std::uint64_t cells, std::uint64_t ns) noexcept;

  /// Record one solo-isolated execution failure of `sl`'s fingerprint.
  void record_offender(const slot& sl) noexcept;
  [[nodiscard]] bool is_quarantined(std::uint64_t fp) const noexcept;

  /// Deadline clock: steady_clock::now() plus the armed fault
  /// schedule's skew (honest clock in production).
  [[nodiscard]] static std::chrono::steady_clock::time_point skewed_now();

  // Admission ring helpers; call with mu_ held.
  [[nodiscard]] std::uint32_t ring_pop(admission_ring& r) noexcept;
  void ring_push(admission_ring& r, std::uint32_t idx) noexcept;
  /// Extract up to `max_take` requests batchable with `lead` from
  /// anywhere in ring `r`, compacting the rest in FIFO order.  Expired
  /// entries encountered during the walk are shed with deadline_error
  /// instead of kept; `earliest_deadline` tightens to the earliest
  /// deadline among the *taken* requests.
  std::size_t ring_extract_compatible(
      admission_ring& r, const slot& lead,
      std::vector<std::uint32_t>& batch, std::size_t max_take,
      std::chrono::steady_clock::time_point now,
      std::chrono::steady_clock::time_point& earliest_deadline);
  [[nodiscard]] admission_ring& ring_of(request_class c) noexcept {
    return rings_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::size_t queued_total() const noexcept {
    return rings_[0].count + rings_[1].count;
  }

  config cfg_;
  parallel::thread_pool* pool_;

  mutable std::mutex mu_;
  std::condition_variable batcher_cv_;   ///< work arrived / stopping
  std::condition_variable space_cv_;     ///< admission room freed
  std::condition_variable inflight_cv_;  ///< batch finished / ws freed
  std::vector<slot> slots_;
  std::vector<std::uint32_t> free_;  ///< free slot indices (stack)
  admission_ring rings_[n_cls];      ///< per-class admission queues
  std::vector<exec_unit> exec_units_;
  std::vector<std::uint32_t> free_ws_;
  std::vector<token_bucket> buckets_;  ///< per-tenant quota state
  std::size_t inflight_ = 0;
  bool accepting_ = true;
  bool stopping_ = false;

  // Watchdog / degradation state.  batcher_gen_ names the current
  // batcher incarnation: a loop observing a newer generation exits so a
  // stalled-but-alive thread steps aside for its replacement.
  std::uint64_t batcher_gen_ = 0;        ///< guarded by mu_
  bool batcher_crashed_ = false;         ///< guarded by mu_
  bool batcher_waiting_ = false;         ///< guarded by mu_: parked in a cv
  std::vector<std::thread> retired_batchers_;  ///< joined at shutdown
  std::condition_variable watchdog_cv_;  ///< stop / crash notification
  std::atomic<std::int64_t> heartbeat_ns_{0};  ///< batcher liveness beacon
  std::atomic<bool> brownout_{false};
  std::atomic<std::uint64_t> watchdog_restarts_{0};

  /// Repeat-offender quarantine: a fixed table of (fingerprint, solo
  /// failure count), round-robin overwritten.  `q_active_` mirrors the
  /// number of entries at/above the threshold so the submit happy path
  /// pays one relaxed load and a never-taken branch.
  struct q_entry {
    std::uint64_t fp = 0;
    std::uint32_t offenses = 0;
  };
  mutable std::mutex q_mu_;  ///< leaf lock (never held with mu_)
  std::vector<q_entry> q_entries_;
  std::size_t q_clock_ = 0;
  std::atomic<std::size_t> q_active_{0};

  std::mutex shutdown_mu_;  ///< serializes shutdown(); taken before mu_
  bool shut_down_ = false;

  std::unique_ptr<response_cache> owned_cache_;
  response_cache* cache_ = nullptr;  ///< owned_cache_ or cfg_.shared_cache

  std::atomic<std::uint64_t> accepted_[n_cls] = {};
  std::atomic<std::uint64_t> rejected_[n_cls] = {};
  std::atomic<std::uint64_t> shed_[n_cls] = {};
  std::atomic<std::uint64_t> quota_rejected_[n_cls] = {};
  std::atomic<std::uint64_t> completed_[n_cls] = {};
  std::atomic<std::uint64_t> failed_[n_cls] = {};
  std::atomic<std::uint64_t> cache_hits_[n_cls] = {};
  std::atomic<std::uint64_t> deadline_expired_[n_cls] = {};
  std::atomic<std::uint64_t> quarantined_[n_cls] = {};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> batches_{0}, batched_requests_{0};
  // Batch score-path accounting (see telemetry.hpp): summed from the
  // unit aligner's last_batch_stats after every batch_score run.
  std::atomic<std::uint64_t> batch_simd_pairs_{0};
  std::atomic<std::uint64_t> batch_scalar_pairs_{0};
  std::atomic<std::uint64_t> batch_ragged_pairs_{0};
  std::atomic<std::uint64_t> batch_padded_cells_{0};
  std::atomic<std::size_t> depth_{0};  ///< mirror of queued_total()
  std::atomic<std::int64_t> linger_ns_{0};  ///< effective linger
  latency_reservoir latency_[n_cls];
  /// Exact per-class completion-latency histograms, recorded beside the
  /// reservoirs (histograms merge bucket-wise across shards).
  latency_histogram hist_[n_cls];
  /// Per-route x per-variant execution accounting (see note_exec).
  std::atomic<std::uint64_t> exec_requests_[n_exec_routes][n_exec_variants] =
      {};
  std::atomic<std::uint64_t> exec_cells_[n_exec_routes][n_exec_variants] = {};
  std::atomic<std::uint64_t> exec_ns_[n_exec_routes][n_exec_variants] = {};

  // Adaptive-linger controller state (batcher thread only).
  std::chrono::steady_clock::time_point next_adapt_{};
  std::uint64_t adapt_last_batches_ = 0;
  std::uint64_t adapt_last_batched_requests_ = 0;

  // Threads last: they start after all state above is ready.
  std::thread batcher_;
  std::thread watchdog_;
};

/// Process-wide default service (default config, created on first use).
/// Drains at process exit; `parallel::thread_pool::global()` is
/// guaranteed to outlive it.
[[nodiscard]] aligner& global();

/// Submit to the process-wide service.
[[nodiscard]] ticket submit(stage::seq_view q, stage::seq_view s,
                            const align_options& opt = {});
[[nodiscard]] ticket submit_strings(std::string_view q, std::string_view s,
                                    const align_options& opt = {});

/// Stats of the process-wide service.
[[nodiscard]] service_stats stats();

}  // namespace anyseq::service
