#pragma once
/// \file metrics.hpp
/// Fixed-shape metric primitives for the serving tier: log2 latency
/// histograms, per-route x per-variant execution accounting, and the
/// bounded text buffer the exporters render into.
///
/// Everything here obeys the service's zero-steady-state-allocation
/// contract: a `latency_histogram` is a fixed array of relaxed atomics
/// (record = two fetch_adds and one indexed fetch_add, no lock, no
/// allocation), the execution tables are fixed 2-D atomic arrays, and
/// `text_buffer` writes into caller-owned storage with the snprintf
/// contract (reports bytes *needed* even when the buffer is too small,
/// always NUL-terminates what fits).
///
/// Histograms exist *alongside* the reservoirs in telemetry.hpp, not
/// instead of them: a reservoir answers "what is p99 right now" from a
/// bounded uniform sample, while a histogram is exact over the full
/// request population and — crucially — merges across shards by plain
/// bucket-wise addition, which the Prometheus exposition format
/// requires (`_bucket{le=...}` series from different shards sum; sampled
/// percentiles never do, they merge by union-rank only).

#include <atomic>
#include <bit>
#include <cstdarg>
#include <cstddef>
#include <cstdint>
#include <cstdio>

namespace anyseq::service {

/// Bucket i of a log2 histogram covers latencies in [2^i, 2^(i+1)) ns
/// (bucket 0 also absorbs 0).  48 buckets reach ~3.26 days — everything
/// above clamps into the last bucket.
inline constexpr std::size_t n_latency_buckets = 48;

/// Point-in-time copy of a histogram, mergeable across shards.
struct histogram_snapshot {
  std::uint64_t buckets[n_latency_buckets] = {};
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;

  /// Bucket-wise sum — the shard-merge operation.  Exact: unlike
  /// reservoir percentiles, histogram merging loses nothing.
  void merge(const histogram_snapshot& other) noexcept {
    for (std::size_t i = 0; i < n_latency_buckets; ++i)
      buckets[i] += other.buckets[i];
    count += other.count;
    sum_ns += other.sum_ns;
  }
};

/// Thread-safe fixed-bucket log2 latency histogram.  `record` is three
/// relaxed fetch_adds; never allocates, never locks.
class latency_histogram {
 public:
  /// Index of the bucket holding a latency of `ns` nanoseconds.
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t ns) noexcept {
    const auto w = static_cast<std::size_t>(std::bit_width(ns));
    const std::size_t b = w == 0 ? 0 : w - 1;
    return b < n_latency_buckets ? b : n_latency_buckets - 1;
  }

  /// Inclusive upper bound of bucket i in ns (the Prometheus `le` edge).
  [[nodiscard]] static std::uint64_t bucket_upper_ns(std::size_t i) noexcept {
    return (2ull << i) - 1;
  }

  void record(std::uint64_t ns) noexcept {
    buckets_[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  [[nodiscard]] histogram_snapshot snapshot() const noexcept {
    histogram_snapshot s;
    for (std::size_t i = 0; i < n_latency_buckets; ++i)
      s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count = count_.load(std::memory_order_relaxed);
    s.sum_ns = sum_ns_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::atomic<std::uint64_t> buckets_[n_latency_buckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
};

/// Execution accounting axes.  Routes mirror `service::route`
/// (batch_score, batch_traceback, solo); variants are the engine names
/// stamped into `alignment_result::variant`, with one spill cell for
/// anything unrecognised (simulator backends and future engines).
inline constexpr std::size_t n_exec_routes = 3;
inline constexpr std::size_t n_exec_variants = 4;

[[nodiscard]] const char* exec_route_name(std::size_t i) noexcept;
[[nodiscard]] const char* exec_variant_name(std::size_t i) noexcept;

/// Map an `alignment_result::variant` string to its table column
/// (scalar=0, avx2=1, avx512=2, anything else — including nullptr — 3).
[[nodiscard]] std::size_t exec_variant_index(const char* variant) noexcept;

/// One (route, variant) cell of the execution table.
struct exec_cell {
  std::uint64_t requests = 0;  ///< requests executed through this cell
  std::uint64_t cells = 0;     ///< DP cells relaxed (GCUPS numerator)
  std::uint64_t ns = 0;        ///< wall time inside the engine call
};

/// Point-in-time copy of the execution table, mergeable across shards.
struct exec_snapshot {
  exec_cell at[n_exec_routes][n_exec_variants] = {};

  void merge(const exec_snapshot& other) noexcept {
    for (std::size_t r = 0; r < n_exec_routes; ++r)
      for (std::size_t v = 0; v < n_exec_variants; ++v) {
        at[r][v].requests += other.at[r][v].requests;
        at[r][v].cells += other.at[r][v].cells;
        at[r][v].ns += other.at[r][v].ns;
      }
  }

  /// Aggregate throughput in giga-cell-updates per second across every
  /// cell that recorded engine time (0.0 when nothing executed).
  [[nodiscard]] double total_gcups() const noexcept {
    std::uint64_t cells = 0, ns = 0;
    for (std::size_t r = 0; r < n_exec_routes; ++r)
      for (std::size_t v = 0; v < n_exec_variants; ++v) {
        cells += at[r][v].cells;
        ns += at[r][v].ns;
      }
    return ns == 0 ? 0.0 : static_cast<double>(cells) /
                               static_cast<double>(ns);
  }
};

/// Bounded append-only text sink with the snprintf contract: writes as
/// much as fits into the caller-owned buffer (always NUL-terminated when
/// cap > 0) while `needed()` keeps counting the bytes a large-enough
/// buffer would have received.  Callers size with a null/0 dry run, then
/// render for real — exactly like snprintf.
class text_buffer {
 public:
  text_buffer(char* buf, std::size_t cap) noexcept
      : buf_(cap > 0 ? buf : nullptr), cap_(buf != nullptr ? cap : 0) {
    if (buf_ != nullptr) buf_[0] = '\0';
  }

#if defined(__GNUC__) || defined(__clang__)
  __attribute__((format(printf, 2, 3)))
#endif
  void
  printf(const char* fmt, ...) noexcept {
    va_list ap;
    va_start(ap, fmt);
    char* dst = needed_ < cap_ ? buf_ + needed_ : nullptr;
    const std::size_t avail = needed_ < cap_ ? cap_ - needed_ : 0;
    const int n = std::vsnprintf(dst, avail, fmt, ap);
    va_end(ap);
    if (n > 0) needed_ += static_cast<std::size_t>(n);
  }

  /// Total bytes the full rendering requires, excluding the NUL.
  [[nodiscard]] std::size_t needed() const noexcept { return needed_; }

 private:
  char* buf_;
  std::size_t cap_;
  std::size_t needed_ = 0;
};

}  // namespace anyseq::service
