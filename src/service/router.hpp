#pragma once
/// \file router.hpp
/// `service_group`: an N-shard router over `service::aligner` instances,
/// fronted by one shared response cache.
///
/// A single service serializes all admission through one mutex and one
/// batcher thread; past a few hundred thousand requests per second that
/// becomes the bottleneck long before the alignment kernels do.  The
/// group runs N independent service shards — separate slot arrays,
/// admission rings, and batcher threads — and routes each submission:
///
///   * **Hash affinity.**  The home shard is `sequence_hash(query) % N`.
///     Repeated queries land on the same shard, so its batcher sees
///     runs of identical shapes (full SIMD lanes) and its portion of
///     the working set stays hot in cache.
///   * **Load spill.**  Affinity alone lets one hot query wedge a shard
///     while others idle.  When the home shard's queue depth exceeds
///     the least-loaded shard's by more than `spill_margin`, the
///     request spills to the least-loaded shard instead.  Depth reads
///     are relaxed-atomic mirrors (`aligner::approx_queue_depth`) — no
///     cross-shard lock is ever taken on the submit path.
///   * **Shared cache.**  All shards front the same `response_cache`,
///     so a result computed by any shard serves hits on every other —
///     and a spilled request still hits the entry its home shard
///     inserted.  (Per-shard caches would re-misse on every spill.)
///
/// `stats()` merges per-shard telemetry the only correct way: counters
/// are summed, but latency percentiles are re-ranked over the *union*
/// of all shards' reservoir samples (`nearest_rank_percentiles`) —
/// summing or averaging per-shard p99s is statistically meaningless.
///
/// Tickets returned by the group are ordinary `service::ticket`s bound
/// to the shard that owns the request; the group must outlive them,
/// same as a single service.

#include <cstdint>
#include <memory>
#include <vector>

#include "service/cache.hpp"
#include "service/service.hpp"
#include "service/telemetry.hpp"

namespace anyseq::service {

/// N-shard service router with a shared response cache.  Thread-safe:
/// any number of producers may submit concurrently.
class service_group {
 public:
  struct config {
    /// Number of service shards (clamped to >= 1).  Each shard owns a
    /// full `service::aligner` — slot array, rings, batcher thread.
    std::size_t shards = 1;
    /// Configuration applied to every shard.  The cache fields
    /// (`cache_capacity`, `shared_cache`) are overridden by the group,
    /// which owns the one shared cache.
    service::config shard;
    /// Shared response-cache capacity across all shards (0 = no cache).
    std::size_t cache_capacity = 4096;
    std::size_t cache_shards = 8;
    /// Spill threshold: a request leaves its home shard when the home
    /// queue depth exceeds the least-loaded shard's depth by more than
    /// this many requests.  0 spills on any imbalance; a large value
    /// approaches pure hash affinity.
    std::size_t spill_margin = 16;
  };

  service_group() : service_group(config{}) {}
  explicit service_group(config cfg);

  /// Equivalent to shutdown(true).
  ~service_group();

  service_group(const service_group&) = delete;
  service_group& operator=(const service_group&) = delete;

  /// Route one request (affinity + spill, see file comment) and submit
  /// it to the chosen shard.  Same contract and exceptions as
  /// `aligner::submit`; the returned ticket is bound to that shard.
  [[nodiscard]] ticket submit(stage::seq_view q, stage::seq_view s,
                              const align_options& opt = {},
                              const submit_options& so = {});

  /// String-copying variant (see `aligner::submit_strings`).
  [[nodiscard]] ticket submit_strings(std::string_view q, std::string_view s,
                                      const align_options& opt = {},
                                      const submit_options& so = {});

  /// Merged snapshot: counters summed across shards, percentiles
  /// re-ranked over the union of all shards' latency samples, cache
  /// figures from the shared cache.  `effective_linger_us` reports the
  /// maximum across shards (the most conservative figure).
  [[nodiscard]] service_stats stats() const;

  /// Render the group's merged metrics as Prometheus text exposition
  /// into `buf` (snprintf contract: returns bytes needed excluding the
  /// NUL, writes at most `cap - 1` plus a NUL).  Merged series follow
  /// the single-service rules — histograms sum bucket-wise, reservoir
  /// percentiles re-rank over the pooled samples — and a trailing
  /// per-shard section (`anyseq_shard_*{shard="i"}`) keeps the shard
  /// breakdown visible after the merge.
  std::size_t dump_metrics(char* buf, std::size_t cap) const;

  /// Shut every shard down (drain semantics as `aligner::shutdown`).
  /// Idempotent; the destructor calls shutdown(true).
  void shutdown(bool drain = true);

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Direct access to one shard (tests and diagnostics).
  [[nodiscard]] aligner& shard(std::size_t i) { return *shards_[i]; }

  /// The shared cache; nullptr when caching is disabled.
  [[nodiscard]] response_cache* cache() const noexcept {
    return cache_.get();
  }

 private:
  /// Affinity + spill routing decision (lock-free).
  [[nodiscard]] std::size_t pick_shard(std::uint64_t affinity) const;

  config cfg_;
  std::unique_ptr<response_cache> cache_;
  std::vector<std::unique_ptr<aligner>> shards_;
};

}  // namespace anyseq::service
