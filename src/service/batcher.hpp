#pragma once
/// \file batcher.hpp
/// Pure coalescing policy of the asynchronous alignment service — the
/// decisions, with no threads attached, so tests can pin them down
/// exactly.
///
/// The service promises that every request produces a result
/// *byte-identical* to a synchronous `anyseq::align` call with the same
/// inputs.  Batching therefore cannot be applied blindly: `align_batch`'s
/// score path and `align`'s tiled score path agree only where both are
/// exact and use the same tie-breaking, and `align_batch`'s traceback
/// path always runs the full-matrix engine while `align` switches to
/// divide & conquer above `full_matrix_cells`.  `classify` encodes
/// exactly the cases where coalescing through `align_batch` preserves
/// the identity:
///
///   * batch_score     — CPU backend, score-only, global kind, non-empty
///                       sequences.  Both paths compute the unique
///                       optimal score, report cells = n*m and the (n, m)
///                       end cell.
///   * batch_traceback — CPU backend, traceback requested, problem small
///                       enough that `align` itself would take the
///                       full-matrix path (`cells <= full_matrix_cells`):
///                       both run the same `full_engine` specialization.
///   * solo            — everything else (simulator backends, local or
///                       semiglobal score-only whose argmax tie-breaking
///                       differs between engines, oversized tracebacks,
///                       empty sequences).  Solo requests still coalesce
///                       into one pool job, but each runs through
///                       `anyseq::align` individually.
///
/// A batch holds requests with the same route AND pairwise-compatible
/// options (`options_compatible`): `align_batch` takes one option set for
/// the whole span, so any mismatch is a flush boundary.

#include <cstdint>

#include "anyseq/anyseq.hpp"

namespace anyseq::service {

/// Execution route of one request (see file comment for the contract).
enum class route : std::uint8_t { batch_score, batch_traceback, solo };

[[nodiscard]] const char* to_string(route r) noexcept;

/// Route preserving result-identity with synchronous `anyseq::align`.
[[nodiscard]] route classify(stage::seq_view q, stage::seq_view s,
                             const align_options& opt) noexcept;

/// True when two requests may share one `align_batch`/grouped call:
/// every dispatch-relevant option field matches (including substitution
/// matrix contents).  A batch holds only mutually compatible requests —
/// the batcher collects them from anywhere in the admission ring
/// (preserving the order of the rest) and flushes when only
/// incompatible requests remain queued.
[[nodiscard]] bool options_compatible(const align_options& a,
                                      const align_options& b) noexcept;

/// Strict weak order that groups pairs by their FULL (|q|, |s|) shape —
/// query length first, subject length second — so the inter-sequence
/// SIMD kernel sees uniform-shape chunks (lanes stay full) and any
/// leftover jitter forms near-shape runs the ragged lane-padding kernel
/// admits under a tiny padding waste, instead of falling back to scalar
/// on mixed chunks.  Ties resolve on the stable key to keep execution
/// deterministic.
[[nodiscard]] bool lane_order_less(index_t q_len_a, index_t s_len_a,
                                   std::uint64_t key_a, index_t q_len_b,
                                   index_t s_len_b,
                                   std::uint64_t key_b) noexcept;

}  // namespace anyseq::service
