#include "service/batcher.hpp"

namespace anyseq::service {
namespace {

[[nodiscard]] bool is_cpu_backend(backend b) noexcept {
  return b == backend::auto_select || b == backend::scalar ||
         b == backend::simd_avx2 || b == backend::simd_avx512;
}

}  // namespace

const char* to_string(route r) noexcept {
  switch (r) {
    case route::batch_score: return "batch_score";
    case route::batch_traceback: return "batch_traceback";
    case route::solo: return "solo";
  }
  return "?";
}

route classify(stage::seq_view q, stage::seq_view s,
               const align_options& opt) noexcept {
  if (!is_cpu_backend(opt.exec)) return route::solo;
  if (q.size() == 0 || s.size() == 0) return route::solo;
  if (opt.want_alignment) {
    const index_t cells = q.size() * s.size();
    return cells <= opt.full_matrix_cells ? route::batch_traceback
                                          : route::solo;
  }
  // Global score-only requests coalesce into batch_score regardless of
  // precision: the batch engine picks int8/int16/int32 (or the
  // bit-parallel engine for unit-cost option sets) per SIMD chunk, and
  // options_compatible keeps mixed-precision requests in separate batches.
  return opt.kind == align_kind::global ? route::batch_score : route::solo;
}

// Tripwire: options_compatible below enumerates every align_options
// field by hand, and a field it misses would let the batcher coalesce
// requests that must not share an align_batch call — silently breaking
// the service's byte-identity promise.  If this assert fires, a field
// was added to align_options: extend options_compatible (and the
// batcher_test sweep), then update the size.
#if defined(__x86_64__)
static_assert(sizeof(align_options) == 160,
              "align_options changed: update options_compatible");
#endif

bool options_compatible(const align_options& a,
                        const align_options& b) noexcept {
  if (a.kind != b.kind || a.want_alignment != b.want_alignment) return false;
  if (a.match != b.match || a.mismatch != b.mismatch) return false;
  if (a.matrix.has_value() != b.matrix.has_value()) return false;
  if (a.matrix.has_value() && a.matrix->table != b.matrix->table)
    return false;
  if (a.gap_open != b.gap_open || a.gap_extend != b.gap_extend) return false;
  if (a.exec != b.exec || a.threads != b.threads) return false;
  if (a.tile != b.tile || a.dynamic_schedule != b.dynamic_schedule)
    return false;
  // Precision is a dispatch boundary: a forced-int8 batch and a
  // forced-int32 batch must not share an align_batch call, and unit-cost
  // auto batches route through the bit-parallel engine as a group.
  if (a.precision != b.precision) return false;
  // The ragged waste cap changes which chunks lane-pad vs roll scalar —
  // results stay byte-identical either way, but one batch takes ONE cap.
  if (a.pad_waste_cap_pct != b.pad_waste_cap_pct) return false;
  return a.full_matrix_cells == b.full_matrix_cells;
}

bool lane_order_less(index_t q_len_a, index_t s_len_a, std::uint64_t key_a,
                     index_t q_len_b, index_t s_len_b,
                     std::uint64_t key_b) noexcept {
  if (q_len_a != q_len_b) return q_len_a < q_len_b;
  if (s_len_a != s_len_b) return s_len_a < s_len_b;
  return key_a < key_b;
}

}  // namespace anyseq::service
