#pragma once
/// \file telemetry.hpp
/// Telemetry for the asynchronous alignment service: lifetime counters
/// plus a fixed-size latency reservoir.
///
/// The reservoir keeps a uniform random sample of request latencies in a
/// buffer sized once at construction (steady-state recording never
/// allocates), so p50/p99 stay meaningful over unbounded request streams
/// without unbounded memory.  Randomness comes from a private xorshift
/// state — no global RNG, no syscalls on the hot path.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace anyseq::service {

/// Point-in-time snapshot of a service's counters (see aligner::stats()).
/// Counters are monotonically increasing over the service lifetime;
/// `queue_depth` / `in_flight_batches` / `outstanding_tickets` are
/// instantaneous.
struct service_stats {
  std::uint64_t accepted = 0;   ///< requests admitted to the queue
  std::uint64_t rejected = 0;   ///< submissions refused by backpressure
  std::uint64_t shed = 0;       ///< queued requests dropped by shed_oldest
  std::uint64_t completed = 0;  ///< requests finished with a result
  /// Requests finished with an error — engine/validation failures plus
  /// shed and shutdown-failed requests (`shed` counts that subset
  /// separately).  accepted == completed + failed once drained.
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;    ///< engine invocations (coalesced groups)
  std::uint64_t batched_requests = 0;  ///< requests summed over batches

  /// batched_requests / batches — how full the coalescer kept batches.
  double mean_batch_occupancy = 0.0;

  std::uint64_t p50_latency_ns = 0;  ///< submit -> completion, sampled
  std::uint64_t p99_latency_ns = 0;
  std::uint64_t latency_samples = 0;  ///< samples currently in the reservoir

  std::size_t queue_depth = 0;          ///< requests waiting in admission
  std::size_t in_flight_batches = 0;    ///< batches executing right now
  std::size_t outstanding_tickets = 0;  ///< tickets not yet retrieved
};

/// Thread-safe uniform reservoir of latency samples (Vitter's algorithm
/// R).  `record` is O(1), lock-held for a few instructions, and never
/// allocates after construction.
class latency_reservoir {
 public:
  /// `capacity` is clamped to >= 1; memory is allocated here, once.
  explicit latency_reservoir(std::size_t capacity);

  /// Offer one latency sample (nanoseconds).
  void record(std::uint64_t ns);

  struct percentiles {
    std::uint64_t p50 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t samples = 0;  ///< how many samples back the numbers
  };

  /// Nearest-rank p50/p99 over the current sample (zeros when empty).
  [[nodiscard]] percentiles snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::uint64_t> buffer_;  ///< pre-sized; first `filled_` live
  std::size_t filled_ = 0;
  std::uint64_t seen_ = 0;  ///< total samples offered
  std::uint64_t rng_state_;
};

}  // namespace anyseq::service
