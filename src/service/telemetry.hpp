#pragma once
/// \file telemetry.hpp
/// Telemetry for the asynchronous alignment service: lifetime counters
/// plus fixed-size latency reservoirs, broken out per request class.
///
/// Each reservoir keeps a uniform random sample of request latencies in a
/// buffer sized once at construction (steady-state recording never
/// allocates), so p50/p99 stay meaningful over unbounded request streams
/// without unbounded memory.  Randomness comes from a private xorshift
/// state — no global RNG, no syscalls on the hot path.  `snapshot()`
/// sorts into a pre-sized scratch buffer, so even the percentile scan is
/// allocation-free — the adaptive-linger controller polls it from the
/// batcher thread without perturbing the zero-allocation contract.
///
/// Percentile aggregation across shards goes through `collect()` +
/// `nearest_rank_percentiles()`: a `service_group` pools the raw samples
/// of every shard's reservoir and ranks the merged set.  Summing or
/// averaging per-shard p99s would be wrong — the p99 of a union is not a
/// function of the parts' p99s (one hot shard's tail disappears into a
/// mean; a sum is meaningless) — so the merged form is the only one the
/// router exposes.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "service/metrics.hpp"

namespace anyseq::service {

/// Priority class of one request.  Interactive traffic is admitted to
/// its own queue which the batcher always serves first; bulk requests
/// fill the machine when nothing interactive is waiting.  The adaptive
/// linger controller targets the *interactive* p99 only.
enum class request_class : std::uint8_t {
  interactive,  ///< latency-sensitive; served with strict priority
  bulk          ///< throughput traffic; yields to interactive
};
inline constexpr std::size_t n_request_classes = 2;

[[nodiscard]] const char* to_string(request_class c) noexcept;

/// Per-class slice of a service's counters.
struct class_stats {
  std::uint64_t accepted = 0;   ///< requests admitted to this class queue
  std::uint64_t rejected = 0;   ///< refused by backpressure
  std::uint64_t shed = 0;       ///< dropped by shed_oldest
  std::uint64_t quota_rejected = 0;  ///< refused by a tenant token bucket
  std::uint64_t completed = 0;  ///< finished with a result
  std::uint64_t failed = 0;     ///< finished with an error
  std::uint64_t cache_hits = 0;  ///< served from the response cache
  std::uint64_t deadline_expired = 0;  ///< shed because the deadline passed
  std::uint64_t quarantined = 0;  ///< refused at submit as repeat offenders

  std::uint64_t p50_latency_ns = 0;  ///< submit -> completion, sampled
  std::uint64_t p90_latency_ns = 0;
  std::uint64_t p99_latency_ns = 0;
  std::uint64_t p999_latency_ns = 0;
  std::uint64_t latency_samples = 0;

  /// Exact log2 latency histogram of every completion in this class
  /// (unlike the sampled percentiles above, merges across shards by
  /// bucket-wise addition).
  histogram_snapshot latency_hist;
};

/// Point-in-time snapshot of a service's counters (see aligner::stats()).
/// Counters are monotonically increasing over the service lifetime;
/// `queue_depth` / `in_flight_batches` / `outstanding_tickets` are
/// instantaneous.  The top-level counters aggregate both request
/// classes; `per_class[]` holds the class-resolved slices.
struct service_stats {
  std::uint64_t accepted = 0;   ///< requests admitted to the queue
  std::uint64_t rejected = 0;   ///< submissions refused by backpressure
  std::uint64_t shed = 0;       ///< queued requests dropped by shed_oldest
  std::uint64_t quota_rejected = 0;  ///< refused by tenant token buckets
  std::uint64_t completed = 0;  ///< requests finished with a result
  /// Requests finished with an error — engine/validation failures plus
  /// shed, deadline-expired, and shutdown-failed requests (`shed` /
  /// `deadline_expired` count those subsets separately).
  /// accepted == completed + failed once drained.
  std::uint64_t failed = 0;
  /// Admitted requests shed with deadline_error because their deadline
  /// passed before execution started (subset of `failed`).
  std::uint64_t deadline_expired = 0;
  /// Submissions refused with quarantine_error because the request
  /// fingerprint is a known repeat offender (like `rejected`, these
  /// never consume admission capacity and are not part of `accepted`).
  std::uint64_t quarantined = 0;
  std::uint64_t batches = 0;    ///< engine invocations (coalesced groups)
  std::uint64_t batched_requests = 0;  ///< requests summed over batches

  /// batched_requests / batches — how full the coalescer kept batches.
  double mean_batch_occupancy = 0.0;

  /// Batch score-path accounting aggregated over every executed batch
  /// (aligner::last_batch_stats sums): pairs scored on narrow SIMD lanes
  /// vs the scalar rolling engine, the subset of SIMD pairs that ran in
  /// lane-padded ragged chunks, and the padded-cell overhead those
  /// chunks relaxed.  Traceback batches count toward none of these.
  std::uint64_t batch_simd_pairs = 0;
  std::uint64_t batch_scalar_pairs = 0;
  std::uint64_t batch_ragged_pairs = 0;
  std::uint64_t batch_padded_cells = 0;

  std::uint64_t p50_latency_ns = 0;  ///< submit -> completion, sampled
  std::uint64_t p90_latency_ns = 0;
  std::uint64_t p99_latency_ns = 0;
  std::uint64_t p999_latency_ns = 0;
  std::uint64_t latency_samples = 0;  ///< samples currently in the reservoirs

  /// Response-cache counters (all zero when no cache is attached).
  /// Hits complete at submit() and never enter the admission ring.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;

  /// Linger the batcher is currently applying (equals the configured
  /// max_linger unless the adaptive controller has moved it).
  std::uint64_t effective_linger_us = 0;

  /// Times the watchdog replaced a dead/stalled batcher thread.
  std::uint64_t watchdog_restarts = 0;
  /// True when the service has degraded to brownout mode: the batcher
  /// died beyond the restart budget, bulk submissions are refused with
  /// service_down_error, and interactive submissions execute solo at
  /// submit().
  bool brownout = false;

  /// Per-route x per-variant execution accounting recorded around the
  /// engine calls: requests, DP cells, and engine wall time (GCUPS =
  /// cells / ns — see exec_snapshot::total_gcups()).
  exec_snapshot exec;

  class_stats per_class[n_request_classes];

  std::size_t queue_depth = 0;          ///< requests waiting in admission
  std::size_t in_flight_batches = 0;    ///< batches executing right now
  std::size_t outstanding_tickets = 0;  ///< tickets not yet retrieved

  [[nodiscard]] const class_stats& of(request_class c) const noexcept {
    return per_class[static_cast<std::size_t>(c)];
  }
};

/// Thread-safe uniform reservoir of latency samples (Vitter's algorithm
/// R).  `record` is O(1), lock-held for a few instructions; nothing
/// allocates after construction — including `snapshot()`, which ranks
/// inside a pre-sized scratch buffer.
class latency_reservoir {
 public:
  /// `capacity` is clamped to >= 1; all memory is allocated here, once.
  explicit latency_reservoir(std::size_t capacity);

  /// Offer one latency sample (nanoseconds).
  void record(std::uint64_t ns);

  struct percentiles {
    std::uint64_t p50 = 0;
    std::uint64_t p90 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t p999 = 0;  ///< p99.9
    std::uint64_t samples = 0;  ///< how many samples back the numbers
  };

  /// Nearest-rank p50/p90/p99/p99.9 over the current sample (zeros when
  /// empty).  Allocation-free: sorts a pre-sized member scratch buffer.
  [[nodiscard]] percentiles snapshot() const;

  /// Append the raw samples to `out` (for cross-shard merging).
  void collect(std::vector<std::uint64_t>& out) const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::uint64_t> buffer_;  ///< pre-sized; first `filled_` live
  mutable std::vector<std::uint64_t> scratch_;  ///< snapshot sort space
  std::size_t filled_ = 0;
  std::uint64_t seen_ = 0;  ///< total samples offered
  std::uint64_t rng_state_;
};

/// Nearest-rank p50/p90/p99/p99.9 of a merged sample set (sorts in
/// place; zeros when empty).  This is how `service_group::stats()`
/// aggregates per-shard reservoirs — rank the union, never combine
/// per-shard ranks.
[[nodiscard]] latency_reservoir::percentiles nearest_rank_percentiles(
    std::vector<std::uint64_t>& samples);

/// Render `s` as Prometheus text exposition (HELP/TYPE/sample lines,
/// histogram `_bucket{le=...}` series in seconds) into `out`.  Stable
/// metric names are documented in docs/OBSERVABILITY.md.  Implemented
/// in metrics.cpp; `service::dump_metrics` / `service_group::
/// dump_metrics` wrap this with the snprintf sizing contract.
void render_prometheus(const service_stats& s, text_buffer& out);

}  // namespace anyseq::service
