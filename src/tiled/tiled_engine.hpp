/// \file tiled_engine.hpp
/// Multi-threaded tiled score engine for long sequences — the paper's CPU
/// backend: dynamic (or static, for the Fig. 6 baseline) wavefront over
/// the tile grid, scalar tiles or SIMD blocks of `Lanes` independent
/// tiles, border-lattice storage (linear space).
///
/// `Lanes` selects the benchmark variants: 1 = scalar multithreaded
/// "CPU", 16 = "AVX2" (16-bit x 16), 32 = "AVX512" (16-bit x 32).
///
/// Plan/execute split: the border lattice and all per-worker tile
/// scratch (rolling rows + SIMD block rows) are carved from a
/// caller-owned `workspace` on the driving thread before the wavefront
/// starts — workers only index their pre-carved slice.  This replaces
/// the old growth-only `static thread_local` buffers (which never
/// shrank and were duplicated per variant AND per thread).

/// (per-target header: compiled into `anyseq::ANYSEQ_TARGET_NS::tiled`,
/// once per engine variant — see simd/foreach_target.hpp)

#include "simd/set_target.hpp"

#if defined(ANYSEQ_TILED_TILED_ENGINE_HPP_) == defined(ANYSEQ_TARGET_TOGGLE)
#ifdef ANYSEQ_TILED_TILED_ENGINE_HPP_
#undef ANYSEQ_TILED_TILED_ENGINE_HPP_
#else
#define ANYSEQ_TILED_TILED_ENGINE_HPP_
#endif

#include <mutex>

#include "core/errors.hpp"
#include "core/init.hpp"
#include "core/rolling.hpp"
#include "core/workspace.hpp"
#include "parallel/wavefront.hpp"
#include "tiled/simd_block.hpp"
#include "tiled/tile_kernel.hpp"

namespace anyseq {
namespace ANYSEQ_TARGET_NS {
namespace tiled {

/// Tuning/scheduling configuration (bench_ablation sweeps these).
struct tiled_config {
  index_t tile_h = 512;
  index_t tile_w = 512;
  int threads = 1;
  bool dynamic_schedule = true;  ///< false = static per-diagonal barrier
};

template <align_kind K, class Gap, class Scoring, int Lanes>
class tiled_engine {
  static_assert(Lanes == 1 || Lanes == 8 || Lanes == 16 || Lanes == 32,
                "supported lane counts: 1 (scalar), 8/16/32 (SIMD)");

 public:
  tiled_engine(Gap gap, Scoring scoring, tiled_config cfg = {})
      : gap_(gap), scoring_(scoring), cfg_(cfg) {
    if (cfg_.tile_h < 1 || cfg_.tile_w < 1)
      throw invalid_argument_error("tile extents must be >= 1");
    if (cfg_.threads < 1)
      throw invalid_argument_error("threads must be >= 1");
    if constexpr (Lanes > 1) {
      const score_t unit =
          std::max(scoring_.max_abs_unit(),
                   std::max(std::abs(gap_.open_extend()),
                            std::abs(gap_.extend())));
      const score_t span = static_cast<score_t>(
          (cfg_.tile_h + cfg_.tile_w + 2) * unit);
      if (span > 28000)
        throw invalid_argument_error(
            "tile too large for 16-bit differential scores: "
            "(tile_h + tile_w) * max_unit must stay below 28000");
    }
    if (gap_.extend() > 0)
      throw invalid_argument_error("gap penalties must be <= 0");
  }

  /// Arena bytes one pass carves for an (n x m) problem (the plan side):
  /// the border lattice plus per-worker scalar rows and SIMD block rows.
  [[nodiscard]] static std::size_t plan_bytes(index_t n, index_t m,
                                              const tiled_config& cfg) {
    if (n == 0 || m == 0) return 0;
    const tile_geometry geom(n, m, cfg.tile_h, cfg.tile_w);
    const bool affine = Gap::kind == gap_kind::affine;
    const auto workers = static_cast<std::size_t>(cfg.threads);
    std::size_t per_worker =
        2 * carve_bytes<score_t>(static_cast<std::size_t>(cfg.tile_w + 1));
    if constexpr (Lanes > 1)
      per_worker += block_scratch<Lanes>::plan_bytes(cfg.tile_w);
    const parallel::grid_dims dims{geom.tiles_y, geom.tiles_x};
    const std::size_t sched =
        cfg.dynamic_schedule
            ? parallel::dynamic_wavefront::plan_bytes(
                  1, geom.tiles_y * geom.tiles_x, cfg.threads, Lanes)
            : parallel::static_wavefront::plan_bytes(std::span(&dims, 1),
                                                     cfg.threads);
    return border_lattice::plan_bytes(geom, affine) +
           workers * per_worker +
           carve_bytes<block_scratch<Lanes>>(workers) + sched;
  }

  /// Score-only alignment (any kind), carving from `ws`.
  template <stage::sequence_view QV, stage::sequence_view SV>
  [[nodiscard]] score_result score(const QV& q, const SV& s, workspace& ws) {
    return run_pass(q, s, gap_.open(), nullptr, nullptr, ws);
  }

  /// One-shot convenience over a member workspace.
  template <stage::sequence_view QV, stage::sequence_view SV>
  [[nodiscard]] score_result score(const QV& q, const SV& s) {
    own_ws_.begin_pass();
    return score(q, s, own_ws_);
  }

  /// Boundary-parameterized global last-row pass for the divide & conquer
  /// traceback (only meaningful when K == global).
  template <stage::sequence_view QV, stage::sequence_view SV>
  void last_row(const QV& q, const SV& s, score_t tb,
                std::span<score_t> hh, std::span<score_t> ee,
                workspace& ws) {
    static_assert(K == align_kind::global,
                  "last_row requires the global engine");
    run_pass(q, s, tb, &hh, &ee, ws);
  }

  /// One-shot convenience over a member workspace.
  template <stage::sequence_view QV, stage::sequence_view SV>
  void last_row(const QV& q, const SV& s, score_t tb,
                std::span<score_t> hh, std::span<score_t> ee) {
    own_ws_.begin_pass();
    last_row(q, s, tb, hh, ee, own_ws_);
  }

  [[nodiscard]] const tiled_config& config() const noexcept { return cfg_; }
  [[nodiscard]] parallel::wavefront_stats last_stats() const noexcept {
    return stats_;
  }

 private:
  // Kernel adapter satisfying the wavefront scheduler interface.  All
  // scratch is carved from the pass workspace up front; worker `tid`
  // owns slice `tid` for the duration of the wavefront.
  template <class QV, class SV>
  struct kernel_adapter {
    tiled_engine& eng;
    const QV& q;
    const SV& s;
    border_lattice& lat;
    std::span<score_t> h_rows;  ///< threads x (tile_w+1) scalar H scratch
    std::span<score_t> e_rows;  ///< threads x (tile_w+1) scalar E scratch
    std::span<block_scratch<Lanes>> blocks;  ///< threads SIMD scratches
    std::mutex best_mutex;
    tile_best best;

    [[nodiscard]] int batch_width() const { return Lanes; }

    void merge(const tile_best& b) {
      if (b.score <= neg_inf() / 2) return;
      std::lock_guard lock(best_mutex);
      best.merge(b);
    }

    void run_single(parallel::tile_coord t, int tid) {
      const auto pitch = static_cast<std::size_t>(eng.cfg_.tile_w + 1);
      score_t* h = h_rows.data() + static_cast<std::size_t>(tid) * pitch;
      score_t* e = e_rows.data() + static_cast<std::size_t>(tid) * pitch;
      merge(relax_tile_scalar<K>(q, s, lat, t.ty, t.tx, eng.gap_,
                                 eng.scoring_, h, e));
    }

    void run_block(std::span<const parallel::tile_coord> tiles, int tid) {
      if constexpr (Lanes > 1) {
        const auto& g = lat.geometry();
        bool all_full = true;
        for (const auto& t : tiles)
          all_full = all_full && g.full(t.ty, t.tx);
        if (all_full) {
          merge(relax_tile_block<K, Gap, Scoring, Lanes>(
              q, s, lat, tiles.data(), eng.gap_, eng.scoring_,
              blocks[static_cast<std::size_t>(tid)]));
          return;
        }
      }
      for (const auto& t : tiles) run_single(t, tid);  // clipped edge tiles
    }
  };

  template <class QV, class SV>
  score_result run_pass(const QV& q, const SV& s, score_t tb,
                        std::span<score_t>* hh_out,
                        std::span<score_t>* ee_out, workspace& ws) {
    const index_t n = q.size(), m = s.size();
    score_result out;
    out.cells = static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(m);

    if (n == 0 || m == 0) {
      degenerate(n, m, tb, out, hh_out, ee_out);
      return out;
    }

    workspace::frame fr(ws);
    tile_geometry geom(n, m, cfg_.tile_h, cfg_.tile_w);
    border_lattice lat(geom, Gap::kind == gap_kind::affine, ws);

    // Boundary initialization (H row 0 / col 0; E and F planes are
    // already -inf from construction).
    score_t* h0 = lat.h_row(0);
    for (index_t j = 0; j <= m; ++j) h0[j] = init_h_row0<K>(j, gap_);
    score_t* c0 = lat.h_col(0);
    for (index_t i = 0; i <= n; ++i) {
      if constexpr (K == align_kind::global) {
        c0[i] = i == 0 ? 0 : static_cast<score_t>(tb + gap_.extend() * i);
      } else {
        c0[i] = init_h_col0<K>(i, gap_);
      }
    }

    // Per-worker scratch, carved on the driving thread (plan) so the
    // workers never touch the arena (execute).
    const auto workers = static_cast<std::size_t>(cfg_.threads);
    const auto pitch = static_cast<std::size_t>(cfg_.tile_w + 1);
    auto h_rows = ws.make<score_t>(workers * pitch);
    auto e_rows = ws.make<score_t>(workers * pitch);
    std::span<block_scratch<Lanes>> blocks;
    if constexpr (Lanes > 1) {
      blocks = ws.make<block_scratch<Lanes>>(workers);
      for (auto& b : blocks) b.bind(ws, cfg_.tile_w);
    }

    kernel_adapter<QV, SV> kernel{*this, q,      s,  lat, h_rows,
                                  e_rows, blocks, {}, {}};
    const parallel::grid_dims dims{geom.tiles_y, geom.tiles_x};
    stats_ = cfg_.dynamic_schedule
                 ? parallel::dynamic_wavefront::run(
                       cfg_.threads, std::span(&dims, 1), kernel, &ws)
                 : parallel::static_wavefront::run(
                       cfg_.threads, std::span(&dims, 1), kernel, &ws);

    // Collect the optimum.
    if constexpr (K == align_kind::global) {
      out.score = lat.h_row(geom.tiles_y)[m];
      out.end_i = n;
      out.end_j = m;
    } else if constexpr (K == align_kind::local) {
      tile_best b = kernel.best;
      b.consider(0, 0, 0);  // the empty alignment
      out.score = b.score;
      out.end_i = b.i;
      out.end_j = b.j;
    } else {
      // semiglobal / extension: kernels tracked interior candidates; add
      // the boundary cells they cannot see.
      tile_best b = kernel.best;
      if constexpr (K == align_kind::semiglobal) {
        b.consider(lat.h_row(0)[m], 0, m);   // (0, m) on the last column
        b.consider(lat.h_col(0)[n], n, 0);   // (n, 0) on the last row
      } else {
        b.consider(0, 0, 0);  // extension: the empty prefix at (0,0)
      }
      out.score = b.score;
      out.end_i = b.i;
      out.end_j = b.j;
    }

    if (hh_out != nullptr) {
      ANYSEQ_CHECK(static_cast<index_t>(hh_out->size()) == m + 1 &&
                       static_cast<index_t>(ee_out->size()) == m + 1,
                   "last_row spans must have m+1 entries");
      const score_t* hrow = lat.h_row(geom.tiles_y);
      for (index_t j = 0; j <= m; ++j) (*hh_out)[j] = hrow[j];
      if (lat.affine()) {
        const score_t* erow = lat.e_row(geom.tiles_y);
        for (index_t j = 0; j <= m; ++j) (*ee_out)[j] = erow[j];
      } else {
        for (index_t j = 0; j <= m; ++j) (*ee_out)[j] = neg_inf();
      }
    }
    return out;
  }

  void degenerate(index_t n, index_t m, score_t tb, score_result& out,
                  std::span<score_t>* hh_out, std::span<score_t>* ee_out) {
    if constexpr (K == align_kind::global) {
      out.score = n == 0 ? gap_.total(m)
                         : (m == 0 && n > 0
                                ? static_cast<score_t>(tb + gap_.extend() * n)
                                : 0);
      out.end_i = n;
      out.end_j = m;
    } else {
      out.score = 0;
      out.end_i = 0;
      out.end_j = 0;
    }
    if (hh_out != nullptr) {
      for (index_t j = 0; j <= m; ++j) {
        (*hh_out)[j] = j == 0 ? (n == 0 ? 0
                                        : static_cast<score_t>(
                                              tb + gap_.extend() * n))
                              : static_cast<score_t>(
                                    (n == 0 ? 0 : tb + gap_.extend() * n) +
                                    gap_.total(j));
        (*ee_out)[j] = neg_inf();
      }
    }
  }

  Gap gap_;
  Scoring scoring_;
  tiled_config cfg_;
  parallel::wavefront_stats stats_{};
  workspace own_ws_;  ///< backs the one-shot convenience overloads
};

}  // namespace tiled
}  // namespace ANYSEQ_TARGET_NS
}  // namespace anyseq

#if ANYSEQ_TARGET == ANYSEQ_TARGET_SCALAR
namespace anyseq::tiled {
using v_scalar::tiled::tiled_config;
using v_scalar::tiled::tiled_engine;
}  // namespace anyseq::tiled
#endif  // scalar exports

#endif  // per-target include guard
