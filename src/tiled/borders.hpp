/// \file borders.hpp
/// Border lattice for tiled DP (paper Fig. 2): instead of the full DP
/// matrix, only the tile-boundary rows and columns are materialized —
/// "data accessors help to hide the fact that not the entire DP matrix is
/// stored, but only such border stripes" (§IV-A).
///
/// Layout: for a grid of TY x TX tiles over an (n+1) x (m+1) DP matrix,
///   h_rows[r]  — H along horizontal boundary r (DP row r*tile_h), r=0..TY
///   e_rows[r]  — E along the same boundaries (affine only)
///   h_cols[c]  — H along vertical boundary c (DP col c*tile_w), c=0..TX
///   f_cols[c]  — F along the same boundaries (affine only)
/// A tile (ty, tx) reads boundary row ty and boundary column tx and
/// writes boundary row ty+1 and boundary column tx+1 (clipped extents at
/// the grid edge).  Tiles on one anti-diagonal touch disjoint slices, so
/// no synchronization beyond the scheduler's ordering is needed.

/// (per-target header: compiled into `anyseq::ANYSEQ_TARGET_NS::tiled`,
/// once per engine variant — see simd/foreach_target.hpp)

#include "simd/set_target.hpp"

#if defined(ANYSEQ_TILED_BORDERS_HPP_) == defined(ANYSEQ_TARGET_TOGGLE)
#ifdef ANYSEQ_TILED_BORDERS_HPP_
#undef ANYSEQ_TILED_BORDERS_HPP_
#else
#define ANYSEQ_TILED_BORDERS_HPP_
#endif

#include <vector>

#include "core/types.hpp"
#include "core/workspace.hpp"
#include "stage/generators.hpp"

namespace anyseq {
namespace ANYSEQ_TARGET_NS {
namespace tiled {

/// Geometry of one tiled DP problem.
struct tile_geometry {
  index_t n = 0, m = 0;        ///< sequence lengths (rows, cols)
  index_t tile_h = 0, tile_w = 0;
  index_t tiles_y = 0, tiles_x = 0;

  tile_geometry() = default;
  tile_geometry(index_t n_, index_t m_, index_t th, index_t tw)
      : n(n_), m(m_), tile_h(th), tile_w(tw),
        tiles_y(stage::tile_count(n_, th)),
        tiles_x(stage::tile_count(m_, tw)) {}

  /// DP-row range (y0, y1] of tile row ty (interior rows y0+1..y1).
  [[nodiscard]] index_t y0(index_t ty) const noexcept { return ty * tile_h; }
  [[nodiscard]] index_t y1(index_t ty) const noexcept {
    const index_t y = (ty + 1) * tile_h;
    return y < n ? y : n;
  }
  [[nodiscard]] index_t x0(index_t tx) const noexcept { return tx * tile_w; }
  [[nodiscard]] index_t x1(index_t tx) const noexcept {
    const index_t x = (tx + 1) * tile_w;
    return x < m ? x : m;
  }
  /// True if the tile has full (unclipped) extents.
  [[nodiscard]] bool full(index_t ty, index_t tx) const noexcept {
    return y1(ty) - y0(ty) == tile_h && x1(tx) - x0(tx) == tile_w;
  }
};

/// The border lattice itself.  `affine` controls whether E/F planes are
/// allocated (linear gaps drop them — the storage analogue of partial
/// evaluation removing the E/F matrices).
///
/// Storage comes either from a caller-owned `workspace` (the production
/// path: carved per pass, released by the engine's frame, zero
/// steady-state allocations) or, for tests and one-shot helpers, from an
/// internal owning buffer.
class border_lattice {
 public:
  /// Arena bytes a workspace-backed lattice carves (the plan side).
  [[nodiscard]] static std::size_t plan_bytes(const tile_geometry& g,
                                              bool affine) noexcept {
    const auto rows = static_cast<std::size_t>((g.tiles_y + 1) * (g.m + 1));
    const auto cols = static_cast<std::size_t>((g.tiles_x + 1) * (g.n + 1));
    const std::size_t planes = affine ? 2 : 1;
    return planes * (carve_bytes<score_t>(rows) + carve_bytes<score_t>(cols));
  }

  /// Owning mode (tests / one-shot use): allocates its own storage.
  border_lattice(const tile_geometry& g, bool affine)
      : geom_(g), row_pitch_(g.m + 1), col_pitch_(g.n + 1) {
    const auto rows = static_cast<std::size_t>((g.tiles_y + 1) * row_pitch_);
    const auto cols = static_cast<std::size_t>((g.tiles_x + 1) * col_pitch_);
    own_.assign(rows + cols + (affine ? rows + cols : 0), 0);
    score_t* p = own_.data();
    h_rows_ = p;
    p += rows;
    h_cols_ = p;
    p += cols;
    if (affine) {
      e_rows_ = p;
      p += rows;
      f_cols_ = p;
      for (std::size_t k = 0; k < rows + cols; ++k) e_rows_[k] = neg_inf();
    }
    affine_ = affine;
  }

  /// Workspace mode: carve every plane from `ws` (released when the
  /// caller's enclosing frame unwinds).
  border_lattice(const tile_geometry& g, bool affine, workspace& ws)
      : geom_(g), row_pitch_(g.m + 1), col_pitch_(g.n + 1) {
    const auto rows = static_cast<std::size_t>((g.tiles_y + 1) * row_pitch_);
    const auto cols = static_cast<std::size_t>((g.tiles_x + 1) * col_pitch_);
    h_rows_ = ws.make<score_t>(rows, score_t{0}).data();
    h_cols_ = ws.make<score_t>(cols, score_t{0}).data();
    if (affine) {
      e_rows_ = ws.make<score_t>(rows, neg_inf()).data();
      f_cols_ = ws.make<score_t>(cols, neg_inf()).data();
    }
    affine_ = affine;
  }

  // Horizontal boundary r: H(r*tile_h (clipped), j), j = 0..m.
  [[nodiscard]] score_t* h_row(index_t r) noexcept {
    return h_rows_ + r * row_pitch_;
  }
  [[nodiscard]] score_t* e_row(index_t r) noexcept {
    return e_rows_ + r * row_pitch_;
  }
  // Vertical boundary c: H(i, c*tile_w (clipped)), i = 0..n.
  [[nodiscard]] score_t* h_col(index_t c) noexcept {
    return h_cols_ + c * col_pitch_;
  }
  [[nodiscard]] score_t* f_col(index_t c) noexcept {
    return f_cols_ + c * col_pitch_;
  }

  [[nodiscard]] const tile_geometry& geometry() const noexcept { return geom_; }
  [[nodiscard]] bool affine() const noexcept { return affine_; }

  /// Bytes held — benchmarks report this to show linear-space behaviour.
  [[nodiscard]] std::size_t bytes() const noexcept {
    const auto rows = static_cast<std::size_t>((geom_.tiles_y + 1) * row_pitch_);
    const auto cols = static_cast<std::size_t>((geom_.tiles_x + 1) * col_pitch_);
    return (affine_ ? 2 : 1) * (rows + cols) * sizeof(score_t);
  }

 private:
  tile_geometry geom_;
  index_t row_pitch_, col_pitch_;
  bool affine_ = false;
  score_t* h_rows_ = nullptr;
  score_t* h_cols_ = nullptr;
  score_t* e_rows_ = nullptr;
  score_t* f_cols_ = nullptr;
  std::vector<score_t> own_;  ///< backs the owning mode only
};

}  // namespace tiled
}  // namespace ANYSEQ_TARGET_NS
}  // namespace anyseq

#if ANYSEQ_TARGET == ANYSEQ_TARGET_SCALAR
namespace anyseq::tiled {
using v_scalar::tiled::border_lattice;
using v_scalar::tiled::tile_geometry;
}  // namespace anyseq::tiled
#endif  // scalar exports

#endif  // per-target include guard
