/// \file borders.hpp
/// Border lattice for tiled DP (paper Fig. 2): instead of the full DP
/// matrix, only the tile-boundary rows and columns are materialized —
/// "data accessors help to hide the fact that not the entire DP matrix is
/// stored, but only such border stripes" (§IV-A).
///
/// Layout: for a grid of TY x TX tiles over an (n+1) x (m+1) DP matrix,
///   h_rows[r]  — H along horizontal boundary r (DP row r*tile_h), r=0..TY
///   e_rows[r]  — E along the same boundaries (affine only)
///   h_cols[c]  — H along vertical boundary c (DP col c*tile_w), c=0..TX
///   f_cols[c]  — F along the same boundaries (affine only)
/// A tile (ty, tx) reads boundary row ty and boundary column tx and
/// writes boundary row ty+1 and boundary column tx+1 (clipped extents at
/// the grid edge).  Tiles on one anti-diagonal touch disjoint slices, so
/// no synchronization beyond the scheduler's ordering is needed.

/// (per-target header: compiled into `anyseq::ANYSEQ_TARGET_NS::tiled`,
/// once per engine variant — see simd/foreach_target.hpp)

#include "simd/set_target.hpp"

#if defined(ANYSEQ_TILED_BORDERS_HPP_) == defined(ANYSEQ_TARGET_TOGGLE)
#ifdef ANYSEQ_TILED_BORDERS_HPP_
#undef ANYSEQ_TILED_BORDERS_HPP_
#else
#define ANYSEQ_TILED_BORDERS_HPP_
#endif

#include <vector>

#include "core/types.hpp"
#include "stage/generators.hpp"

namespace anyseq {
namespace ANYSEQ_TARGET_NS {
namespace tiled {

/// Geometry of one tiled DP problem.
struct tile_geometry {
  index_t n = 0, m = 0;        ///< sequence lengths (rows, cols)
  index_t tile_h = 0, tile_w = 0;
  index_t tiles_y = 0, tiles_x = 0;

  tile_geometry() = default;
  tile_geometry(index_t n_, index_t m_, index_t th, index_t tw)
      : n(n_), m(m_), tile_h(th), tile_w(tw),
        tiles_y(stage::tile_count(n_, th)),
        tiles_x(stage::tile_count(m_, tw)) {}

  /// DP-row range (y0, y1] of tile row ty (interior rows y0+1..y1).
  [[nodiscard]] index_t y0(index_t ty) const noexcept { return ty * tile_h; }
  [[nodiscard]] index_t y1(index_t ty) const noexcept {
    const index_t y = (ty + 1) * tile_h;
    return y < n ? y : n;
  }
  [[nodiscard]] index_t x0(index_t tx) const noexcept { return tx * tile_w; }
  [[nodiscard]] index_t x1(index_t tx) const noexcept {
    const index_t x = (tx + 1) * tile_w;
    return x < m ? x : m;
  }
  /// True if the tile has full (unclipped) extents.
  [[nodiscard]] bool full(index_t ty, index_t tx) const noexcept {
    return y1(ty) - y0(ty) == tile_h && x1(tx) - x0(tx) == tile_w;
  }
};

/// The border lattice itself.  `affine` controls whether E/F planes are
/// allocated (linear gaps drop them — the storage analogue of partial
/// evaluation removing the E/F matrices).
class border_lattice {
 public:
  border_lattice(const tile_geometry& g, bool affine)
      : geom_(g),
        row_pitch_(g.m + 1),
        col_pitch_(g.n + 1),
        h_rows_((g.tiles_y + 1) * row_pitch_),
        h_cols_((g.tiles_x + 1) * col_pitch_) {
    if (affine) {
      e_rows_.resize(h_rows_.size(), neg_inf());
      f_cols_.resize(h_cols_.size(), neg_inf());
    }
  }

  // Horizontal boundary r: H(r*tile_h (clipped), j), j = 0..m.
  [[nodiscard]] score_t* h_row(index_t r) noexcept {
    return h_rows_.data() + r * row_pitch_;
  }
  [[nodiscard]] score_t* e_row(index_t r) noexcept {
    return e_rows_.data() + r * row_pitch_;
  }
  // Vertical boundary c: H(i, c*tile_w (clipped)), i = 0..n.
  [[nodiscard]] score_t* h_col(index_t c) noexcept {
    return h_cols_.data() + c * col_pitch_;
  }
  [[nodiscard]] score_t* f_col(index_t c) noexcept {
    return f_cols_.data() + c * col_pitch_;
  }

  [[nodiscard]] const tile_geometry& geometry() const noexcept { return geom_; }
  [[nodiscard]] bool affine() const noexcept { return !e_rows_.empty(); }

  /// Bytes held — benchmarks report this to show linear-space behaviour.
  [[nodiscard]] std::size_t bytes() const noexcept {
    return (h_rows_.size() + h_cols_.size() + e_rows_.size() +
            f_cols_.size()) *
           sizeof(score_t);
  }

 private:
  tile_geometry geom_;
  index_t row_pitch_, col_pitch_;
  std::vector<score_t> h_rows_, h_cols_;
  std::vector<score_t> e_rows_, f_cols_;
};

}  // namespace tiled
}  // namespace ANYSEQ_TARGET_NS
}  // namespace anyseq

#if ANYSEQ_TARGET == ANYSEQ_TARGET_SCALAR
namespace anyseq::tiled {
using v_scalar::tiled::border_lattice;
using v_scalar::tiled::tile_geometry;
}  // namespace anyseq::tiled
#endif  // scalar exports

#endif  // per-target include guard
