/// \file simd_block.hpp
/// SIMD relaxation of a *block* of independent tiles (paper §IV-A:
/// "Vectorization is done over blocks that consist of rows from
/// independent submatrices").
///
/// Lane `l` of every vector computes tile `l` of the block; because the
/// tiles are mutually independent (ready at the same time in the dynamic
/// wavefront), the lanes never interact and core::relax instantiated with
/// pack types computes all of them per instruction.
///
/// Scores inside the block are 16-bit offsets from each tile's entry
/// corner ("only differences to the global score are relevant", §IV-A);
/// borders are rebased on load and restored on store.  The caller
/// guarantees (tile_h + tile_w) * max_unit stays inside the int16 range —
/// tiled_engine validates this at construction.

/// (per-target header: compiled into `anyseq::ANYSEQ_TARGET_NS::tiled`,
/// once per engine variant — see simd/foreach_target.hpp)

#include "simd/set_target.hpp"

#if defined(ANYSEQ_TILED_SIMD_BLOCK_HPP_) == defined(ANYSEQ_TARGET_TOGGLE)
#ifdef ANYSEQ_TILED_SIMD_BLOCK_HPP_
#undef ANYSEQ_TILED_SIMD_BLOCK_HPP_
#else
#define ANYSEQ_TILED_SIMD_BLOCK_HPP_
#endif

#include "core/init.hpp"
#include "parallel/wavefront.hpp"
#include "core/relax.hpp"
#include "core/workspace.hpp"
#include "simd/pack.hpp"
#include "stage/views.hpp"
#include "tiled/borders.hpp"
#include "tiled/tile_kernel.hpp"

namespace anyseq {
namespace ANYSEQ_TARGET_NS {
namespace tiled {

/// Per-worker scratch for the SIMD block kernel.  Views into a
/// `workspace` arena: the engine carves one per worker at pass start
/// (plan), the kernel only indexes (execute) — replacing the old
/// growth-only `static thread_local` vectors.
template <int W>
struct block_scratch {
  using p16 = simd::pack<score16_t, W>;
  std::span<p16> h;       ///< rolling H row, tile_w+1 packs
  std::span<p16> e;       ///< rolling E row
  std::span<p16> schars;  ///< interleaved subject characters, tile_w+1

  /// Arena bytes one bound scratch carves (the plan side).
  [[nodiscard]] static std::size_t plan_bytes(index_t tile_w) noexcept {
    return 3 * carve_bytes<p16>(static_cast<std::size_t>(tile_w + 1));
  }

  /// Carve the three rows for tiles of width `tile_w` from `ws`.
  void bind(workspace& ws, index_t tile_w) {
    const auto count = static_cast<std::size_t>(tile_w + 1);
    h = ws.make<p16>(count);
    e = ws.make<p16>(count);
    schars = ws.make<p16>(count);
  }
};

namespace detail {

/// Clamp a rebased 32-bit score into the 16-bit block range, mapping
/// anything at or below the 32-bit sentinel onto the 16-bit sentinel.
[[nodiscard]] ANYSEQ_INLINE score16_t rebase16(score_t v, score_t base) noexcept {
  if (v <= neg_inf() / 2) return neg_inf16();
  const score_t d = v - base;
  ANYSEQ_ASSERT(d > neg_inf16() && d < -neg_inf16(),
                "block score exceeds 16-bit differential range");
  return static_cast<score16_t>(d);
}

/// Absolute zero (the local-alignment floor) in rebased representation;
/// pinned to the sentinel when out of range (the clamp is then inactive,
/// which is correct: such tiles sit far above zero already).
[[nodiscard]] ANYSEQ_INLINE score16_t rebase_nu16(score_t base) noexcept {
  const score_t d = -base;
  if (d <= neg_inf16()) return neg_inf16();
  ANYSEQ_ASSERT(d < -neg_inf16(), "local tile corner far below zero");
  return static_cast<score16_t>(d);
}

/// Restore an absolute score from the 16-bit block representation.
[[nodiscard]] ANYSEQ_INLINE score_t debase16(score16_t v, score_t base) noexcept {
  if (v <= neg_inf16()) return neg_inf();
  return base + static_cast<score_t>(v);
}

}  // namespace detail

/// Relax `W` independent full-size tiles as one SIMD block.
/// `tiles[l]` gives lane l's (ty, tx); all tiles must have full extents.
/// Returns each lane's tile_best merged (local/semiglobal tracking).
template <align_kind K, class Gap, class Scoring, int W, class QV, class SV>
tile_best relax_tile_block(const QV& q, const SV& s, border_lattice& lat,
                           const parallel::tile_coord* tiles, const Gap& gap,
                           const Scoring& scoring, block_scratch<W>& scr) {
  using p16 = simd::pack<score16_t, W>;
  const auto& g = lat.geometry();
  const index_t th = g.tile_h, tw = g.tile_w;
  const bool affine = Gap::kind == gap_kind::affine;

  ANYSEQ_ASSERT(static_cast<index_t>(scr.h.size()) == tw + 1,
                "block_scratch must be bound to this geometry's tile width");

  // Per-lane geometry and rebasing corners.
  index_t y0[W], x0[W];
  score_t base[W];
  for (int l = 0; l < W; ++l) {
    y0[l] = g.y0(tiles[l].ty);
    x0[l] = g.x0(tiles[l].tx);
    ANYSEQ_ASSERT(g.full(tiles[l].ty, tiles[l].tx),
                  "SIMD blocks require full-size tiles");
    base[l] = lat.h_row(tiles[l].ty)[x0[l]];
  }

  // Interleave top borders and subject characters (lane-major packs).
  for (index_t jj = 0; jj <= tw; ++jj) {
    p16 hv, ev, sv;
    for (int l = 0; l < W; ++l) {
      hv.v[l] = detail::rebase16(lat.h_row(tiles[l].ty)[x0[l] + jj], base[l]);
      ev.v[l] = affine ? detail::rebase16(lat.e_row(tiles[l].ty)[x0[l] + jj],
                                          base[l])
                       : neg_inf16();
      sv.v[l] =
          jj > 0 ? static_cast<score16_t>(s[x0[l] + jj - 1]) : score16_t{0};
    }
    scr.h[jj] = hv;
    scr.e[jj] = ev;
    scr.schars[jj] = sv;
  }

  // The local-alignment floor (absolute 0) in each lane's rebased
  // representation; saturates to the sentinel when the corner is too far
  // above zero for the clamp to ever fire inside this tile.
  p16 nu;
  for (int l = 0; l < W; ++l) nu.v[l] = detail::rebase_nu16(base[l]);

  // Per-lane local-best tracking (16-bit values + positions).
  p16 best_v = p16::broadcast(neg_inf16());
  p16 best_i = p16::broadcast(0), best_j = p16::broadcast(0);

  for (index_t i = 1; i <= th; ++i) {
    p16 qc, left_h, left_f;
    for (int l = 0; l < W; ++l) {
      qc.v[l] = static_cast<score16_t>(q[y0[l] + i - 1]);
      left_h.v[l] =
          detail::rebase16(lat.h_col(tiles[l].tx)[y0[l] + i], base[l]);
      left_f.v[l] = affine ? detail::rebase16(
                                 lat.f_col(tiles[l].tx)[y0[l] + i], base[l])
                           : neg_inf16();
    }
    p16 diag = scr.h[0];
    scr.h[0] = left_h;
    p16 f = left_f;
    const p16 row_i = p16::broadcast(static_cast<score16_t>(i));

    for (index_t jj = 1; jj <= tw; ++jj) {
      const prev_cells<p16> prev{diag, scr.h[jj], scr.h[jj - 1], scr.e[jj],
                                 f};
      const auto nx = relax<K, false, p16, p16, p16>(prev, qc, scr.schars[jj],
                                                     gap, scoring, nu);
      diag = scr.h[jj];
      scr.h[jj] = nx.h;
      scr.e[jj] = nx.e;
      f = nx.f;
      if constexpr (tracks_running_max(K)) {
        const auto better = vgt(nx.h, best_v);
        best_v = vselect(better, nx.h, best_v);
        best_i = vselect(better, row_i, best_i);
        best_j = vselect(better, p16::broadcast(static_cast<score16_t>(jj)),
                         best_j);
      }
    }

    // Right border out (absolute values).
    for (int l = 0; l < W; ++l) {
      lat.h_col(tiles[l].tx + 1)[y0[l] + i] =
          detail::debase16(scr.h[tw].v[l], base[l]);
      if (affine)
        lat.f_col(tiles[l].tx + 1)[y0[l] + i] =
            detail::debase16(f.v[l], base[l]);
    }
  }

  // Bottom border out (jj = 0 corner skipped when a left neighbor exists —
  // see the matching comment in relax_tile_scalar).
  for (index_t jj = 0; jj <= tw; ++jj) {
    for (int l = 0; l < W; ++l) {
      if (jj == 0 && tiles[l].tx > 0) continue;
      lat.h_row(tiles[l].ty + 1)[x0[l] + jj] =
          detail::debase16(scr.h[jj].v[l], base[l]);
      if (affine)
        lat.e_row(tiles[l].ty + 1)[x0[l] + jj] =
            detail::debase16(scr.e[jj].v[l], base[l]);
    }
  }

  // Merge per-lane bests (local); semiglobal border maxima are handled by
  // the engine's final lattice scan, and full-size tiles never touch the
  // true last row/column when clipping exists — but when the sequence
  // lengths divide evenly the last tiles ARE full, so account for them.
  tile_best best;
  if constexpr (tracks_running_max(K)) {
    for (int l = 0; l < W; ++l)
      best.consider(detail::debase16(best_v.v[l], base[l]),
                    y0[l] + static_cast<index_t>(best_i.v[l]),
                    x0[l] + static_cast<index_t>(best_j.v[l]));
  } else if constexpr (K == align_kind::semiglobal) {
    for (int l = 0; l < W; ++l) {
      if (x0[l] + tw == g.m)  // lane's tile ends at the true last column
        for (index_t i = 1; i <= th; ++i)
          best.consider(lat.h_col(tiles[l].tx + 1)[y0[l] + i], y0[l] + i,
                        g.m);
      if (y0[l] + th == g.n)  // true last row
        for (index_t jj = 0; jj <= tw; ++jj)
          best.consider(lat.h_row(tiles[l].ty + 1)[x0[l] + jj], g.n,
                        x0[l] + jj);
    }
  }
  return best;
}

}  // namespace tiled
}  // namespace ANYSEQ_TARGET_NS
}  // namespace anyseq

#if ANYSEQ_TARGET == ANYSEQ_TARGET_SCALAR
namespace anyseq::tiled {
using v_scalar::tiled::block_scratch;
using v_scalar::tiled::relax_tile_block;
}  // namespace anyseq::tiled
namespace anyseq::tiled::detail {
using v_scalar::tiled::detail::debase16;
using v_scalar::tiled::detail::rebase16;
using v_scalar::tiled::detail::rebase_nu16;
}  // namespace anyseq::tiled::detail
#endif  // scalar exports

#endif  // per-target include guard
