/// \file tile_kernel.hpp
/// Scalar relaxation of one DP tile against the border lattice
/// (paper §IV-A: "In the non-vectorized version, cells within a submatrix
/// will be relaxed in row-major order").

/// (per-target header: compiled into `anyseq::ANYSEQ_TARGET_NS::tiled`,
/// once per engine variant — see simd/foreach_target.hpp)

#include "simd/set_target.hpp"

#if defined(ANYSEQ_TILED_TILE_KERNEL_HPP_) == defined(ANYSEQ_TARGET_TOGGLE)
#ifdef ANYSEQ_TILED_TILE_KERNEL_HPP_
#undef ANYSEQ_TILED_TILE_KERNEL_HPP_
#else
#define ANYSEQ_TILED_TILE_KERNEL_HPP_
#endif

#include "core/init.hpp"
#include "core/relax.hpp"
#include "stage/views.hpp"
#include "tiled/borders.hpp"

namespace anyseq {
namespace ANYSEQ_TARGET_NS {
namespace tiled {

/// Best cell seen inside a tile (used for local/semiglobal optima).
struct tile_best {
  score_t score = neg_inf();
  index_t i = 0, j = 0;

  void consider(score_t v, index_t ci, index_t cj) noexcept {
    if (v > score) {
      score = v;
      i = ci;
      j = cj;
    }
  }
  void merge(const tile_best& o) noexcept { consider(o.score, o.i, o.j); }
};

/// Relax tile (ty, tx): consume boundary row `ty` / column `tx`, produce
/// boundary row `ty+1` / column `tx+1`.  Returns the tile's best cell
/// according to the alignment kind (meaningless for global — the engine
/// reads the final lattice corner instead).
///
/// Scratch buffers (h, e of size tile_w+1) are caller-provided so worker
/// threads reuse them across tiles.
template <align_kind K, class Gap, class Scoring, class QV, class SV>
tile_best relax_tile_scalar(const QV& q, const SV& s, border_lattice& lat,
                            index_t ty, index_t tx, const Gap& gap,
                            const Scoring& scoring, score_t* ANYSEQ_RESTRICT h,
                            score_t* ANYSEQ_RESTRICT e) {
  const auto& g = lat.geometry();
  const index_t y0 = g.y0(ty), y1 = g.y1(ty);
  const index_t x0 = g.x0(tx), x1 = g.x1(tx);
  const index_t w = x1 - x0;
  const bool affine = Gap::kind == gap_kind::affine;

  // Load the top boundary into the rolling buffers (local index 0..w).
  const score_t* top_h = lat.h_row(ty) + x0;
  const score_t* top_e = affine ? lat.e_row(ty) + x0 : nullptr;
  for (index_t jj = 0; jj <= w; ++jj) {
    h[jj] = top_h[jj];
    e[jj] = affine ? top_e[jj] : neg_inf();
  }

  score_t* left_h = lat.h_col(tx);
  score_t* left_f = affine ? lat.f_col(tx) : nullptr;
  score_t* out_h_col = lat.h_col(tx + 1);
  score_t* out_f_col = affine ? lat.f_col(tx + 1) : nullptr;

  tile_best best;

  for (index_t i = y0 + 1; i <= y1; ++i) {
    score_t diag = h[0];
    h[0] = left_h[i];
    score_t f = affine ? left_f[i] : neg_inf();
    const char_t qc = q[i - 1];
    for (index_t jj = 1; jj <= w; ++jj) {
      const prev_cells<score_t> prev{diag, h[jj], h[jj - 1], e[jj], f};
      const auto nx =
          relax_scalar<K, false>(prev, qc, s[x0 + jj - 1], gap, scoring);
      diag = h[jj];
      h[jj] = nx.h;
      e[jj] = nx.e;
      f = nx.f;
      if constexpr (tracks_running_max(K)) best.consider(nx.h, i, x0 + jj);
    }
    out_h_col[i] = h[w];
    if (affine) out_f_col[i] = f;
    if constexpr (K == align_kind::semiglobal) {
      if (x1 == g.m) best.consider(h[w], i, x1);  // true last column
    }
  }

  // Bottom boundary out.  The jj = 0 corner is skipped when a left
  // neighbor exists: that tile already wrote the identical value, and
  // writing it again here would race with a concurrent lower-left tile's
  // read of the same lattice slot.
  score_t* bot_h = lat.h_row(ty + 1) + x0;
  score_t* bot_e = affine ? lat.e_row(ty + 1) + x0 : nullptr;
  for (index_t jj = tx > 0 ? 1 : 0; jj <= w; ++jj) {
    bot_h[jj] = h[jj];
    if (affine) bot_e[jj] = e[jj];
  }
  if constexpr (K == align_kind::semiglobal) {
    if (y1 == g.n)  // true last row: every cell competes
      for (index_t jj = 0; jj <= w; ++jj) best.consider(h[jj], y1, x0 + jj);
  }
  return best;
}

}  // namespace tiled
}  // namespace ANYSEQ_TARGET_NS
}  // namespace anyseq

#if ANYSEQ_TARGET == ANYSEQ_TARGET_SCALAR
namespace anyseq::tiled {
using v_scalar::tiled::relax_tile_scalar;
using v_scalar::tiled::tile_best;
}  // namespace anyseq::tiled
#endif  // scalar exports

#endif  // per-target include guard
