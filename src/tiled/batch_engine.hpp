/// \file batch_engine.hpp
/// Inter-sequence SIMD alignment of many short pairs (the paper's second
/// use case: millions of Illumina read pairs).  Lane `l` of every vector
/// instruction processes pair `l` of a chunk; chunks run in parallel on
/// the thread pool.
///
/// Short reads fit 16-bit scores absolutely (|score| <= (n+m)*max_unit),
/// so no rebasing is needed.  Pairs whose lengths differ from their
/// chunk-mates, or whose score range would overflow, fall back to the
/// scalar rolling engine — the same dichotomy as the paper's Fig. 3
/// (blocks when l work items exist, scalar otherwise).
///
/// Plan/execute split: when run single-threaded (the service's
/// steady-state configuration on small hosts), every chunk's interleaved
/// rows come from the caller-owned workspace and the `*_into` entry
/// points write into caller-sized storage — zero allocations after
/// warm-up.  Multi-threaded runs give each chunk a private workspace on
/// its worker (the pool fan-out itself allocates; documented trade-off).
///
/// The pair type is generic over anything with `.q`/`.s` views, so the
/// public `seq_pair` batches dispatch straight through without being
/// copied into per-target `pair_view` vectors first.

/// (per-target header: compiled into `anyseq::ANYSEQ_TARGET_NS::tiled`,
/// once per engine variant — see simd/foreach_target.hpp)

#include "simd/set_target.hpp"

#if defined(ANYSEQ_TILED_BATCH_ENGINE_HPP_) == defined(ANYSEQ_TARGET_TOGGLE)
#ifdef ANYSEQ_TILED_BATCH_ENGINE_HPP_
#undef ANYSEQ_TILED_BATCH_ENGINE_HPP_
#else
#define ANYSEQ_TILED_BATCH_ENGINE_HPP_
#endif

#include <mutex>
#include <vector>

#include "core/errors.hpp"
#include "core/full_engine.hpp"
#include "core/rolling.hpp"
#include "core/init.hpp"
#include "core/relax.hpp"
#include "core/traceback.hpp"
#include "core/workspace.hpp"
#include "parallel/thread_pool.hpp"
#include "simd/pack.hpp"

namespace anyseq {
namespace ANYSEQ_TARGET_NS {
namespace tiled {

/// One alignment job.
struct pair_view {
  stage::seq_view q, s;
};

struct batch_config {
  int threads = 1;
};

/// Statistics for tests/benches: how much work took the SIMD path.
struct batch_stats {
  std::uint64_t simd_pairs = 0;
  std::uint64_t scalar_pairs = 0;
};

template <align_kind K, class Gap, class Scoring, int Lanes>
class batch_engine {
 public:
  batch_engine(Gap gap, Scoring scoring, batch_config cfg = {})
      : gap_(gap), scoring_(scoring), cfg_(cfg) {
    if (cfg_.threads < 1)
      throw invalid_argument_error("threads must be >= 1");
  }

  /// Score every pair into caller-sized `out` (order preserved),
  /// carving chunk scratch from `ws` when running single-threaded.
  template <class Pair>
  void score_into(std::span<const Pair> pairs, workspace& ws,
                  std::span<score_result> out) {
    ANYSEQ_CHECK(out.size() == pairs.size(),
                 "score_into: out must have one slot per pair");
    run(pairs, &ws,
        [&out](std::size_t idx, const score_result& r) { out[idx] = r; });
  }

  /// Align every pair with traceback into caller-sized `out` (order
  /// preserved), recycling each slot's string capacity.
  template <class Pair>
  void align_into(std::span<const Pair> pairs, workspace& ws,
                  std::span<alignment_result> out) {
    ANYSEQ_CHECK(out.size() == pairs.size(),
                 "align_into: out must have one slot per pair");
    stats_ = {};
    const auto count = static_cast<index_t>(pairs.size());
    if (cfg_.threads <= 1 || count <= 1) {
      full_engine<K, Gap, Scoring> eng(gap_, scoring_);
      for (index_t i = 0; i < count; ++i)
        eng.align_into(pairs[static_cast<std::size_t>(i)].q,
                       pairs[static_cast<std::size_t>(i)].s, true, ws,
                       out[static_cast<std::size_t>(i)]);
      stats_.scalar_pairs = static_cast<std::uint64_t>(count);
      return;
    }
    parallel::thread_pool pool(cfg_.threads);
    pool.parallel_for(0, count, [&](index_t i) {
      full_engine<K, Gap, Scoring> eng(gap_, scoring_);
      out[static_cast<std::size_t>(i)] =
          eng.align(pairs[static_cast<std::size_t>(i)].q,
                    pairs[static_cast<std::size_t>(i)].s, true);
    });
    stats_.scalar_pairs = static_cast<std::uint64_t>(count);
  }

  /// Score every pair (order preserved).
  [[nodiscard]] std::vector<score_t> scores(std::span<const pair_view> pairs) {
    std::vector<score_t> out(pairs.size());
    own_ws_.begin_pass();
    run(pairs, &own_ws_, [&](std::size_t idx, const score_result& r) {
      out[idx] = r.score;
    });
    return out;
  }

  /// Score every pair, keeping the full score_result — the optimum's end
  /// cell and cell count included (order preserved).  This is what the
  /// public `align_batch` score path uses so its results carry the same
  /// end coordinates as a per-pair `align` call.
  [[nodiscard]] std::vector<score_result> score_results(
      std::span<const pair_view> pairs) {
    std::vector<score_result> out(pairs.size());
    own_ws_.begin_pass();
    score_into(std::span<const pair_view>(pairs), own_ws_,
               std::span<score_result>(out));
    return out;
  }

  /// Align every pair with traceback (order preserved).
  [[nodiscard]] std::vector<alignment_result> align_all(
      std::span<const pair_view> pairs) {
    std::vector<alignment_result> out(pairs.size());
    own_ws_.begin_pass();
    align_into(std::span<const pair_view>(pairs), own_ws_,
               std::span<alignment_result>(out));
    return out;
  }

  [[nodiscard]] batch_stats last_stats() const noexcept { return stats_; }

 private:
  using p16 = simd::pack<score16_t, Lanes>;

  template <class Pair, class Sink>
  void run(std::span<const Pair> pairs, workspace* ws, Sink&& sink) {
    stats_ = {};
    const index_t n_chunks =
        (static_cast<index_t>(pairs.size()) + Lanes - 1) / Lanes;
    if (cfg_.threads <= 1 || n_chunks <= 1) {
      // Serial: every chunk carves from the caller's arena.
      for (index_t c = 0; c < n_chunks; ++c) {
        const std::size_t lo = static_cast<std::size_t>(c) * Lanes;
        const std::size_t hi = std::min(pairs.size(), lo + Lanes);
        process_chunk(pairs, lo, hi, ws, sink, stats_);
      }
      return;
    }
    std::mutex stats_mutex;
    parallel::thread_pool pool(cfg_.threads);
    pool.parallel_for(0, n_chunks, [&](index_t c) {
      const std::size_t lo = static_cast<std::size_t>(c) * Lanes;
      const std::size_t hi = std::min(pairs.size(), lo + Lanes);
      batch_stats local{};
      // Worker-private scratch: the caller's arena is single-threaded.
      workspace chunk_ws;
      process_chunk(pairs, lo, hi, &chunk_ws, sink, local);
      std::lock_guard lock(stats_mutex);
      stats_.simd_pairs += local.simd_pairs;
      stats_.scalar_pairs += local.scalar_pairs;
    });
  }

  template <class Pair, class Sink>
  void process_chunk(std::span<const Pair> pairs, std::size_t lo,
                     std::size_t hi, workspace* ws, Sink& sink,
                     batch_stats& stats) {
    const std::size_t count = hi - lo;
    bool uniform = count == static_cast<std::size_t>(Lanes);
    const index_t n = pairs[lo].q.size(), m = pairs[lo].s.size();
    for (std::size_t i = lo; i < hi && uniform; ++i)
      uniform = pairs[i].q.size() == n && pairs[i].s.size() == m;
    const score_t unit =
        std::max(scoring_.max_abs_unit(),
                 std::max(std::abs(gap_.open_extend()),
                          std::abs(gap_.extend())));
    uniform = uniform && n > 0 && m > 0 && (n + m + 2) * unit < 28000;

    if (!uniform) {
      for (std::size_t i = lo; i < hi; ++i) {
        const auto r = rolling_score<K>(pairs[i].q, pairs[i].s, gap_,
                                        scoring_, *ws);
        sink(i, r);
        ++stats.scalar_pairs;
      }
      return;
    }
    simd_chunk(pairs, lo, n, m, *ws, sink);
    stats.simd_pairs += Lanes;
  }

  template <class Pair, class Sink>
  void simd_chunk(std::span<const Pair> pairs, std::size_t lo, index_t n,
                  index_t m, workspace& ws, Sink& sink) {
    workspace::frame fr(ws);
    auto h = ws.make<p16>(static_cast<std::size_t>(m + 1));
    auto e = ws.make<p16>(static_cast<std::size_t>(m + 1),
                          p16::broadcast(neg_inf16()));
    auto schars = ws.make<p16>(static_cast<std::size_t>(m + 1));

    for (index_t j = 0; j <= m; ++j) {
      h[j] = p16::broadcast(
          static_cast<score16_t>(init_h_row0<K>(j, gap_)));
      p16 sv = p16::broadcast(0);
      if (j > 0) {
        for (int l = 0; l < Lanes; ++l)
          sv.v[l] = static_cast<score16_t>(pairs[lo + l].s[j - 1]);
      }
      schars[j] = sv;
    }

    p16 best_v = p16::broadcast(neg_inf16());
    p16 best_i = p16::broadcast(0), best_j = p16::broadcast(0);
    if constexpr (K == align_kind::semiglobal ||
                  K == align_kind::extension) {
      // Row-0 boundary candidates: (0, m) for semiglobal, all j for
      // extension (gap totals <= 0 make (0,0) = 0 the best boundary, but
      // track exactly anyway).
      if constexpr (K == align_kind::semiglobal) {
        best_v = h[m];
        best_j = p16::broadcast(static_cast<score16_t>(m));
      } else {
        best_v = p16::broadcast(0);
      }
    } else if constexpr (K == align_kind::local) {
      best_v = p16::broadcast(0);
    }

    for (index_t i = 1; i <= n; ++i) {
      p16 qc;
      for (int l = 0; l < Lanes; ++l)
        qc.v[l] = static_cast<score16_t>(pairs[lo + l].q[i - 1]);
      p16 diag = h[0];
      h[0] = p16::broadcast(static_cast<score16_t>(init_h_col0<K>(i, gap_)));
      p16 f = p16::broadcast(neg_inf16());
      const p16 row_i = p16::broadcast(static_cast<score16_t>(i));

      for (index_t j = 1; j <= m; ++j) {
        const prev_cells<p16> prev{diag, h[j], h[j - 1], e[j], f};
        const auto nx =
            relax<K, false, p16, p16, p16>(prev, qc, schars[j], gap_,
                                           scoring_);
        diag = h[j];
        h[j] = nx.h;
        e[j] = nx.e;
        f = nx.f;
        if constexpr (tracks_running_max(K)) {
          const auto better = vgt(nx.h, best_v);
          best_v = vselect(better, nx.h, best_v);
          best_i = vselect(better, row_i, best_i);
          best_j = vselect(better, p16::broadcast(static_cast<score16_t>(j)),
                           best_j);
        }
      }
      if constexpr (K == align_kind::semiglobal) {
        const auto better = vgt(h[m], best_v);
        best_v = vselect(better, h[m], best_v);
        best_i = vselect(better, row_i, best_i);
        best_j = vselect(better, p16::broadcast(static_cast<score16_t>(m)),
                         best_j);
      }
    }

    if constexpr (K == align_kind::semiglobal) {
      const p16 row_n = p16::broadcast(static_cast<score16_t>(n));
      for (index_t j = 0; j <= m; ++j) {
        const auto better = vgt(h[j], best_v);
        best_v = vselect(better, h[j], best_v);
        best_i = vselect(better, row_n, best_i);
        best_j = vselect(better, p16::broadcast(static_cast<score16_t>(j)),
                         best_j);
      }
    }

    for (int l = 0; l < Lanes; ++l) {
      score_result r;
      r.cells = static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(m);
      if constexpr (K == align_kind::global) {
        r.score = h[m].v[l];
        r.end_i = n;
        r.end_j = m;
      } else {
        r.score = best_v.v[l];
        r.end_i = best_i.v[l];
        r.end_j = best_j.v[l];
      }
      sink(lo + static_cast<std::size_t>(l), r);
    }
  }

  Gap gap_;
  Scoring scoring_;
  batch_config cfg_;
  batch_stats stats_{};
  workspace own_ws_;  ///< backs the one-shot convenience overloads
};

}  // namespace tiled
}  // namespace ANYSEQ_TARGET_NS
}  // namespace anyseq

#if ANYSEQ_TARGET == ANYSEQ_TARGET_SCALAR
namespace anyseq::tiled {
using v_scalar::tiled::batch_config;
using v_scalar::tiled::batch_engine;
using v_scalar::tiled::batch_stats;
using v_scalar::tiled::pair_view;
}  // namespace anyseq::tiled
#endif  // scalar exports

#endif  // per-target include guard
