/// \file batch_engine.hpp
/// Inter-sequence SIMD alignment of many short pairs (the paper's second
/// use case: millions of Illumina read pairs).  Lane `l` of every vector
/// instruction processes pair `l` of a chunk; chunks run in parallel on
/// the thread pool.
///
/// Adaptive precision: each uniform chunk picks the narrowest score
/// element type whose worst-case bound (n + m + 2) * unit provably fits —
/// int8 at twice the lane count when |score| <= 96, else the classic
/// 16-bit kernel below 28000, else the scalar rolling engine.  Forcing a
/// narrow precision through `batch_config` runs the *checked* kernel
/// instead: a sticky per-lane overflow mask flags any value that drifts
/// within one relax step of the representable window (where a saturating
/// add could silently clamp), and flagged pairs are transparently
/// re-scored by the int32 rolling engine inside the same workspace pass.
/// Unit-cost option sets can additionally hint the Myers bit-parallel
/// engine (core/bitpar.hpp) per pair.  Every mode returns results
/// byte-identical to the int32 path.
///
/// Mixed-length chunks no longer force the scalar fallback: when a group
/// of W consecutive pairs is not exactly uniform, `group_plan` pads each
/// lane to the chunk-max shape (nbar x mbar) as long as the padding
/// waste sum(nbar*mbar - n_l*m_l) stays within a configurable cap, and
/// the *ragged* kernel captures every lane's result at its own (n_l,
/// m_l) boundary through per-lane retirement masks — byte-identical to
/// the int32 rolling route in every mode, padded or not.  Only chunks
/// past the waste cap (or containing empty sequences) still take the
/// paper's Fig. 3 scalar dichotomy.
///
/// Plan/execute split: when run single-threaded (the service's
/// steady-state configuration on small hosts), every chunk's interleaved
/// rows come from the caller-owned workspace and the `*_into` entry
/// points write into caller-sized storage — zero allocations after
/// warm-up.  Multi-threaded runs pull groups off a shared atomic cursor
/// and carve from pooled per-worker arenas (caller-provided through
/// `batch_config::worker_ws`, or engine-owned), so the warm parallel
/// fan-out allocates nothing either.
///
/// The pair type is generic over anything with `.q`/`.s` views, so the
/// public `seq_pair` batches dispatch straight through without being
/// copied into per-target `pair_view` vectors first.

/// (per-target header: compiled into `anyseq::ANYSEQ_TARGET_NS::tiled`,
/// once per engine variant — see simd/foreach_target.hpp)

#include "simd/set_target.hpp"

#if defined(ANYSEQ_TILED_BATCH_ENGINE_HPP_) == defined(ANYSEQ_TARGET_TOGGLE)
#ifdef ANYSEQ_TILED_BATCH_ENGINE_HPP_
#undef ANYSEQ_TILED_BATCH_ENGINE_HPP_
#else
#define ANYSEQ_TILED_BATCH_ENGINE_HPP_
#endif

#include <atomic>
#include <bit>
#include <mutex>
#include <type_traits>
#include <vector>

#include "core/bitpar.hpp"
#include "core/errors.hpp"
#include "core/full_engine.hpp"
#include "core/rolling.hpp"
#include "core/init.hpp"
#include "core/relax.hpp"
#include "core/traceback.hpp"
#include "core/workspace.hpp"
#include "parallel/thread_pool.hpp"
#include "simd/pack.hpp"

namespace anyseq {
namespace ANYSEQ_TARGET_NS {
namespace tiled {

/// One alignment job.
struct pair_view {
  stage::seq_view q, s;
};

struct batch_config {
  int threads = 1;
  /// Precision hint (engine::classify_batch_precision): auto_select
  /// resolves per chunk from the worst-case bound; a forced narrow type
  /// runs the checked kernel + escalation; bitpar runs the bit-parallel
  /// engine per pair (the caller guarantees a unit-cost option set).
  score_precision precision = score_precision::auto_select;
  /// Padding-waste cap (percent) for ragged chunks: a mixed-length group
  /// is lane-padded to its chunk-max shape while the padded-cell
  /// overhead stays within this fraction of the padded chunk; 0 disables
  /// lane padding (mixed-length groups roll scalar, the pre-ragged
  /// behavior).
  int pad_waste_cap_pct = 25;
  /// Per-worker arenas for the multi-threaded fan-out (one per thread).
  /// When empty (direct instantiation), the engine pools its own.
  std::span<workspace> worker_ws{};
};

/// Statistics for tests/benches: how much work took which path.  The
/// struct itself is the shared-baseline `anyseq::batch_stats`
/// (core/result.hpp) — it crosses the engine::ops dispatch boundary.
using batch_stats = ::anyseq::batch_stats;

/// Worst per-cell score delta of one relax step under (gap, scoring) —
/// the `unit` of the (n + m + 2) * unit bound and of the checked
/// kernel's saturation watermarks.
template <class Gap, class Scoring>
[[nodiscard]] inline score_t unit_step(const Gap& gap,
                                       const Scoring& scoring) noexcept {
  return std::max(scoring.max_abs_unit(),
                  std::max<score_t>(std::abs(gap.open_extend()),
                                    std::abs(gap.extend())));
}

/// Arena bytes one narrow chunk pass carves (h + e + subject-char rows).
template <class E, int W>
[[nodiscard]] inline std::size_t narrow_chunk_plan_bytes(index_t m) noexcept {
  return 3 * carve_bytes<simd::pack<E, W>>(static_cast<std::size_t>(m + 1));
}

/// Relax one uniform chunk of `W` equal-shape (n x m) pairs with score
/// element type E, calling `sink(pair_index, result)` for every lane that
/// completed safely.  Returns a bitmask of lanes the caller must escalate
/// to the int32 rolling engine (always 0 when !Checked — the caller has
/// proven the worst-case bound fits E).
///
/// Checked mode maintains a sticky per-lane mask: a lane is flagged the
/// moment any H value (or, for affine gaps, any E/F value) leaves the
/// window [sentinel + step, max(E) - step].  Inside that window every
/// saturating add is exact (its operands are at least one `step` away
/// from both rails), so by induction an unflagged lane never clamped and
/// its score is exact; everything else is shed.  Lane-uniform hazards —
/// boundary inits outside the window, end-cell indices that do not fit
/// E, a step wider than the window itself — escalate the whole chunk
/// upfront.
template <align_kind K, class E, int W, bool Checked, class Gap,
          class Scoring, class Pair, class Sink>
std::uint64_t narrow_chunk_score(std::span<const Pair> pairs, std::size_t lo,
                                 index_t n, index_t m, const Gap& gap,
                                 const Scoring& scoring, workspace& ws,
                                 Sink&& sink) {
  using P = simd::pack<E, W>;
  constexpr E kSentinel = sizeof(E) == 1 ? static_cast<E>(neg_inf8())
                                         : static_cast<E>(neg_inf16());
  constexpr score_t kMax = std::numeric_limits<E>::max();
  const std::uint64_t all =
      W >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << W) - 1);
  const score_t step = unit_step(gap, scoring);
  const score_t hi_w = kMax - step;
  const score_t lo_w = static_cast<score_t>(kSentinel) + step;

  if constexpr (Checked) {
    if (hi_w < lo_w) return all;  // step wider than the usable window
    const score_t bmin =
        std::min(std::min(init_h_row0<K>(index_t{0}, gap),
                          init_h_row0<K>(m, gap)),
                 std::min(init_h_col0<K>(index_t{0}, gap),
                          init_h_col0<K>(n, gap)));
    if (bmin < lo_w) return all;  // boundary already in the shed zone
    if constexpr (K != align_kind::global)
      if (n > kMax || m > kMax) return all;  // lane-typed end indices
  }

  workspace::frame fr(ws);
  auto h = ws.make<P>(static_cast<std::size_t>(m + 1));
  auto e = ws.make<P>(static_cast<std::size_t>(m + 1),
                      P::broadcast(kSentinel));
  auto schars = ws.make<P>(static_cast<std::size_t>(m + 1));

  for (index_t j = 0; j <= m; ++j) {
    h[j] = P::broadcast(static_cast<E>(init_h_row0<K>(j, gap)));
    P sv = P::broadcast(0);
    if (j > 0) {
      for (int l = 0; l < W; ++l)
        sv.v[l] = static_cast<E>(pairs[lo + static_cast<std::size_t>(l)]
                                     .s[j - 1]);
    }
    schars[j] = sv;
  }

  P sticky = P::broadcast(0);
  P hi_p = P::broadcast(0), lo_p = P::broadcast(0);
  if constexpr (Checked) {
    hi_p = P::broadcast(static_cast<E>(hi_w));
    lo_p = P::broadcast(static_cast<E>(lo_w));
  }

  P best_v = P::broadcast(kSentinel);
  P best_i = P::broadcast(0), best_j = P::broadcast(0);
  if constexpr (K == align_kind::semiglobal ||
                K == align_kind::extension) {
    // Row-0 boundary candidates: (0, m) for semiglobal, all j for
    // extension (gap totals <= 0 make (0,0) = 0 the best boundary, but
    // track exactly anyway).
    if constexpr (K == align_kind::semiglobal) {
      best_v = h[m];
      best_j = P::broadcast(static_cast<E>(m));
    } else {
      best_v = P::broadcast(0);
    }
  } else if constexpr (K == align_kind::local) {
    best_v = P::broadcast(0);
  }

  for (index_t i = 1; i <= n; ++i) {
    P qc;
    for (int l = 0; l < W; ++l)
      qc.v[l] =
          static_cast<E>(pairs[lo + static_cast<std::size_t>(l)].q[i - 1]);
    P diag = h[0];
    h[0] = P::broadcast(static_cast<E>(init_h_col0<K>(i, gap)));
    P f = P::broadcast(kSentinel);
    const P row_i = P::broadcast(static_cast<E>(i));

    for (index_t j = 1; j <= m; ++j) {
      const prev_cells<P> prev{diag, h[j], h[j - 1], e[j], f};
      const auto nx =
          relax<K, false, P, P, P>(prev, qc, schars[j], gap, scoring);
      diag = h[j];
      h[j] = nx.h;
      e[j] = nx.e;
      f = nx.f;
      if constexpr (Checked) {
        // High rail: only H grows (gap penalties are <= 0, so E/F never
        // exceed their H sources).  Low rail: any value near the
        // sentinel may have clamped — for affine gaps E/F are carried
        // across cells and must be watched too; for linear gaps they
        // are consumed into this H immediately.
        P bad = vgt(nx.h, hi_p);
        bad = vor(bad, vgt(lo_p, nx.h));
        if constexpr (Gap::kind == gap_kind::affine) {
          bad = vor(bad, vgt(lo_p, nx.e));
          bad = vor(bad, vgt(lo_p, nx.f));
        }
        sticky = vor(sticky, bad);
      }
      if constexpr (tracks_running_max(K)) {
        const auto better = vgt(nx.h, best_v);
        best_v = vselect(better, nx.h, best_v);
        best_i = vselect(better, row_i, best_i);
        best_j = vselect(better, P::broadcast(static_cast<E>(j)), best_j);
      }
    }
    if constexpr (K == align_kind::semiglobal) {
      const auto better = vgt(h[m], best_v);
      best_v = vselect(better, h[m], best_v);
      best_i = vselect(better, row_i, best_i);
      best_j = vselect(better, P::broadcast(static_cast<E>(m)), best_j);
    }
  }

  if constexpr (K == align_kind::semiglobal) {
    const P row_n = P::broadcast(static_cast<E>(n));
    for (index_t j = 0; j <= m; ++j) {
      const auto better = vgt(h[j], best_v);
      best_v = vselect(better, h[j], best_v);
      best_i = vselect(better, row_n, best_i);
      best_j = vselect(better, P::broadcast(static_cast<E>(j)), best_j);
    }
  }

  std::uint64_t esc = 0;
  if constexpr (Checked) {
    for (int l = 0; l < W; ++l)
      if (sticky.v[l] != 0) esc |= std::uint64_t{1} << l;
  }
  for (int l = 0; l < W; ++l) {
    if ((esc >> l) & 1) continue;
    score_result r;
    r.cells = static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(m);
    if constexpr (K == align_kind::global) {
      r.score = h[m].v[l];
      r.end_i = n;
      r.end_j = m;
    } else {
      r.score = best_v.v[l];
      r.end_i = best_i.v[l];
      r.end_j = best_j.v[l];
    }
    sink(lo + static_cast<std::size_t>(l), r);
  }
  return esc;
}

/// Arena bytes one ragged (lane-padded) chunk pass carves: the three
/// narrow rows plus the per-column validity and last-column masks.
template <class E, int W>
[[nodiscard]] inline std::size_t ragged_chunk_plan_bytes(index_t m) noexcept {
  return 5 * carve_bytes<simd::pack<E, W>>(static_cast<std::size_t>(m + 1));
}

/// Relax one *ragged* chunk of `W` non-empty pairs lane-padded to the
/// chunk-max shape (nbar x mbar), with each lane's true shape (n_l, m_l)
/// read from its pair.  Calls `sink(pair_index, result)` for every lane
/// that completed safely; returns the bitmask of lanes to escalate,
/// exactly like narrow_chunk_score.
///
/// Correctness of padding: a DP cell (i, j) reads only cells with
/// smaller indices and the lane-uniform boundary inits, so lane l's
/// valid region (i <= n_l, j <= m_l) is computed from real characters
/// only; cells beyond it hold garbage that no valid cell ever reads
/// (saturating adds keep the garbage clamped, never wrapped into UB).
/// Each lane's result is captured at its own boundary — "retirement"
/// after row i == n_l, before the padded rows beyond can touch anything:
///   * global: h[m_l] at retirement is exactly H(n_l, m_l).
///   * local/extension: the per-cell running max is masked to
///     colmask[j] & alive, so the candidate visit order over *valid*
///     cells is row-major — identical to rolling_score's, strict-> ties
///     included.
///   * semiglobal: last-column candidates fire per cell under the
///     colend[j] mask (the lane whose subject ends at column j), the
///     row-0 candidate is seeded per lane at (0, m_l), and the final-row
///     sweep runs j-ascending at retirement — rolling_score's exact
///     candidate order.
/// Checked mode masks the sticky overflow test to colmask[j] & alive, so
/// clamped garbage in the padded region never sheds a healthy lane; the
/// lane-uniform upfront bails are judged on (nbar, mbar), which is
/// conservative (never admits an unsafe lane).
template <align_kind K, class E, int W, bool Checked, class Gap,
          class Scoring, class Pair, class Sink>
std::uint64_t ragged_chunk_score(std::span<const Pair> pairs, std::size_t lo,
                                 index_t nbar, index_t mbar, const Gap& gap,
                                 const Scoring& scoring, workspace& ws,
                                 Sink&& sink) {
  using P = simd::pack<E, W>;
  constexpr E kSentinel = sizeof(E) == 1 ? static_cast<E>(neg_inf8())
                                         : static_cast<E>(neg_inf16());
  constexpr score_t kMax = std::numeric_limits<E>::max();
  const std::uint64_t all =
      W >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << W) - 1);
  const score_t step = unit_step(gap, scoring);
  const score_t hi_w = kMax - step;
  const score_t lo_w = static_cast<score_t>(kSentinel) + step;

  if constexpr (Checked) {
    if (hi_w < lo_w) return all;  // step wider than the usable window
    const score_t bmin =
        std::min(std::min(init_h_row0<K>(index_t{0}, gap),
                          init_h_row0<K>(mbar, gap)),
                 std::min(init_h_col0<K>(index_t{0}, gap),
                          init_h_col0<K>(nbar, gap)));
    if (bmin < lo_w) return all;  // boundary already in the shed zone
    if constexpr (K != align_kind::global)
      if (nbar > kMax || mbar > kMax) return all;  // lane-typed indices
  }

  index_t nl[W], ml[W];
  for (int l = 0; l < W; ++l) {
    nl[l] = pairs[lo + static_cast<std::size_t>(l)].q.size();
    ml[l] = pairs[lo + static_cast<std::size_t>(l)].s.size();
  }

  workspace::frame fr(ws);
  auto h = ws.make<P>(static_cast<std::size_t>(mbar + 1));
  auto e = ws.make<P>(static_cast<std::size_t>(mbar + 1),
                      P::broadcast(kSentinel));
  auto schars = ws.make<P>(static_cast<std::size_t>(mbar + 1));
  auto colmask = ws.make<P>(static_cast<std::size_t>(mbar + 1));
  auto colend = ws.make<P>(static_cast<std::size_t>(mbar + 1));

  for (index_t j = 0; j <= mbar; ++j) {
    h[j] = P::broadcast(static_cast<E>(init_h_row0<K>(j, gap)));
    P sv = P::broadcast(0);
    P cm = P::broadcast(0);
    for (int l = 0; l < W; ++l) {
      if (j <= ml[l]) {
        cm.v[l] = static_cast<E>(-1);
        if (j > 0)
          sv.v[l] = static_cast<E>(
              pairs[lo + static_cast<std::size_t>(l)].s[j - 1]);
      }
    }
    schars[j] = sv;
    colmask[j] = cm;
  }
  // colend[j]: lanes whose subject ends exactly at column j (the
  // column-side retirement boundary).
  for (index_t j = 0; j < mbar; ++j)
    colend[j] = vandnot(colmask[j], colmask[j + 1]);
  colend[mbar] = colmask[mbar];

  P sticky = P::broadcast(0);
  P hi_p = P::broadcast(0), lo_p = P::broadcast(0);
  if constexpr (Checked) {
    hi_p = P::broadcast(static_cast<E>(hi_w));
    lo_p = P::broadcast(static_cast<E>(lo_w));
  }

  // Per-lane bests, initialized exactly as rolling_score initializes
  // them — per lane at that lane's true shape.
  P best_v = P::broadcast(kSentinel);
  P best_i = P::broadcast(0), best_j = P::broadcast(0);
  if constexpr (K == align_kind::semiglobal) {
    for (int l = 0; l < W; ++l) {
      best_v.v[l] = static_cast<E>(init_h_row0<K>(ml[l], gap));
      best_j.v[l] = static_cast<E>(ml[l]);
    }
  } else if constexpr (tracks_running_max(K)) {
    best_v = P::broadcast(0);  // boundary totals are <= 0 (see narrow)
  }

  P alive = P::broadcast(static_cast<E>(-1));  // lanes with i <= n_l

  std::uint64_t esc = 0;
  for (index_t i = 1; i <= nbar; ++i) {
    P qc = P::broadcast(0);
    for (int l = 0; l < W; ++l)
      if (i <= nl[l])
        qc.v[l] = static_cast<E>(
            pairs[lo + static_cast<std::size_t>(l)].q[i - 1]);
    P diag = h[0];
    h[0] = P::broadcast(static_cast<E>(init_h_col0<K>(i, gap)));
    P f = P::broadcast(kSentinel);
    const P row_i = P::broadcast(static_cast<E>(i));

    for (index_t j = 1; j <= mbar; ++j) {
      const prev_cells<P> prev{diag, h[j], h[j - 1], e[j], f};
      const auto nx =
          relax<K, false, P, P, P>(prev, qc, schars[j], gap, scoring);
      diag = h[j];
      h[j] = nx.h;
      e[j] = nx.e;
      f = nx.f;
      if constexpr (Checked) {
        P bad = vgt(nx.h, hi_p);
        bad = vor(bad, vgt(lo_p, nx.h));
        if constexpr (Gap::kind == gap_kind::affine) {
          bad = vor(bad, vgt(lo_p, nx.e));
          bad = vor(bad, vgt(lo_p, nx.f));
        }
        // Only a lane's own valid region may shed it — padded cells
        // clamp freely and harmlessly.
        sticky = vor(sticky, vand(bad, vand(colmask[j], alive)));
      }
      if constexpr (tracks_running_max(K)) {
        const auto better =
            vand(vgt(nx.h, best_v), vand(colmask[j], alive));
        best_v = vselect(better, nx.h, best_v);
        best_i = vselect(better, row_i, best_i);
        best_j = vselect(better, P::broadcast(static_cast<E>(j)), best_j);
      }
      if constexpr (K == align_kind::semiglobal) {
        // Last-column candidate of the lane whose subject ends at j —
        // the same visit point as rolling_score's per-row h[m] check.
        const auto better =
            vand(vgt(nx.h, best_v), vand(colend[j], alive));
        best_v = vselect(better, nx.h, best_v);
        best_i = vselect(better, row_i, best_i);
        best_j = vselect(better, P::broadcast(static_cast<E>(j)), best_j);
      }
    }

    // Retirement: lanes whose query ends at this row capture their
    // result before the padded rows beyond n_l can touch anything.
    for (int l = 0; l < W; ++l) {
      if (nl[l] != i) continue;
      alive.v[l] = 0;
      if (Checked && sticky.v[l] != 0) {
        esc |= std::uint64_t{1} << l;
        continue;
      }
      score_result r;
      r.cells = static_cast<std::uint64_t>(nl[l]) *
                static_cast<std::uint64_t>(ml[l]);
      if constexpr (K == align_kind::global) {
        r.score = h[ml[l]].v[l];
        r.end_i = nl[l];
        r.end_j = ml[l];
      } else if constexpr (K == align_kind::semiglobal) {
        // Final-row sweep, j ascending with strict >, exactly as
        // rolling_score orders its last-row candidates.
        E bv = best_v.v[l];
        index_t bi = best_i.v[l], bj = best_j.v[l];
        for (index_t j = 0; j <= ml[l]; ++j) {
          if (h[j].v[l] > bv) {
            bv = h[j].v[l];
            bi = nl[l];
            bj = j;
          }
        }
        r.score = bv;
        r.end_i = bi;
        r.end_j = bj;
      } else {
        r.score = best_v.v[l];
        r.end_i = best_i.v[l];
        r.end_j = best_j.v[l];
      }
      sink(lo + static_cast<std::size_t>(l), r);
    }
  }
  return esc;
}

template <align_kind K, class Gap, class Scoring, int Lanes>
class batch_engine {
 public:
  /// int8 runs twice the lanes of the 16-bit kernel on the same vector
  /// width (and stays width 1 on the scalar variant).
  static constexpr int kLanes8 = Lanes > 1 ? 2 * Lanes : 1;

  batch_engine(Gap gap, Scoring scoring, batch_config cfg = {})
      : gap_(gap), scoring_(scoring), cfg_(cfg) {
    if (cfg_.threads < 1)
      throw invalid_argument_error("threads must be >= 1");
  }

  /// Score every pair into caller-sized `out` (order preserved),
  /// carving chunk scratch from `ws` when running single-threaded.
  template <class Pair>
  void score_into(std::span<const Pair> pairs, workspace& ws,
                  std::span<score_result> out) {
    ANYSEQ_CHECK(out.size() == pairs.size(),
                 "score_into: out must have one slot per pair");
    run(pairs, &ws,
        [&out](std::size_t idx, const score_result& r) { out[idx] = r; });
  }

  /// Align every pair with traceback into caller-sized `out` (order
  /// preserved), recycling each slot's string capacity.
  template <class Pair>
  void align_into(std::span<const Pair> pairs, workspace& ws,
                  std::span<alignment_result> out) {
    ANYSEQ_CHECK(out.size() == pairs.size(),
                 "align_into: out must have one slot per pair");
    stats_ = {};
    const auto count = static_cast<index_t>(pairs.size());
    if (cfg_.threads <= 1 || count <= 1) {
      full_engine<K, Gap, Scoring> eng(gap_, scoring_);
      for (index_t i = 0; i < count; ++i)
        eng.align_into(pairs[static_cast<std::size_t>(i)].q,
                       pairs[static_cast<std::size_t>(i)].s, true, ws,
                       out[static_cast<std::size_t>(i)]);
      stats_.scalar_pairs = static_cast<std::uint64_t>(count);
      return;
    }
    parallel::thread_pool pool(cfg_.threads);
    pool.parallel_for(0, count, [&](index_t i) {
      full_engine<K, Gap, Scoring> eng(gap_, scoring_);
      out[static_cast<std::size_t>(i)] =
          eng.align(pairs[static_cast<std::size_t>(i)].q,
                    pairs[static_cast<std::size_t>(i)].s, true);
    });
    stats_.scalar_pairs = static_cast<std::uint64_t>(count);
  }

  /// Score every pair (order preserved).
  [[nodiscard]] std::vector<score_t> scores(std::span<const pair_view> pairs) {
    std::vector<score_t> out(pairs.size());
    own_ws_.begin_pass();
    run(pairs, &own_ws_, [&](std::size_t idx, const score_result& r) {
      out[idx] = r.score;
    });
    return out;
  }

  /// Score every pair, keeping the full score_result — the optimum's end
  /// cell and cell count included (order preserved).  This is what the
  /// public `align_batch` score path uses so its results carry the same
  /// end coordinates as a per-pair `align` call.
  [[nodiscard]] std::vector<score_result> score_results(
      std::span<const pair_view> pairs) {
    std::vector<score_result> out(pairs.size());
    own_ws_.begin_pass();
    score_into(std::span<const pair_view>(pairs), own_ws_,
               std::span<score_result>(out));
    return out;
  }

  /// Align every pair with traceback (order preserved).
  [[nodiscard]] std::vector<alignment_result> align_all(
      std::span<const pair_view> pairs) {
    std::vector<alignment_result> out(pairs.size());
    own_ws_.begin_pass();
    align_into(std::span<const pair_view>(pairs), own_ws_,
               std::span<alignment_result>(out));
    return out;
  }

  [[nodiscard]] batch_stats last_stats() const noexcept { return stats_; }

 private:
  /// How one group of consecutive pairs executes.
  struct chunk_plan {
    std::size_t hi;        ///< group end (exclusive)
    score_precision prec;  ///< int8/int16 = narrow kernel at full width,
                           ///< bitpar = per pair, int32 = rolling per pair
    bool ragged = false;   ///< lane-padded kernel at (nbar x mbar)
    index_t nbar = 0, mbar = 0;  ///< padded chunk-max shape (ragged only)
  };

  /// Decide the widest/narrowest execution for the group starting at
  /// `lo`: a full uniform group at the narrow width when the (possibly
  /// forced) precision allows it; a lane-padded *ragged* group when the
  /// shapes differ but the padding waste stays within the cap; otherwise
  /// the rolling fallback over the classic Lanes-wide stride (identical
  /// chunking to the pre-precision engine for every non-narrow
  /// workload).  Deterministic in (pairs, lo) alone — the MT fan-out
  /// relies on workers re-deriving identical boundaries.
  template <class Pair>
  [[nodiscard]] chunk_plan group_plan(std::span<const Pair> pairs,
                                      std::size_t lo) const {
    const std::size_t tail =
        std::min(pairs.size(), lo + static_cast<std::size_t>(Lanes));
    if (cfg_.precision == score_precision::bitpar)
      return {lo + 1, score_precision::bitpar};
    if (cfg_.precision == score_precision::int32)
      return {tail, score_precision::int32};
    const index_t n = pairs[lo].q.size(), m = pairs[lo].s.size();
    const auto uniform = [&](std::size_t w) {
      if (n <= 0 || m <= 0 || lo + w > pairs.size()) return false;
      for (std::size_t i = lo; i < lo + w; ++i)
        if (pairs[i].q.size() != n || pairs[i].s.size() != m) return false;
      return true;
    };
    // Ragged admission: w consecutive non-empty pairs, padded to the
    // chunk-max shape, admitted while the padding waste
    // sum(nbar*mbar - n_l*m_l) stays within pad_waste_cap_pct percent of
    // the padded chunk w*nbar*mbar (past that the lanes burn more cells
    // on garbage than the scalar fallback would cost).
    const auto ragged_shape = [&](std::size_t w, index_t& nb, index_t& mb) {
      if (cfg_.pad_waste_cap_pct <= 0 || lo + w > pairs.size())
        return false;
      nb = 0;
      mb = 0;
      std::uint64_t used = 0;
      for (std::size_t i = lo; i < lo + w; ++i) {
        const index_t ni = pairs[i].q.size(), mi = pairs[i].s.size();
        if (ni <= 0 || mi <= 0) return false;
        nb = std::max(nb, ni);
        mb = std::max(mb, mi);
        used += static_cast<std::uint64_t>(ni) *
                static_cast<std::uint64_t>(mi);
      }
      const std::uint64_t padded = static_cast<std::uint64_t>(w) *
                                   static_cast<std::uint64_t>(nb) *
                                   static_cast<std::uint64_t>(mb);
      return (padded - used) * 100 <=
             padded * static_cast<std::uint64_t>(cfg_.pad_waste_cap_pct);
    };
    index_t nb = 0, mb = 0;
    if (cfg_.precision == score_precision::int8) {
      if (uniform(static_cast<std::size_t>(kLanes8)))
        return {lo + kLanes8, score_precision::int8};
      if (ragged_shape(static_cast<std::size_t>(kLanes8), nb, mb))
        return {lo + kLanes8, score_precision::int8, true, nb, mb};
      return {tail, score_precision::int32};
    }
    if (cfg_.precision == score_precision::int16) {
      if (uniform(static_cast<std::size_t>(Lanes)))
        return {lo + Lanes, score_precision::int16};
      if (ragged_shape(static_cast<std::size_t>(Lanes), nb, mb))
        return {lo + Lanes, score_precision::int16, true, nb, mb};
      return {tail, score_precision::int32};
    }
    // auto_select: narrowest element type whose worst-case bound fits
    // AND that can fill all its lanes — exactly-uniform groups first
    // (no masking overhead), lane-padded ragged groups second (the
    // bound is judged on the padded shape, so the unchecked kernel
    // stays provably exact for every lane).
    const score_t unit = unit_step(gap_, scoring_);
    if (fits_score_window(n, m, unit, int8_score_window()) &&
        uniform(static_cast<std::size_t>(kLanes8)))
      return {lo + kLanes8, score_precision::int8};
    if (fits_score_window(n, m, unit, int16_score_window()) &&
        uniform(static_cast<std::size_t>(Lanes)))
      return {lo + Lanes, score_precision::int16};
    if (ragged_shape(static_cast<std::size_t>(kLanes8), nb, mb) &&
        fits_score_window(nb, mb, unit, int8_score_window()))
      return {lo + kLanes8, score_precision::int8, true, nb, mb};
    if (ragged_shape(static_cast<std::size_t>(Lanes), nb, mb) &&
        fits_score_window(nb, mb, unit, int16_score_window()))
      return {lo + Lanes, score_precision::int16, true, nb, mb};
    return {tail, score_precision::int32};
  }

  template <class Pair, class Sink>
  void run(std::span<const Pair> pairs, workspace* ws, Sink&& sink) {
    stats_ = {};
    if (pairs.empty()) return;
    if (cfg_.threads <= 1 ||
        pairs.size() <= static_cast<std::size_t>(Lanes)) {
      // Serial: every group carves from the caller's arena.
      std::size_t lo = 0;
      while (lo < pairs.size()) {
        const chunk_plan g = group_plan(pairs, lo);
        process_group(pairs, lo, g, ws, sink, stats_);
        lo = g.hi;
      }
      return;
    }
    // Multi-threaded: workers claim groups off a shared cursor by CAS.
    // `group_plan` is a deterministic function of (pairs, lo), so a lost
    // race just re-derives the winner's boundary and moves on — no
    // boundary vector, no per-chunk workspace: each worker carves every
    // group from one pooled arena (caller-provided or engine-owned),
    // which regrows to its high-water mark once and then stays warm.
    const std::size_t want =
        (pairs.size() + static_cast<std::size_t>(Lanes) - 1) /
        static_cast<std::size_t>(Lanes);
    const auto workers = static_cast<index_t>(
        std::min<std::size_t>(static_cast<std::size_t>(cfg_.threads), want));
    std::span<workspace> pool_ws = cfg_.worker_ws;
    if (pool_ws.size() < static_cast<std::size_t>(workers)) {
      if (own_worker_ws_.size() < static_cast<std::size_t>(workers))
        own_worker_ws_.resize(static_cast<std::size_t>(workers));
      pool_ws = std::span<workspace>(own_worker_ws_);
    }
    std::atomic<std::size_t> cursor{0};
    std::mutex stats_mutex;
    parallel::thread_pool::global().parallel_for(
        0, workers,
        [&](index_t t) {
          workspace& wws = pool_ws[static_cast<std::size_t>(t)];
          wws.begin_pass();
          batch_stats local{};
          std::size_t lo = cursor.load(std::memory_order_relaxed);
          while (lo < pairs.size()) {
            const chunk_plan g = group_plan(pairs, lo);
            if (cursor.compare_exchange_weak(lo, g.hi,
                                             std::memory_order_relaxed)) {
              process_group(pairs, lo, g, &wws, sink, local);
              lo = g.hi;
            }
          }
          std::lock_guard lock(stats_mutex);
          stats_.simd_pairs += local.simd_pairs;
          stats_.scalar_pairs += local.scalar_pairs;
          stats_.int8_pairs += local.int8_pairs;
          stats_.int16_pairs += local.int16_pairs;
          stats_.bitpar_pairs += local.bitpar_pairs;
          stats_.escalated_pairs += local.escalated_pairs;
          stats_.ragged_pairs += local.ragged_pairs;
          stats_.padded_cells += local.padded_cells;
        },
        /*chunks_per_thread=*/1);
  }

  template <class Pair, class Sink>
  void process_group(std::span<const Pair> pairs, std::size_t lo,
                     const chunk_plan& g, workspace* ws, Sink& sink,
                     batch_stats& stats) {
    switch (g.prec) {
      case score_precision::int8:
        if (g.ragged)
          ragged_group<score8_t, kLanes8>(pairs, lo, g, *ws, sink, stats);
        else
          narrow_group<score8_t, kLanes8>(pairs, lo, *ws, sink, stats);
        return;
      case score_precision::int16:
        if (g.ragged)
          ragged_group<score16_t, Lanes>(pairs, lo, g, *ws, sink, stats);
        else
          narrow_group<score16_t, Lanes>(pairs, lo, *ws, sink, stats);
        return;
      case score_precision::bitpar:
        bitpar_pair(pairs, lo, *ws, sink, stats);
        return;
      default:
        for (std::size_t i = lo; i < g.hi; ++i) {
          sink(i, rolling_score<K>(pairs[i].q, pairs[i].s, gap_, scoring_,
                                   *ws));
          ++stats.scalar_pairs;
        }
        return;
    }
  }

  /// One full uniform group through the narrow kernel; flagged lanes are
  /// shed to the rolling engine in the same workspace pass.  auto mode
  /// proved the bound, so it runs unchecked; a forced precision runs the
  /// checked kernel.
  template <class E, int W, class Pair, class Sink>
  void narrow_group(std::span<const Pair> pairs, std::size_t lo,
                    workspace& ws, Sink& sink, batch_stats& stats) {
    const index_t n = pairs[lo].q.size(), m = pairs[lo].s.size();
    std::uint64_t esc = 0;
    if (cfg_.precision == score_precision::auto_select)
      esc = narrow_chunk_score<K, E, W, false>(pairs, lo, n, m, gap_,
                                               scoring_, ws, sink);
    else
      esc = narrow_chunk_score<K, E, W, true>(pairs, lo, n, m, gap_,
                                              scoring_, ws, sink);
    const auto shed = static_cast<std::uint64_t>(std::popcount(esc));
    const std::uint64_t ok = static_cast<std::uint64_t>(W) - shed;
    (sizeof(E) == 1 ? stats.int8_pairs : stats.int16_pairs) += ok;
    stats.simd_pairs += ok;
    for (int l = 0; l < W; ++l) {
      if (!((esc >> l) & 1)) continue;
      const std::size_t i = lo + static_cast<std::size_t>(l);
      sink(i, rolling_score<K>(pairs[i].q, pairs[i].s, gap_, scoring_, ws));
      ++stats.escalated_pairs;
      ++stats.scalar_pairs;
    }
  }

  /// One mixed-length group through the lane-padded kernel at the padded
  /// shape (g.nbar x g.mbar); each lane retires at its own true boundary.
  /// Same checked/unchecked split as `narrow_group` — auto mode proved
  /// the bound on the *padded* shape (which dominates every lane), so it
  /// runs unchecked; a forced precision runs the checked kernel and
  /// sheds flagged lanes to the rolling engine in the same pass.
  template <class E, int W, class Pair, class Sink>
  void ragged_group(std::span<const Pair> pairs, std::size_t lo,
                    const chunk_plan& g, workspace& ws, Sink& sink,
                    batch_stats& stats) {
    std::uint64_t esc = 0;
    if (cfg_.precision == score_precision::auto_select)
      esc = ragged_chunk_score<K, E, W, false>(pairs, lo, g.nbar, g.mbar,
                                               gap_, scoring_, ws, sink);
    else
      esc = ragged_chunk_score<K, E, W, true>(pairs, lo, g.nbar, g.mbar,
                                              gap_, scoring_, ws, sink);
    const auto shed = static_cast<std::uint64_t>(std::popcount(esc));
    const std::uint64_t ok = static_cast<std::uint64_t>(W) - shed;
    (sizeof(E) == 1 ? stats.int8_pairs : stats.int16_pairs) += ok;
    stats.simd_pairs += ok;
    stats.ragged_pairs += ok;
    std::uint64_t used = 0;
    for (int l = 0; l < W; ++l) {
      const auto& p = pairs[lo + static_cast<std::size_t>(l)];
      used += static_cast<std::uint64_t>(p.q.size()) *
              static_cast<std::uint64_t>(p.s.size());
    }
    stats.padded_cells += static_cast<std::uint64_t>(W) *
                              static_cast<std::uint64_t>(g.nbar) *
                              static_cast<std::uint64_t>(g.mbar) -
                          used;
    for (int l = 0; l < W; ++l) {
      if (!((esc >> l) & 1)) continue;
      const std::size_t i = lo + static_cast<std::size_t>(l);
      sink(i, rolling_score<K>(pairs[i].q, pairs[i].s, gap_, scoring_, ws));
      ++stats.escalated_pairs;
      ++stats.scalar_pairs;
    }
  }

  /// One pair through the bit-parallel engine when this instantiation
  /// can express it (global + linear + simple scoring — the classifier
  /// only hints bitpar for unit-cost option sets, which dispatch to
  /// exactly that instantiation); anything else rolls.
  template <class Pair, class Sink>
  void bitpar_pair(std::span<const Pair> pairs, std::size_t i,
                   workspace& ws, Sink& sink, batch_stats& stats) {
    if constexpr (K == align_kind::global &&
                  Gap::kind == gap_kind::linear &&
                  std::is_same_v<Scoring, simple_scoring>) {
      const auto& p = pairs[i];
      if (p.q.size() > 0 && p.s.size() > 0) {
        sink(i, bitpar_score(p.q, p.s, gap_.extend(), ws));
        ++stats.bitpar_pairs;
        return;
      }
    }
    sink(i, rolling_score<K>(pairs[i].q, pairs[i].s, gap_, scoring_, ws));
    ++stats.scalar_pairs;
  }

  Gap gap_;
  Scoring scoring_;
  batch_config cfg_;
  batch_stats stats_{};
  workspace own_ws_;  ///< backs the one-shot convenience overloads
  /// Engine-pooled per-worker arenas for the multi-threaded fan-out when
  /// the caller did not supply `batch_config::worker_ws`; grown once to
  /// the worker count, then recycled across runs.
  std::vector<workspace> own_worker_ws_;
};

}  // namespace tiled
}  // namespace ANYSEQ_TARGET_NS
}  // namespace anyseq

#if ANYSEQ_TARGET == ANYSEQ_TARGET_SCALAR
namespace anyseq::tiled {
using v_scalar::tiled::batch_config;
using v_scalar::tiled::batch_engine;
using v_scalar::tiled::batch_stats;
using v_scalar::tiled::narrow_chunk_plan_bytes;
using v_scalar::tiled::narrow_chunk_score;
using v_scalar::tiled::pair_view;
using v_scalar::tiled::ragged_chunk_plan_bytes;
using v_scalar::tiled::ragged_chunk_score;
using v_scalar::tiled::unit_step;
}  // namespace anyseq::tiled
#endif  // scalar exports

#endif  // per-target include guard
