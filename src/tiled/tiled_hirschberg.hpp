/// \file tiled_hirschberg.hpp
/// Long-sequence traceback: the core divide & conquer engine driven by the
/// multi-threaded tiled last-row passes — the composition the paper
/// obtains by passing a different iteration strategy into the same
/// algorithm skeleton.

/// (per-target header: compiled into `anyseq::ANYSEQ_TARGET_NS::tiled`,
/// once per engine variant — see simd/foreach_target.hpp)

#include "simd/set_target.hpp"

#if defined(ANYSEQ_TILED_TILED_HIRSCHBERG_HPP_) == defined(ANYSEQ_TARGET_TOGGLE)
#ifdef ANYSEQ_TILED_TILED_HIRSCHBERG_HPP_
#undef ANYSEQ_TILED_TILED_HIRSCHBERG_HPP_
#else
#define ANYSEQ_TILED_TILED_HIRSCHBERG_HPP_
#endif

#include "core/hirschberg.hpp"
#include "tiled/tiled_engine.hpp"

namespace anyseq {
namespace ANYSEQ_TARGET_NS {
namespace tiled {

/// Last-row strategy backed by the tiled MT engine.  Small subproblems
/// (below `serial_cells`) run serially — spawning workers for tiny passes
/// costs more than it saves ("recursion cutoff points", paper §V).
template <class Gap, class Scoring, int Lanes>
struct tiled_last_row {
  Gap gap;
  Scoring scoring;
  tiled_config cfg;
  index_t serial_cells = 1 << 16;

  template <stage::sequence_view QV, stage::sequence_view SV>
  void operator()(const QV& q, const SV& s, score_t tb,
                  std::span<score_t> hh, std::span<score_t> ee) const {
    if (q.size() * s.size() <= serial_cells) {
      nw_last_row(q, s, gap, scoring, tb, hh, ee);
      return;
    }
    tiled_engine<align_kind::global, Gap, Scoring, Lanes> eng(gap, scoring,
                                                              cfg);
    eng.last_row(q, s, tb, hh, ee);
  }
};

/// Linear-space global alignment with traceback, multi-threaded and
/// SIMD-accelerated — the paper's "traceback" benchmark configuration.
template <int Lanes, class Gap, class Scoring>
[[nodiscard]] alignment_result tiled_hirschberg_align(
    stage::seq_view q, stage::seq_view s, const Gap& gap,
    const Scoring& scoring, tiled_config cfg = {},
    index_t base_cells = 1 << 14) {
  using lr = tiled_last_row<Gap, Scoring, Lanes>;
  hirschberg_engine<Gap, Scoring, lr> eng(
      gap, scoring, lr{gap, scoring, cfg}, {base_cells});
  return eng.align(q, s);
}

}  // namespace tiled
}  // namespace ANYSEQ_TARGET_NS
}  // namespace anyseq

#if ANYSEQ_TARGET == ANYSEQ_TARGET_SCALAR
namespace anyseq::tiled {
using v_scalar::tiled::tiled_hirschberg_align;
using v_scalar::tiled::tiled_last_row;
}  // namespace anyseq::tiled
#endif  // scalar exports

#endif  // per-target include guard
