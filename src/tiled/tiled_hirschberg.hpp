/// \file tiled_hirschberg.hpp
/// Long-sequence traceback: the core divide & conquer engine driven by the
/// multi-threaded tiled last-row passes — the composition the paper
/// obtains by passing a different iteration strategy into the same
/// algorithm skeleton.

/// (per-target header: compiled into `anyseq::ANYSEQ_TARGET_NS::tiled`,
/// once per engine variant — see simd/foreach_target.hpp)

#include "simd/set_target.hpp"

#if defined(ANYSEQ_TILED_TILED_HIRSCHBERG_HPP_) == defined(ANYSEQ_TARGET_TOGGLE)
#ifdef ANYSEQ_TILED_TILED_HIRSCHBERG_HPP_
#undef ANYSEQ_TILED_TILED_HIRSCHBERG_HPP_
#else
#define ANYSEQ_TILED_TILED_HIRSCHBERG_HPP_
#endif

#include "core/hirschberg.hpp"
#include "tiled/tiled_engine.hpp"

namespace anyseq {
namespace ANYSEQ_TARGET_NS {
namespace tiled {

/// Last-row strategy backed by the tiled MT engine.  Small subproblems
/// (below `serial_cells`) run serially — spawning workers for tiny passes
/// costs more than it saves ("recursion cutoff points", paper §V).
///
/// When `ws` is set, the tiled engine carves its lattice and worker
/// scratch from that workspace (nested inside the enclosing Hirschberg
/// frame); otherwise each pass owns a throwaway engine workspace.
template <class Gap, class Scoring, int Lanes>
struct tiled_last_row {
  Gap gap;
  Scoring scoring;
  tiled_config cfg;
  index_t serial_cells = 1 << 16;
  workspace* ws = nullptr;

  template <stage::sequence_view QV, stage::sequence_view SV>
  void operator()(const QV& q, const SV& s, score_t tb,
                  std::span<score_t> hh, std::span<score_t> ee) const {
    if (q.size() * s.size() <= serial_cells) {
      nw_last_row(q, s, gap, scoring, tb, hh, ee);
      return;
    }
    tiled_engine<align_kind::global, Gap, Scoring, Lanes> eng(gap, scoring,
                                                              cfg);
    if (ws != nullptr)
      eng.last_row(q, s, tb, hh, ee, *ws);
    else
      eng.last_row(q, s, tb, hh, ee);
  }
};

/// Arena bytes one tiled Hirschberg pass carves (the plan side): the
/// Hirschberg quadruple/base-case peak with the tiled engine's largest
/// last-row pass (the first one, over n/2 x m) as the strategy extra.
template <int Lanes, class Gap, class Scoring>
[[nodiscard]] std::size_t tiled_hirschberg_plan_bytes(index_t n, index_t m,
                                                      const tiled_config& cfg,
                                                      index_t base_cells) {
  using eng_t = tiled_engine<align_kind::global, Gap, Scoring, Lanes>;
  const std::size_t last_row_extra =
      eng_t::plan_bytes(n / 2 + 1, m, cfg);
  return hirschberg_engine<
      Gap, Scoring, tiled_last_row<Gap, Scoring, Lanes>>::plan_bytes(
      n, m, base_cells, last_row_extra);
}

/// Linear-space global alignment with traceback, multi-threaded and
/// SIMD-accelerated — the paper's "traceback" benchmark configuration.
/// Carves everything from `ws`, recycling `out`'s buffers.
template <int Lanes, class Gap, class Scoring>
void tiled_hirschberg_align_into(stage::seq_view q, stage::seq_view s,
                                 const Gap& gap, const Scoring& scoring,
                                 tiled_config cfg, index_t base_cells,
                                 workspace& ws, alignment_result& out) {
  using lr = tiled_last_row<Gap, Scoring, Lanes>;
  lr last_row{gap, scoring, cfg};  // serial_cells keeps its ONE default
  last_row.ws = &ws;
  hirschberg_engine<Gap, Scoring, lr> eng(gap, scoring, last_row,
                                          {base_cells});
  eng.align_into(q, s, ws, out);
}

/// One-shot convenience with a private throwaway workspace.
template <int Lanes, class Gap, class Scoring>
[[nodiscard]] alignment_result tiled_hirschberg_align(
    stage::seq_view q, stage::seq_view s, const Gap& gap,
    const Scoring& scoring, tiled_config cfg = {},
    index_t base_cells = 1 << 14) {
  workspace ws;
  alignment_result out;
  tiled_hirschberg_align_into<Lanes>(q, s, gap, scoring, cfg, base_cells, ws,
                                     out);
  return out;
}

}  // namespace tiled
}  // namespace ANYSEQ_TARGET_NS
}  // namespace anyseq

#if ANYSEQ_TARGET == ANYSEQ_TARGET_SCALAR
namespace anyseq::tiled {
using v_scalar::tiled::tiled_hirschberg_align;
using v_scalar::tiled::tiled_hirschberg_align_into;
using v_scalar::tiled::tiled_hirschberg_plan_bytes;
using v_scalar::tiled::tiled_last_row;
}  // namespace anyseq::tiled
#endif  // scalar exports

#endif  // per-target include guard
