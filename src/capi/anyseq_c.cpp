#include "capi/anyseq_c.h"

#include <cstring>

#include "anyseq/anyseq.hpp"

namespace {

using anyseq::align_kind;
using anyseq::align_options;

anyseq_score_t guarded(const char* q, const char* s,
                       const align_options& opt, char* q_out, char* s_out,
                       int64_t* q_begin, int64_t* s_begin) {
  if (q == nullptr || s == nullptr) return ANYSEQ_C_ERROR;
  try {
    const auto r = anyseq::align_strings(q, s, opt);
    if (opt.want_alignment) {
      if (q_out != nullptr) {
        std::memcpy(q_out, r.q_aligned.c_str(), r.q_aligned.size() + 1);
      }
      if (s_out != nullptr) {
        std::memcpy(s_out, r.s_aligned.c_str(), r.s_aligned.size() + 1);
      }
      if (q_begin != nullptr) *q_begin = r.q_begin;
      if (s_begin != nullptr) *s_begin = r.s_begin;
    }
    return r.score;
  } catch (const anyseq::error&) {
    return ANYSEQ_C_ERROR;
  }
}

}  // namespace

extern "C" {

anyseq_score_t anyseq_global_score(const char* query, const char* subject,
                                   anyseq_score_t match,
                                   anyseq_score_t mismatch,
                                   anyseq_score_t gap) {
  align_options opt;
  opt.kind = align_kind::global;
  opt.match = match;
  opt.mismatch = mismatch;
  opt.gap_extend = gap;
  return guarded(query, subject, opt, nullptr, nullptr, nullptr, nullptr);
}

anyseq_score_t anyseq_local_score(const char* query, const char* subject,
                                  anyseq_score_t match,
                                  anyseq_score_t mismatch,
                                  anyseq_score_t gap_open,
                                  anyseq_score_t gap_extend) {
  align_options opt;
  opt.kind = align_kind::local;
  opt.match = match;
  opt.mismatch = mismatch;
  opt.gap_open = gap_open;
  opt.gap_extend = gap_extend;
  return guarded(query, subject, opt, nullptr, nullptr, nullptr, nullptr);
}

anyseq_score_t anyseq_semiglobal_score(const char* query,
                                       const char* subject,
                                       anyseq_score_t match,
                                       anyseq_score_t mismatch,
                                       anyseq_score_t gap) {
  align_options opt;
  opt.kind = align_kind::semiglobal;
  opt.match = match;
  opt.mismatch = mismatch;
  opt.gap_extend = gap;
  return guarded(query, subject, opt, nullptr, nullptr, nullptr, nullptr);
}

anyseq_score_t anyseq_construct_global_alignment(const char* query,
                                                 const char* subject,
                                                 char* q_aligned,
                                                 char* s_aligned) {
  // The paper's stock parameterization: +2 match, -1 mismatch, -1 linear.
  align_options opt;
  opt.kind = align_kind::global;
  opt.want_alignment = true;
  return guarded(query, subject, opt, q_aligned, s_aligned, nullptr,
                 nullptr);
}

anyseq_score_t anyseq_construct_global_alignment_affine(
    const char* query, const char* subject, anyseq_score_t match,
    anyseq_score_t mismatch, anyseq_score_t gap_open,
    anyseq_score_t gap_extend, char* q_aligned, char* s_aligned) {
  align_options opt;
  opt.kind = align_kind::global;
  opt.want_alignment = true;
  opt.match = match;
  opt.mismatch = mismatch;
  opt.gap_open = gap_open;
  opt.gap_extend = gap_extend;
  return guarded(query, subject, opt, q_aligned, s_aligned, nullptr,
                 nullptr);
}

anyseq_score_t anyseq_construct_local_alignment(
    const char* query, const char* subject, anyseq_score_t match,
    anyseq_score_t mismatch, anyseq_score_t gap_open,
    anyseq_score_t gap_extend, char* q_aligned, char* s_aligned,
    int64_t* q_begin, int64_t* s_begin) {
  align_options opt;
  opt.kind = align_kind::local;
  opt.want_alignment = true;
  opt.match = match;
  opt.mismatch = mismatch;
  opt.gap_open = gap_open;
  opt.gap_extend = gap_extend;
  return guarded(query, subject, opt, q_aligned, s_aligned, q_begin,
                 s_begin);
}

const char* anyseq_version(void) { return anyseq::version(); }

const char* anyseq_backend_name(void) {
  // auto_select never throws: it falls back to the widest safe variant.
  return anyseq::backend_name(align_options{});
}

}  // extern "C"
