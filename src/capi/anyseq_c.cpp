#include "capi/anyseq_c.h"

#include <cstring>
#include <memory>
#include <new>

#include "anyseq/anyseq.hpp"
#include "service/router.hpp"
#include "service/service.hpp"
#include "service/trace.hpp"

/// C-side service handle: a thin box around the sharded service group
/// (anyseq_service_create makes a 1-shard, cache-less group, so the
/// legacy entry point behaves exactly like the pre-sharding service).
struct anyseq_service {
  anyseq::service::service_group impl;
  explicit anyseq_service(anyseq::service::service_group::config cfg)
      : impl(cfg) {}
};

/// C-side reusable aligner: the C++ plan/execute handle plus recycled
/// encode buffers and a recycled result, so repeated score calls do not
/// allocate once warm.
struct anyseq_aligner {
  anyseq::aligner impl;
  std::vector<anyseq::char_t> qbuf, sbuf;  ///< reused DNA-encode storage
  anyseq::alignment_result out;            ///< reused result buffers
};

/// C-side ticket handle; consumed (and deleted) by wait/discard.
struct anyseq_ticket {
  anyseq::service::ticket impl;
  bool want_alignment = false;
};

namespace {

using anyseq::align_kind;
using anyseq::align_options;

/// Process-wide trace collector owned by the C API; armed by
/// anyseq_tracing_start, torn down by anyseq_tracing_stop.
std::unique_ptr<anyseq::service::trace::collector> g_capi_collector;

anyseq_score_t guarded(const char* q, const char* s,
                       const align_options& opt, char* q_out, char* s_out,
                       int64_t* q_begin, int64_t* s_begin) {
  if (q == nullptr || s == nullptr) return ANYSEQ_C_ERROR;
  try {
    const auto r = anyseq::align_strings(q, s, opt);
    if (opt.want_alignment) {
      if (q_out != nullptr) {
        std::memcpy(q_out, r.q_aligned.c_str(), r.q_aligned.size() + 1);
      }
      if (s_out != nullptr) {
        std::memcpy(s_out, r.s_aligned.c_str(), r.s_aligned.size() + 1);
      }
      if (q_begin != nullptr) *q_begin = r.q_begin;
      if (s_begin != nullptr) *s_begin = r.s_begin;
    }
    return r.score;
  } catch (const anyseq::error&) {
    return ANYSEQ_C_ERROR;
  }
}

}  // namespace

extern "C" {

anyseq_score_t anyseq_global_score(const char* query, const char* subject,
                                   anyseq_score_t match,
                                   anyseq_score_t mismatch,
                                   anyseq_score_t gap) {
  align_options opt;
  opt.kind = align_kind::global;
  opt.match = match;
  opt.mismatch = mismatch;
  opt.gap_extend = gap;
  return guarded(query, subject, opt, nullptr, nullptr, nullptr, nullptr);
}

anyseq_score_t anyseq_local_score(const char* query, const char* subject,
                                  anyseq_score_t match,
                                  anyseq_score_t mismatch,
                                  anyseq_score_t gap_open,
                                  anyseq_score_t gap_extend) {
  align_options opt;
  opt.kind = align_kind::local;
  opt.match = match;
  opt.mismatch = mismatch;
  opt.gap_open = gap_open;
  opt.gap_extend = gap_extend;
  return guarded(query, subject, opt, nullptr, nullptr, nullptr, nullptr);
}

anyseq_score_t anyseq_semiglobal_score(const char* query,
                                       const char* subject,
                                       anyseq_score_t match,
                                       anyseq_score_t mismatch,
                                       anyseq_score_t gap) {
  align_options opt;
  opt.kind = align_kind::semiglobal;
  opt.match = match;
  opt.mismatch = mismatch;
  opt.gap_extend = gap;
  return guarded(query, subject, opt, nullptr, nullptr, nullptr, nullptr);
}

anyseq_score_t anyseq_construct_global_alignment(const char* query,
                                                 const char* subject,
                                                 char* q_aligned,
                                                 char* s_aligned) {
  // The paper's stock parameterization: +2 match, -1 mismatch, -1 linear.
  align_options opt;
  opt.kind = align_kind::global;
  opt.want_alignment = true;
  return guarded(query, subject, opt, q_aligned, s_aligned, nullptr,
                 nullptr);
}

anyseq_score_t anyseq_construct_global_alignment_affine(
    const char* query, const char* subject, anyseq_score_t match,
    anyseq_score_t mismatch, anyseq_score_t gap_open,
    anyseq_score_t gap_extend, char* q_aligned, char* s_aligned) {
  align_options opt;
  opt.kind = align_kind::global;
  opt.want_alignment = true;
  opt.match = match;
  opt.mismatch = mismatch;
  opt.gap_open = gap_open;
  opt.gap_extend = gap_extend;
  return guarded(query, subject, opt, q_aligned, s_aligned, nullptr,
                 nullptr);
}

anyseq_score_t anyseq_construct_local_alignment(
    const char* query, const char* subject, anyseq_score_t match,
    anyseq_score_t mismatch, anyseq_score_t gap_open,
    anyseq_score_t gap_extend, char* q_aligned, char* s_aligned,
    int64_t* q_begin, int64_t* s_begin) {
  align_options opt;
  opt.kind = align_kind::local;
  opt.want_alignment = true;
  opt.match = match;
  opt.mismatch = mismatch;
  opt.gap_open = gap_open;
  opt.gap_extend = gap_extend;
  return guarded(query, subject, opt, q_aligned, s_aligned, q_begin,
                 s_begin);
}

anyseq_aligner* anyseq_aligner_create(void) {
  try {
    return new anyseq_aligner;
  } catch (...) {
    return nullptr;
  }
}

void anyseq_aligner_destroy(anyseq_aligner* a) { delete a; }

namespace {

/// Encode a C string into a reused code buffer; returns the view.
anyseq::stage::seq_view encode_into(const char* str,
                                    std::vector<anyseq::char_t>& buf) {
  const std::size_t len = std::strlen(str);
  buf.resize(len);
  for (std::size_t i = 0; i < len; ++i) buf[i] = anyseq::dna_encode(str[i]);
  return {buf.data(), static_cast<anyseq::index_t>(len)};
}

/// Shared body of the handle-based entry points.
anyseq_score_t aligner_guarded(anyseq_aligner* a, const char* q,
                               const char* s, const align_options& opt,
                               char* q_out, char* s_out) {
  if (a == nullptr || q == nullptr || s == nullptr) return ANYSEQ_C_ERROR;
  try {
    a->impl.set_options(opt);
    const auto qv = encode_into(q, a->qbuf);
    const auto sv = encode_into(s, a->sbuf);
    a->impl.align_into(qv, sv, a->out);
    if (opt.want_alignment) {
      if (q_out != nullptr) {
        std::memcpy(q_out, a->out.q_aligned.c_str(),
                    a->out.q_aligned.size() + 1);
      }
      if (s_out != nullptr) {
        std::memcpy(s_out, a->out.s_aligned.c_str(),
                    a->out.s_aligned.size() + 1);
      }
    }
    return a->out.score;
  } catch (const anyseq::error&) {
    return ANYSEQ_C_ERROR;
  }
}

}  // namespace

anyseq_score_t anyseq_aligner_global_score(anyseq_aligner* a,
                                           const char* query,
                                           const char* subject,
                                           anyseq_score_t match,
                                           anyseq_score_t mismatch,
                                           anyseq_score_t gap) {
  align_options opt;
  opt.kind = align_kind::global;
  opt.match = match;
  opt.mismatch = mismatch;
  opt.gap_extend = gap;
  return aligner_guarded(a, query, subject, opt, nullptr, nullptr);
}

anyseq_score_t anyseq_aligner_local_score(anyseq_aligner* a,
                                          const char* query,
                                          const char* subject,
                                          anyseq_score_t match,
                                          anyseq_score_t mismatch,
                                          anyseq_score_t gap_open,
                                          anyseq_score_t gap_extend) {
  align_options opt;
  opt.kind = align_kind::local;
  opt.match = match;
  opt.mismatch = mismatch;
  opt.gap_open = gap_open;
  opt.gap_extend = gap_extend;
  return aligner_guarded(a, query, subject, opt, nullptr, nullptr);
}

anyseq_score_t anyseq_aligner_semiglobal_score(anyseq_aligner* a,
                                               const char* query,
                                               const char* subject,
                                               anyseq_score_t match,
                                               anyseq_score_t mismatch,
                                               anyseq_score_t gap) {
  align_options opt;
  opt.kind = align_kind::semiglobal;
  opt.match = match;
  opt.mismatch = mismatch;
  opt.gap_extend = gap;
  return aligner_guarded(a, query, subject, opt, nullptr, nullptr);
}

anyseq_score_t anyseq_aligner_construct_global_alignment_affine(
    anyseq_aligner* a, const char* query, const char* subject,
    anyseq_score_t match, anyseq_score_t mismatch, anyseq_score_t gap_open,
    anyseq_score_t gap_extend, char* q_aligned, char* s_aligned) {
  align_options opt;
  opt.kind = align_kind::global;
  opt.want_alignment = true;
  opt.match = match;
  opt.mismatch = mismatch;
  opt.gap_open = gap_open;
  opt.gap_extend = gap_extend;
  return aligner_guarded(a, query, subject, opt, q_aligned, s_aligned);
}

void anyseq_aligner_reserve(anyseq_aligner* a, int64_t query_len,
                            int64_t subject_len) {
  if (a == nullptr || query_len < 0 || subject_len < 0) return;
  try {
    align_options opt;  // global score-only: the documented reserve shape
    a->impl.set_options(opt);
    a->impl.reserve(static_cast<anyseq::index_t>(query_len),
                    static_cast<anyseq::index_t>(subject_len));
    a->qbuf.reserve(static_cast<std::size_t>(query_len));
    a->sbuf.reserve(static_cast<std::size_t>(subject_len));
  } catch (...) {
    // reserve is best-effort; the first call warms whatever is missing
  }
}

size_t anyseq_aligner_workspace_bytes(const anyseq_aligner* a) {
  if (a == nullptr) return 0;
  return a->impl.workspace_bytes() + a->qbuf.capacity() + a->sbuf.capacity();
}

void anyseq_aligner_shrink(anyseq_aligner* a) {
  if (a == nullptr) return;
  a->impl.shrink();
  a->qbuf = {};
  a->sbuf = {};
  a->out = {};
}

int anyseq_aligner_plan(anyseq_aligner* a, int64_t query_len,
                        int64_t subject_len, anyseq_score_t match,
                        anyseq_score_t mismatch, anyseq_score_t gap,
                        anyseq_plan* out) {
  if (a == nullptr || out == nullptr || query_len <= 0 || subject_len <= 0)
    return -1;
  try {
    align_options opt;
    opt.kind = align_kind::global;
    opt.match = match;
    opt.mismatch = mismatch;
    opt.gap_extend = gap;
    a->impl.set_options(opt);
    const auto p = a->impl.plan(static_cast<anyseq::index_t>(query_len),
                                static_cast<anyseq::index_t>(subject_len));
    out->variant = p.variant;
    out->route = p.route;
    out->precision = anyseq::to_string(p.precision);
    out->workspace_bytes = p.workspace_bytes;
    return 0;
  } catch (const anyseq::error&) {
    return -1;
  }
}

namespace {

anyseq_service* service_create_impl(int64_t max_batch, int64_t max_linger_us,
                                    int64_t queue_capacity, int policy,
                                    int64_t shards, int64_t cache_capacity,
                                    int adaptive_linger) {
  if (max_batch < 0 || max_linger_us < 0 || queue_capacity < 0 || shards < 0)
    return nullptr;
  if (policy < ANYSEQ_BACKPRESSURE_BLOCK ||
      policy > ANYSEQ_BACKPRESSURE_SHED_OLDEST)
    return nullptr;
  anyseq::service::service_group::config cfg;
  if (max_batch > 0)
    cfg.shard.max_batch = static_cast<std::size_t>(max_batch);
  if (max_linger_us > 0)
    cfg.shard.max_linger = std::chrono::microseconds(max_linger_us);
  if (queue_capacity > 0)
    cfg.shard.queue_capacity = static_cast<std::size_t>(queue_capacity);
  cfg.shard.policy = static_cast<anyseq::service::backpressure>(policy);
  cfg.shards = shards > 0 ? static_cast<std::size_t>(shards) : 1;
  cfg.cache_capacity =
      cache_capacity < 0 ? 4096 : static_cast<std::size_t>(cache_capacity);
  if (adaptive_linger != 0) {
    cfg.shard.adaptive_linger = true;
    cfg.shard.min_linger = cfg.shard.max_linger / 10;
    cfg.shard.interactive_p99_target = cfg.shard.max_linger * 10;
  }
  try {
    return new anyseq_service(cfg);
  } catch (...) {
    return nullptr;
  }
}

anyseq_ticket* service_submit_impl(
    anyseq_service* svc, const char* query, const char* subject,
    anyseq_align_kind kind, anyseq_score_t match, anyseq_score_t mismatch,
    anyseq_score_t gap_open, anyseq_score_t gap_extend, int want_alignment,
    const anyseq::service::submit_options& so) {
  if (svc == nullptr || query == nullptr || subject == nullptr)
    return nullptr;
  align_options opt;
  switch (kind) {
    case ANYSEQ_ALIGN_GLOBAL: opt.kind = align_kind::global; break;
    case ANYSEQ_ALIGN_LOCAL: opt.kind = align_kind::local; break;
    case ANYSEQ_ALIGN_SEMIGLOBAL: opt.kind = align_kind::semiglobal; break;
    default: return nullptr;
  }
  opt.match = match;
  opt.mismatch = mismatch;
  opt.gap_open = gap_open;
  opt.gap_extend = gap_extend;
  opt.want_alignment = want_alignment != 0;
  try {
    auto* out = new anyseq_ticket;
    out->want_alignment = opt.want_alignment;
    try {
      out->impl = svc->impl.submit_strings(query, subject, opt, so);
    } catch (...) {
      delete out;
      return nullptr;
    }
    return out;
  } catch (const std::bad_alloc&) {
    return nullptr;
  }
}

}  // namespace

anyseq_service* anyseq_service_create(int64_t max_batch,
                                      int64_t max_linger_us,
                                      int64_t queue_capacity, int policy) {
  // Legacy entry point: one shard, no cache, fixed linger.
  return service_create_impl(max_batch, max_linger_us, queue_capacity,
                             policy, /*shards=*/1, /*cache_capacity=*/0,
                             /*adaptive_linger=*/0);
}

anyseq_service* anyseq_service_create_ex(int64_t max_batch,
                                         int64_t max_linger_us,
                                         int64_t queue_capacity, int policy,
                                         int64_t shards,
                                         int64_t cache_capacity,
                                         int adaptive_linger) {
  return service_create_impl(max_batch, max_linger_us, queue_capacity,
                             policy, shards, cache_capacity,
                             adaptive_linger);
}

anyseq_ticket* anyseq_service_submit(anyseq_service* svc, const char* query,
                                     const char* subject,
                                     anyseq_align_kind kind,
                                     anyseq_score_t match,
                                     anyseq_score_t mismatch,
                                     anyseq_score_t gap_open,
                                     anyseq_score_t gap_extend,
                                     int want_alignment) {
  return service_submit_impl(svc, query, subject, kind, match, mismatch,
                             gap_open, gap_extend, want_alignment, {});
}

anyseq_ticket* anyseq_service_submit_ex(
    anyseq_service* svc, const char* query, const char* subject,
    anyseq_align_kind kind, anyseq_score_t match, anyseq_score_t mismatch,
    anyseq_score_t gap_open, anyseq_score_t gap_extend, int want_alignment,
    anyseq_request_class cls, int64_t tenant) {
  if (cls != ANYSEQ_CLASS_INTERACTIVE && cls != ANYSEQ_CLASS_BULK)
    return nullptr;
  if (tenant < 0) return nullptr;
  anyseq::service::submit_options so;
  so.cls = cls == ANYSEQ_CLASS_BULK
               ? anyseq::service::request_class::bulk
               : anyseq::service::request_class::interactive;
  so.tenant = static_cast<std::uint32_t>(tenant);
  return service_submit_impl(svc, query, subject, kind, match, mismatch,
                             gap_open, gap_extend, want_alignment, so);
}

anyseq_score_t anyseq_service_wait(anyseq_ticket* ticket, char* q_aligned,
                                   char* s_aligned) {
  if (ticket == nullptr) return ANYSEQ_C_ERROR;
  anyseq_score_t score = ANYSEQ_C_ERROR;
  try {
    const auto r = ticket->impl.get();
    if (ticket->want_alignment) {
      if (q_aligned != nullptr)
        std::memcpy(q_aligned, r.q_aligned.c_str(), r.q_aligned.size() + 1);
      if (s_aligned != nullptr)
        std::memcpy(s_aligned, r.s_aligned.c_str(), r.s_aligned.size() + 1);
    }
    score = r.score;
  } catch (...) {
    score = ANYSEQ_C_ERROR;
  }
  delete ticket;
  return score;
}

int anyseq_ticket_wait_for(const anyseq_ticket* ticket, int64_t timeout_us) {
  if (ticket == nullptr || timeout_us < 0) return -1;
  try {
    return ticket->impl.wait_for(std::chrono::microseconds(timeout_us))
               ? ANYSEQ_WAIT_READY
               : ANYSEQ_WAIT_TIMEOUT;
  } catch (...) {
    return -1;  // empty or stale ticket
  }
}

void anyseq_ticket_discard(anyseq_ticket* ticket) { delete ticket; }

int anyseq_service_get_stats(const anyseq_service* svc,
                             anyseq_service_stats* out) {
  if (svc == nullptr || out == nullptr) return -1;
  const auto s = svc->impl.stats();
  out->accepted = s.accepted;
  out->rejected = s.rejected;
  out->shed = s.shed;
  out->quota_rejected = s.quota_rejected;
  out->completed = s.completed;
  out->failed = s.failed;
  out->batches = s.batches;
  out->mean_batch_occupancy = s.mean_batch_occupancy;
  out->p50_latency_ns = s.p50_latency_ns;
  out->p99_latency_ns = s.p99_latency_ns;
  out->cache_hits = s.cache_hits;
  out->cache_misses = s.cache_misses;
  out->cache_evictions = s.cache_evictions;
  out->effective_linger_us = s.effective_linger_us;
  using anyseq::service::request_class;
  const auto& ia = s.of(request_class::interactive);
  const auto& bk = s.of(request_class::bulk);
  out->interactive_rejected = ia.rejected;
  out->interactive_shed = ia.shed;
  out->interactive_quota_rejected = ia.quota_rejected;
  out->interactive_p99_latency_ns = ia.p99_latency_ns;
  out->bulk_rejected = bk.rejected;
  out->bulk_shed = bk.shed;
  out->bulk_quota_rejected = bk.quota_rejected;
  out->bulk_p99_latency_ns = bk.p99_latency_ns;
  out->deadline_expired = s.deadline_expired;
  out->quarantined = s.quarantined;
  out->watchdog_restarts = s.watchdog_restarts;
  out->brownout = s.brownout ? 1 : 0;
  out->p90_latency_ns = s.p90_latency_ns;
  out->p999_latency_ns = s.p999_latency_ns;
  out->interactive_p90_latency_ns = ia.p90_latency_ns;
  out->interactive_p999_latency_ns = ia.p999_latency_ns;
  out->bulk_p90_latency_ns = bk.p90_latency_ns;
  out->bulk_p999_latency_ns = bk.p999_latency_ns;
  return 0;
}

int64_t anyseq_service_dump_metrics(const anyseq_service* svc, char* buf,
                                    size_t cap) {
  if (svc == nullptr) return -1;
  return static_cast<int64_t>(svc->impl.dump_metrics(buf, cap));
}

int anyseq_tracing_start(int64_t events_per_thread) {
  if (g_capi_collector != nullptr) return -1;
  try {
    anyseq::service::trace::collector::config cfg;
    if (events_per_thread > 0)
      cfg.events_per_thread = static_cast<std::size_t>(events_per_thread);
    g_capi_collector =
        std::make_unique<anyseq::service::trace::collector>(cfg);
  } catch (...) {
    return -1;
  }
  anyseq::service::trace::arm(*g_capi_collector);
  return 0;
}

int anyseq_tracing_stop(void) {
  if (g_capi_collector == nullptr) return -1;
  anyseq::service::trace::disarm();
  g_capi_collector.reset();
  return 0;
}

int64_t anyseq_service_dump_trace(const anyseq_service* svc, char* buf,
                                  size_t cap) {
  if (svc == nullptr || g_capi_collector == nullptr) return -1;
  return static_cast<int64_t>(g_capi_collector->dump_chrome_json(buf, cap));
}

void anyseq_service_destroy(anyseq_service* svc) { delete svc; }

const char* anyseq_version(void) { return anyseq::version(); }

const char* anyseq_backend_name(void) {
  // auto_select never throws: it falls back to the widest safe variant.
  return anyseq::backend_name(align_options{});
}

}  // extern "C"
