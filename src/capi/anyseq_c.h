#ifndef ANYSEQ_C_H
#define ANYSEQ_C_H

/**
 * \file anyseq_c.h
 * \brief C entry points mirroring the paper's interface functions
 *        (§III-C: "AnySeq provides C wrapper functions as entry points to
 *        the different algorithmic parameterization scenarios").
 *
 * Sequences are plain NUL-terminated DNA strings over `ACGTN`; lower-case
 * letters are folded to upper case and any other character is treated as
 * `N`.  Gapped output strings are written to caller-provided buffers of
 * capacity `>= strlen(query) + strlen(subject) + 1` (the worst-case gapped
 * length plus the terminator).
 *
 * All functions return the optimal alignment score.  On invalid input
 * (NULL pointers, positive gap penalties, non-positive local match score,
 * ...) they return ::ANYSEQ_C_ERROR and write no output.  No other error
 * channel exists: the C API never throws and never aborts on bad
 * parameters.  See docs/C_API.md for a worked error-handling example.
 *
 * Thread safety: all functions are stateless and may be called
 * concurrently from any number of threads.
 */

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/** Alignment score type of the C API (matches the C++ `anyseq::score_t`). */
typedef int32_t anyseq_score_t;

/**
 * \brief Error sentinel returned by every function on invalid input.
 *
 * `INT32_MIN` is far below any reachable alignment score (scores are
 * bounded by `max(|match|, |mismatch|, |gap|) * (strlen(q) + strlen(s))`),
 * so a valid score never collides with it.
 */
#define ANYSEQ_C_ERROR INT32_MIN

/* ------------------------------------------------------------------ */
/* Score-only computations (linear space).                            */
/* ------------------------------------------------------------------ */

/**
 * \brief Global (Needleman–Wunsch) alignment score with linear gaps.
 *
 * \param query    NUL-terminated DNA string (must not be NULL).
 * \param subject  NUL-terminated DNA string (must not be NULL).
 * \param match    Score added per matching column (e.g. `2`).
 * \param mismatch Score added per mismatching column (e.g. `-1`).
 * \param gap      Score added per gap symbol; must be `<= 0` (e.g. `-1`).
 * \return The optimal global alignment score, or ::ANYSEQ_C_ERROR.
 */
anyseq_score_t anyseq_global_score(const char* query, const char* subject,
                                   anyseq_score_t match,
                                   anyseq_score_t mismatch,
                                   anyseq_score_t gap);

/**
 * \brief Local (Smith–Waterman) alignment score with affine gaps.
 *
 * A gap of length `k` scores `gap_open + k * gap_extend`; pass
 * `gap_open = 0` for a linear scheme.
 *
 * \param query      NUL-terminated DNA string (must not be NULL).
 * \param subject    NUL-terminated DNA string (must not be NULL).
 * \param match      Score per matching column; must be `> 0` for local
 *                   alignment to be meaningful.
 * \param mismatch   Score per mismatching column (typically negative).
 * \param gap_open   Extra cost of opening a gap; must be `<= 0`.
 * \param gap_extend Cost per gap symbol; must be `<= 0`.
 * \return The optimal local alignment score (never negative: the empty
 *         alignment scores 0), or ::ANYSEQ_C_ERROR.
 */
anyseq_score_t anyseq_local_score(const char* query, const char* subject,
                                  anyseq_score_t match,
                                  anyseq_score_t mismatch,
                                  anyseq_score_t gap_open,
                                  anyseq_score_t gap_extend);

/**
 * \brief Semi-global alignment score (free leading/trailing gaps) with
 *        linear gaps.
 *
 * \param query    NUL-terminated DNA string (must not be NULL).
 * \param subject  NUL-terminated DNA string (must not be NULL).
 * \param match    Score per matching column.
 * \param mismatch Score per mismatching column.
 * \param gap      Score per interior gap symbol; must be `<= 0`.
 * \return The optimal semi-global alignment score, or ::ANYSEQ_C_ERROR.
 */
anyseq_score_t anyseq_semiglobal_score(const char* query,
                                       const char* subject,
                                       anyseq_score_t match,
                                       anyseq_score_t mismatch,
                                       anyseq_score_t gap);

/* ------------------------------------------------------------------ */
/* Full alignment construction.                                       */
/* ------------------------------------------------------------------ */

/**
 * \brief Global alignment with traceback — the paper's
 *        `construct_global_alignment(query, subj, qAlign, sAlign)`.
 *
 * Uses the paper's stock parameterization: match `+2`, mismatch `-1`,
 * linear gap `-1`.  The gapped strings use `-` for gap positions and are
 * NUL-terminated.
 *
 * \param query     NUL-terminated DNA string (must not be NULL).
 * \param subject   NUL-terminated DNA string (must not be NULL).
 * \param q_aligned Output buffer for the gapped query, capacity
 *                  `>= strlen(query) + strlen(subject) + 1`; may be NULL
 *                  to skip this output.
 * \param s_aligned Output buffer for the gapped subject (same capacity
 *                  rule); may be NULL.
 * \return The optimal global alignment score, or ::ANYSEQ_C_ERROR.
 */
anyseq_score_t anyseq_construct_global_alignment(const char* query,
                                                 const char* subject,
                                                 char* q_aligned,
                                                 char* s_aligned);

/**
 * \brief Global alignment with traceback under an affine gap scheme.
 *
 * A gap of length `k` scores `gap_open + k * gap_extend`; pass
 * `gap_open = 0` for a linear scheme.
 *
 * \param query      NUL-terminated DNA string (must not be NULL).
 * \param subject    NUL-terminated DNA string (must not be NULL).
 * \param match      Score per matching column.
 * \param mismatch   Score per mismatching column.
 * \param gap_open   Extra cost of opening a gap; must be `<= 0`.
 * \param gap_extend Cost per gap symbol; must be `<= 0`.
 * \param q_aligned  Output buffer for the gapped query (see
 *                   anyseq_construct_global_alignment()); may be NULL.
 * \param s_aligned  Output buffer for the gapped subject; may be NULL.
 * \return The optimal global alignment score, or ::ANYSEQ_C_ERROR.
 */
anyseq_score_t anyseq_construct_global_alignment_affine(
    const char* query, const char* subject, anyseq_score_t match,
    anyseq_score_t mismatch, anyseq_score_t gap_open,
    anyseq_score_t gap_extend, char* q_aligned, char* s_aligned);

/**
 * \brief Local alignment with traceback.
 *
 * The gapped strings cover only the locally aligned region;
 * `*q_begin` / `*s_begin` receive the region's start offsets into the
 * input strings.
 *
 * \param query      NUL-terminated DNA string (must not be NULL).
 * \param subject    NUL-terminated DNA string (must not be NULL).
 * \param match      Score per matching column; must be `> 0`.
 * \param mismatch   Score per mismatching column.
 * \param gap_open   Extra cost of opening a gap; must be `<= 0`.
 * \param gap_extend Cost per gap symbol; must be `<= 0`.
 * \param q_aligned  Output buffer for the gapped query region (capacity
 *                   rule as above); may be NULL.
 * \param s_aligned  Output buffer for the gapped subject region; may be
 *                   NULL.
 * \param q_begin    Receives the query start offset of the aligned
 *                   region; may be NULL.
 * \param s_begin    Receives the subject start offset; may be NULL.
 * \return The optimal local alignment score, or ::ANYSEQ_C_ERROR.
 */
anyseq_score_t anyseq_construct_local_alignment(
    const char* query, const char* subject, anyseq_score_t match,
    anyseq_score_t mismatch, anyseq_score_t gap_open,
    anyseq_score_t gap_extend, char* q_aligned, char* s_aligned,
    int64_t* q_begin, int64_t* s_begin);

/**
 * \brief Library version string (static storage; never NULL, do not
 *        free).
 */
const char* anyseq_version(void);

/**
 * \brief Name of the SIMD engine variant the library dispatches to on
 *        this machine.
 *
 * The library ships every alignment engine three times, compiled into
 * the per-variant namespaces `anyseq::v_scalar` / `v_avx2` / `v_avx512`
 * with the matching instruction-set flags.  At each call the dispatcher
 * probes the CPU and selects the widest variant both the binary and the
 * processor support; this function reports that selection — it is
 * exactly the `ops.name` of the dispatched variant table, i.e. what
 * every C API alignment call in this process will execute.
 *
 * \return `"scalar"`, `"avx2"`, or `"avx512"` (static storage; never
 *         NULL, do not free).  The value is stable for the lifetime of
 *         the process.
 */
const char* anyseq_backend_name(void);

#ifdef __cplusplus
}
#endif

#endif /* ANYSEQ_C_H */
