#ifndef ANYSEQ_C_H
#define ANYSEQ_C_H
/* C entry points mirroring the paper's interface functions (§III-C:
 * "AnySeq provides C wrapper functions as entry points to the different
 * algorithmic parameterization scenarios").
 *
 * Sequences are plain NUL-terminated DNA strings (ACGTN, case folded).
 * Gapped output strings are written to caller-provided buffers of
 * capacity >= strlen(query) + strlen(subject) + 1.
 *
 * All functions return the optimal alignment score.  On invalid input
 * they return ANYSEQ_C_ERROR and set no output.
 */

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef int32_t anyseq_score_t;
#define ANYSEQ_C_ERROR INT32_MIN

/* Score-only computations (linear space). */
anyseq_score_t anyseq_global_score(const char* query, const char* subject,
                                   anyseq_score_t match,
                                   anyseq_score_t mismatch,
                                   anyseq_score_t gap);
anyseq_score_t anyseq_local_score(const char* query, const char* subject,
                                  anyseq_score_t match,
                                  anyseq_score_t mismatch,
                                  anyseq_score_t gap_open,
                                  anyseq_score_t gap_extend);
anyseq_score_t anyseq_semiglobal_score(const char* query,
                                       const char* subject,
                                       anyseq_score_t match,
                                       anyseq_score_t mismatch,
                                       anyseq_score_t gap);

/* Full alignment construction — the paper's
 * construct_global_alignment(query, subj, qAlign, sAlign). */
anyseq_score_t anyseq_construct_global_alignment(const char* query,
                                                 const char* subject,
                                                 char* q_aligned,
                                                 char* s_aligned);

/* As above with an affine gap scheme. */
anyseq_score_t anyseq_construct_global_alignment_affine(
    const char* query, const char* subject, anyseq_score_t match,
    anyseq_score_t mismatch, anyseq_score_t gap_open,
    anyseq_score_t gap_extend, char* q_aligned, char* s_aligned);

/* Local alignment with traceback; *q_begin/*s_begin receive the aligned
 * region's start offsets (may be NULL). */
anyseq_score_t anyseq_construct_local_alignment(
    const char* query, const char* subject, anyseq_score_t match,
    anyseq_score_t mismatch, anyseq_score_t gap_open,
    anyseq_score_t gap_extend, char* q_aligned, char* s_aligned,
    int64_t* q_begin, int64_t* s_begin);

/* Library version string (static storage). */
const char* anyseq_version(void);

#ifdef __cplusplus
}
#endif

#endif /* ANYSEQ_C_H */
