#ifndef ANYSEQ_C_H
#define ANYSEQ_C_H

/**
 * \file anyseq_c.h
 * \brief C entry points mirroring the paper's interface functions
 *        (§III-C: "AnySeq provides C wrapper functions as entry points to
 *        the different algorithmic parameterization scenarios").
 *
 * Sequences are plain NUL-terminated DNA strings over `ACGTN`; lower-case
 * letters are folded to upper case and any other character is treated as
 * `N`.  Gapped output strings are written to caller-provided buffers of
 * capacity `>= strlen(query) + strlen(subject) + 1` (the worst-case gapped
 * length plus the terminator).
 *
 * All functions return the optimal alignment score.  On invalid input
 * (NULL pointers, positive gap penalties, non-positive local match score,
 * ...) they return ::ANYSEQ_C_ERROR and write no output.  No other error
 * channel exists: the C API never throws and never aborts on bad
 * parameters.  See docs/C_API.md for a worked error-handling example.
 *
 * Thread safety: all functions are stateless and may be called
 * concurrently from any number of threads.
 */

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/** Alignment score type of the C API (matches the C++ `anyseq::score_t`). */
typedef int32_t anyseq_score_t;

/**
 * \brief Error sentinel returned by every function on invalid input.
 *
 * `INT32_MIN` is far below any reachable alignment score (scores are
 * bounded by `max(|match|, |mismatch|, |gap|) * (strlen(q) + strlen(s))`),
 * so a valid score never collides with it.
 */
#define ANYSEQ_C_ERROR INT32_MIN

/* ------------------------------------------------------------------ */
/* Score-only computations (linear space).                            */
/* ------------------------------------------------------------------ */

/**
 * \brief Global (Needleman–Wunsch) alignment score with linear gaps.
 *
 * \param query    NUL-terminated DNA string (must not be NULL).
 * \param subject  NUL-terminated DNA string (must not be NULL).
 * \param match    Score added per matching column (e.g. `2`).
 * \param mismatch Score added per mismatching column (e.g. `-1`).
 * \param gap      Score added per gap symbol; must be `<= 0` (e.g. `-1`).
 * \return The optimal global alignment score, or ::ANYSEQ_C_ERROR.
 */
anyseq_score_t anyseq_global_score(const char* query, const char* subject,
                                   anyseq_score_t match,
                                   anyseq_score_t mismatch,
                                   anyseq_score_t gap);

/**
 * \brief Local (Smith–Waterman) alignment score with affine gaps.
 *
 * A gap of length `k` scores `gap_open + k * gap_extend`; pass
 * `gap_open = 0` for a linear scheme.
 *
 * \param query      NUL-terminated DNA string (must not be NULL).
 * \param subject    NUL-terminated DNA string (must not be NULL).
 * \param match      Score per matching column; must be `> 0` for local
 *                   alignment to be meaningful.
 * \param mismatch   Score per mismatching column (typically negative).
 * \param gap_open   Extra cost of opening a gap; must be `<= 0`.
 * \param gap_extend Cost per gap symbol; must be `<= 0`.
 * \return The optimal local alignment score (never negative: the empty
 *         alignment scores 0), or ::ANYSEQ_C_ERROR.
 */
anyseq_score_t anyseq_local_score(const char* query, const char* subject,
                                  anyseq_score_t match,
                                  anyseq_score_t mismatch,
                                  anyseq_score_t gap_open,
                                  anyseq_score_t gap_extend);

/**
 * \brief Semi-global alignment score (free leading/trailing gaps) with
 *        linear gaps.
 *
 * \param query    NUL-terminated DNA string (must not be NULL).
 * \param subject  NUL-terminated DNA string (must not be NULL).
 * \param match    Score per matching column.
 * \param mismatch Score per mismatching column.
 * \param gap      Score per interior gap symbol; must be `<= 0`.
 * \return The optimal semi-global alignment score, or ::ANYSEQ_C_ERROR.
 */
anyseq_score_t anyseq_semiglobal_score(const char* query,
                                       const char* subject,
                                       anyseq_score_t match,
                                       anyseq_score_t mismatch,
                                       anyseq_score_t gap);

/* ------------------------------------------------------------------ */
/* Full alignment construction.                                       */
/* ------------------------------------------------------------------ */

/**
 * \brief Global alignment with traceback — the paper's
 *        `construct_global_alignment(query, subj, qAlign, sAlign)`.
 *
 * Uses the paper's stock parameterization: match `+2`, mismatch `-1`,
 * linear gap `-1`.  The gapped strings use `-` for gap positions and are
 * NUL-terminated.
 *
 * \param query     NUL-terminated DNA string (must not be NULL).
 * \param subject   NUL-terminated DNA string (must not be NULL).
 * \param q_aligned Output buffer for the gapped query, capacity
 *                  `>= strlen(query) + strlen(subject) + 1`; may be NULL
 *                  to skip this output.
 * \param s_aligned Output buffer for the gapped subject (same capacity
 *                  rule); may be NULL.
 * \return The optimal global alignment score, or ::ANYSEQ_C_ERROR.
 */
anyseq_score_t anyseq_construct_global_alignment(const char* query,
                                                 const char* subject,
                                                 char* q_aligned,
                                                 char* s_aligned);

/**
 * \brief Global alignment with traceback under an affine gap scheme.
 *
 * A gap of length `k` scores `gap_open + k * gap_extend`; pass
 * `gap_open = 0` for a linear scheme.
 *
 * \param query      NUL-terminated DNA string (must not be NULL).
 * \param subject    NUL-terminated DNA string (must not be NULL).
 * \param match      Score per matching column.
 * \param mismatch   Score per mismatching column.
 * \param gap_open   Extra cost of opening a gap; must be `<= 0`.
 * \param gap_extend Cost per gap symbol; must be `<= 0`.
 * \param q_aligned  Output buffer for the gapped query (see
 *                   anyseq_construct_global_alignment()); may be NULL.
 * \param s_aligned  Output buffer for the gapped subject; may be NULL.
 * \return The optimal global alignment score, or ::ANYSEQ_C_ERROR.
 */
anyseq_score_t anyseq_construct_global_alignment_affine(
    const char* query, const char* subject, anyseq_score_t match,
    anyseq_score_t mismatch, anyseq_score_t gap_open,
    anyseq_score_t gap_extend, char* q_aligned, char* s_aligned);

/**
 * \brief Local alignment with traceback.
 *
 * The gapped strings cover only the locally aligned region;
 * `*q_begin` / `*s_begin` receive the region's start offsets into the
 * input strings.
 *
 * \param query      NUL-terminated DNA string (must not be NULL).
 * \param subject    NUL-terminated DNA string (must not be NULL).
 * \param match      Score per matching column; must be `> 0`.
 * \param mismatch   Score per mismatching column.
 * \param gap_open   Extra cost of opening a gap; must be `<= 0`.
 * \param gap_extend Cost per gap symbol; must be `<= 0`.
 * \param q_aligned  Output buffer for the gapped query region (capacity
 *                   rule as above); may be NULL.
 * \param s_aligned  Output buffer for the gapped subject region; may be
 *                   NULL.
 * \param q_begin    Receives the query start offset of the aligned
 *                   region; may be NULL.
 * \param s_begin    Receives the subject start offset; may be NULL.
 * \return The optimal local alignment score, or ::ANYSEQ_C_ERROR.
 */
anyseq_score_t anyseq_construct_local_alignment(
    const char* query, const char* subject, anyseq_score_t match,
    anyseq_score_t mismatch, anyseq_score_t gap_open,
    anyseq_score_t gap_extend, char* q_aligned, char* s_aligned,
    int64_t* q_begin, int64_t* s_begin);

/* ------------------------------------------------------------------ */
/* Reusable aligner handles (plan/execute split).                      */
/* ------------------------------------------------------------------ */

/**
 * \brief Handle to a reusable aligner with a caller-owned workspace.
 *
 * The stateless functions above re-derive their execution route and
 * allocate their DP buffers on every call.  An aligner handle separates
 * *plan* from *execute*: the handle owns a workspace arena that is
 * carved — not allocated — by each alignment, so repeated calls of a
 * similar shape perform zero heap allocations after warm-up.  Use one
 * handle per thread; handles are NOT thread-safe (the stateless
 * functions remain safe from any number of threads).
 *
 * Create with anyseq_aligner_create(), destroy with
 * anyseq_aligner_destroy().
 */
typedef struct anyseq_aligner anyseq_aligner;

/**
 * \brief Create a reusable aligner handle.
 * \return A new handle, or NULL on resource exhaustion.
 */
anyseq_aligner* anyseq_aligner_create(void);

/**
 * \brief Destroy an aligner handle and release its workspace.
 *        NULL is ignored.
 */
void anyseq_aligner_destroy(anyseq_aligner* a);

/**
 * \brief Global (Needleman–Wunsch) alignment score with linear gaps,
 *        reusing the handle's workspace.
 *
 * Semantics and parameter rules are identical to anyseq_global_score();
 * only the memory behaviour differs (zero steady-state allocations once
 * the handle is warm).
 *
 * \param a        Aligner handle (must not be NULL).
 * \param query    NUL-terminated DNA string (must not be NULL).
 * \param subject  NUL-terminated DNA string (must not be NULL).
 * \param match    Score added per matching column (e.g. `2`).
 * \param mismatch Score added per mismatching column (e.g. `-1`).
 * \param gap      Score added per gap symbol; must be `<= 0`.
 * \return The optimal global alignment score, or ::ANYSEQ_C_ERROR.
 */
anyseq_score_t anyseq_aligner_global_score(anyseq_aligner* a,
                                           const char* query,
                                           const char* subject,
                                           anyseq_score_t match,
                                           anyseq_score_t mismatch,
                                           anyseq_score_t gap);

/**
 * \brief Local (Smith–Waterman) alignment score with affine gaps,
 *        reusing the handle's workspace.
 *
 * Parameter rules as anyseq_local_score().
 *
 * \param a          Aligner handle (must not be NULL).
 * \param query      NUL-terminated DNA string (must not be NULL).
 * \param subject    NUL-terminated DNA string (must not be NULL).
 * \param match      Score per matching column; must be `> 0`.
 * \param mismatch   Score per mismatching column.
 * \param gap_open   Extra cost of opening a gap; must be `<= 0`.
 * \param gap_extend Cost per gap symbol; must be `<= 0`.
 * \return The optimal local alignment score, or ::ANYSEQ_C_ERROR.
 */
anyseq_score_t anyseq_aligner_local_score(anyseq_aligner* a,
                                          const char* query,
                                          const char* subject,
                                          anyseq_score_t match,
                                          anyseq_score_t mismatch,
                                          anyseq_score_t gap_open,
                                          anyseq_score_t gap_extend);

/**
 * \brief Semi-global alignment score with linear gaps, reusing the
 *        handle's workspace.
 *
 * Parameter rules as anyseq_semiglobal_score().
 *
 * \param a        Aligner handle (must not be NULL).
 * \param query    NUL-terminated DNA string (must not be NULL).
 * \param subject  NUL-terminated DNA string (must not be NULL).
 * \param match    Score per matching column.
 * \param mismatch Score per mismatching column.
 * \param gap      Score per interior gap symbol; must be `<= 0`.
 * \return The optimal semi-global alignment score, or ::ANYSEQ_C_ERROR.
 */
anyseq_score_t anyseq_aligner_semiglobal_score(anyseq_aligner* a,
                                               const char* query,
                                               const char* subject,
                                               anyseq_score_t match,
                                               anyseq_score_t mismatch,
                                               anyseq_score_t gap);

/**
 * \brief Global alignment with traceback under an affine gap scheme,
 *        reusing the handle's workspace AND its traceback buffers.
 *
 * Semantics as anyseq_construct_global_alignment_affine(): pass
 * `gap_open = 0` for a linear scheme; output buffers need capacity
 * `>= strlen(query) + strlen(subject) + 1` and may be NULL to skip.
 *
 * \param a          Aligner handle (must not be NULL).
 * \param query      NUL-terminated DNA string (must not be NULL).
 * \param subject    NUL-terminated DNA string (must not be NULL).
 * \param match      Score per matching column.
 * \param mismatch   Score per mismatching column.
 * \param gap_open   Extra cost of opening a gap; must be `<= 0`.
 * \param gap_extend Cost per gap symbol; must be `<= 0`.
 * \param q_aligned  Output buffer for the gapped query; may be NULL.
 * \param s_aligned  Output buffer for the gapped subject; may be NULL.
 * \return The optimal global alignment score, or ::ANYSEQ_C_ERROR.
 */
anyseq_score_t anyseq_aligner_construct_global_alignment_affine(
    anyseq_aligner* a, const char* query, const char* subject,
    anyseq_score_t match, anyseq_score_t mismatch, anyseq_score_t gap_open,
    anyseq_score_t gap_extend, char* q_aligned, char* s_aligned);

/**
 * \brief Pre-size the handle's workspace for global score-only problems
 *        of up to `query_len` x `subject_len` characters, so even the
 *        first call of that shape allocates nothing.
 *
 * Traceback calls additionally warm their string buffers on the first
 * call.  Negative lengths are ignored; NULL is ignored.
 *
 * \param a           Aligner handle.
 * \param query_len   Expected query length in characters.
 * \param subject_len Expected subject length in characters.
 */
void anyseq_aligner_reserve(anyseq_aligner* a, int64_t query_len,
                            int64_t subject_len);

/**
 * \brief Bytes currently held by the handle's workspace arena(s) and
 *        string buffers (0 for NULL).
 */
size_t anyseq_aligner_workspace_bytes(const anyseq_aligner* a);

/**
 * \brief Release the handle's workspace memory without destroying the
 *        handle (footprint control between bursts); the next call
 *        re-warms.  NULL is ignored.
 */
void anyseq_aligner_shrink(anyseq_aligner* a);

/**
 * \brief What the library decided for a problem shape, before running it
 *        (see anyseq_aligner_plan()).
 *
 * All strings point to static storage — never NULL, do not free.
 */
typedef struct anyseq_plan {
  const char* variant;   /**< engine variant: "scalar" / "avx2" / "avx512" */
  const char* route;     /**< execution route, e.g. "bitpar_score",
                              "precision_score", "small_score",
                              "tiled_score" */
  const char* precision; /**< score accumulator the route commits to:
                              "int8", "int16", "int32", or "bitpar" */
  size_t workspace_bytes; /**< exact arena bytes one pass of this shape
                               carves from the handle's workspace */
} anyseq_plan;

/**
 * \brief Report how a global score call of shape
 *        `query_len x subject_len` with the given linear-gap scoring
 *        would execute, without running it.
 *
 * The route and precision depend on both the shape and the scoring:
 * a unit-cost parameterization (`match = 0`, `mismatch == gap < 0`)
 * selects the Myers bit-parallel route, short sequences with small
 * scores select a narrow (int8/int16) accumulator, everything else runs
 * the 32-bit engines.  The reported `workspace_bytes` is exactly what
 * anyseq_aligner_reserve() would pre-size for this shape.
 *
 * \param a           Aligner handle (must not be NULL).
 * \param query_len   Query length in characters; must be `> 0`.
 * \param subject_len Subject length in characters; must be `> 0`.
 * \param match       Score per matching column.
 * \param mismatch    Score per mismatching column.
 * \param gap         Score per gap symbol; must be `<= 0`.
 * \param out         Receives the plan (must not be NULL).
 * \return 0 on success, -1 on NULL pointers or invalid shape/scoring
 *         (\p out is left untouched on failure).
 */
int anyseq_aligner_plan(anyseq_aligner* a, int64_t query_len,
                        int64_t subject_len, anyseq_score_t match,
                        anyseq_score_t mismatch, anyseq_score_t gap,
                        anyseq_plan* out);

/* ------------------------------------------------------------------ */
/* Asynchronous request-batching service.                              */
/* ------------------------------------------------------------------ */

/**
 * \brief Handle to an asynchronous alignment service.
 *
 * A service accepts individual requests (anyseq_service_submit()) and
 * coalesces compatible ones into batches behind the scenes, so a server
 * handling many independent alignments gets `align_batch`-class
 * throughput without assembling batches by hand.  Results are always
 * byte-identical to the corresponding synchronous call.  Create with
 * anyseq_service_create(), destroy with anyseq_service_destroy().
 */
typedef struct anyseq_service anyseq_service;

/**
 * \brief Handle to one in-flight request; redeemed (and freed) by
 *        anyseq_service_wait(), or freed unredeemed by
 *        anyseq_ticket_discard().
 */
typedef struct anyseq_ticket anyseq_ticket;

/** Alignment kind selector for anyseq_service_submit(). */
typedef enum anyseq_align_kind {
  ANYSEQ_ALIGN_GLOBAL = 0,    /**< Needleman–Wunsch */
  ANYSEQ_ALIGN_LOCAL = 1,     /**< Smith–Waterman */
  ANYSEQ_ALIGN_SEMIGLOBAL = 2 /**< free leading/trailing gaps */
} anyseq_align_kind;

/** Backpressure policy applied when a service capacity bound is hit. */
typedef enum anyseq_backpressure {
  ANYSEQ_BACKPRESSURE_BLOCK = 0,      /**< submit blocks until room frees */
  ANYSEQ_BACKPRESSURE_REJECT = 1,     /**< submit returns NULL */
  ANYSEQ_BACKPRESSURE_SHED_OLDEST = 2 /**< oldest queued request is
                                           dropped; its wait() returns
                                           ::ANYSEQ_C_ERROR */
} anyseq_backpressure;

/** Priority class for anyseq_service_submit_ex(). */
typedef enum anyseq_request_class {
  ANYSEQ_CLASS_INTERACTIVE = 0, /**< latency-sensitive; strict priority */
  ANYSEQ_CLASS_BULK = 1         /**< throughput traffic; yields to
                                     interactive */
} anyseq_request_class;

/**
 * \brief Telemetry snapshot of a service (see
 *        anyseq_service_get_stats()).
 *
 * Counters are cumulative over the service lifetime and, for a sharded
 * service, summed across shards.  `failed` includes shed and
 * shutdown-failed requests; `shed` counts that subset separately.
 * Latency percentiles are sampled from fixed-size reservoirs of
 * submit-to-completion times; for a sharded service they are ranked
 * over the pooled samples of every shard (never a sum of per-shard
 * percentiles).  The `interactive_*` / `bulk_*` fields resolve
 * admission failures and tail latency per priority class.
 */
typedef struct anyseq_service_stats {
  uint64_t accepted;   /**< requests admitted (including cache hits) */
  uint64_t rejected;   /**< submissions refused by backpressure */
  uint64_t shed;       /**< queued requests dropped by shed_oldest */
  uint64_t quota_rejected; /**< refused by a tenant token bucket */
  uint64_t completed;  /**< requests finished with a result */
  uint64_t failed;     /**< requests finished with an error */
  uint64_t batches;    /**< engine invocations (coalesced groups) */
  double mean_batch_occupancy; /**< requests per batch, on average */
  uint64_t p50_latency_ns;     /**< median submit-to-completion time */
  uint64_t p99_latency_ns;     /**< tail submit-to-completion time */

  uint64_t cache_hits;      /**< requests served from the response cache */
  uint64_t cache_misses;    /**< cache probes that had to execute */
  uint64_t cache_evictions; /**< cache entries displaced by the clock */
  uint64_t effective_linger_us; /**< linger currently applied (max across
                                     shards; == configured max_linger
                                     unless adaptive) */

  uint64_t interactive_rejected;       /**< per-class slices of the */
  uint64_t interactive_shed;           /**< aggregate counters above */
  uint64_t interactive_quota_rejected;
  uint64_t interactive_p99_latency_ns;
  uint64_t bulk_rejected;
  uint64_t bulk_shed;
  uint64_t bulk_quota_rejected;
  uint64_t bulk_p99_latency_ns;

  uint64_t deadline_expired;   /**< requests shed because their deadline
                                    passed before execution started
                                    (subset of `failed`) */
  uint64_t quarantined;        /**< submissions refused as repeat
                                    offenders (not part of `accepted`) */
  uint64_t watchdog_restarts;  /**< dead/stalled batcher threads replaced
                                    by the watchdog, summed over shards */
  uint64_t brownout;           /**< 1 when any shard is degraded to
                                    brownout (bulk refused, interactive
                                    executed solo), else 0 */

  /* Appended fields (keep at the end for layout compatibility). */
  uint64_t p90_latency_ns;     /**< 90th-percentile latency, pooled */
  uint64_t p999_latency_ns;    /**< 99.9th-percentile latency, pooled */
  uint64_t interactive_p90_latency_ns;
  uint64_t interactive_p999_latency_ns;
  uint64_t bulk_p90_latency_ns;
  uint64_t bulk_p999_latency_ns;
} anyseq_service_stats;

/**
 * \brief Create an asynchronous alignment service.
 *
 * \param max_batch      Flush a forming batch at this many requests;
 *                       `0` picks the default (64).
 * \param max_linger_us  Flush a forming batch this many microseconds
 *                       after its first request even if not full; `0`
 *                       picks the default (200).
 * \param queue_capacity Bound on requests waiting for execution; `0`
 *                       picks the default (1024).
 * \param policy         What submit does when a bound is hit (one of
 *                       ::anyseq_backpressure).
 * \return A new service, or NULL on invalid parameters (negative
 *         values, unknown policy) or resource exhaustion.
 */
anyseq_service* anyseq_service_create(int64_t max_batch,
                                      int64_t max_linger_us,
                                      int64_t queue_capacity, int policy);

/**
 * \brief Create a serving-tier service: N shards behind a shared
 *        response cache, with optional adaptive linger.
 *
 * The first four parameters are as anyseq_service_create() and apply to
 * every shard.  Requests route to shards by query-hash affinity and
 * spill to the least-loaded shard under imbalance; all shards front one
 * response cache, so a result computed anywhere serves hits everywhere.
 *
 * \param shards          Number of service shards; `0` picks 1.
 * \param cache_capacity  Shared response-cache entries; `0` disables
 *                        caching, `< 0` picks the default (4096).
 * \param adaptive_linger Nonzero lets each shard's batcher steer its
 *                        linger between 1/10 of `max_linger_us` and
 *                        `max_linger_us`, shrinking while the
 *                        interactive p99 exceeds 10x `max_linger_us`
 *                        and growing while batches run under-full.
 * \return A new service, or NULL on invalid parameters or resource
 *         exhaustion.
 */
anyseq_service* anyseq_service_create_ex(int64_t max_batch,
                                         int64_t max_linger_us,
                                         int64_t queue_capacity, int policy,
                                         int64_t shards,
                                         int64_t cache_capacity,
                                         int adaptive_linger);

/**
 * \brief Submit one alignment request; the service batches it with
 *        compatible traffic automatically.
 *
 * The sequence strings are copied internally — the caller may free
 * them as soon as this function returns.  A gap of length `k` scores
 * `gap_open + k * gap_extend`; pass `gap_open = 0` for a linear scheme.
 *
 * \param svc            Service handle (must not be NULL).
 * \param query          NUL-terminated DNA string (must not be NULL).
 * \param subject        NUL-terminated DNA string (must not be NULL).
 * \param kind           Alignment kind (::anyseq_align_kind).
 * \param match          Score per matching column; must be `> 0` for
 *                       ANYSEQ_ALIGN_LOCAL.
 * \param mismatch       Score per mismatching column.
 * \param gap_open       Extra cost of opening a gap; must be `<= 0`.
 * \param gap_extend     Cost per gap symbol; must be `<= 0`.
 * \param want_alignment Nonzero to construct the gapped strings
 *                       (retrieved by anyseq_service_wait()).
 * \return A ticket to redeem with anyseq_service_wait(), or NULL on
 *         invalid parameters, a full queue under the reject policy, or
 *         a shut-down service.
 */
anyseq_ticket* anyseq_service_submit(anyseq_service* svc, const char* query,
                                     const char* subject,
                                     anyseq_align_kind kind,
                                     anyseq_score_t match,
                                     anyseq_score_t mismatch,
                                     anyseq_score_t gap_open,
                                     anyseq_score_t gap_extend,
                                     int want_alignment);

/**
 * \brief As anyseq_service_submit(), with an explicit priority class
 *        and tenant id.
 *
 * Interactive requests are served with strict priority over bulk; an
 * interactive arrival cuts a forming bulk batch's linger short.  The
 * tenant id selects a token bucket when the service was configured with
 * quotas (C++ API only for now); services created through this C API
 * have quotas disabled, so `tenant` is recorded but never rejects.
 *
 * \param cls    One of ::anyseq_request_class.
 * \param tenant Tenant id for quota accounting (>= 0).
 * \return A ticket, or NULL on invalid parameters, backpressure
 *         rejection, quota exhaustion, or a shut-down service.
 */
anyseq_ticket* anyseq_service_submit_ex(
    anyseq_service* svc, const char* query, const char* subject,
    anyseq_align_kind kind, anyseq_score_t match, anyseq_score_t mismatch,
    anyseq_score_t gap_open, anyseq_score_t gap_extend, int want_alignment,
    anyseq_request_class cls, int64_t tenant);

/**
 * \brief Block until a submitted request completes; returns its score
 *        and (optionally) the gapped strings.
 *
 * Always consumes and frees the ticket, on success and failure alike.
 *
 * \param ticket    Ticket from anyseq_service_submit() (NULL returns
 *                  ::ANYSEQ_C_ERROR).
 * \param q_aligned Output buffer for the gapped query, capacity
 *                  `>= strlen(query) + strlen(subject) + 1`; may be
 *                  NULL to skip.  Written only when the request was
 *                  submitted with `want_alignment` nonzero.
 * \param s_aligned Output buffer for the gapped subject (same capacity
 *                  rule); may be NULL.
 * \return The optimal alignment score, or ::ANYSEQ_C_ERROR if the
 *         request failed (shed, shut down, or invalid parameters).
 */
anyseq_score_t anyseq_service_wait(anyseq_ticket* ticket, char* q_aligned,
                                   char* s_aligned);

/** anyseq_ticket_wait_for(): the result (or error) is ready —
 *  anyseq_service_wait() will not block. */
#define ANYSEQ_WAIT_READY 0
/** anyseq_ticket_wait_for(): the timeout elapsed first. */
#define ANYSEQ_WAIT_TIMEOUT 1

/**
 * \brief Wait for a request to complete, for at most \p timeout_us
 *        microseconds.
 *
 * Unlike anyseq_service_wait() this does NOT consume the ticket: call
 * it any number of times (e.g. to poll with a deadline budget), then
 * redeem the ticket with anyseq_service_wait() or release it with
 * anyseq_ticket_discard().
 *
 * \param ticket     Ticket from anyseq_service_submit() (NULL returns
 *                   -1).
 * \param timeout_us Microseconds to wait; `0` is an instant readiness
 *                   probe, negative values return -1.
 * \return ::ANYSEQ_WAIT_READY when the result (or error) is available,
 *         ::ANYSEQ_WAIT_TIMEOUT when the timeout elapsed first, or -1
 *         on invalid arguments.
 */
int anyseq_ticket_wait_for(const anyseq_ticket* ticket, int64_t timeout_us);

/**
 * \brief Free a ticket without waiting for its result.
 *
 * The request itself still executes (or is drained at shutdown); only
 * the handle is released.  NULL is ignored.
 */
void anyseq_ticket_discard(anyseq_ticket* ticket);

/**
 * \brief Fill \p out with a telemetry snapshot of \p svc.
 * \return 0 on success, -1 when either pointer is NULL.
 */
int anyseq_service_get_stats(const anyseq_service* svc,
                             anyseq_service_stats* out);

/**
 * \brief Render the service's metrics as Prometheus text exposition
 *        into a caller-owned buffer.
 *
 * Snprintf contract: writes at most `cap - 1` bytes plus a NUL
 * terminator (when `cap > 0`) and returns the byte count the complete
 * exposition needs, excluding the NUL — call once with `(NULL, 0)` to
 * size a buffer, then again to render.  For a sharded service the
 * merged series follow the statistically correct rules (histogram
 * buckets sum, sampled percentiles re-rank over pooled samples) and a
 * trailing `anyseq_shard_*{shard="i"}` section preserves the per-shard
 * breakdown.  Metric names are documented in docs/OBSERVABILITY.md.
 *
 * \param svc Service handle.
 * \param buf Output buffer (may be NULL when \p cap is 0).
 * \param cap Capacity of \p buf in bytes.
 * \return Bytes required excluding the NUL, or -1 when \p svc is NULL.
 */
int64_t anyseq_service_dump_metrics(const anyseq_service* svc, char* buf,
                                    size_t cap);

/**
 * \brief Start request-lifecycle tracing for the whole process.
 *
 * Allocates a trace collector (fixed per-thread ring buffers; recording
 * is allocation-free and lock-free) and arms it so every service in the
 * process emits span events — submit, cache probe, ring wait, batch
 * collect, workspace wait, kernel execute, complete — plus instants for
 * watchdog restarts, brownout, linger adaptation, and load shedding.
 * Stop with anyseq_tracing_stop(); dump with
 * anyseq_service_dump_trace().  In a library built with
 * `-DANYSEQ_TRACING=0` the emission sites are compiled out: tracing
 * still starts and dumps, but the trace stays empty.
 *
 * \param events_per_thread Ring capacity per recording thread; `<= 0`
 *                          picks the default (8192).  Rings wrap — the
 *                          newest events survive.
 * \return 0 on success, -1 when tracing is already started or the
 *         collector could not be allocated.
 */
int anyseq_tracing_start(int64_t events_per_thread);

/**
 * \brief Disarm and free the process-wide trace collector.
 *
 * Call only when no traffic is in flight (drain or destroy services
 * first, or tolerate losing the last events): emission sites must not
 * race the teardown.  The captured events are freed — dump before
 * stopping.
 *
 * \return 0 on success, -1 when tracing was never started.
 */
int anyseq_tracing_stop(void);

/**
 * \brief Render the captured trace as Chrome trace-event JSON into a
 *        caller-owned buffer.
 *
 * The document loads directly in Perfetto (ui.perfetto.dev) or
 * chrome://tracing.  Same snprintf contract as
 * anyseq_service_dump_metrics().  A dump taken while traffic is still
 * flowing is a best-effort snapshot; dump after draining for an exact
 * capture.  \p svc is accepted for symmetry and future per-service
 * filtering — the trace itself is process-wide.
 *
 * \param svc Service handle.
 * \param buf Output buffer (may be NULL when \p cap is 0).
 * \param cap Capacity of \p buf in bytes.
 * \return Bytes required excluding the NUL, or -1 when \p svc is NULL
 *         or anyseq_tracing_start() was never called.
 */
int64_t anyseq_service_dump_trace(const anyseq_service* svc, char* buf,
                                  size_t cap);

/**
 * \brief Drain and destroy a service.
 *
 * Blocks until every queued request has executed.  Outstanding tickets
 * must have been redeemed or discarded before this call.  NULL is
 * ignored.
 */
void anyseq_service_destroy(anyseq_service* svc);

/**
 * \brief Library version string (static storage; never NULL, do not
 *        free).
 */
const char* anyseq_version(void);

/**
 * \brief Name of the SIMD engine variant the library dispatches to on
 *        this machine.
 *
 * The library ships every alignment engine three times, compiled into
 * the per-variant namespaces `anyseq::v_scalar` / `v_avx2` / `v_avx512`
 * with the matching instruction-set flags.  At each call the dispatcher
 * probes the CPU and selects the widest variant both the binary and the
 * processor support; this function reports that selection — it is
 * exactly the `ops.name` of the dispatched variant table, i.e. what
 * every C API alignment call in this process will execute.
 *
 * \return `"scalar"`, `"avx2"`, or `"avx512"` (static storage; never
 *         NULL, do not free).  The value is stable for the lifetime of
 *         the process.
 */
const char* anyseq_backend_name(void);

#ifdef __cplusplus
}
#endif

#endif /* ANYSEQ_C_H */
