#pragma once
/// \file schedsim.hpp
/// Discrete-event simulator for wavefront tile scheduling.
///
/// Purpose (DESIGN.md §3): the paper's Fig. 6 compares dynamic vs. static
/// wavefront thread scaling on a 32-core machine.  This host has one
/// core, so raw wall-clock scaling cannot be measured — but the *object*
/// of Fig. 6 is the scheduling policy, and that is fully determined by
/// the tile DAG, the per-tile cost, and the policy's synchronization
/// structure.  The simulator replays the exact dependency structure the
/// real schedulers execute (same grids, same ready rules) on T virtual
/// cores, using per-tile costs measured from the real kernels, and
/// reports makespan and parallel efficiency.
///
/// Dynamic policy: event-driven list scheduling — a tile may start as
/// soon as its dependencies finished and a core is free (that is what the
/// MPMC-queue scheduler achieves), plus a per-pop queue overhead.
///
/// Static policy: all tiles of anti-diagonal d are distributed over the T
/// cores, then a barrier; per-diagonal time is ceil(k_d / T) tile costs
/// plus the barrier overhead.  Short diagonals at the wavefront's ramp
/// up/down leave most cores idle — the effect that ruins Parasail and the
/// paper's preliminary version.

#include <span>
#include <vector>

#include "core/types.hpp"
#include "parallel/wavefront.hpp"

namespace anyseq::schedsim {

struct sim_params {
  double tile_cost_us = 50.0;     ///< cost of relaxing one tile
  double queue_overhead_us = 0.3; ///< dynamic: per dequeue/enqueue pair
  double barrier_cost_us = 8.0;   ///< static: per diagonal
};

struct sim_result {
  double makespan_us = 0.0;
  double busy_us = 0.0;      ///< sum of tile costs (useful work)
  double efficiency = 0.0;   ///< busy / (cores * makespan)
  std::uint64_t tiles = 0;
};

/// Simulate the dynamic wavefront on `cores` virtual cores.  Multiple
/// grids are in flight simultaneously, as in the real scheduler.
[[nodiscard]] sim_result simulate_dynamic(
    std::span<const parallel::grid_dims> grids, int cores,
    const sim_params& p);

/// Simulate the static per-diagonal wavefront (grids run sequentially).
[[nodiscard]] sim_result simulate_static(
    std::span<const parallel::grid_dims> grids, int cores,
    const sim_params& p);

/// Efficiency curve over a list of core counts (convenience for Fig. 6).
struct scaling_point {
  int cores;
  sim_result dynamic_r, static_r;
};
[[nodiscard]] std::vector<scaling_point> scaling_curve(
    std::span<const parallel::grid_dims> grids,
    std::span<const int> core_counts, const sim_params& p);

}  // namespace anyseq::schedsim
