#include "schedsim/schedsim.hpp"

#include <algorithm>
#include <queue>

#include "core/macros.hpp"

namespace anyseq::schedsim {
namespace {

using parallel::grid_dims;

struct ready_tile {
  double time;
  std::int32_t grid, ty, tx;
  // Earliest-ready-first; FIFO-ish tie-breaking via coordinates keeps the
  // simulation deterministic.
  bool operator>(const ready_tile& o) const {
    return std::tie(time, grid, ty, tx) >
           std::tie(o.time, o.grid, o.ty, o.tx);
  }
};

}  // namespace

sim_result simulate_dynamic(std::span<const grid_dims> grids, int cores,
                            const sim_params& p) {
  ANYSEQ_CHECK(cores >= 1, "cores must be >= 1");
  sim_result out;
  for (const auto& g : grids) out.tiles += g.total();
  out.busy_us = static_cast<double>(out.tiles) * p.tile_cost_us;
  if (out.tiles == 0) return out;

  // Dependency counters.
  std::vector<std::vector<std::int8_t>> deps(grids.size());
  for (std::size_t g = 0; g < grids.size(); ++g) {
    deps[g].resize(static_cast<std::size_t>(grids[g].total()));
    for (index_t ty = 0; ty < grids[g].tiles_y; ++ty)
      for (index_t tx = 0; tx < grids[g].tiles_x; ++tx)
        deps[g][static_cast<std::size_t>(ty * grids[g].tiles_x + tx)] =
            static_cast<std::int8_t>((ty > 0) + (tx > 0));
  }

  std::priority_queue<ready_tile, std::vector<ready_tile>,
                      std::greater<ready_tile>>
      ready;
  for (std::size_t g = 0; g < grids.size(); ++g)
    if (grids[g].total() > 0)
      ready.push({0.0, static_cast<std::int32_t>(g), 0, 0});

  // Core free times (min-heap).
  std::priority_queue<double, std::vector<double>, std::greater<double>>
      core_free;
  for (int c = 0; c < cores; ++c) core_free.push(0.0);

  double makespan = 0.0;
  while (!ready.empty()) {
    const ready_tile t = ready.top();
    ready.pop();
    const double core = core_free.top();
    core_free.pop();
    const double start = std::max(t.time, core) + p.queue_overhead_us;
    const double finish = start + p.tile_cost_us;
    core_free.push(finish);
    makespan = std::max(makespan, finish);

    const auto& g = grids[static_cast<std::size_t>(t.grid)];
    auto release = [&](std::int32_t ty, std::int32_t tx) {
      auto& d = deps[static_cast<std::size_t>(t.grid)]
                    [static_cast<std::size_t>(ty * g.tiles_x + tx)];
      if (--d == 0) ready.push({finish, t.grid, ty, tx});
    };
    if (t.ty + 1 < g.tiles_y) release(t.ty + 1, t.tx);
    if (t.tx + 1 < g.tiles_x) release(t.ty, t.tx + 1);
  }

  out.makespan_us = makespan;
  out.efficiency = out.busy_us / (static_cast<double>(cores) * makespan);
  return out;
}

sim_result simulate_static(std::span<const grid_dims> grids, int cores,
                           const sim_params& p) {
  ANYSEQ_CHECK(cores >= 1, "cores must be >= 1");
  sim_result out;
  double total = 0.0;
  for (const auto& g : grids) {
    if (g.total() == 0) continue;
    out.tiles += g.total();
    for (index_t d = 0; d < g.tiles_y + g.tiles_x - 1; ++d) {
      const index_t ty_lo = d < g.tiles_x ? 0 : d - g.tiles_x + 1;
      const index_t ty_hi = d < g.tiles_y ? d : g.tiles_y - 1;
      const index_t k = ty_hi - ty_lo + 1;
      const index_t rounds = (k + cores - 1) / cores;
      total += static_cast<double>(rounds) * p.tile_cost_us +
               p.barrier_cost_us;
    }
  }
  out.busy_us = static_cast<double>(out.tiles) * p.tile_cost_us;
  out.makespan_us = total;
  out.efficiency =
      total == 0.0 ? 0.0
                   : out.busy_us / (static_cast<double>(cores) * total);
  return out;
}

std::vector<scaling_point> scaling_curve(std::span<const grid_dims> grids,
                                         std::span<const int> core_counts,
                                         const sim_params& p) {
  std::vector<scaling_point> out;
  out.reserve(core_counts.size());
  for (int c : core_counts)
    out.push_back({c, simulate_dynamic(grids, c, p),
                   simulate_static(grids, c, p)});
  return out;
}

}  // namespace anyseq::schedsim
