#include "baselines/naive.hpp"

#include <algorithm>
#include <limits>

#include "core/macros.hpp"

namespace anyseq::baselines {
namespace {

constexpr score_t kNegInf = std::numeric_limits<score_t>::min() / 4;

score_t subst_of(const naive_params& p, char_t a, char_t b) {
  if (p.subst_table != nullptr)
    return p.subst_table[static_cast<int>(a) * p.alphabet +
                         static_cast<int>(b)];
  return a == b ? p.match : p.mismatch;
}

bool anchored_start(align_kind k) {
  return k == align_kind::global || k == align_kind::extension;
}

}  // namespace

score_t naive_score(std::span<const char_t> q, std::span<const char_t> s,
                    const naive_params& p) {
  return naive_optimum_cell(q, s, p).score;
}

naive_optimum naive_optimum_cell(std::span<const char_t> q,
                                 std::span<const char_t> s,
                                 const naive_params& p) {
  const index_t n = static_cast<index_t>(q.size());
  const index_t m = static_cast<index_t>(s.size());
  const score_t go = p.gap_open, ge = p.gap_extend;

  // Column-major full matrices M (best ending in a match/mismatch or any
  // state), D (gap in subject: consumes q), I (gap in query: consumes s).
  auto idx = [m](index_t i, index_t j) { return i * (m + 1) + j; };
  std::vector<score_t> M((n + 1) * (m + 1), kNegInf);
  std::vector<score_t> D((n + 1) * (m + 1), kNegInf);
  std::vector<score_t> I((n + 1) * (m + 1), kNegInf);

  M[idx(0, 0)] = 0;
  for (index_t i = 1; i <= n; ++i)
    M[idx(i, 0)] =
        anchored_start(p.kind) ? static_cast<score_t>(go + ge * i) : 0;
  for (index_t j = 1; j <= m; ++j)
    M[idx(0, j)] =
        anchored_start(p.kind) ? static_cast<score_t>(go + ge * j) : 0;

  for (index_t j = 1; j <= m; ++j) {  // column-major on purpose
    for (index_t i = 1; i <= n; ++i) {
      const score_t d = std::max(
          static_cast<score_t>(D[idx(i - 1, j)] + ge),
          static_cast<score_t>(M[idx(i - 1, j)] + go + ge));
      const score_t ins = std::max(
          static_cast<score_t>(I[idx(i, j - 1)] + ge),
          static_cast<score_t>(M[idx(i, j - 1)] + go + ge));
      score_t best =
          static_cast<score_t>(M[idx(i - 1, j - 1)] +
                               subst_of(p, q[i - 1], s[j - 1]));
      best = std::max(best, d);
      best = std::max(best, ins);
      if (p.kind == align_kind::local) best = std::max<score_t>(best, 0);
      D[idx(i, j)] = d;
      I[idx(i, j)] = ins;
      M[idx(i, j)] = best;
    }
  }

  naive_optimum out{kNegInf, 0, 0};
  auto consider = [&](index_t i, index_t j) {
    if (M[idx(i, j)] > out.score) out = {M[idx(i, j)], i, j};
  };
  switch (p.kind) {
    case align_kind::global:
      out = {M[idx(n, m)], n, m};
      break;
    case align_kind::local:
      out = {0, 0, 0};
      for (index_t i = 1; i <= n; ++i)
        for (index_t j = 1; j <= m; ++j) consider(i, j);
      break;
    case align_kind::semiglobal:
      for (index_t j = 0; j <= m; ++j) consider(n, j);
      for (index_t i = 0; i <= n; ++i) consider(i, m);
      break;
    case align_kind::extension:
      for (index_t i = 0; i <= n; ++i)
        for (index_t j = 0; j <= m; ++j) consider(i, j);
      break;
  }
  return out;
}

namespace {

/// Path enumerator: at (i, j) either consume both, q only, or s only.
/// `gap_state`: 0 none, 1 in q-consuming gap (D), 2 in s-consuming gap (I).
struct enumerator {
  std::span<const char_t> q, s;
  const naive_params& p;
  score_t best = kNegInf;

  void run(index_t i, index_t j, score_t acc, int gap_state) {
    const index_t n = static_cast<index_t>(q.size());
    const index_t m = static_cast<index_t>(s.size());
    // Every cell may end the alignment for local/extension; for
    // semiglobal only the last row/column; for global only (n, m).
    const bool at_end = i == n && j == m;
    switch (p.kind) {
      case align_kind::global:
        if (at_end) best = std::max(best, acc);
        break;
      case align_kind::local:
      case align_kind::extension:
        best = std::max(best, acc);
        break;
      case align_kind::semiglobal:
        if (i == n || j == m) {
          // Trailing gaps are free: any border cell may end the path.
          best = std::max(best, acc);
        }
        break;
    }
    if (i < n && j < m)
      run(i + 1, j + 1,
          static_cast<score_t>(acc + subst_of(p, q[i], s[j])), 0);
    if (i < n)
      run(i + 1, j,
          static_cast<score_t>(acc + (gap_state == 1
                                          ? p.gap_extend
                                          : p.gap_open + p.gap_extend)),
          1);
    if (j < m)
      run(i, j + 1,
          static_cast<score_t>(acc + (gap_state == 2
                                          ? p.gap_extend
                                          : p.gap_open + p.gap_extend)),
          2);
  }
};

}  // namespace

score_t exhaustive_score(std::span<const char_t> q, std::span<const char_t> s,
                         const naive_params& p) {
  ANYSEQ_CHECK(q.size() + s.size() <= 20,
               "exhaustive_score is exponential; inputs too large");
  enumerator e{q, s, p};
  const index_t n = static_cast<index_t>(q.size());
  const index_t m = static_cast<index_t>(s.size());
  if (p.kind == align_kind::global || p.kind == align_kind::extension) {
    e.run(0, 0, 0, 0);
  } else {
    // Free leading region: local starts anywhere; semiglobal starts on
    // row 0 or column 0.
    for (index_t i = 0; i <= n; ++i)
      for (index_t j = 0; j <= m; ++j) {
        const bool ok = p.kind == align_kind::local ? true : (i == 0 || j == 0);
        if (ok) e.run(i, j, 0, 0);
      }
  }
  if (p.kind == align_kind::local) e.best = std::max<score_t>(e.best, 0);
  return e.best;
}

}  // namespace anyseq::baselines
