#pragma once
/// \file naive.hpp
/// Independent reference implementations used as test oracles.
///
/// Deliberately written *without* any of the core headers' relaxation or
/// init machinery (different traversal order, explicit formulas, separate
/// author-structure) so that agreement with core engines is meaningful
/// evidence of correctness rather than shared-bug confirmation.
///
/// Two oracles:
///   * naive_score       — textbook Gotoh DP, column-major, O(n*m) memory
///   * exhaustive_score  — enumerates *every* monotone alignment path and
///                         scores it independently (tiny inputs only)

#include <span>
#include <vector>

#include "core/types.hpp"

namespace anyseq::baselines {

/// Scoring parameters for the oracles (kept as plain data on purpose —
/// no policy objects shared with the code under test).
struct naive_params {
  align_kind kind = align_kind::global;
  score_t match = 2;
  score_t mismatch = -1;
  /// gap open extra cost (0 => linear gaps) and per-symbol extend cost.
  score_t gap_open = 0;
  score_t gap_extend = -1;
  /// optional substitution table (row-major, alphabet k x k); when set it
  /// overrides match/mismatch.
  const score_t* subst_table = nullptr;
  int alphabet = 0;
};

/// Textbook Gotoh dynamic program.  Returns the optimal score.
[[nodiscard]] score_t naive_score(std::span<const char_t> q,
                                  std::span<const char_t> s,
                                  const naive_params& p);

/// Optimal-score end cell of the naive DP (for locate validation).
struct naive_optimum {
  score_t score;
  index_t end_i, end_j;
};
[[nodiscard]] naive_optimum naive_optimum_cell(std::span<const char_t> q,
                                               std::span<const char_t> s,
                                               const naive_params& p);

/// Enumerate all alignments (exponential!) and return the best score.
/// Requires q.size() + s.size() small (guarded; <= 18 is practical).
[[nodiscard]] score_t exhaustive_score(std::span<const char_t> q,
                                       std::span<const char_t> s,
                                       const naive_params& p);

}  // namespace anyseq::baselines
