#pragma once
/// \file libraries.hpp
/// Faithful reimplementations of the comparison libraries' *structural*
/// behaviour (DESIGN.md §3).  The paper's Fig. 5/6 deltas between AnySeq
/// and SeqAn/Parasail/NVBio trace to documented design differences; those
/// differences — not the proprietary binaries — are what these baselines
/// reproduce:
///
///  * `seqan_like`   — dynamic wavefront (like AnySeq; §V: "SeqAn is also
///    based upon a dynamic wavefront approach") but with the *generic
///    affine machinery always engaged*: SeqAn's intrinsics-based kernel
///    emulates control flow with masked data flow and does not emit a
///    specialized linear-gap variant, so linear scoring runs as affine
///    with open = 0.  AnySeq's linear-gap specialization (dropping E/F
///    entirely) is precisely what partial evaluation buys.
///
///  * `parasail_like` — static per-diagonal wavefront ("Parasail rel[ies]
///    on the latter strategy", i.e. static scheduling — §V explains its
///    low long-genome numbers with exactly this) and affine-only scoring
///    ("Parasail does not explicitly specialize the case of linear gap
///    penalties").
///
///  * `nvbio_like`   — the same GPU work on the simulated device, but a
///    less specialized kernel: more issue slots per cell and row spills
///    to global memory, yielding the paper's ~1.1x AnySeq advantage.

#include "core/hirschberg.hpp"
#include "core/scoring.hpp"
#include "gpusim/gpu_engine.hpp"
#include "tiled/batch_engine.hpp"
#include "tiled/tiled_engine.hpp"
#include "tiled/tiled_hirschberg.hpp"

namespace anyseq::baselines {

/// Shared CPU baseline knobs.
struct cpu_baseline_config {
  int threads = 1;
  index_t tile = 512;
};

/// Map a requested gap model onto the always-affine machinery:
/// linear gap g becomes affine (open = 0, extend = g) — identical scores,
/// but the full Gotoh data path (E/F planes, extra max chains) runs.
[[nodiscard]] constexpr affine_gap as_affine(const linear_gap& g) noexcept {
  return {0, g.gap};
}
[[nodiscard]] constexpr affine_gap as_affine(const affine_gap& g) noexcept {
  return g;
}

// ---------------------------------------------------------------------
// seqan_like
// ---------------------------------------------------------------------
template <align_kind K, int Lanes>
class seqan_like {
 public:
  template <class Gap>
  seqan_like(score_t match, score_t mismatch, Gap gap,
             cpu_baseline_config cfg = {})
      : scoring_(match, mismatch), gap_(as_affine(gap)), cfg_(cfg) {}

  [[nodiscard]] score_result score(stage::seq_view q, stage::seq_view s) {
    tiled::tiled_engine<K, affine_gap, simple_scoring, Lanes> eng(
        gap_, scoring_, {cfg_.tile, cfg_.tile, cfg_.threads, true});
    return eng.score(q, s);
  }

  [[nodiscard]] alignment_result align(stage::seq_view q,
                                       stage::seq_view s) {
    static_assert(K == align_kind::global,
                  "baseline traceback is exercised on global alignments");
    return tiled::tiled_hirschberg_align<Lanes>(
        q, s, gap_, scoring_, {cfg_.tile, cfg_.tile, cfg_.threads, true});
  }

  [[nodiscard]] std::vector<score_t> batch_scores(
      std::span<const tiled::pair_view> pairs) {
    tiled::batch_engine<K, affine_gap, simple_scoring, Lanes> eng(
        gap_, scoring_, {cfg_.threads});
    return eng.scores(pairs);
  }

  [[nodiscard]] std::vector<alignment_result> batch_align(
      std::span<const tiled::pair_view> pairs) {
    tiled::batch_engine<K, affine_gap, simple_scoring, Lanes> eng(
        gap_, scoring_, {cfg_.threads});
    return eng.align_all(pairs);
  }

 private:
  simple_scoring scoring_;
  affine_gap gap_;
  cpu_baseline_config cfg_;
};

// ---------------------------------------------------------------------
// parasail_like
// ---------------------------------------------------------------------
template <align_kind K, int Lanes>
class parasail_like {
 public:
  template <class Gap>
  parasail_like(score_t match, score_t mismatch, Gap gap,
                cpu_baseline_config cfg = {})
      : scoring_(match, mismatch), gap_(as_affine(gap)), cfg_(cfg) {}

  [[nodiscard]] score_result score(stage::seq_view q, stage::seq_view s) {
    tiled::tiled_engine<K, affine_gap, simple_scoring, Lanes> eng(
        gap_, scoring_,
        {cfg_.tile, cfg_.tile, cfg_.threads, /*dynamic=*/false});
    return eng.score(q, s);
  }

  [[nodiscard]] alignment_result align(stage::seq_view q,
                                       stage::seq_view s) {
    static_assert(K == align_kind::global);
    using lr = tiled::tiled_last_row<affine_gap, simple_scoring, Lanes>;
    hirschberg_engine<affine_gap, simple_scoring, lr> eng(
        gap_, scoring_,
        lr{gap_, scoring_,
           {cfg_.tile, cfg_.tile, cfg_.threads, /*dynamic=*/false}},
        {1 << 14});
    return eng.align(q, s);
  }

  [[nodiscard]] std::vector<score_t> batch_scores(
      std::span<const tiled::pair_view> pairs) {
    // Parasail's batch mode is a plain loop over its single-pair kernel;
    // pairs do not share SIMD lanes across alignments, so each pair runs
    // the (affine) scalar kernel, parallelized over pairs only.
    tiled::batch_engine<K, affine_gap, simple_scoring, 1> eng(
        gap_, scoring_, {cfg_.threads});
    return eng.scores(pairs);
  }

  [[nodiscard]] std::vector<alignment_result> batch_align(
      std::span<const tiled::pair_view> pairs) {
    tiled::batch_engine<K, affine_gap, simple_scoring, 1> eng(
        gap_, scoring_, {cfg_.threads});
    return eng.align_all(pairs);
  }

 private:
  simple_scoring scoring_;
  affine_gap gap_;
  cpu_baseline_config cfg_;
};

// ---------------------------------------------------------------------
// nvbio_like
// ---------------------------------------------------------------------

/// Model parameters of the less-specialized GPU kernel: more instructions
/// per cell (generic inner loop, no partial evaluation) and lower
/// achieved occupancy.
[[nodiscard]] inline gpusim::gpu_model nvbio_model() {
  gpusim::gpu_model m;
  m.name = "nvbio_like";
  m.issue_per_cell = 14.0;
  m.occupancy = 0.55;
  return m;
}

template <align_kind K, class Gap>
class nvbio_like {
 public:
  nvbio_like(gpusim::device& dev, score_t match, score_t mismatch, Gap gap)
      : dev_(dev), eng_(dev, gap, simple_scoring{match, mismatch}) {}

  [[nodiscard]] score_result score(stage::seq_view q, stage::seq_view s) {
    const auto r = eng_.score(q, s);
    log_row_spills(q.size(), s.size());
    return r;
  }

  [[nodiscard]] alignment_result align(stage::seq_view q,
                                       stage::seq_view s) {
    auto r = eng_.align(q, s);
    log_row_spills(q.size(), s.size());
    log_row_spills(q.size(), s.size());  // reverse passes of the D&C
    return r;
  }

  [[nodiscard]] std::vector<alignment_result> batch(
      std::span<const tiled::pair_view> pairs, bool want_traceback) {
    auto out = eng_.batch(pairs, want_traceback);
    for (const auto& p : pairs) log_row_spills(p.q.size(), p.s.size());
    return out;
  }

  [[nodiscard]] gpusim::model_result estimate() const {
    return gpusim::estimate(dev_.counters(), nvbio_model());
  }

 private:
  /// NVBio's kernels keep whole DP rows in global memory once per warp
  /// sweep instead of the shared-memory stripe reuse AnySeq performs.
  void log_row_spills(index_t n, index_t m) {
    const auto rows = static_cast<std::uint64_t>((n + 127) / 128);
    dev_.log_range_access(0, rows * static_cast<std::uint64_t>(m), 4, 4,
                          true);
  }

  gpusim::device& dev_;
  gpusim::gpu_engine<K, Gap, simple_scoring> eng_;
};

}  // namespace anyseq::baselines
