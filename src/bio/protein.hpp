#pragma once
/// \file protein.hpp
/// Protein support: the 20 + X amino-acid alphabet and the BLOSUM62
/// substitution matrix.  The paper evaluates DNA only; the engines are
/// alphabet-agnostic, so protein alignment falls out of the same
/// machinery with a different matrix_scoring instantiation — the kind of
/// extension the paper's design argument promises to make cheap.

#include <array>
#include <string_view>
#include <vector>

#include "core/scoring.hpp"
#include "core/types.hpp"

namespace anyseq::bio {

/// Amino-acid codes, ARNDCQEGHILKMFPSTWYV order (BLOSUM row order),
/// 20 = X/unknown.
inline constexpr int protein_alphabet_size = 21;
inline constexpr std::string_view protein_letters = "ARNDCQEGHILKMFPSTWYVX";

[[nodiscard]] constexpr char_t protein_encode(char c) noexcept {
  // Upper-case the letter, then scan the canonical order.
  const char u = (c >= 'a' && c <= 'z') ? static_cast<char>(c - 32) : c;
  for (std::size_t i = 0; i < 20; ++i)
    if (protein_letters[i] == u) return static_cast<char_t>(i);
  // Common aliases fold onto their BLOSUM surrogates.
  if (u == 'B') return 2;   // Asx -> N
  if (u == 'Z') return 5;   // Glx -> Q
  if (u == 'J') return 9;   // Xle -> I
  if (u == 'U') return 4;   // Sec -> C
  if (u == 'O') return 11;  // Pyl -> K
  return 20;                // X
}

[[nodiscard]] constexpr char protein_decode(char_t code) noexcept {
  return code < protein_alphabet_size ? protein_letters[code] : 'X';
}

[[nodiscard]] inline std::vector<char_t> protein_encode_all(
    std::string_view s) {
  std::vector<char_t> out(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) out[i] = protein_encode(s[i]);
  return out;
}

using protein_scoring = matrix_scoring<protein_alphabet_size>;

/// The BLOSUM62 matrix (Henikoff & Henikoff 1992), with X scoring the
/// standard -1 against everything (-1 vs itself as in NCBI's tables... X
/// vs X is -1).
[[nodiscard]] constexpr protein_scoring blosum62() {
  // Row order: A R N D C Q E G H I L K M F P S T W Y V (then X).
  constexpr score_t t[20][20] = {
      {4, -1, -2, -2, 0, -1, -1, 0, -2, -1, -1, -1, -1, -2, -1, 1, 0, -3, -2, 0},
      {-1, 5, 0, -2, -3, 1, 0, -2, 0, -3, -2, 2, -1, -3, -2, -1, -1, -3, -2, -3},
      {-2, 0, 6, 1, -3, 0, 0, 0, 1, -3, -3, 0, -2, -3, -2, 1, 0, -4, -2, -3},
      {-2, -2, 1, 6, -3, 0, 2, -1, -1, -3, -4, -1, -3, -3, -1, 0, -1, -4, -3, -3},
      {0, -3, -3, -3, 9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1},
      {-1, 1, 0, 0, -3, 5, 2, -2, 0, -3, -2, 1, 0, -3, -1, 0, -1, -2, -1, -2},
      {-1, 0, 0, 2, -4, 2, 5, -2, 0, -3, -3, 1, -2, -3, -1, 0, -1, -3, -2, -2},
      {0, -2, 0, -1, -3, -2, -2, 6, -2, -4, -4, -2, -3, -3, -2, 0, -2, -2, -3, -3},
      {-2, 0, 1, -1, -3, 0, 0, -2, 8, -3, -3, -1, -2, -1, -2, -1, -2, -2, 2, -3},
      {-1, -3, -3, -3, -1, -3, -3, -4, -3, 4, 2, -3, 1, 0, -3, -2, -1, -3, -1, 3},
      {-1, -2, -3, -4, -1, -2, -3, -4, -3, 2, 4, -2, 2, 0, -3, -2, -1, -2, -1, 1},
      {-1, 2, 0, -1, -3, 1, 1, -2, -1, -3, -2, 5, -1, -3, -1, 0, -1, -3, -2, -2},
      {-1, -1, -2, -3, -1, 0, -2, -3, -2, 1, 2, -1, 5, 0, -2, -1, -1, -1, -1, 1},
      {-2, -3, -3, -3, -2, -3, -3, -3, -1, 0, 0, -3, 0, 6, -4, -2, -2, 1, 3, -1},
      {-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4, 7, -1, -1, -4, -3, -2},
      {1, -1, 1, 0, -1, 0, 0, 0, -1, -2, -2, 0, -1, -2, -1, 4, 1, -3, -2, -2},
      {0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 1, 5, -2, -2, 0},
      {-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1, 1, -4, -3, -2, 11, 2, -3},
      {-2, -2, -2, -3, -2, -1, -2, -3, 2, -1, -1, -2, -1, 3, -3, -2, -2, 2, 7, -1},
      {0, -3, -3, -3, -1, -2, -2, -3, -3, 3, 1, -2, 1, -1, -2, -2, 0, -3, -1, 4},
  };
  protein_scoring m;
  for (int a = 0; a < protein_alphabet_size; ++a)
    for (int b = 0; b < protein_alphabet_size; ++b) {
      if (a >= 20 || b >= 20)
        m.set(a, b, -1);  // X column/row
      else
        m.set(a, b, t[a][b]);
    }
  return m;
}

}  // namespace anyseq::bio
