#include "bio/datasets.hpp"

#include "core/errors.hpp"

namespace anyseq::bio {

const std::array<genome_spec, 6>& table1_specs() {
  static const std::array<genome_spec, 6> specs{{
      {"NC_000962.3", 4411532, "Mycobacterium tuberculosis H37Rv", 0.656},
      {"NC_000913.3", 4641652, "Escherichia coli K12 MG1655", 0.508},
      {"NT_033779.4", 23011544, "Drosophila melanogaster chr. 2L", 0.418},
      {"BA000046.3", 32799110, "Pan troglodytes DNA chr. 22", 0.409},
      {"NC_019481.1", 42034648, "Ovis aries breed Texel chr. 24", 0.417},
      {"NC_019478.1", 50073674, "Ovis aries breed Texel chr. 21", 0.419},
  }};
  return specs;
}

const std::array<genome_pair_spec, 3>& table1_pairs() {
  // The paper aligns "three pairs of long genomic sequences of roughly
  // similar length": the two bacteria, the fly vs. chimp chromosomes,
  // and the two sheep chromosomes.
  static const std::array<genome_pair_spec, 3> pairs{{
      {0, 1, "MTB/EColi (~4.5 Mbp)"},
      {2, 3, "Drosophila/Pan (~23-33 Mbp)"},
      {4, 5, "Ovis chr24/chr21 (~42-50 Mbp)"},
  }};
  return pairs;
}

sequence make_surrogate(const genome_spec& spec, std::uint64_t scale,
                        std::uint64_t seed) {
  if (scale == 0) throw invalid_argument_error("scale must be >= 1");
  genome_params p;
  p.length = static_cast<index_t>(spec.full_length / scale);
  p.gc = spec.gc;
  p.repeat_rate = 0.08;
  p.repeat_len_min = 100;
  p.repeat_len_max = std::max<index_t>(200, p.length / 100);
  p.seed = seed * 0x9E3779B9ULL ^ spec.full_length;
  std::string name = std::string(spec.accession) + " (1/" +
                     std::to_string(scale) + " surrogate)";
  return random_genome(std::move(name), p);
}

genome_pair make_pair(int pair_index, std::uint64_t scale,
                      std::uint64_t seed) {
  const auto& pairs = table1_pairs();
  if (pair_index < 0 || pair_index >= static_cast<int>(pairs.size()))
    throw invalid_argument_error("pair_index must be 0..2");
  const auto& ps = pairs[static_cast<std::size_t>(pair_index)];
  const auto& sa = table1_specs()[static_cast<std::size_t>(ps.first)];
  const auto& sb = table1_specs()[static_cast<std::size_t>(ps.second)];

  sequence a = make_surrogate(sa, scale, seed);

  // The pair's second member: mutated copy of the first, then padded /
  // trimmed to the second accession's scaled length, so the two share a
  // homologous core (long match runs) but differ in length as the real
  // pair does.
  mutation_params mp;
  mp.substitution_rate = 0.08;
  mp.indel_rate = 0.015;
  mp.seed = seed * 0x2545F491ULL + static_cast<std::uint64_t>(pair_index);
  sequence core = mutate_sequence(a, mp, sb.accession);

  const auto want = static_cast<index_t>(sb.full_length / scale);
  std::vector<char_t> codes = core.codes();
  if (static_cast<index_t>(codes.size()) > want) {
    codes.resize(static_cast<std::size_t>(want));
  } else if (static_cast<index_t>(codes.size()) < want) {
    genome_params tail;
    tail.length = want - static_cast<index_t>(codes.size());
    tail.gc = sb.gc;
    tail.repeat_rate = 0.0;
    tail.seed = mp.seed + 17;
    const sequence pad = random_genome("pad", tail);
    codes.insert(codes.end(), pad.codes().begin(), pad.codes().end());
  }
  std::string name = std::string(sb.accession) + " (1/" +
                     std::to_string(scale) + " surrogate)";
  sequence b(std::move(name), std::move(codes));
  return {std::move(a), std::move(b), ps.label};
}

}  // namespace anyseq::bio
