#include "bio/fasta.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "core/errors.hpp"

namespace anyseq::bio {
namespace {

/// getline that tolerates CRLF and reports line numbers.
bool next_line(std::istream& in, std::string& line, std::size_t& lineno) {
  if (!std::getline(in, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  ++lineno;
  return true;
}

[[noreturn]] void fail(std::size_t lineno, const std::string& what) {
  throw parse_error("line " + std::to_string(lineno) + ": " + what);
}

bool valid_seq_char(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || c == '-' ||
         c == '*' || c == '.';
}

}  // namespace

std::vector<sequence> read_fasta(std::istream& in) {
  std::vector<sequence> out;
  std::string line, name, letters;
  std::size_t lineno = 0;
  bool have_record = false;

  auto flush = [&] {
    if (have_record) {
      out.push_back(sequence::from_string(name, letters));
      letters.clear();
    }
  };

  while (next_line(in, line, lineno)) {
    if (line.empty() || line[0] == ';') continue;  // blank / comment
    if (line[0] == '>') {
      flush();
      name = line.substr(1);
      // Trim a trailing description is left to callers; strip spaces at ends.
      while (!name.empty() && name.front() == ' ') name.erase(name.begin());
      have_record = true;
      continue;
    }
    if (!have_record) fail(lineno, "sequence data before any '>' header");
    for (char c : line)
      if (!valid_seq_char(c))
        fail(lineno, std::string("invalid sequence character '") + c + "'");
    letters += line;
  }
  flush();
  return out;
}

std::vector<sequence> read_fasta_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw error("cannot open FASTA file: " + path);
  return read_fasta(in);
}

void write_fasta(std::ostream& out, const std::vector<sequence>& seqs,
                 std::size_t line_width) {
  if (line_width == 0) throw invalid_argument_error("line_width must be > 0");
  for (const auto& s : seqs) {
    out << '>' << s.name() << '\n';
    const std::string letters = s.to_string();
    for (std::size_t i = 0; i < letters.size(); i += line_width)
      out << letters.substr(i, line_width) << '\n';
    if (letters.empty()) out << '\n';
  }
}

std::vector<fastq_record> read_fastq(std::istream& in) {
  std::vector<fastq_record> out;
  std::string line;
  std::size_t lineno = 0;
  while (next_line(in, line, lineno)) {
    if (line.empty()) continue;
    if (line[0] != '@') fail(lineno, "expected '@' FASTQ header");
    const std::string name = line.substr(1);
    std::string letters;
    if (!next_line(in, letters, lineno)) fail(lineno, "missing sequence line");
    std::string plus;
    if (!next_line(in, plus, lineno) || plus.empty() || plus[0] != '+')
      fail(lineno, "missing '+' separator");
    std::string quality;
    if (!next_line(in, quality, lineno)) fail(lineno, "missing quality line");
    if (quality.size() != letters.size())
      fail(lineno, "quality length != sequence length");
    for (char c : quality)
      if (c < '!' || c > '~') fail(lineno, "quality character out of range");
    out.push_back({sequence::from_string(name, letters), quality});
  }
  return out;
}

void write_fastq(std::ostream& out, const std::vector<fastq_record>& recs) {
  for (const auto& r : recs) {
    if (static_cast<index_t>(r.quality.size()) != r.seq.size())
      throw invalid_argument_error("quality length != sequence length for " +
                                   r.seq.name());
    out << '@' << r.seq.name() << '\n'
        << r.seq.to_string() << '\n'
        << "+\n"
        << r.quality << '\n';
  }
}

}  // namespace anyseq::bio
