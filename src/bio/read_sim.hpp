#pragma once
/// \file read_sim.hpp
/// Mason-like Illumina read simulator (paper §V: "The set of reads was
/// simulated with Mason using chromosome 10 of GRCH38 as reference").
///
/// Samples fixed-length reads from a reference, applies an Illumina-shaped
/// error model (position-dependent substitution rate rising toward the
/// 3' end, rare 1-3 bp indels), emits Phred qualities consistent with the
/// applied errors, and — for the paper's benchmark — produces *pairs* of
/// reads covering overlapping loci so that pairwise alignment of the pair
/// is meaningful.

#include <cstdint>
#include <vector>

#include "bio/fasta.hpp"
#include "bio/sequence.hpp"

namespace anyseq::bio {

struct read_sim_params {
  index_t read_length = 150;
  /// substitution probability at the 5' end and at the 3' end; the rate
  /// is interpolated linearly across the read (Illumina-shaped).
  double sub_rate_begin = 0.002;
  double sub_rate_end = 0.02;
  double indel_rate = 0.0005;
  index_t indel_max = 3;
  std::uint64_t seed = 42;
};

/// One simulated read with its origin for ground-truth checks.
struct simulated_read {
  sequence read;
  std::string quality;   ///< Phred+33, consistent with applied errors
  index_t origin = 0;    ///< reference position the read was sampled from
  int n_errors = 0;      ///< substitutions + indel events applied
};

/// Simulate `count` single reads from `reference`.
[[nodiscard]] std::vector<simulated_read> simulate_reads(
    const sequence& reference, std::size_t count, const read_sim_params& p);

/// A pair of reads sampled from the same locus (both with errors) — the
/// unit of work for the paper's 12.5M-pair benchmark.
struct read_pair {
  sequence first, second;
};

/// Simulate `count` read pairs over shared loci.
[[nodiscard]] std::vector<read_pair> simulate_read_pairs(
    const sequence& reference, std::size_t count, const read_sim_params& p);

/// Convert simulated reads to FASTQ records.
[[nodiscard]] std::vector<fastq_record> to_fastq(
    const std::vector<simulated_read>& reads);

}  // namespace anyseq::bio
