#pragma once
/// \file random.hpp
/// Synthetic genome generation: i.i.d. bases with controlled GC content,
/// plus repeat structure (tandem and interspersed duplications) so that
/// alignments of mutated pairs exhibit realistic gap/match run structure
/// rather than pure noise.

#include <cstdint>

#include "bio/sequence.hpp"

namespace anyseq::bio {

/// Parameters for the synthetic genome generator.
struct genome_params {
  index_t length = 1 << 20;
  double gc = 0.45;          ///< target GC fraction
  double repeat_rate = 0.1;  ///< fraction of the genome covered by copies
  index_t repeat_len_min = 200;
  index_t repeat_len_max = 2000;
  double n_rate = 0.0;       ///< rate of N bases (assembly gaps)
  std::uint64_t seed = 1;
};

/// Generate a deterministic synthetic genome.
[[nodiscard]] sequence random_genome(std::string name, const genome_params& p);

/// A mutated copy of `src`, applying substitutions and indels at the given
/// rates (indel lengths geometric, capped).  Used to build realistic
/// long-genome alignment pairs (two "evolutionarily related" sequences).
struct mutation_params {
  double substitution_rate = 0.05;
  double indel_rate = 0.01;
  double indel_extend_p = 0.7;  ///< geometric continuation probability
  index_t indel_max = 50;
  std::uint64_t seed = 7;
};

[[nodiscard]] sequence mutate_sequence(const sequence& src,
                                       const mutation_params& p,
                                       std::string name = {});

}  // namespace anyseq::bio
