#pragma once
/// \file datasets.hpp
/// Benchmark datasets reproducing the paper's evaluation inputs.
///
/// Table I of the paper lists six long genomic sequences (NCBI
/// accessions, 4.4–50 Mbp) aligned in three pairs of similar length.
/// The real genomes are not available offline, so we build deterministic
/// synthetic surrogates: matched names, scaled lengths, realistic GC and
/// repeat structure, and each pair's second member derived by mutation so
/// the alignment has biologically-shaped match/gap runs.  Alignment
/// throughput depends on sequence length and scoring — not on biological
/// content — so the surrogates preserve the benchmark's behaviour
/// (DESIGN.md §3).

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "bio/random.hpp"
#include "bio/sequence.hpp"

namespace anyseq::bio {

/// One Table I entry.
struct genome_spec {
  const char* accession;
  std::uint64_t full_length;  ///< length of the real sequence (bp)
  const char* definition;
  double gc;  ///< approximate GC of the real genome
};

/// The six sequences of paper Table I.
[[nodiscard]] const std::array<genome_spec, 6>& table1_specs();

/// The three benchmark pairs (indices into table1_specs), as used in the
/// paper: similar-length genomes are aligned against each other.
struct genome_pair_spec {
  int first, second;
  const char* label;
};
[[nodiscard]] const std::array<genome_pair_spec, 3>& table1_pairs();

/// A materialized benchmark pair.
struct genome_pair {
  sequence a, b;
  std::string label;
};

/// Build a synthetic surrogate of one Table I sequence, scaled down by
/// `scale` (lengths divide by it; quadratic DP cost divides by scale^2).
[[nodiscard]] sequence make_surrogate(const genome_spec& spec,
                                      std::uint64_t scale,
                                      std::uint64_t seed = 1);

/// Build one of the three benchmark pairs at the given scale.  The second
/// member is generated independently (as in the paper, the pairs are two
/// different organisms) but with a shared homologous core so alignments
/// contain long match runs.
[[nodiscard]] genome_pair make_pair(int pair_index, std::uint64_t scale,
                                    std::uint64_t seed = 1);

}  // namespace anyseq::bio
