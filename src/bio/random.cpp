#include "bio/random.hpp"

#include <algorithm>

#include "bio/rng.hpp"
#include "core/errors.hpp"

namespace anyseq::bio {

sequence random_genome(std::string name, const genome_params& p) {
  if (p.length < 0) throw invalid_argument_error("genome length must be >= 0");
  if (p.gc < 0.0 || p.gc > 1.0)
    throw invalid_argument_error("gc must be in [0, 1]");
  xoshiro256 rng(p.seed);

  std::vector<char_t> codes(static_cast<std::size_t>(p.length));
  for (auto& c : codes) {
    const bool is_gc = rng.uniform() < p.gc;
    const bool second = rng.next() & 1;
    c = is_gc ? (second ? dna_g : dna_c) : (second ? dna_t : dna_a);
  }

  // Interspersed repeats: copy random windows over random destinations
  // until the requested coverage is reached.
  if (p.repeat_rate > 0 && p.length > 2 * p.repeat_len_max) {
    index_t covered = 0;
    const auto target =
        static_cast<index_t>(p.repeat_rate * static_cast<double>(p.length));
    while (covered < target) {
      const index_t len =
          p.repeat_len_min +
          static_cast<index_t>(
              rng.below(static_cast<std::uint64_t>(
                  p.repeat_len_max - p.repeat_len_min + 1)));
      const index_t src = static_cast<index_t>(
          rng.below(static_cast<std::uint64_t>(p.length - len)));
      const index_t dst = static_cast<index_t>(
          rng.below(static_cast<std::uint64_t>(p.length - len)));
      std::copy_n(codes.begin() + src, len, codes.begin() + dst);
      covered += len;
    }
  }

  // Assembly gaps.
  if (p.n_rate > 0) {
    for (auto& c : codes)
      if (rng.uniform() < p.n_rate) c = dna_n;
  }

  return {std::move(name), std::move(codes)};
}

sequence mutate_sequence(const sequence& src, const mutation_params& p,
                         std::string name) {
  xoshiro256 rng(p.seed);
  const auto& in = src.codes();
  std::vector<char_t> out;
  out.reserve(in.size() + in.size() / 16);

  auto random_base = [&rng] { return static_cast<char_t>(rng.below(4)); };
  auto indel_length = [&] {
    index_t len = 1;
    while (len < p.indel_max && rng.uniform() < p.indel_extend_p) ++len;
    return len;
  };

  for (std::size_t i = 0; i < in.size(); ++i) {
    const double r = rng.uniform();
    if (r < p.indel_rate / 2) {
      for (index_t k = indel_length(); k > 0; --k) out.push_back(random_base());
      out.push_back(in[i]);
    } else if (r < p.indel_rate) {
      const index_t len = indel_length();
      i += static_cast<std::size_t>(len - 1);  // deletion of `len` bases
    } else if (r < p.indel_rate + p.substitution_rate) {
      char_t c = random_base();
      while (c == in[i]) c = random_base();
      out.push_back(c);
    } else {
      out.push_back(in[i]);
    }
  }

  if (name.empty()) name = src.name() + "_mut";
  return {std::move(name), std::move(out)};
}

}  // namespace anyseq::bio
