#pragma once
/// \file fasta.hpp
/// Minimal, strict FASTA and FASTQ readers/writers.
///
/// Supports multi-record files, wrapped sequence lines, CRLF endings, and
/// comments; malformed input raises anyseq::parse_error with a line
/// number.  Streams are taken by reference so tests can use
/// std::istringstream and tools can read from files or pipes alike.

#include <iosfwd>
#include <string>
#include <vector>

#include "bio/sequence.hpp"

namespace anyseq::bio {

/// Read every record from a FASTA stream.
[[nodiscard]] std::vector<sequence> read_fasta(std::istream& in);

/// Read every record from a FASTA file (throws parse_error / error).
[[nodiscard]] std::vector<sequence> read_fasta_file(const std::string& path);

/// Write records as FASTA with the given line width.
void write_fasta(std::ostream& out, const std::vector<sequence>& seqs,
                 std::size_t line_width = 70);

/// One FASTQ record: sequence plus per-base Phred+33 qualities.
struct fastq_record {
  sequence seq;
  std::string quality;
};

/// Read every record from a FASTQ stream.
[[nodiscard]] std::vector<fastq_record> read_fastq(std::istream& in);

/// Write FASTQ records.
void write_fastq(std::ostream& out, const std::vector<fastq_record>& recs);

}  // namespace anyseq::bio
