#pragma once
/// \file rng.hpp
/// Deterministic random number generation for all synthetic data.
///
/// Every workload generator in the repo derives from these two primitives
/// so that benchmarks and tests are reproducible bit-for-bit across runs
/// and machines (DESIGN.md "Determinism").

#include <cstdint>

namespace anyseq::bio {

/// SplitMix64 — used to expand a user seed into stream seeds.
class splitmix64 {
 public:
  explicit constexpr splitmix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality main generator.
class xoshiro256 {
 public:
  explicit constexpr xoshiro256(std::uint64_t seed) noexcept {
    splitmix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) (Lemire-reduction, tiny bias-free
  /// enough for synthetic-data purposes).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    return bound == 0 ? 0 : next() % bound;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace anyseq::bio
