#include "bio/sequence.hpp"

#include <algorithm>

namespace anyseq::bio {

double sequence::gc_content() const noexcept {
  std::size_t gc = 0, acgt = 0;
  for (char_t c : codes_) {
    if (c == dna_c || c == dna_g) ++gc;
    if (c <= dna_t) ++acgt;
  }
  return acgt == 0 ? 0.0 : static_cast<double>(gc) / static_cast<double>(acgt);
}

packed_sequence packed_sequence::pack(const std::vector<char_t>& codes) {
  packed_sequence out;
  out.n_ = static_cast<index_t>(codes.size());
  out.data_.assign((codes.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    char_t c = codes[i];
    if (c > dna_t) {
      out.n_positions_.push_back(static_cast<index_t>(i));
      c = dna_a;  // placeholder bits under the exception
    }
    out.data_[i / 4] |= static_cast<std::uint8_t>(c << ((i % 4) * 2));
  }
  return out;
}

std::vector<char_t> packed_sequence::unpack() const {
  std::vector<char_t> out(static_cast<std::size_t>(n_));
  for (index_t i = 0; i < n_; ++i)
    out[static_cast<std::size_t>(i)] = static_cast<char_t>(
        (data_[static_cast<std::size_t>(i / 4)] >> ((i % 4) * 2)) & 3);
  for (index_t p : n_positions_) out[static_cast<std::size_t>(p)] = dna_n;
  return out;
}

char_t packed_sequence::at(index_t i) const noexcept {
  if (std::binary_search(n_positions_.begin(), n_positions_.end(), i))
    return dna_n;
  return static_cast<char_t>(
      (data_[static_cast<std::size_t>(i / 4)] >> ((i % 4) * 2)) & 3);
}

}  // namespace anyseq::bio
