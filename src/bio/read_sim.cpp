#include "bio/read_sim.hpp"

#include <algorithm>
#include <cmath>

#include "bio/rng.hpp"
#include "core/errors.hpp"

namespace anyseq::bio {
namespace {

/// Phred+33 symbol for an error probability.
char phred_of(double p_error) {
  const double q = -10.0 * std::log10(std::max(p_error, 1e-6));
  const int qi = std::clamp(static_cast<int>(q), 2, 41);
  return static_cast<char>('!' + qi);
}

simulated_read sample_one(const sequence& ref, index_t origin,
                          const read_sim_params& p, xoshiro256& rng,
                          std::string name) {
  const auto& src = ref.codes();
  std::vector<char_t> out;
  std::string qual;
  out.reserve(static_cast<std::size_t>(p.read_length));
  int errors = 0;

  index_t ref_pos = origin;
  const index_t ref_end = ref.size();
  while (static_cast<index_t>(out.size()) < p.read_length &&
         ref_pos < ref_end) {
    const double frac = static_cast<double>(out.size()) /
                        static_cast<double>(p.read_length);
    const double sub_rate =
        p.sub_rate_begin + frac * (p.sub_rate_end - p.sub_rate_begin);
    const double r = rng.uniform();
    if (r < p.indel_rate / 2) {  // insertion into the read
      const index_t len = 1 + static_cast<index_t>(rng.below(
                                  static_cast<std::uint64_t>(p.indel_max)));
      for (index_t k = 0;
           k < len && static_cast<index_t>(out.size()) < p.read_length; ++k) {
        out.push_back(static_cast<char_t>(rng.below(4)));
        qual.push_back(phred_of(0.5));
      }
      ++errors;
    } else if (r < p.indel_rate) {  // deletion from the reference
      const index_t len = 1 + static_cast<index_t>(rng.below(
                                  static_cast<std::uint64_t>(p.indel_max)));
      ref_pos += len;
      ++errors;
    } else if (r < p.indel_rate + sub_rate) {  // substitution
      char_t c = static_cast<char_t>(rng.below(4));
      const char_t orig = src[static_cast<std::size_t>(ref_pos)];
      while (c == orig) c = static_cast<char_t>(rng.below(4));
      out.push_back(c);
      qual.push_back(phred_of(sub_rate * 4));
      ++ref_pos;
      ++errors;
    } else {
      out.push_back(src[static_cast<std::size_t>(ref_pos)]);
      qual.push_back(phred_of(sub_rate));
      ++ref_pos;
    }
  }
  // Pad if we ran off the reference end (kept deterministic).
  while (static_cast<index_t>(out.size()) < p.read_length) {
    out.push_back(static_cast<char_t>(rng.below(4)));
    qual.push_back(phred_of(0.5));
  }

  simulated_read sr;
  sr.read = sequence(std::move(name), std::move(out));
  sr.quality = std::move(qual);
  sr.origin = origin;
  sr.n_errors = errors;
  return sr;
}

}  // namespace

std::vector<simulated_read> simulate_reads(const sequence& reference,
                                           std::size_t count,
                                           const read_sim_params& p) {
  if (reference.size() < p.read_length + p.indel_max * 4)
    throw invalid_argument_error("reference shorter than read length");
  if (p.read_length <= 0)
    throw invalid_argument_error("read_length must be positive");
  xoshiro256 rng(p.seed);
  const auto span = static_cast<std::uint64_t>(
      reference.size() - p.read_length - p.indel_max * 4);
  std::vector<simulated_read> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto origin = static_cast<index_t>(rng.below(span + 1));
    out.push_back(sample_one(reference, origin, p, rng,
                             "read_" + std::to_string(i)));
  }
  return out;
}

std::vector<read_pair> simulate_read_pairs(const sequence& reference,
                                           std::size_t count,
                                           const read_sim_params& p) {
  if (reference.size() < p.read_length + p.indel_max * 4)
    throw invalid_argument_error("reference shorter than read length");
  xoshiro256 rng(p.seed);
  const auto span = static_cast<std::uint64_t>(
      reference.size() - p.read_length - p.indel_max * 4);
  std::vector<read_pair> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto origin = static_cast<index_t>(rng.below(span + 1));
    auto a = sample_one(reference, origin, p, rng,
                        "pair_" + std::to_string(i) + "/1");
    auto b = sample_one(reference, origin, p, rng,
                        "pair_" + std::to_string(i) + "/2");
    out.push_back({std::move(a.read), std::move(b.read)});
  }
  return out;
}

std::vector<fastq_record> to_fastq(const std::vector<simulated_read>& reads) {
  std::vector<fastq_record> out;
  out.reserve(reads.size());
  for (const auto& r : reads) out.push_back({r.read, r.quality});
  return out;
}

}  // namespace anyseq::bio
