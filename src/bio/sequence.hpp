#pragma once
/// \file sequence.hpp
/// Owning DNA sequence types: a plain encoded sequence with a name, and a
/// 2-bit packed variant for memory-lean storage of long genomes.

#include <cstdint>
#include <string>
#include <vector>

#include "core/alphabet.hpp"
#include "core/errors.hpp"
#include "core/types.hpp"
#include "stage/views.hpp"

namespace anyseq::bio {

/// A named, encoded DNA sequence (codes 0..4).
class sequence {
 public:
  sequence() = default;
  sequence(std::string name, std::vector<char_t> codes)
      : name_(std::move(name)), codes_(std::move(codes)) {}

  /// Build from a character string (IUPAC letters; ambiguity -> N).
  [[nodiscard]] static sequence from_string(std::string name,
                                            std::string_view letters) {
    return {std::move(name), dna_encode_all(letters)};
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] index_t size() const noexcept {
    return static_cast<index_t>(codes_.size());
  }
  [[nodiscard]] bool empty() const noexcept { return codes_.empty(); }
  [[nodiscard]] const std::vector<char_t>& codes() const noexcept {
    return codes_;
  }
  [[nodiscard]] char_t operator[](index_t i) const noexcept {
    return codes_[static_cast<std::size_t>(i)];
  }

  [[nodiscard]] stage::seq_view view() const noexcept {
    return {codes_.data(), size()};
  }
  [[nodiscard]] std::string to_string() const { return dna_decode_all(codes_); }

  /// GC fraction (N excluded from the denominator; 0 for empty).
  [[nodiscard]] double gc_content() const noexcept;

 private:
  std::string name_;
  std::vector<char_t> codes_;
};

/// 2-bit packed DNA (A,C,G,T only — N positions are stored in a sparse
/// exception list, as real genome containers do).  4 bases per byte.
class packed_sequence {
 public:
  packed_sequence() = default;

  /// Pack an encoded sequence.  N positions go to the exception list.
  [[nodiscard]] static packed_sequence pack(const std::vector<char_t>& codes);

  /// Unpack into plain codes.
  [[nodiscard]] std::vector<char_t> unpack() const;

  [[nodiscard]] index_t size() const noexcept { return n_; }
  [[nodiscard]] char_t at(index_t i) const noexcept;
  [[nodiscard]] std::size_t packed_bytes() const noexcept {
    return data_.size();
  }
  [[nodiscard]] std::size_t n_exceptions() const noexcept {
    return n_positions_.size();
  }

 private:
  std::vector<std::uint8_t> data_;
  std::vector<index_t> n_positions_;  // sorted
  index_t n_ = 0;
};

}  // namespace anyseq::bio
