#pragma once
/// \file init.hpp
/// DP boundary initialization per alignment kind (paper §III-A).
///
/// Only four boundary families are ever *read* by the recurrences:
///   H(0,j), H(i,0)            — differ between global and local/semiglobal
///   E(0,j), F(i,0)            — always -inf (a fresh vertical/horizontal
///                                gap must be opened through H)
/// The remaining initializations listed in the paper (E(i,0), F(0,j), ...)
/// are inert and not materialized.

#include "core/gap.hpp"
#include "core/types.hpp"

namespace anyseq {

/// H(i, 0): score of aligning the first i query characters against nothing.
template <align_kind K, class Gap>
[[nodiscard]] ANYSEQ_INLINE score_t init_h_col0(index_t i, const Gap& gap) noexcept {
  if constexpr (K == align_kind::global || K == align_kind::extension) {
    return gap.total(i);
  } else {
    (void)gap;
    (void)i;
    return 0;  // local & semiglobal: free leading query gap
  }
}

/// H(0, j): score of aligning the first j subject characters against nothing.
template <align_kind K, class Gap>
[[nodiscard]] ANYSEQ_INLINE score_t init_h_row0(index_t j, const Gap& gap) noexcept {
  if constexpr (K == align_kind::global || K == align_kind::extension) {
    return gap.total(j);
  } else {
    (void)gap;
    (void)j;
    return 0;
  }
}

/// E(0, j) — read when relaxing row 1.
[[nodiscard]] ANYSEQ_INLINE score_t init_e_row0(index_t /*j*/) noexcept {
  return neg_inf();
}

/// F(i, 0) — read when relaxing column 1.
[[nodiscard]] ANYSEQ_INLINE score_t init_f_col0(index_t /*i*/) noexcept {
  return neg_inf();
}

/// True if the optimum may appear anywhere in the matrix (local) and must
/// be tracked cell-by-cell during the forward pass.
[[nodiscard]] constexpr bool tracks_running_max(align_kind k) noexcept {
  return k == align_kind::local || k == align_kind::extension;
}

/// True if the optimum lives in the last row or column (semiglobal).
[[nodiscard]] constexpr bool optimum_on_border(align_kind k) noexcept {
  return k == align_kind::semiglobal;
}

}  // namespace anyseq
