#pragma once
/// \file gap.hpp
/// Gap-penalty policies (paper Eq. 2–5).
///
/// Penalties are *added* to scores, so typical values are negative:
/// the paper's "linear gap penalty of -1" is `linear_gap{-1}`, its affine
/// scheme Go=-2, Ge=-1 is `affine_gap{-2, -1}` (a gap of length k scores
/// open + k*extend).

#include <cstdlib>

#include "core/macros.hpp"
#include "core/types.hpp"

namespace anyseq {

/// Linear gaps: each gap symbol adds `gap` (Eq. 2/3).  E and F collapse to
/// `H +- gap`; engines instantiated with this policy allocate no E/F
/// storage — the compile-time analogue of the paper's partial evaluation
/// dropping the auxiliary matrices.
struct linear_gap {
  score_t gap = -1;

  constexpr linear_gap() = default;
  constexpr explicit linear_gap(score_t g) noexcept : gap(g) {}

  static constexpr gap_kind kind = gap_kind::linear;

  /// Total penalty of a gap of length k (k >= 0).
  [[nodiscard]] constexpr score_t total(index_t k) const noexcept {
    return static_cast<score_t>(gap * k);
  }
  /// Cost added when a gap starts (equals `extend` here).
  [[nodiscard]] constexpr score_t open_extend() const noexcept { return gap; }
  /// Cost added per additional gap symbol.
  [[nodiscard]] constexpr score_t extend() const noexcept { return gap; }
  /// Extra cost of opening relative to extending (0 for linear gaps).
  [[nodiscard]] constexpr score_t open() const noexcept { return 0; }

  [[nodiscard]] constexpr score_t max_abs_unit() const noexcept {
    return std::abs(gap);
  }
};

/// Affine gaps (Gotoh): a gap of length k adds `open + k*extend`
/// (Eq. 4/5: opening a gap costs Go+Ge, extending costs Ge).
struct affine_gap {
  score_t open_ = -2;
  score_t extend_ = -1;

  constexpr affine_gap() = default;
  constexpr affine_gap(score_t open_cost, score_t extend_cost) noexcept
      : open_(open_cost), extend_(extend_cost) {}

  static constexpr gap_kind kind = gap_kind::affine;

  [[nodiscard]] constexpr score_t total(index_t k) const noexcept {
    return k == 0 ? 0 : static_cast<score_t>(open_ + extend_ * k);
  }
  [[nodiscard]] constexpr score_t open_extend() const noexcept {
    return static_cast<score_t>(open_ + extend_);
  }
  [[nodiscard]] constexpr score_t extend() const noexcept { return extend_; }
  [[nodiscard]] constexpr score_t open() const noexcept { return open_; }

  [[nodiscard]] constexpr score_t max_abs_unit() const noexcept {
    return std::abs(static_cast<score_t>(open_ + extend_));
  }
};

}  // namespace anyseq
