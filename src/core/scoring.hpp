#pragma once
/// \file scoring.hpp
/// Substitution-scoring policies (paper §III-C).
///
/// A scoring policy is any type providing
/// ```
///   template<class S, class C> S subst(C q, C s) const;   // lane-generic
///   score_t max_abs_unit() const;                          // 16-bit bound
/// ```
/// `S` is the score value type (scalar or SIMD pack), `C` the character
/// value type of matching width.  The paper builds these with
/// `simple_subst_scoring(2, -1)` returning a closure; the C++ analogue is a
/// small constexpr-constructible object whose `subst` fully inlines.

#include <algorithm>
#include <array>
#include <cstdlib>

#include "core/ops.hpp"
#include "core/types.hpp"

namespace anyseq {

/// Match/mismatch scoring — the paper's `simple_subst_scoring(same, diff)`.
struct simple_scoring {
  score_t match = 2;
  score_t mismatch = -1;

  constexpr simple_scoring() = default;
  constexpr simple_scoring(score_t same, score_t diff) noexcept
      : match(same), mismatch(diff) {}

  /// Lane-generic substitution score: `q == s ? match : mismatch`.
  template <class S, class C>
  [[nodiscard]] ANYSEQ_INLINE S subst(C q, C s) const noexcept {
    return vselect(veq(q, s), vbroadcast<S>(match), vbroadcast<S>(mismatch));
  }

  /// Largest |score| a single column can contribute (16-bit range check).
  [[nodiscard]] constexpr score_t max_abs_unit() const noexcept {
    return std::max(std::abs(match), std::abs(mismatch));
  }
};

/// Substitution-matrix scoring over an alphabet of `K` codes
/// (e.g. K = 5 for A,C,G,T,N).  SIMD lanes fall back to a per-lane gather
/// supplied by `vlookup` overloads.
template <int K>
struct matrix_scoring {
  static_assert(K >= 2 && K <= 32, "alphabet size out of range");
  std::array<score_t, K * K> table{};

  constexpr matrix_scoring() = default;

  /// Build a matrix that reproduces simple match/mismatch scoring
  /// (useful for tests asserting matrix==simple equivalence).
  [[nodiscard]] static constexpr matrix_scoring uniform(score_t match,
                                                        score_t mismatch) {
    matrix_scoring m;
    for (int a = 0; a < K; ++a)
      for (int b = 0; b < K; ++b) m.table[a * K + b] = a == b ? match : mismatch;
    return m;
  }

  constexpr void set(int a, int b, score_t v) noexcept { table[a * K + b] = v; }
  [[nodiscard]] constexpr score_t at(int a, int b) const noexcept {
    return table[a * K + b];
  }

  template <class S, class C>
  [[nodiscard]] ANYSEQ_INLINE S subst(C q, C s) const noexcept {
    return vlookup<S>(table.data(), K, q, s);
  }

  [[nodiscard]] constexpr score_t max_abs_unit() const noexcept {
    score_t m = 0;
    for (score_t v : table) m = std::max(m, std::abs(v));
    return m;
  }
};

/// DNA alphabet size used by the stock matrices (A,C,G,T,N).
inline constexpr int dna_alphabet_size = 5;
using dna_matrix_scoring = matrix_scoring<dna_alphabet_size>;

/// A transition/transversion-aware DNA matrix (EDNAFULL-flavoured):
/// match +5, transition (A<->G, C<->T) -4 softened to -2, transversion -4,
/// N scores 0 against everything.  Exercises the matrix path with a
/// biologically shaped table.
[[nodiscard]] constexpr dna_matrix_scoring dna_default_matrix() {
  dna_matrix_scoring m;
  constexpr int A = 0, C = 1, G = 2, T = 3, N = 4;
  for (int a = 0; a < 5; ++a)
    for (int b = 0; b < 5; ++b) {
      if (a == N || b == N) {
        m.set(a, b, 0);
      } else if (a == b) {
        m.set(a, b, 5);
      } else {
        const bool transition = (a == A && b == G) || (a == G && b == A) ||
                                (a == C && b == T) || (a == T && b == C);
        m.set(a, b, transition ? -2 : -4);
      }
    }
  return m;
}

}  // namespace anyseq
