/// \file full_engine.hpp
/// Full-matrix DP engine: O(n*m) memory, stores H and predecessor codes,
/// supports traceback for all alignment kinds and gap models.
///
/// This is the library's semantic reference: every other engine (rolling,
/// tiled, SIMD, GPU-sim, FPGA-sim, Hirschberg) is validated against it.
/// It is also the production path for short sequences (e.g. Illumina
/// reads) where quadratic memory is cheap.
///
/// Plan/execute split: the matrices are carved from a caller-owned
/// `workspace` (align_into); a reused engine+workspace performs zero
/// steady-state allocations.  The legacy `align()` overload keeps the
/// one-shot signature on top of a member workspace.
///
/// Per-target header: each engine variant gets its own clone inside
/// `anyseq::ANYSEQ_TARGET_NS`, so the batch-traceback path dispatched into
/// an ISA-flagged TU runs a full engine compiled with that TU's flags —
/// never a COMDAT shared with baseline code.

#include "simd/set_target.hpp"

#if defined(ANYSEQ_CORE_FULL_ENGINE_HPP_) == defined(ANYSEQ_TARGET_TOGGLE)
#ifdef ANYSEQ_CORE_FULL_ENGINE_HPP_
#undef ANYSEQ_CORE_FULL_ENGINE_HPP_
#else
#define ANYSEQ_CORE_FULL_ENGINE_HPP_
#endif

#include "core/init.hpp"
#include "core/relax.hpp"
#include "core/result.hpp"
#include "core/traceback.hpp"
#include "core/workspace.hpp"
#include "stage/views.hpp"

namespace anyseq {
namespace ANYSEQ_TARGET_NS {

/// End-of-alignment cell chosen by the forward pass.
struct dp_optimum {
  score_t score = neg_inf();
  index_t i = 0, j = 0;
};

/// Full-matrix engine.  `K`/`Gap`/`Scoring` are compile-time policies —
/// one instantiation per parameter set, the way AnyDSL emits one residual
/// program per specialization.
template <align_kind K, class Gap, class Scoring>
class full_engine {
 public:
  full_engine() = default;
  full_engine(Gap gap, Scoring scoring) : gap_(gap), scoring_(scoring) {}

  /// Arena bytes one align pass carves (the plan side).
  [[nodiscard]] static std::size_t plan_bytes(index_t n, index_t m) noexcept {
    const auto cells =
        static_cast<std::size_t>(n + 1) * static_cast<std::size_t>(m + 1);
    return carve_bytes<score_t>(cells) + carve_bytes<std::uint8_t>(cells) +
           carve_bytes<score_t>(static_cast<std::size_t>(m + 1));
  }

  /// Compute the full DP matrix from `ws` and write score + optional
  /// traceback into `out`, recycling its string capacity.
  template <stage::sequence_view QV, stage::sequence_view SV>
  void align_into(const QV& q, const SV& s, bool want_traceback,
                  workspace& ws, alignment_result& out) {
    const index_t n = q.size(), m = s.size();
    workspace::frame fr(ws);
    const auto cells =
        static_cast<std::size_t>(n + 1) * static_cast<std::size_t>(m + 1);
    auto h_store = ws.make<score_t>(cells);          // every cell written
    auto pred_store = ws.make<std::uint8_t>(cells);  // before it is read
    auto e_row = ws.make<score_t>(static_cast<std::size_t>(m + 1), neg_inf());
    stage::matrix_view<score_t> h(h_store.data(), n + 1, m + 1);
    stage::matrix_view<std::uint8_t> preds(pred_store.data(), n + 1, m + 1);

    // Boundary rows/columns.
    for (index_t j = 0; j <= m; ++j) h.write(0, j, init_h_row0<K>(j, gap_));
    for (index_t i = 0; i <= n; ++i) h.write(i, 0, init_h_col0<K>(i, gap_));

    dp_optimum best;

    for (index_t i = 1; i <= n; ++i) {
      score_t f = init_f_col0(i);
      const char_t qc = q[i - 1];
      for (index_t j = 1; j <= m; ++j) {
        const prev_cells<score_t> prev{h.read(i - 1, j - 1), h.read(i - 1, j),
                                       h.read(i, j - 1), e_row[j], f};
        const auto nx = relax_scalar<K, true>(prev, qc, s[j - 1], gap_, scoring_);
        h.write(i, j, nx.h);
        preds.write(i, j, nx.pred);
        e_row[j] = nx.e;
        f = nx.f;
        if constexpr (tracks_running_max(K)) {
          if (nx.h > best.score) best = {nx.h, i, j};
        }
      }
      if constexpr (K == align_kind::semiglobal) {
        if (h.read(i, m) > best.score) best = {h.read(i, m), i, m};
      }
    }

    if constexpr (K == align_kind::global) {
      best = {h.read(n, m), n, m};
    } else if constexpr (K == align_kind::semiglobal) {
      for (index_t j = 0; j <= m; ++j)
        if (h.read(n, j) > best.score) best = {h.read(n, j), n, j};
    } else if constexpr (K == align_kind::local) {
      if (best.score < 0) best = {0, 0, 0};  // empty local alignment
    } else {  // extension: anchored at (0,0); boundary prefixes also compete
      for (index_t i = 0; i <= n; ++i)
        if (h.read(i, 0) > best.score) best = {h.read(i, 0), i, 0};
      for (index_t j = 0; j <= m; ++j)
        if (h.read(0, j) > best.score) best = {h.read(0, j), 0, j};
    }

    out.reset();
    out.score = best.score;
    out.q_end = best.i;
    out.s_end = best.j;
    out.cells = static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(m);

    if (want_traceback) {
      workspace::builder_lease lease(ws, out);
      auto pred_at = [&preds](index_t i, index_t j) {
        return preds.read(i, j);
      };
      auto [qb, sb] =
          traceback_walk<K>(q, s, best.i, best.j, pred_at, lease.get());
      out.q_begin = qb;
      out.s_begin = sb;
      lease.get().take(out);
    } else {
      out.q_begin = 0;
      out.s_begin = 0;
    }

    // Test accessor bookkeeping (h_matrix): the carved H stays readable
    // until the owning workspace's next pass.
    h_last_ = h_store.data();
  }

  /// One-shot convenience over a member workspace (kept for tests and
  /// the simulator paths); a long-lived engine object reuses it.
  template <stage::sequence_view QV, stage::sequence_view SV>
  [[nodiscard]] alignment_result align(const QV& q, const SV& s,
                                       bool want_traceback = true) {
    own_ws_.begin_pass();
    alignment_result out;
    align_into(q, s, want_traceback, own_ws_, out);
    return out;
  }

  /// Score-only convenience (the full matrix is still materialized; use
  /// rolling_score for linear-space scoring).
  template <stage::sequence_view QV, stage::sequence_view SV>
  [[nodiscard]] score_t score(const QV& q, const SV& s) {
    return align(q, s, /*want_traceback=*/false).score;
  }

  /// Read access to the most recent H matrix (tests compare cell-by-cell).
  /// Valid until the workspace that served the last align starts a new
  /// pass (or, for the convenience overloads, until the next align call).
  [[nodiscard]] stage::matrix_view<const score_t> h_matrix(index_t n,
                                                           index_t m) const {
    return {h_last_, n + 1, m + 1};
  }

 private:
  Gap gap_{};
  Scoring scoring_{};
  workspace own_ws_;  ///< backs the one-shot convenience overloads
  const score_t* h_last_ = nullptr;
};

/// One-shot helper: align with a freshly constructed engine.
template <align_kind K, class Gap, class Scoring, stage::sequence_view QV,
          stage::sequence_view SV>
[[nodiscard]] alignment_result full_align(const QV& q, const SV& s,
                                          const Gap& gap,
                                          const Scoring& scoring,
                                          bool want_traceback = true) {
  full_engine<K, Gap, Scoring> engine(gap, scoring);
  return engine.align(q, s, want_traceback);
}

}  // namespace ANYSEQ_TARGET_NS
}  // namespace anyseq

#if ANYSEQ_TARGET == ANYSEQ_TARGET_SCALAR
namespace anyseq {
using v_scalar::dp_optimum;
using v_scalar::full_align;
using v_scalar::full_engine;
}  // namespace anyseq
#endif  // scalar exports

#endif  // per-target include guard
