#pragma once
/// \file macros.hpp
/// Compiler abstraction macros used across AnySeq.
///
/// The paper relies on AnyDSL's partial evaluator to guarantee that
/// higher-order abstractions disappear at compile time.  The C++ analogue is
/// forced inlining of the small policy/accessor functions; `ANYSEQ_INLINE`
/// is our equivalent of Impala's `@` specialization filter on hot helpers.

#include <cassert>
#include <cstdio>
#include <cstdlib>

#if defined(__GNUC__) || defined(__clang__)
#define ANYSEQ_INLINE inline __attribute__((always_inline))
#define ANYSEQ_NOINLINE __attribute__((noinline))
#define ANYSEQ_RESTRICT __restrict__
#define ANYSEQ_LIKELY(x) __builtin_expect(!!(x), 1)
#define ANYSEQ_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#define ANYSEQ_INLINE inline
#define ANYSEQ_NOINLINE
#define ANYSEQ_RESTRICT
#define ANYSEQ_LIKELY(x) (x)
#define ANYSEQ_UNLIKELY(x) (x)
#endif

/// Internal invariant check.  Active in debug builds; compiled out of
/// release hot loops.  API-boundary validation uses exceptions instead
/// (see core/errors.hpp).
#ifndef NDEBUG
#define ANYSEQ_ASSERT(cond, msg)                                            \
  do {                                                                      \
    if (ANYSEQ_UNLIKELY(!(cond))) {                                         \
      std::fprintf(stderr, "AnySeq assertion failed: %s\n  at %s:%d\n  %s\n", \
                   #cond, __FILE__, __LINE__, msg);                          \
      std::abort();                                                         \
    }                                                                       \
  } while (false)
#else
#define ANYSEQ_ASSERT(cond, msg) ((void)0)
#endif

/// Check that is active in *all* build types (used on cold paths where the
/// cost is irrelevant but corruption would be silent).
#define ANYSEQ_CHECK(cond, msg)                                             \
  do {                                                                      \
    if (ANYSEQ_UNLIKELY(!(cond))) {                                         \
      std::fprintf(stderr, "AnySeq check failed: %s\n  at %s:%d\n  %s\n",   \
                   #cond, __FILE__, __LINE__, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (false)
