#pragma once
/// \file errors.hpp
/// Exception types thrown at the public API boundary for recoverable
/// misuse (empty input where not allowed, inconsistent options, ...).
/// Internal invariants use ANYSEQ_ASSERT instead.

#include <stdexcept>
#include <string>

namespace anyseq {

/// Base class of all AnySeq exceptions.
class error : public std::runtime_error {
 public:
  explicit error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid user-supplied parameters (options, scores, tile sizes, ...).
class invalid_argument_error : public error {
 public:
  explicit invalid_argument_error(const std::string& what) : error(what) {}
};

/// Malformed input data (bad FASTA/FASTQ, illegal characters, ...).
class parse_error : public error {
 public:
  explicit parse_error(const std::string& what) : error(what) {}
};

}  // namespace anyseq
