#pragma once
/// \file errors.hpp
/// Exception types thrown at the public API boundary for recoverable
/// misuse (empty input where not allowed, inconsistent options, ...).
/// Internal invariants use ANYSEQ_ASSERT instead.

#include <stdexcept>
#include <string>

namespace anyseq {

/// Base class of all AnySeq exceptions.
class error : public std::runtime_error {
 public:
  explicit error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid user-supplied parameters (options, scores, tile sizes, ...).
class invalid_argument_error : public error {
 public:
  explicit invalid_argument_error(const std::string& what) : error(what) {}
};

/// Options rejected by `validate()` before any work was attempted.
/// Derives from invalid_argument_error so existing catch sites keep
/// working; the distinct type lets admission layers (service::submit)
/// tell "request was malformed and never consumed capacity" from other
/// argument errors raised mid-execution.
class validation_error : public invalid_argument_error {
 public:
  explicit validation_error(const std::string& what)
      : invalid_argument_error(what) {}
};

/// Malformed input data (bad FASTA/FASTQ, illegal characters, ...).
class parse_error : public error {
 public:
  explicit parse_error(const std::string& what) : error(what) {}
};

/// A backend was forced (`align_options::exec`) that this binary/CPU
/// combination cannot run safely — e.g. `backend::simd_avx512` when the
/// AVX-512 engine TU was compiled natively but the CPU lacks AVX-512BW.
/// `backend::auto_select` never throws this; it falls back instead.
class unsupported_backend_error : public error {
 public:
  explicit unsupported_backend_error(const std::string& what) : error(what) {}
};

}  // namespace anyseq
