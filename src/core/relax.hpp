#pragma once
/// \file relax.hpp
/// The DP cell relaxation (paper Eq. 1/4/5 and the `relax_global` listing
/// in §III-B) — written exactly once, lane-generically.
///
/// Every engine in the library (full-matrix, rolling-row, tiled scalar,
/// SIMD block, GPU-sim kernel, FPGA-sim processing element) instantiates
/// this function; the alignment kind, gap model, scoring scheme and
/// predecessor tracking are compile-time parameters, so each instantiation
/// collapses to a branch-free max-chain — the C++ equivalent of AnyDSL
/// partially evaluating one generic relax function into each residual
/// program.

#include "core/gap.hpp"
#include "core/ops.hpp"
#include "core/types.hpp"

namespace anyseq {

// ---------------------------------------------------------------------------
// Predecessor encoding (one byte per cell when traceback is requested).
// ---------------------------------------------------------------------------

/// Low two bits: where H(i,j) came from.  Bit 2: E(i,j) extended an
/// existing subject-side gap (came from E(i-1,j)); bit 3: F(i,j) extended
/// (came from F(i,j-1)).  The E/F bits are stored unconditionally because
/// the traceback may enter gap state at this cell from the cell below /
/// right of it.
namespace pred {
inline constexpr std::uint8_t stop = 0;   ///< local alignment start (H clamped to 0)
inline constexpr std::uint8_t diag = 1;   ///< (i-1,j-1): align q_i with s_j
inline constexpr std::uint8_t up = 2;     ///< E: q_i against a gap
inline constexpr std::uint8_t left = 3;   ///< F: s_j against a gap
inline constexpr std::uint8_t h_mask = 3;
inline constexpr std::uint8_t e_extend = 4;
inline constexpr std::uint8_t f_extend = 8;
}  // namespace pred

// ---------------------------------------------------------------------------
// Relaxation input/output bundles.
// ---------------------------------------------------------------------------

/// Scores of the ancestral subproblems of cell (i,j) — the paper's
/// `PrevScores` accessor, flattened to values.  For linear gaps `e_up` and
/// `f_left` are ignored (and optimized out of the instantiation).
template <class S>
struct prev_cells {
  S diag;    ///< H(i-1, j-1)
  S up;      ///< H(i-1, j)
  S left;    ///< H(i,   j-1)
  S e_up;    ///< E(i-1, j)   (affine only)
  S f_left;  ///< F(i,   j-1) (affine only)
};

/// Result of relaxing one cell — the paper's `NextStep` plus the gap
/// matrices.  `e`/`f` must be carried by the caller for affine gaps.
template <class S, class P>
struct next_cell {
  S h;
  S e;
  S f;
  P pred;  ///< packed predecessor byte(s); unset when Track == false
};

// ---------------------------------------------------------------------------
// relax<K, Track>
// ---------------------------------------------------------------------------

/// Relax one DP cell.
///
/// \tparam K      alignment kind (local clamps H at nu, Eq. 1's nu = 0)
/// \tparam Track  whether to compute the predecessor byte
/// \tparam S      score value type: score_t, score16_t, or simd::pack
/// \tparam P      predecessor value type (same lane count as S)
/// \tparam C      character value type (same lane count as S)
/// \param qc, sc  the current character pair (the paper's `CharPair`)
/// \param nu      the local-alignment floor in S's representation.  In
///                absolute scores this is 0; SIMD tile blocks store
///                scores relative to a per-lane corner, so "absolute 0"
///                becomes a per-lane constant (-base) there.
template <align_kind K, bool Track, class S, class P, class C, class Gap,
          class Scoring>
[[nodiscard]] ANYSEQ_INLINE next_cell<S, P> relax(const prev_cells<S>& p, C qc,
                                                  C sc, const Gap& gap,
                                                  const Scoring& scoring,
                                                  S nu) noexcept {
  using M = mask_of_t<S>;
  next_cell<S, P> out{};

  // --- gap matrices -------------------------------------------------------
  M e_ext_taken{}, f_ext_taken{};
  if constexpr (Gap::kind == gap_kind::affine) {
    const S e_open = vadd(p.up, vbroadcast<S>(gap.open_extend()));
    const S e_ext = vadd(p.e_up, vbroadcast<S>(gap.extend()));
    const S f_open = vadd(p.left, vbroadcast<S>(gap.open_extend()));
    const S f_ext = vadd(p.f_left, vbroadcast<S>(gap.extend()));
    if constexpr (Track) {
      e_ext_taken = vgt(e_ext, e_open);
      f_ext_taken = vgt(f_ext, f_open);
    }
    out.e = vmax(e_ext, e_open);
    out.f = vmax(f_ext, f_open);
  } else {
    out.e = vadd(p.up, vbroadcast<S>(gap.gap));
    out.f = vadd(p.left, vbroadcast<S>(gap.gap));
  }

  // --- H: max over {diagonal, E, F, nu} (paper's relax_global shape) ------
  S h = vadd(p.diag, scoring.template subst<S>(qc, sc));
  if constexpr (!Track) {
    h = vmax(h, vmax(out.e, out.f));
    if constexpr (K == align_kind::local) h = vmax(h, nu);
    out.h = h;
  } else {
    P pr = vbroadcast<P>(pred::diag);
    const M sgap = vgt(out.e, h);  // "subject gap" branch of the listing
    h = vselect(sgap, out.e, h);
    pr = vselect(sgap, vbroadcast<P>(pred::up), pr);
    const M qgap = vgt(out.f, h);  // "query gap" branch
    h = vselect(qgap, out.f, h);
    pr = vselect(qgap, vbroadcast<P>(pred::left), pr);
    if constexpr (K == align_kind::local) {
      const M clamped = vgt(nu, h);
      h = vselect(clamped, nu, h);
      pr = vselect(clamped, vbroadcast<P>(pred::stop), pr);
    }
    if constexpr (Gap::kind == gap_kind::affine) {
      pr = vselect(e_ext_taken, vadd(pr, vbroadcast<P>(pred::e_extend)), pr);
      pr = vselect(f_ext_taken, vadd(pr, vbroadcast<P>(pred::f_extend)), pr);
    }
    out.h = h;
    out.pred = pr;
  }
  return out;
}

/// relax with the absolute-score convention (nu = 0).
template <align_kind K, bool Track, class S, class P, class C, class Gap,
          class Scoring>
[[nodiscard]] ANYSEQ_INLINE next_cell<S, P> relax(const prev_cells<S>& p, C qc,
                                                  C sc, const Gap& gap,
                                                  const Scoring& scoring) noexcept {
  return relax<K, Track, S, P, C>(p, qc, sc, gap, scoring, vbroadcast<S>(0));
}

/// Scalar convenience instantiation used by the reference engines.
template <align_kind K, bool Track, class Gap, class Scoring>
[[nodiscard]] ANYSEQ_INLINE next_cell<score_t, std::uint8_t> relax_scalar(
    const prev_cells<score_t>& p, char_t qc, char_t sc, const Gap& gap,
    const Scoring& scoring) noexcept {
  if constexpr (Track) {
    // Track through an int lane, then narrow to a byte.
    auto r = relax<K, true, score_t, score_t, char_t>(p, qc, sc, gap, scoring);
    return {r.h, r.e, r.f, static_cast<std::uint8_t>(r.pred)};
  } else {
    auto r = relax<K, false, score_t, score_t, char_t>(p, qc, sc, gap, scoring);
    return {r.h, r.e, r.f, 0};
  }
}

}  // namespace anyseq
