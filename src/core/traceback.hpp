/// \file traceback.hpp
/// Predecessor-byte traceback shared by every engine that stores a
/// predecessor matrix (full engine, banded engine, batch engine, gpusim).
///
/// The traceback walks an H/E/F state machine over the packed predecessor
/// codes written by core::relax.  It is templated on a *predecessor
/// accessor* `fn(i, j) -> uint8` so that full, banded, and lane-interleaved
/// storage layouts all reuse the same walk — another paper-style accessor
/// decoupling.
///
/// Per-target header: the builder's string loops and the walk compile once
/// per engine variant inside `anyseq::ANYSEQ_TARGET_NS`.

#include "simd/set_target.hpp"

#if defined(ANYSEQ_CORE_TRACEBACK_HPP_) == defined(ANYSEQ_TARGET_TOGGLE)
#ifdef ANYSEQ_CORE_TRACEBACK_HPP_
#undef ANYSEQ_CORE_TRACEBACK_HPP_
#else
#define ANYSEQ_CORE_TRACEBACK_HPP_
#endif

#include <algorithm>
#include <string>

#include "core/alphabet.hpp"
#include "core/relax.hpp"
#include "core/result.hpp"
#include "stage/views.hpp"

namespace anyseq {
namespace ANYSEQ_TARGET_NS {

/// Incremental builder for the gapped alignment strings.  Operations are
/// appended in *reverse* order by tracebacks (which walk end -> begin) and
/// reversed once by `finish`; the divide-and-conquer traceback appends in
/// forward order and calls `take` directly.
///
/// Builders are pooled by `workspace` and exchange string capacity with
/// the caller's recycled `alignment_result` (`adopt_capacity` on entry,
/// the swap in `take` on exit), so a reused aligner rebuilds tracebacks
/// without allocating once the buffers have grown to the working set.
class alignment_builder {
 public:
  /// Drop content, keep capacity (pool reuse).
  void clear() noexcept {
    qa_.clear();
    sa_.clear();
  }

  /// Adopt the string capacity of a recycled result: its (stale) buffers
  /// become this builder's scratch; `take` hands them back filled.
  void adopt_capacity(alignment_result& r) noexcept {
    qa_.swap(r.q_aligned);
    sa_.swap(r.s_aligned);
    qa_.clear();
    sa_.clear();
  }

  void pair(char_t q, char_t s) {
    qa_.push_back(dna_decode(q));
    sa_.push_back(dna_decode(s));
  }
  /// q character against a gap (deletion w.r.t. the subject).
  void del(char_t q) {
    qa_.push_back(dna_decode(q));
    sa_.push_back('-');
  }
  /// s character against a gap (insertion w.r.t. the subject).
  void ins(char_t s) {
    qa_.push_back('-');
    sa_.push_back(dna_decode(s));
  }
  void reverse() {
    std::reverse(qa_.begin(), qa_.end());
    std::reverse(sa_.begin(), sa_.end());
  }
  [[nodiscard]] std::size_t size() const noexcept { return qa_.size(); }

  /// Swap the built strings into a result and derive the CIGAR (into the
  /// result's existing cigar buffer).  A swap, not a move: the result's
  /// previous buffers return to the builder, so capacity circulates
  /// instead of draining from the pool.
  void take(alignment_result& out) {
    cigar_from_aligned_into(qa_, sa_, out.cigar);
    out.q_aligned.swap(qa_);
    out.s_aligned.swap(sa_);
    out.has_alignment = true;
  }

  /// Append another builder's content (used by divide & conquer).
  void append(const alignment_builder& other) {
    qa_ += other.qa_;
    sa_ += other.sa_;
  }

 private:
  std::string qa_, sa_;
};

/// Traceback entry state: normally H; the Myers–Miller full-DP base case
/// may start in E when the optimal block path ends inside a vertical gap
/// that continues below the block boundary.
enum class tb_state : std::uint8_t { h, e, f };

/// Walk predecessor codes from end cell (ei, ej) back to the alignment
/// start.  `PredFn(i, j) -> std::uint8_t` must be valid for all interior
/// cells 1..n x 1..m on the optimal path.
///
/// \returns the (q_begin, s_begin) of the alignment; the builder receives
/// the operations in reverse order and is reversed before returning.
template <align_kind K, class PredFn, class QV, class SV>
std::pair<index_t, index_t> traceback_walk(const QV& q, const SV& s,
                                           index_t ei, index_t ej,
                                           PredFn&& pred_at,
                                           alignment_builder& out,
                                           tb_state start = tb_state::h) {
  using st = tb_state;
  index_t i = ei, j = ej;
  st state = start;

  for (;;) {
    if (state == st::h) {
      if (i == 0 || j == 0) {
        if constexpr (K == align_kind::global ||
                      K == align_kind::extension) {
          // Boundary gaps complete the path back to (0,0).
          while (i > 0) out.del(q[--i]);
          while (j > 0) out.ins(s[--j]);
        }
        break;  // local paths stop via pred::stop before reaching here;
                // semiglobal leading gaps are free and not emitted.
      }
      const std::uint8_t p = pred_at(i, j) & pred::h_mask;
      if (p == pred::stop) break;  // local alignment start
      if (p == pred::diag) {
        out.pair(q[i - 1], s[j - 1]);
        --i;
        --j;
      } else if (p == pred::up) {
        state = st::e;
      } else {
        state = st::f;
      }
    } else if (state == st::e) {
      ANYSEQ_ASSERT(i > 0, "E state at row 0");
      const bool extend = (pred_at(i, j) & pred::e_extend) != 0;
      out.del(q[i - 1]);
      --i;
      state = extend ? st::e : st::h;
    } else {  // st::f
      ANYSEQ_ASSERT(j > 0, "F state at column 0");
      const bool extend = (pred_at(i, j) & pred::f_extend) != 0;
      out.ins(s[j - 1]);
      --j;
      state = extend ? st::f : st::h;
    }
  }
  out.reverse();
  return {i, j};
}

}  // namespace ANYSEQ_TARGET_NS
}  // namespace anyseq

#if ANYSEQ_TARGET == ANYSEQ_TARGET_SCALAR
namespace anyseq {
using v_scalar::alignment_builder;
using v_scalar::tb_state;
using v_scalar::traceback_walk;
}  // namespace anyseq
#endif  // scalar exports

#endif  // per-target include guard
