#pragma once
/// \file result.hpp
/// Alignment results: score, aligned region, gapped strings, CIGAR.

#include <cstdint>
#include <span>
#include <string>

#include "core/macros.hpp"
#include "core/types.hpp"

namespace anyseq {

/// A pairwise alignment.  For score-only computations only `score` (and,
/// for local/semiglobal, the end coordinates) are filled in.
///
/// Coordinates are half-open [begin, end) offsets into the *unencoded*
/// input sequences.  `q_aligned`/`s_aligned` cover exactly
/// [q_begin, q_end) x [s_begin, s_end) with '-' for gaps; for global
/// alignments that is the whole of both sequences.
struct alignment_result {
  score_t score = 0;
  index_t q_begin = 0, q_end = 0;
  index_t s_begin = 0, s_end = 0;
  std::string q_aligned;
  std::string s_aligned;
  std::string cigar;  ///< ops: '=' match, 'X' mismatch, 'I' ins (gap in q), 'D' del (gap in s)
  bool has_alignment = false;

  /// Number of DP cells an engine relaxed to produce this result
  /// (n*m for one pass; Hirschberg reports its true <= 2x total).
  /// Used by benchmarks to compute GCUPS.
  std::uint64_t cells = 0;

  /// Name of the engine variant that produced this result ("scalar",
  /// "avx2", "avx512", "gpu_sim", "fpga_sim"); static storage, never
  /// freed.  CPU results are stamped *inside* the dispatched
  /// `anyseq::v_*` namespace, so tests can assert which variant actually
  /// executed.  nullptr for results built outside the dispatcher.
  const char* variant = nullptr;

  /// Reset to the default state while KEEPING the string capacity — the
  /// recycling half of the plan/execute contract: a caller that feeds
  /// the same result object back into `aligner::align_into` lends its
  /// warm buffers to the traceback builder instead of reallocating.
  void reset() noexcept {
    score = 0;
    q_begin = q_end = s_begin = s_end = 0;
    q_aligned.clear();
    s_aligned.clear();
    cigar.clear();
    has_alignment = false;
    cells = 0;
    variant = nullptr;
  }
};

/// Outcome of a score-only pass: the optimum value and the cell where the
/// optimum ends (meaningful for local/semiglobal; (n, m) for global).
/// Shared by every engine variant — this type crosses the `engine::ops`
/// dispatch boundary and therefore must not live in a per-target header.
struct score_result {
  score_t score = neg_inf();
  index_t end_i = 0, end_j = 0;
  std::uint64_t cells = 0;
};

/// Batch-engine path accounting: how much of a batch took which kernel.
/// `simd_pairs` counts all narrow-SIMD-scored pairs (int8 + int16, both
/// uniform and lane-padded ragged chunks); `scalar_pairs` counts
/// rolling-engine pairs, escalations included.  Shared by every engine
/// variant — this type crosses the `engine::ops` dispatch boundary
/// (batch_scores' stats out-param) and therefore must not live in a
/// per-target header.
struct batch_stats {
  std::uint64_t simd_pairs = 0;
  std::uint64_t scalar_pairs = 0;
  std::uint64_t int8_pairs = 0;
  std::uint64_t int16_pairs = 0;
  std::uint64_t bitpar_pairs = 0;
  std::uint64_t escalated_pairs = 0;  ///< checked-kernel overflow shed
  /// SIMD pairs scored inside lane-padded (ragged) chunks — mixed-length
  /// groups that would have fallen back to the scalar engine before the
  /// retirement-mask kernels (subset of `simd_pairs`).
  std::uint64_t ragged_pairs = 0;
  /// Padding overhead those chunks relaxed: sum over ragged chunks of
  /// W*nbar*mbar - sum(n_l*m_l) — what the waste cap bounds.
  std::uint64_t padded_cells = 0;
};

/// Build a compact CIGAR string (run-length encoded) from gapped strings.
[[nodiscard]] std::string cigar_from_aligned(std::string_view q_aligned,
                                             std::string_view s_aligned);

/// Same, writing into a caller-provided string (cleared first) so its
/// capacity is reused across calls.  Out-of-line in result.cpp: the
/// per-target traceback builders call it across the baseline boundary
/// without emitting weak shared symbols.
void cigar_from_aligned_into(std::string_view q_aligned,
                             std::string_view s_aligned, std::string& out);

/// Re-score a gapped alignment with an independent, trivially-auditable
/// scorer; used by tests to certify that every engine's traceback
/// reproduces its reported score.  Characters are compared through `eq`,
/// substitution scores through `subst`, both taken as plain function
/// objects over the raw (unencoded) characters.
template <class Subst, class Gap>
[[nodiscard]] score_t rescore_alignment(std::string_view q_aligned,
                                        std::string_view s_aligned,
                                        const Subst& subst, const Gap& gap) {
  ANYSEQ_ASSERT(q_aligned.size() == s_aligned.size(),
                "gapped strings must have equal length");
  score_t total = 0;
  bool in_q_gap = false, in_s_gap = false;
  for (std::size_t k = 0; k < q_aligned.size(); ++k) {
    const char qc = q_aligned[k], sc = s_aligned[k];
    ANYSEQ_ASSERT(!(qc == '-' && sc == '-'), "double gap column");
    if (qc == '-') {
      total += in_q_gap ? gap.extend() : gap.open_extend();
      in_q_gap = true;
      in_s_gap = false;
    } else if (sc == '-') {
      total += in_s_gap ? gap.extend() : gap.open_extend();
      in_s_gap = true;
      in_q_gap = false;
    } else {
      total += subst(qc, sc);
      in_q_gap = in_s_gap = false;
    }
  }
  return total;
}

}  // namespace anyseq
