/// \file banded.hpp
/// Banded global alignment: restrict the DP to diagonals
/// lo <= j - i <= hi (an extension beyond the paper's evaluation; listed
/// in DESIGN.md as an optional feature).  When the two sequences are
/// known to be similar — resequencing, read-vs-candidate verification —
/// a band of width w reduces work from n*m to n*w cells.
///
/// The band is stored row-compactly: cell (i, j) lives at column
/// k = j - i - lo of row i, so the storage is (n+1) x (hi-lo+1).  Cells
/// outside the band act as -inf walls; the band must contain both the
/// start diagonal (0) and the end diagonal (m - n) or the global problem
/// is infeasible and an exception is raised.

/// (per-target header: compiled into `anyseq::ANYSEQ_TARGET_NS`, once per
/// engine variant — see simd/foreach_target.hpp)
/// The `band` parameter type is shared (core/types.hpp): it crosses the
/// `engine::ops` dispatch boundary.

#include "simd/set_target.hpp"

#if defined(ANYSEQ_CORE_BANDED_HPP_) == defined(ANYSEQ_TARGET_TOGGLE)
#ifdef ANYSEQ_CORE_BANDED_HPP_
#undef ANYSEQ_CORE_BANDED_HPP_
#else
#define ANYSEQ_CORE_BANDED_HPP_
#endif

#include "core/errors.hpp"
#include "core/init.hpp"
#include "core/relax.hpp"
#include "core/result.hpp"
#include "core/traceback.hpp"
#include "core/workspace.hpp"
#include "stage/views.hpp"

namespace anyseq {
namespace ANYSEQ_TARGET_NS {

/// Banded global alignment with optional traceback, carving the band
/// storage from `ws` and recycling `out`'s buffers.
///
/// The returned score is optimal among paths that stay inside the band;
/// it equals the unrestricted optimum whenever the band is wide enough
/// to contain an optimal path (tests sweep this property).
template <class Gap, class Scoring, stage::sequence_view QV,
          stage::sequence_view SV>
void banded_global_into(const QV& q, const SV& s, const Gap& gap,
                        const Scoring& scoring, band b, bool want_traceback,
                        workspace& ws, alignment_result& out) {
  const index_t n = q.size(), m = s.size();
  if (b.lo > b.hi) throw invalid_argument_error("band.lo must be <= band.hi");
  if (b.lo > 0 || b.hi < 0)
    throw invalid_argument_error(
        "band must contain diagonal 0 (the global start)");
  if (b.lo > m - n || b.hi < m - n)
    throw invalid_argument_error(
        "band must contain diagonal m-n (the global end)");

  const index_t w = b.width();
  const index_t cols = w + 2;  // +2 sentinel columns of -inf either side
  workspace::frame fr(ws);
  const auto band_cells = static_cast<std::size_t>((n + 1) * cols);
  auto h = ws.make<score_t>(band_cells, neg_inf());
  auto e = ws.make<score_t>(band_cells, neg_inf());
  auto preds = ws.make<std::uint8_t>(want_traceback ? band_cells : 1,
                                     std::uint8_t{0});

  // k-index of column j in row i (offset by 1 for the left sentinel).
  auto kof = [&](index_t i, index_t j) { return j - i - b.lo + 1; };
  auto at = [&](index_t i, index_t j) { return i * cols + kof(i, j); };

  // Boundary cells inside the band.
  for (index_t j = 0; j <= std::min(m, b.hi); ++j)
    h[at(0, j)] = init_h_row0<align_kind::global>(j, gap);
  for (index_t i = 0; i <= std::min(n, -b.lo); ++i)
    h[at(i, 0)] = init_h_col0<align_kind::global>(i, gap);

  std::uint64_t cells = 0;
  for (index_t i = 1; i <= n; ++i) {
    const index_t j_lo = std::max<index_t>(1, i + b.lo);
    const index_t j_hi = std::min(m, i + b.hi);
    const char_t qc = q[i - 1];
    score_t f = neg_inf();  // F never survives across the band edge
    for (index_t j = j_lo; j <= j_hi; ++j) {
      // Row-compact addressing: (i-1, j) sits one k-slot to the right in
      // the previous row; (i-1, j-1) at the same k; (i, j-1) one left.
      const prev_cells<score_t> prev{
          h[at(i - 1, j - 1)], h[at(i - 1, j)], h[at(i, j - 1)],
          e[at(i - 1, j)], f};
      const auto nx = relax_scalar<align_kind::global, true>(prev, qc,
                                                             s[j - 1], gap,
                                                             scoring);
      h[at(i, j)] = nx.h;
      e[at(i, j)] = nx.e;
      f = nx.f;
      if (want_traceback) preds[at(i, j)] = nx.pred;
      ++cells;
    }
  }

  out.reset();
  out.score = h[at(n, m)];
  out.q_end = n;
  out.s_end = m;
  out.cells = cells;

  if (want_traceback) {
    workspace::builder_lease lease(ws, out);
    auto pred_at = [&](index_t i, index_t j) { return preds[at(i, j)]; };
    auto [qb, sb] =
        traceback_walk<align_kind::global>(q, s, n, m, pred_at, lease.get());
    out.q_begin = qb;
    out.s_begin = sb;
    lease.get().take(out);
  }
}

/// One-shot convenience with a private throwaway workspace.
template <class Gap, class Scoring, stage::sequence_view QV,
          stage::sequence_view SV>
[[nodiscard]] alignment_result banded_global(const QV& q, const SV& s,
                                             const Gap& gap,
                                             const Scoring& scoring,
                                             band b,
                                             bool want_traceback = true) {
  workspace ws;
  alignment_result out;
  banded_global_into(q, s, gap, scoring, b, want_traceback, ws, out);
  return out;
}

/// Score-only convenience.
template <class Gap, class Scoring, stage::sequence_view QV,
          stage::sequence_view SV>
[[nodiscard]] score_t banded_global_score(const QV& q, const SV& s,
                                          const Gap& gap,
                                          const Scoring& scoring, band b) {
  return banded_global(q, s, gap, scoring, b, false).score;
}

}  // namespace ANYSEQ_TARGET_NS
}  // namespace anyseq

#if ANYSEQ_TARGET == ANYSEQ_TARGET_SCALAR
namespace anyseq {
using v_scalar::banded_global;
using v_scalar::banded_global_into;
using v_scalar::banded_global_score;
}  // namespace anyseq
#endif  // scalar exports

#endif  // per-target include guard
