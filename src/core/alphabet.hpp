#pragma once
/// \file alphabet.hpp
/// DNA alphabet encoding.  The engines are alphabet-agnostic (they operate
/// on small integer codes); this header fixes the standard DNA mapping
/// A,C,G,T -> 0..3 with 4 = N / anything else.

#include <array>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.hpp"

namespace anyseq {

inline constexpr char_t dna_a = 0;
inline constexpr char_t dna_c = 1;
inline constexpr char_t dna_g = 2;
inline constexpr char_t dna_t = 3;
inline constexpr char_t dna_n = 4;

namespace detail {
[[nodiscard]] constexpr std::array<char_t, 256> make_dna_encode_table() {
  std::array<char_t, 256> t{};
  for (auto& v : t) v = dna_n;
  t['A'] = t['a'] = dna_a;
  t['C'] = t['c'] = dna_c;
  t['G'] = t['g'] = dna_g;
  t['T'] = t['t'] = dna_t;
  t['U'] = t['u'] = dna_t;  // RNA folds onto T
  return t;
}
inline constexpr std::array<char_t, 256> dna_encode_table =
    make_dna_encode_table();
}  // namespace detail

/// Encode one IUPAC character (ambiguity codes collapse to N).
[[nodiscard]] constexpr char_t dna_encode(char c) noexcept {
  return detail::dna_encode_table[static_cast<unsigned char>(c)];
}

/// Decode one code back to its canonical upper-case letter.
[[nodiscard]] constexpr char dna_decode(char_t code) noexcept {
  constexpr const char* letters = "ACGTN";
  return code <= dna_n ? letters[code] : 'N';
}

/// Encode a whole string.
[[nodiscard]] inline std::vector<char_t> dna_encode_all(std::string_view s) {
  std::vector<char_t> out(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) out[i] = dna_encode(s[i]);
  return out;
}

/// Decode a whole code sequence.
[[nodiscard]] inline std::string dna_decode_all(
    std::span<const char_t> codes) {
  std::string out(codes.size(), 'N');
  for (std::size_t i = 0; i < codes.size(); ++i) out[i] = dna_decode(codes[i]);
  return out;
}

}  // namespace anyseq
