/// \file locate.hpp
/// Linear-space traceback for local and semi-global alignments.
///
/// Strategy (classic): a forward score pass finds the optimal *end* cell;
/// a reversed anchored pass finds the matching *start* cell; the path
/// between the two endpoints is an ordinary global alignment of the
/// located substrings (its optimum equals the local/semiglobal optimum,
/// else the original optimum would be beatable), which the divide &
/// conquer engine reconstructs in linear space.
///
/// The global aligner is a parameter, so the scalar, tiled-SIMD, and
/// GPU-simulated backends all share this logic — composition by function
/// argument, as everywhere in this library.

/// (per-target header: compiled into `anyseq::ANYSEQ_TARGET_NS`, once per
/// engine variant — see simd/foreach_target.hpp)

#include "simd/set_target.hpp"

#if defined(ANYSEQ_CORE_LOCATE_HPP_) == defined(ANYSEQ_TARGET_TOGGLE)
#ifdef ANYSEQ_CORE_LOCATE_HPP_
#undef ANYSEQ_CORE_LOCATE_HPP_
#else
#define ANYSEQ_CORE_LOCATE_HPP_
#endif

#include "core/rolling.hpp"
#include "core/traceback.hpp"

namespace anyseq {
namespace ANYSEQ_TARGET_NS {

/// Anchored-start pass with the optimum restricted to the last row or
/// column (global boundary init, free end on the border).  Used to locate
/// semiglobal starts: reversing a semiglobal path anchors its end and
/// constrains its start to the border.
template <class Gap, class Scoring, stage::sequence_view QV,
          stage::sequence_view SV>
[[nodiscard]] score_result extension_border_score(const QV& q, const SV& s,
                                                  const Gap& gap,
                                                  const Scoring& scoring,
                                                  workspace& ws) {
  const index_t n = q.size(), m = s.size();
  workspace::frame fr(ws);
  auto h = ws.make<score_t>(static_cast<std::size_t>(m + 1));
  auto e = ws.make<score_t>(static_cast<std::size_t>(m + 1), neg_inf());
  for (index_t j = 0; j <= m; ++j)
    h[j] = init_h_row0<align_kind::global>(j, gap);

  score_result best{h[m], 0, m, 0};
  for (index_t i = 1; i <= n; ++i) {
    score_t diag = h[0];
    h[0] = init_h_col0<align_kind::global>(i, gap);
    score_t f = init_f_col0(i);
    const char_t qc = q[i - 1];
    for (index_t j = 1; j <= m; ++j) {
      const prev_cells<score_t> prev{diag, h[j], h[j - 1], e[j], f};
      const auto nx = relax_scalar<align_kind::global, false>(
          prev, qc, s[j - 1], gap, scoring);
      diag = h[j];
      h[j] = nx.h;
      e[j] = nx.e;
      f = nx.f;
    }
    if (h[m] > best.score) best = {h[m], i, m, 0};
  }
  for (index_t j = 0; j <= m; ++j)
    if (h[j] > best.score) best = {h[j], n, j, 0};
  if (n == 0 || m == 0) best = {0, n, m, 0};
  best.cells = static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(m);
  return best;
}

/// One-shot convenience with a private throwaway workspace.
template <class Gap, class Scoring, stage::sequence_view QV,
          stage::sequence_view SV>
[[nodiscard]] score_result extension_border_score(const QV& q, const SV& s,
                                                  const Gap& gap,
                                                  const Scoring& scoring) {
  workspace ws;
  return extension_border_score(q, s, gap, scoring, ws);
}

/// Locate the aligned region of a local or semiglobal optimum and
/// reconstruct it through `global_align_into(sub_q, sub_s, out)` (any
/// callable writing a *global* alignment of the views into `out`,
/// recycling its buffers).  All scratch comes from `ws`.
template <align_kind K, class Gap, class Scoring, class GlobalAlignInto>
void locate_align_into(stage::seq_view q, stage::seq_view s, const Gap& gap,
                       const Scoring& scoring,
                       GlobalAlignInto&& global_align_into, workspace& ws,
                       alignment_result& out) {
  static_assert(K == align_kind::local || K == align_kind::semiglobal,
                "locate_align handles local/semiglobal only");
  const auto fwd = rolling_score<K>(q, s, gap, scoring, ws);

  if constexpr (K == align_kind::local) {
    if (fwd.score <= 0) {  // empty optimal local alignment
      out.reset();
      out.score = 0;
      out.has_alignment = true;
      out.cells = fwd.cells;
      return;
    }
  }

  // Reversed anchored pass over the end-cell prefixes.
  const stage::rev_view rq(q.sub(0, fwd.end_i));
  const stage::rev_view rs(s.sub(0, fwd.end_j));
  score_result rev;
  if constexpr (K == align_kind::local) {
    rev = rolling_score<align_kind::extension>(rq, rs, gap, scoring, ws);
  } else {
    rev = extension_border_score(rq, rs, gap, scoring, ws);
  }
  ANYSEQ_ASSERT(rev.score == fwd.score,
                "reversed pass must reproduce the forward optimum");

  const index_t qb = fwd.end_i - rev.end_i;
  const index_t sb = fwd.end_j - rev.end_j;
  global_align_into(q.sub(qb, fwd.end_i), s.sub(sb, fwd.end_j), out);
  ANYSEQ_ASSERT(out.score == fwd.score,
                "inner global alignment must reproduce the optimum");

  out.score = fwd.score;
  out.q_begin = qb;
  out.q_end = fwd.end_i;
  out.s_begin = sb;
  out.s_end = fwd.end_j;
  out.has_alignment = true;
  out.cells += fwd.cells + rev.cells;
}

/// Legacy convenience: reconstruct through a by-value `global_align`
/// callable with a private throwaway workspace (simulator backends).
template <align_kind K, class Gap, class Scoring, class GlobalAlign>
[[nodiscard]] alignment_result locate_align(stage::seq_view q,
                                            stage::seq_view s,
                                            const Gap& gap,
                                            const Scoring& scoring,
                                            GlobalAlign&& global_align) {
  workspace ws;
  alignment_result out;
  locate_align_into<K>(
      q, s, gap, scoring,
      [&](stage::seq_view subq, stage::seq_view subs, alignment_result& r) {
        r = global_align(subq, subs);
      },
      ws, out);
  return out;
}

}  // namespace ANYSEQ_TARGET_NS
}  // namespace anyseq

#if ANYSEQ_TARGET == ANYSEQ_TARGET_SCALAR
namespace anyseq {
using v_scalar::extension_border_score;
using v_scalar::locate_align;
using v_scalar::locate_align_into;
}  // namespace anyseq
#endif  // scalar exports

#endif  // per-target include guard
