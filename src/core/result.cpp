#include "core/result.hpp"

namespace anyseq {

std::string cigar_from_aligned(std::string_view q_aligned,
                               std::string_view s_aligned) {
  std::string out;
  cigar_from_aligned_into(q_aligned, s_aligned, out);
  return out;
}

void cigar_from_aligned_into(std::string_view q_aligned,
                             std::string_view s_aligned, std::string& out) {
  ANYSEQ_ASSERT(q_aligned.size() == s_aligned.size(),
                "gapped strings must have equal length");
  out.clear();
  char run_op = 0;
  std::size_t run_len = 0;
  auto flush = [&] {
    if (run_len > 0) {
      out += std::to_string(run_len);
      out.push_back(run_op);
    }
  };
  for (std::size_t k = 0; k < q_aligned.size(); ++k) {
    const char qc = q_aligned[k], sc = s_aligned[k];
    char op;
    if (qc == '-') {
      op = 'I';  // consumes subject only
    } else if (sc == '-') {
      op = 'D';  // consumes query only
    } else {
      op = qc == sc ? '=' : 'X';
    }
    if (op == run_op) {
      ++run_len;
    } else {
      flush();
      run_op = op;
      run_len = 1;
    }
  }
  flush();
}

}  // namespace anyseq
