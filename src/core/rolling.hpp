/// \file rolling.hpp
/// Linear-space score-only engine (paper Fig. 1, right: only one row of H
/// plus the running E row and F scalar are stored), and the boundary-
/// parameterized last-row passes used by the Myers–Miller / Hirschberg
/// divide-and-conquer traceback.
///
/// Per-target header: compiled into `anyseq::ANYSEQ_TARGET_NS`, once per
/// engine variant.  `score_result` itself is shared (core/result.hpp) —
/// it crosses the `engine::ops` dispatch boundary.

#include "simd/set_target.hpp"

#if defined(ANYSEQ_CORE_ROLLING_HPP_) == defined(ANYSEQ_TARGET_TOGGLE)
#ifdef ANYSEQ_CORE_ROLLING_HPP_
#undef ANYSEQ_CORE_ROLLING_HPP_
#else
#define ANYSEQ_CORE_ROLLING_HPP_
#endif

#include <span>

#include "core/init.hpp"
#include "core/relax.hpp"
#include "core/result.hpp"
#include "core/workspace.hpp"
#include "stage/views.hpp"

namespace anyseq {
namespace ANYSEQ_TARGET_NS {

/// Arena bytes one rolling_score pass carves (the plan side).
[[nodiscard]] inline std::size_t rolling_plan_bytes(index_t m) noexcept {
  return 2 * carve_bytes<score_t>(static_cast<std::size_t>(m + 1));
}

/// Score-only alignment in O(min-row) space and O(n*m) time.  The two
/// rolling rows are carved from `ws` (released on return).
template <align_kind K, class Gap, class Scoring, stage::sequence_view QV,
          stage::sequence_view SV>
[[nodiscard]] score_result rolling_score(const QV& q, const SV& s,
                                         const Gap& gap,
                                         const Scoring& scoring,
                                         workspace& ws) {
  const index_t n = q.size(), m = s.size();
  workspace::frame fr(ws);
  auto h = ws.make<score_t>(static_cast<std::size_t>(m + 1));
  auto e = ws.make<score_t>(static_cast<std::size_t>(m + 1), neg_inf());
  for (index_t j = 0; j <= m; ++j) h[j] = init_h_row0<K>(j, gap);

  score_result best;
  if constexpr (K == align_kind::local) {
    best = {0, 0, 0, 0};
  } else if constexpr (K == align_kind::extension) {
    for (index_t j = 0; j <= m; ++j)  // boundary prefixes compete
      if (h[j] > best.score) best = {h[j], 0, j, 0};
  } else {
    best = {h[m], 0, m, 0};  // row-0 candidate for semiglobal / empty global
  }

  for (index_t i = 1; i <= n; ++i) {
    score_t diag = h[0];
    h[0] = init_h_col0<K>(i, gap);
    if constexpr (K == align_kind::extension) {
      if (h[0] > best.score) best = {h[0], i, 0, 0};
    }
    score_t f = init_f_col0(i);
    const char_t qc = q[i - 1];
    for (index_t j = 1; j <= m; ++j) {
      const prev_cells<score_t> prev{diag, h[j], h[j - 1], e[j], f};
      const auto nx =
          relax_scalar<K, false>(prev, qc, s[j - 1], gap, scoring);
      diag = h[j];
      h[j] = nx.h;
      e[j] = nx.e;
      f = nx.f;
      if constexpr (tracks_running_max(K)) {
        if (nx.h > best.score) best = {nx.h, i, j, 0};
      }
    }
    if constexpr (K == align_kind::semiglobal) {
      if (h[m] > best.score) best = {h[m], i, m, 0};
    }
  }

  if constexpr (K == align_kind::global) {
    best = {h[m], n, m, 0};
  } else if constexpr (K == align_kind::semiglobal) {
    for (index_t j = 0; j <= m; ++j)
      if (h[j] > best.score) best = {h[j], n, j, 0};
  }
  best.cells = static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(m);
  return best;
}

/// One-shot convenience: score with a private throwaway workspace.
template <align_kind K, class Gap, class Scoring, stage::sequence_view QV,
          stage::sequence_view SV>
[[nodiscard]] score_result rolling_score(const QV& q, const SV& s,
                                         const Gap& gap,
                                         const Scoring& scoring) {
  workspace ws;
  return rolling_score<K>(q, s, gap, scoring, ws);
}

/// Global-alignment last-row pass with a parameterized vertical boundary
/// (Myers–Miller): H(i,0) = tb + i*extend — `tb = gap.open()` for a fresh
/// leading deletion, `tb = 0` when the deletion continues a gap opened by
/// the caller's enclosing block.
///
/// On return `hh[j] = H(n, j)` and `ee[j] = E(n, j)` for j = 0..m
/// (`ee` is only meaningful for affine gaps but is always filled so the
/// divide step can treat both models uniformly).
template <class Gap, class Scoring, stage::sequence_view QV,
          stage::sequence_view SV>
void nw_last_row(const QV& q, const SV& s, const Gap& gap,
                 const Scoring& scoring, score_t tb,
                 std::span<score_t> hh, std::span<score_t> ee) {
  const index_t n = q.size(), m = s.size();
  ANYSEQ_ASSERT(static_cast<index_t>(hh.size()) == m + 1 &&
                    static_cast<index_t>(ee.size()) == m + 1,
                "output spans must have m+1 entries");
  for (index_t j = 0; j <= m; ++j) {
    hh[j] = j == 0 ? 0 : static_cast<score_t>(gap.open() + gap.extend() * j);
    ee[j] = neg_inf();
  }
  for (index_t i = 1; i <= n; ++i) {
    score_t diag = hh[0];
    hh[0] = static_cast<score_t>(tb + gap.extend() * i);
    score_t f = init_f_col0(i);
    const char_t qc = q[i - 1];
    for (index_t j = 1; j <= m; ++j) {
      const prev_cells<score_t> prev{diag, hh[j], hh[j - 1], ee[j], f};
      const auto nx = relax_scalar<align_kind::global, false>(prev, qc,
                                                              s[j - 1], gap,
                                                              scoring);
      diag = hh[j];
      hh[j] = nx.h;
      ee[j] = nx.e;
      f = nx.f;
    }
  }
  if (n == 0) {
    // E(0, j) boundary: no vertical gap can be open yet.
    for (index_t j = 0; j <= m; ++j) ee[j] = neg_inf();
  }
}

}  // namespace ANYSEQ_TARGET_NS
}  // namespace anyseq

#if ANYSEQ_TARGET == ANYSEQ_TARGET_SCALAR
namespace anyseq {
using v_scalar::nw_last_row;
using v_scalar::rolling_plan_bytes;
using v_scalar::rolling_score;
}  // namespace anyseq
#endif  // scalar exports

#endif  // per-target include guard
