#pragma once
/// \file types.hpp
/// Fundamental value types shared by every AnySeq module.

#include <algorithm>
#include <cstdint>
#include <limits>

#include "core/macros.hpp"

namespace anyseq {

/// Alignment score.  32-bit externally; SIMD blocks internally use 16-bit
/// differential scores (see tiled/simd_block.hpp) and widen on exit.
using score_t = std::int32_t;

/// 16-bit score used inside SIMD blocks (paper §IV-A: "we use smaller data
/// types (e.g. 16 bits for our use cases) for scores within a block").
using score16_t = std::int16_t;

/// Sequence index / DP-matrix coordinate.  64-bit so that the *product*
/// n*m of long-genome lengths never overflows intermediate computations.
using index_t = std::int64_t;

/// Encoded sequence character.  DNA codes are 0..3 (A,C,G,T) with 4 = N;
/// the core is alphabet-agnostic and treats this as an opaque small code.
using char_t = std::uint8_t;

/// "Minus infinity" sentinel with enough headroom that adding a gap
/// penalty (or two) can never wrap around.
[[nodiscard]] constexpr score_t neg_inf() noexcept {
  return std::numeric_limits<score_t>::min() / 4;
}

/// 16-bit minus-infinity sentinel used inside SIMD blocks.  Saturating
/// adds keep it pinned (see simd/pack.hpp).
[[nodiscard]] constexpr score16_t neg_inf16() noexcept {
  return static_cast<score16_t>(-30000);
}

/// 8-bit score used inside narrow SIMD chunks of the batch engine when the
/// worst-case score bound fits the int8 window (twice the lane count of the
/// 16-bit kernels on the same vector width).
using score8_t = std::int8_t;

/// 8-bit minus-infinity sentinel.  Chosen so that real scores inside the
/// int8 window (|score| <= 96) always stay strictly above it, and so the
/// checked kernels can flag any value that drifts into sentinel territory.
[[nodiscard]] constexpr score8_t neg_inf8() noexcept {
  return static_cast<score8_t>(-112);
}

/// Score precision requested for score-only alignment routes.
///
/// `auto_select` picks the narrowest element type whose worst-case score
/// bound provably cannot saturate (and the bit-parallel route when the
/// option set is unit-cost); forcing a narrow type runs the checked
/// saturating kernel, which escalates affected pairs to the int32 rolling
/// engine whenever a score approaches the representable window.  Results
/// are byte-identical to the int32 path in every mode.
enum class score_precision : std::uint8_t {
  auto_select,  ///< narrowest provably-safe type (default).
  int8,         ///< force 8-bit checked kernel (+ escalation).
  int16,        ///< force 16-bit checked kernel (+ escalation).
  int32,        ///< force the 32-bit rolling engine.
  bitpar,       ///< force the Myers bit-parallel engine (unit-cost only).
};

[[nodiscard]] constexpr const char* to_string(score_precision p) noexcept {
  switch (p) {
    case score_precision::auto_select: return "auto";
    case score_precision::int8: return "int8";
    case score_precision::int16: return "int16";
    case score_precision::int32: return "int32";
    case score_precision::bitpar: return "bitpar";
  }
  return "?";
}

/// Worst-case |score| window inside which an (n x m) problem provably
/// cannot saturate an int8 accumulator (sentinel -112 minus headroom).
[[nodiscard]] constexpr score_t int8_score_window() noexcept { return 96; }

/// Same window for int16 accumulators (sentinel -30000 minus headroom);
/// this is the bound the 16-bit batch kernels have always used.
[[nodiscard]] constexpr score_t int16_score_window() noexcept {
  return 28000;
}

/// True if every entry of an (n x m) DP matrix provably stays within
/// +-window for per-cell score deltas bounded by `unit`: the worst score
/// magnitude along any path is at most (n + m + 2) * unit.
[[nodiscard]] constexpr bool fits_score_window(index_t n, index_t m,
                                               score_t unit,
                                               score_t window) noexcept {
  return n > 0 && m > 0 &&
         (n + m + 2) * static_cast<index_t>(unit) <
             static_cast<index_t>(window);
}

/// Kind of pairwise alignment (paper §III-A).
enum class align_kind : std::uint8_t {
  global,      ///< Needleman–Wunsch: path from (0,0) to (n,m), nu = -inf.
  local,       ///< Smith–Waterman: best path anywhere, nu = 0.
  semiglobal,  ///< free leading/trailing gaps; optimum in last row/column.
  extension,   ///< anchored at (0,0), free end anywhere (internal building
               ///< block: locates local/semiglobal starts in linear space).
};

/// Gap penalty model.
enum class gap_kind : std::uint8_t {
  linear,  ///< each gap symbol costs `gap` (E/F collapse to H +- g).
  affine,  ///< gap of length k costs open + k*extend (Gotoh; Eq. 4/5).
};

[[nodiscard]] constexpr const char* to_string(align_kind k) noexcept {
  switch (k) {
    case align_kind::global: return "global";
    case align_kind::local: return "local";
    case align_kind::semiglobal: return "semiglobal";
    case align_kind::extension: return "extension";
  }
  return "?";
}

/// Diagonal band lo..hi (inclusive), in units of j - i, for the banded
/// global engine (core/banded.hpp).  Lives here — not in the per-target
/// banded header — because it crosses the `engine::ops` dispatch boundary.
struct band {
  index_t lo = -16;
  index_t hi = 16;

  [[nodiscard]] index_t width() const noexcept { return hi - lo + 1; }

  /// Band covering +-radius around the main diagonal, shifted so it
  /// always contains the end diagonal of an n x m problem.
  [[nodiscard]] static band around_main(index_t n, index_t m,
                                        index_t radius) {
    const index_t d_end = m - n;
    return {std::min<index_t>(0, d_end) - radius,
            std::max<index_t>(0, d_end) + radius};
  }
};

[[nodiscard]] constexpr const char* to_string(gap_kind k) noexcept {
  switch (k) {
    case gap_kind::linear: return "linear";
    case gap_kind::affine: return "affine";
  }
  return "?";
}

}  // namespace anyseq
