#pragma once
/// \file types.hpp
/// Fundamental value types shared by every AnySeq module.

#include <algorithm>
#include <cstdint>
#include <limits>

#include "core/macros.hpp"

namespace anyseq {

/// Alignment score.  32-bit externally; SIMD blocks internally use 16-bit
/// differential scores (see tiled/simd_block.hpp) and widen on exit.
using score_t = std::int32_t;

/// 16-bit score used inside SIMD blocks (paper §IV-A: "we use smaller data
/// types (e.g. 16 bits for our use cases) for scores within a block").
using score16_t = std::int16_t;

/// Sequence index / DP-matrix coordinate.  64-bit so that the *product*
/// n*m of long-genome lengths never overflows intermediate computations.
using index_t = std::int64_t;

/// Encoded sequence character.  DNA codes are 0..3 (A,C,G,T) with 4 = N;
/// the core is alphabet-agnostic and treats this as an opaque small code.
using char_t = std::uint8_t;

/// "Minus infinity" sentinel with enough headroom that adding a gap
/// penalty (or two) can never wrap around.
[[nodiscard]] constexpr score_t neg_inf() noexcept {
  return std::numeric_limits<score_t>::min() / 4;
}

/// 16-bit minus-infinity sentinel used inside SIMD blocks.  Saturating
/// adds keep it pinned (see simd/pack.hpp).
[[nodiscard]] constexpr score16_t neg_inf16() noexcept {
  return static_cast<score16_t>(-30000);
}

/// Kind of pairwise alignment (paper §III-A).
enum class align_kind : std::uint8_t {
  global,      ///< Needleman–Wunsch: path from (0,0) to (n,m), nu = -inf.
  local,       ///< Smith–Waterman: best path anywhere, nu = 0.
  semiglobal,  ///< free leading/trailing gaps; optimum in last row/column.
  extension,   ///< anchored at (0,0), free end anywhere (internal building
               ///< block: locates local/semiglobal starts in linear space).
};

/// Gap penalty model.
enum class gap_kind : std::uint8_t {
  linear,  ///< each gap symbol costs `gap` (E/F collapse to H +- g).
  affine,  ///< gap of length k costs open + k*extend (Gotoh; Eq. 4/5).
};

[[nodiscard]] constexpr const char* to_string(align_kind k) noexcept {
  switch (k) {
    case align_kind::global: return "global";
    case align_kind::local: return "local";
    case align_kind::semiglobal: return "semiglobal";
    case align_kind::extension: return "extension";
  }
  return "?";
}

/// Diagonal band lo..hi (inclusive), in units of j - i, for the banded
/// global engine (core/banded.hpp).  Lives here — not in the per-target
/// banded header — because it crosses the `engine::ops` dispatch boundary.
struct band {
  index_t lo = -16;
  index_t hi = 16;

  [[nodiscard]] index_t width() const noexcept { return hi - lo + 1; }

  /// Band covering +-radius around the main diagonal, shifted so it
  /// always contains the end diagonal of an n x m problem.
  [[nodiscard]] static band around_main(index_t n, index_t m,
                                        index_t radius) {
    const index_t d_end = m - n;
    return {std::min<index_t>(0, d_end) - radius,
            std::max<index_t>(0, d_end) + radius};
  }
};

[[nodiscard]] constexpr const char* to_string(gap_kind k) noexcept {
  switch (k) {
    case gap_kind::linear: return "linear";
    case gap_kind::affine: return "affine";
  }
  return "?";
}

}  // namespace anyseq
