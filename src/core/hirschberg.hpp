/// \file hirschberg.hpp
/// Linear-space traceback by divide & conquer (paper §III-A, citing
/// Hirschberg [24]; affine gaps handled in the Myers–Miller fashion).
///
/// The query is split at its middle row; a forward last-row pass over the
/// upper half and a reverse pass over the (view-)reversed lower half meet
/// at the cut, where the optimal crossing column is found either in H
/// (path passes through a cell) or in E (path crosses inside a vertical
/// gap — the two halves' gap opens are merged by subtracting one `open`).
/// Recursion stops at a configurable full-DP cutoff ("recursion on
/// subsequences is only done if the subsequence sizes exceed a
/// hardware-specific threshold", paper §III-B) or at the classic
/// n <= 1 base cases.  Total relaxed cells <= 2*n*m.
///
/// Boundary parameters `tb`/`te` carry the Myers–Miller gap-continuation
/// discounts: `gap.open()` for a fresh vertical gap at the block's top
/// (resp. bottom) boundary, 0 when the block continues a gap its parent
/// already opened.

/// (per-target header: compiled into `anyseq::ANYSEQ_TARGET_NS`, once per
/// engine variant — see simd/foreach_target.hpp)

#include "simd/set_target.hpp"

#if defined(ANYSEQ_CORE_HIRSCHBERG_HPP_) == defined(ANYSEQ_TARGET_TOGGLE)
#ifdef ANYSEQ_CORE_HIRSCHBERG_HPP_
#undef ANYSEQ_CORE_HIRSCHBERG_HPP_
#else
#define ANYSEQ_CORE_HIRSCHBERG_HPP_
#endif

#include <functional>

#include "core/full_engine.hpp"
#include "core/rolling.hpp"
#include "core/traceback.hpp"
#include "core/workspace.hpp"
#include "stage/views.hpp"

namespace anyseq {
namespace ANYSEQ_TARGET_NS {

/// Strategy computing a boundary-parameterized global last-row pass
/// (`hh[j] = H(n,j)`, `ee[j] = E(n,j)`).  The serial default wraps
/// nw_last_row; the tiled multi-threaded engine substitutes its own —
/// the same composition-by-function-argument the paper uses to swap
/// iteration strategies.
///
/// Arguments: (q, s, tb, hh, ee) where q/s may be any sequence view.
template <class Gap, class Scoring>
struct serial_last_row {
  Gap gap;
  Scoring scoring;
  template <stage::sequence_view QV, stage::sequence_view SV>
  void operator()(const QV& q, const SV& s, score_t tb,
                  std::span<score_t> hh, std::span<score_t> ee) const {
    nw_last_row(q, s, gap, scoring, tb, hh, ee);
  }
};

/// Divide-and-conquer global aligner in O(n + m) space.
///
/// \tparam LastRow  last-row pass strategy (see serial_last_row)
template <class Gap, class Scoring, class LastRow>
class hirschberg_engine {
 public:
  struct config {
    /// Recursion switches to a full-matrix DP once n*m falls below this
    /// (ablation: bench_ablation sweeps it).  Must be >= 1.
    index_t base_cells = 1 << 14;
  };

  hirschberg_engine(Gap gap, Scoring scoring, LastRow last_row,
                    config cfg = {})
      : gap_(gap), scoring_(scoring), last_row_(last_row), cfg_(cfg) {
    ANYSEQ_CHECK(cfg_.base_cells >= 1, "base_cells must be >= 1");
  }

  /// Arena bytes one align pass carves (the plan side).  The recursion
  /// releases each level's last-row quadruple *before* recursing, so the
  /// peak is one quadruple plus the larger of the full-DP base case and
  /// whatever the last-row strategy itself carves (`last_row_extra`,
  /// e.g. the tiled engine's lattice + worker scratch; 0 for the serial
  /// strategy).
  [[nodiscard]] static std::size_t plan_bytes(
      index_t n, index_t m, index_t base_cells,
      std::size_t last_row_extra) noexcept {
    const std::size_t quad =
        4 * carve_bytes<score_t>(static_cast<std::size_t>(m + 1));
    // base_full bound: (n'+1)*(m'+1) with n'*m' <= base_cells.
    const std::size_t base_hm = static_cast<std::size_t>(base_cells) +
                                static_cast<std::size_t>(n) +
                                static_cast<std::size_t>(m) + 2;
    const std::size_t base =
        carve_bytes<score_t>(base_hm) + carve_bytes<std::uint8_t>(base_hm) +
        carve_bytes<score_t>(static_cast<std::size_t>(m + 1));
    return quad + (base > last_row_extra ? base : last_row_extra);
  }

  /// Global alignment with full traceback in linear space, carving the
  /// last-row buffers from `ws` and recycling `res`'s string capacity.
  void align_into(stage::seq_view q, stage::seq_view s, workspace& ws,
                  alignment_result& res) {
    cells_ = 0;
    ws_ = &ws;
    res.reset();
    workspace::builder_lease lease(ws, res);
    const score_t sc = solve(q, s, gap_.open(), gap_.open(), lease.get());
    res.score = sc;
    res.q_begin = 0;
    res.q_end = q.size();
    res.s_begin = 0;
    res.s_end = s.size();
    res.cells = cells_;
    lease.get().take(res);
    ws_ = nullptr;
  }

  /// One-shot convenience over a member workspace.
  [[nodiscard]] alignment_result align(stage::seq_view q, stage::seq_view s) {
    own_ws_.begin_pass();
    alignment_result res;
    align_into(q, s, own_ws_, res);
    return res;
  }

  /// Total DP cells relaxed by the last call (paper: at most doubled).
  [[nodiscard]] std::uint64_t cells() const noexcept { return cells_; }

 private:
  // ---- Myers–Miller recursion ------------------------------------------
  score_t solve(stage::seq_view q, stage::seq_view s, score_t tb, score_t te,
                alignment_builder& out) {
    const index_t n = q.size(), m = s.size();

    if (n == 0) {
      for (index_t j = 0; j < m; ++j) out.ins(s[j]);
      return gap_.total(m);
    }
    if (m == 0) {
      for (index_t i = 0; i < n; ++i) out.del(q[i]);
      return static_cast<score_t>(std::max(tb, te) + gap_.extend() * n);
    }
    if (n == 1) return base_single_row(q, s, tb, te, out);
    if (n * m <= cfg_.base_cells) return base_full(q, s, tb, te, out);

    const index_t mid = n / 2;

    // Find the best crossing column.  The last-row quadruple is carved
    // from the workspace and released before recursing, so the arena's
    // peak is one level's rows, not the whole recursion path's.
    score_t best = neg_inf();
    index_t best_j = 0;
    bool gap_join = false;
    {
      workspace::frame fr(*ws_);
      auto hf = ws_->make<score_t>(static_cast<std::size_t>(m + 1));
      auto ef = ws_->make<score_t>(static_cast<std::size_t>(m + 1));
      auto hr = ws_->make<score_t>(static_cast<std::size_t>(m + 1));
      auto er = ws_->make<score_t>(static_cast<std::size_t>(m + 1));

      // Forward pass over the upper half, reverse pass over the lower.
      last_row_(q.sub(0, mid), s, tb, hf, ef);
      last_row_(stage::rev_view(q.sub(mid, n)), stage::rev_view(s), te, hr,
                er);
      cells_ += static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(m);

      // Column-0 boundaries double as open vertical gaps whose "open"
      // cost is whatever tb/te encoded (see DESIGN.md):
      ef[0] = hf[0];
      er[0] = hr[0];

      for (index_t j = 0; j <= m; ++j) {
        const score_t hj = static_cast<score_t>(hf[j] + hr[m - j]);
        if (hj > best) {
          best = hj;
          best_j = j;
          gap_join = false;
        }
        const score_t ej =
            static_cast<score_t>(ef[j] + er[m - j] - gap_.open());
        if (ej > best) {
          best = ej;
          best_j = j;
          gap_join = true;
        }
      }
    }

    if (!gap_join) {
      solve(q.sub(0, mid), s.sub(0, best_j), tb, gap_.open(), out);
      solve(q.sub(mid, n), s.sub(best_j, m), gap_.open(), te, out);
    } else {
      // The optimal path crosses the cut inside a vertical gap covering
      // rows mid-1 and mid: emit those two deletions explicitly and tell
      // both children the gap is already open at their shared boundary.
      solve(q.sub(0, mid - 1), s.sub(0, best_j), tb, 0, out);
      out.del(q[mid - 1]);
      out.del(q[mid]);
      solve(q.sub(mid + 1, n), s.sub(best_j, m), 0, te, out);
    }
    return best;
  }

  /// n == 1: align the single query character optimally (classic base).
  score_t base_single_row(stage::seq_view q, stage::seq_view s, score_t tb,
                          score_t te, alignment_builder& out) {
    const index_t m = s.size();
    cells_ += static_cast<std::uint64_t>(m);
    // Option A: delete q0, insert all of s.
    score_t best = static_cast<score_t>(std::max(tb, te) + gap_.extend() +
                                        gap_.total(m));
    index_t best_j = 0;  // 0 = deletion option
    // Option B_j: align q0 with s_j, gaps around it.
    for (index_t j = 1; j <= m; ++j) {
      const score_t cand = static_cast<score_t>(
          gap_.total(j - 1) +
          scoring_.template subst<score_t>(q[0], s[j - 1]) +
          gap_.total(m - j));
      if (cand > best) {
        best = cand;
        best_j = j;
      }
    }
    if (best_j == 0) {
      out.del(q[0]);
      for (index_t j = 0; j < m; ++j) out.ins(s[j]);
    } else {
      for (index_t j = 0; j < best_j - 1; ++j) out.ins(s[j]);
      out.pair(q[0], s[best_j - 1]);
      for (index_t j = best_j; j < m; ++j) out.ins(s[j]);
    }
    return best;
  }

  /// Full-DP base case with Myers–Miller boundaries: H(i,0) = tb+i*Ge and
  /// an end-state choice at (n,m) — if the block's optimal path ends
  /// inside a vertical gap that continues below (te discount), traceback
  /// starts in E.
  score_t base_full(stage::seq_view q, stage::seq_view s, score_t tb,
                    score_t te, alignment_builder& out) {
    const index_t n = q.size(), m = s.size();
    cells_ += static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(m);

    workspace::frame fr(*ws_);
    const auto cells =
        static_cast<std::size_t>(n + 1) * static_cast<std::size_t>(m + 1);
    auto h = ws_->make<score_t>(cells);          // every cell written
    auto preds = ws_->make<std::uint8_t>(cells);  // before it is read
    stage::matrix_view<score_t> hv(h.data(), n + 1, m + 1);
    stage::matrix_view<std::uint8_t> pv(preds.data(), n + 1, m + 1);
    for (index_t j = 0; j <= m; ++j) hv.write(0, j, gap_.total(j));
    for (index_t i = 0; i <= n; ++i)
      hv.write(i, 0,
               i == 0 ? 0 : static_cast<score_t>(tb + gap_.extend() * i));

    auto e_row = ws_->make<score_t>(static_cast<std::size_t>(m + 1),
                                    neg_inf());
    score_t e_corner = neg_inf();
    for (index_t i = 1; i <= n; ++i) {
      score_t f = init_f_col0(i);
      const char_t qc = q[i - 1];
      for (index_t j = 1; j <= m; ++j) {
        const prev_cells<score_t> prev{hv.read(i - 1, j - 1),
                                       hv.read(i - 1, j), hv.read(i, j - 1),
                                       e_row[j], f};
        const auto nx = relax_scalar<align_kind::global, true>(prev, qc,
                                                               s[j - 1], gap_,
                                                               scoring_);
        hv.write(i, j, nx.h);
        pv.write(i, j, nx.pred);
        e_row[j] = nx.e;
        f = nx.f;
      }
      e_corner = e_row[m];
    }

    const score_t end_h = hv.read(n, m);
    const score_t end_e =
        static_cast<score_t>(e_corner - gap_.open() + te);
    const bool start_in_e = m > 0 && n > 0 && end_e > end_h;

    workspace::builder_lease piece(*ws_);
    auto pred_at = [&pv](index_t i, index_t j) { return pv.read(i, j); };
    traceback_walk<align_kind::global>(q, s, n, m, pred_at, piece.get(),
                                       start_in_e ? tb_state::e
                                                  : tb_state::h);
    out.append(piece.get());
    return start_in_e ? end_e : end_h;
  }

  Gap gap_;
  Scoring scoring_;
  LastRow last_row_;
  config cfg_;
  std::uint64_t cells_ = 0;
  workspace* ws_ = nullptr;  ///< the pass's arena (set by align_into)
  workspace own_ws_;         ///< backs the one-shot convenience overload
};

/// Convenience: serial linear-space global alignment.
template <class Gap, class Scoring>
[[nodiscard]] alignment_result hirschberg_align(stage::seq_view q,
                                                stage::seq_view s,
                                                const Gap& gap,
                                                const Scoring& scoring,
                                                index_t base_cells = 1 << 14) {
  using lr = serial_last_row<Gap, Scoring>;
  hirschberg_engine<Gap, Scoring, lr> eng(
      gap, scoring, lr{gap, scoring}, {base_cells});
  return eng.align(q, s);
}

}  // namespace ANYSEQ_TARGET_NS
}  // namespace anyseq

#if ANYSEQ_TARGET == ANYSEQ_TARGET_SCALAR
namespace anyseq {
using v_scalar::hirschberg_align;
using v_scalar::hirschberg_engine;
using v_scalar::serial_last_row;
}  // namespace anyseq
#endif  // scalar exports

#endif  // per-target include guard
