/// \file bitpar.hpp
/// Myers bit-parallel global alignment for unit-cost option sets
/// (match = 0, mismatch = gap = g < 0): the score of the optimal global
/// alignment is g * edit_distance(q, s), and the edit distance is
/// computed with Myers' bit-vector recurrence in Hyyrö's blocked form —
/// one column of 64 DP cells advances with ~15 bitwise operations, i.e.
/// roughly one instruction per 4 cells even on scalar hardware, far
/// below any SIMD DP kernel's cells/instruction.
///
/// The pattern (q) is sliced into 64-row words; Peq masks are built for
/// the first 32 character codes (the library's DNA/protein encodings fit
/// comfortably).  Inputs using larger codes return a sentinel and the
/// caller falls back to the rolling engine inside the same workspace
/// pass, so the route never fails — it only loses its speed advantage.
///
/// Per-target header: compiled into `anyseq::ANYSEQ_TARGET_NS`, once per
/// engine variant (the word-parallel loop needs no ISA-specific code,
/// but route symbols must stay inside their variant namespace for the
/// symbol-isolation audit).

#include "simd/set_target.hpp"

#if defined(ANYSEQ_CORE_BITPAR_HPP_) == defined(ANYSEQ_TARGET_TOGGLE)
#ifdef ANYSEQ_CORE_BITPAR_HPP_
#undef ANYSEQ_CORE_BITPAR_HPP_
#else
#define ANYSEQ_CORE_BITPAR_HPP_
#endif

#include <algorithm>
#include <cstdint>

#include "core/gap.hpp"
#include "core/rolling.hpp"
#include "core/scoring.hpp"
#include "core/workspace.hpp"
#include "stage/views.hpp"

namespace anyseq {
namespace ANYSEQ_TARGET_NS {

/// Largest character code (exclusive) the Peq table covers.
inline constexpr int kBitparMaxCode = 32;

/// Arena bytes one bitpar pass carves — includes the rolling rows of the
/// oversized-alphabet fallback so reserve() covers either outcome.
[[nodiscard]] inline std::size_t bitpar_plan_bytes(index_t n,
                                                   index_t m) noexcept {
  const std::size_t words = (static_cast<std::size_t>(n) + 63) / 64;
  const std::size_t own =
      carve_bytes<std::uint64_t>(words * kBitparMaxCode) +
      2 * carve_bytes<std::uint64_t>(words);
  return std::max(own, rolling_plan_bytes(m));
}

/// Unit-cost edit distance of q vs s (n, m >= 1), Myers/Hyyrö blocked
/// bit-parallel NW.  Returns -1 if either sequence uses a character code
/// >= kBitparMaxCode (caller falls back to the rolling engine).  The Peq
/// table and the VP/VN delta vectors are carved from `ws` and released
/// on return.
template <stage::sequence_view QV, stage::sequence_view SV>
[[nodiscard]] index_t bitpar_edit_distance(const QV& q, const SV& s,
                                           workspace& ws) {
  const index_t n = q.size(), m = s.size();
  ANYSEQ_ASSERT(n > 0 && m > 0, "bitpar needs non-empty sequences");
  const std::size_t W = (static_cast<std::size_t>(n) + 63) / 64;

  workspace::frame fr(ws);
  auto peq = ws.make<std::uint64_t>(W * kBitparMaxCode, 0);
  auto vp = ws.make<std::uint64_t>(W);
  auto vn = ws.make<std::uint64_t>(W, 0);
  for (index_t i = 0; i < n; ++i) {
    const int c = static_cast<int>(q[i]);
    if (c >= kBitparMaxCode) return -1;
    peq[static_cast<std::size_t>(c) * W + static_cast<std::size_t>(i) / 64] |=
        std::uint64_t{1} << (i & 63);
  }
  for (std::size_t w = 0; w < W; ++w) vp[w] = ~std::uint64_t{0};

  // Cell (n, j) sits at this bit of the last word; carries in the D0
  // formula only propagate upward, so the padding bits above it can
  // never contaminate the tracked score.
  const int last_bit = static_cast<int>((n - 1) & 63);
  index_t score = n;  // D(n, 0) = n (leading deletions)

  for (index_t j = 0; j < m; ++j) {
    const int c = static_cast<int>(s[j]);
    if (c >= kBitparMaxCode) return -1;
    const std::uint64_t* eq_row = &peq[static_cast<std::size_t>(c) * W];
    int hin = 1;  // D(0, j+1) - D(0, j) = +1 (leading insertions)
    for (std::size_t w = 0; w < W; ++w) {
      const std::uint64_t eq = eq_row[w];
      const std::uint64_t x = eq | (hin < 0 ? std::uint64_t{1} : 0);
      const std::uint64_t d0 =
          (((x & vp[w]) + vp[w]) ^ vp[w]) | x | vn[w];
      std::uint64_t hp = vn[w] | ~(d0 | vp[w]);
      std::uint64_t hn = d0 & vp[w];
      if (w == W - 1) {
        if ((hp >> last_bit) & 1) ++score;
        else if ((hn >> last_bit) & 1) --score;
      }
      const int hout =
          ((hp >> 63) & 1) ? 1 : (((hn >> 63) & 1) ? -1 : 0);
      hp = (hp << 1) | (hin > 0 ? std::uint64_t{1} : 0);
      hn = (hn << 1) | (hin < 0 ? std::uint64_t{1} : 0);
      vp[w] = hn | ~(d0 | hp);
      vn[w] = hp & d0;
      hin = hout;
    }
  }
  return score;
}

/// Global unit-cost score pass: score = g * edit_distance with the
/// mandatory global end cell (n, m).  `g` is the (negative) unified
/// mismatch/gap penalty; the rolling fallback uses the equivalent
/// explicit model so the result is byte-identical either way.
template <stage::sequence_view QV, stage::sequence_view SV>
[[nodiscard]] score_result bitpar_score(const QV& q, const SV& s, score_t g,
                                        workspace& ws) {
  const index_t n = q.size(), m = s.size();
  const index_t d = bitpar_edit_distance(q, s, ws);
  if (d < 0)
    return rolling_score<align_kind::global>(
        q, s, linear_gap{g}, simple_scoring{0, g}, ws);
  score_result r;
  r.score = static_cast<score_t>(g * d);
  r.end_i = n;
  r.end_j = m;
  r.cells =
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(m);
  return r;
}

}  // namespace ANYSEQ_TARGET_NS
}  // namespace anyseq

#if ANYSEQ_TARGET == ANYSEQ_TARGET_SCALAR
namespace anyseq {
using v_scalar::bitpar_edit_distance;
using v_scalar::bitpar_plan_bytes;
using v_scalar::bitpar_score;
using v_scalar::kBitparMaxCode;
}  // namespace anyseq
#endif  // scalar exports

#endif  // per-target include guard
