#pragma once
/// \file ops.hpp
/// Value-generic arithmetic used by the relaxation kernel.
///
/// The paper's central trick is that *one* relaxation function serves every
/// backend because all data access and arithmetic goes through functions the
/// partial evaluator specializes away.  Here the same role is played by this
/// tiny overload set: `core::relax` is written against `vmax`/`vadd`/
/// `vselect`/... and instantiates to straight-line scalar code for
/// `score_t`, to saturating 16-bit SIMD code for `simd::pack<int16_t,W>`
/// (which supplies its own overloads, found via ADL), and to whatever a
/// simulator backend plugs in.

#include <type_traits>

#include "core/macros.hpp"
#include "core/types.hpp"

namespace anyseq {

// ---------------------------------------------------------------------------
// Scalar overloads.  Packs provide equivalents in simd/pack.hpp.
// ---------------------------------------------------------------------------

template <class T>
concept arithmetic_scalar = std::is_arithmetic_v<T>;

/// Mask type associated with a value type: `bool` for scalars; packs
/// specialize via their own `mask` member type and overloads.
template <class T>
struct mask_of {
  using type = bool;
};
template <class T>
using mask_of_t = typename mask_of<T>::type;

template <arithmetic_scalar T>
[[nodiscard]] ANYSEQ_INLINE T vmax(T a, T b) noexcept {
  return a > b ? a : b;
}

template <arithmetic_scalar T>
[[nodiscard]] ANYSEQ_INLINE T vmin(T a, T b) noexcept {
  return a < b ? a : b;
}

/// Addition.  For 32-bit scores plain addition is safe because `neg_inf()`
/// leaves 2 bits of headroom; 16-bit scores must saturate so the -inf
/// sentinel stays pinned (mirrors `_mm256_adds_epi16` in the SIMD path).
template <arithmetic_scalar T>
[[nodiscard]] ANYSEQ_INLINE T vadd(T a, T b) noexcept {
  if constexpr (sizeof(T) <= 2 && std::is_signed_v<T>) {
    const int wide = static_cast<int>(a) + static_cast<int>(b);
    const int lo = std::numeric_limits<T>::min();
    const int hi = std::numeric_limits<T>::max();
    return static_cast<T>(wide < lo ? lo : (wide > hi ? hi : wide));
  } else {
    return static_cast<T>(a + b);
  }
}

template <arithmetic_scalar T>
[[nodiscard]] ANYSEQ_INLINE bool vgt(T a, T b) noexcept {
  return a > b;
}

template <arithmetic_scalar T>
[[nodiscard]] ANYSEQ_INLINE bool veq(T a, T b) noexcept {
  return a == b;
}

/// `cond ? a : b`, lane-wise for packs.
template <arithmetic_scalar T>
[[nodiscard]] ANYSEQ_INLINE T vselect(bool cond, T a, T b) noexcept {
  return cond ? a : b;
}

/// Broadcast a scalar into a value of type T: identity cast for scalars;
/// types exposing a static `broadcast` (SIMD packs) use it.  This cannot
/// dispatch by ADL — the argument is always a plain score — so it probes
/// the target type directly.
template <class T>
[[nodiscard]] ANYSEQ_INLINE T vbroadcast(score_t x) noexcept {
  if constexpr (requires(typename T::value_type v) { T::broadcast(v); }) {
    return T::broadcast(static_cast<typename T::value_type>(x));
  } else {
    static_assert(std::is_arithmetic_v<T>,
                  "vbroadcast target must be arithmetic or a pack");
    return static_cast<T>(x);
  }
}

[[nodiscard]] ANYSEQ_INLINE bool vor(bool a, bool b) noexcept { return a || b; }
[[nodiscard]] ANYSEQ_INLINE bool vand(bool a, bool b) noexcept { return a && b; }

/// Substitution-matrix lookup; packs overload this with a per-lane gather.
/// `stride` is the row length of the score table.
template <arithmetic_scalar T, class C>
[[nodiscard]] ANYSEQ_INLINE T vlookup(const score_t* table, int stride, C q,
                                      C s) noexcept {
  return static_cast<T>(table[static_cast<int>(q) * stride +
                              static_cast<int>(s)]);
}

/// Horizontal maximum (identity for scalars; packs reduce across lanes).
template <arithmetic_scalar T>
[[nodiscard]] ANYSEQ_INLINE T vhmax(T a) noexcept {
  return a;
}

}  // namespace anyseq
