/// \file workspace.hpp
/// Caller-owned reusable memory arena for the plan/execute split.
///
/// Every alignment pass used to heap-allocate its DP buffers on entry
/// (rolling rows, full matrices, Hirschberg last-row quadruples, border
/// lattices, SIMD block scratch).  A `workspace` replaces all of that
/// with one bump arena the caller owns and reuses: *plan* decides the
/// route and footprint, *execute* carves spans out of the arena.  After
/// warm-up (the arena has grown to the working set of the largest shape
/// seen) repeated passes perform zero heap allocations — the contract
/// tests/core/alloc_steady_state_test.cpp enforces.
///
/// Allocation discipline is a stack: engines open a `workspace::frame`,
/// carve spans with `make<T>()`, and the frame's destructor rewinds the
/// arena — so Hirschberg recursion reuses the same bytes level after
/// level instead of accumulating.  One slab serves the whole pass; when
/// a carve does not fit, an overflow chunk is taken (warm-up only) and
/// the next `begin_pass()` regrows the slab to the observed high-water
/// mark and drops the chunks.
///
/// The workspace also pools `alignment_builder`s (traceback string
/// scratch) so divide & conquer base cases reuse string capacity, and
/// lets the top-level builder adopt the caller's recycled
/// `alignment_result` buffers — the capacity circulates between the
/// caller's result object and the pool instead of being reallocated.
///
/// Thread-safety: a workspace serves ONE pass at a time and must only be
/// carved from by the thread driving the pass.  Multi-threaded engines
/// carve per-worker scratch up front (on the driving thread) and hand
/// each worker its own slice.
///
/// Per-target header: compiled into `anyseq::ANYSEQ_TARGET_NS`, once per
/// engine variant — the arena's carve loops and the builder pool must
/// never share a COMDAT with another variant's code (the symbol audit
/// checks `workspace::`).  Workspaces cross the `engine::ops` dispatch
/// boundary as opaque `void*` handles only.

#include "simd/set_target.hpp"

#if defined(ANYSEQ_CORE_WORKSPACE_HPP_) == defined(ANYSEQ_TARGET_TOGGLE)
#ifdef ANYSEQ_CORE_WORKSPACE_HPP_
#undef ANYSEQ_CORE_WORKSPACE_HPP_
#else
#define ANYSEQ_CORE_WORKSPACE_HPP_
#endif

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/macros.hpp"
#include "core/result.hpp"
#include "core/traceback.hpp"
#include "core/types.hpp"

namespace anyseq {
namespace ANYSEQ_TARGET_NS {

class workspace {
 public:
  /// Every carve is aligned to this (covers the 64-byte AVX-512 packs).
  static constexpr std::size_t carve_align = 64;

  workspace() = default;
  workspace(workspace&&) noexcept = default;
  workspace& operator=(workspace&&) noexcept = default;
  workspace(const workspace&) = delete;
  workspace& operator=(const workspace&) = delete;

  /// Start a pass: rewind the arena and, if a previous pass's live peak
  /// exceeded the slab (it spilled into overflow chunks), regrow the
  /// slab to the high-water mark so this pass (and every later one of
  /// the same shape) fits in one allocation-free slab.  `high_water_`
  /// is sticky across frame rewinds — it records the live peak even
  /// though the frames freed their overflow chunks on unwind.
  void begin_pass() {
    overflow_.clear();
    overflow_bytes_ = 0;
    if (high_water_ > slab_span()) resize_slab(high_water_);
    used_ = 0;
  }

  /// Pre-size the arena so a pass needing up to `bytes` carves without
  /// allocating — the execute half of `aligner::reserve`.
  void reserve_bytes(std::size_t bytes) {
    if (bytes > slab_span()) resize_slab(bytes);
    if (bytes > high_water_) high_water_ = bytes;
  }

  /// Carve `count` elements of T (uninitialized).
  template <class T>
  [[nodiscard]] std::span<T> make(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "the arena carves raw storage: T must be trivial enough");
    if (count == 0) return {};
    void* p = alloc(count * sizeof(T));
    return {static_cast<T*>(p), count};
  }

  /// Carve and fill.
  template <class T>
  [[nodiscard]] std::span<T> make(std::size_t count, const T& fill) {
    auto s = make<T>(count);
    for (auto& x : s) x = fill;
    return s;
  }

  /// Stack discipline: rewinds the arena — slab offset AND overflow
  /// chunks — to its construction point, so the high-water mark tracks
  /// the LIVE peak, not the cumulative bytes a cold pass ever carved
  /// (a cold batch pass over N chunks must not regrow the slab to N
  /// chunks' worth of scratch).
  class frame {
   public:
    explicit frame(workspace& ws) noexcept
        : ws_(&ws),
          mark_(ws.used_),
          overflow_mark_(ws.overflow_.size()),
          overflow_bytes_mark_(ws.overflow_bytes_) {}
    ~frame() {
      ws_->used_ = mark_;
      ws_->overflow_.resize(overflow_mark_);  // frees chunks carved inside
      ws_->overflow_bytes_ = overflow_bytes_mark_;
    }
    frame(const frame&) = delete;
    frame& operator=(const frame&) = delete;

   private:
    workspace* ws_;
    std::size_t mark_;
    std::size_t overflow_mark_;
    std::size_t overflow_bytes_mark_;
  };

  /// Bytes the arena currently holds (slab + live overflow chunks).
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return slab_span() + overflow_bytes_;
  }

  /// Peak concurrent usage ever observed (what begin_pass grows to).
  [[nodiscard]] std::size_t high_water_bytes() const noexcept {
    return high_water_;
  }

  /// Release all arena and builder-pool memory (footprint control for
  /// long-lived aligners between bursts).  The next pass re-warms.
  void shrink() noexcept {
    slab_ = {};
    overflow_.clear();
    overflow_bytes_ = 0;
    used_ = 0;
    high_water_ = 0;
    builders_.clear();
    builders_busy_ = 0;
  }

  // --- pooled traceback builders ------------------------------------

  /// RAII lease of a pooled alignment_builder (cleared, capacity kept).
  /// Leases nest strictly (divide & conquer), so release is LIFO.
  class builder_lease {
   public:
    explicit builder_lease(workspace& ws)
        : ws_(&ws), b_(&ws.acquire_builder()) {}
    /// Lease whose builder adopts the string capacity of a recycled
    /// result (the top-level builder of a traceback pass).
    builder_lease(workspace& ws, alignment_result& recycle)
        : builder_lease(ws) {
      b_->adopt_capacity(recycle);
    }
    ~builder_lease() { ws_->release_builder(); }
    builder_lease(const builder_lease&) = delete;
    builder_lease& operator=(const builder_lease&) = delete;

    [[nodiscard]] alignment_builder& get() noexcept { return *b_; }

   private:
    workspace* ws_;
    alignment_builder* b_;
  };

 private:
  friend class builder_lease;

  [[nodiscard]] static std::size_t align_up(std::size_t v) noexcept {
    return (v + (carve_align - 1)) & ~(carve_align - 1);
  }

  // The aligned base/usable-span are DERIVED from slab_ on demand (never
  // cached as raw members), so the defaulted move operations cannot
  // leave a moved-from workspace pointing into freed memory: after a
  // move, slab_ is empty, the span is 0, and any carve takes the
  // overflow path.
  [[nodiscard]] std::byte* slab_base() const noexcept {
    const auto base = reinterpret_cast<std::uintptr_t>(slab_.data());
    const std::uintptr_t aligned =
        (base + (carve_align - 1)) &
        ~static_cast<std::uintptr_t>(carve_align - 1);
    return reinterpret_cast<std::byte*>(aligned);
  }
  [[nodiscard]] std::size_t slab_span() const noexcept {
    if (slab_.empty()) return 0;
    return slab_.size() -
           static_cast<std::size_t>(slab_base() - slab_.data());
  }

  void resize_slab(std::size_t bytes) {
    // Nothing is live (begin_pass/reserve only): drop-and-regrow so the
    // old slab's contents are never copied.
    slab_ = {};
    slab_.resize(bytes + carve_align);
  }

  void* alloc(std::size_t bytes) {
    const std::size_t need = align_up(bytes);
    if (used_ + need <= slab_span()) {
      void* p = slab_base() + used_;
      used_ += need;
      if (used_ + overflow_bytes_ > high_water_)
        high_water_ = used_ + overflow_bytes_;
      return p;
    }
    // Warm-up spill: chunked so already-carved spans stay valid.
    overflow_.emplace_back(need + carve_align);
    overflow_bytes_ += need;
    if (used_ + overflow_bytes_ > high_water_)
      high_water_ = used_ + overflow_bytes_;
    const auto base = reinterpret_cast<std::uintptr_t>(overflow_.back().data());
    const std::uintptr_t aligned = (base + (carve_align - 1)) &
                                   ~static_cast<std::uintptr_t>(carve_align - 1);
    return reinterpret_cast<void*>(aligned);
  }

  alignment_builder& acquire_builder() {
    if (builders_busy_ == builders_.size())
      builders_.push_back(std::make_unique<alignment_builder>());
    alignment_builder& b = *builders_[builders_busy_++];
    b.clear();
    return b;
  }

  void release_builder() noexcept { --builders_busy_; }

  std::vector<std::byte> slab_;
  std::size_t used_ = 0;
  std::vector<std::vector<std::byte>> overflow_;
  std::size_t overflow_bytes_ = 0;
  std::size_t high_water_ = 0;

  // Stable addresses: outer leases must survive pool growth.
  std::vector<std::unique_ptr<alignment_builder>> builders_;
  std::size_t builders_busy_ = 0;
};

/// Footprint helper for the plan side: bytes `make<T>(count)` consumes.
template <class T>
[[nodiscard]] constexpr std::size_t carve_bytes(std::size_t count) noexcept {
  const std::size_t raw = count * sizeof(T);
  return (raw + (workspace::carve_align - 1)) &
         ~(workspace::carve_align - 1);
}

}  // namespace ANYSEQ_TARGET_NS
}  // namespace anyseq

#if ANYSEQ_TARGET == ANYSEQ_TARGET_SCALAR
namespace anyseq {
using v_scalar::carve_bytes;
using v_scalar::workspace;
}  // namespace anyseq
#endif  // scalar exports

#endif  // per-target include guard
