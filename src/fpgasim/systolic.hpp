#pragma once
/// \file systolic.hpp
/// Cycle-stepped simulation of the paper's FPGA mapping (§IV-C): a linear
/// array of K_PE processing elements, one DP cell per PE per clock.
///
/// The shorter sequence is cut into stripes of K_PE rows that initialize
/// the PEs; the longer sequence streams through the array, each PE
/// relaxing its row one column behind its upstream neighbour (classic
/// systolic skew).  Stripe boundary rows round-trip through a DDR buffer,
/// exactly as the paper describes ("we buffer the rightmost DP column of
/// a stripe with the help of a predefined hardware component in DDR
/// memory").
///
/// The simulator is bit-exact against the CPU reference and reports
/// cycle counts, PE utilization, and DDR traffic; fpga_model converts
/// them into GCUPS and GCUPS/W at the ZCU104's synthesized frequency
/// (187.5 MHz) and power (6.181 W) for Table II.

#include <vector>

#include "core/errors.hpp"
#include "core/init.hpp"
#include "core/relax.hpp"
#include "core/rolling.hpp"
#include "stage/views.hpp"

namespace anyseq::fpgasim {

struct fpga_config {
  int kpe = 128;             ///< number of processing elements
  double freq_mhz = 187.5;   ///< synthesized clock (paper §V)
  double watts = 6.181;      ///< from the hardware synthesis report
  double ddr_gbs = 19.2;     ///< DDR4 bandwidth of the host buffer
};

struct fpga_result {
  score_t score = 0;
  std::uint64_t cells = 0;
  std::uint64_t cycles = 0;
  std::uint64_t ddr_bytes = 0;
  double utilization = 0.0;  ///< cells / (cycles * K_PE)
  double compute_ms = 0.0;
  double transfer_ms = 0.0;
  double time_ms = 0.0;      ///< max(compute, transfer)
  double gcups = 0.0;
  double gcups_per_watt = 0.0;
};

/// Boundary init helper shared with the stripe logic.
template <align_kind K, class Gap>
[[nodiscard]] ANYSEQ_INLINE score_t init_col0(index_t i, const Gap& gap) {
  return init_h_col0<K>(i, gap);
}

/// Convert cycle/traffic counts into the Table II metrics.
inline void finish_model(fpga_result& r, const fpga_config& cfg) {
  r.utilization =
      r.cycles == 0 ? 0.0
                    : static_cast<double>(r.cells) /
                          (static_cast<double>(r.cycles) * cfg.kpe);
  r.compute_ms = r.cycles / (cfg.freq_mhz * 1e3);
  r.transfer_ms =
      static_cast<double>(r.ddr_bytes) / (cfg.ddr_gbs * 1e9) * 1e3;
  r.time_ms = std::max(r.compute_ms, r.transfer_ms);
  r.gcups = r.time_ms > 0.0
                ? static_cast<double>(r.cells) / (r.time_ms * 1e6)
                : 0.0;
  r.gcups_per_watt = cfg.watts > 0.0 ? r.gcups / cfg.watts : 0.0;
}

/// Align (score-only) on the simulated systolic array.
template <align_kind K, class Gap, class Scoring, stage::sequence_view QV,
          stage::sequence_view SV>
[[nodiscard]] fpga_result systolic_score(const QV& q, const SV& s,
                                         const Gap& gap,
                                         const Scoring& scoring,
                                         const fpga_config& cfg = {}) {
  if (cfg.kpe < 1) throw invalid_argument_error("kpe must be >= 1");
  const index_t n = q.size(), m = s.size();
  const bool affine = Gap::kind == gap_kind::affine;

  fpga_result out;
  out.cells = static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(m);
  if (n == 0 || m == 0) {
    out.score = K == align_kind::global
                    ? (n == 0 ? gap.total(m) : gap.total(n))
                    : 0;
    finish_model(out, cfg);
    return out;
  }

  // DDR row buffer: H and E of the stripe boundary row (row r*K_PE).
  std::vector<score_t> ddr_h(m + 1), ddr_e(m + 1, neg_inf());
  for (index_t j = 0; j <= m; ++j) ddr_h[j] = init_h_row0<K>(j, gap);

  // Per-PE registers.
  struct pe_state {
    char_t qc = 0;
    bool active = false;
    score_t h_left = 0;    ///< H(row, j-1), own previous output
    score_t h_diag = 0;    ///< H(row-1, j-1), upstream previous input
    score_t f = 0;         ///< F(row, j-1)
    score_t out_h = 0;     ///< this cycle's H(row, j)
    score_t out_e = 0;
    score_t best = neg_inf();
  };
  std::vector<pe_state> pes(static_cast<std::size_t>(cfg.kpe));

  score_t running_best = neg_inf();
  const index_t n_stripes = (n + cfg.kpe - 1) / cfg.kpe;

  for (index_t stripe = 0; stripe < n_stripes; ++stripe) {
    const index_t row0 = stripe * cfg.kpe;  // rows row0+1 .. row0+rows
    const index_t rows = std::min<index_t>(cfg.kpe, n - row0);

    // Initialize the PEs with this stripe's query characters (paper:
    // "blocks of maximum size K_PE which are used to initialize the
    // processing elements").
    for (index_t k = 0; k < cfg.kpe; ++k) {
      auto& pe = pes[static_cast<std::size_t>(k)];
      pe.active = k < rows;
      if (pe.active) {
        pe.qc = q[row0 + k];
        pe.h_left = init_col0<K>(row0 + k + 1, gap);
        pe.h_diag = init_col0<K>(row0 + k, gap);
        pe.f = neg_inf();
        pe.best = neg_inf();
      }
    }
    out.ddr_bytes += static_cast<std::uint64_t>(rows);  // char loads

    // New stripe boundary row accumulates into fresh DDR buffers.
    std::vector<score_t> next_h(m + 1), next_e(m + 1, neg_inf());
    next_h[0] = init_col0<K>(row0 + rows, gap);

    // Cycle-stepped wavefront: at cycle t, PE k sees column j = t - k.
    const index_t total_cycles = m + rows - 1;
    for (index_t t = 0; t < total_cycles; ++t) {
      // Process downstream-to-upstream so each PE still sees its
      // upstream neighbour's *previous-cycle* outputs.
      for (index_t k = std::min<index_t>(rows - 1, t); k >= 0; --k) {
        const index_t j = t - k + 1;
        if (j < 1 || j > m) continue;
        auto& pe = pes[static_cast<std::size_t>(k)];
        // Upstream H/E of (row-1, j): PE k-1's output of the previous
        // cycle, or the DDR boundary row for the first PE.
        const score_t up_h =
            k == 0 ? ddr_h[j] : pes[static_cast<std::size_t>(k - 1)].out_h;
        const score_t up_e =
            k == 0 ? ddr_e[j] : pes[static_cast<std::size_t>(k - 1)].out_e;
        const prev_cells<score_t> prev{pe.h_diag, up_h, pe.h_left, up_e,
                                       pe.f};
        const auto nx =
            relax_scalar<K, false>(prev, pe.qc, s[j - 1], gap, scoring);
        pe.h_diag = up_h;
        pe.h_left = nx.h;
        pe.f = nx.f;
        pe.out_h = nx.h;
        pe.out_e = nx.e;
        if constexpr (tracks_running_max(K)) {
          pe.best = std::max(pe.best, nx.h);
        } else if constexpr (K == align_kind::semiglobal) {
          if (j == m) pe.best = std::max(pe.best, nx.h);  // last column
        }
        // The last active PE emits the stripe's boundary row to DDR.
        if (k == rows - 1) {
          next_h[j] = nx.h;
          next_e[j] = nx.e;
        }
      }
    }
    out.cycles += static_cast<std::uint64_t>(total_cycles);

    for (index_t k = 0; k < rows; ++k)
      running_best =
          std::max(running_best, pes[static_cast<std::size_t>(k)].best);

    // DDR round trip of the boundary row (H always, E when affine).
    out.ddr_bytes += static_cast<std::uint64_t>(m + 1) * 4 * (affine ? 4 : 2);
    ddr_h = std::move(next_h);
    ddr_e = std::move(next_e);
  }

  // Final score per alignment kind.
  if constexpr (K == align_kind::global) {
    out.score = ddr_h[m];  // the last stripe's boundary row is row n
  } else if constexpr (K == align_kind::local) {
    out.score = std::max<score_t>(running_best, 0);
  } else if constexpr (K == align_kind::semiglobal) {
    score_t best = running_best;  // last-column candidates per PE
    for (index_t j = 0; j <= m; ++j) best = std::max(best, ddr_h[j]);
    best = std::max(best, init_h_row0<K>(0, gap));
    out.score = best;
  } else {
    out.score = std::max<score_t>(running_best, 0);
  }

  finish_model(out, cfg);
  return out;
}

}  // namespace anyseq::fpgasim
