#pragma once
/// \file runtime.hpp
/// CUDA-like execution model, simulated on the host (DESIGN.md §3).
///
/// No GPU exists in this environment, so the GPU backend runs on a
/// simulated device that preserves what the paper's GPU mapping is
/// *about*: a grid of thread blocks per tile anti-diagonal, lockstep
/// thread phases inside a block (the in-stripe diagonal sweep), per-block
/// shared memory, and counted global-memory transactions with a
/// warp-granularity coalescing rule.  Scores are bit-exact against the
/// CPU reference; performance comes from the transaction/issue counters
/// fed into an analytic throughput model (model.hpp), not from host
/// wall-clock.

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/macros.hpp"
#include "core/types.hpp"

namespace anyseq::gpusim {

/// Work/transaction counters accumulated over kernel launches.
struct device_counters {
  std::uint64_t kernel_launches = 0;
  std::uint64_t blocks = 0;
  std::uint64_t thread_phases = 0;      ///< lockstep phases executed
  std::uint64_t cells = 0;              ///< DP cells relaxed
  std::uint64_t global_read_trans = 0;  ///< 128B read transactions
  std::uint64_t global_write_trans = 0; ///< 128B write transactions
  std::uint64_t global_bytes = 0;       ///< useful bytes moved
  std::uint64_t shared_accesses = 0;
  std::uint64_t atomics = 0;
};

/// The simulated device.
class device {
 public:
  static constexpr int warp_size = 32;
  static constexpr std::uint64_t transaction_bytes = 128;

  [[nodiscard]] const device_counters& counters() const noexcept {
    return counters_;
  }
  void reset_counters() noexcept { counters_ = {}; }

  /// Count a warp's global access to `addrs` (byte addresses), applying
  /// the coalescing rule: one transaction per distinct 128-byte segment.
  void log_warp_access(std::span<const std::uint64_t> addrs,
                       std::uint64_t bytes_each, bool is_write);

  /// Convenience: a strided/sequential range access by one warp-slice.
  void log_range_access(std::uint64_t base, std::uint64_t count,
                        std::uint64_t stride_bytes, std::uint64_t bytes_each,
                        bool is_write);

  void log_shared(std::uint64_t n) noexcept { counters_.shared_accesses += n; }
  void log_atomic() noexcept { ++counters_.atomics; }
  void log_cells(std::uint64_t n) noexcept { counters_.cells += n; }
  void log_phase() noexcept { ++counters_.thread_phases; }

  friend class launch_scope;

 private:
  device_counters counters_{};
};

/// Per-block context handed to kernels.
class block_context {
 public:
  block_context(device& dev, int block_idx, int block_dim)
      : dev_(dev), block_idx_(block_idx), block_dim_(block_dim) {}

  [[nodiscard]] int block_idx() const noexcept { return block_idx_; }
  [[nodiscard]] int block_dim() const noexcept { return block_dim_; }
  [[nodiscard]] device& dev() noexcept { return dev_; }

  /// One lockstep phase: `body(tid)` runs for every thread of the block;
  /// an implicit __syncthreads separates phases.  This is how in-stripe
  /// anti-diagonal sweeps are expressed.
  template <class Body>
  void threads(Body&& body) {
    dev_.log_phase();
    for (int t = 0; t < block_dim_; ++t) body(t);
  }

  /// Allocate from the block's shared-memory arena (freed with the block).
  template <class T>
  std::span<T> shared(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    arena_.emplace_back(bytes);
    dev_.log_shared(n);
    shared_bytes_ += bytes;
    return {reinterpret_cast<T*>(arena_.back().data()), n};
  }

  [[nodiscard]] std::size_t shared_bytes() const noexcept {
    return shared_bytes_;
  }

 private:
  device& dev_;
  int block_idx_;
  int block_dim_;
  std::vector<std::vector<std::byte>> arena_;
  std::size_t shared_bytes_ = 0;
};

/// Launch a kernel: `body(ctx)` runs once per block.  Blocks of one launch
/// are independent (as on real hardware) and are executed sequentially
/// here — determinism matters more than host speed for a simulator.
template <class Body>
void launch(device& dev, int grid_dim, int block_dim, Body&& body) {
  ANYSEQ_CHECK(grid_dim >= 0 && block_dim >= 1, "bad launch configuration");
  auto& c = const_cast<device_counters&>(dev.counters());
  ++c.kernel_launches;
  c.blocks += static_cast<std::uint64_t>(grid_dim);
  for (int b = 0; b < grid_dim; ++b) {
    block_context ctx(dev, b, block_dim);
    body(ctx);
  }
}

}  // namespace anyseq::gpusim
