#include "gpusim/runtime.hpp"

#include <algorithm>
#include <span>

namespace anyseq::gpusim {

void device::log_warp_access(std::span<const std::uint64_t> addrs,
                             std::uint64_t bytes_each, bool is_write) {
  // Coalescing rule: the warp's addresses are grouped into distinct
  // 128-byte segments; each segment costs one transaction.
  std::vector<std::uint64_t> segments;
  segments.reserve(addrs.size());
  for (std::uint64_t a : addrs) {
    segments.push_back(a / transaction_bytes);
    if (bytes_each > 1)
      segments.push_back((a + bytes_each - 1) / transaction_bytes);
  }
  std::sort(segments.begin(), segments.end());
  const auto n_seg = static_cast<std::uint64_t>(
      std::unique(segments.begin(), segments.end()) - segments.begin());
  auto& t = is_write ? counters_.global_write_trans
                     : counters_.global_read_trans;
  t += n_seg;
  counters_.global_bytes += addrs.size() * bytes_each;
}

void device::log_range_access(std::uint64_t base, std::uint64_t count,
                              std::uint64_t stride_bytes,
                              std::uint64_t bytes_each, bool is_write) {
  // Process in warp-sized slices.
  std::vector<std::uint64_t> addrs;
  addrs.reserve(warp_size);
  for (std::uint64_t i = 0; i < count; i += warp_size) {
    addrs.clear();
    const std::uint64_t hi = std::min<std::uint64_t>(count, i + warp_size);
    for (std::uint64_t k = i; k < hi; ++k)
      addrs.push_back(base + k * stride_bytes);
    log_warp_access(addrs, bytes_each, is_write);
  }
}

}  // namespace anyseq::gpusim
