#pragma once
/// \file model.hpp
/// Analytic throughput model converting simulated-device counters into
/// GCUPS.  The device cannot be timed (it runs on the host), so simulated
/// time is the max of a compute roof and a memory roof — the standard
/// roofline argument — plus per-launch overhead.
///
/// Default parameters approximate the paper's Titan V: 80 SMs, ~1.2 GHz
/// sustained, 653 GB/s HBM2, and an empirical 12-issue cost per DP cell
/// (the relax max-chain plus address arithmetic, 32-bit arithmetic as the
/// paper notes GPUs lack fast 16-bit here).

#include <algorithm>
#include <cstdint>

#include "gpusim/runtime.hpp"

namespace anyseq::gpusim {

struct gpu_model {
  const char* name = "titanv_like";
  double sms = 80.0;
  double lanes_per_sm = 64.0;     ///< FP32/INT cores per SM
  double clock_ghz = 1.2;
  double issue_per_cell = 12.0;   ///< instructions per DP cell
  double mem_bandwidth_gbs = 653.0;
  double launch_overhead_us = 5.0;
  double occupancy = 0.6;         ///< achieved fraction of peak issue
};

struct model_result {
  double time_ms = 0.0;
  double compute_ms = 0.0;
  double memory_ms = 0.0;
  double launch_ms = 0.0;
  double gcups = 0.0;
};

[[nodiscard]] inline model_result estimate(const device_counters& c,
                                           const gpu_model& m) {
  model_result r;
  const double issue_rate =
      m.sms * m.lanes_per_sm * m.clock_ghz * 1e9 * m.occupancy;
  r.compute_ms =
      static_cast<double>(c.cells) * m.issue_per_cell / issue_rate * 1e3;
  const double bytes =
      static_cast<double>(c.global_read_trans + c.global_write_trans) *
      static_cast<double>(device::transaction_bytes);
  r.memory_ms = bytes / (m.mem_bandwidth_gbs * 1e9) * 1e3;
  r.launch_ms =
      static_cast<double>(c.kernel_launches) * m.launch_overhead_us / 1e3;
  r.time_ms = std::max(r.compute_ms, r.memory_ms) + r.launch_ms;
  r.gcups = r.time_ms > 0.0
                ? static_cast<double>(c.cells) / (r.time_ms * 1e6)
                : 0.0;
  return r;
}

}  // namespace anyseq::gpusim
