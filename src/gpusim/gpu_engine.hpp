#pragma once
/// \file gpu_engine.hpp
/// The paper's GPU mapping (§IV-B, Fig. 4) on the simulated device:
///
///  * the host iterates tile anti-diagonals and launches one kernel per
///    diagonal ("host code that starts a GPU kernel for each diagonal");
///  * each thread block computes one tile; the tile is cut into stripes
///    whose height is the block's thread count;
///  * inside a stripe, threads sweep anti-diagonals in lockstep phases;
///  * sequence segments and the row above the stripe live in shared
///    memory; tile border rows/columns round-trip through global memory
///    (the same border_lattice the CPU backend uses — here it plays the
///    role of GPU global memory, with every access counted);
///  * scores are 32-bit ("alignment computation on the GPU relies on
///    32-bit integer arithmetic", §V).
///
/// Traceback for long sequences is host-driven divide & conquer with GPU
/// last-row passes; short-read batches store predecessor bytes in global
/// memory (counted) and walk them on the host.

#include "core/hirschberg.hpp"
#include "core/init.hpp"
#include "core/relax.hpp"
#include "core/rolling.hpp"
#include "core/traceback.hpp"
#include "gpusim/model.hpp"
#include "gpusim/runtime.hpp"
#include "tiled/batch_engine.hpp"
#include "tiled/borders.hpp"
#include "tiled/tile_kernel.hpp"

namespace anyseq::gpusim {

struct gpu_config {
  index_t tile_h = 512;
  index_t tile_w = 512;
  int block_threads = 128;  ///< stripe height
};

template <align_kind K, class Gap, class Scoring>
class gpu_engine {
 public:
  gpu_engine(device& dev, Gap gap, Scoring scoring, gpu_config cfg = {})
      : dev_(dev), gap_(gap), scoring_(scoring), cfg_(cfg) {
    if (cfg_.tile_h < 1 || cfg_.tile_w < 1 || cfg_.block_threads < 1)
      throw invalid_argument_error("bad gpu_config");
  }

  /// Score-only pass over one pair (any kind).
  template <stage::sequence_view QV, stage::sequence_view SV>
  [[nodiscard]] score_result score(const QV& q, const SV& s) {
    return pass(q, s, gap_.open(), nullptr, nullptr);
  }

  /// Boundary-parameterized last row (global kind) for the host-driven
  /// divide & conquer traceback.
  template <stage::sequence_view QV, stage::sequence_view SV>
  void last_row(const QV& q, const SV& s, score_t tb, std::span<score_t> hh,
                std::span<score_t> ee) {
    static_assert(K == align_kind::global);
    pass(q, s, tb, &hh, &ee);
  }

  /// Last-row strategy for the divide & conquer traceback: device passes
  /// for big subproblems, host passes below the cutoff (a real hybrid).
  struct gpu_last_row {
    gpu_engine* eng;
    template <class QV2, class SV2>
    void operator()(const QV2& qq, const SV2& ss, score_t tb,
                    std::span<score_t> hh, std::span<score_t> ee) const {
      if (qq.size() * ss.size() <= 1 << 14) {
        nw_last_row(qq, ss, eng->gap_, eng->scoring_, tb, hh, ee);
        return;
      }
      eng->last_row(qq, ss, tb, hh, ee);
    }
  };

  /// Global alignment with traceback: D&C on the host, passes on the
  /// device.
  [[nodiscard]] alignment_result align(stage::seq_view q, stage::seq_view s) {
    static_assert(K == align_kind::global);
    hirschberg_engine<Gap, Scoring, gpu_last_row> h(
        gap_, scoring_, gpu_last_row{this}, {1 << 14});
    return h.align(q, s);
  }

  /// Batch of short pairs: one thread block per pair, one launch per
  /// batch; predecessor bytes are stored in global memory when traceback
  /// is requested (counted as device traffic) and walked on the host.
  [[nodiscard]] std::vector<alignment_result> batch(
      std::span<const tiled::pair_view> pairs, bool want_traceback) {
    std::vector<alignment_result> out(pairs.size());
    ++const_cast<device_counters&>(dev_.counters()).kernel_launches;
    const_cast<device_counters&>(dev_.counters()).blocks += pairs.size();
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      const auto& pv = pairs[p];
      const index_t n = pv.q.size(), m = pv.s.size();
      dev_.log_cells(static_cast<std::uint64_t>(n) * m);
      // Sequence loads.
      dev_.log_range_access(0, static_cast<std::uint64_t>(n + m), 1, 1,
                            false);
      full_engine<K, Gap, Scoring> eng(gap_, scoring_);
      out[p] = eng.align(pv.q, pv.s, want_traceback);
      if (want_traceback) {
        // Pred byte per cell written + the traceback path re-read.
        dev_.log_range_access(0, static_cast<std::uint64_t>(n) * m, 1, 1,
                              true);
        dev_.log_range_access(0, static_cast<std::uint64_t>(n + m), 1, 1,
                              false);
      } else {
        // Rolling rows spill to global per block row.
        dev_.log_range_access(0, static_cast<std::uint64_t>(m) * 4, 4, 4,
                              true);
      }
    }
    return out;
  }

  [[nodiscard]] device& dev() noexcept { return dev_; }

 private:
  // -------------------------------------------------------------------
  // The striped tile kernel (Fig. 4), bit-exact and fully counted.
  // -------------------------------------------------------------------
  template <class QV, class SV>
  score_result pass(const QV& q, const SV& s, score_t tb,
                    std::span<score_t>* hh_out, std::span<score_t>* ee_out) {
    const index_t n = q.size(), m = s.size();
    score_result out;
    out.cells = static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(m);
    dev_.log_cells(out.cells);

    if (n == 0 || m == 0) {
      degenerate(n, m, tb, out, hh_out, ee_out);
      return out;
    }

    tiled::tile_geometry geom(n, m, cfg_.tile_h, cfg_.tile_w);
    tiled::border_lattice lat(geom, Gap::kind == gap_kind::affine);
    for (index_t j = 0; j <= m; ++j)
      lat.h_row(0)[j] = init_h_row0<K>(j, gap_);
    for (index_t i = 0; i <= n; ++i) {
      if constexpr (K == align_kind::global) {
        lat.h_col(0)[i] =
            i == 0 ? 0 : static_cast<score_t>(tb + gap_.extend() * i);
      } else {
        lat.h_col(0)[i] = init_h_col0<K>(i, gap_);
      }
    }

    tiled::tile_best best;
    std::mutex best_mutex;

    // Host loop over tile anti-diagonals; one launch per diagonal.
    for (index_t d = 0; d < geom.tiles_y + geom.tiles_x - 1; ++d) {
      const index_t ty_lo = d < geom.tiles_x ? 0 : d - geom.tiles_x + 1;
      const index_t ty_hi = d < geom.tiles_y ? d : geom.tiles_y - 1;
      const int blocks = static_cast<int>(ty_hi - ty_lo + 1);
      launch(dev_, blocks, cfg_.block_threads, [&](block_context& ctx) {
        const index_t ty = ty_lo + ctx.block_idx();
        const index_t tx = d - ty;
        const auto b = tile_block(ctx, q, s, lat, geom, ty, tx);
        if constexpr (K != align_kind::global) {
          std::lock_guard lock(best_mutex);
          best.merge(b);
        }
      });
    }

    collect(n, m, geom, lat, best, out, hh_out, ee_out);
    return out;
  }

  /// One thread block computing one tile in stripes.
  template <class QV, class SV>
  tiled::tile_best tile_block(block_context& ctx, const QV& q, const SV& s,
                              tiled::border_lattice& lat,
                              const tiled::tile_geometry& geom, index_t ty,
                              index_t tx) {
    const index_t y0 = geom.y0(ty), y1 = geom.y1(ty);
    const index_t x0 = geom.x0(tx), x1 = geom.x1(tx);
    const index_t h_rows = y1 - y0, w = x1 - x0;
    const bool affine = Gap::kind == gap_kind::affine;
    const int sh = ctx.block_dim();

    // Shared memory: sequence segments + the row above the current stripe.
    auto q_seg = ctx.shared<char_t>(static_cast<std::size_t>(h_rows));
    auto s_seg = ctx.shared<char_t>(static_cast<std::size_t>(w));
    auto row_h = ctx.shared<score_t>(static_cast<std::size_t>(w + 1));
    auto row_e = ctx.shared<score_t>(static_cast<std::size_t>(w + 1));
    for (index_t i = 0; i < h_rows; ++i) q_seg[i] = q[y0 + i];
    for (index_t j = 0; j < w; ++j) s_seg[j] = s[x0 + j];
    dev_.log_range_access(0, static_cast<std::uint64_t>(h_rows + w), 1, 1,
                          false);

    // Load the top border (coalesced: contiguous 4-byte words).
    for (index_t j = 0; j <= w; ++j) {
      row_h[j] = lat.h_row(ty)[x0 + j];
      row_e[j] = affine ? lat.e_row(ty)[x0 + j] : neg_inf();
    }
    dev_.log_range_access(0, static_cast<std::uint64_t>(w + 1), 4, 4, false);
    if (affine)
      dev_.log_range_access(0, static_cast<std::uint64_t>(w + 1), 4, 4,
                            false);
    // Left border (one element per row: strided, poorly coalesced — the
    // lattice column is contiguous though, so it coalesces fine).
    dev_.log_range_access(0, static_cast<std::uint64_t>(h_rows), 4, 4, false);
    if (affine)
      dev_.log_range_access(0, static_cast<std::uint64_t>(h_rows), 4, 4,
                            false);

    // Stripe scratch ("registers" of the stripe's threads).
    std::vector<score_t> sh_h((sh + 1) * (w + 1));
    std::vector<score_t> sh_e((sh + 1) * (w + 1));
    std::vector<score_t> sh_f((sh + 1) * (w + 1));
    tiled::tile_best best;

    for (index_t stripe0 = 0; stripe0 < h_rows;
         stripe0 += static_cast<index_t>(sh)) {
      const index_t rows =
          std::min<index_t>(sh, h_rows - stripe0);  // rows in this stripe
      // Row 0 of the stripe scratch is the row above.
      for (index_t j = 0; j <= w; ++j) {
        sh_h[j] = row_h[j];
        sh_e[j] = row_e[j];
      }
      // Column 0 from the left border lattice (E has no column-0 values;
      // keep the sentinel so the reported last row stays consistent).
      for (index_t r = 1; r <= rows; ++r) {
        sh_h[r * (w + 1)] = lat.h_col(tx)[y0 + stripe0 + r];
        sh_e[r * (w + 1)] = neg_inf();
        sh_f[r * (w + 1)] =
            affine ? lat.f_col(tx)[y0 + stripe0 + r] : neg_inf();
      }

      // Anti-diagonal phases: thread t computes stripe row t+1.
      const index_t n_diag = rows + w - 1;
      for (index_t dd = 0; dd < n_diag; ++dd) {
        ctx.threads([&](int t) {
          const index_t r = t + 1;
          const index_t j = dd - t + 1;
          if (r > rows || j < 1 || j > w) return;
          const std::size_t at = r * (w + 1) + j;
          const std::size_t up = (r - 1) * (w + 1) + j;
          const prev_cells<score_t> prev{sh_h[up - 1], sh_h[up],
                                         sh_h[at - 1], sh_e[up],
                                         sh_f[at - 1]};
          const auto nx = relax_scalar<K, false>(
              prev, q_seg[stripe0 + r - 1], s_seg[j - 1], gap_, scoring_);
          sh_h[at] = nx.h;
          sh_e[at] = nx.e;
          sh_f[at] = nx.f;
          dev_.log_shared(6);
          if constexpr (tracks_running_max(K))
            best.consider(nx.h, y0 + stripe0 + r, x0 + j);
        });
      }

      // The stripe's last row becomes the row above the next stripe
      // (re-using the shared buffer, as Fig. 4 describes).
      for (index_t j = 0; j <= w; ++j) {
        row_h[j] = sh_h[rows * (w + 1) + j];
        row_e[j] = sh_e[rows * (w + 1) + j];
      }
      // Right border column out.
      for (index_t r = 1; r <= rows; ++r) {
        lat.h_col(tx + 1)[y0 + stripe0 + r] = sh_h[r * (w + 1) + w];
        if (affine)
          lat.f_col(tx + 1)[y0 + stripe0 + r] = sh_f[r * (w + 1) + w];
      }
      dev_.log_range_access(0, static_cast<std::uint64_t>(rows), 4, 4, true);
      if constexpr (K == align_kind::semiglobal) {
        if (x1 == geom.m)
          for (index_t r = 1; r <= rows; ++r)
            best.consider(sh_h[r * (w + 1) + w], y0 + stripe0 + r, x1);
      }
    }

    // Bottom border out (coalesced write through the rotated view).
    for (index_t j = tx > 0 ? 1 : 0; j <= w; ++j) {
      lat.h_row(ty + 1)[x0 + j] = row_h[j];
      if (affine) lat.e_row(ty + 1)[x0 + j] = row_e[j];
    }
    dev_.log_range_access(0, static_cast<std::uint64_t>(w + 1), 4, 4, true);
    if (affine)
      dev_.log_range_access(0, static_cast<std::uint64_t>(w + 1), 4, 4, true);
    if constexpr (K == align_kind::semiglobal) {
      if (y1 == geom.n)
        for (index_t j = 0; j <= w; ++j)
          best.consider(row_h[j], y1, x0 + j);
    }
    return best;
  }

  void collect(index_t n, index_t m, const tiled::tile_geometry& geom,
               tiled::border_lattice& lat, const tiled::tile_best& best,
               score_result& out, std::span<score_t>* hh_out,
               std::span<score_t>* ee_out) {
    if constexpr (K == align_kind::global) {
      out.score = lat.h_row(geom.tiles_y)[m];
      out.end_i = n;
      out.end_j = m;
    } else {
      tiled::tile_best b = best;
      if constexpr (K == align_kind::local) {
        b.consider(0, 0, 0);
      } else if constexpr (K == align_kind::semiglobal) {
        b.consider(lat.h_row(0)[m], 0, m);
        b.consider(lat.h_col(0)[n], n, 0);
      } else {
        b.consider(0, 0, 0);
      }
      out.score = b.score;
      out.end_i = b.i;
      out.end_j = b.j;
      dev_.log_atomic();
    }
    if (hh_out != nullptr) {
      const score_t* hrow = lat.h_row(geom.tiles_y);
      for (index_t j = 0; j <= m; ++j) (*hh_out)[j] = hrow[j];
      if (lat.affine()) {
        const score_t* erow = lat.e_row(geom.tiles_y);
        for (index_t j = 0; j <= m; ++j) (*ee_out)[j] = erow[j];
      } else {
        for (index_t j = 0; j <= m; ++j) (*ee_out)[j] = neg_inf();
      }
      dev_.log_range_access(0, static_cast<std::uint64_t>(m + 1), 4, 4, true);
    }
  }

  void degenerate(index_t n, index_t m, score_t tb, score_result& out,
                  std::span<score_t>* hh_out, std::span<score_t>* ee_out) {
    if constexpr (K == align_kind::global) {
      out.score = n == 0 ? gap_.total(m)
                         : static_cast<score_t>(tb + gap_.extend() * n);
      if (n == 0 && m == 0) out.score = 0;
      out.end_i = n;
      out.end_j = m;
    }
    if (hh_out != nullptr) {
      for (index_t j = 0; j <= m; ++j) {
        (*hh_out)[j] =
            n == 0 ? gap_.total(j)
                   : static_cast<score_t>(tb + gap_.extend() * n);
        (*ee_out)[j] = neg_inf();
      }
    }
  }

  device& dev_;
  Gap gap_;
  Scoring scoring_;
  gpu_config cfg_;
};

}  // namespace anyseq::gpusim
