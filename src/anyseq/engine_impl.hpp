/// \file engine_impl.hpp
/// Implementation of one engine variant.  Included ONLY through
/// simd/foreach_target.hpp by the three variant TUs
/// (src/simd/engines_{scalar,avx2,avx512}.cpp); never by baseline code.
///
/// Everything here — and the whole engine stack it pulls in (tiled
/// engines, SIMD packs, full-matrix/rolling/Hirschberg/banded/locate
/// passes, traceback, the workspace arena) — compiles inside
/// `anyseq::ANYSEQ_TARGET_NS`, so every symbol this TU emits carries its
/// variant namespace.  No COMDAT instantiation can ever be shared with
/// baseline code or with another variant: the one-definition hazard of
/// mixing per-TU ISA flags is gone by construction (the nm audit in
/// scripts/check_symbol_isolation.sh verifies this on every build).
///
/// The only thing that leaves this namespace is the `engine::ops` table
/// of function pointers (engine_table.hpp), built from shared baseline
/// types exclusively.  Workspaces cross that boundary as opaque `void*`
/// handles; every execute entry below opens the pass (`begin_pass`) and
/// carves all DP storage from the handle's arena — the execute half of
/// the plan/execute split.  `plan_bytes_impl` is the plan half: it
/// mirrors the dispatcher's route selection and returns the exact arena
/// footprint, so `aligner::reserve` can pre-size a workspace such that
/// even the first call never allocates.

#include "simd/set_target.hpp"

#if defined(ANYSEQ_ANYSEQ_ENGINE_IMPL_HPP_) == defined(ANYSEQ_TARGET_TOGGLE)
#ifdef ANYSEQ_ANYSEQ_ENGINE_IMPL_HPP_
#undef ANYSEQ_ANYSEQ_ENGINE_IMPL_HPP_
#else
#define ANYSEQ_ANYSEQ_ENGINE_IMPL_HPP_
#endif

#include "anyseq/engine_table.hpp"
#include "anyseq/option_dispatch.hpp"
#include "core/banded.hpp"
#include "core/bitpar.hpp"
#include "core/full_engine.hpp"
#include "core/locate.hpp"
#include "core/rolling.hpp"
#include "core/workspace.hpp"
#include "parallel/thread_pool.hpp"
#include "tiled/batch_engine.hpp"
#include "tiled/tiled_engine.hpp"
#include "tiled/tiled_hirschberg.hpp"

namespace anyseq {
namespace ANYSEQ_TARGET_NS {
namespace engine {

/// SIMD width of this variant (1 / 16 / 32).
inline constexpr int kLanes = ANYSEQ_TARGET_LANES;

// The route cutoffs and the classifier are SHARED baseline definitions
// (engine_table.hpp / align.cpp): execute, plan_bytes, and the public
// dispatcher can never drift apart.
using ::anyseq::engine::classify_batch_precision;
using ::anyseq::engine::classify_route;
using ::anyseq::engine::kHirschbergBaseCells;
using ::anyseq::engine::route_kind;

// The with_kind/with_gap/with_scoring specialization steps are shared
// (anyseq/option_dispatch.hpp): their instantiations are keyed on this
// TU's lambdas, so each variant still gets private copies.

inline int resolve_threads(int threads) {
  return threads > 0 ? threads : parallel::hardware_threads();
}

inline tiled::tiled_config make_tiled_config(const align_options& opt) {
  return {opt.tile, opt.tile, resolve_threads(opt.threads),
          opt.dynamic_schedule};
}

// ---------------------------------------------------------------------
// Workspace lifecycle (the opaque handle the aligner owns).
// ---------------------------------------------------------------------

/// What the opaque `void*` workspace handle actually holds: the main
/// arena every single-threaded route carves from, plus pooled per-worker
/// arenas for the multi-threaded batch fan-out — kept alongside the main
/// arena so warm parallel batches allocate nothing run to run.
struct ws_handle {
  workspace main;
  std::vector<workspace> workers;
};

inline ws_handle& handle_of(void* ws) {
  return *static_cast<ws_handle*>(ws);
}

inline workspace& ws_of(void* ws) { return handle_of(ws).main; }

void* ws_create_impl() { return new ws_handle(); }

void ws_destroy_impl(void* ws) noexcept {
  delete static_cast<ws_handle*>(ws);
}

void ws_shrink_impl(void* ws) noexcept {
  ws_handle& h = handle_of(ws);
  h.main.shrink();
  h.workers.clear();
  h.workers.shrink_to_fit();
}

std::size_t ws_capacity_impl(const void* ws) noexcept {
  const auto& h = *static_cast<const ws_handle*>(ws);
  std::size_t total = h.main.capacity_bytes();
  for (const workspace& w : h.workers) total += w.capacity_bytes();
  return total;
}

void ws_reserve_impl(void* ws, std::size_t bytes) {
  ws_of(ws).reserve_bytes(bytes);
}

/// The plan half: exact arena footprint of the route the dispatcher
/// selects for an (n x m) problem under `opt` (see align.cpp's
/// cpu_align, whose branches this mirrors).  Returns 0 for routes that
/// carve nothing or are rejected at execute time.
std::size_t plan_bytes_impl(index_t n, index_t m, const align_options& opt) {
  const route_kind rt = classify_route(n, m, opt);
  return with_kind(opt.kind, [&](auto kc) -> std::size_t {
    constexpr align_kind K = decltype(kc)::value;
    return with_gap(opt, [&](auto gap) -> std::size_t {
      return with_scoring(opt, [&](const auto& scoring) -> std::size_t {
        (void)gap;
        (void)scoring;
        using Gap = std::decay_t<decltype(gap)>;
        using Scoring = std::decay_t<decltype(scoring)>;
        const tiled::tiled_config cfg = make_tiled_config(opt);

        switch (rt) {
          case route_kind::small_score:
            return rolling_plan_bytes(m);
          case route_kind::bitpar_score:
            return bitpar_plan_bytes(n, m);
          case route_kind::precision_score:
            // Checked narrow rows at width 1 PLUS the escalation rolling
            // rows, so reserve() covers the shed path too.
            return (opt.precision == score_precision::int8
                        ? tiled::narrow_chunk_plan_bytes<score8_t, 1>(m)
                        : tiled::narrow_chunk_plan_bytes<score16_t, 1>(m)) +
                   rolling_plan_bytes(m);
          case route_kind::tiled_score:
            return tiled::tiled_engine<K, Gap, Scoring, kLanes>::plan_bytes(
                n, m, cfg);
          case route_kind::full_matrix:
            return full_engine<K, Gap, Scoring>::plan_bytes(n, m);
          case route_kind::hirschberg:
            return tiled::tiled_hirschberg_plan_bytes<kLanes, Gap, Scoring>(
                n, m, cfg, kHirschbergBaseCells);
          case route_kind::locate:
            // locate: two rolling passes (released before the inner
            // global reconstruction) + the tiled Hirschberg peak of the
            // located region (bounded by the full problem).
            return 2 * rolling_plan_bytes(m) +
                   tiled::tiled_hirschberg_plan_bytes<kLanes, Gap, Scoring>(
                       n, m, cfg, kHirschbergBaseCells);
          case route_kind::unsupported:
          default:
            return 0;  // rejected at execute
        }
      });
    });
  });
}

/// Stamp the variant that actually produced a result; called from inside
/// the variant namespace, so a stamped result is a runtime proof that
/// this clone executed.
inline void stamp(alignment_result& r) { r.variant = ANYSEQ_TARGET_NAME; }

// ---------------------------------------------------------------------
// Execute entries.
// ---------------------------------------------------------------------

score_result tiled_score_impl(stage::seq_view q, stage::seq_view s,
                              const align_options& opt, void* ws) {
  workspace& w = ws_of(ws);
  w.begin_pass();
  return with_kind(opt.kind, [&](auto kc) {
    constexpr align_kind K = decltype(kc)::value;
    return with_gap(opt, [&](auto gap) {
      return with_scoring(opt, [&](const auto& scoring) {
        using Gap = std::decay_t<decltype(gap)>;
        using Scoring = std::decay_t<decltype(scoring)>;
        tiled::tiled_engine<K, Gap, Scoring, kLanes> eng(
            gap, scoring, make_tiled_config(opt));
        return eng.score(q, s, w);
      });
    });
  });
}

score_result small_score_impl(stage::seq_view q, stage::seq_view s,
                              const align_options& opt, void* ws) {
  workspace& w = ws_of(ws);
  w.begin_pass();
  return with_kind(opt.kind, [&](auto kc) {
    constexpr align_kind K = decltype(kc)::value;
    return with_gap(opt, [&](auto gap) {
      return with_scoring(opt, [&](const auto& scoring) {
        return rolling_score<K>(q, s, gap, scoring, w);
      });
    });
  });
}

score_result bitpar_score_impl(stage::seq_view q, stage::seq_view s,
                               const align_options& opt, void* ws) {
  workspace& w = ws_of(ws);
  w.begin_pass();
  // classify_route admitted this pair: unit-cost option set (match == 0,
  // mismatch == gap_extend < 0, linear), non-empty sequences.
  return bitpar_score(q, s, opt.gap_extend, w);
}

score_result precision_score_impl(stage::seq_view q, stage::seq_view s,
                                  const align_options& opt, void* ws) {
  workspace& w = ws_of(ws);
  w.begin_pass();
  return with_kind(opt.kind, [&](auto kc) {
    constexpr align_kind K = decltype(kc)::value;
    return with_gap(opt, [&](auto gap) {
      return with_scoring(opt, [&](const auto& scoring) {
        const tiled::pair_view pv[1] = {{q, s}};
        score_result out{};
        const auto take = [&](std::size_t, const score_result& r) {
          out = r;
        };
        std::uint64_t esc;
        if (opt.precision == score_precision::int8)
          esc = tiled::narrow_chunk_score<K, score8_t, 1, true>(
              std::span<const tiled::pair_view>(pv), 0, q.size(), s.size(),
              gap, scoring, w, take);
        else
          esc = tiled::narrow_chunk_score<K, score16_t, 1, true>(
              std::span<const tiled::pair_view>(pv), 0, q.size(), s.size(),
              gap, scoring, w, take);
        if (esc != 0) out = rolling_score<K>(q, s, gap, scoring, w);
        return out;
      });
    });
  });
}

void hirschberg_global_impl(stage::seq_view q, stage::seq_view s,
                            const align_options& opt, void* ws,
                            alignment_result& out) {
  workspace& w = ws_of(ws);
  w.begin_pass();
  with_gap(opt, [&](auto gap) {
    with_scoring(opt, [&](const auto& scoring) {
      tiled::tiled_hirschberg_align_into<kLanes>(
          q, s, gap, scoring, make_tiled_config(opt), kHirschbergBaseCells,
          w, out);
      stamp(out);
    });
  });
}

void full_align_impl(stage::seq_view q, stage::seq_view s,
                     const align_options& opt, void* ws,
                     alignment_result& out) {
  workspace& w = ws_of(ws);
  w.begin_pass();
  with_kind(opt.kind, [&](auto kc) {
    constexpr align_kind K = decltype(kc)::value;
    with_gap(opt, [&](auto gap) {
      with_scoring(opt, [&](const auto& scoring) {
        using Gap = std::decay_t<decltype(gap)>;
        using Scoring = std::decay_t<decltype(scoring)>;
        full_engine<K, Gap, Scoring> feng(gap, scoring);
        feng.align_into(q, s, true, w, out);
        stamp(out);
      });
    });
  });
}

void locate_impl(stage::seq_view q, stage::seq_view s,
                 const align_options& opt, void* ws, alignment_result& out) {
  workspace& w = ws_of(ws);
  w.begin_pass();
  with_gap(opt, [&](auto gap) {
    with_scoring(opt, [&](const auto& scoring) {
      auto galign_into = [&](stage::seq_view subq, stage::seq_view subs,
                             alignment_result& r) {
        tiled::tiled_hirschberg_align_into<kLanes>(
            subq, subs, gap, scoring, make_tiled_config(opt),
            kHirschbergBaseCells, w, r);
      };
      switch (opt.kind) {
        case align_kind::local:
          locate_align_into<align_kind::local>(q, s, gap, scoring,
                                               galign_into, w, out);
          break;
        case align_kind::semiglobal:
          locate_align_into<align_kind::semiglobal>(q, s, gap, scoring,
                                                    galign_into, w, out);
          break;
        default:
          throw invalid_argument_error(
              "locate handles local/semiglobal only");
      }
      stamp(out);
    });
  });
}

void banded_align_impl(stage::seq_view q, stage::seq_view s, band b,
                       const align_options& opt, void* ws,
                       alignment_result& out) {
  workspace& w = ws_of(ws);
  w.begin_pass();
  with_gap(opt, [&](auto gap) {
    with_scoring(opt, [&](const auto& scoring) {
      banded_global_into(q, s, gap, scoring, b, opt.want_alignment, w, out);
      stamp(out);
    });
  });
}

void batch_scores_impl(std::span<const seq_pair> pairs,
                       const align_options& opt, void* ws,
                       std::span<score_result> out, batch_stats* stats) {
  ws_handle& h = handle_of(ws);
  workspace& w = h.main;
  w.begin_pass();
  const int threads = resolve_threads(opt.threads);
  // Pool one arena per worker ahead of the fan-out so the engine carves
  // from handle-owned storage that survives (warm) across batch calls.
  if (threads > 1 && h.workers.size() < static_cast<std::size_t>(threads))
    h.workers.resize(static_cast<std::size_t>(threads));
  with_kind(opt.kind, [&](auto kc) {
    constexpr align_kind K = decltype(kc)::value;
    with_gap(opt, [&](auto gap) {
      with_scoring(opt, [&](const auto& scoring) {
        using Gap = std::decay_t<decltype(gap)>;
        using Scoring = std::decay_t<decltype(scoring)>;
        tiled::batch_engine<K, Gap, Scoring, kLanes> eng(
            gap, scoring,
            tiled::batch_config{threads, classify_batch_precision(opt),
                                opt.pad_waste_cap_pct,
                                std::span<workspace>(h.workers)});
        eng.score_into(pairs, w, out);
        if (stats != nullptr) *stats = eng.last_stats();
      });
    });
  });
}

void batch_align_impl(std::span<const seq_pair> pairs,
                      const align_options& opt, void* ws,
                      std::span<alignment_result> out) {
  workspace& w = ws_of(ws);
  w.begin_pass();
  with_kind(opt.kind, [&](auto kc) {
    constexpr align_kind K = decltype(kc)::value;
    with_gap(opt, [&](auto gap) {
      with_scoring(opt, [&](const auto& scoring) {
        using Gap = std::decay_t<decltype(gap)>;
        using Scoring = std::decay_t<decltype(scoring)>;
        tiled::batch_engine<K, Gap, Scoring, kLanes> eng(
            gap, scoring, tiled::batch_config{resolve_threads(opt.threads)});
        eng.align_into(pairs, w, out);
        for (auto& r : out) stamp(r);
      });
    });
  });
}

/// The variant's function table — the single artifact that crosses the
/// namespace boundary (referenced by `anyseq::engine::ops_x*()` in the
/// enclosing TU).
[[nodiscard]] const ::anyseq::engine::ops& variant_ops() {
  static const ::anyseq::engine::ops table{kLanes,
                                           ANYSEQ_TARGET_IS_NATIVE,
                                           ANYSEQ_TARGET_NAME,
                                           &ws_create_impl,
                                           &ws_destroy_impl,
                                           &ws_shrink_impl,
                                           &ws_capacity_impl,
                                           &ws_reserve_impl,
                                           &plan_bytes_impl,
                                           &tiled_score_impl,
                                           &small_score_impl,
                                           &bitpar_score_impl,
                                           &precision_score_impl,
                                           &hirschberg_global_impl,
                                           &full_align_impl,
                                           &locate_impl,
                                           &banded_align_impl,
                                           &batch_scores_impl,
                                           &batch_align_impl};
  return table;
}

}  // namespace engine
}  // namespace ANYSEQ_TARGET_NS
}  // namespace anyseq

#endif  // per-target include guard
