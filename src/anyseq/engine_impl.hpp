/// \file engine_impl.hpp
/// Implementation of one engine variant.  Included ONLY through
/// simd/foreach_target.hpp by the three variant TUs
/// (src/simd/engines_{scalar,avx2,avx512}.cpp); never by baseline code.
///
/// Everything here — and the whole engine stack it pulls in (tiled
/// engines, SIMD packs, full-matrix/rolling/Hirschberg/banded/locate
/// passes, traceback) — compiles inside `anyseq::ANYSEQ_TARGET_NS`, so
/// every symbol this TU emits carries its variant namespace.  No COMDAT
/// instantiation can ever be shared with baseline code or with another
/// variant: the one-definition hazard of mixing per-TU ISA flags is gone
/// by construction (the nm audit in scripts/check_symbol_isolation.sh
/// verifies this on every build).
///
/// The only thing that leaves this namespace is the `engine::ops` table
/// of function pointers (engine_table.hpp), built from shared baseline
/// types exclusively.

#include "simd/set_target.hpp"

#if defined(ANYSEQ_ANYSEQ_ENGINE_IMPL_HPP_) == defined(ANYSEQ_TARGET_TOGGLE)
#ifdef ANYSEQ_ANYSEQ_ENGINE_IMPL_HPP_
#undef ANYSEQ_ANYSEQ_ENGINE_IMPL_HPP_
#else
#define ANYSEQ_ANYSEQ_ENGINE_IMPL_HPP_
#endif

#include "anyseq/engine_table.hpp"
#include "anyseq/option_dispatch.hpp"
#include "core/banded.hpp"
#include "core/full_engine.hpp"
#include "core/locate.hpp"
#include "core/rolling.hpp"
#include "parallel/thread_pool.hpp"
#include "tiled/batch_engine.hpp"
#include "tiled/tiled_engine.hpp"
#include "tiled/tiled_hirschberg.hpp"

namespace anyseq {
namespace ANYSEQ_TARGET_NS {
namespace engine {

/// SIMD width of this variant (1 / 16 / 32).
inline constexpr int kLanes = ANYSEQ_TARGET_LANES;

// The with_kind/with_gap/with_scoring specialization steps are shared
// (anyseq/option_dispatch.hpp): their instantiations are keyed on this
// TU's lambdas, so each variant still gets private copies.

inline int resolve_threads(int threads) {
  return threads > 0 ? threads : parallel::hardware_threads();
}

inline tiled::tiled_config make_tiled_config(const align_options& opt) {
  return {opt.tile, opt.tile, resolve_threads(opt.threads),
          opt.dynamic_schedule};
}

/// Stamp the variant that actually produced a result; called from inside
/// the variant namespace, so a stamped result is a runtime proof that
/// this clone executed.
inline alignment_result stamped(alignment_result r) {
  r.variant = ANYSEQ_TARGET_NAME;
  return r;
}

score_result tiled_score_impl(stage::seq_view q, stage::seq_view s,
                              const align_options& opt) {
  return with_kind(opt.kind, [&](auto kc) {
    constexpr align_kind K = decltype(kc)::value;
    return with_gap(opt, [&](auto gap) {
      return with_scoring(opt, [&](const auto& scoring) {
        using Gap = std::decay_t<decltype(gap)>;
        using Scoring = std::decay_t<decltype(scoring)>;
        tiled::tiled_engine<K, Gap, Scoring, kLanes> eng(
            gap, scoring, make_tiled_config(opt));
        return eng.score(q, s);
      });
    });
  });
}

score_result small_score_impl(stage::seq_view q, stage::seq_view s,
                              const align_options& opt) {
  return with_kind(opt.kind, [&](auto kc) {
    constexpr align_kind K = decltype(kc)::value;
    return with_gap(opt, [&](auto gap) {
      return with_scoring(opt, [&](const auto& scoring) {
        return rolling_score<K>(q, s, gap, scoring);
      });
    });
  });
}

alignment_result hirschberg_global_impl(stage::seq_view q, stage::seq_view s,
                                        const align_options& opt) {
  return with_gap(opt, [&](auto gap) {
    return with_scoring(opt, [&](const auto& scoring) {
      return stamped(tiled_hirschberg_align<kLanes>(q, s, gap, scoring,
                                                    make_tiled_config(opt)));
    });
  });
}

alignment_result full_align_impl(stage::seq_view q, stage::seq_view s,
                                 const align_options& opt) {
  return with_kind(opt.kind, [&](auto kc) {
    constexpr align_kind K = decltype(kc)::value;
    return with_gap(opt, [&](auto gap) {
      return with_scoring(opt, [&](const auto& scoring) {
        using Gap = std::decay_t<decltype(gap)>;
        using Scoring = std::decay_t<decltype(scoring)>;
        full_engine<K, Gap, Scoring> feng(gap, scoring);
        return stamped(feng.align(q, s, true));
      });
    });
  });
}

alignment_result locate_impl(stage::seq_view q, stage::seq_view s,
                             const align_options& opt) {
  return with_gap(opt, [&](auto gap) {
    return with_scoring(opt, [&](const auto& scoring) -> alignment_result {
      auto galign = [&](stage::seq_view subq, stage::seq_view subs) {
        return tiled_hirschberg_align<kLanes>(subq, subs, gap, scoring,
                                              make_tiled_config(opt));
      };
      switch (opt.kind) {
        case align_kind::local:
          return stamped(
              locate_align<align_kind::local>(q, s, gap, scoring, galign));
        case align_kind::semiglobal:
          return stamped(locate_align<align_kind::semiglobal>(q, s, gap,
                                                              scoring,
                                                              galign));
        default:
          throw invalid_argument_error(
              "locate handles local/semiglobal only");
      }
    });
  });
}

alignment_result banded_align_impl(stage::seq_view q, stage::seq_view s,
                                   band b, const align_options& opt) {
  return with_gap(opt, [&](auto gap) {
    return with_scoring(opt, [&](const auto& scoring) {
      return stamped(
          banded_global(q, s, gap, scoring, b, opt.want_alignment));
    });
  });
}

std::vector<score_result> batch_scores_impl(std::span<const seq_pair> pairs,
                                            const align_options& opt) {
  std::vector<tiled::pair_view> pv;
  pv.reserve(pairs.size());
  for (const auto& p : pairs) pv.push_back({p.q, p.s});

  return with_kind(opt.kind, [&](auto kc) -> std::vector<score_result> {
    constexpr align_kind K = decltype(kc)::value;
    return with_gap(opt, [&](auto gap) -> std::vector<score_result> {
      return with_scoring(
          opt, [&](const auto& scoring) -> std::vector<score_result> {
            using Gap = std::decay_t<decltype(gap)>;
            using Scoring = std::decay_t<decltype(scoring)>;
            tiled::batch_engine<K, Gap, Scoring, kLanes> eng(
                gap, scoring,
                tiled::batch_config{resolve_threads(opt.threads)});
            return eng.score_results(pv);
          });
    });
  });
}

std::vector<alignment_result> batch_align_impl(std::span<const seq_pair> pairs,
                                               const align_options& opt) {
  std::vector<tiled::pair_view> pv;
  pv.reserve(pairs.size());
  for (const auto& p : pairs) pv.push_back({p.q, p.s});

  return with_kind(opt.kind, [&](auto kc) -> std::vector<alignment_result> {
    constexpr align_kind K = decltype(kc)::value;
    return with_gap(opt, [&](auto gap) -> std::vector<alignment_result> {
      return with_scoring(
          opt, [&](const auto& scoring) -> std::vector<alignment_result> {
            using Gap = std::decay_t<decltype(gap)>;
            using Scoring = std::decay_t<decltype(scoring)>;
            tiled::batch_engine<K, Gap, Scoring, kLanes> eng(
                gap, scoring,
                tiled::batch_config{resolve_threads(opt.threads)});
            auto out = eng.align_all(pv);
            for (auto& r : out) r.variant = ANYSEQ_TARGET_NAME;
            return out;
          });
    });
  });
}

/// The variant's function table — the single artifact that crosses the
/// namespace boundary (referenced by `anyseq::engine::ops_x*()` in the
/// enclosing TU).
[[nodiscard]] const ::anyseq::engine::ops& variant_ops() {
  static const ::anyseq::engine::ops table{kLanes,
                                           ANYSEQ_TARGET_IS_NATIVE,
                                           ANYSEQ_TARGET_NAME,
                                           &tiled_score_impl,
                                           &small_score_impl,
                                           &hirschberg_global_impl,
                                           &full_align_impl,
                                           &locate_impl,
                                           &banded_align_impl,
                                           &batch_scores_impl,
                                           &batch_align_impl};
  return table;
}

}  // namespace engine
}  // namespace ANYSEQ_TARGET_NS
}  // namespace anyseq

#endif  // per-target include guard
