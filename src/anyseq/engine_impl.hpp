#pragma once
/// \file engine_impl.hpp
/// Implementation of one lane-width engine variant.  Included ONLY by the
/// three variant TUs (src/simd/engines_{scalar,avx2,avx512}.cpp); never by
/// baseline code.
///
/// Everything here lives in an anonymous namespace on purpose: each
/// variant TU gets private, internal-linkage copies of the dispatch
/// helpers, so the entry points themselves cannot collide.  The
/// lane-tagged templates they instantiate (tiled_engine<..., Lanes> etc.)
/// are unique *within the library* because no two variant TUs use the
/// same lane count; test/bench TUs that instantiate the same
/// specializations baseline-compiled still share COMDATs with the
/// ISA-flagged copies — see docs/DESIGN.md §5 for why link order keeps
/// that safe.

#include "anyseq/engine_table.hpp"
#include "parallel/thread_pool.hpp"
#include "tiled/batch_engine.hpp"
#include "tiled/tiled_engine.hpp"
#include "tiled/tiled_hirschberg.hpp"

namespace anyseq::engine {
namespace {

template <class F>
decltype(auto) with_kind(align_kind k, F&& f) {
  switch (k) {
    case align_kind::global:
      return f(std::integral_constant<align_kind, align_kind::global>{});
    case align_kind::local:
      return f(std::integral_constant<align_kind, align_kind::local>{});
    case align_kind::semiglobal:
      return f(std::integral_constant<align_kind, align_kind::semiglobal>{});
    case align_kind::extension:
      return f(std::integral_constant<align_kind, align_kind::extension>{});
  }
  throw invalid_argument_error("unknown alignment kind");
}

template <class F>
decltype(auto) with_gap(const align_options& opt, F&& f) {
  if (opt.gap_open == 0) return f(linear_gap{opt.gap_extend});
  return f(affine_gap{opt.gap_open, opt.gap_extend});
}

template <class F>
decltype(auto) with_scoring(const align_options& opt, F&& f) {
  if (opt.matrix.has_value()) return f(*opt.matrix);
  return f(simple_scoring{opt.match, opt.mismatch});
}

int resolve_threads(int threads) {
  return threads > 0 ? threads : parallel::hardware_threads();
}

tiled::tiled_config make_tiled_config(const align_options& opt) {
  return {opt.tile, opt.tile, resolve_threads(opt.threads),
          opt.dynamic_schedule};
}

template <int Lanes>
score_result tiled_score_impl(stage::seq_view q, stage::seq_view s,
                              const align_options& opt) {
  return with_kind(opt.kind, [&](auto kc) {
    constexpr align_kind K = decltype(kc)::value;
    return with_gap(opt, [&](auto gap) {
      return with_scoring(opt, [&](const auto& scoring) {
        using Gap = std::decay_t<decltype(gap)>;
        using Scoring = std::decay_t<decltype(scoring)>;
        tiled::tiled_engine<K, Gap, Scoring, Lanes> eng(
            gap, scoring, make_tiled_config(opt));
        return eng.score(q, s);
      });
    });
  });
}

template <int Lanes>
alignment_result hirschberg_global_impl(stage::seq_view q, stage::seq_view s,
                                        const align_options& opt) {
  return with_gap(opt, [&](auto gap) {
    return with_scoring(opt, [&](const auto& scoring) {
      return tiled::tiled_hirschberg_align<Lanes>(q, s, gap, scoring,
                                                  make_tiled_config(opt));
    });
  });
}

template <int Lanes>
std::vector<score_result> batch_scores_impl(std::span<const seq_pair> pairs,
                                            const align_options& opt) {
  std::vector<tiled::pair_view> pv;
  pv.reserve(pairs.size());
  for (const auto& p : pairs) pv.push_back({p.q, p.s});

  return with_kind(opt.kind, [&](auto kc) -> std::vector<score_result> {
    constexpr align_kind K = decltype(kc)::value;
    return with_gap(opt, [&](auto gap) -> std::vector<score_result> {
      return with_scoring(
          opt, [&](const auto& scoring) -> std::vector<score_result> {
            using Gap = std::decay_t<decltype(gap)>;
            using Scoring = std::decay_t<decltype(scoring)>;
            tiled::batch_engine<K, Gap, Scoring, Lanes> eng(
                gap, scoring,
                tiled::batch_config{resolve_threads(opt.threads)});
            const auto scores = eng.scores(pv);
            std::vector<score_result> out(pv.size());
            for (std::size_t i = 0; i < pv.size(); ++i) {
              out[i].score = scores[i];
              out[i].cells = static_cast<std::uint64_t>(pv[i].q.size()) *
                             static_cast<std::uint64_t>(pv[i].s.size());
            }
            return out;
          });
    });
  });
}

template <int Lanes>
const ops& make_ops(const char* name, bool native) {
  static const ops table{Lanes,
                         native,
                         name,
                         &tiled_score_impl<Lanes>,
                         &hirschberg_global_impl<Lanes>,
                         &batch_scores_impl<Lanes>};
  return table;
}

}  // namespace
}  // namespace anyseq::engine
