#pragma once
/// \file anyseq.hpp
/// AnySeq-CPP public API.
///
/// The template engines underneath are compile-time specialized per
/// (alignment kind x gap model x scoring x backend) — the C++ analogue of
/// AnyDSL emitting one residual program per parameter set.  This facade
/// holds the *specialization table*: runtime `align_options` select one of
/// the pre-instantiated variants.
///
/// Quickstart:
/// ```
///   anyseq::align_options opt;
///   opt.kind = anyseq::align_kind::global;
///   opt.want_alignment = true;
///   auto r = anyseq::align_strings("ACGTACGT", "ACGTCGT", opt);
///   // r.score, r.q_aligned / r.s_aligned, r.cigar
/// ```

#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/alphabet.hpp"
#include "core/errors.hpp"
#include "core/result.hpp"
#include "core/scoring.hpp"
#include "core/types.hpp"
#include "stage/views.hpp"

namespace anyseq {

/// Execution backend (paper §IV: CPU, CPU-SIMD, GPU, FPGA).
enum class backend : std::uint8_t {
  auto_select,  ///< widest SIMD the binary and CPU support
  scalar,       ///< multithreaded scalar CPU
  simd_avx2,    ///< 16-bit x 16 lanes (AVX2-shaped)
  simd_avx512,  ///< 16-bit x 32 lanes (AVX-512-shaped)
  gpu_sim,      ///< simulated CUDA-like device (DESIGN.md §3)
  fpga_sim,     ///< simulated systolic array (score-only)
};

[[nodiscard]] constexpr const char* to_string(backend b) noexcept {
  switch (b) {
    case backend::auto_select: return "auto";
    case backend::scalar: return "scalar";
    case backend::simd_avx2: return "avx2";
    case backend::simd_avx512: return "avx512";
    case backend::gpu_sim: return "gpu_sim";
    case backend::fpga_sim: return "fpga_sim";
  }
  return "?";
}

/// All user-controllable alignment parameters.  Every combination maps to
/// a dedicated compile-time specialization.
struct align_options {
  align_kind kind = align_kind::global;
  bool want_alignment = false;  ///< false = score only (linear space)

  // Scoring: simple match/mismatch by default; set `matrix` to use a
  // substitution table (overrides match/mismatch).
  score_t match = 2;
  score_t mismatch = -1;
  std::optional<dna_matrix_scoring> matrix;

  // Gap model: affine when gap_open != 0 (a gap of length k scores
  // gap_open + k*gap_extend), linear otherwise (k * gap_extend).
  score_t gap_open = 0;
  score_t gap_extend = -1;

  backend exec = backend::auto_select;
  int threads = 0;          ///< 0 = hardware concurrency
  index_t tile = 512;       ///< tile extent for the wavefront engines
  bool dynamic_schedule = true;  ///< false = static wavefront (baseline)

  /// Score precision for score-only routes (ignored with tracebacks,
  /// which always accumulate in int32).  `auto_select` picks the
  /// narrowest provably-safe accumulator from the worst-case score bound
  /// at plan time; forcing int8/int16 runs the checked saturating kernel
  /// with transparent escalation to the int32 rolling engine; forcing
  /// `bitpar` requires a unit-cost option set (global, score-only,
  /// match == 0, linear gaps, mismatch == gap_extend < 0) and is
  /// rejected by validate() otherwise.  Every mode returns results
  /// byte-identical to the int32 path.
  score_precision precision = score_precision::auto_select;

  /// Batch scoring: padding-waste cap (percent, 0..100) for lane-padded
  /// ragged chunks.  A mixed-length group of W consecutive pairs runs
  /// vectorized with each lane padded to the chunk-max shape while the
  /// padded-cell overhead sum(nbar*mbar - n_l*m_l) stays within this
  /// fraction of the padded chunk W*nbar*mbar; 0 restores the strict
  /// uniform-shapes-only dichotomy (mixed-length groups score scalar).
  int pad_waste_cap_pct = 25;

  /// Problems with at most this many cells take the full-matrix path for
  /// traceback; larger ones use divide & conquer in linear space.
  index_t full_matrix_cells = index_t{1} << 22;
};

/// Validate options; throws validation_error (an invalid_argument_error)
/// with a precise message.
void validate(const align_options& opt);

/// One batch job.
struct seq_pair {
  stage::seq_view q, s;
};

namespace engine {
struct ops;  // internal per-variant function table (engine_table.hpp)
}  // namespace engine

/// Reusable alignment handle — the plan/execute split made public.
///
/// A plain `align()` call re-derives its route and allocates its DP
/// buffers every time.  An `aligner` separates the two: *plan* (options
/// validation, backend resolution, route classification, memory
/// footprint) happens once per (options, shape) change, and *execute*
/// runs entirely inside a per-variant workspace arena the handle owns
/// and reuses.  After warm-up — once the arena and the recycled result
/// buffers have grown to the working set — repeated `align_into` calls
/// perform ZERO heap allocations on every CPU route (score, full-matrix
/// traceback, Hirschberg, locate, banded; enforced by
/// tests/core/alloc_steady_state_test.cpp).  The contract covers the
/// serial execution of each route (`threads = 1`); spawning OS worker
/// threads for `threads > 1` inherently allocates per pass — the
/// documented exception (DESIGN.md §6).
///
/// ```
///   anyseq::aligner a(opt);
///   a.reserve(n, m);                   // optional: pre-size the arena
///   anyseq::alignment_result r;
///   for (...) {
///     a.align_into(q, s, r);           // r's buffers are recycled
///     consume(r);
///   }
/// ```
///
/// Thread-safety: an aligner serves one call at a time; use one handle
/// per thread (the one-shot `align()` wrapper does exactly that with a
/// thread-local instance).  Simulator backends (gpu_sim / fpga_sim)
/// execute through their legacy paths and are exempt from the
/// allocation contract.
class aligner {
 public:
  /// Plan for default options.
  aligner();
  /// Plan for `opt`; throws like `align` (invalid_argument_error /
  /// unsupported_backend_error).
  explicit aligner(const align_options& opt);
  ~aligner();
  aligner(aligner&& other) noexcept;
  aligner& operator=(aligner&& other) noexcept;
  aligner(const aligner&) = delete;
  aligner& operator=(const aligner&) = delete;

  /// Re-plan for new options (validation + backend resolution).  The
  /// workspace arena is kept — switching options does not drop warm-up.
  void set_options(const align_options& opt);
  [[nodiscard]] const align_options& options() const noexcept {
    return opt_;
  }

  /// Align under the stored options.  Equivalent to `anyseq::align` with
  /// the same options, but reusing this handle's workspace.
  [[nodiscard]] alignment_result align(stage::seq_view q, stage::seq_view s);

  /// Zero-steady-state-allocation form: the result is written into
  /// `out`, whose string capacity is recycled into the traceback
  /// builders.  Feed the same object back to stay allocation-free.
  void align_into(stage::seq_view q, stage::seq_view s,
                  alignment_result& out);

  /// Batch forms (see `anyseq::align_batch` for semantics).  The `_into`
  /// form recycles `out`'s element buffers batch after batch.
  [[nodiscard]] std::vector<alignment_result> align_batch(
      std::span<const seq_pair> pairs);
  void align_batch_into(std::span<const seq_pair> pairs,
                        std::vector<alignment_result>& out);

  /// Path accounting for the most recent batch call on this handle:
  /// how many pairs ran on narrow SIMD lanes (uniform and lane-padded
  /// ragged chunks), scalar, bit-parallel, or were escalated.  Zeroed at
  /// the start of every `align_batch`/`align_batch_into`; stays zero for
  /// traceback batches and simulator backends (their per-pair routes do
  /// not pass through the batch score engine).
  [[nodiscard]] batch_stats last_batch_stats() const noexcept {
    return last_batch_stats_;
  }

  /// Banded forms (see `anyseq::align_banded` for semantics).
  [[nodiscard]] alignment_result align_banded(stage::seq_view q,
                                              stage::seq_view s, band b);
  void align_banded_into(stage::seq_view q, stage::seq_view s, band b,
                         alignment_result& out);

  /// What the plan decided for an (n x m) problem under the stored
  /// options: the dispatched variant, the execution route, and the exact
  /// arena footprint the route carves.
  struct plan_info {
    const char* variant;  ///< "scalar" / "avx2" / "avx512" / simulator
    const char* route;    ///< "tiled_score", "small_score", "full_matrix",
                          ///< "hirschberg", "locate", "bitpar_score",
                          ///< "precision_score", or "unsupported"
    std::size_t workspace_bytes;  ///< exact arena footprint of the route
    /// Score accumulator the route commits to for this shape: `bitpar`
    /// on the bit-parallel route, the forced narrow type on the checked
    /// precision route, `int32` everywhere else (including tracebacks).
    score_precision precision;
  };
  [[nodiscard]] plan_info plan(index_t n, index_t m) const;

  /// Pre-size the arena for (n x m) problems so even the FIRST score
  /// pass of that shape allocates nothing (traceback routes additionally
  /// need one warm-up call for the string buffers).
  void reserve(index_t n, index_t m);

  /// Bytes currently held by the workspace arena(s).
  [[nodiscard]] std::size_t workspace_bytes() const noexcept;

  /// Release all workspace memory (footprint control between bursts);
  /// the next call re-warms.
  void shrink() noexcept;

 private:
  void destroy_workspaces() noexcept;
  [[nodiscard]] void* workspace_handle();  ///< lazily created, per variant
  void align_cpu_into(stage::seq_view q, stage::seq_view s,
                      alignment_result& out);

  align_options opt_{};
  backend exec_ = backend::scalar;          ///< resolved backend
  const engine::ops* ops_ = nullptr;        ///< CPU variants only
  void* ws_[3] = {nullptr, nullptr, nullptr};  ///< one arena per variant
  std::vector<score_result> batch_score_scratch_;
  batch_stats last_batch_stats_{};  ///< filled by the batch score route
};

/// Align two encoded sequences (codes from dna_encode / bio::sequence).
/// One-shot convenience over a thread-local `aligner`, so repeated calls
/// from the same thread reuse a warm workspace.
[[nodiscard]] alignment_result align(stage::seq_view q, stage::seq_view s,
                                     const align_options& opt = {});

/// Align two character strings (encoded internally).
[[nodiscard]] alignment_result align_strings(std::string_view q,
                                             std::string_view s,
                                             const align_options& opt = {});

/// Align many pairs (the NGS-read use case): inter-sequence SIMD across
/// pairs, multithreaded.  Results keep the input order.  Both the score
/// and the traceback path dispatch through the selected engine variant.
///
/// Degenerate inputs are defined, never UB: an empty `pairs` span
/// returns an empty vector (after option validation — invalid options
/// still throw), and zero-length sequences in any entry are aligned
/// normally (an all-gap alignment against the non-empty side; score 0
/// for local alignment).  Score-only results carry the optimum's end
/// cell in `q_end`/`s_end`, matching a per-pair align() call.
[[nodiscard]] std::vector<alignment_result> align_batch(
    std::span<const seq_pair> pairs, const align_options& opt = {});

/// Banded global alignment restricted to diagonals b.lo <= j - i <= b.hi
/// (resequencing-style workloads).  Requires opt.kind == global and a CPU
/// backend; score-only unless opt.want_alignment.  The band must contain
/// diagonals 0 and m - n or invalid_argument_error is thrown.
[[nodiscard]] alignment_result align_banded(stage::seq_view q,
                                            stage::seq_view s, band b,
                                            const align_options& opt = {});

/// Name of the engine variant the given options dispatch to on this host
/// ("scalar", "avx2", "avx512", "gpu_sim", "fpga_sim"); static storage.
/// With default options this is the auto_select resolution.  Throws
/// unsupported_backend_error for a forced SIMD backend the binary/CPU
/// combination cannot run — exactly like align().
[[nodiscard]] const char* backend_name(const align_options& opt = {});

/// Library version string.
[[nodiscard]] const char* version() noexcept;

}  // namespace anyseq
