#pragma once
/// \file anyseq.hpp
/// AnySeq-CPP public API.
///
/// The template engines underneath are compile-time specialized per
/// (alignment kind x gap model x scoring x backend) — the C++ analogue of
/// AnyDSL emitting one residual program per parameter set.  This facade
/// holds the *specialization table*: runtime `align_options` select one of
/// the pre-instantiated variants.
///
/// Quickstart:
/// ```
///   anyseq::align_options opt;
///   opt.kind = anyseq::align_kind::global;
///   opt.want_alignment = true;
///   auto r = anyseq::align_strings("ACGTACGT", "ACGTCGT", opt);
///   // r.score, r.q_aligned / r.s_aligned, r.cigar
/// ```

#include <optional>
#include <string_view>
#include <vector>

#include "core/alphabet.hpp"
#include "core/errors.hpp"
#include "core/result.hpp"
#include "core/scoring.hpp"
#include "core/types.hpp"
#include "stage/views.hpp"

namespace anyseq {

/// Execution backend (paper §IV: CPU, CPU-SIMD, GPU, FPGA).
enum class backend : std::uint8_t {
  auto_select,  ///< widest SIMD the binary and CPU support
  scalar,       ///< multithreaded scalar CPU
  simd_avx2,    ///< 16-bit x 16 lanes (AVX2-shaped)
  simd_avx512,  ///< 16-bit x 32 lanes (AVX-512-shaped)
  gpu_sim,      ///< simulated CUDA-like device (DESIGN.md §3)
  fpga_sim,     ///< simulated systolic array (score-only)
};

[[nodiscard]] constexpr const char* to_string(backend b) noexcept {
  switch (b) {
    case backend::auto_select: return "auto";
    case backend::scalar: return "scalar";
    case backend::simd_avx2: return "avx2";
    case backend::simd_avx512: return "avx512";
    case backend::gpu_sim: return "gpu_sim";
    case backend::fpga_sim: return "fpga_sim";
  }
  return "?";
}

/// All user-controllable alignment parameters.  Every combination maps to
/// a dedicated compile-time specialization.
struct align_options {
  align_kind kind = align_kind::global;
  bool want_alignment = false;  ///< false = score only (linear space)

  // Scoring: simple match/mismatch by default; set `matrix` to use a
  // substitution table (overrides match/mismatch).
  score_t match = 2;
  score_t mismatch = -1;
  std::optional<dna_matrix_scoring> matrix;

  // Gap model: affine when gap_open != 0 (a gap of length k scores
  // gap_open + k*gap_extend), linear otherwise (k * gap_extend).
  score_t gap_open = 0;
  score_t gap_extend = -1;

  backend exec = backend::auto_select;
  int threads = 0;          ///< 0 = hardware concurrency
  index_t tile = 512;       ///< tile extent for the wavefront engines
  bool dynamic_schedule = true;  ///< false = static wavefront (baseline)

  /// Problems with at most this many cells take the full-matrix path for
  /// traceback; larger ones use divide & conquer in linear space.
  index_t full_matrix_cells = index_t{1} << 22;
};

/// Validate options; throws invalid_argument_error with a precise message.
void validate(const align_options& opt);

/// Align two encoded sequences (codes from dna_encode / bio::sequence).
[[nodiscard]] alignment_result align(stage::seq_view q, stage::seq_view s,
                                     const align_options& opt = {});

/// Align two character strings (encoded internally).
[[nodiscard]] alignment_result align_strings(std::string_view q,
                                             std::string_view s,
                                             const align_options& opt = {});

/// One batch job.
struct seq_pair {
  stage::seq_view q, s;
};

/// Align many pairs (the NGS-read use case): inter-sequence SIMD across
/// pairs, multithreaded.  Results keep the input order.  Both the score
/// and the traceback path dispatch through the selected engine variant.
///
/// Degenerate inputs are defined, never UB: an empty `pairs` span
/// returns an empty vector (after option validation — invalid options
/// still throw), and zero-length sequences in any entry are aligned
/// normally (an all-gap alignment against the non-empty side; score 0
/// for local alignment).  Score-only results carry the optimum's end
/// cell in `q_end`/`s_end`, matching a per-pair align() call.
[[nodiscard]] std::vector<alignment_result> align_batch(
    std::span<const seq_pair> pairs, const align_options& opt = {});

/// Banded global alignment restricted to diagonals b.lo <= j - i <= b.hi
/// (resequencing-style workloads).  Requires opt.kind == global and a CPU
/// backend; score-only unless opt.want_alignment.  The band must contain
/// diagonals 0 and m - n or invalid_argument_error is thrown.
[[nodiscard]] alignment_result align_banded(stage::seq_view q,
                                            stage::seq_view s, band b,
                                            const align_options& opt = {});

/// Name of the engine variant the given options dispatch to on this host
/// ("scalar", "avx2", "avx512", "gpu_sim", "fpga_sim"); static storage.
/// With default options this is the auto_select resolution.  Throws
/// unsupported_backend_error for a forced SIMD backend the binary/CPU
/// combination cannot run — exactly like align().
[[nodiscard]] const char* backend_name(const align_options& opt = {});

/// Library version string.
[[nodiscard]] const char* version() noexcept;

}  // namespace anyseq
