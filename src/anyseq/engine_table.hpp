#pragma once
/// \file engine_table.hpp
/// Internal seam between the public dispatcher (align.cpp) and the
/// per-ISA engine translation units.
///
/// Each lane width the library ships (1, 16, 32) is compiled in its own
/// TU — src/simd/engines_scalar.cpp, engines_avx2.cpp, engines_avx512.cpp
/// — so the build can hand each one the matching -m<isa> flags without
/// contaminating baseline code.  A variant exports exactly one symbol: an
/// `ops` table of plain function pointers covering the lane-dependent
/// entry points.  align.cpp picks a table per call after consulting
/// simd::detect(), so no ISA-flagged code executes on a CPU that cannot
/// run it.

#include <span>
#include <vector>

#include "anyseq/anyseq.hpp"
#include "core/rolling.hpp"

namespace anyseq::engine {

/// Function table of one compiled lane-width variant.  All entries
/// re-dispatch (kind x gap x scoring) from `opt` internally; `opt` is
/// already validated and its `exec`/`threads` fields resolved by the
/// caller's policy — the table entries never consult the CPU again.
struct ops {
  int lanes;         ///< SIMD width this variant was instantiated with
  bool native;       ///< TU compiled with the matching ISA flags
  const char* name;  ///< for diagnostics ("scalar", "avx2", "avx512")

  /// Tiled multi-threaded score pass (any alignment kind).
  score_result (*tiled_score)(stage::seq_view q, stage::seq_view s,
                              const align_options& opt);

  /// Linear-space *global* alignment with traceback (tiled Hirschberg).
  alignment_result (*hirschberg_global)(stage::seq_view q, stage::seq_view s,
                                        const align_options& opt);

  /// Inter-sequence SIMD batch scoring; one score_result per pair, input
  /// order preserved.
  std::vector<score_result> (*batch_scores)(std::span<const seq_pair> pairs,
                                            const align_options& opt);
};

/// The three variants are always present; `native` records whether their
/// TU actually received ISA flags from the build.
[[nodiscard]] const ops& ops_x1();   // engines_scalar.cpp
[[nodiscard]] const ops& ops_x16();  // engines_avx2.cpp
[[nodiscard]] const ops& ops_x32();  // engines_avx512.cpp

}  // namespace anyseq::engine
