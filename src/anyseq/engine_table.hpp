#pragma once
/// \file engine_table.hpp
/// Internal seam between the public dispatcher (align.cpp) and the
/// per-variant engine translation units — the *only* boundary between
/// baseline code and the `anyseq::v_*` engine namespaces.
///
/// Each engine variant the library ships (v_scalar, v_avx2, v_avx512) is
/// the whole lane-dependent engine stack compiled once inside its own
/// namespace by its own translation unit — src/simd/engines_scalar.cpp,
/// engines_avx2.cpp, engines_avx512.cpp — so the build can hand each TU
/// the matching -m<isa> flags without any symbol ever being shared with
/// baseline (or another variant's) code.  A variant exports exactly one
/// thing across that boundary: an `ops` table of plain function pointers
/// covering every lane-dependent entry point.  align.cpp picks a table
/// per call after consulting simd::detect(), so no ISA-flagged code
/// executes on a CPU that cannot run it.
///
/// Plan/execute split: every execute entry takes an opaque workspace
/// handle (`void*`) created by the same variant's `ws_create`.  The
/// workspace is the variant's `anyseq::v_*::workspace` arena — a
/// per-target type that must never be named here, which is exactly why
/// it crosses as `void*`.  The caller (an `anyseq::aligner`) owns the
/// handle and reuses it call after call; after warm-up the execute
/// entries perform zero heap allocations.  Batch entries write into
/// caller-presized spans for the same reason (and so no std::vector
/// method with DP-adjacent loops is ever emitted weak by an ISA TU).
///
/// Everything in the signatures below is a shared baseline type
/// (seq_view, align_options, band, score_result, alignment_result) — no
/// per-target type may appear here.

#include <span>

#include "anyseq/anyseq.hpp"

namespace anyseq::engine {

/// Cells at or below which the serial rolling pass beats the tiled
/// engine for extension scoring — ONE definition shared by the
/// dispatcher's route selection, `aligner::plan`, and every variant's
/// plan_bytes (they must never drift apart: reserve() would otherwise
/// pre-size for a route execute never runs).
inline constexpr index_t kSmallScoreCells = index_t{1} << 16;

/// Default Hirschberg full-DP recursion cutoff (the engines' default).
inline constexpr index_t kHirschbergBaseCells = index_t{1} << 14;

/// The execution route the dispatcher selects for an (n x m) problem.
enum class route_kind : std::uint8_t {
  tiled_score,
  small_score,
  full_matrix,
  hirschberg,
  locate,
  bitpar_score,     ///< Myers bit-parallel scoring (unit-cost option sets)
  precision_score,  ///< forced int8/int16 checked kernel (+ escalation)
  unsupported,  ///< oversized extension traceback: rejected at execute
};

/// The single route classifier (defined out-of-line in align.cpp so the
/// ISA-flagged TUs can call it without emitting weak shared symbols).
/// `opt` must already be validated.
[[nodiscard]] route_kind classify_route(index_t n, index_t m,
                                        const align_options& opt) noexcept;

[[nodiscard]] const char* to_string(route_kind r) noexcept;

/// True if the *option shape* admits the Myers bit-parallel engine: a
/// score-only global alignment under a unit-cost model (match == 0,
/// linear gaps, mismatch == gap_extend < 0, no matrix) with precision
/// auto_select or bitpar.  Shape-only — the per-pair size gate (n, m > 0)
/// stays in classify_route / the batch engine.  Out-of-line in align.cpp
/// for the same weak-symbol reason as classify_route.
[[nodiscard]] bool bitpar_admissible(const align_options& opt) noexcept;

/// Precision hint the batch engine should run under for `opt`: `bitpar`
/// when the option shape admits it, otherwise the (possibly forced)
/// requested precision.  Per-chunk resolution of `auto_select` against
/// the worst-case score bound happens inside the batch engine.
[[nodiscard]] score_precision classify_batch_precision(
    const align_options& opt) noexcept;

/// Accumulator `classify_route` commits to for a single (n x m) pair —
/// what `aligner::plan` reports as plan_info::precision.
[[nodiscard]] score_precision classify_plan_precision(
    index_t n, index_t m, const align_options& opt) noexcept;

/// Function table of one compiled engine variant.  All entries
/// re-dispatch (kind x gap x scoring) from `opt` internally; `opt` is
/// already validated and its `exec`/`threads` fields resolved by the
/// caller's policy — the table entries never consult the CPU again.
/// Entries producing an alignment_result stamp `variant` with `name`
/// from inside the variant namespace.
struct ops {
  int lanes;         ///< SIMD width this variant was instantiated with
  bool native;       ///< TU compiled with the matching ISA flags
  const char* name;  ///< for diagnostics ("scalar", "avx2", "avx512")

  // --- workspace lifecycle (plan) -----------------------------------

  /// Heap-construct this variant's workspace arena.
  void* (*ws_create)();
  /// Destroy a workspace created by this variant's ws_create.
  void (*ws_destroy)(void* ws) noexcept;
  /// Release the arena and pooled builders (footprint control).
  void (*ws_shrink)(void* ws) noexcept;
  /// Bytes the arena currently holds.
  std::size_t (*ws_capacity)(const void* ws) noexcept;
  /// Pre-size the arena so a pass needing up to `bytes` never allocates.
  void (*ws_reserve)(void* ws, std::size_t bytes);
  /// Exact arena footprint of the route `opt` selects for an (n x m)
  /// problem — what `aligner::reserve` feeds into ws_reserve.
  std::size_t (*plan_bytes)(index_t n, index_t m, const align_options& opt);

  // --- execute entries (all carve from `ws`, never allocate after
  //     warm-up; traceback entries recycle `out`'s buffers) -----------

  /// Tiled multi-threaded score pass (any alignment kind).
  score_result (*tiled_score)(stage::seq_view q, stage::seq_view s,
                              const align_options& opt, void* ws);

  /// Serial rolling-row score pass for small inputs (spawning tile
  /// workers costs more than it saves below ~2^16 cells).
  score_result (*small_score)(stage::seq_view q, stage::seq_view s,
                              const align_options& opt, void* ws);

  /// Myers bit-parallel score pass (unit-cost option sets only; ~1
  /// instruction per 64 DP cells).  Falls back to the rolling engine
  /// inside the same workspace pass for alphabets beyond 32 codes.
  score_result (*bitpar_score)(stage::seq_view q, stage::seq_view s,
                               const align_options& opt, void* ws);

  /// Forced-narrow (int8/int16) checked score pass for one pair: runs
  /// the saturating kernel at width 1 with sticky overflow detection and
  /// escalates to the rolling engine when the score window is at risk.
  score_result (*precision_score)(stage::seq_view q, stage::seq_view s,
                                  const align_options& opt, void* ws);

  /// Linear-space *global* alignment with traceback (tiled Hirschberg).
  void (*hirschberg_global)(stage::seq_view q, stage::seq_view s,
                            const align_options& opt, void* ws,
                            alignment_result& out);

  /// Full-matrix alignment with traceback (any kind; quadratic memory —
  /// the caller enforces opt.full_matrix_cells).
  void (*full_align)(stage::seq_view q, stage::seq_view s,
                     const align_options& opt, void* ws,
                     alignment_result& out);

  /// Linear-space local/semiglobal traceback: locate the aligned region,
  /// then reconstruct it with this variant's Hirschberg engine.
  void (*locate)(stage::seq_view q, stage::seq_view s,
                 const align_options& opt, void* ws, alignment_result& out);

  /// Banded global alignment (diagonals lo <= j - i <= hi), score or
  /// traceback per opt.want_alignment.
  void (*banded_align)(stage::seq_view q, stage::seq_view s, band b,
                       const align_options& opt, void* ws,
                       alignment_result& out);

  /// Inter-sequence SIMD batch scoring; one score_result per pair, input
  /// order preserved.  `out` is caller-presized to pairs.size().  When
  /// `stats` is non-null it receives the run's path accounting (simd vs
  /// scalar vs ragged pair counts) — a plain overwrite, not accumulation.
  void (*batch_scores)(std::span<const seq_pair> pairs,
                       const align_options& opt, void* ws,
                       std::span<score_result> out, batch_stats* stats);

  /// Batch alignment with traceback (order preserved): per-pair
  /// full-matrix alignment compiled inside this variant's namespace.
  /// `out` is caller-presized to pairs.size().
  void (*batch_align)(std::span<const seq_pair> pairs,
                      const align_options& opt, void* ws,
                      std::span<alignment_result> out);
};

/// The three variants are always present; `native` records whether their
/// TU actually received ISA flags from the build.
[[nodiscard]] const ops& ops_x1();   // engines_scalar.cpp -> anyseq::v_scalar
[[nodiscard]] const ops& ops_x16();  // engines_avx2.cpp   -> anyseq::v_avx2
[[nodiscard]] const ops& ops_x32();  // engines_avx512.cpp -> anyseq::v_avx512

}  // namespace anyseq::engine
