#pragma once
/// \file engine_table.hpp
/// Internal seam between the public dispatcher (align.cpp) and the
/// per-variant engine translation units — the *only* boundary between
/// baseline code and the `anyseq::v_*` engine namespaces.
///
/// Each engine variant the library ships (v_scalar, v_avx2, v_avx512) is
/// the whole lane-dependent engine stack compiled once inside its own
/// namespace by its own translation unit — src/simd/engines_scalar.cpp,
/// engines_avx2.cpp, engines_avx512.cpp — so the build can hand each TU
/// the matching -m<isa> flags without any symbol ever being shared with
/// baseline (or another variant's) code.  A variant exports exactly one
/// thing across that boundary: an `ops` table of plain function pointers
/// covering every lane-dependent entry point.  align.cpp picks a table
/// per call after consulting simd::detect(), so no ISA-flagged code
/// executes on a CPU that cannot run it.
///
/// Everything in the signatures below is a shared baseline type
/// (seq_view, align_options, band, score_result, alignment_result) — no
/// per-target type may appear here.

#include <span>
#include <vector>

#include "anyseq/anyseq.hpp"

namespace anyseq::engine {

/// Function table of one compiled engine variant.  All entries
/// re-dispatch (kind x gap x scoring) from `opt` internally; `opt` is
/// already validated and its `exec`/`threads` fields resolved by the
/// caller's policy — the table entries never consult the CPU again.
/// Entries producing an alignment_result stamp `variant` with `name`
/// from inside the variant namespace.
struct ops {
  int lanes;         ///< SIMD width this variant was instantiated with
  bool native;       ///< TU compiled with the matching ISA flags
  const char* name;  ///< for diagnostics ("scalar", "avx2", "avx512")

  /// Tiled multi-threaded score pass (any alignment kind).
  score_result (*tiled_score)(stage::seq_view q, stage::seq_view s,
                              const align_options& opt);

  /// Serial rolling-row score pass for small inputs (spawning tile
  /// workers costs more than it saves below ~2^16 cells).
  score_result (*small_score)(stage::seq_view q, stage::seq_view s,
                              const align_options& opt);

  /// Linear-space *global* alignment with traceback (tiled Hirschberg).
  alignment_result (*hirschberg_global)(stage::seq_view q, stage::seq_view s,
                                        const align_options& opt);

  /// Full-matrix alignment with traceback (any kind; quadratic memory —
  /// the caller enforces opt.full_matrix_cells).
  alignment_result (*full_align)(stage::seq_view q, stage::seq_view s,
                                 const align_options& opt);

  /// Linear-space local/semiglobal traceback: locate the aligned region,
  /// then reconstruct it with this variant's Hirschberg engine.
  alignment_result (*locate)(stage::seq_view q, stage::seq_view s,
                             const align_options& opt);

  /// Banded global alignment (diagonals lo <= j - i <= hi), score or
  /// traceback per opt.want_alignment.
  alignment_result (*banded_align)(stage::seq_view q, stage::seq_view s,
                                   band b, const align_options& opt);

  /// Inter-sequence SIMD batch scoring; one score_result per pair, input
  /// order preserved.
  std::vector<score_result> (*batch_scores)(std::span<const seq_pair> pairs,
                                            const align_options& opt);

  /// Batch alignment with traceback (order preserved): per-pair
  /// full-matrix alignment on the thread pool, compiled inside this
  /// variant's namespace.
  std::vector<alignment_result> (*batch_align)(std::span<const seq_pair> pairs,
                                               const align_options& opt);
};

/// The three variants are always present; `native` records whether their
/// TU actually received ISA flags from the build.
[[nodiscard]] const ops& ops_x1();   // engines_scalar.cpp -> anyseq::v_scalar
[[nodiscard]] const ops& ops_x16();  // engines_avx2.cpp   -> anyseq::v_avx2
[[nodiscard]] const ops& ops_x32();  // engines_avx512.cpp -> anyseq::v_avx512

}  // namespace anyseq::engine
