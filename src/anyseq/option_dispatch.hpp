#pragma once
/// \file option_dispatch.hpp
/// The runtime-option -> compile-time-policy dispatch steps shared by the
/// baseline dispatcher (align.cpp, for the simulator backends) and every
/// per-variant engine clone (engine_impl.hpp).
///
/// Safe to share across baseline and ISA-flagged TUs: each helper is a
/// function template whose only instantiations take TU-local lambda
/// types, so no two translation units can ever emit the same symbol —
/// and inside a variant TU the lambda's enclosing `anyseq::v_*` scope
/// tags the instantiation's name, which the symbol audit checks.

#include <type_traits>

#include "anyseq/anyseq.hpp"
#include "core/gap.hpp"

namespace anyseq {

/// Lift the runtime alignment kind into a compile-time constant.
template <class F>
decltype(auto) with_kind(align_kind k, F&& f) {
  switch (k) {
    case align_kind::global:
      return f(std::integral_constant<align_kind, align_kind::global>{});
    case align_kind::local:
      return f(std::integral_constant<align_kind, align_kind::local>{});
    case align_kind::semiglobal:
      return f(std::integral_constant<align_kind, align_kind::semiglobal>{});
    case align_kind::extension:
      return f(std::integral_constant<align_kind, align_kind::extension>{});
  }
  throw invalid_argument_error("unknown alignment kind");
}

/// Select the gap policy object (linear when gap_open == 0).
template <class F>
decltype(auto) with_gap(const align_options& opt, F&& f) {
  if (opt.gap_open == 0) return f(linear_gap{opt.gap_extend});
  return f(affine_gap{opt.gap_open, opt.gap_extend});
}

/// Select the scoring policy object (matrix overrides match/mismatch).
template <class F>
decltype(auto) with_scoring(const align_options& opt, F&& f) {
  if (opt.matrix.has_value()) return f(*opt.matrix);
  return f(simple_scoring{opt.match, opt.mismatch});
}

}  // namespace anyseq
