/// \file align.cpp
/// The specialization table: maps runtime align_options onto the
/// compile-time engine instantiations.
///
/// Lane-dependent (SIMD) engine code is NOT instantiated here: this TU is
/// compiled with baseline flags and reaches the 16/32-lane variants only
/// through the function tables of engine_table.hpp, whose implementations
/// live in per-ISA translation units.  simd::detect() gates every entry,
/// so a binary with native AVX2/AVX-512 kernels never executes them on a
/// CPU that lacks the ISA.

#include "anyseq/anyseq.hpp"

#include "anyseq/engine_table.hpp"
#include "core/full_engine.hpp"
#include "core/locate.hpp"
#include "core/rolling.hpp"
#include "fpgasim/systolic.hpp"
#include "gpusim/gpu_engine.hpp"
#include "parallel/thread_pool.hpp"
#include "simd/detect.hpp"
#include "tiled/batch_engine.hpp"

namespace anyseq {
namespace {

// ---------------------------------------------------------------------
// Compile-time dispatch helpers (the "partial evaluation table").
// ---------------------------------------------------------------------

template <class F>
decltype(auto) with_kind(align_kind k, F&& f) {
  switch (k) {
    case align_kind::global:
      return f(std::integral_constant<align_kind, align_kind::global>{});
    case align_kind::local:
      return f(std::integral_constant<align_kind, align_kind::local>{});
    case align_kind::semiglobal:
      return f(std::integral_constant<align_kind, align_kind::semiglobal>{});
    case align_kind::extension:
      return f(std::integral_constant<align_kind, align_kind::extension>{});
  }
  throw invalid_argument_error("unknown alignment kind");
}

template <class F>
decltype(auto) with_gap(const align_options& opt, F&& f) {
  if (opt.gap_open == 0) return f(linear_gap{opt.gap_extend});
  return f(affine_gap{opt.gap_open, opt.gap_extend});
}

template <class F>
decltype(auto) with_scoring(const align_options& opt, F&& f) {
  if (opt.matrix.has_value()) return f(*opt.matrix);
  return f(simple_scoring{opt.match, opt.mismatch});
}

/// Resolve auto_select against the running CPU and reject forced SIMD
/// backends the binary/CPU combination cannot run (the dispatch contract
/// tested by tests/simd/dispatch_test.cpp).
backend resolve_backend(backend b) {
  const auto f = simd::detect();
  if (b == backend::auto_select) {
    switch (simd::widest_lanes(f)) {
      case 32: return backend::simd_avx512;
      case 16: return backend::simd_avx2;
      default: return backend::scalar;
    }
  }
  if (b == backend::simd_avx2 && !simd::lanes_runnable(16, f))
    throw unsupported_backend_error(
        "backend simd_avx2 was forced, but this binary's AVX2 kernels "
        "cannot run on this CPU (" + simd::describe(f) + ")");
  if (b == backend::simd_avx512 && !simd::lanes_runnable(32, f))
    throw unsupported_backend_error(
        "backend simd_avx512 was forced, but this binary's AVX-512 kernels "
        "cannot run on this CPU (" + simd::describe(f) + ")");
  return b;
}

int resolve_threads(int threads) {
  return threads > 0 ? threads : parallel::hardware_threads();
}

/// The lane-variant function table of a resolved CPU backend.
const engine::ops& ops_for(backend b) {
  switch (b) {
    case backend::scalar: return engine::ops_x1();
    case backend::simd_avx2: return engine::ops_x16();
    case backend::simd_avx512: return engine::ops_x32();
    default: break;
  }
  throw invalid_argument_error("ops_for: not a CPU backend");
}

// ---------------------------------------------------------------------
// Per-backend implementations.
// ---------------------------------------------------------------------

template <align_kind K, class Gap, class Scoring>
alignment_result cpu_align(stage::seq_view q, stage::seq_view s,
                           const Gap& gap, const Scoring& scoring,
                           const align_options& opt,
                           const engine::ops& eng) {
  const index_t cells64 = q.size() * s.size();

  if (!opt.want_alignment) {
    if constexpr (K == align_kind::extension) {
      // The tiled engine supports extension, but small inputs are faster
      // on the rolling pass anyway.
      if (cells64 <= (index_t{1} << 16)) {
        auto r = rolling_score<K>(q, s, gap, scoring);
        alignment_result out;
        out.score = r.score;
        out.q_end = r.end_i;
        out.s_end = r.end_j;
        out.cells = r.cells;
        return out;
      }
    }
    const auto r = eng.tiled_score(q, s, opt);
    alignment_result out;
    out.score = r.score;
    out.q_end = r.end_i;
    out.s_end = r.end_j;
    out.cells = r.cells;
    return out;
  }

  // Traceback requested.
  if (cells64 <= opt.full_matrix_cells) {
    full_engine<K, Gap, Scoring> feng(gap, scoring);
    return feng.align(q, s, true);
  }
  auto galign = [&](stage::seq_view subq, stage::seq_view subs) {
    return eng.hirschberg_global(subq, subs, opt);
  };
  if constexpr (K == align_kind::global) {
    return galign(q, s);
  } else if constexpr (K == align_kind::local ||
                       K == align_kind::semiglobal) {
    return locate_align<K>(q, s, gap, scoring, galign);
  } else {
    // Extension traceback: anchored global-style walk from the tracked
    // optimum — full matrix is required; enforced by validate().
    throw invalid_argument_error(
        "extension traceback beyond full_matrix_cells is not supported");
  }
}

template <align_kind K, class Gap, class Scoring>
alignment_result gpu_align(stage::seq_view q, stage::seq_view s,
                           const Gap& gap, const Scoring& scoring,
                           const align_options& opt) {
  static gpusim::device dev;  // process-wide simulated device
  gpusim::gpu_engine<K, Gap, Scoring> eng(dev, gap, scoring);
  if (!opt.want_alignment) {
    const auto r = eng.score(q, s);
    alignment_result out;
    out.score = r.score;
    out.q_end = r.end_i;
    out.s_end = r.end_j;
    out.cells = r.cells;
    return out;
  }
  if (q.size() * s.size() <= opt.full_matrix_cells) {
    full_engine<K, Gap, Scoring> feng(gap, scoring);
    return feng.align(q, s, true);
  }
  if constexpr (K == align_kind::global) {
    return eng.align(q, s);
  } else if constexpr (K == align_kind::local ||
                       K == align_kind::semiglobal) {
    auto galign = [&](stage::seq_view subq, stage::seq_view subs) {
      gpusim::gpu_engine<align_kind::global, Gap, Scoring> geng(dev, gap,
                                                                scoring);
      return geng.align(subq, subs);
    };
    return locate_align<K>(q, s, gap, scoring, galign);
  } else {
    throw invalid_argument_error(
        "extension traceback beyond full_matrix_cells is not supported");
  }
}

template <align_kind K, class Gap, class Scoring>
alignment_result fpga_align(stage::seq_view q, stage::seq_view s,
                            const Gap& gap, const Scoring& scoring,
                            const align_options& opt) {
  if (opt.want_alignment)
    throw invalid_argument_error(
        "the fpga_sim backend is score-only (paper §V: the FPGA "
        "implementation supports score-only alignment)");
  const auto r = fpgasim::systolic_score<K>(q, s, gap, scoring);
  alignment_result out;
  out.score = r.score;
  out.cells = r.cells;
  out.q_end = q.size();
  out.s_end = s.size();
  return out;
}

/// Batch traceback: per-pair full-matrix alignment on the thread pool.
/// Lane-independent (traceback never vectorizes across pairs), so it runs
/// here in the baseline TU for every CPU backend; only the Lanes=1
/// engine's ctor and align_all are instantiated (members instantiate
/// lazily), so no SIMD machinery enters this TU.
template <align_kind K, class Gap, class Scoring>
std::vector<alignment_result> batch_align_full(
    std::span<const seq_pair> pairs, const Gap& gap, const Scoring& scoring,
    const align_options& opt) {
  std::vector<tiled::pair_view> pv;
  pv.reserve(pairs.size());
  for (const auto& p : pairs) pv.push_back({p.q, p.s});
  tiled::batch_engine<K, Gap, Scoring, 1> eng(
      gap, scoring, tiled::batch_config{resolve_threads(opt.threads)});
  return eng.align_all(pv);
}

}  // namespace

void validate(const align_options& opt) {
  if (opt.gap_extend > 0)
    throw invalid_argument_error("gap_extend must be <= 0 (penalties are "
                                 "added to scores)");
  if (opt.gap_open > 0)
    throw invalid_argument_error("gap_open must be <= 0");
  if (opt.threads < 0)
    throw invalid_argument_error("threads must be >= 0");
  if (opt.tile < 1)
    throw invalid_argument_error("tile must be >= 1");
  if (opt.kind == align_kind::local && !opt.matrix.has_value() &&
      opt.match <= 0)
    throw invalid_argument_error(
        "local alignment needs a positive match score");
  if (opt.full_matrix_cells < 0)
    throw invalid_argument_error("full_matrix_cells must be >= 0");
}

alignment_result align(stage::seq_view q, stage::seq_view s,
                       const align_options& opt) {
  validate(opt);
  const backend exec = resolve_backend(opt.exec);
  return with_kind(opt.kind, [&](auto kc) {
    constexpr align_kind K = decltype(kc)::value;
    return with_gap(opt, [&](auto gap) {
      return with_scoring(opt, [&](const auto& scoring) {
        switch (exec) {
          case backend::scalar:
          case backend::simd_avx2:
          case backend::simd_avx512:
            return cpu_align<K>(q, s, gap, scoring, opt, ops_for(exec));
          case backend::gpu_sim:
            return gpu_align<K>(q, s, gap, scoring, opt);
          case backend::fpga_sim:
            return fpga_align<K>(q, s, gap, scoring, opt);
          case backend::auto_select:
            break;
        }
        throw invalid_argument_error("unresolved backend");
      });
    });
  });
}

alignment_result align_strings(std::string_view q, std::string_view s,
                               const align_options& opt) {
  const auto qc = dna_encode_all(q);
  const auto sc = dna_encode_all(s);
  return align(stage::seq_view(qc.data(), static_cast<index_t>(qc.size())),
               stage::seq_view(sc.data(), static_cast<index_t>(sc.size())),
               opt);
}

std::vector<alignment_result> align_batch(std::span<const seq_pair> pairs,
                                          const align_options& opt) {
  validate(opt);
  const backend exec = resolve_backend(opt.exec);

  // CPU backends, score-only: inter-sequence SIMD through the lane
  // variant's batch kernel.
  if ((exec == backend::scalar || exec == backend::simd_avx2 ||
       exec == backend::simd_avx512) &&
      !opt.want_alignment) {
    const auto scores = ops_for(exec).batch_scores(pairs, opt);
    std::vector<alignment_result> out(scores.size());
    for (std::size_t i = 0; i < scores.size(); ++i) {
      out[i].score = scores[i].score;
      out[i].cells = scores[i].cells;
    }
    return out;
  }

  return with_kind(opt.kind, [&](auto kc) -> std::vector<alignment_result> {
    constexpr align_kind K = decltype(kc)::value;
    return with_gap(opt, [&](auto gap) -> std::vector<alignment_result> {
      return with_scoring(opt, [&](const auto& scoring)
                              -> std::vector<alignment_result> {
        using Gap = std::decay_t<decltype(gap)>;
        using Scoring = std::decay_t<decltype(scoring)>;
        switch (exec) {
          case backend::scalar:
          case backend::simd_avx2:
          case backend::simd_avx512:
            // want_alignment (score-only handled above).
            return batch_align_full<K>(pairs, gap, scoring, opt);
          case backend::gpu_sim: {
            static gpusim::device dev;
            gpusim::gpu_engine<K, Gap, Scoring> eng(dev, gap, scoring);
            std::vector<tiled::pair_view> pv;
            pv.reserve(pairs.size());
            for (const auto& p : pairs) pv.push_back({p.q, p.s});
            return eng.batch(pv, opt.want_alignment);
          }
          case backend::fpga_sim: {
            if (opt.want_alignment)
              throw invalid_argument_error(
                  "the fpga_sim backend is score-only");
            std::vector<alignment_result> out(pairs.size());
            for (std::size_t i = 0; i < pairs.size(); ++i) {
              const auto r = fpgasim::systolic_score<K>(pairs[i].q,
                                                        pairs[i].s, gap,
                                                        scoring);
              out[i].score = r.score;
              out[i].cells = r.cells;
            }
            return out;
          }
          case backend::auto_select:
            break;
        }
        throw invalid_argument_error("unresolved backend");
      });
    });
  });
}

const char* version() noexcept { return "1.0.0"; }

}  // namespace anyseq
