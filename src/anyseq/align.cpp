/// \file align.cpp
/// The specialization table: maps runtime align_options onto the
/// compile-time engine instantiations.

#include "anyseq/anyseq.hpp"

#include "core/full_engine.hpp"
#include "core/hirschberg.hpp"
#include "core/locate.hpp"
#include "core/rolling.hpp"
#include "fpgasim/systolic.hpp"
#include "gpusim/gpu_engine.hpp"
#include "parallel/thread_pool.hpp"
#include "simd/detect.hpp"
#include "tiled/batch_engine.hpp"
#include "tiled/tiled_engine.hpp"
#include "tiled/tiled_hirschberg.hpp"

namespace anyseq {
namespace {

// ---------------------------------------------------------------------
// Compile-time dispatch helpers (the "partial evaluation table").
// ---------------------------------------------------------------------

template <class F>
decltype(auto) with_kind(align_kind k, F&& f) {
  switch (k) {
    case align_kind::global:
      return f(std::integral_constant<align_kind, align_kind::global>{});
    case align_kind::local:
      return f(std::integral_constant<align_kind, align_kind::local>{});
    case align_kind::semiglobal:
      return f(std::integral_constant<align_kind, align_kind::semiglobal>{});
    case align_kind::extension:
      return f(std::integral_constant<align_kind, align_kind::extension>{});
  }
  throw invalid_argument_error("unknown alignment kind");
}

template <class F>
decltype(auto) with_gap(const align_options& opt, F&& f) {
  if (opt.gap_open == 0) return f(linear_gap{opt.gap_extend});
  return f(affine_gap{opt.gap_open, opt.gap_extend});
}

template <class F>
decltype(auto) with_scoring(const align_options& opt, F&& f) {
  if (opt.matrix.has_value()) return f(*opt.matrix);
  return f(simple_scoring{opt.match, opt.mismatch});
}

backend resolve_backend(backend b) {
  if (b != backend::auto_select) return b;
  const auto f = simd::detect();
  if (f.avx512bw && simd::built_with_avx512()) return backend::simd_avx512;
  if (f.avx2) return backend::simd_avx2;
  return backend::scalar;
}

int resolve_threads(int threads) {
  return threads > 0 ? threads : parallel::hardware_threads();
}

// ---------------------------------------------------------------------
// Per-backend implementations.
// ---------------------------------------------------------------------

template <align_kind K, int Lanes, class Gap, class Scoring>
alignment_result cpu_align(stage::seq_view q, stage::seq_view s,
                           const Gap& gap, const Scoring& scoring,
                           const align_options& opt) {
  const tiled::tiled_config cfg{opt.tile, opt.tile, resolve_threads(opt.threads),
                                opt.dynamic_schedule};
  const index_t cells64 = q.size() * s.size();

  if (!opt.want_alignment) {
    if constexpr (K == align_kind::extension) {
      // The tiled engine supports extension, but small inputs are faster
      // on the rolling pass anyway.
      if (cells64 <= (index_t{1} << 16)) {
        auto r = rolling_score<K>(q, s, gap, scoring);
        alignment_result out;
        out.score = r.score;
        out.q_end = r.end_i;
        out.s_end = r.end_j;
        out.cells = r.cells;
        return out;
      }
    }
    tiled::tiled_engine<K, Gap, Scoring, Lanes> eng(gap, scoring, cfg);
    const auto r = eng.score(q, s);
    alignment_result out;
    out.score = r.score;
    out.q_end = r.end_i;
    out.s_end = r.end_j;
    out.cells = r.cells;
    return out;
  }

  // Traceback requested.
  if (cells64 <= opt.full_matrix_cells) {
    full_engine<K, Gap, Scoring> eng(gap, scoring);
    return eng.align(q, s, true);
  }
  auto galign = [&](stage::seq_view subq, stage::seq_view subs) {
    return tiled::tiled_hirschberg_align<Lanes>(subq, subs, gap, scoring,
                                                cfg);
  };
  if constexpr (K == align_kind::global) {
    return galign(q, s);
  } else if constexpr (K == align_kind::local ||
                       K == align_kind::semiglobal) {
    return locate_align<K>(q, s, gap, scoring, galign);
  } else {
    // Extension traceback: anchored global-style walk from the tracked
    // optimum — full matrix is required; enforced by validate().
    throw invalid_argument_error(
        "extension traceback beyond full_matrix_cells is not supported");
  }
}

template <align_kind K, class Gap, class Scoring>
alignment_result gpu_align(stage::seq_view q, stage::seq_view s,
                           const Gap& gap, const Scoring& scoring,
                           const align_options& opt) {
  static gpusim::device dev;  // process-wide simulated device
  gpusim::gpu_engine<K, Gap, Scoring> eng(dev, gap, scoring);
  if (!opt.want_alignment) {
    const auto r = eng.score(q, s);
    alignment_result out;
    out.score = r.score;
    out.q_end = r.end_i;
    out.s_end = r.end_j;
    out.cells = r.cells;
    return out;
  }
  if (q.size() * s.size() <= opt.full_matrix_cells) {
    full_engine<K, Gap, Scoring> feng(gap, scoring);
    return feng.align(q, s, true);
  }
  if constexpr (K == align_kind::global) {
    return eng.align(q, s);
  } else if constexpr (K == align_kind::local ||
                       K == align_kind::semiglobal) {
    auto galign = [&](stage::seq_view subq, stage::seq_view subs) {
      gpusim::gpu_engine<align_kind::global, Gap, Scoring> geng(dev, gap,
                                                                scoring);
      return geng.align(subq, subs);
    };
    return locate_align<K>(q, s, gap, scoring, galign);
  } else {
    throw invalid_argument_error(
        "extension traceback beyond full_matrix_cells is not supported");
  }
}

template <align_kind K, class Gap, class Scoring>
alignment_result fpga_align(stage::seq_view q, stage::seq_view s,
                            const Gap& gap, const Scoring& scoring,
                            const align_options& opt) {
  if (opt.want_alignment)
    throw invalid_argument_error(
        "the fpga_sim backend is score-only (paper §V: the FPGA "
        "implementation supports score-only alignment)");
  const auto r = fpgasim::systolic_score<K>(q, s, gap, scoring);
  alignment_result out;
  out.score = r.score;
  out.cells = r.cells;
  out.q_end = q.size();
  out.s_end = s.size();
  return out;
}

}  // namespace

void validate(const align_options& opt) {
  if (opt.gap_extend > 0)
    throw invalid_argument_error("gap_extend must be <= 0 (penalties are "
                                 "added to scores)");
  if (opt.gap_open > 0)
    throw invalid_argument_error("gap_open must be <= 0");
  if (opt.threads < 0)
    throw invalid_argument_error("threads must be >= 0");
  if (opt.tile < 1)
    throw invalid_argument_error("tile must be >= 1");
  if (opt.kind == align_kind::local && !opt.matrix.has_value() &&
      opt.match <= 0)
    throw invalid_argument_error(
        "local alignment needs a positive match score");
  if (opt.full_matrix_cells < 0)
    throw invalid_argument_error("full_matrix_cells must be >= 0");
}

alignment_result align(stage::seq_view q, stage::seq_view s,
                       const align_options& opt) {
  validate(opt);
  const backend exec = resolve_backend(opt.exec);
  return with_kind(opt.kind, [&](auto kc) {
    constexpr align_kind K = decltype(kc)::value;
    return with_gap(opt, [&](auto gap) {
      return with_scoring(opt, [&](const auto& scoring) {
        switch (exec) {
          case backend::scalar:
            return cpu_align<K, 1>(q, s, gap, scoring, opt);
          case backend::simd_avx2:
            return cpu_align<K, 16>(q, s, gap, scoring, opt);
          case backend::simd_avx512:
            return cpu_align<K, 32>(q, s, gap, scoring, opt);
          case backend::gpu_sim:
            return gpu_align<K>(q, s, gap, scoring, opt);
          case backend::fpga_sim:
            return fpga_align<K>(q, s, gap, scoring, opt);
          case backend::auto_select:
            break;
        }
        throw invalid_argument_error("unresolved backend");
      });
    });
  });
}

alignment_result align_strings(std::string_view q, std::string_view s,
                               const align_options& opt) {
  const auto qc = dna_encode_all(q);
  const auto sc = dna_encode_all(s);
  return align(stage::seq_view(qc.data(), static_cast<index_t>(qc.size())),
               stage::seq_view(sc.data(), static_cast<index_t>(sc.size())),
               opt);
}

std::vector<alignment_result> align_batch(std::span<const seq_pair> pairs,
                                          const align_options& opt) {
  validate(opt);
  const backend exec = resolve_backend(opt.exec);
  std::vector<tiled::pair_view> pv;
  pv.reserve(pairs.size());
  for (const auto& p : pairs) pv.push_back({p.q, p.s});

  return with_kind(opt.kind, [&](auto kc) -> std::vector<alignment_result> {
    constexpr align_kind K = decltype(kc)::value;
    return with_gap(opt, [&](auto gap) -> std::vector<alignment_result> {
      return with_scoring(opt, [&](const auto& scoring)
                              -> std::vector<alignment_result> {
        using Gap = std::decay_t<decltype(gap)>;
        using Scoring = std::decay_t<decltype(scoring)>;
        const tiled::batch_config bcfg{resolve_threads(opt.threads)};

        auto cpu_batch = [&](auto lanes) {
          constexpr int Lanes = decltype(lanes)::value;
          tiled::batch_engine<K, Gap, Scoring, Lanes> eng(gap, scoring,
                                                          bcfg);
          if (opt.want_alignment) return eng.align_all(pv);
          std::vector<alignment_result> out(pv.size());
          auto scores = eng.scores(pv);
          for (std::size_t i = 0; i < pv.size(); ++i) {
            out[i].score = scores[i];
            out[i].cells = static_cast<std::uint64_t>(pv[i].q.size()) *
                           static_cast<std::uint64_t>(pv[i].s.size());
          }
          return out;
        };

        switch (exec) {
          case backend::scalar:
            return cpu_batch(std::integral_constant<int, 1>{});
          case backend::simd_avx2:
            return cpu_batch(std::integral_constant<int, 16>{});
          case backend::simd_avx512:
            return cpu_batch(std::integral_constant<int, 32>{});
          case backend::gpu_sim: {
            static gpusim::device dev;
            gpusim::gpu_engine<K, Gap, Scoring> eng(dev, gap, scoring);
            return eng.batch(pv, opt.want_alignment);
          }
          case backend::fpga_sim: {
            if (opt.want_alignment)
              throw invalid_argument_error(
                  "the fpga_sim backend is score-only");
            std::vector<alignment_result> out(pv.size());
            for (std::size_t i = 0; i < pv.size(); ++i) {
              const auto r =
                  fpgasim::systolic_score<K>(pv[i].q, pv[i].s, gap, scoring);
              out[i].score = r.score;
              out[i].cells = r.cells;
            }
            return out;
          }
          case backend::auto_select:
            break;
        }
        throw invalid_argument_error("unresolved backend");
      });
    });
  });
}

const char* version() noexcept { return "1.0.0"; }

}  // namespace anyseq
