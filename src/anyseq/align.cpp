/// \file align.cpp
/// The specialization table: maps runtime align_options onto the
/// compile-time engine instantiations.
///
/// Lane-dependent (SIMD) engine code is NOT instantiated here: this TU is
/// compiled with baseline flags and reaches the engine variants only
/// through the function tables of engine_table.hpp, whose implementations
/// live in the per-variant namespaces `anyseq::v_*`, each compiled by its
/// own ISA-flagged translation unit.  simd::detect() gates every entry,
/// so a binary with native AVX2/AVX-512 kernels never executes them on a
/// CPU that lacks the ISA.  The simulator backends (gpu_sim, fpga_sim)
/// are baseline code and run here directly.

#include "anyseq/anyseq.hpp"

#include "anyseq/engine_table.hpp"
#include "anyseq/option_dispatch.hpp"
#include "core/full_engine.hpp"
#include "core/locate.hpp"
#include "fpgasim/systolic.hpp"
#include "gpusim/gpu_engine.hpp"
#include "simd/detect.hpp"

namespace anyseq {
namespace {

// The with_kind/with_gap/with_scoring specialization steps live in
// anyseq/option_dispatch.hpp; this TU uses them only for the *simulator*
// backends (the CPU variants re-dispatch inside their own namespace; see
// engine_impl.hpp).

/// Resolve auto_select against the running CPU and reject forced SIMD
/// backends the binary/CPU combination cannot run (the dispatch contract
/// tested by tests/simd/dispatch_test.cpp).
backend resolve_backend(backend b) {
  const auto f = simd::detect();
  if (b == backend::auto_select) {
    switch (simd::widest_lanes(f)) {
      case 32: return backend::simd_avx512;
      case 16: return backend::simd_avx2;
      default: return backend::scalar;
    }
  }
  if (b == backend::simd_avx2 && !simd::lanes_runnable(16, f))
    throw unsupported_backend_error(
        "backend simd_avx2 was forced, but this binary's AVX2 kernels "
        "cannot run on this CPU (" + simd::describe(f) + ")");
  if (b == backend::simd_avx512 && !simd::lanes_runnable(32, f))
    throw unsupported_backend_error(
        "backend simd_avx512 was forced, but this binary's AVX-512 kernels "
        "cannot run on this CPU (" + simd::describe(f) + ")");
  return b;
}

[[nodiscard]] bool is_cpu(backend b) noexcept {
  return b == backend::scalar || b == backend::simd_avx2 ||
         b == backend::simd_avx512;
}

/// The function table of a resolved CPU backend.
const engine::ops& ops_for(backend b) {
  switch (b) {
    case backend::scalar: return engine::ops_x1();
    case backend::simd_avx2: return engine::ops_x16();
    case backend::simd_avx512: return engine::ops_x32();
    default: break;
  }
  throw invalid_argument_error("ops_for: not a CPU backend");
}

// ---------------------------------------------------------------------
// Per-backend implementations.
// ---------------------------------------------------------------------

/// CPU path: pure table dispatch — every DP pass runs inside the selected
/// variant's `anyseq::v_*` namespace.
alignment_result cpu_align(stage::seq_view q, stage::seq_view s,
                           const align_options& opt,
                           const engine::ops& eng) {
  const index_t cells64 = q.size() * s.size();

  if (!opt.want_alignment) {
    // Small extension problems are faster on the serial rolling pass than
    // on the tiled engine (worker spawn overhead dominates).
    const bool small_extension =
        opt.kind == align_kind::extension && cells64 <= (index_t{1} << 16);
    const score_result r = small_extension ? eng.small_score(q, s, opt)
                                           : eng.tiled_score(q, s, opt);
    alignment_result out;
    out.score = r.score;
    out.q_end = r.end_i;
    out.s_end = r.end_j;
    out.cells = r.cells;
    out.variant = eng.name;
    return out;
  }

  // Traceback requested.
  if (cells64 <= opt.full_matrix_cells) return eng.full_align(q, s, opt);
  switch (opt.kind) {
    case align_kind::global:
      return eng.hirschberg_global(q, s, opt);
    case align_kind::local:
    case align_kind::semiglobal:
      return eng.locate(q, s, opt);
    default:
      // Extension traceback: anchored global-style walk from the tracked
      // optimum — full matrix is required; enforced by validate().
      throw invalid_argument_error(
          "extension traceback beyond full_matrix_cells is not supported");
  }
}

template <align_kind K, class Gap, class Scoring>
alignment_result gpu_align(stage::seq_view q, stage::seq_view s,
                           const Gap& gap, const Scoring& scoring,
                           const align_options& opt) {
  static gpusim::device dev;  // process-wide simulated device
  gpusim::gpu_engine<K, Gap, Scoring> eng(dev, gap, scoring);
  alignment_result out;
  out.variant = "gpu_sim";
  if (!opt.want_alignment) {
    const auto r = eng.score(q, s);
    out.score = r.score;
    out.q_end = r.end_i;
    out.s_end = r.end_j;
    out.cells = r.cells;
    return out;
  }
  if (q.size() * s.size() <= opt.full_matrix_cells) {
    full_engine<K, Gap, Scoring> feng(gap, scoring);
    out = feng.align(q, s, true);
    out.variant = "gpu_sim";
    return out;
  }
  if constexpr (K == align_kind::global) {
    out = eng.align(q, s);
    out.variant = "gpu_sim";
    return out;
  } else if constexpr (K == align_kind::local ||
                       K == align_kind::semiglobal) {
    auto galign = [&](stage::seq_view subq, stage::seq_view subs) {
      gpusim::gpu_engine<align_kind::global, Gap, Scoring> geng(dev, gap,
                                                                scoring);
      return geng.align(subq, subs);
    };
    out = locate_align<K>(q, s, gap, scoring, galign);
    out.variant = "gpu_sim";
    return out;
  } else {
    throw invalid_argument_error(
        "extension traceback beyond full_matrix_cells is not supported");
  }
}

template <align_kind K, class Gap, class Scoring>
alignment_result fpga_align(stage::seq_view q, stage::seq_view s,
                            const Gap& gap, const Scoring& scoring,
                            const align_options& opt) {
  if (opt.want_alignment)
    throw invalid_argument_error(
        "the fpga_sim backend is score-only (paper §V: the FPGA "
        "implementation supports score-only alignment)");
  const auto r = fpgasim::systolic_score<K>(q, s, gap, scoring);
  alignment_result out;
  out.score = r.score;
  out.cells = r.cells;
  out.q_end = q.size();
  out.s_end = s.size();
  out.variant = "fpga_sim";
  return out;
}

}  // namespace

void validate(const align_options& opt) {
  if (opt.gap_extend > 0)
    throw invalid_argument_error("gap_extend must be <= 0 (penalties are "
                                 "added to scores)");
  if (opt.gap_open > 0)
    throw invalid_argument_error("gap_open must be <= 0");
  if (opt.threads < 0)
    throw invalid_argument_error("threads must be >= 0");
  if (opt.tile < 1)
    throw invalid_argument_error("tile must be >= 1");
  if (opt.kind == align_kind::local && !opt.matrix.has_value() &&
      opt.match <= 0)
    throw invalid_argument_error(
        "local alignment needs a positive match score");
  if (opt.full_matrix_cells < 0)
    throw invalid_argument_error("full_matrix_cells must be >= 0");
}

alignment_result align(stage::seq_view q, stage::seq_view s,
                       const align_options& opt) {
  validate(opt);
  const backend exec = resolve_backend(opt.exec);
  if (is_cpu(exec)) return cpu_align(q, s, opt, ops_for(exec));
  return with_kind(opt.kind, [&](auto kc) {
    constexpr align_kind K = decltype(kc)::value;
    return with_gap(opt, [&](auto gap) {
      return with_scoring(opt, [&](const auto& scoring) {
        switch (exec) {
          case backend::gpu_sim:
            return gpu_align<K>(q, s, gap, scoring, opt);
          case backend::fpga_sim:
            return fpga_align<K>(q, s, gap, scoring, opt);
          default:
            break;
        }
        throw invalid_argument_error("unresolved backend");
      });
    });
  });
}

alignment_result align_strings(std::string_view q, std::string_view s,
                               const align_options& opt) {
  const auto qc = dna_encode_all(q);
  const auto sc = dna_encode_all(s);
  return align(stage::seq_view(qc.data(), static_cast<index_t>(qc.size())),
               stage::seq_view(sc.data(), static_cast<index_t>(sc.size())),
               opt);
}

alignment_result align_banded(stage::seq_view q, stage::seq_view s, band b,
                              const align_options& opt) {
  validate(opt);
  if (opt.kind != align_kind::global)
    throw invalid_argument_error(
        "align_banded supports global alignment only");
  const backend exec = resolve_backend(opt.exec);
  if (!is_cpu(exec))
    throw invalid_argument_error(
        "align_banded is implemented by the CPU engine variants only");
  return ops_for(exec).banded_align(q, s, b, opt);
}

std::vector<alignment_result> align_batch(std::span<const seq_pair> pairs,
                                          const align_options& opt) {
  validate(opt);
  const backend exec = resolve_backend(opt.exec);
  // Empty batch: defined no-op (options are still validated above).
  if (pairs.empty()) return {};

  if (is_cpu(exec)) {
    const engine::ops& eng = ops_for(exec);
    if (!opt.want_alignment) {
      // Inter-sequence SIMD through the variant's batch kernel.  The
      // full score_result is kept so every entry carries the optimum's
      // end cell, exactly like a per-pair align() call.
      const auto scores = eng.batch_scores(pairs, opt);
      std::vector<alignment_result> out(scores.size());
      for (std::size_t i = 0; i < scores.size(); ++i) {
        out[i].score = scores[i].score;
        out[i].q_end = scores[i].end_i;
        out[i].s_end = scores[i].end_j;
        out[i].cells = scores[i].cells;
        out[i].variant = eng.name;
      }
      return out;
    }
    // Traceback: per-pair full-matrix alignment, compiled inside the
    // selected variant's namespace (v_avx2/v_avx512 on capable hosts).
    return eng.batch_align(pairs, opt);
  }

  return with_kind(opt.kind, [&](auto kc) -> std::vector<alignment_result> {
    constexpr align_kind K = decltype(kc)::value;
    return with_gap(opt, [&](auto gap) -> std::vector<alignment_result> {
      return with_scoring(opt, [&](const auto& scoring)
                              -> std::vector<alignment_result> {
        using Gap = std::decay_t<decltype(gap)>;
        using Scoring = std::decay_t<decltype(scoring)>;
        switch (exec) {
          case backend::gpu_sim: {
            static gpusim::device dev;
            gpusim::gpu_engine<K, Gap, Scoring> eng(dev, gap, scoring);
            std::vector<tiled::pair_view> pv;
            pv.reserve(pairs.size());
            for (const auto& p : pairs) pv.push_back({p.q, p.s});
            auto out = eng.batch(pv, opt.want_alignment);
            for (auto& r : out) r.variant = "gpu_sim";
            return out;
          }
          case backend::fpga_sim: {
            if (opt.want_alignment)
              throw invalid_argument_error(
                  "the fpga_sim backend is score-only");
            std::vector<alignment_result> out(pairs.size());
            for (std::size_t i = 0; i < pairs.size(); ++i) {
              const auto r = fpgasim::systolic_score<K>(pairs[i].q,
                                                        pairs[i].s, gap,
                                                        scoring);
              out[i].score = r.score;
              out[i].cells = r.cells;
              out[i].variant = "fpga_sim";
            }
            return out;
          }
          default:
            break;
        }
        throw invalid_argument_error("unresolved backend");
      });
    });
  });
}

const char* backend_name(const align_options& opt) {
  const backend exec = resolve_backend(opt.exec);
  switch (exec) {
    case backend::gpu_sim: return "gpu_sim";
    case backend::fpga_sim: return "fpga_sim";
    default: return ops_for(exec).name;
  }
}

const char* version() noexcept { return "1.0.0"; }

}  // namespace anyseq
