/// \file align.cpp
/// The specialization table: maps runtime align_options onto the
/// compile-time engine instantiations — and the public `aligner` handle
/// that makes the plan/execute split reusable.
///
/// Lane-dependent (SIMD) engine code is NOT instantiated here: this TU is
/// compiled with baseline flags and reaches the engine variants only
/// through the function tables of engine_table.hpp, whose implementations
/// live in the per-variant namespaces `anyseq::v_*`, each compiled by its
/// own ISA-flagged translation unit.  simd::detect() gates every entry,
/// so a binary with native AVX2/AVX-512 kernels never executes them on a
/// CPU that lacks the ISA.  The simulator backends (gpu_sim, fpga_sim)
/// are baseline code and run here directly.
///
/// The one-shot `align()` family is a thin wrapper over a thread-local
/// `aligner`, so even fire-and-forget callers reuse a warm workspace;
/// the aligner itself owns one opaque workspace handle per dispatched
/// variant and routes every call through the ops table.

#include "anyseq/anyseq.hpp"

#include "anyseq/engine_table.hpp"
#include "anyseq/option_dispatch.hpp"
#include "core/full_engine.hpp"
#include "core/locate.hpp"
#include "fpgasim/systolic.hpp"
#include "gpusim/gpu_engine.hpp"
#include "simd/detect.hpp"
#include "tiled/batch_engine.hpp"

namespace anyseq {
namespace {

// The with_kind/with_gap/with_scoring specialization steps live in
// anyseq/option_dispatch.hpp; this TU uses them only for the *simulator*
// backends (the CPU variants re-dispatch inside their own namespace; see
// engine_impl.hpp).

/// Resolve auto_select against the running CPU and reject forced SIMD
/// backends the binary/CPU combination cannot run (the dispatch contract
/// tested by tests/simd/dispatch_test.cpp).
backend resolve_backend(backend b) {
  const auto f = simd::detect();
  if (b == backend::auto_select) {
    switch (simd::widest_lanes(f)) {
      case 32: return backend::simd_avx512;
      case 16: return backend::simd_avx2;
      default: return backend::scalar;
    }
  }
  if (b == backend::simd_avx2 && !simd::lanes_runnable(16, f))
    throw unsupported_backend_error(
        "backend simd_avx2 was forced, but this binary's AVX2 kernels "
        "cannot run on this CPU (" + simd::describe(f) + ")");
  if (b == backend::simd_avx512 && !simd::lanes_runnable(32, f))
    throw unsupported_backend_error(
        "backend simd_avx512 was forced, but this binary's AVX-512 kernels "
        "cannot run on this CPU (" + simd::describe(f) + ")");
  return b;
}

[[nodiscard]] bool is_cpu(backend b) noexcept {
  return b == backend::scalar || b == backend::simd_avx2 ||
         b == backend::simd_avx512;
}

/// The function table of a resolved CPU backend.
const engine::ops& ops_for(backend b) {
  switch (b) {
    case backend::scalar: return engine::ops_x1();
    case backend::simd_avx2: return engine::ops_x16();
    case backend::simd_avx512: return engine::ops_x32();
    default: break;
  }
  throw invalid_argument_error("ops_for: not a CPU backend");
}

/// Workspace slot of a resolved CPU backend inside an aligner.
[[nodiscard]] int ws_slot(backend b) noexcept {
  switch (b) {
    case backend::simd_avx2: return 1;
    case backend::simd_avx512: return 2;
    default: return 0;
  }
}

/// The variant table owning workspace slot `i` (every slot is created
/// and destroyed through its own variant's lifecycle entries).
const engine::ops& ops_of_slot(int i) {
  switch (i) {
    case 1: return engine::ops_x16();
    case 2: return engine::ops_x32();
    default: return engine::ops_x1();
  }
}

// ---------------------------------------------------------------------
// Simulator backends (baseline code; exempt from the zero-allocation
// contract).
// ---------------------------------------------------------------------

template <align_kind K, class Gap, class Scoring>
alignment_result gpu_align(stage::seq_view q, stage::seq_view s,
                           const Gap& gap, const Scoring& scoring,
                           const align_options& opt) {
  static gpusim::device dev;  // process-wide simulated device
  gpusim::gpu_engine<K, Gap, Scoring> eng(dev, gap, scoring);
  alignment_result out;
  out.variant = "gpu_sim";
  if (!opt.want_alignment) {
    const auto r = eng.score(q, s);
    out.score = r.score;
    out.q_end = r.end_i;
    out.s_end = r.end_j;
    out.cells = r.cells;
    return out;
  }
  if (q.size() * s.size() <= opt.full_matrix_cells) {
    full_engine<K, Gap, Scoring> feng(gap, scoring);
    out = feng.align(q, s, true);
    out.variant = "gpu_sim";
    return out;
  }
  if constexpr (K == align_kind::global) {
    out = eng.align(q, s);
    out.variant = "gpu_sim";
    return out;
  } else if constexpr (K == align_kind::local ||
                       K == align_kind::semiglobal) {
    auto galign = [&](stage::seq_view subq, stage::seq_view subs) {
      gpusim::gpu_engine<align_kind::global, Gap, Scoring> geng(dev, gap,
                                                                scoring);
      return geng.align(subq, subs);
    };
    out = locate_align<K>(q, s, gap, scoring, galign);
    out.variant = "gpu_sim";
    return out;
  } else {
    throw invalid_argument_error(
        "extension traceback beyond full_matrix_cells is not supported");
  }
}

template <align_kind K, class Gap, class Scoring>
alignment_result fpga_align(stage::seq_view q, stage::seq_view s,
                            const Gap& gap, const Scoring& scoring,
                            const align_options& opt) {
  if (opt.want_alignment)
    throw invalid_argument_error(
        "the fpga_sim backend is score-only (paper §V: the FPGA "
        "implementation supports score-only alignment)");
  const auto r = fpgasim::systolic_score<K>(q, s, gap, scoring);
  alignment_result out;
  out.score = r.score;
  out.cells = r.cells;
  out.q_end = q.size();
  out.s_end = s.size();
  out.variant = "fpga_sim";
  return out;
}

alignment_result simulator_align(stage::seq_view q, stage::seq_view s,
                                 const align_options& opt, backend exec) {
  return with_kind(opt.kind, [&](auto kc) {
    constexpr align_kind K = decltype(kc)::value;
    return with_gap(opt, [&](auto gap) {
      return with_scoring(opt, [&](const auto& scoring) {
        switch (exec) {
          case backend::gpu_sim:
            return gpu_align<K>(q, s, gap, scoring, opt);
          case backend::fpga_sim:
            return fpga_align<K>(q, s, gap, scoring, opt);
          default:
            break;
        }
        throw invalid_argument_error("unresolved backend");
      });
    });
  });
}

std::vector<alignment_result> simulator_align_batch(
    std::span<const seq_pair> pairs, const align_options& opt,
    backend exec) {
  return with_kind(opt.kind, [&](auto kc) -> std::vector<alignment_result> {
    constexpr align_kind K = decltype(kc)::value;
    return with_gap(opt, [&](auto gap) -> std::vector<alignment_result> {
      return with_scoring(opt, [&](const auto& scoring)
                              -> std::vector<alignment_result> {
        using Gap = std::decay_t<decltype(gap)>;
        using Scoring = std::decay_t<decltype(scoring)>;
        switch (exec) {
          case backend::gpu_sim: {
            static gpusim::device dev;
            gpusim::gpu_engine<K, Gap, Scoring> eng(dev, gap, scoring);
            std::vector<tiled::pair_view> pv;
            pv.reserve(pairs.size());
            for (const auto& p : pairs) pv.push_back({p.q, p.s});
            auto out = eng.batch(pv, opt.want_alignment);
            for (auto& r : out) r.variant = "gpu_sim";
            return out;
          }
          case backend::fpga_sim: {
            if (opt.want_alignment)
              throw invalid_argument_error(
                  "the fpga_sim backend is score-only");
            std::vector<alignment_result> out(pairs.size());
            for (std::size_t i = 0; i < pairs.size(); ++i) {
              const auto r = fpgasim::systolic_score<K>(pairs[i].q,
                                                        pairs[i].s, gap,
                                                        scoring);
              out[i].score = r.score;
              out[i].cells = r.cells;
              out[i].variant = "fpga_sim";
            }
            return out;
          }
          default:
            break;
        }
        throw invalid_argument_error("unresolved backend");
      });
    });
  });
}

/// The thread-local handle behind the one-shot `align()` family.  Each
/// calling thread keeps one warm workspace set for its lifetime; the
/// memory is bounded by the largest problem the thread has aligned
/// (release it with an explicit `aligner` + `shrink()` if that matters).
aligner& thread_aligner() {
  static thread_local aligner a;
  return a;
}

}  // namespace

namespace engine {

route_kind classify_route(index_t n, index_t m,
                          const align_options& opt) noexcept {
  const index_t cells = n * m;
  if (!opt.want_alignment) {
    // Unit-cost option sets take the bit-parallel lane regardless of
    // size (it beats every DP kernel on cells/instruction).
    if (n > 0 && m > 0 && bitpar_admissible(opt))
      return route_kind::bitpar_score;
    // Forced narrow precision runs the checked kernel + escalation;
    // forced int32 is by definition the rolling engine.
    if (n > 0 && m > 0 &&
        (opt.precision == score_precision::int8 ||
         opt.precision == score_precision::int16))
      return route_kind::precision_score;
    if (opt.precision == score_precision::int32)
      return route_kind::small_score;
    // Small extension problems are faster on the serial rolling pass
    // than on the tiled engine (worker spawn overhead dominates).
    return (opt.kind == align_kind::extension && cells <= kSmallScoreCells)
               ? route_kind::small_score
               : route_kind::tiled_score;
  }
  if (cells <= opt.full_matrix_cells) return route_kind::full_matrix;
  switch (opt.kind) {
    case align_kind::global: return route_kind::hirschberg;
    case align_kind::local:
    case align_kind::semiglobal: return route_kind::locate;
    default: return route_kind::unsupported;
  }
}

const char* to_string(route_kind r) noexcept {
  switch (r) {
    case route_kind::tiled_score: return "tiled_score";
    case route_kind::small_score: return "small_score";
    case route_kind::full_matrix: return "full_matrix";
    case route_kind::hirschberg: return "hirschberg";
    case route_kind::locate: return "locate";
    case route_kind::bitpar_score: return "bitpar_score";
    case route_kind::precision_score: return "precision_score";
    case route_kind::unsupported: return "unsupported";
  }
  return "?";
}

bool bitpar_admissible(const align_options& opt) noexcept {
  const bool unit_cost = !opt.matrix.has_value() && opt.match == 0 &&
                         opt.gap_open == 0 && opt.gap_extend < 0 &&
                         opt.mismatch == opt.gap_extend;
  const bool shape_ok =
      opt.kind == align_kind::global && !opt.want_alignment;
  const bool precision_ok =
      opt.precision == score_precision::auto_select ||
      opt.precision == score_precision::bitpar;
  return unit_cost && shape_ok && precision_ok;
}

score_precision classify_batch_precision(const align_options& opt) noexcept {
  if (bitpar_admissible(opt)) return score_precision::bitpar;
  return opt.precision;
}

score_precision classify_plan_precision(index_t n, index_t m,
                                        const align_options& opt) noexcept {
  switch (classify_route(n, m, opt)) {
    case route_kind::bitpar_score: return score_precision::bitpar;
    case route_kind::precision_score: return opt.precision;
    default: return score_precision::int32;  // committed accumulator
  }
}

}  // namespace engine

void validate(const align_options& opt) {
  if (opt.gap_extend > 0)
    throw validation_error("gap_extend must be <= 0 (penalties are "
                           "added to scores)");
  if (opt.gap_open > 0)
    throw validation_error("gap_open must be <= 0");
  if (opt.threads < 0)
    throw validation_error("threads must be >= 0");
  if (opt.tile < 1)
    throw validation_error("tile must be >= 1");
  if (opt.kind == align_kind::local && !opt.matrix.has_value() &&
      opt.match <= 0)
    throw validation_error(
        "local alignment needs a positive match score");
  if (opt.full_matrix_cells < 0)
    throw validation_error("full_matrix_cells must be >= 0");
  if (opt.pad_waste_cap_pct < 0 || opt.pad_waste_cap_pct > 100)
    throw validation_error("pad_waste_cap_pct must be in [0, 100]");
  if (opt.precision == score_precision::bitpar) {
    if (opt.want_alignment)
      throw validation_error(
          "precision bitpar is score-only (set want_alignment = false)");
    if (opt.kind != align_kind::global || opt.matrix.has_value() ||
        opt.match != 0 || opt.gap_open != 0 || opt.gap_extend >= 0 ||
        opt.mismatch != opt.gap_extend)
      throw validation_error(
          "precision bitpar requires a unit-cost option set: global, "
          "match == 0, no matrix, linear gaps, mismatch == gap_extend < 0");
  }
}

// ---------------------------------------------------------------------
// aligner: the reusable plan/execute handle.
// ---------------------------------------------------------------------

aligner::aligner() : aligner(align_options{}) {}

aligner::aligner(const align_options& opt) { set_options(opt); }

aligner::~aligner() { destroy_workspaces(); }

aligner::aligner(aligner&& other) noexcept
    : opt_(other.opt_),
      exec_(other.exec_),
      ops_(other.ops_),
      batch_score_scratch_(std::move(other.batch_score_scratch_)),
      last_batch_stats_(other.last_batch_stats_) {
  for (int i = 0; i < 3; ++i) {
    ws_[i] = other.ws_[i];
    other.ws_[i] = nullptr;
  }
}

aligner& aligner::operator=(aligner&& other) noexcept {
  if (this != &other) {
    destroy_workspaces();
    opt_ = other.opt_;
    exec_ = other.exec_;
    ops_ = other.ops_;
    batch_score_scratch_ = std::move(other.batch_score_scratch_);
    last_batch_stats_ = other.last_batch_stats_;
    for (int i = 0; i < 3; ++i) {
      ws_[i] = other.ws_[i];
      other.ws_[i] = nullptr;
    }
  }
  return *this;
}

void aligner::destroy_workspaces() noexcept {
  for (int i = 0; i < 3; ++i) {
    if (ws_[i] != nullptr) {
      ops_of_slot(i).ws_destroy(ws_[i]);
      ws_[i] = nullptr;
    }
  }
}

void aligner::set_options(const align_options& opt) {
  validate(opt);
  const backend exec = resolve_backend(opt.exec);
  opt_ = opt;
  exec_ = exec;
  ops_ = is_cpu(exec) ? &ops_for(exec) : nullptr;
}

void* aligner::workspace_handle() {
  const int i = ws_slot(exec_);
  if (ws_[i] == nullptr) ws_[i] = ops_->ws_create();
  return ws_[i];
}

void aligner::align_cpu_into(stage::seq_view q, stage::seq_view s,
                             alignment_result& out) {
  const engine::ops& eng = *ops_;
  void* ws = workspace_handle();

  const engine::route_kind rt =
      engine::classify_route(q.size(), s.size(), opt_);
  switch (rt) {
    case engine::route_kind::small_score:
    case engine::route_kind::tiled_score:
    case engine::route_kind::bitpar_score:
    case engine::route_kind::precision_score: {
      score_result r;
      switch (rt) {
        case engine::route_kind::small_score:
          r = eng.small_score(q, s, opt_, ws);
          break;
        case engine::route_kind::bitpar_score:
          r = eng.bitpar_score(q, s, opt_, ws);
          break;
        case engine::route_kind::precision_score:
          r = eng.precision_score(q, s, opt_, ws);
          break;
        default:
          r = eng.tiled_score(q, s, opt_, ws);
          break;
      }
      out.reset();
      out.score = r.score;
      out.q_end = r.end_i;
      out.s_end = r.end_j;
      out.cells = r.cells;
      out.variant = eng.name;
      return;
    }
    case engine::route_kind::full_matrix:
      eng.full_align(q, s, opt_, ws, out);
      return;
    case engine::route_kind::hirschberg:
      eng.hirschberg_global(q, s, opt_, ws, out);
      return;
    case engine::route_kind::locate:
      eng.locate(q, s, opt_, ws, out);
      return;
    case engine::route_kind::unsupported:
    default:
      // Extension traceback: anchored global-style walk from the tracked
      // optimum — full matrix is required; enforced by validate().
      throw invalid_argument_error(
          "extension traceback beyond full_matrix_cells is not supported");
  }
}

void aligner::align_into(stage::seq_view q, stage::seq_view s,
                         alignment_result& out) {
  if (!is_cpu(exec_)) {
    out = simulator_align(q, s, opt_, exec_);
    return;
  }
  align_cpu_into(q, s, out);
}

alignment_result aligner::align(stage::seq_view q, stage::seq_view s) {
  alignment_result out;
  align_into(q, s, out);
  return out;
}

void aligner::align_batch_into(std::span<const seq_pair> pairs,
                               std::vector<alignment_result>& out) {
  last_batch_stats_ = {};
  // Empty batch: defined no-op (options were validated by set_options).
  if (pairs.empty()) {
    out.clear();
    return;
  }
  if (!is_cpu(exec_)) {
    out = simulator_align_batch(pairs, opt_, exec_);
    return;
  }

  const engine::ops& eng = *ops_;
  void* ws = workspace_handle();
  out.resize(pairs.size());  // reused elements keep their capacity
  if (!opt_.want_alignment) {
    // Inter-sequence SIMD through the variant's batch kernel.  The
    // full score_result is kept so every entry carries the optimum's
    // end cell, exactly like a per-pair align() call.
    batch_score_scratch_.resize(pairs.size());
    eng.batch_scores(pairs, opt_, ws,
                     std::span<score_result>(batch_score_scratch_),
                     &last_batch_stats_);
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      out[i].reset();
      out[i].score = batch_score_scratch_[i].score;
      out[i].q_end = batch_score_scratch_[i].end_i;
      out[i].s_end = batch_score_scratch_[i].end_j;
      out[i].cells = batch_score_scratch_[i].cells;
      out[i].variant = eng.name;
    }
    return;
  }
  // Traceback: per-pair full-matrix alignment, compiled inside the
  // selected variant's namespace (v_avx2/v_avx512 on capable hosts).
  eng.batch_align(pairs, opt_, ws, std::span<alignment_result>(out));
}

std::vector<alignment_result> aligner::align_batch(
    std::span<const seq_pair> pairs) {
  std::vector<alignment_result> out;
  align_batch_into(pairs, out);
  return out;
}

void aligner::align_banded_into(stage::seq_view q, stage::seq_view s,
                                band b, alignment_result& out) {
  if (opt_.kind != align_kind::global)
    throw invalid_argument_error(
        "align_banded supports global alignment only");
  if (!is_cpu(exec_))
    throw invalid_argument_error(
        "align_banded is implemented by the CPU engine variants only");
  ops_->banded_align(q, s, b, opt_, workspace_handle(), out);
}

alignment_result aligner::align_banded(stage::seq_view q, stage::seq_view s,
                                       band b) {
  alignment_result out;
  align_banded_into(q, s, b, out);
  return out;
}

aligner::plan_info aligner::plan(index_t n, index_t m) const {
  plan_info p{};
  p.precision = score_precision::int32;  // simulators / traceback routes
  if (!is_cpu(exec_)) {
    p.variant = exec_ == backend::gpu_sim ? "gpu_sim" : "fpga_sim";
    p.route = "simulator";
    p.workspace_bytes = 0;
    return p;
  }
  p.variant = ops_->name;
  p.route = engine::to_string(engine::classify_route(n, m, opt_));
  p.workspace_bytes = ops_->plan_bytes(n, m, opt_);
  p.precision = engine::classify_plan_precision(n, m, opt_);
  return p;
}

void aligner::reserve(index_t n, index_t m) {
  if (!is_cpu(exec_)) return;  // simulators own their storage
  ops_->ws_reserve(workspace_handle(), ops_->plan_bytes(n, m, opt_));
}

std::size_t aligner::workspace_bytes() const noexcept {
  std::size_t total = 0;
  for (int i = 0; i < 3; ++i)
    if (ws_[i] != nullptr) total += ops_of_slot(i).ws_capacity(ws_[i]);
  return total;
}

void aligner::shrink() noexcept {
  for (int i = 0; i < 3; ++i)
    if (ws_[i] != nullptr) ops_of_slot(i).ws_shrink(ws_[i]);
  batch_score_scratch_ = {};
}

// ---------------------------------------------------------------------
// One-shot entry points: thin wrappers over the thread-local aligner.
// ---------------------------------------------------------------------

alignment_result align(stage::seq_view q, stage::seq_view s,
                       const align_options& opt) {
  aligner& a = thread_aligner();
  a.set_options(opt);
  return a.align(q, s);
}

alignment_result align_strings(std::string_view q, std::string_view s,
                               const align_options& opt) {
  const auto qc = dna_encode_all(q);
  const auto sc = dna_encode_all(s);
  return align(stage::seq_view(qc.data(), static_cast<index_t>(qc.size())),
               stage::seq_view(sc.data(), static_cast<index_t>(sc.size())),
               opt);
}

alignment_result align_banded(stage::seq_view q, stage::seq_view s, band b,
                              const align_options& opt) {
  aligner& a = thread_aligner();
  a.set_options(opt);  // validates; align_banded checks kind/backend
  return a.align_banded(q, s, b);
}

std::vector<alignment_result> align_batch(std::span<const seq_pair> pairs,
                                          const align_options& opt) {
  aligner& a = thread_aligner();
  a.set_options(opt);
  return a.align_batch(pairs);
}

const char* backend_name(const align_options& opt) {
  const backend exec = resolve_backend(opt.exec);
  switch (exec) {
    case backend::gpu_sim: return "gpu_sim";
    case backend::fpga_sim: return "fpga_sim";
    default: return ops_for(exec).name;
  }
}

const char* version() noexcept { return "1.0.0"; }

}  // namespace anyseq
