/// \file work_queue.hpp
/// Thread-safe work containers for the dynamic wavefront scheduler
/// (paper §IV-A: "submatrices are scheduled in a thread-safe queue which
/// allows threads to add and extract work items concurrently").
///
/// Two interchangeable implementations — a mutex+condvar MPMC queue (the
/// default) and a lock-free Treiber stack — because the paper attributes
/// part of AnySeq's edge over SeqAn to "the internals of the concurrent
/// queue used for scheduling tiles"; bench_ablation compares them.

/// (per-target header: compiled into `anyseq::ANYSEQ_TARGET_NS::parallel`,
/// once per engine variant — the scheduler's queue/dependency loops run
/// inside the variant TU and must not share COMDATs with baseline code)

#include "simd/set_target.hpp"

#if defined(ANYSEQ_PARALLEL_WORK_QUEUE_HPP_) == defined(ANYSEQ_TARGET_TOGGLE)
#ifdef ANYSEQ_PARALLEL_WORK_QUEUE_HPP_
#undef ANYSEQ_PARALLEL_WORK_QUEUE_HPP_
#else
#define ANYSEQ_PARALLEL_WORK_QUEUE_HPP_
#endif

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "core/macros.hpp"
#include "parallel/thread_pool.hpp"

namespace anyseq {
namespace ANYSEQ_TARGET_NS {
namespace parallel {

/// The thread pool itself is baseline code (one copy, compiled in
/// parallel/thread_pool.cpp); re-export its names into the per-target
/// scope so the cloned scheduler/engine code can keep the `parallel::`
/// spelling for them too.
using ::anyseq::parallel::hardware_threads;
using ::anyseq::parallel::run_workers;
using ::anyseq::parallel::thread_pool;

/// Unbounded multi-producer multi-consumer FIFO.  `pop` blocks until an
/// item arrives or the queue is closed; `try_pop_n` grabs up to n items
/// at once (the SIMD block formation path, paper Fig. 3).
///
/// Storage is a ring, either self-owned (grows to the peak backlog) or
/// bound to caller-carved workspace memory (`bind`): the wavefront
/// scheduler binds a span of one slot per tile — each tile is enqueued
/// exactly once, so a bound queue never grows and a steady-state pass
/// performs zero allocations.  If a bound ring ever would overflow, it
/// transparently migrates to owned storage (defensive; not reachable
/// from the scheduler).
template <class T>
class mpmc_queue {
 public:
  mpmc_queue() = default;

  /// Use `backing` as the ring storage (capacity = backing.size()).
  /// Call before any push; resets the ring.
  void bind(std::span<T> backing) {
    std::lock_guard lock(mutex_);
    ext_ = backing;
    head_ = 0;
    count_ = 0;
  }

  void push(T item) {
    {
      std::lock_guard lock(mutex_);
      push_locked(item);
    }
    cv_.notify_one();
  }

  void push_many(const std::vector<T>& items) {
    push_many(items.data(), items.size());
  }

  void push_many(const T* items, std::size_t n) {
    if (n == 0) return;
    {
      std::lock_guard lock(mutex_);
      for (std::size_t i = 0; i < n; ++i) push_locked(items[i]);
    }
    cv_.notify_all();
  }

  /// Blocking pop; empty optional means the queue was closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || count_ > 0; });
    if (count_ == 0) return std::nullopt;
    return pop_locked();
  }

  /// Pop up to `max_n` items without blocking (may return fewer or none).
  std::size_t try_pop_n(std::vector<T>& out, std::size_t max_n) {
    std::lock_guard lock(mutex_);
    const std::size_t n = std::min(max_n, count_);
    for (std::size_t i = 0; i < n; ++i) out.push_back(pop_locked());
    return n;
  }

  /// Blocking pop of up to `max_n` items: waits for at least one.
  std::size_t pop_n(std::vector<T>& out, std::size_t max_n) {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || count_ > 0; });
    const std::size_t n = std::min(max_n, count_);
    for (std::size_t i = 0; i < n; ++i) out.push_back(pop_locked());
    return n;
  }

  /// Blocking pop of up to `max_n` items into a raw buffer (the
  /// allocation-free scheduler path).
  std::size_t pop_n(T* out, std::size_t max_n) {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || count_ > 0; });
    const std::size_t n = std::min(max_n, count_);
    for (std::size_t i = 0; i < n; ++i) out[i] = pop_locked();
    return n;
  }

  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return count_;
  }

 private:
  [[nodiscard]] std::size_t capacity() const noexcept {
    return ext_.empty() ? own_.size() : ext_.size();
  }
  [[nodiscard]] T& slot(std::size_t i) noexcept {
    return ext_.empty() ? own_[i] : ext_[i];
  }

  void push_locked(const T& x) {
    if (count_ == capacity()) {
      // Grow into owned storage (unbinds any exhausted external ring).
      std::vector<T> bigger(capacity() == 0 ? 16 : 2 * capacity());
      for (std::size_t i = 0; i < count_; ++i)
        bigger[i] = slot((head_ + i) % capacity());
      own_.swap(bigger);
      ext_ = {};
      head_ = 0;
    }
    slot((head_ + count_) % capacity()) = x;
    ++count_;
  }

  T pop_locked() {
    T out = slot(head_);
    head_ = (head_ + 1) % capacity();
    --count_;
    return out;
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<T> own_;  ///< owned ring storage (grows to peak backlog)
  std::span<T> ext_;    ///< bound external ring storage (never grows)
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  bool closed_ = false;
};

/// Lock-free Treiber stack (LIFO) over preallocated nodes.  T must be
/// trivially copyable.  The LIFO order gives better cache locality for
/// wavefront tiles (the most recently enabled tile's inputs are hot).
///
/// ABA safety: the head is a 64-bit (tag, index) word — every successful
/// CAS bumps the tag, so a node that was popped and re-pushed between a
/// competitor's load and CAS no longer compares equal.  Both the ready
/// list and the free list use the same tagged representation.
template <class T>
class treiber_stack {
 public:
  explicit treiber_stack(std::size_t capacity)
      : nodes_(capacity), head_(knull), free_(knull) {
    // Chain all nodes onto the free list.
    for (std::size_t i = 0; i < capacity; ++i)
      nodes_[i].next.store(i + 1 < capacity
                               ? static_cast<std::uint32_t>(i + 1)
                               : knull_index,
                           std::memory_order_relaxed);
    free_.store(make_word(0, capacity == 0 ? knull_index : 0),
                std::memory_order_relaxed);
  }

  /// Returns false when capacity is exhausted (callers size the stack to
  /// the maximum number of simultaneously-ready items).
  bool push(T value) {
    const std::uint32_t idx = pop_from(free_);
    if (idx == knull_index) return false;
    nodes_[idx].value = value;
    push_to(head_, idx);
    return true;
  }

  std::optional<T> try_pop() {
    const std::uint32_t idx = pop_from(head_);
    if (idx == knull_index) return std::nullopt;
    T out = nodes_[idx].value;
    push_to(free_, idx);
    return out;
  }

  [[nodiscard]] bool empty() const {
    return index_of(head_.load(std::memory_order_acquire)) == knull_index;
  }

 private:
  struct node {
    T value{};
    /// Atomic because a competitor may read the `next` of a node that a
    /// concurrent push is relinking: the stale value it sees is always
    /// rejected by the tagged CAS, but the access itself must not be a
    /// (formally UB, TSan-reported) plain-field race.  Relaxed ordering
    /// suffices — the list CASes carry the acquire/release edges.
    std::atomic<std::uint32_t> next{knull_index};
  };

  static constexpr std::uint32_t knull_index = 0xFFFFFFFFu;
  static constexpr std::uint64_t knull = 0xFFFFFFFFull;

  static constexpr std::uint64_t make_word(std::uint32_t tag,
                                           std::uint64_t index) noexcept {
    return (static_cast<std::uint64_t>(tag) << 32) | index;
  }
  static constexpr std::uint32_t index_of(std::uint64_t word) noexcept {
    return static_cast<std::uint32_t>(word);
  }
  static constexpr std::uint32_t tag_of(std::uint64_t word) noexcept {
    return static_cast<std::uint32_t>(word >> 32);
  }

  std::uint32_t pop_from(std::atomic<std::uint64_t>& list) {
    std::uint64_t old = list.load(std::memory_order_acquire);
    for (;;) {
      const std::uint32_t idx = index_of(old);
      if (idx == knull_index) return knull_index;
      const std::uint64_t next = make_word(
          tag_of(old) + 1, nodes_[idx].next.load(std::memory_order_relaxed));
      if (list.compare_exchange_weak(old, next, std::memory_order_acq_rel,
                                     std::memory_order_acquire))
        return idx;
    }
  }

  void push_to(std::atomic<std::uint64_t>& list, std::uint32_t idx) {
    std::uint64_t old = list.load(std::memory_order_relaxed);
    for (;;) {
      nodes_[idx].next.store(index_of(old), std::memory_order_relaxed);
      const std::uint64_t next = make_word(tag_of(old) + 1, idx);
      if (list.compare_exchange_weak(old, next, std::memory_order_acq_rel,
                                     std::memory_order_relaxed))
        return;
    }
  }

  std::vector<node> nodes_;
  std::atomic<std::uint64_t> head_;
  std::atomic<std::uint64_t> free_;
};

}  // namespace parallel
}  // namespace ANYSEQ_TARGET_NS
}  // namespace anyseq

#if ANYSEQ_TARGET == ANYSEQ_TARGET_SCALAR
namespace anyseq::parallel {
using v_scalar::parallel::mpmc_queue;
using v_scalar::parallel::treiber_stack;
}  // namespace anyseq::parallel
#endif  // scalar exports

#endif  // per-target include guard
