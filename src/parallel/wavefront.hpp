/// \file wavefront.hpp
/// Tile-DAG schedulers for the CPU backend (paper §IV-A and Fig. 3).
///
/// The DP matrix of each alignment is cut into a grid of tiles whose
/// dependency structure is "up and left neighbor first" (paper Fig. 2).
/// Two schedulers execute such grids:
///
///  * `dynamic_wavefront` — the paper's contribution: ready tiles live in
///    a thread-safe queue; a worker pops up to `l` tiles at once and
///    relaxes them as one SIMD block (vectorization *across* independent
///    tiles), falling back to scalar singles when fewer are ready.
///    Several alignments' grids can be in flight simultaneously, which is
///    where the dynamic scheme shines (Fig. 3 shows 4 alignments).
///
///  * `static_wavefront` — the baseline used by the paper's preliminary
///    version and by Parasail: tiles are processed anti-diagonal by
///    anti-diagonal with a barrier in between; load imbalance on short
///    diagonals and the per-diagonal barrier are its downfall (Fig. 6).
///
/// Kernels are passed as objects with
///   `int batch_width() const`                        — l (1 = scalar only)
///   `void run_single(tile_coord, int worker)`
///   `void run_block(std::span<const tile_coord>, int worker)` — l tiles
/// mirroring the paper's composition of iteration strategy and tile code.
/// `worker` is the scheduler's worker id (0 <= worker < n_threads) so
/// kernels index into pre-carved per-worker workspace scratch instead of
/// keeping growth-only thread_local buffers.

/// (per-target header: compiled into `anyseq::ANYSEQ_TARGET_NS::parallel`,
/// once per engine variant — the scheduler's queue/dependency loops run
/// inside the variant TU and must not share COMDATs with baseline code)

#include "simd/set_target.hpp"

#if defined(ANYSEQ_PARALLEL_WAVEFRONT_HPP_) == defined(ANYSEQ_TARGET_TOGGLE)
#ifdef ANYSEQ_PARALLEL_WAVEFRONT_HPP_
#undef ANYSEQ_PARALLEL_WAVEFRONT_HPP_
#else
#define ANYSEQ_PARALLEL_WAVEFRONT_HPP_
#endif

#include <atomic>
#include <barrier>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/macros.hpp"
#include "core/types.hpp"
#include "core/workspace.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/work_queue.hpp"

namespace anyseq {
namespace ANYSEQ_TARGET_NS {
namespace parallel {

/// The thread pool itself is baseline code (one copy, compiled in
/// parallel/thread_pool.cpp); re-export its names into the per-target
/// scope so the cloned scheduler/engine code can keep the `parallel::`
/// spelling for them too.
using ::anyseq::parallel::hardware_threads;
using ::anyseq::parallel::run_workers;
using ::anyseq::parallel::thread_pool;

/// One tile of one alignment's grid.
struct tile_coord {
  std::int32_t grid = 0;
  std::int32_t ty = 0;
  std::int32_t tx = 0;
  friend bool operator==(const tile_coord&, const tile_coord&) = default;
};

/// Tile-grid dimensions of one alignment.
struct grid_dims {
  index_t tiles_y = 0;
  index_t tiles_x = 0;
  [[nodiscard]] index_t total() const noexcept { return tiles_y * tiles_x; }
};

/// Atomic dependency counters for a set of grids ("the completion and
/// queuing status of all submatrices is tracked using preallocated arrays
/// of atomic flags", paper §IV-A).
///
/// The counter array lives either in caller-carved workspace memory
/// (the engines' zero-steady-state-allocation path: pass a workspace
/// and the tracker carves) or in an owned buffer (tests, one-shot use).
/// Counters are plain bytes mutated through std::atomic_ref — the
/// initializing writes happen before the workers are spawned.
class dep_tracker {
 public:
  explicit dep_tracker(std::span<const grid_dims> grids,
                       workspace* ws = nullptr) {
    index_t total = 0;
    if (ws != nullptr) {
      offsets_ = ws->make<index_t>(grids.size() + 1);
      grids_ = ws->make<grid_dims>(grids.size());
    } else {
      own_offsets_.resize(grids.size() + 1);
      own_grids_.resize(grids.size());
      offsets_ = own_offsets_;
      grids_ = own_grids_;
    }
    for (std::size_t g = 0; g < grids.size(); ++g) {
      offsets_[g] = total;
      grids_[g] = grids[g];
      total += grids[g].total();
    }
    offsets_[grids.size()] = total;
    if (ws != nullptr) {
      deps_ = ws->make<std::int8_t>(static_cast<std::size_t>(total));
    } else {
      own_deps_.resize(static_cast<std::size_t>(total));
      deps_ = own_deps_;
    }
    for (std::size_t g = 0; g < grids_.size(); ++g)
      for (index_t ty = 0; ty < grids_[g].tiles_y; ++ty)
        for (index_t tx = 0; tx < grids_[g].tiles_x; ++tx)
          deps_[static_cast<std::size_t>(
              index_of({static_cast<std::int32_t>(g),
                        static_cast<std::int32_t>(ty),
                        static_cast<std::int32_t>(tx)}))] =
              static_cast<std::int8_t>((ty > 0) + (tx > 0));
  }

  /// Arena bytes a workspace-backed tracker carves (the plan side).
  [[nodiscard]] static std::size_t plan_bytes(std::size_t n_grids,
                                              index_t total_tiles) noexcept {
    return carve_bytes<index_t>(n_grids + 1) +
           carve_bytes<grid_dims>(n_grids) +
           carve_bytes<std::int8_t>(static_cast<std::size_t>(total_tiles));
  }

  /// Decrement the dependency count of a tile; true when it became ready.
  bool release(tile_coord t) {
    std::atomic_ref<std::int8_t> d(
        deps_[static_cast<std::size_t>(index_of(t))]);
    return d.fetch_sub(1, std::memory_order_acq_rel) == 1;
  }

  /// Successors of a finished tile that became ready, appended to the
  /// raw buffer `ready_out` (capacity: 2 per finished tile).
  void on_finished(tile_coord t, tile_coord* ready_out,
                   std::size_t& ready_count) {
    const auto& g = grids_[static_cast<std::size_t>(t.grid)];
    if (t.ty + 1 < g.tiles_y) {
      tile_coord down{t.grid, t.ty + 1, t.tx};
      if (release(down)) ready_out[ready_count++] = down;
    }
    if (t.tx + 1 < g.tiles_x) {
      tile_coord right{t.grid, t.ty, t.tx + 1};
      if (release(right)) ready_out[ready_count++] = right;
    }
  }

  /// Vector-based convenience (tests).
  void on_finished(tile_coord t, std::vector<tile_coord>& ready_out) {
    tile_coord buf[2];
    std::size_t n = 0;
    on_finished(t, buf, n);
    for (std::size_t i = 0; i < n; ++i) ready_out.push_back(buf[i]);
  }

  [[nodiscard]] index_t total_tiles() const noexcept {
    return offsets_[grids_.size()];
  }
  [[nodiscard]] std::span<const grid_dims> grids() const noexcept {
    return grids_;
  }

 private:
  [[nodiscard]] index_t index_of(tile_coord t) const noexcept {
    const auto& g = grids_[static_cast<std::size_t>(t.grid)];
    return offsets_[static_cast<std::size_t>(t.grid)] + t.ty * g.tiles_x +
           t.tx;
  }

  std::span<grid_dims> grids_;
  std::span<index_t> offsets_;
  std::span<std::int8_t> deps_;
  std::vector<grid_dims> own_grids_;    ///< owning-mode backing
  std::vector<index_t> own_offsets_;
  std::vector<std::int8_t> own_deps_;
};

/// Execution statistics (exposed for tests and the ablation bench).
struct wavefront_stats {
  std::uint64_t blocks = 0;   ///< SIMD blocks of l tiles
  std::uint64_t singles = 0;  ///< scalar tiles
};

/// Dynamic wavefront scheduler.
class dynamic_wavefront {
 public:
  /// Arena bytes one workspace-backed run carves (the plan side).
  [[nodiscard]] static std::size_t plan_bytes(std::size_t n_grids,
                                              index_t total_tiles,
                                              int n_threads, int l) noexcept {
    const auto workers = static_cast<std::size_t>(n_threads < 1 ? 1
                                                                : n_threads);
    const auto lanes = static_cast<std::size_t>(l < 1 ? 1 : l);
    return dep_tracker::plan_bytes(n_grids, total_tiles) +
           carve_bytes<tile_coord>(static_cast<std::size_t>(total_tiles)) +
           workers * (carve_bytes<tile_coord>(lanes) +
                      carve_bytes<tile_coord>(2 * lanes));
  }

  /// Execute the grids' tile DAG.  With `ws` set, the dependency
  /// counters, the ready-queue ring (one slot per tile — each tile is
  /// enqueued exactly once), and the per-worker batch/ready buffers are
  /// all carved from the workspace: a warm pass performs zero heap
  /// allocations.  Without it, the scheduler owns throwaway buffers.
  template <class Kernel>
  static wavefront_stats run(int n_threads,
                             std::span<const grid_dims> grids,
                             Kernel& kernel, workspace* ws = nullptr) {
    dep_tracker deps(grids, ws);
    const index_t total = deps.total_tiles();
    if (total == 0) return {};

    const std::size_t l =
        static_cast<std::size_t>(std::max(1, kernel.batch_width()));
    const auto workers =
        static_cast<std::size_t>(n_threads < 1 ? 1 : n_threads);

    mpmc_queue<tile_coord> queue;
    std::vector<tile_coord> own_scratch;
    std::span<tile_coord> ring, batch_all, ready_all;
    if (ws != nullptr) {
      ring = ws->make<tile_coord>(static_cast<std::size_t>(total));
      batch_all = ws->make<tile_coord>(workers * l);
      ready_all = ws->make<tile_coord>(workers * 2 * l);
    } else {
      own_scratch.resize(static_cast<std::size_t>(total) + workers * 3 * l);
      ring = std::span(own_scratch).subspan(0,
                                            static_cast<std::size_t>(total));
      batch_all = std::span(own_scratch)
                      .subspan(static_cast<std::size_t>(total), workers * l);
      ready_all = std::span(own_scratch)
                      .subspan(static_cast<std::size_t>(total) + workers * l,
                               workers * 2 * l);
    }
    queue.bind(ring);
    for (std::size_t g = 0; g < grids.size(); ++g)
      if (grids[g].total() > 0)
        queue.push({static_cast<std::int32_t>(g), 0, 0});

    std::atomic<index_t> remaining{total};
    std::atomic<std::uint64_t> blocks{0}, singles{0};

    run_workers(n_threads, [&](int tid) {
      tile_coord* batch =
          batch_all.data() + static_cast<std::size_t>(tid) * l;
      tile_coord* ready =
          ready_all.data() + static_cast<std::size_t>(tid) * 2 * l;
      for (;;) {
        const std::size_t got = queue.pop_n(batch, l);
        if (got == 0) return;  // closed and drained

        if (got == l && l > 1) {
          kernel.run_block(std::span<const tile_coord>(batch, got), tid);
          blocks.fetch_add(1, std::memory_order_relaxed);
        } else {
          for (std::size_t k = 0; k < got; ++k)
            kernel.run_single(batch[k], tid);
          singles.fetch_add(got, std::memory_order_relaxed);
        }

        std::size_t n_ready = 0;
        for (std::size_t k = 0; k < got; ++k)
          deps.on_finished(batch[k], ready, n_ready);
        queue.push_many(ready, n_ready);

        if (remaining.fetch_sub(static_cast<index_t>(got)) ==
            static_cast<index_t>(got))
          queue.close();  // last tiles done: wake all waiters
      }
    });
    return {blocks.load(), singles.load()};
  }
};

/// Static per-diagonal wavefront (the Fig. 6 baseline).  Grids run one
/// after another; inside a grid, every anti-diagonal is split across the
/// workers and a barrier separates diagonals.
class static_wavefront {
 public:
  /// Arena bytes one workspace-backed run carves (the plan side): one
  /// worst-case diagonal chunk per worker.
  [[nodiscard]] static std::size_t plan_bytes(
      std::span<const grid_dims> grids, int n_threads) noexcept {
    const auto workers =
        static_cast<std::size_t>(n_threads < 1 ? 1 : n_threads);
    index_t max_diag = 0;
    for (const auto& g : grids)
      max_diag = std::max(max_diag, std::min(g.tiles_y, g.tiles_x));
    return workers *
           carve_bytes<tile_coord>(static_cast<std::size_t>(max_diag));
  }

  /// Execute the grids diagonal-by-diagonal.  With `ws` set, the
  /// per-worker diagonal chunks are carved from the workspace (a warm
  /// pass performs zero heap allocations); without it, the scheduler
  /// owns a throwaway buffer.
  template <class Kernel>
  static wavefront_stats run(int n_threads, std::span<const grid_dims> grids,
                             Kernel& kernel, workspace* ws = nullptr) {
    std::atomic<std::uint64_t> blocks{0}, singles{0};
    const int workers = std::max(1, n_threads);
    const index_t l = std::max(1, kernel.batch_width());

    // Per-worker chunk buffers: a worker's share of one diagonal never
    // exceeds the longest diagonal of any grid.
    index_t max_diag = 0;
    for (const auto& gd : grids)
      max_diag = std::max(max_diag, std::min(gd.tiles_y, gd.tiles_x));
    const auto stride = static_cast<std::size_t>(max_diag);
    std::vector<tile_coord> own_chunks;
    std::span<tile_coord> chunks;
    if (ws != nullptr) {
      chunks = ws->make<tile_coord>(static_cast<std::size_t>(workers) *
                                    stride);
    } else {
      own_chunks.resize(static_cast<std::size_t>(workers) * stride);
      chunks = own_chunks;
    }

    for (std::size_t g = 0; g < grids.size(); ++g) {
      const grid_dims dims = grids[g];
      if (dims.total() == 0) continue;
      // libstdc++'s std::barrier heap-allocates its state; a single
      // worker needs no synchronization at all, so only multi-worker
      // runs (which spawn threads, i.e. allocate anyway) construct one.
      std::optional<std::barrier<>> sync;
      if (workers > 1) sync.emplace(workers);
      run_workers(workers, [&](int tid) {
        tile_coord* chunk =
            chunks.data() + static_cast<std::size_t>(tid) * stride;
        for (index_t d = 0; d < dims.tiles_y + dims.tiles_x - 1; ++d) {
          const index_t ty_lo = d < dims.tiles_x ? 0 : d - dims.tiles_x + 1;
          const index_t ty_hi = d < dims.tiles_y ? d : dims.tiles_y - 1;
          const index_t count = ty_hi - ty_lo + 1;
          // Chunk the diagonal over workers; chunks of l run as blocks.
          const index_t per = (count + workers - 1) / workers;
          const index_t lo = ty_lo + tid * per;
          const index_t hi = std::min(ty_hi + 1, lo + per);
          index_t n_chunk = 0;
          for (index_t ty = lo; ty < hi; ++ty)
            chunk[n_chunk++] = {static_cast<std::int32_t>(g),
                               static_cast<std::int32_t>(ty),
                               static_cast<std::int32_t>(d - ty)};
          index_t i = 0;
          for (; i + l <= n_chunk; i += l) {
            kernel.run_block(
                std::span<const tile_coord>(chunk + i,
                                            static_cast<std::size_t>(l)),
                tid);
            blocks.fetch_add(1, std::memory_order_relaxed);
          }
          for (; i < n_chunk; ++i) {
            kernel.run_single(chunk[i], tid);
            singles.fetch_add(1, std::memory_order_relaxed);
          }
          if (sync.has_value()) sync->arrive_and_wait();
        }
      });
    }
    return {blocks.load(), singles.load()};
  }
};

}  // namespace parallel
}  // namespace ANYSEQ_TARGET_NS
}  // namespace anyseq

#if ANYSEQ_TARGET == ANYSEQ_TARGET_SCALAR
namespace anyseq::parallel {
using v_scalar::parallel::dep_tracker;
using v_scalar::parallel::dynamic_wavefront;
using v_scalar::parallel::grid_dims;
using v_scalar::parallel::static_wavefront;
using v_scalar::parallel::tile_coord;
using v_scalar::parallel::wavefront_stats;
}  // namespace anyseq::parallel
#endif  // scalar exports

#endif  // per-target include guard
