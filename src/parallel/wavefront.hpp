/// \file wavefront.hpp
/// Tile-DAG schedulers for the CPU backend (paper §IV-A and Fig. 3).
///
/// The DP matrix of each alignment is cut into a grid of tiles whose
/// dependency structure is "up and left neighbor first" (paper Fig. 2).
/// Two schedulers execute such grids:
///
///  * `dynamic_wavefront` — the paper's contribution: ready tiles live in
///    a thread-safe queue; a worker pops up to `l` tiles at once and
///    relaxes them as one SIMD block (vectorization *across* independent
///    tiles), falling back to scalar singles when fewer are ready.
///    Several alignments' grids can be in flight simultaneously, which is
///    where the dynamic scheme shines (Fig. 3 shows 4 alignments).
///
///  * `static_wavefront` — the baseline used by the paper's preliminary
///    version and by Parasail: tiles are processed anti-diagonal by
///    anti-diagonal with a barrier in between; load imbalance on short
///    diagonals and the per-diagonal barrier are its downfall (Fig. 6).
///
/// Kernels are passed as objects with
///   `int batch_width() const`                   — l (1 = scalar only)
///   `void run_single(tile_coord)`
///   `void run_block(std::span<const tile_coord>)` — exactly l tiles
/// mirroring the paper's composition of iteration strategy and tile code.

/// (per-target header: compiled into `anyseq::ANYSEQ_TARGET_NS::parallel`,
/// once per engine variant — the scheduler's queue/dependency loops run
/// inside the variant TU and must not share COMDATs with baseline code)

#include "simd/set_target.hpp"

#if defined(ANYSEQ_PARALLEL_WAVEFRONT_HPP_) == defined(ANYSEQ_TARGET_TOGGLE)
#ifdef ANYSEQ_PARALLEL_WAVEFRONT_HPP_
#undef ANYSEQ_PARALLEL_WAVEFRONT_HPP_
#else
#define ANYSEQ_PARALLEL_WAVEFRONT_HPP_
#endif

#include <atomic>
#include <barrier>
#include <memory>
#include <span>
#include <vector>

#include "core/macros.hpp"
#include "core/types.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/work_queue.hpp"

namespace anyseq {
namespace ANYSEQ_TARGET_NS {
namespace parallel {

/// The thread pool itself is baseline code (one copy, compiled in
/// parallel/thread_pool.cpp); re-export its names into the per-target
/// scope so the cloned scheduler/engine code can keep the `parallel::`
/// spelling for them too.
using ::anyseq::parallel::hardware_threads;
using ::anyseq::parallel::run_workers;
using ::anyseq::parallel::thread_pool;

/// One tile of one alignment's grid.
struct tile_coord {
  std::int32_t grid = 0;
  std::int32_t ty = 0;
  std::int32_t tx = 0;
  friend bool operator==(const tile_coord&, const tile_coord&) = default;
};

/// Tile-grid dimensions of one alignment.
struct grid_dims {
  index_t tiles_y = 0;
  index_t tiles_x = 0;
  [[nodiscard]] index_t total() const noexcept { return tiles_y * tiles_x; }
};

/// Atomic dependency counters for a set of grids ("the completion and
/// queuing status of all submatrices is tracked using preallocated arrays
/// of atomic flags", paper §IV-A).
class dep_tracker {
 public:
  explicit dep_tracker(std::span<const grid_dims> grids) {
    offsets_.reserve(grids.size() + 1);
    index_t total = 0;
    for (const auto& g : grids) {
      offsets_.push_back(total);
      total += g.total();
    }
    offsets_.push_back(total);
    grids_.assign(grids.begin(), grids.end());
    deps_ = std::make_unique<std::atomic<std::int8_t>[]>(
        static_cast<std::size_t>(total));
    for (std::size_t g = 0; g < grids_.size(); ++g)
      for (index_t ty = 0; ty < grids_[g].tiles_y; ++ty)
        for (index_t tx = 0; tx < grids_[g].tiles_x; ++tx)
          deps_[static_cast<std::size_t>(index_of(
                    {static_cast<std::int32_t>(g),
                     static_cast<std::int32_t>(ty),
                     static_cast<std::int32_t>(tx)}))]
              .store(static_cast<std::int8_t>((ty > 0) + (tx > 0)),
                     std::memory_order_relaxed);
  }

  /// Decrement the dependency count of a tile; true when it became ready.
  bool release(tile_coord t) {
    auto& d = deps_[static_cast<std::size_t>(index_of(t))];
    return d.fetch_sub(1, std::memory_order_acq_rel) == 1;
  }

  /// Successors of a finished tile that became ready.
  void on_finished(tile_coord t, std::vector<tile_coord>& ready_out) {
    const auto& g = grids_[static_cast<std::size_t>(t.grid)];
    if (t.ty + 1 < g.tiles_y) {
      tile_coord down{t.grid, t.ty + 1, t.tx};
      if (release(down)) ready_out.push_back(down);
    }
    if (t.tx + 1 < g.tiles_x) {
      tile_coord right{t.grid, t.ty, t.tx + 1};
      if (release(right)) ready_out.push_back(right);
    }
  }

  [[nodiscard]] index_t total_tiles() const noexcept {
    return offsets_.back();
  }
  [[nodiscard]] std::span<const grid_dims> grids() const noexcept {
    return grids_;
  }

 private:
  [[nodiscard]] index_t index_of(tile_coord t) const noexcept {
    const auto& g = grids_[static_cast<std::size_t>(t.grid)];
    return offsets_[static_cast<std::size_t>(t.grid)] + t.ty * g.tiles_x +
           t.tx;
  }

  std::vector<grid_dims> grids_;
  std::vector<index_t> offsets_;
  std::unique_ptr<std::atomic<std::int8_t>[]> deps_;
};

/// Execution statistics (exposed for tests and the ablation bench).
struct wavefront_stats {
  std::uint64_t blocks = 0;   ///< SIMD blocks of l tiles
  std::uint64_t singles = 0;  ///< scalar tiles
};

/// Dynamic wavefront scheduler.
class dynamic_wavefront {
 public:
  template <class Kernel>
  static wavefront_stats run(int n_threads,
                             std::span<const grid_dims> grids,
                             Kernel& kernel) {
    dep_tracker deps(grids);
    const index_t total = deps.total_tiles();
    if (total == 0) return {};

    mpmc_queue<tile_coord> queue;
    for (std::size_t g = 0; g < grids.size(); ++g)
      if (grids[g].total() > 0)
        queue.push({static_cast<std::int32_t>(g), 0, 0});

    std::atomic<index_t> remaining{total};
    std::atomic<std::uint64_t> blocks{0}, singles{0};
    const std::size_t l =
        static_cast<std::size_t>(std::max(1, kernel.batch_width()));

    run_workers(n_threads, [&](int /*tid*/) {
      std::vector<tile_coord> batch;
      std::vector<tile_coord> ready;
      batch.reserve(l);
      ready.reserve(2 * l);
      for (;;) {
        batch.clear();
        const std::size_t got = queue.pop_n(batch, l);
        if (got == 0) return;  // closed and drained

        if (got == l && l > 1) {
          kernel.run_block(std::span<const tile_coord>(batch));
          blocks.fetch_add(1, std::memory_order_relaxed);
        } else {
          for (const auto& t : batch) kernel.run_single(t);
          singles.fetch_add(got, std::memory_order_relaxed);
        }

        ready.clear();
        for (const auto& t : batch) deps.on_finished(t, ready);
        queue.push_many(ready);

        if (remaining.fetch_sub(static_cast<index_t>(got)) ==
            static_cast<index_t>(got))
          queue.close();  // last tiles done: wake all waiters
      }
    });
    return {blocks.load(), singles.load()};
  }
};

/// Static per-diagonal wavefront (the Fig. 6 baseline).  Grids run one
/// after another; inside a grid, every anti-diagonal is split across the
/// workers and a barrier separates diagonals.
class static_wavefront {
 public:
  template <class Kernel>
  static wavefront_stats run(int n_threads, std::span<const grid_dims> grids,
                             Kernel& kernel) {
    std::atomic<std::uint64_t> blocks{0}, singles{0};
    const int workers = std::max(1, n_threads);
    const index_t l = std::max(1, kernel.batch_width());

    for (std::size_t g = 0; g < grids.size(); ++g) {
      const grid_dims dims = grids[g];
      if (dims.total() == 0) continue;
      std::barrier<> sync(workers);
      run_workers(workers, [&](int tid) {
        for (index_t d = 0; d < dims.tiles_y + dims.tiles_x - 1; ++d) {
          const index_t ty_lo = d < dims.tiles_x ? 0 : d - dims.tiles_x + 1;
          const index_t ty_hi = d < dims.tiles_y ? d : dims.tiles_y - 1;
          const index_t count = ty_hi - ty_lo + 1;
          // Chunk the diagonal over workers; chunks of l run as blocks.
          const index_t per = (count + workers - 1) / workers;
          const index_t lo = ty_lo + tid * per;
          const index_t hi = std::min(ty_hi + 1, lo + per);
          std::vector<tile_coord> chunk;
          for (index_t ty = lo; ty < hi; ++ty)
            chunk.push_back({static_cast<std::int32_t>(g),
                             static_cast<std::int32_t>(ty),
                             static_cast<std::int32_t>(d - ty)});
          index_t i = 0;
          for (; i + l <= static_cast<index_t>(chunk.size()); i += l) {
            kernel.run_block(std::span<const tile_coord>(chunk).subspan(
                static_cast<std::size_t>(i), static_cast<std::size_t>(l)));
            blocks.fetch_add(1, std::memory_order_relaxed);
          }
          for (; i < static_cast<index_t>(chunk.size()); ++i) {
            kernel.run_single(chunk[static_cast<std::size_t>(i)]);
            singles.fetch_add(1, std::memory_order_relaxed);
          }
          sync.arrive_and_wait();
        }
      });
    }
    return {blocks.load(), singles.load()};
  }
};

}  // namespace parallel
}  // namespace ANYSEQ_TARGET_NS
}  // namespace anyseq

#if ANYSEQ_TARGET == ANYSEQ_TARGET_SCALAR
namespace anyseq::parallel {
using v_scalar::parallel::dep_tracker;
using v_scalar::parallel::dynamic_wavefront;
using v_scalar::parallel::grid_dims;
using v_scalar::parallel::static_wavefront;
using v_scalar::parallel::tile_coord;
using v_scalar::parallel::wavefront_stats;
}  // namespace anyseq::parallel
#endif  // scalar exports

#endif  // per-target include guard
