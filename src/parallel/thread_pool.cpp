#include "parallel/thread_pool.hpp"

namespace anyseq::parallel {

thread_pool::thread_pool(int n_threads) {
  const int n = n_threads <= 0 ? hardware_threads() : n_threads;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

thread_pool::~thread_pool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void thread_pool::run(std::function<void()> job) {
  {
    std::lock_guard lock(mutex_);
    jobs_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void thread_pool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return jobs_.empty() && active_ == 0; });
}

void thread_pool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (stop_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop_front();
      ++active_;
    }
    job();
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (jobs_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

thread_pool& thread_pool::global() {
  static thread_pool pool(hardware_threads());
  return pool;
}

}  // namespace anyseq::parallel
