#include "parallel/thread_pool.hpp"

#include <new>

namespace anyseq::parallel {

thread_pool::thread_pool(int n_threads) {
  const int n = n_threads <= 0 ? hardware_threads() : n_threads;
  ring_.resize(static_cast<std::size_t>(2 * n));  // seed; grows to peak
  workers_.reserve(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

thread_pool::~thread_pool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  // Workers drain the ring before exiting, but if a job was enqueued
  // after stop_ was set there could be boxed stragglers; free them
  // WITHOUT running them (their captured state may already be gone).
  for (std::size_t k = 0; k < count_; ++k) {
    job& j = ring_[(head_ + k) % ring_.size()];
    if (j.boxed != nullptr) j.discard(j);
  }
}

void thread_pool::push_slot_locked(const job& j) {
  if (count_ == ring_.size()) {
    // Grow to the new peak backlog: copy the live window in order.
    std::vector<job> bigger(ring_.empty() ? 16 : 2 * ring_.size());
    for (std::size_t k = 0; k < count_; ++k)
      bigger[k] = ring_[(head_ + k) % ring_.size()];
    ring_.swap(bigger);
    head_ = 0;
  }
  ring_[(head_ + count_) % ring_.size()] = j;
  ++count_;
}

void thread_pool::enqueue_inline(void (*invoke)(job&), const void* src,
                                 std::size_t bytes) {
  job j;
  std::memcpy(j.payload, src, bytes);
  j.invoke = invoke;
  {
    std::lock_guard lock(mutex_);
    push_slot_locked(j);
  }
  cv_.notify_one();
}

void thread_pool::enqueue_boxed(void (*invoke)(job&), void (*discard)(job&),
                                void* boxed) {
  job j;
  j.invoke = invoke;
  j.discard = discard;
  j.boxed = boxed;
  {
    std::lock_guard lock(mutex_);
    push_slot_locked(j);
  }
  cv_.notify_one();
}

void thread_pool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return count_ == 0 && active_ == 0; });
}

std::size_t thread_pool::ring_capacity() const {
  std::lock_guard lock(mutex_);
  return ring_.size();
}

void thread_pool::worker_loop() {
  for (;;) {
    job j;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || count_ > 0; });
      if (stop_ && count_ == 0) return;
      j = ring_[head_];
      head_ = (head_ + 1) % ring_.size();
      --count_;
      ++active_;
    }
    j.invoke(j);
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (count_ == 0 && active_ == 0) idle_cv_.notify_all();
    }
  }
}

thread_pool& thread_pool::global() {
  static thread_pool pool(hardware_threads());
  return pool;
}

}  // namespace anyseq::parallel
