#pragma once
/// \file thread_pool.hpp
/// Minimal thread primitives used by the CPU backends.
///
/// Impala's `parallel(num_threads, a, b, body)` generator maps here onto
/// `thread_pool::parallel_for` (blocking, chunked) and `run_workers`
/// (spawn N persistent workers and join) — the building blocks of the
/// wavefront schedulers.
///
/// Jobs live in a preallocated slot ring, not a deque of std::function:
/// a small trivially-copyable closure is memcpy'd into its slot, so the
/// service hot path (`run` once per batch, `parallel_for` control blocks)
/// performs zero heap allocations once the ring has grown to the peak
/// backlog.  Larger or non-trivial closures transparently fall back to a
/// heap box — correctness never depends on the closure's shape.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <vector>

#include "core/macros.hpp"
#include "core/types.hpp"

namespace anyseq::parallel {

/// Number of hardware threads (>= 1).
[[nodiscard]] inline int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

/// Spawn `n` workers running `body(worker_id)` and join them all.
/// `n == 0` or `n == 1` runs inline on the caller.
template <class Body>
void run_workers(int n, Body&& body) {
  if (n <= 1) {
    body(0);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) threads.emplace_back([&body, t] { body(t); });
  for (auto& th : threads) th.join();
}

/// Classic task-queue thread pool with a preallocated job-slot ring.
/// Jobs are arbitrary callables; the pool also provides a blocking
/// chunked parallel_for.
class thread_pool {
 public:
  /// Closures up to this size that are trivially copyable and trivially
  /// destructible are stored inline in their ring slot (no allocation).
  static constexpr std::size_t job_payload_bytes = 48;

  explicit thread_pool(int n_threads);
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  /// Enqueue one job.  Small trivial closures go into the ring slot
  /// directly; anything else is boxed on the heap (rare, cold paths).
  template <class F>
  void run(F f) {
    static_assert(std::is_invocable_v<F&>, "job must be callable with ()");
    if constexpr (sizeof(F) <= job_payload_bytes &&
                  alignof(F) <= alignof(std::max_align_t) &&
                  std::is_trivially_copyable_v<F> &&
                  std::is_trivially_destructible_v<F>) {
      enqueue_inline(&invoke_inline<F>, &f, sizeof(F));
    } else {
      enqueue_boxed(&invoke_boxed<F>, &discard_boxed<F>, new F(std::move(f)));
    }
  }

  /// Block until every enqueued job has finished.
  void wait_idle();

  /// Blocking parallel loop over [a, b), split into `chunks_per_thread`
  /// chunks per worker for load balance.  Each enqueued chunk job
  /// captures one pointer to a stack-resident control block, so the loop
  /// itself never allocates through the job ring.
  template <class Body>
  void parallel_for(index_t a, index_t b, Body&& body,
                    int chunks_per_thread = 4) {
    if (b <= a) return;
    const index_t total = b - a;
    const index_t n_chunks =
        std::min<index_t>(total, static_cast<index_t>(size()) *
                                     chunks_per_thread);
    if (n_chunks <= 1) {
      for (index_t i = a; i < b; ++i) body(i);
      return;
    }
    struct control {
      std::atomic<index_t> next{0};
      std::atomic<int> remaining{0};
      std::mutex done_mutex;
      std::condition_variable done_cv;
      index_t a = 0, total = 0, n_chunks = 0;
      std::remove_reference_t<Body>* body = nullptr;
    } ctl;
    ctl.remaining.store(static_cast<int>(n_chunks));
    ctl.a = a;
    ctl.total = total;
    ctl.n_chunks = n_chunks;
    ctl.body = &body;
    for (index_t c = 0; c < n_chunks; ++c) {
      run([p = &ctl] {
        const index_t chunk = p->next.fetch_add(1);
        const index_t lo = p->a + chunk * p->total / p->n_chunks;
        const index_t hi = p->a + (chunk + 1) * p->total / p->n_chunks;
        for (index_t i = lo; i < hi; ++i) (*p->body)(i);
        // Decrement UNDER the mutex: the waiter's predicate must not
        // observe remaining == 0 until this worker is done touching the
        // stack-resident control block (otherwise parallel_for returns
        // and destroys it while we still hold/notify its members).
        {
          std::lock_guard lock(p->done_mutex);
          if (p->remaining.fetch_sub(1) == 1) p->done_cv.notify_all();
        }
      });
    }
    std::unique_lock lock(ctl.done_mutex);
    ctl.done_cv.wait(lock, [&] { return ctl.remaining.load() == 0; });
  }

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Slots the job ring currently holds (tests assert it stops growing).
  [[nodiscard]] std::size_t ring_capacity() const;

  /// Process-wide pool sized to the hardware.
  static thread_pool& global();

 private:
  /// One ring slot: an inline payload interpreted by `invoke`, or a
  /// heap box owned until invocation.  Trivially copyable by design —
  /// ring growth is a memcpy.  `discard` frees a boxed job WITHOUT
  /// running it (destructor stragglers must not execute user code).
  struct job {
    alignas(alignof(std::max_align_t)) unsigned char payload[job_payload_bytes];
    void (*invoke)(job&) = nullptr;
    void (*discard)(job&) = nullptr;
    void* boxed = nullptr;
  };

  template <class F>
  static void invoke_inline(job& j) {
    // F is trivially copyable: its slot bytes ARE its value.  Copy them
    // to a properly typed local and call it (capturing lambdas have no
    // default constructor, so reconstruct via the byte representation).
    alignas(F) unsigned char buf[sizeof(F)];
    std::memcpy(buf, j.payload, sizeof(F));
    (*std::launder(reinterpret_cast<F*>(buf)))();
  }

  template <class F>
  static void invoke_boxed(job& j) {
    std::unique_ptr<F> f(static_cast<F*>(j.boxed));
    (*f)();
  }

  template <class F>
  static void discard_boxed(job& j) {
    delete static_cast<F*>(j.boxed);
  }

  // Out-of-line (thread_pool.cpp): keeps the ring manipulation out of
  // every including TU — no weak `anyseq::parallel` loop symbols can be
  // emitted by the ISA-flagged engine TUs.
  void enqueue_inline(void (*invoke)(job&), const void* src,
                      std::size_t bytes);
  void enqueue_boxed(void (*invoke)(job&), void (*discard)(job&),
                     void* boxed);
  void push_slot_locked(const job& j);
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::vector<job> ring_;  ///< preallocated slots; grows to peak backlog
  std::size_t head_ = 0;   ///< index of the oldest queued job
  std::size_t count_ = 0;  ///< queued jobs
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool stop_ = false;
};

}  // namespace anyseq::parallel
