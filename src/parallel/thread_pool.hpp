#pragma once
/// \file thread_pool.hpp
/// Minimal thread primitives used by the CPU backends.
///
/// Impala's `parallel(num_threads, a, b, body)` generator maps here onto
/// `thread_pool::parallel_for` (blocking, chunked) and `run_workers`
/// (spawn N persistent workers and join) — the building blocks of the
/// wavefront schedulers.

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/macros.hpp"
#include "core/types.hpp"

namespace anyseq::parallel {

/// Number of hardware threads (>= 1).
[[nodiscard]] inline int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

/// Spawn `n` workers running `body(worker_id)` and join them all.
/// `n == 0` or `n == 1` runs inline on the caller.
template <class Body>
void run_workers(int n, Body&& body) {
  if (n <= 1) {
    body(0);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) threads.emplace_back([&body, t] { body(t); });
  for (auto& th : threads) th.join();
}

/// Classic task-queue thread pool.  Jobs are arbitrary callables; the
/// pool also provides a blocking chunked parallel_for.
class thread_pool {
 public:
  explicit thread_pool(int n_threads);
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  /// Enqueue one job.
  void run(std::function<void()> job);

  /// Block until every enqueued job has finished.
  void wait_idle();

  /// Blocking parallel loop over [a, b), split into `chunks_per_thread`
  /// chunks per worker for load balance.
  template <class Body>
  void parallel_for(index_t a, index_t b, Body&& body,
                    int chunks_per_thread = 4) {
    if (b <= a) return;
    const index_t total = b - a;
    const index_t n_chunks =
        std::min<index_t>(total, static_cast<index_t>(size()) *
                                     chunks_per_thread);
    if (n_chunks <= 1) {
      for (index_t i = a; i < b; ++i) body(i);
      return;
    }
    std::atomic<index_t> next{0};
    std::atomic<int> remaining{static_cast<int>(n_chunks)};
    std::mutex done_mutex;
    std::condition_variable done_cv;
    for (index_t c = 0; c < n_chunks; ++c) {
      run([&, total, n_chunks] {
        const index_t chunk = next.fetch_add(1);
        const index_t lo = a + chunk * total / n_chunks;
        const index_t hi = a + (chunk + 1) * total / n_chunks;
        for (index_t i = lo; i < hi; ++i) body(i);
        if (remaining.fetch_sub(1) == 1) {
          std::lock_guard lock(done_mutex);
          done_cv.notify_all();
        }
      });
    }
    std::unique_lock lock(done_mutex);
    done_cv.wait(lock, [&] { return remaining.load() == 0; });
  }

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Process-wide pool sized to the hardware.
  static thread_pool& global();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> jobs_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool stop_ = false;
};

}  // namespace anyseq::parallel
