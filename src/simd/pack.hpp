/// \file pack.hpp
/// Portable fixed-width SIMD value type (per-target header).
///
/// `pack<T, W>` is the C++ analogue of what Impala's `vectorize` generator
/// produces: core::relax instantiated with a pack type becomes a straight
/// line of vector instructions, with no SIMD-specific code in the
/// recurrence itself (paper §IV-A: "A major advantage of our approach is
/// that the vectorize generator supports several SIMD instruction sets").
///
/// The generic implementation is a fixed-size loop the compiler's
/// auto-vectorizer maps onto whatever ISA the TU's flags enable; for the
/// paper's AVX2 configuration (16-bit scores, 16 lanes) hand-written
/// AVX2 intrinsic overloads are provided as well.  `pack<int16_t, 32>`
/// models the paper's AVX-512 variant (GCC lowers the 32-lane loops to
/// AVX-512BW when available).
///
/// Masks are packs of the same shape holding 0 / all-ones lanes, so
/// `vselect` is a bitwise blend exactly as on real vector units.
///
/// This is a *per-target* header: its content compiles into
/// `anyseq::ANYSEQ_TARGET_NS::simd`, so the pack type — and every template
/// downstream instantiated with it — carries its engine variant in the
/// symbol name and can never share a COMDAT with another variant's code.

#include "simd/set_target.hpp"

#if defined(ANYSEQ_SIMD_PACK_HPP_) == defined(ANYSEQ_TARGET_TOGGLE)
#ifdef ANYSEQ_SIMD_PACK_HPP_
#undef ANYSEQ_SIMD_PACK_HPP_
#else
#define ANYSEQ_SIMD_PACK_HPP_
#endif

#include <array>
#include <cstring>

#include "core/macros.hpp"
#include "core/ops.hpp"
#include "core/types.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace anyseq {
namespace ANYSEQ_TARGET_NS {
namespace simd {

template <class T, int W>
struct alignas(sizeof(T) * W >= 64 ? 64 : sizeof(T) * W) pack {
  static_assert(W > 0 && (W & (W - 1)) == 0, "lane count must be a power of 2");
  using value_type = T;
  static constexpr int lanes = W;

  T v[W];

  [[nodiscard]] static ANYSEQ_INLINE pack broadcast(T x) noexcept {
    pack p;
    for (int i = 0; i < W; ++i) p.v[i] = x;
    return p;
  }
  [[nodiscard]] static ANYSEQ_INLINE pack load(const T* ptr) noexcept {
    pack p;
    std::memcpy(p.v, ptr, sizeof(p.v));
    return p;
  }
  ANYSEQ_INLINE void store(T* ptr) const noexcept {
    std::memcpy(ptr, v, sizeof(v));
  }
  [[nodiscard]] ANYSEQ_INLINE T operator[](int i) const noexcept {
    return v[i];
  }
  ANYSEQ_INLINE void set(int i, T x) noexcept { v[i] = x; }

  /// Horizontal maximum across lanes.
  [[nodiscard]] ANYSEQ_INLINE T hmax() const noexcept {
    T m = v[0];
    for (int i = 1; i < W; ++i) m = v[i] > m ? v[i] : m;
    return m;
  }

  friend bool operator==(const pack& a, const pack& b) noexcept {
    for (int i = 0; i < W; ++i)
      if (a.v[i] != b.v[i]) return false;
    return true;
  }
};

/// Mask: same shape, lanes are 0 or ~0.
template <class T, int W>
using pack_mask = pack<T, W>;

template <class T>
inline constexpr bool is_pack_v = false;
template <class T, int W>
inline constexpr bool is_pack_v<pack<T, W>> = true;

template <class P>
concept any_pack = is_pack_v<P>;

// ---------------------------------------------------------------------------
// Generic lane-wise operations (overload set core::relax resolves via ADL).
// ---------------------------------------------------------------------------

template <class T, int W>
[[nodiscard]] ANYSEQ_INLINE pack<T, W> vmax(pack<T, W> a, pack<T, W> b) noexcept {
  pack<T, W> r;
  for (int i = 0; i < W; ++i) r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
  return r;
}

template <class T, int W>
[[nodiscard]] ANYSEQ_INLINE pack<T, W> vmin(pack<T, W> a, pack<T, W> b) noexcept {
  pack<T, W> r;
  for (int i = 0; i < W; ++i) r.v[i] = a.v[i] < b.v[i] ? a.v[i] : b.v[i];
  return r;
}

/// Saturating add for 16-bit lanes (keeps the -inf sentinel pinned), plain
/// add for 32-bit lanes (the headroom argument of core/types.hpp applies).
template <class T, int W>
[[nodiscard]] ANYSEQ_INLINE pack<T, W> vadd(pack<T, W> a, pack<T, W> b) noexcept {
  pack<T, W> r;
  if constexpr (sizeof(T) <= 2) {
    for (int i = 0; i < W; ++i) {
      const int wide = static_cast<int>(a.v[i]) + static_cast<int>(b.v[i]);
      const int lo = std::numeric_limits<T>::min();
      const int hi = std::numeric_limits<T>::max();
      r.v[i] = static_cast<T>(wide < lo ? lo : (wide > hi ? hi : wide));
    }
  } else {
    for (int i = 0; i < W; ++i) r.v[i] = static_cast<T>(a.v[i] + b.v[i]);
  }
  return r;
}

template <class T, int W>
[[nodiscard]] ANYSEQ_INLINE pack_mask<T, W> vgt(pack<T, W> a,
                                                pack<T, W> b) noexcept {
  pack_mask<T, W> r;
  for (int i = 0; i < W; ++i) r.v[i] = a.v[i] > b.v[i] ? static_cast<T>(-1) : 0;
  return r;
}

template <class T, int W>
[[nodiscard]] ANYSEQ_INLINE pack_mask<T, W> veq(pack<T, W> a,
                                                pack<T, W> b) noexcept {
  pack_mask<T, W> r;
  for (int i = 0; i < W; ++i)
    r.v[i] = a.v[i] == b.v[i] ? static_cast<T>(-1) : 0;
  return r;
}

/// Bitwise blend: lane from `a` where mask set, else from `b`.
template <class T, int W>
[[nodiscard]] ANYSEQ_INLINE pack<T, W> vselect(pack_mask<T, W> m, pack<T, W> a,
                                               pack<T, W> b) noexcept {
  pack<T, W> r;
  for (int i = 0; i < W; ++i) r.v[i] = m.v[i] ? a.v[i] : b.v[i];
  return r;
}

template <any_pack P>
[[nodiscard]] ANYSEQ_INLINE P vbroadcast(score_t x) noexcept {
  return P::broadcast(static_cast<typename P::value_type>(x));
}

template <class T, int W>
[[nodiscard]] ANYSEQ_INLINE pack_mask<T, W> vor(pack_mask<T, W> a,
                                                pack_mask<T, W> b) noexcept {
  pack_mask<T, W> r;
  for (int i = 0; i < W; ++i) r.v[i] = static_cast<T>(a.v[i] | b.v[i]);
  return r;
}

template <class T, int W>
[[nodiscard]] ANYSEQ_INLINE pack_mask<T, W> vand(pack_mask<T, W> a,
                                                 pack_mask<T, W> b) noexcept {
  pack_mask<T, W> r;
  for (int i = 0; i < W; ++i) r.v[i] = static_cast<T>(a.v[i] & b.v[i]);
  return r;
}

/// a & ~b — mask subtraction (one ANDN instruction on real vector
/// units).  The ragged batch kernel derives its per-column retirement
/// masks with it: colend[j] = colmask[j] & ~colmask[j + 1].
template <class T, int W>
[[nodiscard]] ANYSEQ_INLINE pack_mask<T, W> vandnot(pack_mask<T, W> a,
                                                    pack_mask<T, W> b) noexcept {
  pack_mask<T, W> r;
  for (int i = 0; i < W; ++i) r.v[i] = static_cast<T>(a.v[i] & ~b.v[i]);
  return r;
}

/// Per-lane substitution-table gather (paper: matrix scoring on SIMD).
template <any_pack P, class T, int W>
[[nodiscard]] ANYSEQ_INLINE P vlookup(const score_t* table, int stride,
                                      pack<T, W> q, pack<T, W> s) noexcept {
  static_assert(W == P::lanes, "char pack and score pack must agree");
  P r;
  for (int i = 0; i < W; ++i)
    r.v[i] = static_cast<typename P::value_type>(
        table[static_cast<int>(q.v[i]) * stride + static_cast<int>(s.v[i])]);
  return r;
}

// ---------------------------------------------------------------------------
// AVX2 intrinsic overloads for the paper's CPU configuration:
// 16 lanes x 16-bit scores (one 256-bit register).
// ---------------------------------------------------------------------------
#if defined(__AVX2__)

using s16x16 = pack<score16_t, 16>;

[[nodiscard]] ANYSEQ_INLINE __m256i to_reg(const s16x16& p) noexcept {
  return _mm256_load_si256(reinterpret_cast<const __m256i*>(p.v));
}
[[nodiscard]] ANYSEQ_INLINE s16x16 from_reg(__m256i r) noexcept {
  s16x16 p;
  _mm256_store_si256(reinterpret_cast<__m256i*>(p.v), r);
  return p;
}

[[nodiscard]] ANYSEQ_INLINE s16x16 vmax(s16x16 a, s16x16 b) noexcept {
  return from_reg(_mm256_max_epi16(to_reg(a), to_reg(b)));
}
[[nodiscard]] ANYSEQ_INLINE s16x16 vmin(s16x16 a, s16x16 b) noexcept {
  return from_reg(_mm256_min_epi16(to_reg(a), to_reg(b)));
}
[[nodiscard]] ANYSEQ_INLINE s16x16 vadd(s16x16 a, s16x16 b) noexcept {
  return from_reg(_mm256_adds_epi16(to_reg(a), to_reg(b)));  // saturating
}
[[nodiscard]] ANYSEQ_INLINE s16x16 vgt(s16x16 a, s16x16 b) noexcept {
  return from_reg(_mm256_cmpgt_epi16(to_reg(a), to_reg(b)));
}
[[nodiscard]] ANYSEQ_INLINE s16x16 veq(s16x16 a, s16x16 b) noexcept {
  return from_reg(_mm256_cmpeq_epi16(to_reg(a), to_reg(b)));
}
[[nodiscard]] ANYSEQ_INLINE s16x16 vselect(s16x16 m, s16x16 a,
                                           s16x16 b) noexcept {
  return from_reg(_mm256_blendv_epi8(to_reg(b), to_reg(a), to_reg(m)));
}
[[nodiscard]] ANYSEQ_INLINE s16x16 vor(s16x16 a, s16x16 b) noexcept {
  return from_reg(_mm256_or_si256(to_reg(a), to_reg(b)));
}
[[nodiscard]] ANYSEQ_INLINE s16x16 vand(s16x16 a, s16x16 b) noexcept {
  return from_reg(_mm256_and_si256(to_reg(a), to_reg(b)));
}
[[nodiscard]] ANYSEQ_INLINE s16x16 vandnot(s16x16 a, s16x16 b) noexcept {
  // _mm256_andnot_si256 computes ~first & second; vandnot is a & ~b.
  return from_reg(_mm256_andnot_si256(to_reg(b), to_reg(a)));
}

// ---------------------------------------------------------------------------
// AVX2 intrinsic overloads for the adaptive-precision configuration:
// 32 lanes x 8-bit scores (one 256-bit register, double the pair
// throughput of s16x16 when the score window fits int8).
// ---------------------------------------------------------------------------

using s8x32 = pack<score8_t, 32>;

[[nodiscard]] ANYSEQ_INLINE __m256i to_reg(const s8x32& p) noexcept {
  return _mm256_load_si256(reinterpret_cast<const __m256i*>(p.v));
}
[[nodiscard]] ANYSEQ_INLINE s8x32 from_reg8(__m256i r) noexcept {
  s8x32 p;
  _mm256_store_si256(reinterpret_cast<__m256i*>(p.v), r);
  return p;
}

[[nodiscard]] ANYSEQ_INLINE s8x32 vmax(s8x32 a, s8x32 b) noexcept {
  return from_reg8(_mm256_max_epi8(to_reg(a), to_reg(b)));
}
[[nodiscard]] ANYSEQ_INLINE s8x32 vmin(s8x32 a, s8x32 b) noexcept {
  return from_reg8(_mm256_min_epi8(to_reg(a), to_reg(b)));
}
[[nodiscard]] ANYSEQ_INLINE s8x32 vadd(s8x32 a, s8x32 b) noexcept {
  return from_reg8(_mm256_adds_epi8(to_reg(a), to_reg(b)));  // saturating
}
[[nodiscard]] ANYSEQ_INLINE s8x32 vgt(s8x32 a, s8x32 b) noexcept {
  return from_reg8(_mm256_cmpgt_epi8(to_reg(a), to_reg(b)));
}
[[nodiscard]] ANYSEQ_INLINE s8x32 veq(s8x32 a, s8x32 b) noexcept {
  return from_reg8(_mm256_cmpeq_epi8(to_reg(a), to_reg(b)));
}
[[nodiscard]] ANYSEQ_INLINE s8x32 vselect(s8x32 m, s8x32 a,
                                          s8x32 b) noexcept {
  return from_reg8(_mm256_blendv_epi8(to_reg(b), to_reg(a), to_reg(m)));
}
[[nodiscard]] ANYSEQ_INLINE s8x32 vor(s8x32 a, s8x32 b) noexcept {
  return from_reg8(_mm256_or_si256(to_reg(a), to_reg(b)));
}
[[nodiscard]] ANYSEQ_INLINE s8x32 vand(s8x32 a, s8x32 b) noexcept {
  return from_reg8(_mm256_and_si256(to_reg(a), to_reg(b)));
}
[[nodiscard]] ANYSEQ_INLINE s8x32 vandnot(s8x32 a, s8x32 b) noexcept {
  return from_reg8(_mm256_andnot_si256(to_reg(b), to_reg(a)));
}

#endif  // __AVX2__

}  // namespace simd
}  // namespace ANYSEQ_TARGET_NS

/// Mask type of a pack is a pack of the same shape (one specialization per
/// target: the pack types differ by namespace).
template <class T, int W>
struct mask_of<ANYSEQ_TARGET_NS::simd::pack<T, W>> {
  using type = ANYSEQ_TARGET_NS::simd::pack_mask<T, W>;
};

}  // namespace anyseq

#if ANYSEQ_TARGET == ANYSEQ_TARGET_SCALAR
/// Historical un-suffixed names for baseline code: the scalar target *is*
/// the baseline, so `anyseq::simd::pack` aliases `anyseq::v_scalar`'s
/// clone.  Lane-wise operations need no export — ADL finds them in the
/// pack's own namespace.
namespace anyseq::simd {
using v_scalar::simd::pack;
using v_scalar::simd::pack_mask;
using v_scalar::simd::is_pack_v;
template <class P>
concept any_pack = v_scalar::simd::any_pack<P>;
#if defined(__AVX2__)
using v_scalar::simd::s16x16;
using v_scalar::simd::s8x32;
#endif
}  // namespace anyseq::simd
#endif  // scalar exports

#endif  // per-target include guard
