/// \file engines_avx512.cpp
/// The 32-lane engine variant (`anyseq::v_avx512`; paper's AVX-512
/// configuration: 16-bit scores x 32 lanes = one 512-bit register).
///
/// On x86-64 the build compiles this TU with -mavx512bw (see
/// src/CMakeLists.txt); GCC/Clang lower the 32-lane pack loops to
/// AVX-512BW instructions.  Elsewhere the TU compiles as portable scalar
/// loops — same results, no special hardware; the table's `native` flag
/// reports which case this is.  Either way every symbol lives in
/// `anyseq::v_avx512`, isolated from baseline and v_avx2 code.

#include "simd/targets.hpp"

#define ANYSEQ_STATIC_TARGET ANYSEQ_TARGET_AVX512
#define ANYSEQ_TARGET_INCLUDE "anyseq/engine_impl.hpp"
#include "simd/foreach_target.hpp"

namespace anyseq::engine {

const ops& ops_x32() { return v_avx512::engine::variant_ops(); }

}  // namespace anyseq::engine
