/// \file engines_avx512.cpp
/// The 32-lane engine variant (paper's AVX-512 configuration: 16-bit
/// scores x 32 lanes = one 512-bit register).
///
/// On x86-64 the build compiles this TU with -mavx512bw (see
/// src/CMakeLists.txt); GCC/Clang lower the 32-lane pack loops to
/// AVX-512BW instructions.  Elsewhere the TU compiles as portable scalar
/// loops — same results, no special hardware; `built_with_avx512()`
/// reports which case this is.

#include "anyseq/engine_impl.hpp"
#include "simd/detect.hpp"

namespace anyseq::engine {

const ops& ops_x32() {
  return make_ops<simd::avx512_lanes>("avx512", simd::built_with_avx512());
}

}  // namespace anyseq::engine
