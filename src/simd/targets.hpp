#pragma once
/// \file targets.hpp
/// Identifiers of the engine variants ("targets") the library compiles.
///
/// Every lane-dependent engine header is a *per-target* header: its whole
/// content lives inside `anyseq::v_<target>` and it may be compiled once
/// per target (see simd/foreach_target.hpp).  A translation unit selects
/// the target by defining `ANYSEQ_TARGET` to one of the identifiers below
/// *before* including any per-target header; simd/set_target.hpp then
/// derives the per-target macros (`ANYSEQ_TARGET_NS`, `ANYSEQ_TARGET_NAME`,
/// `ANYSEQ_TARGET_LANES`, `ANYSEQ_TARGET_IS_NATIVE`).  TUs that do not
/// define `ANYSEQ_TARGET` get the scalar target, whose symbols are
/// additionally exported under their historical un-suffixed names.
///
/// The identifiers are macros (not an enum) because target selection
/// happens in the preprocessor, before any C++ is parsed.

#define ANYSEQ_TARGET_SCALAR 1  ///< 1 lane, baseline codegen (always present)
#define ANYSEQ_TARGET_AVX2 2    ///< 16 x 16-bit lanes (one 256-bit register)
#define ANYSEQ_TARGET_AVX512 3  ///< 32 x 16-bit lanes (one 512-bit register)
