/// \file foreach_target.hpp
/// Re-inclusion seam for the per-variant engine namespaces (the
/// Highway / simdjson scheme).
///
/// A variant TU defines
///
/// ```
///   #include "simd/targets.hpp"
///   #define ANYSEQ_STATIC_TARGET ANYSEQ_TARGET_AVX2   // this TU's target
///   #define ANYSEQ_TARGET_INCLUDE "anyseq/engine_impl.hpp"
///   #include "simd/foreach_target.hpp"
/// ```
///
/// and this header includes `ANYSEQ_TARGET_INCLUDE` once per *enabled*
/// target with `ANYSEQ_TARGET` set, compiling the entire lane-dependent
/// engine stack inside `anyseq::v_<target>`.  Because every lane-tagged
/// symbol carries its variant namespace, no two variant TUs — and no
/// baseline, test, or bench TU — can ever share a COMDAT template
/// instantiation with ISA-flagged code.
///
/// **Why exactly one target per TU is enabled here.**  This build gets its
/// per-variant codegen from per-TU compiler flags (`-mavx2` on
/// engines_avx2.cpp, `-mavx512bw` on engines_avx512.cpp — see
/// src/CMakeLists.txt), not from `#pragma GCC target` regions.  A TU's
/// flags apply to everything it compiles, so compiling a *second* target
/// in the same TU would emit that target's `anyseq::v_*` symbols with the
/// wrong ISA flags, recreating the exact one-definition hazard this seam
/// removes.  `ANYSEQ_STATIC_TARGET` therefore selects the single target
/// matching the TU's flags, and the nm-based symbol audit
/// (scripts/check_symbol_isolation.sh) verifies that each `anyseq::v_*`
/// namespace is emitted by exactly the TUs compiled with its flags.
///
/// Adding a variant (AVX-VNNI, SVE, another lane width) is mechanical:
/// add an identifier in simd/targets.hpp, a branch in simd/set_target.hpp,
/// a pass below, and one TU + flag stanza in the build.  A future
/// single-TU multi-target build (pragma-based codegen) would enable
/// several passes and flip `ANYSEQ_TARGET_TOGGLE` between them — the
/// per-target headers' include guards are already keyed on that toggle.

#include "simd/targets.hpp"

#ifndef ANYSEQ_TARGET_INCLUDE
#error "define ANYSEQ_TARGET_INCLUDE before including simd/foreach_target.hpp"
#endif
#ifndef ANYSEQ_STATIC_TARGET
#error "define ANYSEQ_STATIC_TARGET: per-TU ISA flags allow one target per TU"
#endif

#if ANYSEQ_STATIC_TARGET == ANYSEQ_TARGET_SCALAR
#undef ANYSEQ_TARGET
#define ANYSEQ_TARGET ANYSEQ_TARGET_SCALAR
#include "simd/set_target.hpp"
#include ANYSEQ_TARGET_INCLUDE
#endif

#if ANYSEQ_STATIC_TARGET == ANYSEQ_TARGET_AVX2
#undef ANYSEQ_TARGET
#define ANYSEQ_TARGET ANYSEQ_TARGET_AVX2
#include "simd/set_target.hpp"
#include ANYSEQ_TARGET_INCLUDE
#endif

#if ANYSEQ_STATIC_TARGET == ANYSEQ_TARGET_AVX512
#undef ANYSEQ_TARGET
#define ANYSEQ_TARGET ANYSEQ_TARGET_AVX512
#include "simd/set_target.hpp"
#include ANYSEQ_TARGET_INCLUDE
#endif
