/// \file engines_avx2.cpp
/// The 16-lane engine variant (paper's AVX2 configuration: 16-bit scores
/// x 16 lanes = one 256-bit register).
///
/// On x86-64 the build compiles this TU with -mavx2 (see
/// src/CMakeLists.txt), which turns on the hand-written AVX2 intrinsic
/// overloads in simd/pack.hpp and lets the auto-vectorizer lower the
/// generic lane loops to VEX code.  On any other architecture — or with
/// -DANYSEQ_DISABLE_SIMD=ON — the exact same code compiles as portable
/// fixed-width scalar loops, so the variant exists (and produces identical
/// results) everywhere; `built_with_avx2()` reports which case this is.

#include "anyseq/engine_impl.hpp"
#include "simd/detect.hpp"

namespace anyseq::engine {

const ops& ops_x16() {
  return make_ops<simd::avx2_lanes>("avx2", simd::built_with_avx2());
}

}  // namespace anyseq::engine
