/// \file engines_avx2.cpp
/// The 16-lane engine variant (`anyseq::v_avx2`; paper's AVX2
/// configuration: 16-bit scores x 16 lanes = one 256-bit register).
///
/// On x86-64 the build compiles this TU with -mavx2 (see
/// src/CMakeLists.txt), which turns on the hand-written AVX2 intrinsic
/// overloads in simd/pack.hpp and lets the auto-vectorizer lower the
/// generic lane loops to VEX code.  On any other architecture — or with
/// -DANYSEQ_DISABLE_SIMD=ON — the exact same code compiles as portable
/// fixed-width scalar loops, so the variant exists (and produces identical
/// results) everywhere; the table's `native` flag reports which case this
/// is.  Either way every symbol lives in `anyseq::v_avx2`, so this TU's
/// codegen can never be linked into baseline code paths.

#include "simd/targets.hpp"

#define ANYSEQ_STATIC_TARGET ANYSEQ_TARGET_AVX2
#define ANYSEQ_TARGET_INCLUDE "anyseq/engine_impl.hpp"
#include "simd/foreach_target.hpp"

namespace anyseq::engine {

const ops& ops_x16() { return v_avx2::engine::variant_ops(); }

}  // namespace anyseq::engine
