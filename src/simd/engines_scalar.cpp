/// \file engines_scalar.cpp
/// The 1-lane engine variant: multithreaded scalar tiles.  Always compiled
/// with the toolchain's baseline flags — this TU is the portable fallback
/// every build ships, regardless of architecture.

#include "anyseq/engine_impl.hpp"

namespace anyseq::engine {

const ops& ops_x1() { return make_ops<1>("scalar", /*native=*/true); }

}  // namespace anyseq::engine
