/// \file engines_scalar.cpp
/// The scalar engine variant (`anyseq::v_scalar`): multithreaded scalar
/// tiles, 1 lane.  Always compiled with the toolchain's baseline flags —
/// this TU is the portable fallback every build ships, regardless of
/// architecture.

#include "simd/targets.hpp"

#define ANYSEQ_STATIC_TARGET ANYSEQ_TARGET_SCALAR
#define ANYSEQ_TARGET_INCLUDE "anyseq/engine_impl.hpp"
#include "simd/foreach_target.hpp"

namespace anyseq::engine {

const ops& ops_x1() { return v_scalar::engine::variant_ops(); }

}  // namespace anyseq::engine
