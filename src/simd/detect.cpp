#include "simd/detect.hpp"

namespace anyseq::simd {

cpu_features detect() {
  cpu_features f;
#if defined(__GNUC__) || defined(__clang__)
  __builtin_cpu_init();
  f.avx2 = __builtin_cpu_supports("avx2");
  f.avx512bw = __builtin_cpu_supports("avx512bw");
#endif
  return f;
}

std::string describe(const cpu_features& f) {
  std::string out = "cpu:";
  out += f.avx2 ? " avx2" : " no-avx2";
  out += f.avx512bw ? " avx512bw" : " no-avx512bw";
  out += built_with_avx2() ? " [binary: avx2]" : " [binary: generic]";
  if (built_with_avx512()) out += " [binary: avx512bw]";
  return out;
}

}  // namespace anyseq::simd
