#include "simd/detect.hpp"

namespace anyseq::simd {

cpu_features detect() {
  cpu_features f;
#if defined(__GNUC__) || defined(__clang__)
  __builtin_cpu_init();
  f.avx2 = __builtin_cpu_supports("avx2");
  f.avx512bw = __builtin_cpu_supports("avx512bw");
#endif
  return f;
}

std::string describe(const cpu_features& f) {
  std::string out = "cpu:";
  out += f.avx2 ? " avx2" : " no-avx2";
  out += f.avx512bw ? " avx512bw" : " no-avx512bw";
  out += avx2_native_build() ? " [x16: native avx2]" : " [x16: generic]";
  out += avx512_native_build() ? " [x32: native avx512bw]" : " [x32: generic]";
  return out;
}

bool avx2_native_build() noexcept {
#if defined(ANYSEQ_AVX2_NATIVE_TU)
  return true;
#else
  return false;
#endif
}

bool avx512_native_build() noexcept {
#if defined(ANYSEQ_AVX512_NATIVE_TU)
  return true;
#else
  return false;
#endif
}

bool lanes_runnable(int lanes, const cpu_features& f) noexcept {
  switch (lanes) {
    case 1:
      return true;
    case 16:
      return !avx2_native_build() || f.avx2;
    case 32:
      return !avx512_native_build() || f.avx512bw;
    default:
      return false;
  }
}

int widest_lanes(const cpu_features& f) noexcept {
  if (f.avx512bw && avx512_native_build()) return 32;
  if (f.avx2) return 16;
  return 1;
}

}  // namespace anyseq::simd
