/// \file set_target.hpp
/// Derive the per-target macros from `ANYSEQ_TARGET`.
///
/// Deliberately NO include guard: this header is re-included at the top of
/// every per-target header (and by simd/foreach_target.hpp before each
/// target pass) and simply re-derives the macros from the current value of
/// `ANYSEQ_TARGET`.  When `ANYSEQ_TARGET` is not set — any ordinary
/// baseline TU — it defaults to the scalar target.
///
/// Macros defined here:
///   ANYSEQ_TARGET_NS         namespace tag: v_scalar / v_avx2 / v_avx512
///   ANYSEQ_TARGET_NAME       string literal for diagnostics
///   ANYSEQ_TARGET_LANES      SIMD width the engine variant instantiates
///   ANYSEQ_TARGET_IS_NATIVE  constant expression: this TU was compiled
///                            with the matching ISA flags

#include "simd/detect.hpp"
#include "simd/targets.hpp"

#ifndef ANYSEQ_TARGET
#define ANYSEQ_TARGET ANYSEQ_TARGET_SCALAR
#endif

#undef ANYSEQ_TARGET_NS
#undef ANYSEQ_TARGET_NAME
#undef ANYSEQ_TARGET_LANES
#undef ANYSEQ_TARGET_IS_NATIVE

#if ANYSEQ_TARGET == ANYSEQ_TARGET_SCALAR
#define ANYSEQ_TARGET_NS v_scalar
#define ANYSEQ_TARGET_NAME "scalar"
#define ANYSEQ_TARGET_LANES 1
#define ANYSEQ_TARGET_IS_NATIVE true
#elif ANYSEQ_TARGET == ANYSEQ_TARGET_AVX2
#define ANYSEQ_TARGET_NS v_avx2
#define ANYSEQ_TARGET_NAME "avx2"
#define ANYSEQ_TARGET_LANES 16
#define ANYSEQ_TARGET_IS_NATIVE (::anyseq::simd::built_with_avx2())
#elif ANYSEQ_TARGET == ANYSEQ_TARGET_AVX512
#define ANYSEQ_TARGET_NS v_avx512
#define ANYSEQ_TARGET_NAME "avx512"
#define ANYSEQ_TARGET_LANES 32
#define ANYSEQ_TARGET_IS_NATIVE (::anyseq::simd::built_with_avx512())
#else
#error "ANYSEQ_TARGET must be one of the identifiers in simd/targets.hpp"
#endif
