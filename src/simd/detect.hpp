#pragma once
/// \file detect.hpp
/// Runtime CPU feature detection used by the dispatcher to pick the widest
/// safe SIMD variant, and compile-time records of what this binary was
/// built with.

#include <string>

namespace anyseq::simd {

struct cpu_features {
  bool avx2 = false;
  bool avx512bw = false;
};

/// Query the running CPU.
[[nodiscard]] cpu_features detect();

/// Human-readable summary (for benchmark headers).
[[nodiscard]] std::string describe(const cpu_features& f);

/// True if this *binary* contains AVX2 intrinsic paths.
[[nodiscard]] constexpr bool built_with_avx2() {
#if defined(__AVX2__)
  return true;
#else
  return false;
#endif
}

/// True if the compiler was allowed to emit AVX-512 for the 32-lane packs.
[[nodiscard]] constexpr bool built_with_avx512() {
#if defined(__AVX512BW__)
  return true;
#else
  return false;
#endif
}

// ---------------------------------------------------------------------------
// Runtime dispatch policy.
//
// The engine variants live in dedicated translation units
// (src/simd/engines_{scalar,avx2,avx512}.cpp).  The build compiles the
// 16/32-lane TUs with -mavx2 / -mavx512bw when the host toolchain allows
// it ("native"); otherwise the same TUs compile as portable scalar loops.
// The functions below encode which variants are safe to enter on the
// running CPU; align.cpp consults them for every dispatch.
// ---------------------------------------------------------------------------

/// True if the 16-lane engine TU was compiled with -mavx2.
[[nodiscard]] bool avx2_native_build() noexcept;

/// True if the 32-lane engine TU was compiled with -mavx512bw.
[[nodiscard]] bool avx512_native_build() noexcept;

/// True if the engine variant of width `lanes` (1, 16 or 32) may run on a
/// CPU with features `f`: native variants require the matching ISA;
/// generic-compiled variants run anywhere.
[[nodiscard]] bool lanes_runnable(int lanes, const cpu_features& f) noexcept;

/// Widest lane count `backend::auto_select` resolves to on a CPU with
/// features `f`: 32 when AVX-512BW is present in both CPU and binary,
/// 16 on any AVX2 CPU, else 1.  The result always satisfies
/// `lanes_runnable`.
[[nodiscard]] int widest_lanes(const cpu_features& f) noexcept;

}  // namespace anyseq::simd
