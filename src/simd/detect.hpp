#pragma once
/// \file detect.hpp
/// Runtime CPU feature detection used by the dispatcher to pick the widest
/// safe SIMD variant, and compile-time records of what this binary was
/// built with.

#include <string>

namespace anyseq::simd {

struct cpu_features {
  bool avx2 = false;
  bool avx512bw = false;
};

/// Query the running CPU.
[[nodiscard]] cpu_features detect();

/// Human-readable summary (for benchmark headers).
[[nodiscard]] std::string describe(const cpu_features& f);

/// True if this *binary* contains AVX2 intrinsic paths.
[[nodiscard]] constexpr bool built_with_avx2() {
#if defined(__AVX2__)
  return true;
#else
  return false;
#endif
}

/// True if the compiler was allowed to emit AVX-512 for the 32-lane packs.
[[nodiscard]] constexpr bool built_with_avx512() {
#if defined(__AVX512BW__)
  return true;
#else
  return false;
#endif
}

}  // namespace anyseq::simd
