#pragma once
/// \file views.hpp
/// Zero-cost data-access abstractions (paper §III-B).
///
/// The paper decouples "what the recurrence reads/writes" from "where the
/// bytes live" through accessor structs (`Sequence`, `Scores`,
/// `MatrixView`) whose calls the partial evaluator folds away.  Here the
/// same accessors are tiny value types with force-inlined members; engines
/// are templated on them, so reversing a sequence for the
/// divide-and-conquer traceback, slicing a tile, or remapping a matrix to
/// a coalesced GPU layout is a *view change*, never a data copy.

#include <span>

#include "core/macros.hpp"
#include "core/types.hpp"

namespace anyseq::stage {

/// Read-only view of an encoded character sequence — the paper's
/// `Sequence { len, at }` accessor.
class seq_view {
 public:
  constexpr seq_view() = default;
  constexpr seq_view(const char_t* data, index_t n) noexcept
      : data_(data), n_(n) {}
  explicit seq_view(std::span<const char_t> s) noexcept
      : data_(s.data()), n_(static_cast<index_t>(s.size())) {}

  [[nodiscard]] constexpr ANYSEQ_INLINE index_t size() const noexcept {
    return n_;
  }
  [[nodiscard]] constexpr ANYSEQ_INLINE char_t operator[](
      index_t i) const noexcept {
    ANYSEQ_ASSERT(i >= 0 && i < n_, "seq_view index out of range");
    return data_[i];
  }
  [[nodiscard]] ANYSEQ_INLINE const char_t* data() const noexcept {
    return data_;
  }

  /// Half-open subsequence [a, b) as a view (no copy).
  [[nodiscard]] constexpr seq_view sub(index_t a, index_t b) const noexcept {
    ANYSEQ_ASSERT(0 <= a && a <= b && b <= n_, "seq_view::sub out of range");
    return {data_ + a, b - a};
  }

 private:
  const char_t* data_ = nullptr;
  index_t n_ = 0;
};

/// Reversed view: `v[i] == base[n-1-i]` — "we reverse the indexing in the
/// sequence accessor function" (paper §III-C).  Used by the reverse passes
/// of the divide-and-conquer traceback.
class rev_view {
 public:
  constexpr rev_view() = default;
  constexpr explicit rev_view(seq_view base) noexcept : base_(base) {}

  [[nodiscard]] constexpr ANYSEQ_INLINE index_t size() const noexcept {
    return base_.size();
  }
  [[nodiscard]] constexpr ANYSEQ_INLINE char_t operator[](
      index_t i) const noexcept {
    return base_[base_.size() - 1 - i];
  }
  /// Subview in *reversed* coordinates.
  [[nodiscard]] constexpr rev_view sub(index_t a, index_t b) const noexcept {
    return rev_view(base_.sub(base_.size() - b, base_.size() - a));
  }

 private:
  seq_view base_{};
};

/// Concept satisfied by both views (and any user-defined accessor).
template <class V>
concept sequence_view = requires(const V v, index_t i) {
  { v.size() } -> std::convertible_to<index_t>;
  { v[i] } -> std::convertible_to<char_t>;
};

// ---------------------------------------------------------------------------
// Matrix views — the paper's `MatrixView { read, write }`.
// ---------------------------------------------------------------------------

/// Row-major view over a dense buffer of scores: read/write addressed by
/// two indices, with the storage origin and pitch folded in at compile
/// time by inlining.
template <class T>
class matrix_view {
 public:
  constexpr matrix_view() = default;
  constexpr matrix_view(T* data, index_t rows, index_t cols) noexcept
      : data_(data), rows_(rows), cols_(cols) {}

  [[nodiscard]] ANYSEQ_INLINE T read(index_t i, index_t j) const noexcept {
    ANYSEQ_ASSERT(in_range(i, j), "matrix_view read out of range");
    return data_[i * cols_ + j];
  }
  ANYSEQ_INLINE void write(index_t i, index_t j, T value) const noexcept {
    ANYSEQ_ASSERT(in_range(i, j), "matrix_view write out of range");
    data_[i * cols_ + j] = value;
  }
  [[nodiscard]] ANYSEQ_INLINE index_t rows() const noexcept { return rows_; }
  [[nodiscard]] ANYSEQ_INLINE index_t cols() const noexcept { return cols_; }
  [[nodiscard]] ANYSEQ_INLINE T* row(index_t i) const noexcept {
    return data_ + i * cols_;
  }

 private:
  [[nodiscard]] constexpr bool in_range(index_t i, index_t j) const noexcept {
    return i >= 0 && i < rows_ && j >= 0 && j < cols_;
  }
  T* data_ = nullptr;
  index_t rows_ = 0, cols_ = 0;
};

/// Offset view: shifts the coordinate origin — the building block the
/// paper composes for per-tile addressing (`view_matrix_*_offset`).
template <class Base>
class offset_view {
 public:
  using value_type = decltype(std::declval<const Base&>().read(0, 0));

  constexpr offset_view(Base base, index_t oi, index_t oj) noexcept
      : base_(base), oi_(oi), oj_(oj) {}

  [[nodiscard]] ANYSEQ_INLINE value_type read(index_t i, index_t j) const noexcept {
    return base_.read(i + oi_, j + oj_);
  }
  ANYSEQ_INLINE void write(index_t i, index_t j, value_type v) const noexcept {
    base_.write(i + oi_, j + oj_, v);
  }

 private:
  Base base_;
  index_t oi_, oj_;
};

/// Cyclic-row view mapping logical row i onto `i mod window` physical
/// rows — the paper's intra-tile cyclic buffer ("an intra-tile cyclic
/// buffer must always contain the previously computed values", §IV-A):
/// only `window` rows of the conceptual DP matrix are materialized.
template <class T>
class cyclic_rows_view {
 public:
  constexpr cyclic_rows_view(T* data, index_t window, index_t cols) noexcept
      : data_(data), window_(window), cols_(cols) {}

  [[nodiscard]] ANYSEQ_INLINE T read(index_t i, index_t j) const noexcept {
    return data_[(i % window_) * cols_ + j];
  }
  ANYSEQ_INLINE void write(index_t i, index_t j, T v) const noexcept {
    data_[(i % window_) * cols_ + j] = v;
  }

 private:
  T* data_;
  index_t window_, cols_;
};

/// Coalesced/rotated view used by the GPU backend (paper §III-C,
/// `view_matrix_coal_offset`): logical (i,j) maps to a rotated physical
/// row so that a diagonal sweep touches consecutive addresses.
template <class T>
class coalesced_view {
 public:
  constexpr coalesced_view(T* data, index_t mem_height, index_t mem_width,
                           index_t oi, index_t oj) noexcept
      : data_(data),
        mem_height_(mem_height),
        mem_width_(mem_width),
        oi_(oi),
        oj_(oj) {}

  [[nodiscard]] ANYSEQ_INLINE index_t pos(index_t i, index_t j) const noexcept {
    return ((i + oi_ + j + oj_ + 2) % mem_height_) * mem_width_ + j + oj_;
  }
  [[nodiscard]] ANYSEQ_INLINE T read(index_t i, index_t j) const noexcept {
    return data_[pos(i, j)];
  }
  ANYSEQ_INLINE void write(index_t i, index_t j, T v) const noexcept {
    data_[pos(i, j)] = v;
  }

 private:
  T* data_;
  index_t mem_height_, mem_width_;
  index_t oi_, oj_;
};

}  // namespace anyseq::stage
