#pragma once
/// \file generators.hpp
/// Loop "generators" (paper §II-B): higher-order iteration functions that
/// are composed into 2-D loop nests and specialized at compile time.
///
/// Impala's `range`/`unroll`/`tile`/`combine` become constexpr function
/// templates taking the loop body as a callable; `unroll` really unrolls
/// (via template recursion over an index sequence), `combine` builds a 2-D
/// generator from two 1-D generators, and `tile2d` sets up a tiled loop
/// nest — all of it folding to the plain nested loops after inlining,
/// exactly the residual program the paper's partial evaluator produces.

#include <utility>

#include "core/macros.hpp"
#include "core/types.hpp"

namespace anyseq::stage {

/// Dynamic loop [a, b) — the paper's `range`.  Never unrolled.
template <class Body>
ANYSEQ_INLINE void range(index_t a, index_t b, Body&& body) {
  for (index_t i = a; i < b; ++i) body(i);
}

namespace detail {
template <class Body, std::size_t... Is>
ANYSEQ_INLINE void unroll_impl(index_t base, Body&& body,
                               std::index_sequence<Is...>) {
  (body(base + static_cast<index_t>(Is)), ...);
}
}  // namespace detail

/// Fully unrolled loop of compile-time length N starting at `base` —
/// the paper's `unroll(a, b)` with both bounds static.
template <index_t N, class Body>
ANYSEQ_INLINE void unroll(index_t base, Body&& body) {
  detail::unroll_impl(base, std::forward<Body>(body),
                      std::make_index_sequence<static_cast<std::size_t>(N)>{});
}

/// Strip-mined loop: [a, b) in chunks of compile-time width W; the body of
/// each full chunk is unrolled, the remainder runs dynamically.  This is
/// the scalar skeleton the SIMD backend replaces with vector instructions.
template <index_t W, class Body>
ANYSEQ_INLINE void strip(index_t a, index_t b, Body&& body) {
  index_t i = a;
  for (; i + W <= b; i += W) unroll<W>(i, body);
  for (; i < b; ++i) body(i);
}

/// A 1-D generator is any callable `(a, b, body)`.  `combine` composes two
/// of them into a 2-D generator — the paper's
/// `let c = combine(range, unroll)` idiom.
template <class Outer, class Inner>
[[nodiscard]] constexpr auto combine(Outer outer, Inner inner) {
  return [outer, inner](index_t y0, index_t y1, index_t x0, index_t x1,
                        auto&& body) {
    outer(y0, y1, [&](index_t y) {
      inner(x0, x1, [&](index_t x) { body(y, x); });
    });
  };
}

/// Tiled 2-D loop nest (the paper's `tile`): iterates tiles of
/// `th x tw`, invoking `tile_body(ty, tx, y0, y1, x0, x1)` with the
/// clipped tile extents.  Tile traversal order is row-major here; wavefront
/// traversal lives in parallel/wavefront.hpp where dependencies matter.
template <class TileBody>
ANYSEQ_INLINE void tile2d(index_t rows, index_t cols, index_t th, index_t tw,
                          TileBody&& tile_body) {
  ANYSEQ_ASSERT(th > 0 && tw > 0, "tile extents must be positive");
  const index_t tiles_y = (rows + th - 1) / th;
  const index_t tiles_x = (cols + tw - 1) / tw;
  for (index_t ty = 0; ty < tiles_y; ++ty) {
    const index_t y0 = ty * th;
    const index_t y1 = y0 + th < rows ? y0 + th : rows;
    for (index_t tx = 0; tx < tiles_x; ++tx) {
      const index_t x0 = tx * tw;
      const index_t x1 = x0 + tw < cols ? x0 + tw : cols;
      tile_body(ty, tx, y0, y1, x0, x1);
    }
  }
}

/// Anti-diagonal traversal of a tiles_y x tiles_x grid: invokes
/// `body(ty, tx)` for every tile, diagonal-by-diagonal.  Tiles on one
/// diagonal are mutually independent under the DP dependency structure
/// (paper Fig. 2) — the static-wavefront schedulers iterate this order.
template <class Body>
ANYSEQ_INLINE void antidiagonals(index_t tiles_y, index_t tiles_x, Body&& body) {
  for (index_t d = 0; d < tiles_y + tiles_x - 1; ++d) {
    const index_t ty_lo = d < tiles_x ? 0 : d - tiles_x + 1;
    const index_t ty_hi = d < tiles_y ? d : tiles_y - 1;
    for (index_t ty = ty_lo; ty <= ty_hi; ++ty) body(ty, d - ty);
  }
}

/// Number of tiles covering `n` elements at tile size `t`.
[[nodiscard]] constexpr index_t tile_count(index_t n, index_t t) noexcept {
  return (n + t - 1) / t;
}

}  // namespace anyseq::stage
