#!/usr/bin/env bash
# Symbol audit for the per-variant engine namespaces (docs/DESIGN.md §5).
#
# Scans the demangled symbol table of libanyseq.a and fails if the
# namespace-clone isolation is broken anywhere:
#
#   1. `anyseq::v_avx2::*` symbols may be defined only by the object
#      compiled with the AVX2 flags (engines_avx2.cpp.o); likewise
#      `anyseq::v_avx512::*` / engines_avx512.cpp.o.  This is what makes
#      COMDAT sharing across differently-flagged TUs impossible: no other
#      TU can even emit a colliding name.
#   2. The variant objects must not emit another variant's namespace
#      (e.g. v_scalar code inside the -mavx512bw TU).
#   3. Every lane-dependent engine template symbol in the library must
#      resolve inside exactly one `anyseq::v_*` namespace — an
#      un-namespaced copy means a header leaked out of the per-target set
#      and is again linkable against ISA-flagged code.
#   4. The ISA-flagged TUs may emit NO weak `anyseq::` symbol outside
#      their variant namespace beyond a pinned allowlist of loop-free
#      special members of the shared boundary types (alignment_result /
#      score_result members, exception dtors + vtables + typeinfo) —
#      these cross the `ops` dispatch boundary by design and contain no
#      DP code; baseline-objects-first archive order in
#      src/CMakeLists.txt is kept as defense-in-depth for them.  Any NEW
#      shared-name weak symbol (a header drifting out of the per-target
#      set, a std:: container of a new shared type with real loops)
#      fails the audit here.
#
# Usage: check_symbol_isolation.sh <path/to/libanyseq.a>
#        check_symbol_isolation.sh --self-test
# Honors $NM (default: nm).
#
# --self-test feeds the audit two synthetic symbol tables: a clean one
# that must pass, and one with a deliberately-misplaced engine symbol (a
# per-target `workspace` method emitted un-namespaced, weak, by the AVX2
# TU — exactly what a header escaping the per-target set would produce)
# that must fail.  This keeps the audit itself honest: a regex edit that
# silently stops matching cannot go unnoticed.

set -euo pipefail

NM="${NM:-nm}"

# Lane-dependent engine templates — the per-target header surface.
# `workspace::` covers the plan/execute arena (core/workspace.hpp): its
# carve/frame/builder-pool members and nested classes all demangle with
# a `workspace::` component.
ENGINE_RE='tiled_engine|batch_engine|tiled_hirschberg_align|tiled_last_row|relax_tile_scalar|relax_tile_block|block_scratch|border_lattice|tile_geometry|rolling_score|nw_last_row|full_engine|full_align|hirschberg_engine|serial_last_row|hirschberg_align|traceback_walk|alignment_builder|banded_global|locate_align|extension_border_score|workspace::|carve_bytes|rolling_plan_bytes|simd::pack|mpmc_queue|treiber_stack|dep_tracker|dynamic_wavefront|static_wavefront|bitpar_edit_distance|bitpar_plan_bytes|narrow_chunk|ragged_chunk'

# Loop-free special members of the shared ops-boundary types (rule 4).
ALLOWED_SHARED_RE='anyseq::(alignment_result|score_result)::|typeinfo (for|name for) anyseq::|vtable for anyseq::|anyseq::(error|invalid_argument_error|unsupported_backend_error|parse_error)::~|std::vector<anyseq::(alignment_result|score_result).*>::~?vector'

# The audit proper: reads a demangled `nm` listing on stdin.
audit() {
  awk -v engine_re="$ENGINE_RE" -v allowed_re="$ALLOWED_SHARED_RE" '
  /\.o:$/ {
    member = $0
    sub(/:$/, "", member)
    sub(/^.*\//, "", member)
    next
  }
  # Defined symbols only: address, one-letter type that is not U/N/w-undef.
  /^[0-9a-fA-F]+ [TtWwVvuBbDdRrGgSs] / {
    type = $2
    name = $0
    sub(/^[0-9a-fA-F]+ [A-Za-z] /, "", name)

    in_avx2   = index(name, "anyseq::v_avx2::")   > 0
    in_avx512 = index(name, "anyseq::v_avx512::") > 0
    in_scalar = index(name, "anyseq::v_scalar::") > 0

    # Rule 1: a variant namespace is emitted only by its own TU.
    if (in_avx2 && member != "engines_avx2.cpp.o") {
      printf "VIOLATION [%s]: v_avx2 symbol outside its TU: %s\n", member, name
      bad++
    }
    if (in_avx512 && member != "engines_avx512.cpp.o") {
      printf "VIOLATION [%s]: v_avx512 symbol outside its TU: %s\n", member, name
      bad++
    }

    # Rule 2: the ISA-flagged TUs emit no foreign-variant symbols.
    if (member == "engines_avx2.cpp.o" && (in_scalar || in_avx512)) {
      printf "VIOLATION [%s]: foreign variant symbol: %s\n", member, name
      bad++
    }
    if (member == "engines_avx512.cpp.o" && (in_scalar || in_avx2)) {
      printf "VIOLATION [%s]: foreign variant symbol: %s\n", member, name
      bad++
    }
    if (member == "engines_scalar.cpp.o" && (in_avx2 || in_avx512)) {
      printf "VIOLATION [%s]: foreign variant symbol: %s\n", member, name
      bad++
    }

    # Rule 3: engine templates live in a variant namespace, nowhere else.
    if (name ~ ("anyseq::.*(" engine_re ")") && \
        !(in_scalar || in_avx2 || in_avx512)) {
      printf "VIOLATION [%s]: engine symbol outside anyseq::v_*: %s\n", \
             member, name
      bad++
    }

    # Rule 4: ISA-flagged TUs emit no weak shared-name anyseq:: symbol
    # beyond the pinned loop-free allowlist.
    if ((member == "engines_avx2.cpp.o" || member == "engines_avx512.cpp.o") \
        && (type == "W" || type == "w" || type == "V" || type == "v") \
        && index(name, "anyseq::") > 0 \
        && !(in_scalar || in_avx2 || in_avx512) \
        && name !~ allowed_re) {
      printf "VIOLATION [%s]: unexpected shared weak symbol: %s\n", \
             member, name
      bad++
    }

    if (in_avx2) n_avx2++
    if (in_avx512) n_avx512++
    if (in_scalar) n_scalar++
    total++
  }
  END {
    printf "symbol audit: %d defined symbols (%d v_scalar, %d v_avx2, %d v_avx512)\n", \
           total, n_scalar, n_avx2, n_avx512
    if (n_avx2 == 0 || n_avx512 == 0 || n_scalar == 0) {
      print "VIOLATION: a variant namespace is empty - audit regex or build broken"
      bad++
    }
    if (bad > 0) {
      printf "symbol audit FAILED: %d violation(s)\n", bad
      exit 1
    }
    print "symbol audit OK: every engine symbol is confined to its variant namespace"
  }
'
}

# Minimal healthy listing: one symbol per variant in its own TU.
clean_listing() {
  cat <<'EOF'
engines_scalar.cpp.o:
0000000000000000 W anyseq::v_scalar::tiled::tiled_engine<(anyseq::align_kind)0, anyseq::linear_gap, anyseq::simple_scoring, 1>::score()
0000000000000010 W anyseq::v_scalar::workspace::begin_pass()
engines_avx2.cpp.o:
0000000000000000 W anyseq::v_avx2::tiled::tiled_engine<(anyseq::align_kind)0, anyseq::linear_gap, anyseq::simple_scoring, 16>::score()
0000000000000010 W anyseq::v_avx2::workspace::begin_pass()
engines_avx512.cpp.o:
0000000000000000 W anyseq::v_avx512::tiled::tiled_engine<(anyseq::align_kind)0, anyseq::linear_gap, anyseq::simple_scoring, 32>::score()
0000000000000010 W anyseq::v_avx512::workspace::begin_pass()
EOF
}

self_test() {
  echo "audit self-test: clean listing must pass"
  if ! clean_listing | audit; then
    echo "audit SELF-TEST FAILED: clean listing was rejected" >&2
    exit 1
  fi

  echo "audit self-test: misplaced inline engine symbol must fail"
  # A per-target workspace method emitted OUTSIDE any anyseq::v_*
  # namespace, weak, by the AVX2 TU — the signature of an inline
  # definition leaking from the per-target header set into shared code.
  if { clean_listing; cat <<'EOF'
engines_avx2.cpp.o:
0000000000000020 W anyseq::workspace::begin_pass()
EOF
  } | audit; then
    echo "audit SELF-TEST FAILED: misplaced engine symbol was NOT caught" >&2
    exit 1
  fi
  echo "audit self-test OK: violations are detected, clean tables pass"
}

if [ "${1:-}" = "--self-test" ]; then
  self_test
  exit 0
fi

LIB="${1:?usage: check_symbol_isolation.sh <libanyseq.a> | --self-test}"

if [ ! -f "$LIB" ]; then
  echo "symbol audit: archive not found: $LIB" >&2
  exit 2
fi

"$NM" -C "$LIB" | audit
