#!/usr/bin/env python3
"""Validate the serving tier's observability artifacts.

Two checks, each against the external format's actual grammar:

  * A trace dump must be a valid Chrome trace-event JSON document (the
    format Perfetto and chrome://tracing load): a ``traceEvents`` array
    of complete ("X") and instant ("i") events with the required keys,
    numeric non-negative timestamps, and span names from the documented
    taxonomy (docs/OBSERVABILITY.md).
  * A metrics dump must parse as Prometheus text exposition: every line
    a comment or a ``name{labels} value`` sample, every sample preceded
    by matching # HELP/# TYPE lines, histogram ``_bucket`` series
    cumulative with the ``+Inf`` bucket equal to ``_count``.

Usage:

    ./scripts/check_observability.py --trace trace.json --metrics m.prom
    ./scripts/check_observability.py --run ./build/examples/alignment_server

--run executes the given alignment_server binary with a small workload,
pointing --metrics-out/--trace-out at a temp directory, then validates
what it wrote (this is the CI mode).  Exits non-zero naming the first
problem found.
"""

import argparse
import json
import math
import os
import re
import subprocess
import sys
import tempfile

SPAN_NAMES = {
    "submit", "cache_probe", "ring_wait", "batch_collect",
    "workspace_wait", "kernel_execute", "exec_batch", "exec_solo",
    "complete",
}
INSTANT_NAMES = {
    "watchdog_restart", "brownout", "linger_adapt", "deadline_shed",
    "shed", "quarantine",
}

# Prometheus text exposition grammar (the subset the exporter emits:
# no timestamps, no escaped label values beyond what we never produce).
METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"'
SAMPLE_RE = re.compile(
    rf"^({METRIC_NAME})(?:\{{({LABEL}(?:,{LABEL})*)\}})? "
    r"(-?(?:[0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?|\+?Inf|NaN))$")
HELP_RE = re.compile(rf"^# HELP ({METRIC_NAME}) .+$")
TYPE_RE = re.compile(
    rf"^# TYPE ({METRIC_NAME}) (counter|gauge|histogram|summary|untyped)$")


def fail(msg):
    print(f"check_observability: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not valid JSON: {e}")

    if not isinstance(doc, dict):
        fail(f"{path}: top level must be an object")
    other = doc.get("otherData")
    if not isinstance(other, dict) or "dropped" not in other:
        fail(f"{path}: missing otherData.dropped")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: traceEvents must be an array")

    enabled = other.get("enabled", 1)
    if enabled and not events:
        fail(f"{path}: tracing enabled but no events captured")

    for i, ev in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(f"{where}: not an object")
        for key in ("name", "cat", "ph", "ts", "pid", "tid"):
            if key not in ev:
                fail(f"{where}: missing key {key!r}")
        ph = ev["ph"]
        if ph == "X":
            if ev["name"] not in SPAN_NAMES:
                fail(f"{where}: unknown span name {ev['name']!r}")
            if "dur" not in ev:
                fail(f"{where}: complete event missing 'dur'")
            if not isinstance(ev["dur"], (int, float)) or ev["dur"] < 0:
                fail(f"{where}: bad dur {ev['dur']!r}")
        elif ph == "i":
            if ev["name"] not in INSTANT_NAMES:
                fail(f"{where}: unknown instant name {ev['name']!r}")
            if ev.get("s") not in ("g", "p", "t"):
                fail(f"{where}: instant missing scope 's'")
        else:
            fail(f"{where}: unexpected phase {ph!r}")
        if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
            fail(f"{where}: bad ts {ev['ts']!r}")

    print(f"check_observability: trace OK "
          f"({len(events)} events, {other['dropped']} dropped, {path})")


def parse_value(s):
    if s in ("Inf", "+Inf"):
        return math.inf
    if s == "NaN":
        return math.nan
    return float(s)


def check_metrics(path):
    try:
        with open(path) as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"{path}: {e}")

    helped, typed = set(), {}
    # (metric, labels-sans-le) -> list of (le, value) in emission order.
    buckets = {}
    samples = {}  # full sample line key -> value
    n_samples = 0

    for ln, line in enumerate(lines, 1):
        where = f"{path}:{ln}"
        if line == "":
            continue
        if line.startswith("#"):
            if m := HELP_RE.match(line):
                helped.add(m.group(1))
            elif m := TYPE_RE.match(line):
                typed[m.group(1)] = m.group(2)
            else:
                fail(f"{where}: malformed comment line: {line!r}")
            continue
        m = SAMPLE_RE.match(line)
        if m is None:
            fail(f"{where}: not a valid sample line: {line!r}")
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        n_samples += 1

        # Every sample's family must have been declared.  Histogram
        # child series (_bucket/_sum/_count) belong to the base family.
        family = re.sub(r"_(bucket|sum|count)$", "", name) \
            if typed.get(re.sub(r"_(bucket|sum|count)$", "", name)) \
            == "histogram" else name
        if family not in helped or family not in typed:
            fail(f"{where}: sample for undeclared family {family!r}")

        if name.endswith("_bucket") and typed.get(family) == "histogram":
            pairs = [p for p in labels.split(",") if p]
            le = [p for p in pairs if p.startswith('le="')]
            if len(le) != 1:
                fail(f"{where}: histogram bucket without exactly one le")
            rest = ",".join(p for p in pairs if not p.startswith('le="'))
            buckets.setdefault((family, rest), []).append(
                (parse_value(le[0][4:-1]), parse_value(value)))
        else:
            samples[(name, labels)] = parse_value(value)

    if n_samples == 0:
        fail(f"{path}: no samples at all")
    if not any(k[0].startswith("anyseq_") for k in samples):
        fail(f"{path}: no anyseq_ metrics present")

    for (family, labels), series in buckets.items():
        where = f"{path}: {family}{{{labels}}}"
        les = [le for le, _ in series]
        if les != sorted(les):
            fail(f"{where}: bucket le edges not increasing")
        if les[-1] != math.inf:
            fail(f"{where}: missing +Inf bucket")
        counts = [v for _, v in series]
        if counts != sorted(counts):
            fail(f"{where}: bucket counts not cumulative")
        count_key = (f"{family}_count", labels)
        if count_key not in samples:
            fail(f"{where}: missing {family}_count")
        if counts[-1] != samples[count_key]:
            fail(f"{where}: +Inf bucket {counts[-1]} != _count "
                 f"{samples[count_key]}")
        if (f"{family}_sum", labels) not in samples:
            fail(f"{where}: missing {family}_sum")

    print(f"check_observability: metrics OK "
          f"({n_samples} samples, {len(buckets)} histogram series, {path})")


def run_server(binary):
    tmp = tempfile.mkdtemp(prefix="anyseq_obs_")
    metrics = os.path.join(tmp, "metrics.prom")
    trace = os.path.join(tmp, "trace.json")
    cmd = [binary, "400", "2", "2",
           "--metrics-out", metrics, "--trace-out", trace]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=600)
    except (OSError, subprocess.TimeoutExpired) as e:
        fail(f"{' '.join(cmd)}: {e}")
    if proc.returncode != 0:
        fail(f"{' '.join(cmd)}: exit {proc.returncode}\n{proc.stderr}")
    sys.stdout.write(proc.stdout)
    return metrics, trace


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", help="Chrome trace-event JSON to validate")
    ap.add_argument("--metrics", help="Prometheus exposition to validate")
    ap.add_argument("--run", metavar="ALIGNMENT_SERVER",
                    help="run this binary and validate what it dumps")
    args = ap.parse_args()
    if args.run:
        metrics, trace = run_server(args.run)
        check_metrics(metrics)
        check_trace(trace)
    elif args.trace or args.metrics:
        if args.metrics:
            check_metrics(args.metrics)
        if args.trace:
            check_trace(args.trace)
    else:
        ap.error("nothing to do: pass --run, --trace, or --metrics")
    print("check_observability: OK")


if __name__ == "__main__":
    main()
