#!/usr/bin/env python3
"""Sanity-check a BENCH_serving.json produced by serving_bench.

Asserts the document parses as JSON, carries the serving bench's meta
fields, and contains every expected measurement row with the keys the
perf-trajectory tooling reads (median_ns / iterations / repetitions plus
the row's derived metric).  Run from CI right after the bench:

    ./build/bench/serving_bench --quick --repeats 1 --out BENCH_serving.json
    ./scripts/check_bench_serving.py BENCH_serving.json

Exits non-zero with a message naming the first problem found.
"""

import json
import sys

EXPECTED_META = ["bench", "cpu", "cores", "requests",
                 "deadline_expired", "quarantined"]

# row name -> extra keys that must ride along with the standard triple.
EXPECTED_ROWS = {
    "hit_rate_0": ["requests_per_s", "hit_rate"],
    "hit_rate_50": ["requests_per_s", "hit_rate"],
    "hit_rate_95": ["requests_per_s", "hit_rate"],
    "hit_rate_0_deadline": ["requests_per_s", "overhead_vs_plain"],
    "hit_rate_0_tracing": ["requests_per_s", "overhead_vs_plain"],
    "hit_rate_0_ragged": ["requests_per_s", "simd_pair_fraction",
                          "ragged_pair_fraction"],
    "shards_1": ["requests_per_s", "shards", "scaling_vs_1"],
    "shards_2": ["requests_per_s", "shards", "scaling_vs_1"],
    "shards_4": ["requests_per_s", "shards", "scaling_vs_1"],
    "linger_fixed": ["interactive_p99_us"],
    "linger_adaptive": ["interactive_p99_us"],
}

STANDARD_KEYS = ["median_ns", "iterations", "repetitions"]


def fail(msg):
    print(f"check_bench_serving: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} BENCH_serving.json")
    path = sys.argv[1]
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    for key in EXPECTED_META:
        if key not in doc:
            fail(f"missing meta key {key!r}")
    if doc["bench"] != "serving":
        fail(f"bench is {doc['bench']!r}, expected 'serving'")

    rows = {r.get("name"): r for r in doc.get("runs", [])}
    for name, extra in EXPECTED_ROWS.items():
        if name not in rows:
            fail(f"missing row {name!r} (have: {sorted(rows)})")
        row = rows[name]
        for key in STANDARD_KEYS + extra:
            if key not in row:
                fail(f"row {name!r} missing key {key!r}")
            if not isinstance(row[key], (int, float)):
                fail(f"row {name!r} key {key!r} is not numeric: {row[key]!r}")
        if row["median_ns"] <= 0:
            fail(f"row {name!r} has non-positive median_ns")

    hits = [rows[f"hit_rate_{p}"]["hit_rate"] for p in (0, 50, 95)]
    if not (hits[0] <= hits[1] <= hits[2]):
        fail(f"hit rates not monotone across the sweep: {hits}")

    # Lifecycle tracing must stay cheap: overhead_vs_plain is the ratio
    # of untraced to traced throughput on the same stream.  The release
    # target is <= 1.05; the CI bound is generous because shared runners
    # are noisy, but a ratio past 1.5 means recording stopped being a
    # clock read plus a ring store.
    tracing = rows["hit_rate_0_tracing"]["overhead_vs_plain"]
    if not 0.5 <= tracing <= 1.5:
        fail(f"tracing overhead_vs_plain out of bounds: {tracing}")

    # Mixed-length (ragged) cache-cold traffic must stay on SIMD lanes.
    # Fractions are of pairs routed through the batch score engine; on a
    # vector target the lane-padding kernel must have fired (ragged > 0)
    # and carried a healthy share of pairs.  The fraction is bounded by
    # batch occupancy (tails shorter than a vector go scalar), which on
    # a loaded single-core runner can sit near ~0.5, so the CI floor is
    # deliberately loose — 0 is the regression this guards against.  A
    # scalar-only host has one lane per vector, so padding never applies
    # and both checks relax.
    ragged = rows["hit_rate_0_ragged"]
    for key in ("simd_pair_fraction", "ragged_pair_fraction"):
        if not 0.0 <= ragged[key] <= 1.0:
            fail(f"hit_rate_0_ragged {key} out of [0, 1]: {ragged[key]}")
    if doc.get("dispatched") != "scalar":
        if ragged["ragged_pair_fraction"] <= 0.0:
            fail("hit_rate_0_ragged: lane-padding kernel never fired on a "
                 f"vector target ({doc.get('dispatched')})")
        if ragged["simd_pair_fraction"] < 0.25:
            fail("hit_rate_0_ragged: simd_pair_fraction "
                 f"{ragged['simd_pair_fraction']} < 0.25 on a vector target")

    # The robustness counters were exercised by the bench: both paths
    # must have fired at least once for the meta to mean anything.
    for key in ("deadline_expired", "quarantined"):
        if not isinstance(doc[key], int) or doc[key] <= 0:
            fail(f"meta {key!r} should be a positive count, got {doc[key]!r}")

    print(f"check_bench_serving: OK ({len(rows)} rows, "
          f"{doc['cores']} cores, {doc['requests']} requests)")


if __name__ == "__main__":
    main()
