/// Table I reproduction: the six long genomic benchmark sequences.  The
/// real NCBI records are unavailable offline, so deterministic synthetic
/// surrogates are generated at --scale and verified for length, GC and
/// reproducibility (DESIGN.md §3).

#include "bench/harness.hpp"
#include "bio/datasets.hpp"

int main(int argc, char** argv) {
  using namespace anyseq;
  using namespace anyseq::bench;
  const auto a = args::parse(argc, argv, /*scale=*/512, /*pairs=*/0);

  std::printf("Table I: long genomic sequences (surrogates at 1/%llu)\n\n",
              static_cast<unsigned long long>(a.scale));
  std::printf("%-14s %12s %12s %7s %7s  %s\n", "Accession", "Length",
              "Surrogate", "GC", "GC got", "Definition");
  std::printf("--------------------------------------------------------------------------------\n");

  json_report report("table1", a.repeats);
  report.set_meta("scale", static_cast<long long>(a.scale));

  stopwatch sw;
  std::uint64_t surrogate_bp = 0;
  for (const auto& spec : bio::table1_specs()) {
    const auto s = bio::make_surrogate(spec, a.scale);
    const auto s2 = bio::make_surrogate(spec, a.scale);
    if (s.codes() != s2.codes()) {
      std::printf("ERROR: surrogate generation is not deterministic!\n");
      return 1;
    }
    surrogate_bp += static_cast<std::uint64_t>(s.size());
    std::printf("%-14s %12llu %12lld %7.3f %7.3f  %s\n", spec.accession,
                static_cast<unsigned long long>(spec.full_length),
                static_cast<long long>(s.size()), spec.gc, s.gc_content(),
                spec.definition);
  }
  // One timed row: generate-and-verify over the whole spec table (the
  // surrogate bp count is the iteration unit; a single pass, so
  // repetitions is 1 regardless of --repeats).
  report.add("surrogate_generation", sw.seconds(), surrogate_bp, {}, 1);

  std::printf("\nbenchmark pairs (as aligned in Fig. 5a):\n");
  for (const auto& pr : bio::table1_pairs()) {
    const auto& sa = bio::table1_specs()[static_cast<std::size_t>(pr.first)];
    const auto& sb = bio::table1_specs()[static_cast<std::size_t>(pr.second)];
    std::printf("  %-14s vs %-14s  (%s)\n", sa.accession, sb.accession,
                pr.label);
  }
  std::printf("\ngenerated and verified in %.2f s\n", sw.seconds());
  return report.write(a.out) ? 0 : 1;
}
