/// Figure 5a reproduction: pairwise alignment of long genomic sequences.
/// Four panels ({scores-only, traceback} x {linear, affine}), each
/// comparing AnySeq / SeqAn-like / Parasail-like on CPU variants plus the
/// simulated GPU (AnySeq vs NVBio-like) and FPGA backends.

#include <algorithm>

#include "baselines/libraries.hpp"
#include "bench/harness.hpp"
#include "bench/paper_values.hpp"
#include "bio/datasets.hpp"
#include "core/scoring.hpp"
#include "fpgasim/systolic.hpp"
#include "gpusim/gpu_engine.hpp"

namespace {

using namespace anyseq;
using namespace anyseq::bench;

constexpr simple_scoring kScoring{2, -1};
constexpr linear_gap kLinear{-1};
constexpr affine_gap kAffine{-2, -1};

struct panel_ctx {
  stage::seq_view a, b;
  int threads;
  int repeats;
  index_t tile;
  json_report* rep = nullptr;
  const char* tag = "";  ///< current panel, for the JSON row names
};

/// Record one measured row into the panel's JSON report.
void note(const panel_ctx& c, const std::string& name, double median_s,
          double row_gcups) {
  if (c.rep != nullptr)
    c.rep->add(std::string(c.tag) + "/" + name, median_s, 1,
               {{"gcups", row_gcups}});
}

/// AnySeq rows go through the public dispatcher so the measured code is
/// the *native* engine variant of the selected backend (anyseq::v_avx2 /
/// v_avx512), not a baseline-compiled re-instantiation.
template <class Gap>
align_options anyseq_opts(const panel_ctx& c, const Gap& gap, int lanes,
                          bool traceback) {
  align_options o = paper_opts(gap, backend_for_lanes(lanes), c.threads,
                               traceback);
  o.tile = c.tile;
  o.full_matrix_cells = 0;  // measure the tiled/Hirschberg engines
  return o;
}

template <int Lanes, class Gap>
double run_anyseq_scores(const panel_ctx& c, const Gap& gap) {
  const auto o = anyseq_opts(c, gap, Lanes, false);
  std::uint64_t cells = 0;
  const double t = median_seconds(c.repeats, [&] {
    cells = align(c.a, c.b, o).cells;
  });
  const double g = gcups(cells, t);
  note(c, std::string("anyseq/") + to_string(backend_for_lanes(Lanes)), t, g);
  return g;
}

template <int Lanes, class Gap>
double run_anyseq_tb(const panel_ctx& c, const Gap& gap) {
  const auto o = anyseq_opts(c, gap, Lanes, true);
  const double t = median_seconds(c.repeats, [&] {
    (void)align(c.a, c.b, o);
  });
  // GCUPS convention of the paper: the n*m problem per unit time (the
  // D&C's internal <= 2x cells are the method's cost, not extra credit).
  const double g =
      gcups(static_cast<std::uint64_t>(c.a.size()) * c.b.size(), t);
  note(c, std::string("anyseq/") + to_string(backend_for_lanes(Lanes)), t, g);
  return g;
}

template <int Lanes, class Gap>
double run_seqan_scores(const panel_ctx& c, const Gap& gap) {
  baselines::seqan_like<align_kind::global, Lanes> eng(
      2, -1, gap, {c.threads, c.tile});
  std::uint64_t cells = 0;
  const double t =
      median_seconds(c.repeats, [&] { cells = eng.score(c.a, c.b).cells; });
  const double g = gcups(cells, t);
  note(c, std::string("seqan/") + to_string(backend_for_lanes(Lanes)), t, g);
  return g;
}

template <int Lanes, class Gap>
double run_seqan_tb(const panel_ctx& c, const Gap& gap) {
  baselines::seqan_like<align_kind::global, Lanes> eng(
      2, -1, gap, {c.threads, c.tile});
  const double t =
      median_seconds(c.repeats, [&] { (void)eng.align(c.a, c.b); });
  const double g =
      gcups(static_cast<std::uint64_t>(c.a.size()) * c.b.size(), t);
  note(c, std::string("seqan/") + to_string(backend_for_lanes(Lanes)), t, g);
  return g;
}

template <int Lanes, class Gap>
double run_parasail(const panel_ctx& c, const Gap& gap, bool traceback) {
  baselines::parasail_like<align_kind::global, Lanes> eng(
      2, -1, gap, {c.threads, c.tile});
  const double t = median_seconds(c.repeats, [&] {
    if (traceback)
      (void)eng.align(c.a, c.b);
    else
      (void)eng.score(c.a, c.b);
  });
  const double g =
      gcups(static_cast<std::uint64_t>(c.a.size()) * c.b.size(), t);
  note(c, std::string("parasail/") + to_string(backend_for_lanes(Lanes)), t,
       g);
  return g;
}

template <class Gap>
double run_gpu_anyseq(const panel_ctx& c, const Gap& gap, bool traceback) {
  double g = 0.0;
  const double t = median_seconds(c.repeats, [&] {
    gpusim::device dev;  // fresh counters per run
    gpusim::gpu_engine<align_kind::global, Gap, simple_scoring> eng(
        dev, gap, kScoring);
    if (traceback)
      (void)eng.align(c.a, c.b);
    else
      (void)eng.score(c.a, c.b);
    g = gpusim::estimate(dev.counters(), gpusim::gpu_model{}).gcups;
  });
  note(c, "anyseq/gpu_sim", t, g);
  return g;
}

template <class Gap>
double run_gpu_nvbio(const panel_ctx& c, const Gap& gap, bool traceback) {
  double g = 0.0;
  const double t = median_seconds(c.repeats, [&] {
    gpusim::device dev;  // fresh counters per run
    baselines::nvbio_like<align_kind::global, Gap> eng(dev, 2, -1, gap);
    if (traceback)
      (void)eng.align(c.a, c.b);
    else
      (void)eng.score(c.a, c.b);
    g = eng.estimate().gcups;
  });
  note(c, "nvbio/gpu_sim", t, g);
  return g;
}

template <class Gap>
double run_fpga(const panel_ctx& c, const Gap& gap) {
  double g = 0.0;
  const double t = median_seconds(c.repeats, [&] {
    g = fpgasim::systolic_score<align_kind::global>(c.a, c.b, gap, kScoring)
            .gcups;
  });
  note(c, "anyseq/fpga_sim", t, g);
  return g;
}

template <class Gap>
void panel(const char* title, const panel_ctx& c, const Gap& gap,
           bool traceback, const double anyseq_ref[3],
           const double seqan_ref[3], const double parasail_ref[3],
           double gpu_anyseq_ref, double gpu_nvbio_ref, double fpga_ref) {
  print_header(title, "Table I surrogate pair (scaled)");
  auto run_cpu = [&](auto lanes, int idx, const char* variant) {
    constexpr int L = decltype(lanes)::value;
    if (lanes_runnable_now(L)) {
      print_row({"AnySeq", variant,
                 traceback ? run_anyseq_tb<L>(c, gap)
                           : run_anyseq_scores<L>(c, gap),
                 anyseq_ref[idx], ""});
    } else {
      print_row({"AnySeq", variant, 0.0, anyseq_ref[idx],
                 "skipped: CPU cannot run this variant"});
    }
    print_row({"SeqAn-like", variant,
               traceback ? run_seqan_tb<L>(c, gap)
                         : run_seqan_scores<L>(c, gap),
               seqan_ref[idx], "always-affine machinery"});
    if (parasail_ref != nullptr)
      print_row({"Parasail-like", variant, run_parasail<L>(c, gap, traceback),
                 parasail_ref[idx], "static wavefront"});
  };
  run_cpu(std::integral_constant<int, 1>{}, 0, "CPU");
  run_cpu(std::integral_constant<int, 16>{}, 1, "AVX2");
  run_cpu(std::integral_constant<int, 32>{}, 2, "AVX512");
  print_row({"AnySeq", "TitanV-sim", run_gpu_anyseq(c, gap, traceback),
             gpu_anyseq_ref, "analytic model (DESIGN.md)"});
  print_row({"NVBio-like", "TitanV-sim", run_gpu_nvbio(c, gap, traceback),
             gpu_nvbio_ref, "analytic model"});
  if (!traceback && fpga_ref > 0)
    print_row({"AnySeq", "ZCU104-sim", run_fpga(c, gap), fpga_ref,
               "systolic array sim"});
  print_footer();
}

}  // namespace

int main(int argc, char** argv) {
  const auto a = args::parse(argc, argv, /*scale=*/512, /*pairs=*/0);
  std::printf("bench_fig5a_long_genomes: scale 1/%llu, %d threads\n",
              static_cast<unsigned long long>(a.scale), a.threads);

  const auto pr = bio::make_pair(0, a.scale);
  std::printf("pair: %s (%lld bp) vs %s (%lld bp)\n", pr.a.name().c_str(),
              static_cast<long long>(pr.a.size()), pr.b.name().c_str(),
              static_cast<long long>(pr.b.size()));

  json_report report("fig5a", a.repeats);
  report.set_meta("scale", static_cast<long long>(a.scale));
  report.set_meta("threads", static_cast<long long>(a.threads));
  report.set_meta("q_len", static_cast<long long>(pr.a.size()));
  report.set_meta("s_len", static_cast<long long>(pr.b.size()));

  panel_ctx c{pr.a.view(), pr.b.view(), a.threads, a.repeats, 128,
              &report, ""};

  using namespace anyseq::bench::paper;
  c.tag = "scores_linear";
  panel("Fig. 5a panel 1: scores only, linear gaps", c, kLinear, false,
        fig5a_scores_linear_anyseq, fig5a_scores_linear_seqan,
        fig5a_scores_linear_parasail, fig5a_scores_linear_gpu_anyseq,
        fig5a_scores_linear_gpu_nvbio, fig5a_scores_linear_fpga);
  c.tag = "tb_linear";
  panel("Fig. 5a panel 2: traceback, linear gaps", c, kLinear, true,
        fig5a_tb_linear_anyseq, fig5a_tb_linear_seqan,
        fig5a_tb_linear_parasail, fig5a_tb_linear_gpu_anyseq,
        fig5a_tb_linear_gpu_nvbio, -1);
  c.tag = "scores_affine";
  panel("Fig. 5a panel 3: scores only, affine gaps", c, kAffine, false,
        fig5a_scores_affine_anyseq, fig5a_scores_affine_seqan,
        fig5a_scores_affine_parasail, fig5a_scores_affine_gpu_anyseq,
        fig5a_scores_affine_gpu_nvbio, fig5a_scores_affine_fpga);
  c.tag = "tb_affine";
  panel("Fig. 5a panel 4: traceback, affine gaps", c, kAffine, true,
        fig5a_tb_affine_anyseq, fig5a_tb_affine_seqan,
        fig5a_tb_affine_parasail, fig5a_tb_affine_gpu_anyseq,
        fig5a_tb_affine_gpu_nvbio, -1);
  return report.write(a.out) ? 0 : 1;
}
