/// Google-benchmark micro-benchmarks of the hot kernels: the relaxation
/// itself (scalar and pack-typed), the scalar tile kernel, the SIMD
/// block, and the batch engine's inner loop.  These are the numbers a
/// performance engineer watches while tuning; the figure-level benches
/// build on them.

#include <benchmark/benchmark.h>

#include "bio/random.hpp"
#include "bio/read_sim.hpp"
#include "core/scoring.hpp"
#include "core/full_engine.hpp"
#include "core/rolling.hpp"
#include "simd/pack.hpp"
#include "tiled/batch_engine.hpp"
#include "tiled/tiled_engine.hpp"

namespace {

using namespace anyseq;

constexpr simple_scoring kScoring{2, -1};
constexpr linear_gap kLinear{-1};
constexpr affine_gap kAffine{-2, -1};

bio::sequence make_seq(index_t n, std::uint64_t seed) {
  bio::genome_params p;
  p.length = n;
  p.repeat_rate = 0;
  p.seed = seed;
  return bio::random_genome("s", p);
}

void BM_RollingScoreLinear(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const auto q = make_seq(n, 1), s = make_seq(n, 2);
  for (auto _ : state) {
    auto r = rolling_score<align_kind::global>(q.view(), s.view(), kLinear,
                                               kScoring);
    benchmark::DoNotOptimize(r.score);
  }
  state.counters["GCUPS"] = benchmark::Counter(
      static_cast<double>(n) * n * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RollingScoreLinear)->Arg(512)->Arg(2048);

void BM_RollingScoreAffine(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const auto q = make_seq(n, 3), s = make_seq(n, 4);
  for (auto _ : state) {
    auto r = rolling_score<align_kind::global>(q.view(), s.view(), kAffine,
                                               kScoring);
    benchmark::DoNotOptimize(r.score);
  }
  state.counters["GCUPS"] = benchmark::Counter(
      static_cast<double>(n) * n * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RollingScoreAffine)->Arg(512)->Arg(2048);

template <int Lanes>
void BM_TiledScore(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const auto q = make_seq(n, 5), s = make_seq(n, 6);
  tiled::tiled_engine<align_kind::global, affine_gap, simple_scoring, Lanes>
      eng(kAffine, kScoring, {256, 256, 1, true});
  for (auto _ : state) {
    auto r = eng.score(q.view(), s.view());
    benchmark::DoNotOptimize(r.score);
  }
  state.counters["GCUPS"] = benchmark::Counter(
      static_cast<double>(n) * n * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TiledScore<1>)->Arg(4096)->Name("BM_TiledScoreScalar");
BENCHMARK(BM_TiledScore<16>)->Arg(4096)->Name("BM_TiledScoreSimd16");
BENCHMARK(BM_TiledScore<32>)->Arg(4096)->Name("BM_TiledScoreSimd32");

void BM_BatchReads(benchmark::State& state) {
  const auto ref = make_seq(100000, 7);
  const auto data = bio::simulate_read_pairs(ref, 512, {});
  std::vector<tiled::pair_view> pairs;
  for (const auto& p : data)
    pairs.push_back({p.first.view(), p.second.view()});
  tiled::batch_engine<align_kind::global, linear_gap, simple_scoring, 16>
      eng(kLinear, kScoring, {1});
  std::uint64_t cells = 0;
  for (const auto& p : pairs)
    cells += static_cast<std::uint64_t>(p.q.size()) * p.s.size();
  for (auto _ : state) {
    auto r = eng.scores(pairs);
    benchmark::DoNotOptimize(r.data());
  }
  state.counters["GCUPS"] = benchmark::Counter(
      static_cast<double>(cells) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchReads)->UseRealTime();

/// The adaptive-precision batch routes against BM_BatchReads'
/// auto-selected baseline: forced int16 (checked kernel, 150 bp reads),
/// forced int8 (checked kernel, 20 bp reads inside the int8 window), and
/// the Myers bit-parallel route on a unit-cost option set.
template <score_precision P>
void BM_BatchReadsNarrow(benchmark::State& state) {
  const auto ref = make_seq(100000, 7);
  bio::read_sim_params sp;
  sp.read_length = P == score_precision::int8 ? 20 : 150;
  const auto data = bio::simulate_read_pairs(ref, 512, sp);
  std::vector<tiled::pair_view> pairs;
  for (const auto& p : data)
    pairs.push_back({p.first.view(), p.second.view()});
  tiled::batch_engine<align_kind::global, linear_gap, simple_scoring, 16>
      eng(kLinear, kScoring, {1, P});
  std::uint64_t cells = 0;
  for (const auto& p : pairs)
    cells += static_cast<std::uint64_t>(p.q.size()) * p.s.size();
  for (auto _ : state) {
    auto r = eng.scores(pairs);
    benchmark::DoNotOptimize(r.data());
  }
  state.counters["GCUPS"] = benchmark::Counter(
      static_cast<double>(cells) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
  state.counters["escalated"] =
      static_cast<double>(eng.last_stats().escalated_pairs);
}
BENCHMARK(BM_BatchReadsNarrow<score_precision::int16>)
    ->UseRealTime()->Name("BM_BatchReadsInt16");
BENCHMARK(BM_BatchReadsNarrow<score_precision::int8>)
    ->UseRealTime()->Name("BM_BatchReadsInt8");

void BM_BatchReadsBitpar(benchmark::State& state) {
  const auto ref = make_seq(100000, 7);
  const auto data = bio::simulate_read_pairs(ref, 512, {});
  std::vector<tiled::pair_view> pairs;
  for (const auto& p : data)
    pairs.push_back({p.first.view(), p.second.view()});
  tiled::batch_engine<align_kind::global, linear_gap, simple_scoring, 16>
      eng(kLinear, simple_scoring{0, -1}, {1, score_precision::bitpar});
  std::uint64_t cells = 0;
  for (const auto& p : pairs)
    cells += static_cast<std::uint64_t>(p.q.size()) * p.s.size();
  for (auto _ : state) {
    auto r = eng.scores(pairs);
    benchmark::DoNotOptimize(r.data());
  }
  state.counters["GCUPS"] = benchmark::Counter(
      static_cast<double>(cells) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchReadsBitpar)->UseRealTime();

void BM_FullEngineWithTraceback(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const auto q = make_seq(n, 8), s = make_seq(n, 9);
  full_engine<align_kind::global, affine_gap, simple_scoring> eng(kAffine,
                                                                  kScoring);
  for (auto _ : state) {
    auto r = eng.align(q.view(), s.view(), true);
    benchmark::DoNotOptimize(r.score);
  }
  state.counters["GCUPS"] = benchmark::Counter(
      static_cast<double>(n) * n * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullEngineWithTraceback)->Arg(512);

void BM_Pack16Relax(benchmark::State& state) {
  using p16 = simd::pack<score16_t, 16>;
  prev_cells<p16> prev{p16::broadcast(10), p16::broadcast(8),
                       p16::broadcast(8), p16::broadcast(5),
                       p16::broadcast(5)};
  auto qc = p16::broadcast(1), sc = p16::broadcast(1);
  for (auto _ : state) {
    auto r = relax<align_kind::global, false, p16, p16, p16>(
        prev, qc, sc, kAffine, kScoring);
    benchmark::DoNotOptimize(r.h);
    prev.diag = r.h;  // serialize iterations
  }
  state.counters["cells/s"] = benchmark::Counter(
      16.0 * state.iterations(), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Pack16Relax);

}  // namespace

BENCHMARK_MAIN();
