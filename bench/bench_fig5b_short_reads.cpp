/// Figure 5b reproduction: pairwise alignment of simulated Illumina read
/// pairs (150 bp), four panels as in Fig. 5a.  The paper aligns 12.5M
/// pairs on a 32-core machine; the default here is a scaled-down batch
/// (--pairs to change).

#include "baselines/libraries.hpp"
#include "bench/harness.hpp"
#include "bench/paper_values.hpp"
#include "bio/random.hpp"
#include "bio/read_sim.hpp"
#include "core/scoring.hpp"
#include "gpusim/gpu_engine.hpp"
#include "tiled/batch_engine.hpp"

namespace {

using namespace anyseq;
using namespace anyseq::bench;

constexpr simple_scoring kScoring{2, -1};
constexpr linear_gap kLinear{-1};
constexpr affine_gap kAffine{-2, -1};

json_report* g_report = nullptr;   // set in main; rows named <tag>/<row>
const char* g_tag = "";
std::size_t g_pairs = 0;

void note(const std::string& row, double median_s, double row_gcups) {
  if (g_report != nullptr)
    g_report->add(std::string(g_tag) + "/" + row, median_s, g_pairs,
                  {{"gcups", row_gcups}});
}

std::uint64_t total_cells(std::span<const tiled::pair_view> pairs) {
  std::uint64_t c = 0;
  for (const auto& p : pairs)
    c += static_cast<std::uint64_t>(p.q.size()) * p.s.size();
  return c;
}

/// AnySeq rows go through the public dispatcher (align_batch) so the
/// measured batch kernels — score *and* traceback — are the native engine
/// variant of the selected backend (anyseq::v_avx2 / v_avx512).
template <int Lanes, class Gap>
double run_anyseq(std::span<const tiled::pair_view> pairs, const Gap& gap,
                  bool traceback, int threads, int repeats) {
  std::vector<seq_pair> jobs;
  jobs.reserve(pairs.size());
  for (const auto& p : pairs) jobs.push_back({p.q, p.s});
  const align_options o =
      paper_opts(gap, backend_for_lanes(Lanes), threads, traceback);
  const double t = median_seconds(repeats, [&] {
    (void)align_batch(jobs, o);
  });
  const double g = gcups(total_cells(pairs), t);
  note(std::string("anyseq/") + to_string(backend_for_lanes(Lanes)), t, g);
  return g;
}


template <int Lanes, class Gap>
double run_seqan(std::span<const tiled::pair_view> pairs, const Gap& gap,
                 bool traceback, int threads, int repeats) {
  baselines::seqan_like<align_kind::global, Lanes> eng(2, -1, gap,
                                                       {threads, 256});
  const double t = median_seconds(repeats, [&] {
    if (traceback)
      (void)eng.batch_align(pairs);
    else
      (void)eng.batch_scores(pairs);
  });
  const double g = gcups(total_cells(pairs), t);
  note(std::string("seqan/") + to_string(backend_for_lanes(Lanes)), t, g);
  return g;
}

template <class Gap>
double run_parasail(std::span<const tiled::pair_view> pairs, const Gap& gap,
                    bool traceback, int threads, int repeats) {
  baselines::parasail_like<align_kind::global, 16> eng(2, -1, gap,
                                                       {threads, 256});
  const double t = median_seconds(repeats, [&] {
    if (traceback)
      (void)eng.batch_align(pairs);
    else
      (void)eng.batch_scores(pairs);
  });
  const double g = gcups(total_cells(pairs), t);
  note("parasail/avx2", t, g);
  return g;
}

template <class Gap>
double run_gpu_anyseq(std::span<const tiled::pair_view> pairs,
                      const Gap& gap, bool traceback, int repeats) {
  double g = 0.0;
  const double t = median_seconds(repeats, [&] {
    gpusim::device dev;  // fresh counters per run
    gpusim::gpu_engine<align_kind::global, Gap, simple_scoring> eng(
        dev, gap, kScoring);
    (void)eng.batch(pairs, traceback);
    g = gpusim::estimate(dev.counters(), gpusim::gpu_model{}).gcups;
  });
  note("anyseq/gpu_sim", t, g);
  return g;
}

template <class Gap>
double run_gpu_nvbio(std::span<const tiled::pair_view> pairs, const Gap& gap,
                     bool traceback, int repeats) {
  double g = 0.0;
  const double t = median_seconds(repeats, [&] {
    gpusim::device dev;  // fresh counters per run
    baselines::nvbio_like<align_kind::global, Gap> eng(dev, 2, -1, gap);
    (void)eng.batch(pairs, traceback);
    g = eng.estimate().gcups;
  });
  note("nvbio/gpu_sim", t, g);
  return g;
}

template <class Gap>
void panel(const char* title, std::span<const tiled::pair_view> pairs,
           const Gap& gap, bool traceback, const args& a,
           const double anyseq_ref[3], const double seqan_ref[3],
           const double* parasail_ref, double gpu_anyseq_ref,
           double gpu_nvbio_ref) {
  print_header(title, "simulated Illumina 150 bp read pairs");
  print_row({"AnySeq", "CPU",
             run_anyseq<1>(pairs, gap, traceback, a.threads, a.repeats),
             anyseq_ref[0], ""});
  print_row({"SeqAn-like", "CPU",
             run_seqan<1>(pairs, gap, traceback, a.threads, a.repeats),
             seqan_ref[0], "always-affine machinery"});
  print_row({"AnySeq", "AVX2",
             lanes_runnable_now(16)
                 ? run_anyseq<16>(pairs, gap, traceback, a.threads, a.repeats)
                 : 0.0,
             anyseq_ref[1],
             lanes_runnable_now(16) ? "inter-sequence SIMD" : "skipped: no AVX2"});
  print_row({"SeqAn-like", "AVX2",
             run_seqan<16>(pairs, gap, traceback, a.threads, a.repeats),
             seqan_ref[1], ""});
  if (parasail_ref != nullptr)
    print_row({"Parasail-like", "AVX2",
               run_parasail(pairs, gap, traceback, a.threads, a.repeats),
               parasail_ref[1], "no inter-seq lanes"});
  print_row({"AnySeq", "AVX512",
             lanes_runnable_now(32)
                 ? run_anyseq<32>(pairs, gap, traceback, a.threads, a.repeats)
                 : 0.0,
             anyseq_ref[2], lanes_runnable_now(32) ? "" : "skipped: no AVX-512BW"});
  print_row({"SeqAn-like", "AVX512",
             run_seqan<32>(pairs, gap, traceback, a.threads, a.repeats),
             seqan_ref[2], ""});
  print_row({"AnySeq", "TitanV-sim",
             run_gpu_anyseq(pairs, gap, traceback, a.repeats),
             gpu_anyseq_ref, "analytic model"});
  print_row({"NVBio-like", "TitanV-sim",
             run_gpu_nvbio(pairs, gap, traceback, a.repeats),
             gpu_nvbio_ref, "analytic model"});
  print_footer();
}

}  // namespace

int main(int argc, char** argv) {
  const auto a = args::parse(argc, argv, /*scale=*/0, /*pairs=*/6000);
  std::printf("bench_fig5b_short_reads: %zu pairs of 150 bp, %d threads\n",
              a.pairs, a.threads);

  bio::genome_params gp;
  gp.length = 1 << 20;  // chr10 surrogate
  gp.seed = 10;
  const auto ref = bio::random_genome("GRCh38_chr10_surrogate", gp);
  const auto data = bio::simulate_read_pairs(ref, a.pairs, {});
  std::vector<tiled::pair_view> pairs;
  pairs.reserve(data.size());
  for (const auto& p : data)
    pairs.push_back({p.first.view(), p.second.view()});

  json_report report("fig5b", a.repeats);
  report.set_meta("pairs", static_cast<long long>(a.pairs));
  report.set_meta("threads", static_cast<long long>(a.threads));
  g_report = &report;
  g_pairs = a.pairs;

  using namespace anyseq::bench::paper;
  g_tag = "scores_linear";
  panel("Fig. 5b panel 1: scores only, linear gaps", pairs, kLinear, false,
        a, fig5b_scores_linear_anyseq, fig5b_scores_linear_seqan,
        fig5b_scores_linear_parasail, fig5b_scores_linear_gpu_anyseq,
        fig5b_scores_linear_gpu_nvbio);
  g_tag = "tb_linear";
  panel("Fig. 5b panel 2: traceback, linear gaps", pairs, kLinear, true, a,
        fig5b_tb_linear_anyseq, fig5b_tb_linear_seqan, nullptr,
        fig5b_tb_linear_gpu_anyseq, fig5b_tb_linear_gpu_nvbio);
  g_tag = "scores_affine";
  panel("Fig. 5b panel 3: scores only, affine gaps", pairs, kAffine, false,
        a, fig5b_scores_affine_anyseq, fig5b_scores_affine_seqan, nullptr,
        fig5b_scores_affine_gpu_anyseq, fig5b_scores_affine_gpu_nvbio);
  g_tag = "tb_affine";
  panel("Fig. 5b panel 4: traceback, affine gaps", pairs, kAffine, true, a,
        fig5b_tb_affine_anyseq, fig5b_tb_affine_seqan, nullptr,
        fig5b_tb_affine_gpu_anyseq, fig5b_tb_affine_gpu_nvbio);
  return report.write(a.out) ? 0 : 1;
}
