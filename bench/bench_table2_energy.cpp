/// Table II reproduction: energy efficiency (GCUPS/W) of the fastest
/// AnySeq variant per device, scores-only, long genomes, linear and
/// affine gaps.  Wattages are the paper's spec/synthesis-report values.

#include "anyseq/anyseq.hpp"
#include "bench/harness.hpp"
#include "bench/paper_values.hpp"
#include "bio/datasets.hpp"
#include "core/scoring.hpp"
#include "fpgasim/systolic.hpp"
#include "gpusim/gpu_engine.hpp"

namespace {

using namespace anyseq;
using namespace anyseq::bench;

constexpr simple_scoring kScoring{2, -1};

json_report* g_report = nullptr;  // set in main

template <class Gap>
double cpu_gcups(stage::seq_view a, stage::seq_view b, const Gap& gap,
                 int threads, int repeats, const char* tag) {
  // Fastest CPU variant = whatever auto_select dispatches to on this host
  // (the widest engine variant both binary and CPU support — the paper's
  // AVX512 column on a capable machine).
  align_options o =
      paper_opts(gap, backend::auto_select, threads, /*traceback=*/false);
  o.tile = 256;
  std::uint64_t cells = 0;
  const double t =
      median_seconds(repeats, [&] { cells = align(a, b, o).cells; });
  const double g = gcups(cells, t);
  g_report->add(std::string("cpu/") + tag, t, 1, {{"gcups", g}});
  return g;
}

template <class Gap>
double gpu_gcups(stage::seq_view a, stage::seq_view b, const Gap& gap,
                 int repeats, const char* tag) {
  double g = 0.0;
  const double t = median_seconds(repeats, [&] {
    gpusim::device dev;  // fresh counters per run
    gpusim::gpu_engine<align_kind::global, Gap, simple_scoring> eng(
        dev, gap, kScoring);
    (void)eng.score(a, b);
    g = gpusim::estimate(dev.counters(), gpusim::gpu_model{}).gcups;
  });
  g_report->add(std::string("gpu_sim/") + tag, t, 1, {{"gcups", g}});
  return g;
}

template <class Gap>
double fpga_gcups(stage::seq_view a, stage::seq_view b, const Gap& gap,
                  int repeats, const char* tag) {
  double g = 0.0;
  const double t = median_seconds(repeats, [&] {
    g = fpgasim::systolic_score<align_kind::global>(a, b, gap, kScoring)
            .gcups;
  });
  g_report->add(std::string("fpga_sim/") + tag, t, 1, {{"gcups", g}});
  return g;
}

void print_line(const char* device, const char* gap_name, double watts,
                double measured_gcups, double paper_gpw) {
  std::printf("%-22s %6.1f W   %-7s %10.3f %14.3f %12.3f\n", device, watts,
              gap_name, measured_gcups, measured_gcups / watts, paper_gpw);
}

}  // namespace

int main(int argc, char** argv) {
  const auto a = args::parse(argc, argv, /*scale=*/512, /*pairs=*/0);
  const auto pr = bio::make_pair(0, a.scale);
  const auto av = pr.a.view(), bv = pr.b.view();

  std::printf("bench_table2_energy: %lld x %lld bp, scores only\n",
              static_cast<long long>(av.size()),
              static_cast<long long>(bv.size()));
  std::printf("CPU rows use the dispatched '%s' engine variant\n",
              backend_name());
  std::printf("\n%-22s %8s   %-7s %10s %14s %12s\n", "device", "power",
              "gap", "GCUPS", "GCUPS/W", "paper GPW");
  std::printf("--------------------------------------------------------------------------------\n");

  using namespace anyseq::bench::paper;
  const linear_gap lin{-1};
  const affine_gap aff{-2, -1};

  json_report report("table2", a.repeats);
  report.set_meta("q_len", static_cast<long long>(av.size()));
  report.set_meta("s_len", static_cast<long long>(bv.size()));
  report.set_meta("dispatched", backend_name());
  g_report = &report;

  print_line("Xeon-like CPU (meas.)", "linear", table2_cpu_watts,
             cpu_gcups(av, bv, lin, a.threads, a.repeats, "linear"),
             table2_cpu_linear);
  print_line("Xeon-like CPU (meas.)", "affine", table2_cpu_watts,
             cpu_gcups(av, bv, aff, a.threads, a.repeats, "affine"),
             table2_cpu_affine);
  print_line("Titan V (simulated)", "linear", table2_gpu_watts,
             gpu_gcups(av, bv, lin, a.repeats, "linear"), table2_gpu_linear);
  print_line("Titan V (simulated)", "affine", table2_gpu_watts,
             gpu_gcups(av, bv, aff, a.repeats, "affine"), table2_gpu_affine);
  print_line("ZCU104 (simulated)", "linear", table2_fpga_watts,
             fpga_gcups(av, bv, lin, a.repeats, "linear"),
             table2_fpga_linear);
  print_line("ZCU104 (simulated)", "affine", table2_fpga_watts,
             fpga_gcups(av, bv, aff, a.repeats, "affine"),
             table2_fpga_affine);

  std::printf(
      "\nshape check (paper Table II): the FPGA's GCUPS/W exceeds the "
      "CPU's by >3x\nand the GPU's by >4x; the affine FPGA number equals "
      "the linear one\n(single-cycle relaxation regardless of gap "
      "scheme).\n");
  std::printf(
      "caveat: the CPU row divides *this host's* measured GCUPS by the "
      "paper CPU's\n125 W TDP, so its absolute GCUPS/W is not meaningful "
      "— only the simulated\ndevice rows reproduce Table II's "
      "relations.\n");
  return report.write(a.out) ? 0 : 1;
}
