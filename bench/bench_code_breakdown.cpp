/// §IV code-share reproduction: the paper reports that of its core code
/// base ~52% is shared among all backends, ~23% is GPU-specific, ~14%
/// SIMD-specific, and <11% scalar-CPU-specific.  This tool classifies
/// this repository's library sources the same way (excluding, as the
/// paper does, supporting code: I/O, benchmarks, C interfacing — and the
/// FPGA parts) and prints the comparison.

#include <filesystem>
#include <fstream>
#include <map>
#include <vector>

#include "bench/harness.hpp"
#include "bench/paper_values.hpp"

namespace {

namespace fs = std::filesystem;

std::size_t count_loc(const fs::path& p) {
  std::ifstream in(p);
  std::size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    // Count non-blank, non-pure-comment lines.
    std::size_t i = 0;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i == line.size()) continue;
    if (line.compare(i, 2, "//") == 0) continue;
    ++lines;
  }
  return lines;
}

struct bucket {
  const char* name;
  std::vector<const char*> dirs_or_files;
  std::size_t loc = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto a = anyseq::bench::args::parse(argc, argv, /*scale=*/1,
                                            /*pairs=*/0);
  // Locate the source tree relative to the binary (build/bench/..) or cwd.
  fs::path src;
  for (const char* cand : {"../../src", "../src", "src"}) {
    fs::path p = fs::path(argv[0]).parent_path() / cand;
    if (fs::exists(p / "core")) {
      src = p;
      break;
    }
    if (fs::exists(fs::path(cand) / "core")) {
      src = cand;
      break;
    }
  }
  if (src.empty()) {
    std::printf("cannot locate src/ — run from the repository root\n");
    return 1;
  }

  // Classification mirroring the paper's: shared = the generic algorithm
  // and its abstractions; backend buckets = code only that backend needs.
  // Excluded (as the paper excludes support code): bio (I/O, workload
  // generation), capi, baselines, schedsim, and the FPGA parts.
  bucket buckets[] = {
      {"shared", {"core", "stage", "anyseq"}, 0},
      {"gpu", {"gpusim"}, 0},
      {"simd", {"simd", "tiled/simd_block.hpp", "tiled/batch_engine.hpp"}, 0},
      {"scalar-cpu",
       {"parallel", "tiled/tile_kernel.hpp", "tiled/tiled_engine.hpp",
        "tiled/borders.hpp", "tiled/tiled_hirschberg.hpp"},
       0},
  };

  anyseq::bench::stopwatch classify_sw;
  for (auto& b : buckets) {
    for (const char* d : b.dirs_or_files) {
      const fs::path p = src / d;
      if (fs::is_regular_file(p)) {
        b.loc += count_loc(p);
      } else if (fs::is_directory(p)) {
        for (const auto& e : fs::recursive_directory_iterator(p))
          if (e.is_regular_file()) {
            const auto ext = e.path().extension();
            if (ext == ".hpp" || ext == ".cpp") b.loc += count_loc(e.path());
          }
      }
    }
  }
  // Files counted under simd/scalar buckets are inside tiled/, so avoid
  // double counting by not adding the whole tiled directory anywhere.

  std::size_t total = 0;
  for (const auto& b : buckets) total += b.loc;

  anyseq::bench::json_report report("code_breakdown", a.repeats);
  for (const auto& b : buckets)
    report.set_meta(std::string("loc_") + b.name, static_cast<long long>(b.loc));
  report.set_meta("loc_total", static_cast<long long>(total));
  report.add("classify_sources", classify_sw.seconds(),
             static_cast<std::uint64_t>(total), {}, 1);

  using namespace anyseq::bench::paper;
  const double paper_frac[] = {codeshare_shared, codeshare_gpu,
                               codeshare_simd, codeshare_scalar_cpu};

  std::printf("code-share breakdown (library sources, support code "
              "excluded)\n\n");
  std::printf("%-12s %8s %8s %10s\n", "bucket", "LoC", "share", "paper");
  std::printf("------------------------------------------\n");
  for (std::size_t i = 0; i < 4; ++i) {
    std::printf("%-12s %8zu %7.1f%% %9.0f%%\n", buckets[i].name,
                buckets[i].loc,
                100.0 * static_cast<double>(buckets[i].loc) /
                    static_cast<double>(total),
                100.0 * paper_frac[i]);
  }
  std::printf("------------------------------------------\n");
  std::printf("%-12s %8zu\n", "total", total);
  std::printf(
      "\nshape check: the shared bucket dominates (the single generic\n"
      "relaxation/init/traceback serves every backend), as in the paper's\n"
      "52%% figure.\n");
  return report.write(a.out) ? 0 : 1;
}
