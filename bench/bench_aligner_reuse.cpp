/// \file bench_aligner_reuse.cpp
/// Plan/execute trajectory bench: one-shot aligner construction per call
/// vs a reused `anyseq::aligner` (warm workspace, recycled result) on
/// fig5b-style short reads.  Emits BENCH_alloc.json where every row
/// carries median_ns / iterations / repetitions plus `allocs_per_op` —
/// the number the zero-steady-state-allocation contract drives to 0.

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "bench/harness.hpp"
#include "bio/random.hpp"
#include "bio/read_sim.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace anyseq::bench {
namespace {

/// Measure ops/alloc over one timed run of `ops` calls of `fn`.
template <class Fn>
void measure(json_report& rep, const char* name, int repeats,
             std::size_t ops, Fn&& fn) {
  // Warm-up run (not timed): grows arenas and result buffers.
  fn();
  const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  const double t = median_seconds(repeats, fn);
  const std::uint64_t a1 = g_allocs.load(std::memory_order_relaxed);
  const double allocs_per_op =
      static_cast<double>(a1 - a0) /
      static_cast<double>(std::max(1, repeats)) / static_cast<double>(ops);
  std::printf("%-28s %10.0f ns/op   %8.2f allocs/op\n", name,
              t / static_cast<double>(ops) * 1e9, allocs_per_op);
  rep.add(name, t, ops, {{"allocs_per_op", allocs_per_op}});
}

}  // namespace
}  // namespace anyseq::bench

int main(int argc, char** argv) {
  using namespace anyseq;
  using namespace anyseq::bench;

  auto a = args::parse(argc, argv, 1, 512);
  const index_t len = 150;  // Illumina-style short reads (fig5b workload)
  const std::size_t pairs = std::max<std::size_t>(64, a.pairs / 16);
  bio::genome_params gp;
  gp.length = 1 << 16;
  const auto ref = bio::random_genome("reuse_bench_ref", gp);
  bio::read_sim_params rp;
  rp.read_length = len;
  const auto data = bio::simulate_read_pairs(ref, pairs, rp);

  json_report rep("alloc", a.repeats);
  rep.set_meta("workload", "fig5b-style short reads, 150 bp");
  rep.set_meta("pairs", static_cast<long long>(pairs));
  rep.set_meta("backend", backend_name());

  align_options score_opt;
  score_opt.threads = 1;
  align_options tb_opt = score_opt;
  tb_opt.want_alignment = true;

  std::printf("aligner reuse, %zu pairs of %d bp (%s)\n", pairs,
              static_cast<int>(len), backend_name());

  const auto qv = [&](std::size_t i) { return data[i].first.view(); };
  const auto sv = [&](std::size_t i) { return data[i].second.view(); };

  // --- score-only ---------------------------------------------------
  measure(rep, "one_shot_score", a.repeats, pairs, [&] {
    for (std::size_t i = 0; i < pairs; ++i) {
      aligner eng(score_opt);  // cold handle per call: plan + allocate
      (void)eng.align(qv(i), sv(i));
    }
  });

  {
    aligner eng(score_opt);
    alignment_result out;
    measure(rep, "reused_score", a.repeats, pairs, [&] {
      for (std::size_t i = 0; i < pairs; ++i)
        eng.align_into(qv(i), sv(i), out);
    });
  }

  // --- traceback ----------------------------------------------------
  measure(rep, "one_shot_traceback", a.repeats, pairs, [&] {
    for (std::size_t i = 0; i < pairs; ++i) {
      aligner eng(tb_opt);
      (void)eng.align(qv(i), sv(i));
    }
  });

  {
    aligner eng(tb_opt);
    alignment_result out;
    measure(rep, "reused_traceback", a.repeats, pairs, [&] {
      for (std::size_t i = 0; i < pairs; ++i)
        eng.align_into(qv(i), sv(i), out);
    });
  }

  // --- the public one-shot wrapper (thread-local reuse) -------------
  measure(rep, "align_wrapper_score", a.repeats, pairs, [&] {
    for (std::size_t i = 0; i < pairs; ++i)
      (void)align(qv(i), sv(i), score_opt);
  });

  rep.write(a.out);
  return 0;
}
