#pragma once
/// Published reference numbers (GCUPS) from the paper's Figure 5 and
/// Table II, used for the `paper=` comparison columns.
///
/// Caveat: the arXiv source renders Figure 5's bar labels as a partially
/// garbled digit stream; values below marked (~) were reconstructed from
/// that stream plus the prose constraints ("at most 7% slower, up to 12%
/// faster than SeqAn/NVBio", "AnySeq and SeqAn have roughly the same
/// traceback speed", "~20 GCUPS on the ZCU104", "factor of up to 1.1/1.12
/// over NVBio").  EXPERIMENTS.md discusses the reconstruction.

namespace anyseq::bench::paper {

// Figure 5a — long genomes (GCUPS). Order: CPU, AVX2, AVX512.
inline constexpr double fig5a_scores_linear_anyseq[3] = {69, 128, 202};   // ~
inline constexpr double fig5a_scores_linear_seqan[3] = {66, 121, 212};    // ~
inline constexpr double fig5a_scores_linear_parasail[3] = {8, 26, 26};    // ~
inline constexpr double fig5a_scores_linear_gpu_anyseq = 192;             // ~
inline constexpr double fig5a_scores_linear_gpu_nvbio = 175;              // ~
inline constexpr double fig5a_scores_linear_fpga = 20;                    // §V

inline constexpr double fig5a_tb_linear_anyseq[3] = {57, 99, 147};        // ~
inline constexpr double fig5a_tb_linear_seqan[3] = {57, 97, 136};         // ~
inline constexpr double fig5a_tb_linear_parasail[3] = {5, 14, 14};        // ~
inline constexpr double fig5a_tb_linear_gpu_anyseq = 130;                 // ~
inline constexpr double fig5a_tb_linear_gpu_nvbio = 118;                  // ~

inline constexpr double fig5a_scores_affine_anyseq[3] = {69, 121, 195};   // ~
inline constexpr double fig5a_scores_affine_seqan[3] = {69, 112, 195};    // ~
inline constexpr double fig5a_scores_affine_parasail[3] = {9, 51, 51};    // ~
inline constexpr double fig5a_scores_affine_gpu_anyseq = 181;             // ~
inline constexpr double fig5a_scores_affine_gpu_nvbio = 165;              // ~
inline constexpr double fig5a_scores_affine_fpga = 20;                    // §V

inline constexpr double fig5a_tb_affine_anyseq[3] = {56, 87, 135};        // ~
inline constexpr double fig5a_tb_affine_seqan[3] = {57, 91, 147};         // ~
inline constexpr double fig5a_tb_affine_parasail[3] = {5, 13, 13};        // ~
inline constexpr double fig5a_tb_affine_gpu_anyseq = 127;                 // ~
inline constexpr double fig5a_tb_affine_gpu_nvbio = 115;                  // ~

// Figure 5b — 12.5 M Illumina read pairs (GCUPS).
inline constexpr double fig5b_scores_linear_anyseq[3] = {11, 121, 144};   // ~
inline constexpr double fig5b_scores_linear_seqan[3] = {12, 106, 152};    // ~
inline constexpr double fig5b_scores_linear_parasail[3] = {10, 10, 10};   // ~
inline constexpr double fig5b_scores_linear_gpu_anyseq = 216;             // ~
inline constexpr double fig5b_scores_linear_gpu_nvbio = 193;              // ~

inline constexpr double fig5b_tb_linear_anyseq[3] = {9.9, 117, 164};      // ~
inline constexpr double fig5b_tb_linear_seqan[3] = {9.8, 125, 153};       // ~
inline constexpr double fig5b_tb_linear_gpu_anyseq = 98;                  // ~
inline constexpr double fig5b_tb_linear_gpu_nvbio = 88;                   // ~

inline constexpr double fig5b_scores_affine_anyseq[3] = {10, 103, 136};   // ~
inline constexpr double fig5b_scores_affine_seqan[3] = {10, 95, 139};     // ~
inline constexpr double fig5b_scores_affine_gpu_anyseq = 222;             // ~
inline constexpr double fig5b_scores_affine_gpu_nvbio = 204;              // ~

inline constexpr double fig5b_tb_affine_anyseq[3] = {8.8, 110, 151};      // ~
inline constexpr double fig5b_tb_affine_seqan[3] = {8.7, 114, 65};        // ~
inline constexpr double fig5b_tb_affine_gpu_anyseq = 114;                 // ~
inline constexpr double fig5b_tb_affine_gpu_nvbio = 143;                  // ~

// Figure 6 — parallel efficiency of the wavefront schedulers (§V prose).
inline constexpr double fig6_dynamic_eff_16 = 0.75;
inline constexpr double fig6_dynamic_eff_32 = 0.65;
inline constexpr double fig6_static_eff_16 = 0.15;
inline constexpr double fig6_static_eff_32 = 0.08;

// Table II — energy efficiency (GCUPS/W).
inline constexpr double table2_cpu_linear = 1.024;
inline constexpr double table2_cpu_affine = 0.968;
inline constexpr double table2_gpu_linear = 0.757;
inline constexpr double table2_gpu_affine = 0.696;
inline constexpr double table2_fpga_linear = 3.187;
inline constexpr double table2_fpga_affine = 3.187;
inline constexpr double table2_cpu_watts = 125;
inline constexpr double table2_gpu_watts = 250;
inline constexpr double table2_fpga_watts = 6.181;

// §IV code-share breakdown (lines of code, excluding support code).
inline constexpr double codeshare_shared = 0.52;
inline constexpr double codeshare_gpu = 0.23;
inline constexpr double codeshare_simd = 0.14;
inline constexpr double codeshare_scalar_cpu = 0.11;

}  // namespace anyseq::bench::paper
