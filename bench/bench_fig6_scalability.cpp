/// Figure 6 reproduction: thread scalability of the dynamic vs. static
/// wavefront schedulers (AVX2, long genomes).
///
/// Two complementary measurements (DESIGN.md §3 — this host has one
/// core):
///   1. measured wall-clock on real threads (meaningful up to the host's
///      core count; oversubscribed beyond);
///   2. discrete-event replay of the same tile DAG on 1..32 virtual
///      cores, with the per-tile cost measured from the real kernel —
///      this reproduces the *policy* comparison the figure is about.

#include "bench/harness.hpp"
#include "bench/paper_values.hpp"
#include "bio/datasets.hpp"
#include "core/scoring.hpp"
#include "schedsim/schedsim.hpp"
#include "tiled/tile_kernel.hpp"
#include "tiled/tiled_engine.hpp"

namespace {

using namespace anyseq;
using namespace anyseq::bench;

constexpr simple_scoring kScoring{2, -1};
constexpr linear_gap kLinear{-1};

/// Measure the real scalar-tile relaxation cost for the simulator.
double measure_tile_cost_us(stage::seq_view a, stage::seq_view b,
                            index_t tile) {
  tiled::tile_geometry geom(a.size(), b.size(), tile, tile);
  tiled::border_lattice lat(geom, false);
  for (index_t j = 0; j <= b.size(); ++j)
    lat.h_row(0)[j] = init_h_row0<align_kind::global>(j, kLinear);
  for (index_t i = 0; i <= a.size(); ++i)
    lat.h_col(0)[i] = init_h_col0<align_kind::global>(i, kLinear);
  std::vector<score_t> h(tile + 1), e(tile + 1);
  const index_t reps = std::min<index_t>(geom.tiles_x, 16);
  stopwatch sw;
  for (index_t tx = 0; tx < reps; ++tx)
    (void)tiled::relax_tile_scalar<align_kind::global>(
        a, b, lat, 0, tx, kLinear, kScoring, h.data(), e.data());
  return sw.seconds() / static_cast<double>(reps) * 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  const auto a = args::parse(argc, argv, /*scale=*/512, /*pairs=*/0);
  const index_t tile = 256;
  const auto pr = bio::make_pair(0, a.scale);
  const auto av = pr.a.view(), bv = pr.b.view();
  std::printf("bench_fig6_scalability: pair of %lld x %lld bp, tile %lld\n",
              static_cast<long long>(av.size()),
              static_cast<long long>(bv.size()),
              static_cast<long long>(tile));

  // --- 1. measured (real threads, AVX2 blocks) ------------------------
  std::printf("\nmeasured wall-clock (host has %d hardware thread(s); "
              "oversubscribed counts shown for completeness):\n",
              parallel::hardware_threads());
  std::printf("%8s %14s %14s %10s\n", "threads", "dynamic GCUPS",
              "static GCUPS", "dyn/stat");
  const std::uint64_t cells =
      static_cast<std::uint64_t>(av.size()) * bv.size();
  json_report report("fig6", a.repeats);
  report.set_meta("q_len", static_cast<long long>(av.size()));
  report.set_meta("s_len", static_cast<long long>(bv.size()));
  report.set_meta("tile", static_cast<long long>(tile));
  for (int threads : {1, 2, 4}) {
    tiled::tiled_engine<align_kind::global, linear_gap, simple_scoring, 16>
        dyn(kLinear, kScoring, {tile, tile, threads, true});
    tiled::tiled_engine<align_kind::global, linear_gap, simple_scoring, 16>
        stat(kLinear, kScoring, {tile, tile, threads, false});
    const double td =
        median_seconds(a.repeats, [&] { (void)dyn.score(av, bv); });
    const double ts =
        median_seconds(a.repeats, [&] { (void)stat.score(av, bv); });
    report.add("measured/dynamic/" + std::to_string(threads) + "t", td, 1,
               {{"gcups", gcups(cells, td)}});
    report.add("measured/static/" + std::to_string(threads) + "t", ts, 1,
               {{"gcups", gcups(cells, ts)}});
    std::printf("%8d %14.3f %14.3f %10.2f\n", threads, gcups(cells, td),
                gcups(cells, ts), ts / td);
  }

  // --- 2. schedule simulation on the real tile DAG --------------------
  const double tile_cost = measure_tile_cost_us(av, bv, tile);
  schedsim::sim_params p;
  p.tile_cost_us = tile_cost;
  p.queue_overhead_us = 0.5;
  p.barrier_cost_us = 25.0;  // measured order of a 16-32 thread barrier
  const parallel::grid_dims dims{stage::tile_count(av.size(), tile),
                                 stage::tile_count(bv.size(), tile)};
  std::printf(
      "\nschedule simulation (tile cost measured: %.1f us; grid %lld x "
      "%lld):\n",
      tile_cost, static_cast<long long>(dims.tiles_y),
      static_cast<long long>(dims.tiles_x));
  std::printf("%8s %12s %12s %12s %12s\n", "threads", "dyn eff", "stat eff",
              "paper dyn", "paper stat");
  const int counts[] = {1, 2, 4, 8, 16, 32};
  std::vector<schedsim::scaling_point> curve;
  const double sim_s = median_seconds(a.repeats, [&] {
    curve = schedsim::scaling_curve(std::span(&dims, 1), std::span(counts), p);
  });
  report.add("schedule_sim/replay", sim_s,
             static_cast<std::uint64_t>(curve.size()));
  for (const auto& pt : curve) {
    report.set_meta("sim_dyn_eff_" + std::to_string(pt.cores) + "c",
                    pt.dynamic_r.efficiency);
    report.set_meta("sim_stat_eff_" + std::to_string(pt.cores) + "c",
                    pt.static_r.efficiency);
  }
  for (const auto& pt : curve) {
    double paper_d = -1, paper_s = -1;
    if (pt.cores == 16) {
      paper_d = paper::fig6_dynamic_eff_16;
      paper_s = paper::fig6_static_eff_16;
    } else if (pt.cores == 32) {
      paper_d = paper::fig6_dynamic_eff_32;
      paper_s = paper::fig6_static_eff_32;
    }
    auto fmt = [](double v) { return v < 0 ? std::string("-")
                                           : std::to_string(v).substr(0, 5); };
    std::printf("%8d %12.3f %12.3f %12s %12s\n", pt.cores,
                pt.dynamic_r.efficiency, pt.static_r.efficiency,
                fmt(paper_d).c_str(), fmt(paper_s).c_str());
  }
  // --- 3. paper-configuration projection -------------------------------
  // The paper's preliminary static version decomposed the matrix into
  // large submatrices (tile grid on the order of the thread count) and
  // synchronized per diagonal; replay that configuration with the
  // measured tile cost to project the published 16/32-thread numbers.
  schedsim::sim_params pp;
  pp.tile_cost_us = tile_cost;
  pp.queue_overhead_us = 0.02 * tile_cost;
  pp.barrier_cost_us = 3.0 * tile_cost;  // fine-grained sync dominates
  const parallel::grid_dims paper_dims{64, 64};
  std::printf("\npaper-configuration projection (64 x 64 submatrix grid, "
              "barrier ~ 3 tile costs):\n");
  std::printf("%8s %12s %12s %12s %12s\n", "threads", "dyn eff", "stat eff",
              "paper dyn", "paper stat");
  std::vector<schedsim::scaling_point> proj;
  const double proj_s = median_seconds(a.repeats, [&] {
    proj = schedsim::scaling_curve(std::span(&paper_dims, 1),
                                   std::span(counts), pp);
  });
  report.add("schedule_sim/paper_projection", proj_s,
             static_cast<std::uint64_t>(proj.size()));
  for (const auto& pt : proj) {
    double paper_d = -1, paper_s = -1;
    if (pt.cores == 16) {
      paper_d = paper::fig6_dynamic_eff_16;
      paper_s = paper::fig6_static_eff_16;
    } else if (pt.cores == 32) {
      paper_d = paper::fig6_dynamic_eff_32;
      paper_s = paper::fig6_static_eff_32;
    }
    auto fmt = [](double v) { return v < 0 ? std::string("-")
                                           : std::to_string(v).substr(0, 5); };
    std::printf("%8d %12.3f %12.3f %12s %12s\n", pt.cores,
                pt.dynamic_r.efficiency, pt.static_r.efficiency,
                fmt(paper_d).c_str(), fmt(paper_s).c_str());
  }

  std::printf(
      "\nshape check: dynamic stays high while static collapses, as in\n"
      "the paper (75%%/65%% vs 15%%/8%% at 16/32 threads).  The simulated\n"
      "dynamic curve is scheduling-limited only; the paper's measured 65%%\n"
      "at 32 threads additionally includes memory-bandwidth saturation.\n");
  return report.write(a.out) ? 0 : 1;
}
