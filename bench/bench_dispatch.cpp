/// Dispatch benchmark: per-variant call overhead and batch score/traceback
/// throughput through the public dispatcher, emitted as machine-readable
/// JSON (BENCH_dispatch.json) so future PRs have a perf trajectory to
/// compare against.
///
/// Two families of numbers per engine variant (scalar / avx2 / avx512):
///   * call_overhead_ns — median wall time of a full `anyseq::align` call
///     on a tiny 16x16 problem.  This is dominated by the dispatch chain
///     (validate -> detect -> ops table -> kind/gap/scoring dispatch) plus
///     one engine setup, so regressions here mean the dispatcher got
///     heavier, not the kernels slower.
///   * batch_score_gcups / batch_traceback_gcups — align_batch throughput
///     on simulated 150 bp read pairs; the traceback path routes through
///     the per-variant ops table (this PR's acceptance scenario).
///
///   $ ./dispatch_bench [--pairs N] [--threads N] [--repeats N]
///                      [--out FILE]           (default BENCH_dispatch.json)

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "anyseq/anyseq.hpp"
#include "bench/harness.hpp"
#include "bio/random.hpp"
#include "core/gap.hpp"
#include "bio/read_sim.hpp"
#include "simd/detect.hpp"

namespace {

using namespace anyseq;
using namespace anyseq::bench;

struct variant_row {
  const char* name;
  int lanes;
  bool runnable = false;
  double call_overhead_ns = 0.0;
  double batch_score_gcups = 0.0;
  double batch_traceback_gcups = 0.0;
};

align_options base_opts(backend exec, int threads, bool traceback) {
  return paper_opts(affine_gap{-2, -1}, exec, threads, traceback);
}

constexpr int kOverheadCalls = 2000;

double call_overhead_ns(backend exec, int repeats) {
  // Tiny fixed pair: the DP itself is ~256 cells, negligible next to the
  // dispatch chain it rides on.
  const std::vector<char_t> q(16, 1), s(16, 2);
  const stage::seq_view qv{q.data(), 16}, sv{s.data(), 16};
  align_options o = base_opts(exec, /*threads=*/1, /*traceback=*/false);
  // One warm-up call keeps one-time statics out of the measurement.
  (void)align(qv, sv, o);
  const double t = median_seconds(repeats, [&] {
    for (int i = 0; i < kOverheadCalls; ++i) (void)align(qv, sv, o);
  });
  return t / kOverheadCalls * 1e9;
}

std::uint64_t total_cells(std::span<const seq_pair> pairs) {
  std::uint64_t c = 0;
  for (const auto& p : pairs)
    c += static_cast<std::uint64_t>(p.q.size()) * p.s.size();
  return c;
}

double batch_seconds(std::span<const seq_pair> pairs, backend exec,
                     bool traceback, int threads, int repeats) {
  const align_options o = base_opts(exec, threads, traceback);
  return median_seconds(repeats, [&] { (void)align_batch(pairs, o); });
}

}  // namespace

int main(int argc, char** argv) {
  auto a = args::parse(argc, argv, /*default_scale=*/1, /*default_pairs=*/4000);

  std::printf("bench_dispatch: %zu pairs, %d threads\n", a.pairs,
              a.threads);

  bio::genome_params gp;
  gp.length = 1 << 20;
  gp.seed = 10;
  const auto ref = bio::random_genome("chr_surrogate", gp);
  const auto data = bio::simulate_read_pairs(ref, a.pairs, {});
  std::vector<seq_pair> pairs;
  pairs.reserve(data.size());
  for (const auto& p : data)
    pairs.push_back({p.first.view(), p.second.view()});

  variant_row rows[] = {{"scalar", 1}, {"avx2", 16}, {"avx512", 32}};

  const auto feats = simd::detect();
  json_report report("dispatch", a.repeats);
  report.set_meta("cpu", simd::describe(feats));
  report.set_meta("dispatched", backend_name());
  report.set_meta("pairs", static_cast<long long>(a.pairs));
  report.set_meta("threads", static_cast<long long>(a.threads));

  const std::uint64_t cells = total_cells(pairs);
  for (auto& v : rows) {
    v.runnable = simd::lanes_runnable(v.lanes, feats);
    if (!v.runnable) {
      // Keep the skip machine-readable: a trajectory diff must be able
      // to tell "not runnable on this host" from "row went missing".
      report.set_meta(std::string("skipped_") + v.name,
                      "CPU cannot run this variant");
      std::printf("%-8s skipped: CPU cannot run this variant\n", v.name);
      continue;
    }
    const backend exec = backend_for_lanes(v.lanes);
    v.call_overhead_ns = call_overhead_ns(exec, a.repeats);
    report.add(std::string("call_overhead/") + v.name,
               v.call_overhead_ns * kOverheadCalls / 1e9, kOverheadCalls,
               {{"ns_per_call", v.call_overhead_ns}});
    const double ts = batch_seconds(pairs, exec, false, a.threads, a.repeats);
    v.batch_score_gcups = gcups(cells, ts);
    report.add(std::string("batch_score/") + v.name, ts, a.pairs,
               {{"gcups", v.batch_score_gcups}});
    const double tt = batch_seconds(pairs, exec, true, a.threads, a.repeats);
    v.batch_traceback_gcups = gcups(cells, tt);
    report.add(std::string("batch_traceback/") + v.name, tt, a.pairs,
               {{"gcups", v.batch_traceback_gcups}});
    std::printf(
        "%-8s call %8.1f ns   batch score %8.3f GCUPS   traceback %8.3f "
        "GCUPS\n",
        v.name, v.call_overhead_ns, v.batch_score_gcups,
        v.batch_traceback_gcups);
  }

  return report.write(a.out) ? 0 : 1;
}
