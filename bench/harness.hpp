#pragma once
/// Shared benchmark harness: wall-clock timing, GCUPS computation, and
/// paper-shaped table printing with a `paper=` reference column so every
/// run is directly comparable to the published numbers.
///
/// All benches run standalone with safe defaults on a small machine and
/// accept:
///   --scale N    divide the paper's sequence lengths by N
///   --pairs N    number of read pairs (Fig. 5b)
///   --quick      quarter-size everything
///   --threads N  worker threads for the CPU backends

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "anyseq/anyseq.hpp"
#include "core/types.hpp"
#include "simd/detect.hpp"

namespace anyseq::bench {

/// Backend of an engine variant by its lane count (1 / 16 / 32) —
/// single source for the benches' variant rows.
[[nodiscard]] inline backend backend_for_lanes(int lanes) {
  switch (lanes) {
    case 16: return backend::simd_avx2;
    case 32: return backend::simd_avx512;
    default: return backend::scalar;
  }
}

/// True if the host CPU can run the engine variant of this lane count.
[[nodiscard]] inline bool lanes_runnable_now(int lanes) {
  return simd::lanes_runnable(lanes, simd::detect());
}

/// align_options for the paper's benchmark scoring (+2 match, -1
/// mismatch) and a gap policy object — the single source for mapping the
/// benches' Gap types onto dispatcher options.  Per-bench extras (tile,
/// full_matrix_cells, ...) are set on the returned object.
template <class Gap>
[[nodiscard]] inline align_options paper_opts(const Gap& gap, backend exec,
                                              int threads, bool traceback) {
  align_options o;
  o.kind = align_kind::global;
  o.exec = exec;
  o.threads = threads;
  o.want_alignment = traceback;
  o.match = 2;
  o.mismatch = -1;
  o.gap_open = Gap::kind == gap_kind::affine ? gap.open() : 0;
  o.gap_extend = gap.extend();
  return o;
}

struct args {
  std::uint64_t scale = 512;
  std::size_t pairs = 8000;
  bool quick = false;
  int threads = 4;
  int repeats = 1;

  static args parse(int argc, char** argv, std::uint64_t default_scale,
                    std::size_t default_pairs) {
    args a;
    a.scale = default_scale;
    a.pairs = default_pairs;
    for (int i = 1; i < argc; ++i) {
      auto want = [&](const char* flag) {
        return std::strcmp(argv[i], flag) == 0 && i + 1 < argc;
      };
      if (want("--scale")) {
        a.scale = std::strtoull(argv[++i], nullptr, 10);
      } else if (want("--pairs")) {
        a.pairs = std::strtoull(argv[++i], nullptr, 10);
      } else if (want("--threads")) {
        a.threads = std::atoi(argv[++i]);
      } else if (want("--repeats")) {
        a.repeats = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--quick") == 0) {
        a.quick = true;
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::printf(
            "flags: --scale N  --pairs N  --threads N  --repeats N  "
            "--quick\n");
        std::exit(0);
      }
    }
    if (a.quick) {
      a.scale *= 4;
      a.pairs = std::max<std::size_t>(256, a.pairs / 8);
    }
    return a;
  }
};

class stopwatch {
 public:
  stopwatch() : start_(clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Giga cell updates per second.
[[nodiscard]] inline double gcups(std::uint64_t cells, double seconds) {
  return seconds > 0.0 ? static_cast<double>(cells) / seconds / 1e9 : 0.0;
}

/// Run fn() `repeats` times, return the median runtime in seconds.
template <class Fn>
double median_seconds(int repeats, Fn&& fn) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(repeats));
  for (int r = 0; r < std::max(1, repeats); ++r) {
    stopwatch sw;
    fn();
    times.push_back(sw.seconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// One row of a paper-shaped results table.
struct row {
  std::string library;
  std::string variant;
  double measured_gcups;
  double paper_gcups;  ///< < 0 -> not reported in the paper
  std::string note;
};

inline void print_header(const char* title, const char* workload) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("workload: %s\n", workload);
  std::printf("----------------------------------------------------------------\n");
  std::printf("%-14s %-12s %12s %12s   %s\n", "library", "variant",
              "GCUPS", "paper", "note");
}

inline void print_row(const row& r) {
  if (r.paper_gcups >= 0)
    std::printf("%-14s %-12s %12.3f %12.1f   %s\n", r.library.c_str(),
                r.variant.c_str(), r.measured_gcups, r.paper_gcups,
                r.note.c_str());
  else
    std::printf("%-14s %-12s %12.3f %12s   %s\n", r.library.c_str(),
                r.variant.c_str(), r.measured_gcups, "-", r.note.c_str());
}

inline void print_footer() {
  std::printf("----------------------------------------------------------------\n");
  std::printf(
      "note: absolute GCUPS are not comparable to the paper's testbed\n"
      "(2x Xeon Gold 6130 / Titan V / ZCU104 vs this host); the *shape* —\n"
      "who wins, by what factor — is the reproduction target. See\n"
      "EXPERIMENTS.md for the per-figure discussion.\n");
}

}  // namespace anyseq::bench
