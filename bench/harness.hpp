#pragma once
/// Shared benchmark harness: wall-clock timing, GCUPS computation, and
/// paper-shaped table printing with a `paper=` reference column so every
/// run is directly comparable to the published numbers.
///
/// All benches run standalone with safe defaults on a small machine and
/// accept:
///   --scale N    divide the paper's sequence lengths by N
///   --pairs N    number of read pairs (Fig. 5b)
///   --quick      quarter-size everything
///   --threads N  worker threads for the CPU backends
///   --repeats N  repetitions per measurement (medians are reported)
///   --out FILE   where to write the machine-readable BENCH_*.json
///
/// Every bench also emits a machine-readable JSON document (see
/// json_report below) so successive PRs have a perf trajectory to
/// compare against.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "anyseq/anyseq.hpp"
#include "core/types.hpp"
#include "simd/detect.hpp"

namespace anyseq::bench {

/// Backend of an engine variant by its lane count (1 / 16 / 32) —
/// single source for the benches' variant rows.
[[nodiscard]] inline backend backend_for_lanes(int lanes) {
  switch (lanes) {
    case 16: return backend::simd_avx2;
    case 32: return backend::simd_avx512;
    default: return backend::scalar;
  }
}

/// True if the host CPU can run the engine variant of this lane count.
[[nodiscard]] inline bool lanes_runnable_now(int lanes) {
  return simd::lanes_runnable(lanes, simd::detect());
}

/// align_options for the paper's benchmark scoring (+2 match, -1
/// mismatch) and a gap policy object — the single source for mapping the
/// benches' Gap types onto dispatcher options.  Per-bench extras (tile,
/// full_matrix_cells, ...) are set on the returned object.
template <class Gap>
[[nodiscard]] inline align_options paper_opts(const Gap& gap, backend exec,
                                              int threads, bool traceback) {
  align_options o;
  o.kind = align_kind::global;
  o.exec = exec;
  o.threads = threads;
  o.want_alignment = traceback;
  o.match = 2;
  o.mismatch = -1;
  o.gap_open = Gap::kind == gap_kind::affine ? gap.open() : 0;
  o.gap_extend = gap.extend();
  return o;
}

struct args {
  std::uint64_t scale = 512;
  std::size_t pairs = 8000;
  bool quick = false;
  int threads = 4;
  int repeats = 3;
  std::string out;  ///< --out override for the BENCH_*.json path

  static args parse(int argc, char** argv, std::uint64_t default_scale,
                    std::size_t default_pairs) {
    args a;
    a.scale = default_scale;
    a.pairs = default_pairs;
    for (int i = 1; i < argc; ++i) {
      auto want = [&](const char* flag) {
        return std::strcmp(argv[i], flag) == 0 && i + 1 < argc;
      };
      if (want("--scale")) {
        a.scale = std::strtoull(argv[++i], nullptr, 10);
      } else if (want("--pairs")) {
        a.pairs = std::strtoull(argv[++i], nullptr, 10);
      } else if (want("--threads")) {
        a.threads = std::atoi(argv[++i]);
      } else if (want("--repeats")) {
        a.repeats = std::atoi(argv[++i]);
      } else if (want("--out")) {
        a.out = argv[++i];
      } else if (std::strcmp(argv[i], "--quick") == 0) {
        a.quick = true;
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::printf(
            "flags: --scale N  --pairs N  --threads N  --repeats N  "
            "--out FILE  --quick\n");
        std::exit(0);
      }
    }
    if (a.quick) {
      a.scale *= 4;
      a.pairs = std::max<std::size_t>(256, a.pairs / 8);
    }
    return a;
  }
};

class stopwatch {
 public:
  stopwatch() : start_(clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Giga cell updates per second.
[[nodiscard]] inline double gcups(std::uint64_t cells, double seconds) {
  return seconds > 0.0 ? static_cast<double>(cells) / seconds / 1e9 : 0.0;
}

/// Run fn() `repeats` times, return the median runtime in seconds.
template <class Fn>
double median_seconds(int repeats, Fn&& fn) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(repeats));
  for (int r = 0; r < std::max(1, repeats); ++r) {
    stopwatch sw;
    fn();
    times.push_back(sw.seconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Machine-readable benchmark record, written as BENCH_<bench>.json.
///
/// This single-core container is noisy (a concurrent build swings wall
/// times 2x), so medians are the only trustworthy number: every
/// measurement row carries the triple `median_ns` (median wall time of
/// one run), `iterations` (work items one run covers — alignments,
/// pairs, operations), and `repetitions` (how many runs the median was
/// taken over).  Derived metrics (GCUPS, requests/s, ...) ride along as
/// extra keys per row.
class json_report {
 public:
  /// `repetitions` is the bench's --repeats; it is stamped on every row.
  json_report(std::string bench, int repetitions)
      : bench_(std::move(bench)), repetitions_(std::max(1, repetitions)) {}

  [[nodiscard]] int repetitions() const noexcept { return repetitions_; }

  void set_meta(const std::string& key, const std::string& value) {
    meta_ += "  \"" + key + "\": \"" + value + "\",\n";
  }
  void set_meta(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    meta_ += "  \"" + key + "\": " + buf + ",\n";
  }
  void set_meta(const std::string& key, long long value) {
    meta_ += "  \"" + key + "\": " + std::to_string(value) + ",\n";
  }

  /// One measurement row.  `median_s` is the median wall time of one
  /// run in seconds (from median_seconds); `iterations` is how many
  /// work items one run covers.  `reps_override` replaces the report's
  /// repetition count for rows measured differently (e.g. a single
  /// verification pass).
  void add(const std::string& name, double median_s, std::uint64_t iterations,
           std::initializer_list<std::pair<const char*, double>> extra = {},
           int reps_override = 0) {
    char buf[96];
    std::string row = "    {\"name\": \"" + name + "\"";
    std::snprintf(buf, sizeof buf, ", \"median_ns\": %.1f", median_s * 1e9);
    row += buf;
    row += ", \"iterations\": " + std::to_string(iterations);
    row += ", \"repetitions\": " +
           std::to_string(reps_override > 0 ? reps_override : repetitions_);
    for (const auto& [key, value] : extra) {
      std::snprintf(buf, sizeof buf, ", \"%s\": %.6g", key, value);
      row += buf;
    }
    row += "}";
    rows_.push_back(std::move(row));
  }

  /// Write the document.  `path` empty -> "BENCH_<bench>.json".
  /// Prints the destination; returns false (with a message) on I/O
  /// failure.
  bool write(const std::string& path = "") const {
    const std::string dest =
        path.empty() ? "BENCH_" + bench_ + ".json" : path;
    std::FILE* f = std::fopen(dest.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", dest.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", bench_.c_str());
    std::fputs(meta_.c_str(), f);
    std::fputs("  \"runs\": [\n", f);
    for (std::size_t i = 0; i < rows_.size(); ++i)
      std::fprintf(f, "%s%s\n", rows_[i].c_str(),
                   i + 1 < rows_.size() ? "," : "");
    std::fputs("  ]\n}\n", f);
    std::fclose(f);
    std::printf("wrote %s\n", dest.c_str());
    return true;
  }

 private:
  std::string bench_;
  int repetitions_;
  std::string meta_;
  std::vector<std::string> rows_;
};

/// One row of a paper-shaped results table.
struct row {
  std::string library;
  std::string variant;
  double measured_gcups;
  double paper_gcups;  ///< < 0 -> not reported in the paper
  std::string note;
};

inline void print_header(const char* title, const char* workload) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("workload: %s\n", workload);
  std::printf("----------------------------------------------------------------\n");
  std::printf("%-14s %-12s %12s %12s   %s\n", "library", "variant",
              "GCUPS", "paper", "note");
}

inline void print_row(const row& r) {
  if (r.paper_gcups >= 0)
    std::printf("%-14s %-12s %12.3f %12.1f   %s\n", r.library.c_str(),
                r.variant.c_str(), r.measured_gcups, r.paper_gcups,
                r.note.c_str());
  else
    std::printf("%-14s %-12s %12.3f %12s   %s\n", r.library.c_str(),
                r.variant.c_str(), r.measured_gcups, "-", r.note.c_str());
}

inline void print_footer() {
  std::printf("----------------------------------------------------------------\n");
  std::printf(
      "note: absolute GCUPS are not comparable to the paper's testbed\n"
      "(2x Xeon Gold 6130 / Titan V / ZCU104 vs this host); the *shape* —\n"
      "who wins, by what factor — is the reproduction target. See\n"
      "EXPERIMENTS.md for the per-figure discussion.\n");
}

}  // namespace anyseq::bench
