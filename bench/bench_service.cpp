/// Service-layer benchmark: batched asynchronous service vs a
/// one-call-per-request synchronous loop over the same workload
/// (simulated 150 bp Illumina read pairs), emitted as BENCH_service.json.
///
/// The service's edge comes from coalescing individual requests into
/// inter-sequence SIMD batches; the baseline pays one full dispatch +
/// engine setup per request.  Also reported: mean batch occupancy and
/// p50/p99 request latency from the service telemetry.
///
///   $ ./service_bench [--pairs N] [--threads N] [--repeats N]
///                     [--out FILE]            (default BENCH_service.json)

#include <cstdio>
#include <thread>
#include <vector>

#include "anyseq/anyseq.hpp"
#include "bench/harness.hpp"
#include "bio/random.hpp"
#include "bio/read_sim.hpp"
#include "service/service.hpp"
#include "simd/detect.hpp"

namespace {

using namespace anyseq;
using namespace anyseq::bench;

align_options request_options() {
  align_options o;
  o.kind = align_kind::global;
  o.gap_open = -2;
  o.gap_extend = -1;
  o.threads = 1;  // per-request work is tiny; parallelism comes from above
  return o;
}

/// Baseline: one public-dispatcher call per request.
double run_sync(std::span<const seq_pair> pairs) {
  const auto opt = request_options();
  long long sum = 0;
  for (const auto& p : pairs) sum += align(p.q, p.s, opt).score;
  return static_cast<double>(sum);  // fold so the loop cannot be elided
}

/// Batched service: `producers` client threads submit individual
/// requests with a sliding window of outstanding tickets.
double run_service(service::aligner& svc, std::span<const seq_pair> pairs,
                   int producers) {
  const auto opt = request_options();
  std::vector<std::thread> threads;
  std::vector<long long> sums(static_cast<std::size_t>(producers), 0);
  const std::size_t per =
      (pairs.size() + static_cast<std::size_t>(producers) - 1) /
      static_cast<std::size_t>(producers);
  for (int c = 0; c < producers; ++c) {
    threads.emplace_back([&, c] {
      const std::size_t lo = static_cast<std::size_t>(c) * per;
      const std::size_t hi = std::min(pairs.size(), lo + per);
      std::vector<service::ticket> window;
      window.reserve(64);
      long long sum = 0;
      for (std::size_t i = lo; i < hi; ++i) {
        window.push_back(svc.submit(pairs[i].q, pairs[i].s, opt));
        if (window.size() >= 64) {
          sum += window.front().get().score;
          window.erase(window.begin());
        }
      }
      for (auto& t : window) sum += t.get().score;
      sums[static_cast<std::size_t>(c)] = sum;
    });
  }
  for (auto& t : threads) t.join();
  long long total = 0;
  for (const long long s : sums) total += s;
  return static_cast<double>(total);
}

}  // namespace

int main(int argc, char** argv) {
  const auto a = args::parse(argc, argv, /*default_scale=*/1,
                             /*default_pairs=*/4000);
  const int producers = std::max(1, a.threads);

  std::printf("bench_service: %zu requests, %d producer threads, %d "
              "repeats\n",
              a.pairs, producers, a.repeats);

  bio::genome_params gp;
  gp.length = 1 << 20;
  gp.seed = 10;
  const auto ref = bio::random_genome("chr_surrogate", gp);
  const auto data = bio::simulate_read_pairs(ref, a.pairs, {});
  std::vector<seq_pair> pairs;
  pairs.reserve(data.size());
  for (const auto& p : data)
    pairs.push_back({p.first.view(), p.second.view()});

  json_report report("service", a.repeats);
  report.set_meta("cpu", simd::describe(simd::detect()));
  report.set_meta("dispatched", backend_name());
  report.set_meta("requests", static_cast<long long>(a.pairs));
  report.set_meta("producers", static_cast<long long>(producers));

  // Checksums must agree — the service promises identical results.
  double sync_sum = 0.0;
  const double sync_s = median_seconds(
      a.repeats, [&] { sync_sum = run_sync(pairs); });
  const double sync_rps = static_cast<double>(pairs.size()) / sync_s;
  report.add("one_call_per_request", sync_s, pairs.size(),
             {{"requests_per_s", sync_rps}});
  std::printf("one-call-per-request : %10.1f req/s\n", sync_rps);

  service::config cfg;
  cfg.max_batch = 64;
  cfg.max_linger = std::chrono::microseconds(300);
  cfg.queue_capacity = 1024;
  double svc_sum = 0.0;
  // Medians of time AND telemetry, sampled per run — pairing the median
  // run time with a single (possibly outlier) run's latency percentiles
  // would defeat the harness's medians-on-a-noisy-box rule.
  std::vector<double> times, occs, p50s, p99s;
  for (int r = 0; r < std::max(1, a.repeats); ++r) {
    service::aligner svc(cfg);  // fresh service: stats describe one run
    stopwatch sw;
    svc_sum = run_service(svc, pairs, producers);
    times.push_back(sw.seconds());
    svc.shutdown(true);
    const auto snap = svc.stats();
    occs.push_back(snap.mean_batch_occupancy);
    p50s.push_back(static_cast<double>(snap.p50_latency_ns) / 1e3);
    p99s.push_back(static_cast<double>(snap.p99_latency_ns) / 1e3);
  }
  const auto median_of = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double svc_s = median_of(times);
  const double occupancy = median_of(occs);
  const double p50_us = median_of(p50s);
  const double p99_us = median_of(p99s);
  const double svc_rps = static_cast<double>(pairs.size()) / svc_s;
  report.add("batched_service", svc_s, pairs.size(),
             {{"requests_per_s", svc_rps},
              {"mean_batch_occupancy", occupancy},
              {"p50_latency_us", p50_us},
              {"p99_latency_us", p99_us}});
  std::printf("batched service      : %10.1f req/s  (%.2fx, occupancy "
              "%.1f, p50 %.0f us, p99 %.0f us)\n",
              svc_rps, sync_s / svc_s, occupancy, p50_us, p99_us);

  if (sync_sum != svc_sum) {
    std::fprintf(stderr,
                 "FAIL: service checksum %.0f != synchronous %.0f\n",
                 svc_sum, sync_sum);
    return 1;
  }
  report.set_meta("speedup", sync_s / svc_s);
  return report.write(a.out) ? 0 : 1;
}
