/// Ablation benches for the design choices the paper's §V calls out as
/// the likely source of the ~5% library deltas:
///   * tile size ("different parameter choices for ... tile sizes")
///   * recursion cutoff of the D&C traceback ("recursion cutoff points")
///   * concurrent-queue internals ("the internals of the concurrent
///     queue used for scheduling tiles")
///   * 16-bit vs 32-bit scores inside SIMD blocks
///   * linear-gap specialization vs always-affine machinery (what partial
///     evaluation buys over SeqAn/Parasail's generic path)

#include <atomic>

#include "baselines/libraries.hpp"
#include "bench/harness.hpp"
#include "bio/datasets.hpp"
#include "core/scoring.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/work_queue.hpp"
#include "tiled/tiled_engine.hpp"
#include "tiled/tiled_hirschberg.hpp"

namespace {

using namespace anyseq;
using namespace anyseq::bench;

constexpr simple_scoring kScoring{2, -1};
constexpr linear_gap kLinear{-1};
constexpr affine_gap kAffine{-2, -1};

json_report* g_report = nullptr;  // set in main

void tile_size_sweep(stage::seq_view a, stage::seq_view b, const args& ar) {
  std::printf("\n--- ablation: tile size (16-lane blocks, scalar-clone whitebox, linear, scores only) ---\n");
  std::printf("%8s %12s %10s %10s\n", "tile", "GCUPS", "blocks", "singles");
  const std::uint64_t cells = static_cast<std::uint64_t>(a.size()) * b.size();
  for (index_t tile : {64, 128, 256, 512, 1024}) {
    tiled::tiled_engine<align_kind::global, linear_gap, simple_scoring, 16>
        eng(kLinear, kScoring, {tile, tile, ar.threads, true});
    const double t = median_seconds(ar.repeats, [&] { (void)eng.score(a, b); });
    const auto st = eng.last_stats();
    g_report->add("tile_size/" + std::to_string(tile), t, 1,
                  {{"gcups", gcups(cells, t)}});
    std::printf("%8lld %12.3f %10llu %10llu\n", static_cast<long long>(tile),
                gcups(cells, t), static_cast<unsigned long long>(st.blocks),
                static_cast<unsigned long long>(st.singles));
  }
}

void cutoff_sweep(stage::seq_view a, stage::seq_view b, const args& ar) {
  std::printf("\n--- ablation: D&C recursion cutoff (traceback, affine) ---\n");
  std::printf("%12s %12s %14s\n", "base_cells", "GCUPS", "relaxed/nm");
  const std::uint64_t nm = static_cast<std::uint64_t>(a.size()) * b.size();
  for (index_t cells : {index_t{1} << 8, index_t{1} << 12, index_t{1} << 16,
                        index_t{1} << 20}) {
    std::uint64_t relaxed = 0;
    const double t = median_seconds(ar.repeats, [&] {
      auto r = tiled::tiled_hirschberg_align<16>(
          a, b, kAffine, kScoring, {256, 256, ar.threads, true}, cells);
      relaxed = r.cells;
    });
    g_report->add("dc_cutoff/" + std::to_string(cells), t, 1,
                  {{"gcups", gcups(nm, t)}});
    std::printf("%12lld %12.3f %14.2f\n", static_cast<long long>(cells),
                gcups(nm, t),
                static_cast<double>(relaxed) / static_cast<double>(nm));
  }
}

void queue_internals(const args& ar) {
  std::printf("\n--- ablation: concurrent queue internals ---\n");
  std::printf("%-16s %14s\n", "queue", "Mops/s (4 thr)");
  constexpr int kOps = 200000;

  // Container construction (the treiber stack's node-array allocation
  // in particular) stays outside the timed region: the rows measure
  // queue *operations*, matching the pre-JSON measurement boundary.
  const auto median_of = [&](auto&& timed_run) {
    std::vector<double> times;
    for (int r = 0; r < std::max(1, ar.repeats); ++r)
      times.push_back(timed_run());
    std::sort(times.begin(), times.end());
    return times[times.size() / 2];
  };
  {
    const double t = median_of([&] {
      parallel::mpmc_queue<int> q;
      stopwatch sw;
      parallel::run_workers(4, [&](int tid) {
        for (int i = 0; i < kOps; ++i) {
          q.push(tid * kOps + i);
          std::vector<int> out;
          q.try_pop_n(out, 1);
        }
      });
      return sw.seconds();
    });
    g_report->add("queue/mpmc_mutex", t, 4 * kOps,
                  {{"mops_per_s", 4.0 * kOps / t / 1e6}});
    std::printf("%-16s %14.2f\n", "mpmc (mutex)", 4.0 * kOps / t / 1e6);
  }
  {
    const double t = median_of([&] {
      parallel::treiber_stack<int> st(4 * kOps);
      stopwatch sw;
      parallel::run_workers(4, [&](int tid) {
        for (int i = 0; i < kOps; ++i) {
          (void)st.push(tid * kOps + i);
          (void)st.try_pop();
        }
      });
      return sw.seconds();
    });
    g_report->add("queue/treiber_cas", t, 4 * kOps,
                  {{"mops_per_s", 4.0 * kOps / t / 1e6}});
    std::printf("%-16s %14.2f\n", "treiber (CAS)", 4.0 * kOps / t / 1e6);
  }
}

void score_width(stage::seq_view a, stage::seq_view b, const args& ar) {
  std::printf("\n--- ablation: 16-bit SIMD blocks vs 32-bit scalar tiles ---\n");
  std::printf("%-22s %12s\n", "variant", "GCUPS");
  const std::uint64_t cells = static_cast<std::uint64_t>(a.size()) * b.size();
  // Through the public dispatcher: each row is the *native* engine
  // variant (anyseq::v_scalar / v_avx2 / v_avx512), not a baseline
  // re-instantiation.
  const struct {
    int lanes;
    const char* label;
  } rows[] = {{1, "32-bit scalar"},
              {16, "16-bit x16 blocks"},
              {32, "16-bit x32 blocks"}};
  for (const auto& r : rows) {
    if (!lanes_runnable_now(r.lanes)) {
      std::printf("%-22s %12s\n", r.label, "skipped");
      continue;
    }
    align_options o = paper_opts(kLinear, backend_for_lanes(r.lanes),
                                 ar.threads, /*traceback=*/false);
    o.tile = 256;
    const double t =
        median_seconds(ar.repeats, [&] { (void)align(a, b, o); });
    g_report->add(std::string("score_width/") +
                      to_string(backend_for_lanes(r.lanes)),
                  t, 1, {{"gcups", gcups(cells, t)}});
    std::printf("%-22s %12.3f\n", r.label, gcups(cells, t));
  }
}

void specialization_gain(stage::seq_view a, stage::seq_view b,
                         const args& ar) {
  std::printf(
      "\n--- ablation: linear-gap specialization vs always-affine ---\n");
  std::printf("%-34s %12s\n", "variant", "GCUPS");
  const std::uint64_t cells = static_cast<std::uint64_t>(a.size()) * b.size();
  {
    tiled::tiled_engine<align_kind::global, linear_gap, simple_scoring, 16>
        eng(kLinear, kScoring, {256, 256, ar.threads, true});
    const double t = median_seconds(ar.repeats, [&] { (void)eng.score(a, b); });
    g_report->add("specialization/linear_kernel", t, 1,
                  {{"gcups", gcups(cells, t)}});
    std::printf("%-34s %12.3f\n", "specialized linear kernel (AnySeq)",
                gcups(cells, t));
  }
  {
    baselines::seqan_like<align_kind::global, 16> eng(2, -1, kLinear,
                                                      {ar.threads, 256});
    const double t = median_seconds(ar.repeats, [&] { (void)eng.score(a, b); });
    g_report->add("specialization/always_affine", t, 1,
                  {{"gcups", gcups(cells, t)}});
    std::printf("%-34s %12.3f\n", "affine machinery w/ open=0 (SeqAn)",
                gcups(cells, t));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto ar = args::parse(argc, argv, /*scale=*/1024, /*pairs=*/0);
  const auto pr = bio::make_pair(0, ar.scale);
  const auto a = pr.a.view(), b = pr.b.view();
  std::printf("bench_ablation: %lld x %lld bp, %d threads\n",
              static_cast<long long>(a.size()),
              static_cast<long long>(b.size()), ar.threads);

  json_report report("ablation", ar.repeats);
  report.set_meta("q_len", static_cast<long long>(a.size()));
  report.set_meta("s_len", static_cast<long long>(b.size()));
  report.set_meta("threads", static_cast<long long>(ar.threads));
  g_report = &report;

  tile_size_sweep(a, b, ar);
  cutoff_sweep(a, b, ar);
  queue_internals(ar);
  score_width(a, b, ar);
  specialization_gain(a, b, ar);
  return report.write(ar.out) ? 0 : 1;
}
