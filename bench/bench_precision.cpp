/// Precision-route benchmark: the adaptive-precision batch kernels
/// (int8/int16 with sticky overflow escalation) and the Myers
/// bit-parallel route against the forced-int32 rolling baseline, on the
/// fig5b-style 150 bp read-pair workload (plus a short-read panel where
/// the int8 window admits the whole batch).  Emits BENCH_precision.json
/// with per-row GCUPS and speedup-vs-int32 so CI can watch the narrow
/// routes earn their keep.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "anyseq/anyseq.hpp"
#include "bench/harness.hpp"
#include "bio/random.hpp"
#include "bio/read_sim.hpp"
#include "core/gap.hpp"

namespace {

using namespace anyseq;
using namespace anyseq::bench;

json_report* g_report = nullptr;
const char* g_tag = "";  // workload prefix; rows named <tag>/<variant>/<row>

std::uint64_t total_cells(std::span<const seq_pair> pairs) {
  std::uint64_t c = 0;
  for (const auto& p : pairs)
    c += static_cast<std::uint64_t>(p.q.size()) * p.s.size();
  return c;
}

/// One measured row through the public dispatcher: `opt` selects the
/// route (precision hint, scoring).  Scores are checked against `ref`
/// (the forced-int32 run of the same workload) — a bench that drifted
/// from byte-identity would report meaningless speedups.
double run_route(const std::string& row, std::span<const seq_pair> pairs,
                 align_options opt, int repeats, double int32_gcups,
                 const std::vector<alignment_result>* ref) {
  std::vector<alignment_result> out;
  const double t = median_seconds(repeats, [&] {
    out = align_batch(pairs, opt);
  });
  if (ref != nullptr) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (out[i].score != (*ref)[i].score) {
        std::fprintf(stderr, "bench_precision: %s pair %zu score %lld != "
                     "int32 %lld\n", row.c_str(), i,
                     static_cast<long long>(out[i].score),
                     static_cast<long long>((*ref)[i].score));
        std::exit(2);
      }
    }
  }
  const double g = gcups(total_cells(pairs), t);
  const double speedup = int32_gcups > 0.0 ? g / int32_gcups : 0.0;
  if (g_report != nullptr)
    g_report->add(std::string(g_tag) + "/" + row, t, pairs.size(),
                  {{"gcups", g}, {"speedup_vs_int32", speedup}});
  return g;
}

/// paper-style scoring (match 2 / mismatch -1, linear -1) with a forced
/// precision on the given backend.
align_options scored_opts(backend exec, int threads, score_precision p) {
  align_options o = paper_opts(linear_gap{-1}, exec, threads, false);
  o.precision = p;
  return o;
}

/// Unit-cost option set (edit distance, weight g) — admits the Myers
/// bit-parallel route when precision is auto/bitpar.
align_options unit_opts(backend exec, int threads, score_precision p) {
  align_options o;
  o.kind = align_kind::global;
  o.match = 0;
  o.mismatch = -1;
  o.gap_open = 0;
  o.gap_extend = -1;
  o.exec = exec;
  o.threads = threads;
  o.precision = p;
  return o;
}

/// One workload panel: for every runnable SIMD width, the int32 rolling
/// baseline and each admissible narrow/bit-parallel route.
void panel(const char* title, const char* tag,
           std::span<const seq_pair> pairs, bool int8_admissible,
           const args& a) {
  g_tag = tag;
  print_header(title, "adaptive-precision batch score routes");
  for (const int lanes : {1, 16, 32}) {
    if (!lanes_runnable_now(lanes)) continue;
    const backend exec = backend_for_lanes(lanes);
    const std::string v = to_string(exec);

    // Baseline: the int32 rolling route (the escalation target every
    // narrow kernel must be indistinguishable from).
    const std::vector<alignment_result> ref =
        align_batch(pairs, scored_opts(exec, a.threads, score_precision::int32));
    const double g32 = run_route(
        v + "/int32", pairs, scored_opts(exec, a.threads, score_precision::int32),
        a.repeats, 0.0, nullptr);
    print_row({"int32 rolling", v, g32, -1.0, "baseline"});

    // Auto: plan-time bounds pick the widest window that fits (int16 for
    // 150 bp at match 2, int8 for the short-read panel).
    const double gauto = run_route(
        v + "/auto", pairs,
        scored_opts(exec, a.threads, score_precision::auto_select), a.repeats,
        g32, &ref);
    print_row({"auto narrow", v, gauto, -1.0,
               int8_admissible ? "selects int8" : "selects int16"});

    // Forced narrow: the checked kernels with sticky overflow masks.
    const double g16 = run_route(
        v + "/int16_checked", pairs,
        scored_opts(exec, a.threads, score_precision::int16), a.repeats, g32,
        &ref);
    print_row({"int16 checked", v, g16, -1.0, "overflow-checked"});
    if (int8_admissible) {
      const double g8 = run_route(
          v + "/int8_checked", pairs,
          scored_opts(exec, a.threads, score_precision::int8), a.repeats, g32,
          &ref);
      print_row({"int8 checked", v, g8, -1.0, "overflow-checked"});
    }

    // Bit-parallel edit distance: its own unit-cost option set, so it
    // gets its own int32 reference and baseline.
    const std::vector<alignment_result> uref = align_batch(
        pairs, unit_opts(exec, a.threads, score_precision::int32));
    std::vector<alignment_result> got = align_batch(
        pairs, unit_opts(exec, a.threads, score_precision::auto_select));
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (got[i].score != uref[i].score) {
        std::fprintf(stderr, "bench_precision: bitpar pair %zu mismatch\n", i);
        std::exit(2);
      }
    }
    const double u32 = run_route(
        v + "/unit_int32", pairs,
        unit_opts(exec, a.threads, score_precision::int32), a.repeats, 0.0,
        nullptr);
    const double gbp = run_route(
        v + "/bitpar", pairs,
        unit_opts(exec, a.threads, score_precision::bitpar), a.repeats, u32,
        nullptr);
    print_row({"bitpar (unit cost)", v, gbp, -1.0, "vs unit int32"});
  }
  print_footer();
}

/// Length-jitter panel: 150 bp ± 15 uniform jitter on both mates — the
/// mixed-length traffic that used to fall off the SIMD path entirely
/// (any chunk with one odd length went scalar).  The auto route runs
/// through a persistent aligner handle so the per-batch path accounting
/// is readable afterwards; alongside GCUPS the row reports the fraction
/// of pairs scored on SIMD lanes vs scalar, which the lane-padding
/// kernel must keep near 1.0 (it was ~0 before).
void jitter_panel(std::span<const seq_pair> pairs, const args& a) {
  g_tag = "jitter150";
  print_header("150 bp +/- 15 length jitter (ragged lanes)",
               "lane-padded SIMD on mixed-length batches");
  for (const int lanes : {1, 16, 32}) {
    if (!lanes_runnable_now(lanes)) continue;
    const backend exec = backend_for_lanes(lanes);
    const std::string v = to_string(exec);

    const std::vector<alignment_result> ref = align_batch(
        pairs, scored_opts(exec, a.threads, score_precision::int32));
    const double g32 = run_route(
        v + "/int32", pairs,
        scored_opts(exec, a.threads, score_precision::int32), a.repeats, 0.0,
        nullptr);
    print_row({"int32 rolling", v, g32, -1.0, "baseline"});

    aligner al(scored_opts(exec, a.threads, score_precision::auto_select));
    std::vector<alignment_result> out;
    const double t = median_seconds(a.repeats, [&] {
      al.align_batch_into(pairs, out);
    });
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (out[i].score != ref[i].score) {
        std::fprintf(stderr, "bench_precision: jitter pair %zu score %lld != "
                     "int32 %lld\n", i, static_cast<long long>(out[i].score),
                     static_cast<long long>(ref[i].score));
        std::exit(2);
      }
    }
    const batch_stats st = al.last_batch_stats();
    const double n = static_cast<double>(pairs.size());
    const double simd_frac = static_cast<double>(st.simd_pairs) / n;
    const double scalar_frac = static_cast<double>(st.scalar_pairs) / n;
    const double ragged_frac = static_cast<double>(st.ragged_pairs) / n;
    const double g = gcups(total_cells(pairs), t);
    const double speedup = g32 > 0.0 ? g / g32 : 0.0;
    if (g_report != nullptr)
      g_report->add(std::string(g_tag) + "/" + v + "/auto", t, pairs.size(),
                    {{"gcups", g},
                     {"speedup_vs_int32", speedup},
                     {"simd_pair_fraction", simd_frac},
                     {"scalar_pair_fraction", scalar_frac},
                     {"ragged_pair_fraction", ragged_frac}});
    char note[96];
    std::snprintf(note, sizeof note, "simd %.1f%% / scalar %.1f%%",
                  simd_frac * 100.0, scalar_frac * 100.0);
    print_row({"auto ragged", v, g, -1.0, note});

    // The whole point of the panel: mixed-length batches must stay on
    // SIMD lanes on the vector targets instead of unzipping to scalar.
    if (lanes > 1 && simd_frac < 0.9) {
      std::fprintf(stderr,
                   "bench_precision: jitter simd fraction %.3f < 0.9 on %s\n",
                   simd_frac, v.c_str());
      std::exit(2);
    }
  }
  print_footer();
}

}  // namespace

int main(int argc, char** argv) {
  const auto a = args::parse(argc, argv, /*scale=*/0, /*pairs=*/3000);
  std::printf("bench_precision: %zu read pairs, %d threads\n", a.pairs,
              a.threads);

  bio::genome_params gp;
  gp.length = 1 << 20;
  gp.seed = 10;
  const auto ref = bio::random_genome("GRCh38_chr10_surrogate", gp);

  json_report report("precision", a.repeats);
  report.set_meta("pairs", static_cast<long long>(a.pairs));
  report.set_meta("threads", static_cast<long long>(a.threads));
  g_report = &report;

  // Fig. 5b-style panel: 150 bp Illumina pairs.  Worst-case bound at
  // match 2 is (150+150+2)*2 = 604 — inside the int16 window, outside
  // int8's, so auto selects int16 here.
  const auto data150 = bio::simulate_read_pairs(ref, a.pairs, {});
  std::vector<seq_pair> pairs150;
  pairs150.reserve(data150.size());
  for (const auto& p : data150)
    pairs150.push_back({p.first.view(), p.second.view()});
  panel("150 bp read pairs (fig5b workload)", "reads150", pairs150, false, a);

  // Short-read panel: 20 bp, bound (20+20+2)*2 = 84 < 96 — the whole
  // batch fits the int8 window.
  bio::read_sim_params sp;
  sp.read_length = 20;
  const auto data20 = bio::simulate_read_pairs(ref, a.pairs, sp);
  std::vector<seq_pair> pairs20;
  pairs20.reserve(data20.size());
  for (const auto& p : data20)
    pairs20.push_back({p.first.view(), p.second.view()});
  panel("20 bp read pairs (int8 window)", "reads20", pairs20, true, a);

  // Jitter panel: simulate at the max length (165 bp) and trim each
  // mate to an independent uniform length in [135, 165], so the batch
  // has genuinely ragged shapes instead of lane-uniform chunks.
  bio::read_sim_params jp;
  jp.read_length = 165;
  const auto dataj = bio::simulate_read_pairs(ref, a.pairs, jp);
  std::mt19937_64 jrng(77);
  std::uniform_int_distribution<index_t> jlen(135, 165);
  std::vector<seq_pair> pairsj;
  pairsj.reserve(dataj.size());
  for (const auto& p : dataj) {
    const auto qv = p.first.view();
    const auto sv = p.second.view();
    const index_t ql = std::min(qv.size(), jlen(jrng));
    const index_t sl = std::min(sv.size(), jlen(jrng));
    pairsj.push_back({stage::seq_view(qv.data(), ql),
                      stage::seq_view(sv.data(), sl)});
  }
  jitter_panel(pairsj, a);

  return report.write(a.out) ? 0 : 1;
}
