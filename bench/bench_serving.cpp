/// Serving-tier benchmark: the sharded, cache-fronted service group on
/// a fig5b-style 150 bp read-pair workload, emitted as
/// BENCH_serving.json.  Three experiments:
///
///   1. **Hit-rate sweep** — the same request count streamed over pools
///      of distinct pairs sized for ~0%, ~50%, and ~95% response-cache
///      hit rates.  Hits bypass the admission ring and the batcher
///      entirely (lookup + copy-out), so throughput should rise steeply
///      with the hit rate.
///   2. **Shard scaling** — all-distinct (cache-cold) requests through
///      1, 2, and 4 shards.  Each shard owns its own admission mutex
///      and batcher thread; scaling is bounded by physical cores, so
///      the meta records `cores` and the numbers are whatever this host
///      honestly delivers.
///   3. **Adaptive vs fixed linger** — a bulk flood plus an interactive
///      trickle under a deliberately generous max_linger.  The fixed
///      service pays the full linger on every interactive request; the
///      adaptive controller shrinks the window when interactive p99
///      drifts above target.  Reported: interactive p99 per policy.
///
///   $ ./serving_bench [--pairs N] [--threads N] [--repeats N]
///                     [--out FILE] [--quick]   (default BENCH_serving.json)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <random>
#include <thread>
#include <vector>

#include "anyseq/anyseq.hpp"
#include "bench/harness.hpp"
#include "bio/random.hpp"
#include "bio/read_sim.hpp"
#include "service/router.hpp"
#include "service/trace.hpp"
#include "simd/detect.hpp"

namespace {

using namespace anyseq;
using namespace anyseq::bench;

align_options request_options() {
  align_options o;
  o.kind = align_kind::global;
  o.gap_open = -2;
  o.gap_extend = -1;
  o.threads = 1;  // per-request work is tiny; parallelism comes from above
  return o;
}

/// Simulate `n` distinct 150 bp read pairs against a shared reference.
std::vector<bio::read_pair> make_pairs(std::size_t n, std::uint64_t seed) {
  bio::genome_params gp;
  gp.length = 1 << 20;
  gp.seed = seed;
  const auto ref = bio::random_genome("chr_surrogate", gp);
  return bio::simulate_read_pairs(ref, n, {});
}

/// Stream `total` requests with an exact fraction `hit_rate` of cache
/// hits: hits draw round-robin from `warm` already-cached pairs (the
/// caller warmed them and waited for completion, so they are resident),
/// misses consume fresh distinct pairs starting at index `warm`.
/// Scores are folded so nothing is elided.
double stream_mixed(service::service_group& group,
                    const std::vector<bio::read_pair>& pairs,
                    std::size_t warm, double hit_rate, std::size_t total,
                    const service::submit_options& so = {}) {
  const auto opt = request_options();
  std::vector<service::ticket> window;
  window.reserve(64);
  long long sum = 0;
  std::size_t head = 0, fresh = warm, warm_next = 0;
  for (std::size_t i = 0; i < total; ++i) {
    // Request i is a hit iff the running hit quota advances at i.
    const bool hit =
        warm > 0 &&
        static_cast<std::size_t>(static_cast<double>(i + 1) * hit_rate) >
            static_cast<std::size_t>(static_cast<double>(i) * hit_rate);
    const auto& p = hit ? pairs[warm_next++ % warm] : pairs[fresh++];
    window.push_back(group.submit(p.first.view(), p.second.view(), opt, so));
    if (window.size() - head >= 64) sum += window[head++].get().score;
    if (head == window.size()) {
      window.clear();
      head = 0;
    }
  }
  for (std::size_t i = head; i < window.size(); ++i)
    sum += window[i].get().score;
  return static_cast<double>(sum);
}

}  // namespace

int main(int argc, char** argv) {
  const auto a = args::parse(argc, argv, /*default_scale=*/1,
                             /*default_pairs=*/4000);
  const std::size_t total = a.pairs;

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf("bench_serving: %zu requests, %u cores, %d repeats\n", total,
              cores, a.repeats);

  const auto pairs = make_pairs(total, /*seed=*/10);

  json_report report("serving", a.repeats);
  report.set_meta("cpu", simd::describe(simd::detect()));
  report.set_meta("dispatched", backend_name());
  report.set_meta("cores", static_cast<long long>(cores));
  report.set_meta("requests", static_cast<long long>(total));

  // ---- 1. hit-rate sweep --------------------------------------------
  // Exact hit fractions: `warm` pairs are cached up-front (completion
  // awaited, so they are resident), then the measured stream draws hits
  // from the warm set and misses from fresh distinct pairs.  Stats are
  // deltas over the measured stream only; warmup is not timed.
  const struct { const char* name; double rate; } sweeps[] = {
      {"hit_rate_0", 0.0}, {"hit_rate_50", 0.5}, {"hit_rate_95", 0.95}};
  double rps_hit0 = 0.0, rps_hit95 = 0.0;
  for (const auto& sweep : sweeps) {
    // Warm set sized to the miss count so total distinct pairs <= total.
    const auto warm = static_cast<std::size_t>(
        std::min(static_cast<double>(total) * sweep.rate,
                 std::max(1.0, static_cast<double>(total) *
                                   (1.0 - sweep.rate))));
    std::vector<double> times, rates;
    for (int r = 0; r < std::max(1, a.repeats); ++r) {
      service::service_group::config cfg;
      cfg.shards = 1;
      cfg.cache_capacity = total;  // hold the full distinct set
      cfg.shard.max_batch = 64;
      cfg.shard.max_linger = std::chrono::microseconds(300);
      cfg.shard.queue_capacity = 1024;
      service::service_group group(cfg);  // fresh: stats cover one run
      {
        const auto opt = request_options();
        std::vector<service::ticket> ts;
        ts.reserve(warm);
        for (std::size_t i = 0; i < warm; ++i)
          ts.push_back(group.submit(pairs[i].first.view(),
                                    pairs[i].second.view(), opt));
        for (auto& t : ts) (void)t.get();  // warm entries now resident
      }
      const auto before = group.stats();
      stopwatch sw;
      (void)stream_mixed(group, pairs, warm, sweep.rate, total);
      times.push_back(sw.seconds());
      group.shutdown(true);
      const auto st = group.stats();
      const auto hits = st.cache_hits - before.cache_hits;
      const auto looked_up =
          hits + (st.cache_misses - before.cache_misses);
      rates.push_back(looked_up > 0 ? static_cast<double>(hits) /
                                          static_cast<double>(looked_up)
                                    : 0.0);
    }
    std::sort(times.begin(), times.end());
    std::sort(rates.begin(), rates.end());
    const double s = times[times.size() / 2];
    const double rate = rates[rates.size() / 2];
    const double rps = static_cast<double>(total) / s;
    if (sweep.rate == 0.0) rps_hit0 = rps;
    if (sweep.rate == 0.95) rps_hit95 = rps;
    report.add(sweep.name, s, total,
               {{"requests_per_s", rps}, {"hit_rate", rate}});
    std::printf("%-12s : %10.1f req/s  (measured hit rate %.3f)\n",
                sweep.name, rps, rate);
  }
  if (rps_hit0 > 0.0)
    report.set_meta("speedup_95_vs_0", rps_hit95 / rps_hit0);

  // ---- 1b. deadline/hook happy-path overhead ------------------------
  // The hit_rate_0 stream again, but every request carries a (far-
  // future) absolute deadline, so the whole robustness surface runs on
  // every request: deadline stamping, the shed checks at ring drain and
  // batch dispatch, deadline-bounded linger, the quarantine gate, and
  // the compiled-in fault-hook branches.  overhead_vs_plain ~ 1.0 is
  // the contract — the machinery is branch-only on the happy path.
  {
    std::vector<double> times;
    for (int r = 0; r < std::max(1, a.repeats); ++r) {
      service::service_group::config cfg;
      cfg.shards = 1;
      cfg.cache_capacity = total;
      cfg.shard.max_batch = 64;
      cfg.shard.max_linger = std::chrono::microseconds(300);
      cfg.shard.queue_capacity = 1024;
      service::service_group group(cfg);
      service::submit_options so;
      so.deadline = std::chrono::steady_clock::now() + std::chrono::hours(1);
      stopwatch sw;
      (void)stream_mixed(group, pairs, 0, 0.0, total, so);
      times.push_back(sw.seconds());
      group.shutdown(true);
    }
    std::sort(times.begin(), times.end());
    const double s = times[times.size() / 2];
    const double rps = static_cast<double>(total) / s;
    report.add("hit_rate_0_deadline", s, total,
               {{"requests_per_s", rps},
                {"overhead_vs_plain", rps > 0.0 ? rps_hit0 / rps : 1.0}});
    std::printf("%-12s : %10.1f req/s  (%.3fx plain no-deadline cost)\n",
                "hr0_deadline", rps, rps > 0.0 ? rps_hit0 / rps : 1.0);
  }

  // ---- 1c. tracing overhead -----------------------------------------
  // The hit_rate_0 stream with a lifecycle-trace collector armed, so
  // every request records its submit/probe/ring/collect/execute/complete
  // spans into the per-thread rings.  overhead_vs_plain ~ 1.0 is the
  // contract: recording is a clock read plus a relaxed ring store.
  {
    std::vector<double> times;
    for (int r = 0; r < std::max(1, a.repeats); ++r) {
      service::service_group::config cfg;
      cfg.shards = 1;
      cfg.cache_capacity = total;
      cfg.shard.max_batch = 64;
      cfg.shard.max_linger = std::chrono::microseconds(300);
      cfg.shard.queue_capacity = 1024;
      service::service_group group(cfg);
      service::trace::collector col;
      service::trace::arm(col);
      stopwatch sw;
      (void)stream_mixed(group, pairs, 0, 0.0, total);
      times.push_back(sw.seconds());
      group.shutdown(true);
      service::trace::disarm();
    }
    std::sort(times.begin(), times.end());
    const double s = times[times.size() / 2];
    const double rps = static_cast<double>(total) / s;
    report.add("hit_rate_0_tracing", s, total,
               {{"requests_per_s", rps},
                {"overhead_vs_plain", rps > 0.0 ? rps_hit0 / rps : 1.0}});
    std::printf("%-12s : %10.1f req/s  (%.3fx plain untraced cost)\n",
                "hr0_tracing", rps, rps > 0.0 ? rps_hit0 / rps : 1.0);
  }

  // ---- 1d. ragged (mixed-length) cache-cold traffic -----------------
  // The hit_rate_0 stream with each mate trimmed to an independent
  // uniform length in [135, 165], so no batch the coalescer forms is
  // reliably shape-uniform.  The batcher's full-shape sort plus the
  // lane-padding kernel must keep this traffic on SIMD lanes; the row
  // carries the simd/ragged pair fractions from the batch-path
  // telemetry so CI can watch it.
  {
    bio::read_sim_params jp;
    jp.read_length = 165;
    bio::genome_params gp;
    gp.length = 1 << 20;
    gp.seed = 11;
    const auto jref = bio::random_genome("chr_surrogate_ragged", gp);
    const auto jdata = bio::simulate_read_pairs(jref, total, jp);
    std::mt19937_64 jrng(77);
    std::uniform_int_distribution<index_t> jlen(135, 165);
    struct view_pair {
      stage::seq_view q, s;
    };
    std::vector<view_pair> jviews;
    jviews.reserve(jdata.size());
    for (const auto& p : jdata) {
      const auto qv = p.first.view();
      const auto sv = p.second.view();
      jviews.push_back(
          {stage::seq_view(qv.data(), std::min(qv.size(), jlen(jrng))),
           stage::seq_view(sv.data(), std::min(sv.size(), jlen(jrng)))});
    }
    std::vector<double> times, simd_fracs, ragged_fracs;
    for (int r = 0; r < std::max(1, a.repeats); ++r) {
      service::service_group::config cfg;
      cfg.shards = 1;
      cfg.cache_capacity = total;
      cfg.shard.max_batch = 64;
      cfg.shard.max_linger = std::chrono::microseconds(300);
      cfg.shard.queue_capacity = 1024;
      service::service_group group(cfg);
      const auto opt = request_options();
      stopwatch sw;
      std::vector<service::ticket> window;
      window.reserve(64);
      long long sum = 0;
      std::size_t head = 0;
      for (std::size_t i = 0; i < total; ++i) {
        window.push_back(group.submit(jviews[i].q, jviews[i].s, opt));
        if (window.size() - head >= 64) sum += window[head++].get().score;
      }
      for (std::size_t i = head; i < window.size(); ++i)
        sum += window[i].get().score;
      (void)sum;
      times.push_back(sw.seconds());
      group.shutdown(true);
      const auto st = group.stats();
      const auto batched = static_cast<double>(st.batch_simd_pairs +
                                               st.batch_scalar_pairs);
      simd_fracs.push_back(
          batched > 0 ? static_cast<double>(st.batch_simd_pairs) / batched
                      : 0.0);
      ragged_fracs.push_back(
          batched > 0 ? static_cast<double>(st.batch_ragged_pairs) / batched
                      : 0.0);
    }
    std::sort(times.begin(), times.end());
    std::sort(simd_fracs.begin(), simd_fracs.end());
    std::sort(ragged_fracs.begin(), ragged_fracs.end());
    const double s = times[times.size() / 2];
    const double rps = static_cast<double>(total) / s;
    report.add("hit_rate_0_ragged", s, total,
               {{"requests_per_s", rps},
                {"simd_pair_fraction", simd_fracs[simd_fracs.size() / 2]},
                {"ragged_pair_fraction",
                 ragged_fracs[ragged_fracs.size() / 2]}});
    std::printf("%-12s : %10.1f req/s  (simd %.1f%% ragged %.1f%%)\n",
                "hr0_ragged", rps,
                simd_fracs[simd_fracs.size() / 2] * 100.0,
                ragged_fracs[ragged_fracs.size() / 2] * 100.0);
  }

  // ---- 2. shard scaling ---------------------------------------------
  // Cache disabled, all-distinct pairs: every request is real work.
  // `--threads` producers (default 4) drive N shards concurrently.
  const int producers = std::max(1, a.threads);
  double rps_shard1 = 0.0;
  for (const std::size_t shards : {1u, 2u, 4u}) {
    std::vector<double> times;
    for (int r = 0; r < std::max(1, a.repeats); ++r) {
      service::service_group::config cfg;
      cfg.shards = shards;
      cfg.cache_capacity = 0;
      cfg.shard.max_batch = 64;
      cfg.shard.max_linger = std::chrono::microseconds(300);
      cfg.shard.queue_capacity = 1024;
      service::service_group group(cfg);
      stopwatch sw;
      std::vector<std::thread> threads;
      const std::size_t per =
          (total + static_cast<std::size_t>(producers) - 1) /
          static_cast<std::size_t>(producers);
      for (int c = 0; c < producers; ++c) {
        threads.emplace_back([&, c] {
          const std::size_t lo = static_cast<std::size_t>(c) * per;
          const std::size_t hi = std::min(total, lo + per);
          const auto opt = request_options();
          std::vector<service::ticket> window;
          window.reserve(64);
          long long sum = 0;
          std::size_t head = 0;
          for (std::size_t i = lo; i < hi; ++i) {
            window.push_back(group.submit(pairs[i].first.view(),
                                          pairs[i].second.view(), opt));
            if (window.size() - head >= 64) sum += window[head++].get().score;
          }
          for (std::size_t i = head; i < window.size(); ++i)
            sum += window[i].get().score;
          (void)sum;
        });
      }
      for (auto& t : threads) t.join();
      times.push_back(sw.seconds());
      group.shutdown(true);
    }
    std::sort(times.begin(), times.end());
    const double s = times[times.size() / 2];
    const double rps = static_cast<double>(total) / s;
    if (shards == 1) rps_shard1 = rps;
    const std::string name = "shards_" + std::to_string(shards);
    report.add(name, s, total,
               {{"requests_per_s", rps},
                {"shards", static_cast<double>(shards)},
                {"scaling_vs_1", rps_shard1 > 0.0 ? rps / rps_shard1 : 1.0}});
    std::printf("%-12s : %10.1f req/s  (%.2fx vs 1 shard)\n", name.c_str(),
                rps, rps_shard1 > 0.0 ? rps / rps_shard1 : 1.0);
  }

  // ---- 3. adaptive vs fixed linger ----------------------------------
  // Bulk flood + interactive trickle under a deliberately generous
  // 5 ms max_linger.  Fixed pays it on every interactive request;
  // adaptive shrinks toward min_linger when interactive p99 > target.
  const std::size_t bulk_n = std::min<std::size_t>(total, 1024);
  const std::size_t inter_n = 64;
  for (const bool adaptive : {false, true}) {
    std::vector<double> p99s;
    for (int r = 0; r < std::max(1, a.repeats); ++r) {
      service::service_group::config cfg;
      cfg.shards = 1;
      cfg.cache_capacity = 0;
      cfg.shard.max_batch = 32;
      cfg.shard.max_linger = std::chrono::milliseconds(5);
      cfg.shard.queue_capacity = 2048;
      if (adaptive) {
        cfg.shard.adaptive_linger = true;
        cfg.shard.min_linger = std::chrono::microseconds(20);
        cfg.shard.interactive_p99_target = std::chrono::microseconds(500);
      }
      service::service_group group(cfg);
      const auto opt = request_options();
      std::thread bulk([&] {
        service::submit_options so;
        so.cls = service::request_class::bulk;
        std::vector<service::ticket> window;
        window.reserve(128);
        std::size_t head = 0;
        for (std::size_t i = 0; i < bulk_n; ++i) {
          window.push_back(group.submit(pairs[i % pairs.size()].first.view(),
                                        pairs[i % pairs.size()].second.view(),
                                        opt, so));
          if (window.size() - head >= 128)
            (void)window[head++].get();
        }
        for (std::size_t i = head; i < window.size(); ++i)
          (void)window[i].get();
      });
      for (std::size_t i = 0; i < inter_n; ++i) {
        const auto& p = pairs[(bulk_n + i) % pairs.size()];
        auto t = group.submit(p.first.view(), p.second.view(), opt);
        (void)t.get();  // trickle: one outstanding interactive request
      }
      bulk.join();
      group.shutdown(true);
      const auto st = group.stats();
      p99s.push_back(static_cast<double>(
                         st.of(service::request_class::interactive)
                             .p99_latency_ns) /
                     1e3);
    }
    std::sort(p99s.begin(), p99s.end());
    const double p99_us = p99s[p99s.size() / 2];
    const char* name = adaptive ? "linger_adaptive" : "linger_fixed";
    report.add(name, p99_us / 1e6, inter_n,
               {{"interactive_p99_us", p99_us}});
    std::printf("%-15s: interactive p99 %.0f us\n", name, p99_us);
  }

  // ---- 4. robustness counters ---------------------------------------
  // Exercise the deadline-shed and quarantine paths once so the meta
  // records live values of the new telemetry (the trajectory tooling
  // asserts their presence; nonzero proves the counters actually move).
  {
    service::aligner svc;  // defaults: quarantine on, threshold 2
    const auto opt = request_options();
    service::submit_options expired;
    expired.deadline = std::chrono::steady_clock::now() -
                       std::chrono::milliseconds(1);
    for (int i = 0; i < 4; ++i) {
      auto t = svc.submit(pairs[i].first.view(), pairs[i].second.view(), opt,
                          expired);
      try {
        (void)t.get();
      } catch (const error&) {
      }
    }
    // A request that deterministically fails in isolation (extension
    // traceback beyond its full_matrix_cells budget) trips the repeat-
    // offender quarantine on the third submission.
    align_options bad = opt;
    bad.kind = align_kind::extension;
    bad.want_alignment = true;
    bad.full_matrix_cells = 4;
    for (int i = 0; i < 3; ++i) {
      try {
        (void)svc.submit(pairs[0].first.view(), pairs[0].second.view(), bad)
            .get();
      } catch (const error&) {
      }
    }
    svc.shutdown(true);
    const auto st = svc.stats();
    report.set_meta("deadline_expired",
                    static_cast<long long>(st.deadline_expired));
    report.set_meta("quarantined", static_cast<long long>(st.quarantined));
    std::printf("robustness   : %llu deadline-expired, %llu quarantined\n",
                static_cast<unsigned long long>(st.deadline_expired),
                static_cast<unsigned long long>(st.quarantined));
  }

  return report.write(a.out) ? 0 : 1;
}
