#include "core/rolling.hpp"

#include <gtest/gtest.h>

#include "core/alphabet.hpp"
#include "core/full_engine.hpp"
#include "testutil.hpp"

namespace anyseq {
namespace {

using test::view;

template <align_kind K, class Gap>
void expect_matches_full(std::uint64_t seed, index_t nq, index_t ns,
                         const Gap& gap) {
  auto q = test::random_codes(nq, seed);
  auto s = test::random_codes(ns, seed + 1000);
  const simple_scoring sc{2, -1};
  auto full = full_align<K>(view(q), view(s), gap, sc, false);
  auto roll = rolling_score<K>(view(q), view(s), gap, sc);
  EXPECT_EQ(roll.score, full.score)
      << to_string(K) << " seed " << seed << " " << nq << "x" << ns;
  EXPECT_EQ(roll.end_i, full.q_end);
  EXPECT_EQ(roll.end_j, full.s_end);
}

TEST(RollingScore, MatchesFullEngineGlobalLinear) {
  for (std::uint64_t seed = 0; seed < 10; ++seed)
    expect_matches_full<align_kind::global>(seed, 20 + seed, 25, linear_gap{-1});
}

TEST(RollingScore, MatchesFullEngineGlobalAffine) {
  for (std::uint64_t seed = 0; seed < 10; ++seed)
    expect_matches_full<align_kind::global>(seed, 18, 22 + seed,
                                            affine_gap{-3, -1});
}

TEST(RollingScore, MatchesFullEngineLocal) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    expect_matches_full<align_kind::local>(seed, 30, 28, linear_gap{-2});
    expect_matches_full<align_kind::local>(seed, 24, 31, affine_gap{-4, -1});
  }
}

TEST(RollingScore, MatchesFullEngineSemiglobal) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    expect_matches_full<align_kind::semiglobal>(seed, 12, 40, linear_gap{-1});
    expect_matches_full<align_kind::semiglobal>(seed, 40, 12,
                                                affine_gap{-2, -1});
  }
}

TEST(RollingScore, MatchesFullEngineExtension) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    expect_matches_full<align_kind::extension>(seed, 20, 20, linear_gap{-1});
    expect_matches_full<align_kind::extension>(seed, 15, 25,
                                               affine_gap{-3, -2});
  }
}

TEST(RollingScore, EmptyInputs) {
  std::vector<char_t> q, s = dna_encode_all("ACG");
  EXPECT_EQ((rolling_score<align_kind::global>(view(q), view(s),
                                               linear_gap{-1},
                                               simple_scoring{2, -1})
                 .score),
            -3);
  EXPECT_EQ((rolling_score<align_kind::local>(view(q), view(s),
                                              linear_gap{-1},
                                              simple_scoring{2, -1})
                 .score),
            0);
  EXPECT_EQ((rolling_score<align_kind::semiglobal>(view(q), view(s),
                                                   linear_gap{-1},
                                                   simple_scoring{2, -1})
                 .score),
            0);
}

TEST(RollingScore, ReversedViewsGiveSameGlobalScore) {
  // Global alignment score is invariant under reversing both sequences.
  auto q = test::random_codes(33, 7), s = test::mutate(q, 8);
  const simple_scoring sc{2, -1};
  const affine_gap gap{-2, -1};
  auto fwd = rolling_score<align_kind::global>(view(q), view(s), gap, sc);
  auto rev = rolling_score<align_kind::global>(
      stage::rev_view(view(q)), stage::rev_view(view(s)), gap, sc);
  EXPECT_EQ(fwd.score, rev.score);
}

TEST(NwLastRow, FinalEntryEqualsGlobalScore) {
  auto q = test::random_codes(21, 3), s = test::random_codes(17, 4);
  const simple_scoring sc{2, -1};
  const affine_gap gap{-3, -1};
  std::vector<score_t> hh(s.size() + 1), ee(s.size() + 1);
  nw_last_row(view(q), view(s), gap, sc, gap.open(), std::span(hh),
              std::span(ee));
  auto ref = rolling_score<align_kind::global>(view(q), view(s), gap, sc);
  EXPECT_EQ(hh.back(), ref.score);
}

TEST(NwLastRow, EveryEntryIsAPrefixGlobalScore) {
  auto q = test::random_codes(12, 5), s = test::random_codes(15, 6);
  const simple_scoring sc{2, -1};
  const linear_gap gap{-1};
  std::vector<score_t> hh(s.size() + 1), ee(s.size() + 1);
  nw_last_row(view(q), view(s), gap, sc, gap.open(), std::span(hh),
              std::span(ee));
  for (index_t j = 0; j <= static_cast<index_t>(s.size()); ++j) {
    auto ref = rolling_score<align_kind::global>(
        view(q), view(s).sub(0, j), gap, sc);
    EXPECT_EQ(hh[j], ref.score) << "prefix " << j;
  }
}

TEST(NwLastRow, TbZeroDiscountsLeadingDeletionOpen) {
  // With tb=0 a leading vertical gap pays no open: scoring all-deletions
  // of q against empty s.
  auto q = test::random_codes(9, 8);
  std::vector<char_t> s;
  const affine_gap gap{-5, -1};
  std::vector<score_t> hh(1), ee(1);
  nw_last_row(view(q), view(s), gap, simple_scoring{2, -1}, 0, std::span(hh),
              std::span(ee));
  EXPECT_EQ(hh[0], -9);  // 9 extends, no open
}

}  // namespace
}  // namespace anyseq
