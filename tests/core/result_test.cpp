#include "core/result.hpp"

#include <gtest/gtest.h>

#include "core/gap.hpp"

namespace anyseq {
namespace {

TEST(Cigar, AllMatches) {
  EXPECT_EQ(cigar_from_aligned("ACGT", "ACGT"), "4=");
}

TEST(Cigar, MixedOps) {
  EXPECT_EQ(cigar_from_aligned("AC-GT", "ACCGT"), "2=1I2=");
  EXPECT_EQ(cigar_from_aligned("ACGGT", "AC-GT"), "2=1D2=");
  EXPECT_EQ(cigar_from_aligned("ACGT", "AGGT"), "1=1X2=");
}

TEST(Cigar, RunsAreMerged) {
  EXPECT_EQ(cigar_from_aligned("AAAA----", "----TTTT"), "4D4I");
}

TEST(Cigar, Empty) { EXPECT_EQ(cigar_from_aligned("", ""), ""); }

TEST(Rescore, LinearGaps) {
  auto subst = [](char a, char b) { return a == b ? 2 : -1; };
  EXPECT_EQ(rescore_alignment("ACGT", "ACGT", subst, linear_gap{-1}), 8);
  EXPECT_EQ(rescore_alignment("AC-T", "ACGT", subst, linear_gap{-1}), 5);
  EXPECT_EQ(rescore_alignment("A--T", "ACGT", subst, linear_gap{-1}), 2);
}

TEST(Rescore, AffineGapsChargeOpenOncePerRun) {
  auto subst = [](char a, char b) { return a == b ? 2 : -1; };
  // One run of two gaps: open(-2) + 2*extend(-1) = -4, plus 2 matches.
  EXPECT_EQ(rescore_alignment("A--T", "ACGT", subst, affine_gap{-2, -1}), 0);
  // Two separate runs: each charges open+extend (-3); matches in between.
  EXPECT_EQ(rescore_alignment("A-G-", "ACGT", subst, affine_gap{-2, -1}),
            2 - 3 + 2 - 3);
}

TEST(Rescore, GapRunsOnBothSidesAreIndependent) {
  auto subst = [](char a, char b) { return a == b ? 2 : -1; };
  // q-gap run followed by s-gap run: each opens separately,
  // each run of 2 costs open+extend (-4) plus one extend (-1).
  EXPECT_EQ(
      rescore_alignment("--AA", "TT--", subst, affine_gap{-3, -1}),
      -5 + -5);
}

}  // namespace
}  // namespace anyseq
