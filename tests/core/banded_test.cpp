#include "core/banded.hpp"

#include <gtest/gtest.h>

#include "core/full_engine.hpp"
#include "testutil.hpp"

namespace anyseq {
namespace {

using test::view;

TEST(Banded, WideBandEqualsFullDp) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto q = test::random_codes(40, seed);
    auto s = test::mutate(q, seed + 1);
    const simple_scoring sc{2, -1};
    const affine_gap gap{-2, -1};
    const auto full = full_align<align_kind::global>(view(q), view(s), gap,
                                                     sc, false);
    const band b = band::around_main(
        static_cast<index_t>(q.size()), static_cast<index_t>(s.size()),
        static_cast<index_t>(q.size() + s.size()));
    EXPECT_EQ(banded_global_score(view(q), view(s), gap, sc, b), full.score)
        << seed;
  }
}

TEST(Banded, ConvergesToFullAsBandWidens) {
  auto q = test::random_codes(80, 3);
  auto s = test::mutate(q, 4, 0.05, 0.03);
  const simple_scoring sc{2, -1};
  const linear_gap gap{-1};
  const auto full =
      full_align<align_kind::global>(view(q), view(s), gap, sc, false);
  score_t prev = neg_inf();
  bool reached = false;
  for (index_t radius : {2, 4, 8, 16, 32, 120}) {
    const band b = band::around_main(static_cast<index_t>(q.size()),
                                     static_cast<index_t>(s.size()), radius);
    const score_t v = banded_global_score(view(q), view(s), gap, sc, b);
    EXPECT_GE(v, prev);          // wider band can only help
    EXPECT_LE(v, full.score);    // and never beats the unrestricted DP
    prev = v;
    if (v == full.score) reached = true;
  }
  EXPECT_TRUE(reached);
}

TEST(Banded, TracebackRescoresAndStaysInBand) {
  auto q = test::random_codes(60, 5);
  auto s = test::mutate(q, 6, 0.04, 0.02);
  const simple_scoring sc{2, -1};
  const affine_gap gap{-3, -1};
  const band b = band::around_main(static_cast<index_t>(q.size()),
                                   static_cast<index_t>(s.size()), 12);
  const auto r = banded_global(view(q), view(s), gap, sc, b);
  const score_t re = rescore_alignment(
      r.q_aligned, r.s_aligned,
      [](char a, char bch) { return a == bch ? 2 : -1; }, gap);
  EXPECT_EQ(re, r.score);
  // Walk the alignment and verify every visited diagonal is in the band.
  index_t i = 0, j = 0;
  for (std::size_t k = 0; k < r.q_aligned.size(); ++k) {
    if (r.q_aligned[k] != '-') ++i;
    if (r.s_aligned[k] != '-') ++j;
    EXPECT_GE(j - i, b.lo);
    EXPECT_LE(j - i, b.hi);
  }
}

TEST(Banded, CellsScaleWithBandNotMatrix) {
  auto q = test::random_codes(200, 7);
  auto s = test::mutate(q, 8, 0.02, 0.01);
  const band b = band::around_main(static_cast<index_t>(q.size()),
                                   static_cast<index_t>(s.size()), 10);
  const auto r = banded_global(view(q), view(s), linear_gap{-1},
                               simple_scoring{2, -1}, b, false);
  EXPECT_LT(r.cells, static_cast<std::uint64_t>(q.size()) *
                         (2 * 10 + std::llabs(static_cast<long long>(
                                       s.size() - q.size())) + 3));
}

TEST(Banded, RejectsInfeasibleBands) {
  auto q = test::random_codes(10, 9);
  auto s = test::random_codes(30, 10);
  const simple_scoring sc{2, -1};
  const linear_gap gap{-1};
  // Band missing the end diagonal (m - n = 20).
  EXPECT_THROW(
      (void)banded_global_score(view(q), view(s), gap, sc, {-5, 5}),
      invalid_argument_error);
  // Band missing diagonal 0.
  EXPECT_THROW(
      (void)banded_global_score(view(q), view(s), gap, sc, {5, 25}),
      invalid_argument_error);
  // Inverted band.
  EXPECT_THROW(
      (void)banded_global_score(view(q), view(s), gap, sc, {8, -8}),
      invalid_argument_error);
}

TEST(Banded, AroundMainCoversSkewedProblems) {
  const band b = band::around_main(10, 50, 4);
  EXPECT_LE(b.lo, 0);
  EXPECT_GE(b.hi, 40);
}

TEST(Banded, IdenticalSequencesNarrowestBand) {
  auto q = test::random_codes(100, 11);
  const band b{0, 0};  // main diagonal only
  const auto v = banded_global_score(view(q), view(q), linear_gap{-1},
                                     simple_scoring{2, -1}, b);
  EXPECT_EQ(v, 200);  // all matches fit in the zero-width band
}

}  // namespace
}  // namespace anyseq
