#include "core/relax.hpp"

#include <gtest/gtest.h>

#include "core/gap.hpp"
#include "core/scoring.hpp"

namespace anyseq {
namespace {

constexpr simple_scoring kScore{2, -1};
constexpr linear_gap kLinear{-1};
constexpr affine_gap kAffine{-2, -1};

TEST(RelaxLinear, DiagonalWinsOnMatch) {
  prev_cells<score_t> p{10, 5, 5, neg_inf(), neg_inf()};
  auto r = relax_scalar<align_kind::global, true>(p, char_t{0}, char_t{0},
                                                  kLinear, kScore);
  EXPECT_EQ(r.h, 12);
  EXPECT_EQ(r.pred & pred::h_mask, pred::diag);
}

TEST(RelaxLinear, UpGapWins) {
  prev_cells<score_t> p{0, 20, 0, neg_inf(), neg_inf()};
  auto r = relax_scalar<align_kind::global, true>(p, char_t{0}, char_t{1},
                                                  kLinear, kScore);
  EXPECT_EQ(r.h, 19);  // 20 - 1
  EXPECT_EQ(r.pred & pred::h_mask, pred::up);
}

TEST(RelaxLinear, LeftGapWins) {
  prev_cells<score_t> p{0, 0, 20, neg_inf(), neg_inf()};
  auto r = relax_scalar<align_kind::global, true>(p, char_t{0}, char_t{1},
                                                  kLinear, kScore);
  EXPECT_EQ(r.h, 19);
  EXPECT_EQ(r.pred & pred::h_mask, pred::left);
}

TEST(RelaxLinear, TieBreakPrefersDiagonal) {
  // diag + match == up + gap: the paper's listing checks gaps with strict >.
  prev_cells<score_t> p{10, 13, 0, neg_inf(), neg_inf()};
  auto r = relax_scalar<align_kind::global, true>(p, char_t{2}, char_t{2},
                                                  kLinear, kScore);
  EXPECT_EQ(r.h, 12);
  EXPECT_EQ(r.pred & pred::h_mask, pred::diag);
}

TEST(RelaxLinear, LocalClampsToZero) {
  prev_cells<score_t> p{-100, -100, -100, neg_inf(), neg_inf()};
  auto r = relax_scalar<align_kind::local, true>(p, char_t{0}, char_t{1},
                                                 kLinear, kScore);
  EXPECT_EQ(r.h, 0);
  EXPECT_EQ(r.pred & pred::h_mask, pred::stop);
}

TEST(RelaxLinear, GlobalDoesNotClamp) {
  prev_cells<score_t> p{-100, -100, -100, neg_inf(), neg_inf()};
  auto r = relax_scalar<align_kind::global, true>(p, char_t{0}, char_t{1},
                                                  kLinear, kScore);
  EXPECT_EQ(r.h, -101);  // -100 + mismatch(-1)
}

TEST(RelaxLinear, ExtensionDoesNotClamp) {
  prev_cells<score_t> p{-100, -100, -100, neg_inf(), neg_inf()};
  auto r = relax_scalar<align_kind::extension, true>(p, char_t{0}, char_t{1},
                                                     kLinear, kScore);
  EXPECT_LT(r.h, 0);
}

TEST(RelaxAffine, OpenVsExtend) {
  // Extending an existing gap (E=8, extend -1 -> 7) beats opening a fresh
  // one (H=8, open+extend -3 -> 5).
  prev_cells<score_t> p{0, 8, 0, 8, neg_inf()};
  auto r = relax_scalar<align_kind::global, true>(p, char_t{0}, char_t{1},
                                                  kAffine, kScore);
  EXPECT_EQ(r.e, 7);
  EXPECT_TRUE(r.pred & pred::e_extend);
}

TEST(RelaxAffine, FreshOpenBeatsDeepGap) {
  // E history is bad; opening from H wins and the extend bit is clear.
  prev_cells<score_t> p{0, 8, 0, -50, neg_inf()};
  auto r = relax_scalar<align_kind::global, true>(p, char_t{0}, char_t{1},
                                                  kAffine, kScore);
  EXPECT_EQ(r.e, 5);  // 8 - 3
  EXPECT_FALSE(r.pred & pred::e_extend);
}

TEST(RelaxAffine, FGapMirrorsE) {
  prev_cells<score_t> p{0, 0, 8, neg_inf(), 8};
  auto r = relax_scalar<align_kind::global, true>(p, char_t{0}, char_t{1},
                                                  kAffine, kScore);
  EXPECT_EQ(r.f, 7);
  EXPECT_TRUE(r.pred & pred::f_extend);
  EXPECT_EQ(r.pred & pred::h_mask, pred::left);
}

TEST(RelaxAffine, NegInfStaysPinnedEnough) {
  // Adding penalties to the sentinel must not wrap to a huge positive.
  prev_cells<score_t> p{neg_inf(), neg_inf(), neg_inf(), neg_inf(),
                        neg_inf()};
  auto r = relax_scalar<align_kind::global, false>(p, char_t{0}, char_t{0},
                                                   kAffine, kScore);
  EXPECT_LT(r.h, neg_inf() / 2);
  EXPECT_LT(r.e, neg_inf() / 2);
}

TEST(RelaxNoTrack, SameScoreAsTracked) {
  for (score_t d : {-5, 0, 7})
    for (score_t u : {-3, 2, 9})
      for (score_t l : {-8, 1, 4}) {
        prev_cells<score_t> p{d, u, l, static_cast<score_t>(u - 1),
                              static_cast<score_t>(l - 1)};
        auto a = relax_scalar<align_kind::global, true>(p, char_t{1},
                                                        char_t{1}, kAffine,
                                                        kScore);
        auto b = relax_scalar<align_kind::global, false>(p, char_t{1},
                                                         char_t{1}, kAffine,
                                                         kScore);
        EXPECT_EQ(a.h, b.h);
        EXPECT_EQ(a.e, b.e);
        EXPECT_EQ(a.f, b.f);
      }
}

TEST(RelaxWith16Bit, MatchesScalar32OnModerateValues) {
  constexpr simple_scoring sc{2, -1};
  for (int d = -100; d <= 100; d += 25)
    for (int u = -100; u <= 100; u += 25) {
      prev_cells<score16_t> p16{static_cast<score16_t>(d),
                                static_cast<score16_t>(u),
                                static_cast<score16_t>(u - d),
                                static_cast<score16_t>(u - 3),
                                static_cast<score16_t>(d - 3)};
      prev_cells<score_t> p32{d, u, u - d, u - 3, d - 3};
      auto r16 = relax<align_kind::global, false, score16_t, score16_t,
                       char_t>(p16, char_t{0}, char_t{0}, kAffine, sc);
      auto r32 = relax<align_kind::global, false, score_t, score_t, char_t>(
          p32, char_t{0}, char_t{0}, kAffine, sc);
      EXPECT_EQ(static_cast<score_t>(r16.h), r32.h);
      EXPECT_EQ(static_cast<score_t>(r16.e), r32.e);
      EXPECT_EQ(static_cast<score_t>(r16.f), r32.f);
    }
}

TEST(RelaxWith16Bit, SaturatesInsteadOfWrapping) {
  prev_cells<score16_t> p{neg_inf16(), neg_inf16(), neg_inf16(), neg_inf16(),
                          neg_inf16()};
  auto r = relax<align_kind::global, false, score16_t, score16_t, char_t>(
      p, char_t{0}, char_t{1}, affine_gap{-10000, -10000}, kScore);
  EXPECT_LT(r.e, 0);
  EXPECT_LT(r.h, 0);
}

}  // namespace
}  // namespace anyseq
